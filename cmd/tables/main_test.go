package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTablesList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	for _, want := range []string{"table2", "table3", "figure9", "headline"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

// TestTablesRunsExperiment regenerates the cheapest paper artifact
// (Table 2 is pure partition statistics, no training).
func TestTablesRunsExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "table2", "-scale", "ci"}, &out, &errOut); code != 0 {
		t.Fatalf("table2 exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "### table2") {
		t.Fatalf("missing experiment header:\n%s", out.String())
	}
}

// TestTablesWorkersFlag checks that -workers reaches the grid runner and
// does not change rendered results (figure4 is training-free; use a
// trained figure at tiny rounds for the real check).
func TestTablesWorkersFlag(t *testing.T) {
	render := func(workers string) string {
		var out, errOut bytes.Buffer
		args := []string{"-exp", "figure8", "-scale", "ci", "-rounds", "2", "-workers", workers}
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("workers=%s exited %d: %s", workers, code, errOut.String())
		}
		// Strip the timing header line, which legitimately varies.
		s := out.String()
		return s[strings.Index(s, "\n"):]
	}
	if render("1") != render("3") {
		t.Fatal("figure8 output differs between -workers 1 and -workers 3")
	}
}

func TestTablesBadArgs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scale", "nope"}, &out, &errOut); code == 0 {
		t.Fatal("bad scale accepted")
	}
	if code := run([]string{"-exp", "nope", "-scale", "ci"}, &out, &errOut); code == 0 {
		t.Fatal("bad experiment id accepted")
	}
}
