package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTablesList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exited %d: %s", code, errOut.String())
	}
	for _, want := range []string{"table2", "table3", "figure9", "headline", "async-sync"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}
}

// TestTablesAsyncSync runs the async-vs-sync grid through the real CLI
// at a tiny scale: the "+async" degenerate rows must render, and the
// experiment must complete cleanly end to end.
func TestTablesAsyncSync(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "async-sync", "-scale", "ci", "-rounds", "2"}, &out, &errOut); code != 0 {
		t.Fatalf("async-sync exited %d: %s", code, errOut.String())
	}
	for _, want := range []string{"FedAvg+async", "FedDRL+stale", "degenerate trace"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("async-sync output missing %q:\n%s", want, out.String())
		}
	}
}

// TestTablesRunsExperiment regenerates the cheapest paper artifact
// (Table 2 is pure partition statistics, no training).
func TestTablesRunsExperiment(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-exp", "table2", "-scale", "ci"}, &out, &errOut); code != 0 {
		t.Fatalf("table2 exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "### table2") {
		t.Fatalf("missing experiment header:\n%s", out.String())
	}
}

// TestTablesWorkersFlag checks that -workers reaches the grid runner and
// does not change rendered results (figure4 is training-free; use a
// trained figure at tiny rounds for the real check).
func TestTablesWorkersFlag(t *testing.T) {
	render := func(workers string) string {
		var out, errOut bytes.Buffer
		args := []string{"-exp", "figure8", "-scale", "ci", "-rounds", "2", "-workers", workers}
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("workers=%s exited %d: %s", workers, code, errOut.String())
		}
		// Strip the timing header line, which legitimately varies.
		s := out.String()
		return s[strings.Index(s, "\n"):]
	}
	if render("1") != render("3") {
		t.Fatal("figure8 output differs between -workers 1 and -workers 3")
	}
}

// TestTablesShardMergeRoundTrip runs a small grid as two shards through
// the real CLI, merges the artifact files, and requires the rendered
// body (everything after the one-line header) to be byte-identical to
// the unsharded run.
func TestTablesShardMergeRoundTrip(t *testing.T) {
	dir := t.TempDir()
	base := []string{"-exp", "figure8", "-scale", "ci", "-rounds", "2", "-seed", "1"}

	var full, errOut bytes.Buffer
	if code := run(base, &full, &errOut); code != 0 {
		t.Fatalf("unsharded run exited %d: %s", code, errOut.String())
	}
	for i := 1; i <= 2; i++ {
		var out bytes.Buffer
		errOut.Reset()
		args := append(append([]string{}, base...),
			"-shard", fmt.Sprintf("%d/2", i),
			"-out", filepath.Join(dir, fmt.Sprintf("s%d.art", i)))
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("shard %d exited %d: %s", i, code, errOut.String())
		}
		if !strings.Contains(out.String(), "wrote ") {
			t.Fatalf("shard %d did not report its artifact: %s", i, out.String())
		}
	}
	var merged bytes.Buffer
	errOut.Reset()
	if code := run([]string{"-merge", dir}, &merged, &errOut); code != 0 {
		t.Fatalf("merge exited %d: %s", code, errOut.String())
	}
	body := func(s string) string { return s[strings.Index(s, "\n"):] }
	if body(merged.String()) != body(full.String()) {
		t.Fatalf("merged body differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s",
			full.String(), merged.String())
	}
}

func TestTablesSeedsFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	args := []string{"-exp", "figure8", "-scale", "ci", "-rounds", "2", "-seeds", "2"}
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("-seeds run exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "mean±std of 2 seeds") || !strings.Contains(out.String(), "±") {
		t.Fatalf("-seeds output missing mean±std columns:\n%s", out.String())
	}
}

func TestTablesShardBadArgs(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "table3", "-shard", "nope"},
		{"-exp", "table3", "-shard", "3/2"},
		{"-exp", "table3", "-shard", "0/2"},
		{"-exp", "all", "-shard", "1/2"},
		{"-exp", "table2", "-shard", "1/2"}, // monolithic: not shardable
		{"-exp", "all", "-seeds", "2"},
		{"-exp", "table3", "-seeds", "0"},
		{"-exp", "figure7", "-seeds", "2", "-csvdir", "out"},   // CSVs are single-seed
		{"-exp", "figure7", "-shard", "1/2", "-csvdir", "out"}, // shard writes artifacts, not CSVs
		{"-merge", "dir", "-exp", "table3"},                    // merge reads config from artifacts
		{"-exp", "table3", "-out", "x.art"},                    // -out without -shard
		{"-merge", "no-such-dir"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestTablesCacheColdWarm is the CLI half of the cache acceptance
// criterion: a second identical invocation with -cache computes 0 cells
// (the stderr summary says so) and renders a byte-identical body; after
// deleting one record, exactly one cell recomputes.
func TestTablesCacheColdWarm(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cells")
	base := []string{"-exp", "figure8", "-scale", "ci", "-rounds", "2", "-seed", "1", "-cache", cacheDir}
	body := func(s string) string { return s[strings.Index(s, "\n"):] }

	var cold, coldErr bytes.Buffer
	if code := run(base, &cold, &coldErr); code != 0 {
		t.Fatalf("cold cached run exited %d: %s", code, coldErr.String())
	}
	if !strings.Contains(coldErr.String(), "cache: ") || !strings.Contains(coldErr.String(), "0 hits") {
		t.Fatalf("cold run summary missing or wrong: %s", coldErr.String())
	}

	var warm, warmErr bytes.Buffer
	if code := run(base, &warm, &warmErr); code != 0 {
		t.Fatalf("warm cached run exited %d: %s", code, warmErr.String())
	}
	if body(warm.String()) != body(cold.String()) {
		t.Fatalf("warm cached body differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold.String(), warm.String())
	}
	if !strings.Contains(warmErr.String(), "0 misses") {
		t.Fatalf("warm run should report 0 misses: %s", warmErr.String())
	}

	// Delete one record: exactly one cell recomputes.
	records, err := filepath.Glob(filepath.Join(cacheDir, "*.cell"))
	if err != nil || len(records) < 2 {
		t.Fatalf("cache records: %v (%d found)", err, len(records))
	}
	if err := os.Remove(records[0]); err != nil {
		t.Fatal(err)
	}
	var again, againErr bytes.Buffer
	if code := run(base, &again, &againErr); code != 0 {
		t.Fatalf("post-delete run exited %d: %s", code, againErr.String())
	}
	if body(again.String()) != body(cold.String()) {
		t.Fatal("post-delete body differs")
	}
	if !strings.Contains(againErr.String(), "1 misses, 1 written") {
		t.Fatalf("post-delete run should recompute exactly one cell: %s", againErr.String())
	}

	// Readonly: hits only, no writes.
	var ro, roErr bytes.Buffer
	if code := run(append(append([]string{}, base...), "-cache-readonly"), &ro, &roErr); code != 0 {
		t.Fatalf("readonly run exited %d: %s", code, roErr.String())
	}
	if body(ro.String()) != body(cold.String()) {
		t.Fatal("readonly body differs")
	}
	if !strings.Contains(roErr.String(), "0 misses, 0 written") {
		t.Fatalf("readonly run summary wrong: %s", roErr.String())
	}
}

// TestTablesCacheShard: -shard composes with -cache, and a shard rerun
// against a warm cache computes nothing.
func TestTablesCacheShard(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cells")
	args := []string{"-exp", "figure8", "-scale", "ci", "-rounds", "2", "-seed", "1",
		"-shard", "1/2", "-out", filepath.Join(dir, "s1.art"), "-cache", cacheDir}
	var out, errOut bytes.Buffer
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("cached shard exited %d: %s", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("warm cached shard exited %d: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "0 misses") {
		t.Fatalf("warm shard rerun should compute nothing: %s", errOut.String())
	}
}

func TestTablesCacheFlagConflicts(t *testing.T) {
	for _, args := range [][]string{
		{"-exp", "table3", "-no-cache", "-cache", "dir"},
		{"-exp", "table3", "-no-cache", "-cache-readonly"},
		{"-exp", "table3", "-cache-readonly"}, // readonly without -cache
		{"-merge", "dir", "-cache", "dir"},    // merge reads config from artifacts
		{"-exp", "table3", "-cache", ""},      // empty dir with readonly is still invalid
	} {
		args := args
		if args[len(args)-1] == "" {
			args = append(args, "-cache-readonly")
		}
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("args %v accepted", args)
		}
	}
}

// TestTablesCacheGC populates a cache, corrupts one record, GCs with a
// byte budget, and checks the stderr summary plus the warm-rerun
// behavior on what survived.
func TestTablesCacheGC(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cells")
	base := []string{"-exp", "figure8", "-scale", "ci", "-rounds", "2", "-seed", "1", "-cache", cacheDir}
	var out, errOut bytes.Buffer
	if code := run(base, &out, &errOut); code != 0 {
		t.Fatalf("populate run exited %d: %s", code, errOut.String())
	}
	records, err := filepath.Glob(filepath.Join(cacheDir, "*.cell"))
	if err != nil || len(records) < 2 {
		t.Fatalf("cache records: %v (%d found)", err, len(records))
	}
	if err := os.Truncate(records[0], 4); err != nil {
		t.Fatal(err)
	}

	// Prune-only pass removes exactly the corrupt record.
	var gcOut, gcErr bytes.Buffer
	if code := run([]string{"-cache-gc", "-cache", cacheDir}, &gcOut, &gcErr); code != 0 {
		t.Fatalf("cache-gc exited %d: %s", code, gcErr.String())
	}
	if gcOut.Len() != 0 {
		t.Fatalf("cache-gc wrote to stdout: %q", gcOut.String())
	}
	want := fmt.Sprintf("cache-gc: pruned 1 stale, evicted 0 old, kept %d", len(records)-1)
	if !strings.Contains(gcErr.String(), want) {
		t.Fatalf("cache-gc summary %q missing %q", gcErr.String(), want)
	}

	// A tiny byte budget evicts everything else.
	gcErr.Reset()
	if code := run([]string{"-cache-gc", "-cache", cacheDir, "-cache-max-bytes", "1"}, &gcOut, &gcErr); code != 0 {
		t.Fatalf("budgeted cache-gc exited %d: %s", code, gcErr.String())
	}
	if want := fmt.Sprintf("evicted %d old, kept 0 (0 bytes)", len(records)-1); !strings.Contains(gcErr.String(), want) {
		t.Fatalf("budgeted cache-gc summary %q missing %q", gcErr.String(), want)
	}
	left, err := filepath.Glob(filepath.Join(cacheDir, "*.cell"))
	if err != nil || len(left) != 0 {
		t.Fatalf("records left after full eviction: %v", left)
	}
}

func TestTablesCacheGCBadArgs(t *testing.T) {
	for _, args := range [][]string{
		{"-cache-gc"},                                     // no -cache dir
		{"-cache-gc", "-cache", "does-not-exist-xyz"},     // missing dir must not be created
		{"-cache-gc", "-cache", "d", "-exp", "table3"},    // experiment flags conflict
		{"-cache-gc", "-cache", "d", "-cache-readonly"},   // readonly conflicts
		{"-cache-max-bytes", "10", "-exp", "table3"},      // budget without -cache-gc
		{"-cache-gc", "-cache", "d", "-no-cache"},         // no-cache conflicts
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("args %v accepted", args)
		}
	}
	if _, err := os.Stat("does-not-exist-xyz"); !os.IsNotExist(err) {
		t.Fatal("-cache-gc created the missing cache directory")
	}
}

// TestTablesPrecisionFlag checks -precision end to end: f32 runs
// render, "-precision f64" is byte-identical to the default, f32 and
// f64 cells occupy disjoint cache addresses, and invalid spellings or
// mode conflicts are rejected.
func TestTablesPrecisionFlag(t *testing.T) {
	dir := t.TempDir()
	cacheDir := filepath.Join(dir, "cells")
	base := []string{"-exp", "figure8", "-scale", "ci", "-rounds", "2", "-seed", "1"}
	body := func(s string) string { return s[strings.Index(s, "\n"):] }

	var f64Out, errOut bytes.Buffer
	if code := run(append(append([]string{}, base...), "-cache", cacheDir), &f64Out, &errOut); code != 0 {
		t.Fatalf("default-precision run exited %d: %s", code, errOut.String())
	}

	var spelled bytes.Buffer
	errOut.Reset()
	if code := run(append(append([]string{}, base...), "-precision", "f64"), &spelled, &errOut); code != 0 {
		t.Fatalf("-precision f64 exited %d: %s", code, errOut.String())
	}
	if body(spelled.String()) != body(f64Out.String()) {
		t.Fatal("-precision f64 body differs from the default run")
	}

	// f32 renders against the same (warm f64) cache with zero hits:
	// the Precision axis keys separate records.
	var f32Out, f32Err bytes.Buffer
	if code := run(append(append([]string{}, base...), "-precision", "f32", "-cache", cacheDir), &f32Out, &f32Err); code != 0 {
		t.Fatalf("-precision f32 exited %d: %s", code, f32Err.String())
	}
	if !strings.Contains(f32Out.String(), "### figure8") {
		t.Fatalf("-precision f32 missing experiment header:\n%s", f32Out.String())
	}
	if !strings.Contains(f32Err.String(), "0 hits") {
		t.Fatalf("f32 run against f64 cache should have 0 hits: %s", f32Err.String())
	}

	for _, args := range [][]string{
		{"-exp", "figure8", "-precision", "f16"},       // unknown spelling
		{"-merge", dir, "-precision", "f32"},           // merge reads config from artifacts
		{"-cache-gc", "-cache", dir, "-precision", "f32"}, // gc is a maintenance pass
	} {
		var out, bad bytes.Buffer
		if code := run(args, &out, &bad); code == 0 {
			t.Fatalf("args %v accepted", args)
		}
	}
}

func TestTablesBadArgs(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-scale", "nope"}, &out, &errOut); code == 0 {
		t.Fatal("bad scale accepted")
	}
	if code := run([]string{"-exp", "nope", "-scale", "ci"}, &out, &errOut); code == 0 {
		t.Fatal("bad experiment id accepted")
	}
}
