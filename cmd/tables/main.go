// Command tables regenerates the paper's tables and figures.
//
// Usage:
//
//	tables -exp table3 -scale ci -seed 1
//	tables -exp all -scale medium -workers 8
//	tables -list
//
// Experiment ids are the paper's table/figure numbers (table2, table3,
// table4, figure4..figure10) plus the DESIGN.md ablations
// (ablation-reward, ablation-statenorm, ablation-twostage).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"feddrl"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entrypoint: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment id or 'all'")
	scaleName := fs.String("scale", "ci", "scale: ci, medium or paper")
	seed := fs.Uint64("seed", 1, "experiment seed")
	list := fs.Bool("list", false, "list experiment ids and exit")
	csvDir := fs.String("csvdir", "", "also export figure series as CSV into this directory (figure5/7/8)")
	rounds := fs.Int("rounds", 0, "override the scale's communication rounds (0 = keep)")
	workers := fs.Int("workers", 0, "engine worker lanes shared by the experiment grid and every federated run (0 = the scale's default, -1 = GOMAXPROCS); output is identical at any width")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, n := range feddrl.ExperimentNames() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}

	scale, err := feddrl.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *rounds > 0 {
		scale.Rounds = *rounds
	}
	switch {
	case *workers > 0:
		scale.Workers = *workers
	case *workers < 0:
		scale.Workers = runtime.GOMAXPROCS(0)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = feddrl.ExperimentNames()
	}
	for _, id := range ids {
		start := time.Now()
		out, err := feddrl.RunExperiment(id, scale, *seed)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "### %s (scale=%s, seed=%d, took %v)\n\n%s\n", id, scale.Name, *seed, time.Since(start).Round(time.Millisecond), out)
		if *csvDir != "" && (id == "figure5" || id == "figure7" || id == "figure8") {
			paths, err := feddrl.ExportExperimentCSV(id, scale, *seed, *csvDir)
			if err != nil {
				fmt.Fprintf(stderr, "csv export of %s failed: %v\n", id, err)
			}
			for _, p := range paths {
				fmt.Fprintf(stdout, "csv: %s\n", p)
			}
		}
	}
	return 0
}
