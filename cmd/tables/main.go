// Command tables regenerates the paper's tables and figures.
//
// Usage:
//
//	tables -exp table3 -scale ci -seed 1
//	tables -exp all -scale medium
//	tables -list
//
// Experiment ids are the paper's table/figure numbers (table2, table3,
// table4, figure4..figure10) plus the DESIGN.md ablations
// (ablation-reward, ablation-statenorm, ablation-twostage).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"feddrl"
)

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	scaleName := flag.String("scale", "ci", "scale: ci, medium or paper")
	seed := flag.Uint64("seed", 1, "experiment seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csvDir := flag.String("csvdir", "", "also export figure series as CSV into this directory (figure5/7/8)")
	rounds := flag.Int("rounds", 0, "override the scale's communication rounds (0 = keep)")
	flag.Parse()

	if *list {
		for _, n := range feddrl.ExperimentNames() {
			fmt.Println(n)
		}
		return
	}

	scale, err := feddrl.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *rounds > 0 {
		scale.Rounds = *rounds
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = feddrl.ExperimentNames()
	}
	for _, id := range ids {
		start := time.Now()
		out, err := feddrl.RunExperiment(id, scale, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("### %s (scale=%s, seed=%d, took %v)\n\n%s\n", id, scale.Name, *seed, time.Since(start).Round(time.Millisecond), out)
		if *csvDir != "" {
			paths, err := feddrl.ExportExperimentCSV(id, scale, *seed, *csvDir)
			if err == nil {
				for _, p := range paths {
					fmt.Printf("csv: %s\n", p)
				}
			}
		}
	}
}
