// Command tables regenerates the paper's tables and figures.
//
// Usage:
//
//	tables -exp table3 -scale ci -seed 1
//	tables -exp all -scale medium -workers 8
//	tables -exp table3 -seeds 3                 # mean±std over 3 seed replicates
//	tables -exp table3 -shard 1/2 -out s1.art   # run half the grid, write artifacts
//	tables -merge shards/                       # recombine shard artifacts and render
//	tables -exp table3 -cache cells/            # skip cells cached by earlier runs
//	tables -exp table3 -precision f32           # half-width federated state
//	tables -exp byzantine                       # attack × robust-merge grid
//	tables -exp table3 -attack signflip -attack-frac 0.2 -merger median
//	tables -cache-gc -cache cells/ -cache-max-bytes 1000000
//	tables -list
//
// Experiment ids are the paper's table/figure numbers (table2, table3,
// table4, figure4..figure10), the DESIGN.md ablations
// (ablation-reward, ablation-statenorm, ablation-twostage), and the
// async-vs-sync substrate comparison (async-sync), whose "+async" rows
// must reproduce their synchronous base rows exactly, and the Byzantine
// robustness grid (byzantine): seeded attacks × robust merge rules.
// -attack/-attack-frac/-merger instead apply one scale-wide fault model
// and merge rule to any grid experiment's cells.
//
// Sharding: a grid experiment's cells are enumerated in a deterministic
// canonical order, and -shard i/n runs exactly the cells whose position
// is congruent to i-1 mod n, writing their results as a binary artifact
// file instead of text. -merge dir/ loads every *.art file in dir,
// verifies the shards cover the full grid, and renders output
// byte-identical to the unsharded run.
//
// Caching: -cache dir/ keeps a content-addressed record per computed
// grid cell, keyed by the cell spec plus every scale field that can
// change its result. Any later invocation — plain, -shard or -seeds —
// loads matching cells instead of recomputing them and renders
// byte-identical output; a one-line hit/miss summary goes to stderr.
// -cache-readonly serves hits without writing back; -no-cache
// explicitly disables caching and conflicts with the other two.
//
// Cache GC: long-lived shared caches grow without bound, so -cache-gc
// runs a maintenance pass over -cache dir/ and exits: records that can
// never hit again (stale schema, corruption) and abandoned temp files
// are pruned, and with -cache-max-bytes the oldest records (by file
// mtime) are evicted until the directory fits the budget. A one-line
// pruned/evicted/kept summary goes to stderr. Eviction only costs
// future hits — an evicted cell is recomputed exactly like a miss.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"feddrl"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entrypoint: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	fs.SetOutput(stderr)
	exp := fs.String("exp", "all", "experiment id or 'all'")
	scaleName := fs.String("scale", "ci", "scale: ci, medium or paper")
	seed := fs.Uint64("seed", 1, "experiment seed")
	list := fs.Bool("list", false, "list experiment ids and exit")
	csvDir := fs.String("csvdir", "", "also export figure series as CSV into this directory (figure5/7/8)")
	rounds := fs.Int("rounds", 0, "override the scale's communication rounds (0 = keep)")
	workers := fs.Int("workers", 0, "work-stealing engine lanes shared by the experiment grid, every federated run and every evaluation (0 = the scale's default, -1 = GOMAXPROCS); output is identical at any width")
	precName := fs.String("precision", "f64", "federated-state width for every cell: f64 (full, the default) or f32 (half-width uploads and merge); f32 and f64 cells have separate cache keys")
	attackName := fs.String("attack", "none", "scale-wide Byzantine fault model for every cell: none, signflip, gauss, replace, collude or labelflip; attacked cells have separate cache keys")
	attackFrac := fs.Float64("attack-frac", 0.2, "malicious client fraction for -attack")
	mergerName := fs.String("merger", "", "scale-wide server merge rule for every cell: weighted (the default impact-factor merge), median, trimmed or krum")
	seeds := fs.Int("seeds", 1, "seed replicates per cell; >1 renders mean±std columns (grid experiments with a multi-seed renderer)")
	shard := fs.String("shard", "", "run a deterministic slice of a grid experiment, as i/n (e.g. 1/2); writes a binary artifact file instead of text")
	merge := fs.String("merge", "", "merge the shard artifact files (*.art) in this directory and render the combined experiment")
	out := fs.String("out", "", "artifact output path for -shard (default <exp>_<scale>_seed<seed>_seeds<m>_shard<i>of<n>.art)")
	cacheDir := fs.String("cache", "", "content-addressed artifact cache directory (created if missing): grid cells already cached are loaded instead of recomputed, fresh cells are written back")
	cacheRO := fs.Bool("cache-readonly", false, "with -cache: serve cache hits but never write new records (for shared or audited cache directories)")
	noCache := fs.Bool("no-cache", false, "explicitly disable artifact caching; conflicts with -cache and -cache-readonly")
	cacheGC := fs.Bool("cache-gc", false, "garbage-collect the -cache directory and exit: prune stale-schema/corrupt records and abandoned temp files, then evict oldest records down to -cache-max-bytes")
	cacheMax := fs.Int64("cache-max-bytes", 0, "with -cache-gc: evict records oldest-mtime-first until the cache fits this many bytes (0 = prune only)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	if *list {
		for _, n := range feddrl.ExperimentNames() {
			fmt.Fprintln(stdout, n)
		}
		return 0
	}

	if *merge != "" {
		// -merge reads everything (experiment, scale, rounds, seed,
		// seeds) from the artifact headers; any other experiment flag
		// would be silently ignored, so reject the combination.
		var conflict string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "merge":
			default:
				conflict = f.Name
			}
		})
		if conflict != "" {
			fmt.Fprintf(stderr, "tables: -merge reads its configuration from the artifact files; drop -%s\n", conflict)
			return 2
		}
		return runMerge(*merge, stdout, stderr)
	}

	if *cacheGC {
		// -cache-gc is a maintenance pass, not a run: any experiment
		// flag would be silently ignored, so reject the combination.
		var conflict string
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "cache-gc", "cache", "cache-max-bytes":
			default:
				conflict = f.Name
			}
		})
		if conflict != "" {
			fmt.Fprintf(stderr, "tables: -cache-gc only combines with -cache and -cache-max-bytes; drop -%s\n", conflict)
			return 2
		}
		return runCacheGC(*cacheDir, *cacheMax, stderr)
	}
	if *cacheMax != 0 {
		fmt.Fprintln(stderr, "tables: -cache-max-bytes only applies to -cache-gc")
		return 2
	}

	scale, err := feddrl.ScaleByName(*scaleName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *rounds > 0 {
		scale.Rounds = *rounds
	}
	switch {
	case *workers > 0:
		scale.Workers = *workers
	case *workers < 0:
		scale.Workers = runtime.GOMAXPROCS(0)
	}
	prec, err := feddrl.ParsePrecision(*precName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// "f64" canonicalizes to the zero value so "-precision f64" and the
	// default share cache records; F32 cells hash to distinct addresses.
	if prec == feddrl.F32 {
		scale.Precision = string(prec)
	}
	// Same canonicalization for the Byzantine knobs: only a real attack
	// or a non-default merge rule reaches the Scale (and hence the cell
	// cache addresses); "-attack none"/"-merger weighted" spellings stay
	// byte-identical to the defaults. Validation runs regardless so a
	// typo fails fast.
	attack, err := feddrl.ParseAttack(*attackName, *attackFrac)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if _, err := feddrl.ParseMerger(*mergerName, *attackFrac, 2); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if attack != nil {
		scale.Attack = *attackName
		scale.AttackFrac = *attackFrac
	}
	if *mergerName != "" && *mergerName != "weighted" {
		scale.Merger = *mergerName
	}
	if *seeds < 1 {
		fmt.Fprintln(stderr, "tables: -seeds must be >= 1")
		return 2
	}
	if *seeds > 1 && *csvDir != "" {
		fmt.Fprintln(stderr, "tables: -csvdir exports single-seed series and cannot be combined with -seeds > 1")
		return 2
	}
	if *shard != "" && *csvDir != "" {
		fmt.Fprintln(stderr, "tables: -shard writes an artifact file and cannot be combined with -csvdir")
		return 2
	}
	if *out != "" && *shard == "" {
		fmt.Fprintln(stderr, "tables: -out only applies to -shard artifact runs")
		return 2
	}
	if *noCache && (*cacheDir != "" || *cacheRO) {
		fmt.Fprintln(stderr, "tables: -no-cache conflicts with -cache/-cache-readonly")
		return 2
	}
	if *cacheRO && *cacheDir == "" {
		fmt.Fprintln(stderr, "tables: -cache-readonly needs -cache dir/")
		return 2
	}
	var cache *feddrl.ExperimentCache
	if *cacheDir != "" {
		var err error
		cache, err = feddrl.OpenExperimentCache(*cacheDir, *cacheRO)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	if *shard != "" {
		return runShard(*exp, scale, *seed, *seeds, *shard, *out, cache, stdout, stderr)
	}

	ids := []string{*exp}
	if *exp == "all" {
		if *seeds > 1 {
			fmt.Fprintln(stderr, "tables: -seeds needs a specific -exp (not 'all')")
			return 2
		}
		ids = feddrl.ExperimentNames()
	}
	for _, id := range ids {
		start := time.Now()
		out, err := feddrl.RunExperimentSeedsCached(id, scale, *seed, *seeds, cache)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stdout, "### %s (scale=%s, seed=%d, took %v)\n\n%s\n", id, scale.Name, *seed, time.Since(start).Round(time.Millisecond), out)
		if *csvDir != "" && (id == "figure5" || id == "figure7" || id == "figure8") {
			paths, err := feddrl.ExportExperimentCSVCached(id, scale, *seed, *csvDir, cache)
			if err != nil {
				fmt.Fprintf(stderr, "csv export of %s failed: %v\n", id, err)
			}
			for _, p := range paths {
				fmt.Fprintf(stdout, "csv: %s\n", p)
			}
		}
	}
	// The summary goes to stderr so cached and uncached stdout stay
	// byte-identical (the byte-identity gate in scripts/verify.sh).
	if cache != nil {
		fmt.Fprintf(stderr, "cache: %s\n", cache.Summary())
	}
	return 0
}

// runCacheGC runs the cache maintenance pass: prune invalid records
// and abandoned temp files, then evict by mtime to the byte budget.
// The summary goes to stderr, like the cache hit/miss line.
func runCacheGC(dir string, maxBytes int64, stderr io.Writer) int {
	if dir == "" {
		fmt.Fprintln(stderr, "tables: -cache-gc needs -cache dir/")
		return 2
	}
	// OpenExperimentCache would create a missing directory; for a
	// maintenance pass a typo'd path should fail instead.
	if info, err := os.Stat(dir); err != nil || !info.IsDir() {
		fmt.Fprintf(stderr, "tables: -cache-gc: %s is not an existing cache directory\n", dir)
		return 2
	}
	cache, err := feddrl.OpenExperimentCache(dir, false)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	st, err := cache.GC(maxBytes)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fmt.Fprintf(stderr, "cache-gc: %s\n", st.Summary(dir))
	return 0
}

// runShard executes one 1/n slice of a grid experiment and writes its
// artifact file. With a cache, cells completed by any earlier run —
// including an interrupted attempt at this very shard — are loaded
// instead of recomputed.
func runShard(exp string, scale feddrl.Scale, seed uint64, seeds int, shard, out string, cache *feddrl.ExperimentCache, stdout, stderr io.Writer) int {
	if exp == "all" {
		fmt.Fprintln(stderr, "tables: -shard needs a specific -exp (not 'all')")
		return 2
	}
	index, count, err := parseShard(shard)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	set, err := feddrl.RunExperimentShardCached(exp, scale, seed, seeds, index, count, cache)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if out == "" {
		out = fmt.Sprintf("%s_%s_seed%d_seeds%d_shard%dof%d.art", exp, scale.Name, seed, seeds, index, count)
	}
	if dir := filepath.Dir(out); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			fmt.Fprintf(stderr, "tables: artifact dir: %v\n", err)
			return 2
		}
	}
	if err := set.SaveFile(out); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fmt.Fprintf(stdout, "wrote %s (%s shard %d/%d, %d cells)\n", out, exp, index, count, set.Len())
	if cache != nil {
		fmt.Fprintf(stderr, "cache: %s\n", cache.Summary())
	}
	return 0
}

// runMerge recombines the shard artifacts in a directory and renders
// the experiment they belong to.
func runMerge(dir string, stdout, stderr io.Writer) int {
	paths, err := filepath.Glob(filepath.Join(dir, "*.art"))
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if len(paths) == 0 {
		fmt.Fprintf(stderr, "tables: no *.art shard files in %s\n", dir)
		return 2
	}
	sort.Strings(paths)
	sets := make([]*feddrl.ExperimentArtifacts, 0, len(paths))
	for _, p := range paths {
		set, err := feddrl.LoadExperimentArtifacts(p)
		if err != nil {
			fmt.Fprintf(stderr, "tables: %s: %v\n", p, err)
			return 2
		}
		sets = append(sets, set)
	}
	merged, err := feddrl.MergeExperimentArtifacts(sets)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	scale, err := feddrl.ScaleByName(merged.ScaleName)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	scale.Rounds = merged.Rounds
	out, err := feddrl.RenderExperimentArtifacts(scale, merged)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	fmt.Fprintf(stdout, "### %s (scale=%s, seed=%d, merged from %d shards)\n\n%s\n", merged.Experiment, merged.ScaleName, merged.Seed, len(sets), out)
	return 0
}

// parseShard parses an "i/n" shard selector. Range validation (1 <= i
// <= n) lives in the library's shard scheduler, whose error surfaces
// through RunExperimentShard.
func parseShard(s string) (index, count int, err error) {
	parts := strings.Split(s, "/")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("tables: -shard %q is not of the form i/n", s)
	}
	index, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("tables: -shard index %q: %v", parts[0], err)
	}
	count, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("tables: -shard count %q: %v", parts[1], err)
	}
	return index, count, nil
}
