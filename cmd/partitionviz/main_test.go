package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestPartitionvizAllPartitioners smokes every partitioner name through
// the CLI: each must render an illustration plus a stats line.
func TestPartitionvizAllPartitioners(t *testing.T) {
	for _, part := range []string{"PA", "CE", "CN", "Equal", "Non-equal"} {
		var out, errOut bytes.Buffer
		args := []string{"-dataset", "mnist", "-clients", "6", "-partitions", part, "-seed", "3"}
		if code := run(args, &out, &errOut); code != 0 {
			t.Fatalf("%s exited %d: %s", part, code, errOut.String())
		}
		if !strings.Contains(out.String(), "coverage") || !strings.Contains(out.String(), "clusterScore") {
			t.Fatalf("%s output missing stats line:\n%s", part, out.String())
		}
	}
}

func TestPartitionvizMultiplePartitions(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-partitions", "PA,CE,CN", "-clients", "6"}, &out, &errOut); code != 0 {
		t.Fatalf("exited %d: %s", code, errOut.String())
	}
	if got := strings.Count(out.String(), "coverage"); got != 3 {
		t.Fatalf("expected 3 partition blocks, got %d:\n%s", got, out.String())
	}
}

func TestPartitionvizDatasets(t *testing.T) {
	for _, ds := range []string{"fashion", "cifar100"} {
		var out, errOut bytes.Buffer
		if code := run([]string{"-dataset", ds, "-partitions", "CE", "-clients", "4"}, &out, &errOut); code != 0 {
			t.Fatalf("%s exited %d: %s", ds, code, errOut.String())
		}
	}
}

func TestPartitionvizBadArgs(t *testing.T) {
	for _, args := range [][]string{
		{"-dataset", "imagenet"},
		{"-partitions", "XX"},
		{"-bogusflag"},
	} {
		var out, errOut bytes.Buffer
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("args %v accepted", args)
		}
	}
}
