// Command partitionviz prints Figure-4 style illustrations of the
// non-IID partitioners: one row per label, one column per client, glyph
// area proportional to sample count.
//
// Example:
//
//	partitionviz -dataset mnist -clients 10 -partitions PA,CE,CN -delta 0.6
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"feddrl"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entrypoint: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("partitionviz", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dsName := fs.String("dataset", "mnist", "dataset: mnist, fashion or cifar100")
	clients := fs.Int("clients", 10, "number of clients")
	parts := fs.String("partitions", "PA,CE,CN", "comma-separated partition list")
	delta := fs.Float64("delta", 0.6, "cluster-skew level for CE/CN")
	seed := fs.Uint64("seed", 1, "seed")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	var spec feddrl.DataSpec
	switch *dsName {
	case "mnist":
		spec = feddrl.MNISTSim()
	case "fashion":
		spec = feddrl.FashionSim()
	case "cifar100":
		spec = feddrl.CIFAR100Sim()
	default:
		fmt.Fprintf(stderr, "unknown dataset %q\n", *dsName)
		return 2
	}
	train, _ := feddrl.Synthesize(spec.Scaled(0.3), *seed)
	lpc := 2
	if spec.Classes >= 100 {
		lpc = 20
	}
	for _, p := range strings.Split(*parts, ",") {
		r := feddrl.NewRNG(*seed + 7)
		var assign *feddrl.Assignment
		switch strings.TrimSpace(p) {
		case "PA":
			assign = feddrl.Pareto(train, *clients, lpc, 1.5, r)
		case "CE":
			assign = feddrl.ClusteredEqual(train, *clients, *delta, lpc, 3, r)
		case "CN":
			assign = feddrl.ClusteredNonEqual(train, *clients, *delta, lpc, 3, 1.0, r)
		case "Equal":
			assign = feddrl.EqualShards(train, *clients, 2, r)
		case "Non-equal":
			assign = feddrl.NonEqualShards(train, *clients, 10, 6, 14, r)
		default:
			fmt.Fprintf(stderr, "unknown partition %q\n", p)
			return 2
		}
		fmt.Fprintln(stdout, feddrl.PartitionASCII(train, assign))
		st := feddrl.ComputePartitionStats(train, assign)
		fmt.Fprintf(stdout, "coverage %.0f%%  quantityCV %.3f  clusterScore %.3f\n\n",
			st.Coverage*100, st.QuantityCV, st.ClusterScore)
	}
	return 0
}
