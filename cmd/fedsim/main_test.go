package main

import (
	"bytes"
	"strings"
	"testing"
)

// runArgs invokes the CLI entrypoint and returns stdout.
func runArgs(t *testing.T, args ...string) string {
	t.Helper()
	var out, errOut bytes.Buffer
	if code := run(args, &out, &errOut); code != 0 {
		t.Fatalf("run(%v) exited %d: %s", args, code, errOut.String())
	}
	return out.String()
}

// tiny holds the flags that make a run finish in well under a second.
var tiny = []string{"-datascale", "0.05", "-rounds", "2", "-clients", "4", "-k", "2", "-epochs", "1"}

func TestFedsimSmoke(t *testing.T) {
	for _, method := range []string{"SingleSet", "FedAvg", "FedProx", "FedDRL"} {
		out := runArgs(t, append([]string{"-method", method}, tiny...)...)
		if !strings.Contains(out, "best ") || !strings.Contains(out, "rounds=2") {
			t.Fatalf("%s: unexpected output:\n%s", method, out)
		}
	}
}

// TestFedsimWorkersDeterminism checks the -workers flag end to end: the
// printed report must be byte-identical at any engine width.
func TestFedsimWorkersDeterminism(t *testing.T) {
	args := append([]string{"-method", "FedAvg"}, tiny...)
	want := runArgs(t, append(args, "-workers", "0")...)
	for _, w := range []string{"2", "4", "-1"} {
		got := runArgs(t, append(args, "-workers", w)...)
		// Timing lines legitimately differ; compare everything above them.
		trim := func(s string) string { return s[:strings.LastIndex(s, "mean decision time")] }
		if trim(got) != trim(want) {
			t.Fatalf("-workers %s output differs:\n%s\nvs\n%s", w, got, want)
		}
	}
}

// TestFedsimPrecisionFlag runs every method under -precision f32: the
// run must complete, and (for the federated methods) the report must be
// byte-identical at any engine width — the f32 determinism contract
// surfaced end to end through the CLI.
func TestFedsimPrecisionFlag(t *testing.T) {
	for _, method := range []string{"SingleSet", "FedAvg", "FedDRL"} {
		out := runArgs(t, append([]string{"-method", method, "-precision", "f32"}, tiny...)...)
		if !strings.Contains(out, "best ") {
			t.Fatalf("%s -precision f32: unexpected output:\n%s", method, out)
		}
	}
	args := append([]string{"-method", "FedAvg", "-precision", "f32"}, tiny...)
	trim := func(s string) string { return s[:strings.LastIndex(s, "mean decision time")] }
	want := runArgs(t, append(args, "-workers", "0")...)
	for _, w := range []string{"2", "-1"} {
		got := runArgs(t, append(args, "-workers", w)...)
		if trim(got) != trim(want) {
			t.Fatalf("-precision f32 -workers %s output differs:\n%s\nvs\n%s", w, got, want)
		}
	}
	// "-precision f64" is the spelled-out default: identical output.
	base := append([]string{"-method", "FedAvg"}, tiny...)
	if got := runArgs(t, append(base, "-precision", "f64")...); trim(got) != trim(runArgs(t, base...)) {
		t.Fatal("-precision f64 differs from the default run")
	}
}

func TestFedsimBadFlags(t *testing.T) {
	var out, errOut bytes.Buffer
	for _, args := range [][]string{
		{"-dataset", "nope"},
		{"-partition", "nope"},
		{"-method", "nope"},
		{"-precision", "f16"},
	} {
		if code := run(args, &out, &errOut); code == 0 {
			t.Fatalf("run(%v) succeeded, want failure", args)
		}
	}
}
