// Command fedsim runs one federated-learning experiment cell from flags:
// a dataset, a non-IID partition, a method, and federation sizes. It
// prints the per-round accuracy timeline and a summary.
//
// Example:
//
//	fedsim -dataset mnist -partition CE -method FedDRL -clients 10 -k 10 -rounds 30
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"feddrl"
)

func main() {
	dsName := flag.String("dataset", "mnist", "dataset: mnist, fashion or cifar100")
	partName := flag.String("partition", "CE", "partition: PA, CE, CN, Equal or Non-equal")
	method := flag.String("method", "FedDRL", "method: SingleSet, FedAvg, FedProx or FedDRL")
	clients := flag.Int("clients", 10, "number of clients N")
	k := flag.Int("k", 10, "participating clients per round K")
	rounds := flag.Int("rounds", 20, "communication rounds")
	delta := flag.Float64("delta", 0.6, "cluster-skew level (CE/CN)")
	dataScale := flag.Float64("datascale", 0.3, "dataset size multiplier")
	epochs := flag.Int("epochs", 3, "local epochs E")
	lr := flag.Float64("lr", 0.03, "local learning rate")
	exploreStd := flag.Float64("explorestd", 0.05, "FedDRL exploration noise scale")
	exploreDecay := flag.Float64("exploredecay", 0.99, "FedDRL exploration decay per action")
	seed := flag.Uint64("seed", 1, "run seed")
	flag.Parse()

	var spec feddrl.DataSpec
	switch *dsName {
	case "mnist":
		spec = feddrl.MNISTSim()
	case "fashion":
		spec = feddrl.FashionSim()
	case "cifar100":
		spec = feddrl.CIFAR100Sim()
	default:
		fmt.Fprintf(os.Stderr, "unknown dataset %q\n", *dsName)
		os.Exit(2)
	}
	spec = spec.Scaled(*dataScale)
	train, test := feddrl.Synthesize(spec, *seed)

	lpc := 2
	if spec.Classes >= 100 {
		lpc = 20
	}
	r := feddrl.NewRNG(*seed + 1)
	var assign *feddrl.Assignment
	switch *partName {
	case "PA":
		assign = feddrl.Pareto(train, *clients, lpc, 1.5, r)
	case "CE":
		assign = feddrl.ClusteredEqual(train, *clients, *delta, lpc, 3, r)
	case "CN":
		assign = feddrl.ClusteredNonEqual(train, *clients, *delta, lpc, 3, 1.0, r)
	case "Equal":
		assign = feddrl.EqualShards(train, *clients, 2, r)
	case "Non-equal":
		assign = feddrl.NonEqualShards(train, *clients, 10, 6, 14, r)
	default:
		fmt.Fprintf(os.Stderr, "unknown partition %q\n", *partName)
		os.Exit(2)
	}

	factory := feddrl.MLPFactory(train.Dim, []int{48}, train.NumClasses)
	kk := *k
	if kk > *clients {
		kk = *clients
	}
	cfg := feddrl.RunConfig{
		Rounds:  *rounds,
		K:       kk,
		Local:   feddrl.LocalConfig{Epochs: *epochs, Batch: 10, LR: *lr},
		Factory: factory,
		Seed:    *seed + 2,
	}

	var res *feddrl.Result
	switch *method {
	case "SingleSet":
		res = feddrl.SingleSet(cfg, train, test)
	case "FedAvg":
		res = feddrl.Run(cfg, feddrl.BuildClients(train, assign.ClientIndices, factory, *seed+3), test, feddrl.FedAvg{})
	case "FedProx":
		cfg.Local.ProxMu = 0.01
		res = feddrl.Run(cfg, feddrl.BuildClients(train, assign.ClientIndices, factory, *seed+3), test, feddrl.FedProx{})
	case "FedDRL":
		drlCfg := feddrl.DefaultAgentConfig(kk)
		drlCfg.Hidden = 64
		drlCfg.BatchSize = 32
		drlCfg.WarmupExperiences = 8
		drlCfg.UpdatesPerRound = 4
		drlCfg.ExploreStd = *exploreStd
		drlCfg.ExploreDecay = *exploreDecay
		drlCfg.Seed = *seed + 4
		res = feddrl.Run(cfg, feddrl.BuildClients(train, assign.ClientIndices, factory, *seed+3), test, feddrl.NewFedDRL(feddrl.NewAgent(drlCfg)))
	default:
		fmt.Fprintf(os.Stderr, "unknown method %q\n", *method)
		os.Exit(2)
	}

	fmt.Printf("%s on %s/%s, N=%d K=%d rounds=%d\n", res.Method, spec.Name, *partName, *clients, kk, *rounds)
	fmt.Println(strings.Repeat("-", 48))
	for i, acc := range res.Accuracy {
		fmt.Printf("round %3d  acc %6.2f%%\n", res.AccRounds[i], acc)
	}
	fmt.Println(strings.Repeat("-", 48))
	fmt.Printf("best %.2f%%  final %.2f%%  params %d\n", res.Best(), res.Final(), res.NumParam)
	fmt.Printf("mean decision time %v, mean aggregation time %v\n", res.MeanDecisionTime(), res.MeanAggTime())
}
