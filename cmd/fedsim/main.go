// Command fedsim runs one federated-learning experiment cell from flags:
// a dataset, a non-IID partition, a method, and federation sizes. It
// prints the per-round accuracy timeline and a summary.
//
// Example:
//
//	fedsim -dataset mnist -partition CE -method FedDRL -clients 10 -k 10 -rounds 30 -workers 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"feddrl"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entrypoint: flags in, exit code out.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fedsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dsName := fs.String("dataset", "mnist", "dataset: mnist, fashion or cifar100")
	partName := fs.String("partition", "CE", "partition: PA, CE, CN, Equal or Non-equal")
	method := fs.String("method", "FedDRL", "method: SingleSet, FedAvg, FedProx or FedDRL")
	clients := fs.Int("clients", 10, "number of clients N")
	k := fs.Int("k", 10, "participating clients per round K")
	rounds := fs.Int("rounds", 20, "communication rounds")
	delta := fs.Float64("delta", 0.6, "cluster-skew level (CE/CN)")
	dataScale := fs.Float64("datascale", 0.3, "dataset size multiplier")
	epochs := fs.Int("epochs", 3, "local epochs E")
	lr := fs.Float64("lr", 0.03, "local learning rate")
	exploreStd := fs.Float64("explorestd", 0.05, "FedDRL exploration noise scale")
	exploreDecay := fs.Float64("exploredecay", 0.99, "FedDRL exploration decay per action")
	workers := fs.Int("workers", 0, "work-stealing engine lanes shared by client training, evaluation and the weight merge (0 = sequential, -1 = GOMAXPROCS); results are identical at any width")
	precName := fs.String("precision", "f64", "federated-state width: f64 (full, the default) or f32 (half-width uploads and merge; local training stays f64; SingleSet ignores it)")
	attackName := fs.String("attack", "none", "Byzantine fault model corrupting a seeded identity-stable client fraction: none, signflip, gauss, replace, collude or labelflip")
	attackFrac := fs.Float64("attack-frac", 0.2, "malicious client fraction for -attack (identity-stable across rounds)")
	mergerName := fs.String("merger", "", "server merge rule: weighted (the default impact-factor merge), median, trimmed or krum")
	seed := fs.Uint64("seed", 1, "run seed")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	prec, err := feddrl.ParsePrecision(*precName)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	attack, err := feddrl.ParseAttack(*attackName, *attackFrac)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}

	var spec feddrl.DataSpec
	switch *dsName {
	case "mnist":
		spec = feddrl.MNISTSim()
	case "fashion":
		spec = feddrl.FashionSim()
	case "cifar100":
		spec = feddrl.CIFAR100Sim()
	default:
		fmt.Fprintf(stderr, "unknown dataset %q\n", *dsName)
		return 2
	}
	spec = spec.Scaled(*dataScale)
	train, test := feddrl.Synthesize(spec, *seed)

	lpc := 2
	if spec.Classes >= 100 {
		lpc = 20
	}
	r := feddrl.NewRNG(*seed + 1)
	var assign *feddrl.Assignment
	switch *partName {
	case "PA":
		assign = feddrl.Pareto(train, *clients, lpc, 1.5, r)
	case "CE":
		assign = feddrl.ClusteredEqual(train, *clients, *delta, lpc, 3, r)
	case "CN":
		assign = feddrl.ClusteredNonEqual(train, *clients, *delta, lpc, 3, 1.0, r)
	case "Equal":
		assign = feddrl.EqualShards(train, *clients, 2, r)
	case "Non-equal":
		assign = feddrl.NonEqualShards(train, *clients, 10, 6, 14, r)
	default:
		fmt.Fprintf(stderr, "unknown partition %q\n", *partName)
		return 2
	}

	factory := feddrl.MLPFactory(train.Dim, []int{48}, train.NumClasses)
	kk := *k
	if kk > *clients {
		kk = *clients
	}
	engineWorkers := *workers
	if engineWorkers < 0 {
		engineWorkers = 0 // RunConfig: 0 + Parallel resolves to GOMAXPROCS
	}
	// Krum sizes its tolerated-fault count f from the malicious
	// fraction, so the merger parses once K is clamped.
	merger, err := feddrl.ParseMerger(*mergerName, *attackFrac, kk)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	cfg := feddrl.RunConfig{
		Rounds:   *rounds,
		K:        kk,
		Local:    feddrl.LocalConfig{Epochs: *epochs, Batch: 10, LR: *lr},
		Factory:  factory,
		Seed:     *seed + 2,
		Workers:   engineWorkers,
		Parallel:  *workers < 0,
		Precision: prec,
		Attack:    attack,
		Merger:    merger,
	}

	var res *feddrl.Result
	switch *method {
	case "SingleSet":
		res = feddrl.SingleSet(cfg, train, test)
	case "FedAvg":
		res = feddrl.Run(cfg, feddrl.BuildClients(train, assign.ClientIndices, factory, *seed+3), test, feddrl.FedAvg{})
	case "FedProx":
		cfg.Local.ProxMu = 0.01
		res = feddrl.Run(cfg, feddrl.BuildClients(train, assign.ClientIndices, factory, *seed+3), test, feddrl.FedProx{})
	case "FedDRL":
		drlCfg := feddrl.DefaultAgentConfig(kk)
		drlCfg.Hidden = 64
		drlCfg.BatchSize = 32
		drlCfg.WarmupExperiences = 8
		drlCfg.UpdatesPerRound = 4
		drlCfg.ExploreStd = *exploreStd
		drlCfg.ExploreDecay = *exploreDecay
		drlCfg.Seed = *seed + 4
		res = feddrl.Run(cfg, feddrl.BuildClients(train, assign.ClientIndices, factory, *seed+3), test, feddrl.NewFedDRL(feddrl.NewAgent(drlCfg)))
	default:
		fmt.Fprintf(stderr, "unknown method %q\n", *method)
		return 2
	}

	fmt.Fprintf(stdout, "%s on %s/%s, N=%d K=%d rounds=%d\n", res.Method, spec.Name, *partName, *clients, kk, *rounds)
	fmt.Fprintln(stdout, strings.Repeat("-", 48))
	for i, acc := range res.Accuracy {
		fmt.Fprintf(stdout, "round %3d  acc %6.2f%%\n", res.AccRounds[i], acc)
	}
	fmt.Fprintln(stdout, strings.Repeat("-", 48))
	fmt.Fprintf(stdout, "best %.2f%%  final %.2f%%  params %d\n", res.Best(), res.Final(), res.NumParam)
	fmt.Fprintf(stdout, "mean decision time %v, mean aggregation time %v\n", res.MeanDecisionTime(), res.MeanAggTime())
	return 0
}
