module feddrl

go 1.21
