// Pillcluster reproduces the paper's motivating scenario (Figure 1): a
// federation of patients whose pill-image data is cluster-skewed by
// disease. Patients with the same disease take similar medications, and
// common diseases have many patients — exactly the inter-client
// correlation the paper's CE/CN partitions model.
//
// The example builds a 12-pill synthetic dataset, groups 30 patients into
// three disease cohorts (diabetes, hypertension, other) with a dominant
// cohort, trains FedAvg and FedDRL, and reports how much the global model
// favors the dominant cohort under each method.
package main

import (
	"fmt"

	"feddrl"
)

func main() {
	// A "pill camera" dataset: 12 medication classes on small images.
	spec := feddrl.DataSpec{
		Name:          "pills",
		Classes:       12,
		Shape:         feddrl.ImageShape{C: 1, H: 8, W: 8},
		TrainPerClass: 60, TestPerClass: 15,
		ProtoStd: 1.4, NoiseStd: 0.8,
	}
	train, test := feddrl.Synthesize(spec, 2026)
	fmt.Printf("pill dataset: %d train / %d test images, %d medications\n",
		train.N, test.N, train.NumClasses)

	// 30 patients; the diabetes cohort dominates (60%), mirroring Fig. 1's
	// distribution of 100 real patients into three disease groups. Each
	// patient photographs 4 of their cohort's medications; quantities are
	// skewed (some patients log many more pills).
	const patients, k = 30, 10
	assign := feddrl.ClusteredNonEqual(train, patients, 0.6, 4, 3, 1.2, feddrl.NewRNG(3))
	names := []string{"diabetes", "hypertension", "other"}
	counts := map[int]int{}
	for _, g := range assign.Clusters {
		counts[g]++
	}
	fmt.Println("\ncohorts:")
	for g, name := range names {
		fmt.Printf("  %-12s %2d patients\n", name, counts[g])
	}
	st := feddrl.ComputePartitionStats(train, assign)
	fmt.Printf("cluster score %.3f, quantity CV %.3f (both >0: cluster skew + pill-count imbalance)\n\n",
		st.ClusterScore, st.QuantityCV)

	factory := feddrl.MLPFactory(train.Dim, []int{48}, train.NumClasses)
	cfg := feddrl.RunConfig{
		Rounds:  15,
		K:       k,
		Local:   feddrl.LocalConfig{Epochs: 3, Batch: 10, LR: 0.03},
		Factory: factory,
		Seed:    11,
	}

	avg := feddrl.Run(cfg, feddrl.BuildClients(train, assign.ClientIndices, factory, 11), test, feddrl.FedAvg{})

	drlCfg := feddrl.DefaultAgentConfig(k)
	drlCfg.Hidden = 64
	drlCfg.BatchSize = 32
	drlCfg.WarmupExperiences = 4
	drlCfg.UpdatesPerRound = 4
	drl := feddrl.Run(cfg, feddrl.BuildClients(train, assign.ClientIndices, factory, 11), test, feddrl.NewFedDRL(feddrl.NewAgent(drlCfg)))

	fmt.Printf("global accuracy: FedAvg %.2f%%  FedDRL %.2f%%\n", avg.Best(), drl.Best())

	// Fairness across cohorts: variance of per-patient inference loss.
	// High variance means the global model memorized the dominant cohort's
	// pills and neglects the rare diseases.
	fmt.Printf("per-patient loss variance (tail): FedAvg %.4f  FedDRL %.4f\n",
		avg.ClientLossVars().Tail(4), drl.ClientLossVars().Tail(4))
	fmt.Printf("per-patient loss mean     (tail): FedAvg %.4f  FedDRL %.4f\n",
		avg.ClientLossMeans().Tail(4), drl.ClientLossMeans().Tail(4))
	fmt.Println("\n(lower variance = fairer across disease cohorts; see paper Fig. 6)")
}
