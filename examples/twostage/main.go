// Twostage demonstrates the paper's two-stage training strategy (§3.4.2,
// Fig. 3b) through the public API: two online workers interact with
// independent simulated FL environments in parallel, their experience
// buffers are gathered into a centralized buffer, and a main agent is
// trained offline on the merged experience. The pre-trained agent is
// then checkpointed to disk, restored, and deployed on a fresh
// federation — compared against a cold-started agent.
package main

import (
	"fmt"
	"math"
	"os"
	"path/filepath"

	"feddrl"
)

// simEnv is a lightweight FL environment: a tiny federation whose
// aggregation weights come from the worker's actions. State and reward
// follow the paper's definitions (§3.3.2, Eq. 7).
type simEnv struct {
	k       int
	seed    uint64
	episode int

	cfg     feddrl.AgentConfig
	train   *feddrl.Dataset
	clients []*feddrl.Client
	factory feddrl.ModelFactory
	global  []float64
	updates []feddrl.Update
	round   int
}

func newSimEnv(cfg feddrl.AgentConfig, seed uint64, episode int) *simEnv {
	spec := feddrl.MNISTSim().Scaled(0.1)
	train, _ := feddrl.Synthesize(spec, seed)
	return &simEnv{k: cfg.K, seed: seed, episode: episode, cfg: cfg, train: train}
}

func (e *simEnv) Reset() []float64 {
	assign := feddrl.ClusteredEqual(e.train, e.k, 0.6, 2, 2, feddrl.NewRNG(e.seed+1))
	e.factory = feddrl.MLPFactory(e.train.Dim, []int{16}, e.train.NumClasses)
	e.clients = feddrl.BuildClients(e.train, assign.ClientIndices, e.factory, e.seed+2)
	e.global = e.factory(e.seed + 3).ParamVector()
	e.round = 0
	e.step()
	return e.state()
}

func (e *simEnv) step() {
	lc := feddrl.LocalConfig{Epochs: 1, Batch: 10, LR: 0.05}
	e.updates = make([]feddrl.Update, len(e.clients))
	for i, c := range e.clients {
		e.updates[i] = c.Run(e.global, lc)
	}
}

func (e *simEnv) state() []float64 {
	lb := make([]float64, e.k)
	for i, u := range e.updates {
		lb[i] = u.LossBefore
	}
	// A compact hand-rolled state for the example: the agent only needs
	// consistent dimensions, so reuse the losses for all three blocks.
	s := make([]float64, 3*e.k)
	for i, u := range e.updates {
		s[i] = u.LossBefore
		s[e.k+i] = u.LossAfter
		s[2*e.k+i] = float64(u.N)
	}
	return s
}

func (e *simEnv) Step(action []float64) ([]float64, float64, bool) {
	// Softmax the action means into aggregation weights.
	alpha := make([]float64, e.k)
	max := action[0]
	for i := 1; i < e.k; i++ {
		if action[i] > max {
			max = action[i]
		}
	}
	sum := 0.0
	for i := 0; i < e.k; i++ {
		alpha[i] = math.Exp(action[i] - max)
		sum += alpha[i]
	}
	for i := range alpha {
		alpha[i] /= sum
	}
	e.global = feddrl.Aggregate(e.updates, alpha)
	e.round++
	e.step()
	// Eq. 7 reward (negated): mean + (max-min) of the fresh losses.
	lo, hi, mean := 1e18, -1e18, 0.0
	for _, u := range e.updates {
		mean += u.LossBefore
		if u.LossBefore < lo {
			lo = u.LossBefore
		}
		if u.LossBefore > hi {
			hi = u.LossBefore
		}
	}
	mean /= float64(e.k)
	return e.state(), -(mean + (hi - lo)), e.round >= e.episode
}

func main() {
	const k = 4
	cfg := feddrl.DefaultAgentConfig(k)
	cfg.Hidden = 32
	cfg.BatchSize = 16
	cfg.WarmupExperiences = 4
	cfg.UpdatesPerRound = 2

	// Stage 1 (online, parallel workers) + stage 2 (offline on the
	// merged buffer).
	fmt.Println("two-stage training: 2 workers x 12 rounds online, 8 offline updates")
	res := feddrl.TrainTwoStage(cfg, func(w int, seed uint64) feddrl.Env {
		return newSimEnv(cfg, seed, 6)
	}, 2, 12, 8)
	fmt.Printf("worker experiences gathered: %v (centralized buffer: %d)\n",
		res.WorkerExperiences, res.Agent.Buffer.Len())

	// Checkpoint the trained agent and restore it — the deployment path.
	dir, err := os.MkdirTemp("", "feddrl-twostage")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	ckptPath := filepath.Join(dir, "agent.ckpt")
	if err := res.Agent.SaveFile(ckptPath); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	restored, err := feddrl.LoadAgentFile(cfg, ckptPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("agent checkpointed to %s and restored\n\n", ckptPath)

	// Deploy on a fresh federation vs a cold-started agent.
	spec := feddrl.MNISTSim().Scaled(0.2)
	train, test := feddrl.Synthesize(spec, 555)
	assign := feddrl.ClusteredEqual(train, k, 0.6, 2, 2, feddrl.NewRNG(9))
	factory := feddrl.MLPFactory(train.Dim, []int{16}, train.NumClasses)
	runCfg := feddrl.RunConfig{
		Rounds:  10,
		K:       k,
		Local:   feddrl.LocalConfig{Epochs: 2, Batch: 10, LR: 0.05},
		Factory: factory,
		Seed:    10,
	}
	pre := feddrl.Run(runCfg, feddrl.BuildClients(train, assign.ClientIndices, factory, 10), test, feddrl.NewFedDRL(restored))
	cold := feddrl.Run(runCfg, feddrl.BuildClients(train, assign.ClientIndices, factory, 10), test, feddrl.NewFedDRL(feddrl.NewAgent(cfg)))

	fmt.Println("deployment on a fresh federation:")
	fmt.Printf("  pre-trained agent: best %.2f%%, early mean %.2f%%\n",
		pre.Best(), pre.Accuracy[:3].Mean())
	fmt.Printf("  cold-start agent:  best %.2f%%, early mean %.2f%%\n",
		cold.Best(), cold.Accuracy[:3].Mean())
}
