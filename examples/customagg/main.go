// Customagg shows how to implement a custom aggregation strategy against
// the public Aggregator interface — the extension point §3.1 motivates.
// The example implements "inverse-loss weighting" (clients whose local
// models fit worse get more aggregation weight, a crude fairness
// heuristic) and compares it with FedAvg and FedDRL on cluster-skewed
// data.
package main

import (
	"fmt"
	"math"

	"feddrl"
)

// invLoss weights clients by softmax of their pre-training global-model
// loss: clients the global model serves worst get the most say. It is a
// hand-written rule — exactly the kind of heuristic the paper replaces
// with a learned policy.
type invLoss struct{ temp float64 }

func (invLoss) Name() string { return "InvLoss" }

func (a invLoss) ImpactFactors(round int, updates []feddrl.Update) []float64 {
	w := make([]float64, len(updates))
	max := math.Inf(-1)
	for i, u := range updates {
		w[i] = u.LossBefore / a.temp
		if w[i] > max {
			max = w[i]
		}
	}
	sum := 0.0
	for i := range w {
		w[i] = math.Exp(w[i] - max)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

func main() {
	spec := feddrl.MNISTSim().Scaled(0.25)
	train, test := feddrl.Synthesize(spec, 99)
	const nClients, k = 10, 10
	assign := feddrl.ClusteredEqual(train, nClients, 0.6, 2, 3, feddrl.NewRNG(4))
	factory := feddrl.MLPFactory(train.Dim, []int{48}, train.NumClasses)
	cfg := feddrl.RunConfig{
		Rounds:  12,
		K:       k,
		Local:   feddrl.LocalConfig{Epochs: 3, Batch: 10, LR: 0.03},
		Factory: factory,
		Seed:    13,
	}
	clients := func() []*feddrl.Client {
		return feddrl.BuildClients(train, assign.ClientIndices, factory, 13)
	}

	avg := feddrl.Run(cfg, clients(), test, feddrl.FedAvg{})
	inv := feddrl.Run(cfg, clients(), test, invLoss{temp: 0.5})

	drlCfg := feddrl.DefaultAgentConfig(k)
	drlCfg.Hidden = 64
	drlCfg.BatchSize = 32
	drlCfg.WarmupExperiences = 4
	drlCfg.UpdatesPerRound = 4
	drl := feddrl.Run(cfg, clients(), test, feddrl.NewFedDRL(feddrl.NewAgent(drlCfg)))

	fmt.Println("method   best acc   loss-variance (fairness, tail)")
	for _, r := range []*feddrl.Result{avg, inv, drl} {
		fmt.Printf("%-8s %6.2f%%    %.4f\n", r.Method, r.Best(), r.ClientLossVars().Tail(4))
	}
	fmt.Println("\nInvLoss is a fixed rule: it helps on this distribution but has no way")
	fmt.Println("to adapt if the skew pattern changes — the gap FedDRL's learning closes.")
}
