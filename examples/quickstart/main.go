// Quickstart: train a federated model on a cluster-skewed partition with
// FedAvg and with FedDRL, and compare. Runs in well under a minute on one
// CPU core.
package main

import (
	"fmt"
	"io"
	"os"

	"feddrl"
)

func main() {
	if err := run(os.Stdout, 0.3, 15, 3); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// run executes the quickstart at the given dataset scale, round count
// and local-epoch budget (the defaults above match the package comment;
// the test shrinks them).
func run(out io.Writer, dataScale float64, rounds, epochs int) error {
	// 1. Synthesize the MNIST analogue (10 classes, 8x8 images).
	spec := feddrl.MNISTSim().Scaled(dataScale)
	train, test := feddrl.Synthesize(spec, 42)
	fmt.Fprintf(out, "dataset %s: %d train / %d test samples, %d classes\n",
		spec.Name, train.N, test.N, train.NumClasses)

	// 2. Partition with the paper's cluster skew (CE): 10 clients, a main
	// group holding 60% of them, 2 labels per client.
	const nClients, k = 10, 10
	assign := feddrl.ClusteredEqual(train, nClients, 0.6, 2, 3, feddrl.NewRNG(1))
	stats := feddrl.ComputePartitionStats(train, assign)
	fmt.Fprintf(out, "partition CE: coverage %.0f%%, cluster score %.3f\n\n",
		stats.Coverage*100, stats.ClusterScore)

	// 3. Shared model and run configuration (Algorithm 2).
	factory := feddrl.MLPFactory(train.Dim, []int{48}, train.NumClasses)
	cfg := feddrl.RunConfig{
		Rounds:  rounds,
		K:       k,
		Local:   feddrl.LocalConfig{Epochs: epochs, Batch: 10, LR: 0.03},
		Factory: factory,
		Seed:    7,
		Workers: 4, // bounded engine; results identical at any width
	}

	// 4. Baseline: FedAvg (impact factors proportional to sample counts).
	avg := feddrl.Run(cfg, feddrl.BuildClients(train, assign.ClientIndices, factory, 7), test, feddrl.FedAvg{})

	// 5. FedDRL: a DDPG agent decides the impact factors each round.
	drlCfg := feddrl.DefaultAgentConfig(k)
	drlCfg.Hidden = 64 // scaled down from Table 1's 256 for the quickstart
	drlCfg.BatchSize = 32
	drlCfg.WarmupExperiences = 4
	drlCfg.UpdatesPerRound = 4
	agent := feddrl.NewAgent(drlCfg)
	drl := feddrl.Run(cfg, feddrl.BuildClients(train, assign.ClientIndices, factory, 7), test, feddrl.NewFedDRL(agent))

	// 6. Compare.
	fmt.Fprintln(out, "round   FedAvg   FedDRL")
	for i := range avg.Accuracy {
		fmt.Fprintf(out, "%5d   %5.2f%%   %5.2f%%\n", avg.AccRounds[i], avg.Accuracy[i], drl.Accuracy[i])
	}
	fmt.Fprintf(out, "\nbest accuracy: FedAvg %.2f%%  FedDRL %.2f%%\n", avg.Best(), drl.Best())
	fmt.Fprintf(out, "client-loss variance (fairness, last rounds): FedAvg %.4f  FedDRL %.4f\n",
		avg.ClientLossVars().Tail(4), drl.ClientLossVars().Tail(4))
	fmt.Fprintf(out, "server overhead per round: decision %v, aggregation %v\n",
		drl.MeanDecisionTime(), drl.MeanAggTime())
	return nil
}
