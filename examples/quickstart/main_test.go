package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestQuickstartRuns executes the quickstart end to end at a miniature
// configuration, so the example stops being a [no test files] blind
// spot.
func TestQuickstartRuns(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, 0.05, 2, 1); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"dataset mnist-sim", "partition CE", "best accuracy: FedAvg", "FedDRL"} {
		if !strings.Contains(s, want) {
			t.Fatalf("quickstart output missing %q:\n%s", want, s)
		}
	}
}
