// Sensitivity sweeps the two knobs the paper studies in §4.3: the number
// of participating clients K (Fig. 7) and the cluster-skew level δ
// (Fig. 8), comparing FedAvg with FedDRL at each setting.
package main

import (
	"fmt"

	"feddrl"
)

func run(train, test *feddrl.Dataset, assign *feddrl.Assignment, k int, drlAgent bool, seed uint64) *feddrl.Result {
	factory := feddrl.MLPFactory(train.Dim, []int{32}, train.NumClasses)
	cfg := feddrl.RunConfig{
		Rounds:  10,
		K:       k,
		Local:   feddrl.LocalConfig{Epochs: 2, Batch: 10, LR: 0.04},
		Factory: factory,
		Seed:    seed,
	}
	clients := feddrl.BuildClients(train, assign.ClientIndices, factory, seed)
	if !drlAgent {
		return feddrl.Run(cfg, clients, test, feddrl.FedAvg{})
	}
	drlCfg := feddrl.DefaultAgentConfig(k)
	drlCfg.Hidden = 32
	drlCfg.BatchSize = 16
	drlCfg.WarmupExperiences = 3
	drlCfg.UpdatesPerRound = 2
	return feddrl.Run(cfg, clients, test, feddrl.NewFedDRL(feddrl.NewAgent(drlCfg)))
}

func main() {
	spec := feddrl.FashionSim().Scaled(0.25)
	train, test := feddrl.Synthesize(spec, 77)
	const nClients = 20

	// --- Fig. 7 analogue: participation sweep at fixed delta = 0.6. ---
	fmt.Println("participation sweep (CE, delta=0.6):")
	fmt.Println("  K    FedAvg   FedDRL")
	assign := feddrl.ClusteredEqual(train, nClients, 0.6, 2, 3, feddrl.NewRNG(5))
	for _, k := range []int{5, 10, 20} {
		avg := run(train, test, assign, k, false, 101)
		drl := run(train, test, assign, k, true, 101)
		fmt.Printf(" %3d   %5.2f%%   %5.2f%%\n", k, avg.Best(), drl.Best())
	}

	// --- Fig. 8 analogue: non-IID level sweep at fixed K. ---
	fmt.Println("\nnon-IID level sweep (CE, K=10):")
	fmt.Println(" delta  FedAvg   FedDRL")
	for _, delta := range []float64{0.2, 0.4, 0.6} {
		a := feddrl.ClusteredEqual(train, nClients, delta, 2, 3, feddrl.NewRNG(6))
		avg := run(train, test, a, 10, false, 202)
		drl := run(train, test, a, 10, true, 202)
		fmt.Printf("  %.1f   %5.2f%%   %5.2f%%\n", delta, avg.Best(), drl.Best())
	}
	fmt.Println("\n(the paper finds: K changes convergence speed, not final accuracy;")
	fmt.Println(" higher delta hurts all methods but FedDRL degrades the least)")
}
