// Package serialize provides the binary wire/checkpoint format used by
// the reproduction: flat float64 parameter vectors (the payload clients
// and server exchange every round) and named checkpoint files (global
// model snapshots, trained DRL agents). The format is explicit
// little-endian with a magic header and length prefixes, so checkpoints
// are portable across machines and versions can be detected.
//
// The same encoder measures message sizes for the communication
// accounting of §5.3 (FedDRL adds only a few floats of inference-loss
// metadata per round on top of FedAvg's weight payload).
package serialize

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Magic identifies feddrl checkpoint streams.
const Magic = 0xfedd5e01

// ErrBadMagic reports a stream that is not a feddrl checkpoint.
var ErrBadMagic = errors.New("serialize: bad magic (not a feddrl checkpoint)")

// maxLen guards length prefixes against corrupt or hostile streams.
const maxLen = 1 << 30

// WriteVector writes a float64 vector with a length prefix.
func WriteVector(w io.Writer, v []float64) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(v))); err != nil {
		return fmt.Errorf("serialize: vector length: %w", err)
	}
	buf := make([]byte, 8*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(f))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("serialize: vector payload: %w", err)
	}
	return nil
}

// ReadVector reads a vector written by WriteVector.
func ReadVector(r io.Reader) ([]float64, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("serialize: vector length: %w", err)
	}
	if n > maxLen/8 {
		return nil, fmt.Errorf("serialize: vector length %d exceeds limit", n)
	}
	buf := make([]byte, 8*int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("serialize: vector payload: %w", err)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return out, nil
}

// WriteVector32 writes a float32 vector with a length prefix — the
// half-width wire encoding of f32 precision mode (4 bytes per weight).
func WriteVector32(w io.Writer, v []float32) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(v))); err != nil {
		return fmt.Errorf("serialize: vector32 length: %w", err)
	}
	buf := make([]byte, 4*len(v))
	for i, f := range v {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(f))
	}
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("serialize: vector32 payload: %w", err)
	}
	return nil
}

// ReadVector32 reads a vector written by WriteVector32.
func ReadVector32(r io.Reader) ([]float32, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("serialize: vector32 length: %w", err)
	}
	if n > maxLen/4 {
		return nil, fmt.Errorf("serialize: vector32 length %d exceeds limit", n)
	}
	buf := make([]byte, 4*int(n))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("serialize: vector32 payload: %w", err)
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	return out, nil
}

// WriteString writes a length-prefixed UTF-8 string.
func WriteString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return fmt.Errorf("serialize: string length: %w", err)
	}
	if _, err := io.WriteString(w, s); err != nil {
		return fmt.Errorf("serialize: string payload: %w", err)
	}
	return nil
}

// ReadString reads a string written by WriteString.
func ReadString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", fmt.Errorf("serialize: string length: %w", err)
	}
	if n > maxLen {
		return "", fmt.Errorf("serialize: string length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("serialize: string payload: %w", err)
	}
	return string(buf), nil
}

// Checkpoint is a named collection of vectors (e.g. "policy", "value",
// "global") plus free-form metadata. Vectors32 carries half-width
// payloads (f32 precision mode); it is encoded as an appended section
// that legacy streams simply lack, so old checkpoints decode with an
// empty Vectors32 and checkpoints without f32 payloads encode
// byte-identically to the legacy layout.
type Checkpoint struct {
	Meta      map[string]string
	Vectors   map[string][]float64
	Vectors32 map[string][]float32
}

// NewCheckpoint returns an empty checkpoint.
func NewCheckpoint() *Checkpoint {
	return &Checkpoint{
		Meta:      map[string]string{},
		Vectors:   map[string][]float64{},
		Vectors32: map[string][]float32{},
	}
}

// Write encodes the checkpoint to w.
func (c *Checkpoint) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, uint32(Magic)); err != nil {
		return fmt.Errorf("serialize: magic: %w", err)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(c.Meta))); err != nil {
		return fmt.Errorf("serialize: meta count: %w", err)
	}
	for _, k := range sortedKeys(c.Meta) {
		if err := WriteString(bw, k); err != nil {
			return err
		}
		if err := WriteString(bw, c.Meta[k]); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(c.Vectors))); err != nil {
		return fmt.Errorf("serialize: vector count: %w", err)
	}
	for _, k := range sortedVecKeys(c.Vectors) {
		if err := WriteString(bw, k); err != nil {
			return err
		}
		if err := WriteVector(bw, c.Vectors[k]); err != nil {
			return err
		}
	}
	if len(c.Vectors32) > 0 {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(c.Vectors32))); err != nil {
			return fmt.Errorf("serialize: vector32 count: %w", err)
		}
		for _, k := range sortedVec32Keys(c.Vectors32) {
			if err := WriteString(bw, k); err != nil {
				return err
			}
			if err := WriteVector32(bw, c.Vectors32[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Read decodes a checkpoint from r.
func Read(r io.Reader) (*Checkpoint, error) {
	var magic uint32
	if err := binary.Read(r, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("serialize: magic: %w", err)
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	c := NewCheckpoint()
	var nMeta uint32
	if err := binary.Read(r, binary.LittleEndian, &nMeta); err != nil {
		return nil, fmt.Errorf("serialize: meta count: %w", err)
	}
	if nMeta > 1<<20 {
		return nil, fmt.Errorf("serialize: meta count %d exceeds limit", nMeta)
	}
	for i := uint32(0); i < nMeta; i++ {
		k, err := ReadString(r)
		if err != nil {
			return nil, err
		}
		v, err := ReadString(r)
		if err != nil {
			return nil, err
		}
		c.Meta[k] = v
	}
	var nVec uint32
	if err := binary.Read(r, binary.LittleEndian, &nVec); err != nil {
		return nil, fmt.Errorf("serialize: vector count: %w", err)
	}
	if nVec > 1<<20 {
		return nil, fmt.Errorf("serialize: vector count %d exceeds limit", nVec)
	}
	for i := uint32(0); i < nVec; i++ {
		k, err := ReadString(r)
		if err != nil {
			return nil, err
		}
		v, err := ReadVector(r)
		if err != nil {
			return nil, err
		}
		c.Vectors[k] = v
	}
	// The float32 section is optional: legacy streams end here, so a
	// clean EOF means an empty Vectors32, not corruption.
	var nVec32 uint32
	if err := binary.Read(r, binary.LittleEndian, &nVec32); err != nil {
		if errors.Is(err, io.EOF) {
			return c, nil
		}
		return nil, fmt.Errorf("serialize: vector32 count: %w", err)
	}
	if nVec32 > 1<<20 {
		return nil, fmt.Errorf("serialize: vector32 count %d exceeds limit", nVec32)
	}
	for i := uint32(0); i < nVec32; i++ {
		k, err := ReadString(r)
		if err != nil {
			return nil, err
		}
		v, err := ReadVector32(r)
		if err != nil {
			return nil, err
		}
		c.Vectors32[k] = v
	}
	return c, nil
}

// Encode returns the checkpoint serialized to a byte slice — the
// in-memory counterpart of SaveFile, used by the experiment shard
// artifacts and their round-trip tests.
func (c *Checkpoint) Encode() ([]byte, error) {
	var b bytes.Buffer
	if err := c.Write(&b); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// Decode parses a checkpoint from a byte slice written by Encode.
func Decode(data []byte) (*Checkpoint, error) {
	return Read(bytes.NewReader(data))
}

// SaveFile writes the checkpoint to a file path.
func (c *Checkpoint) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("serialize: create %s: %w", path, err)
	}
	defer f.Close()
	if err := c.Write(f); err != nil {
		return err
	}
	return f.Sync()
}

// LoadFile reads a checkpoint from a file path.
func LoadFile(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("serialize: open %s: %w", path, err)
	}
	defer f.Close()
	return Read(bufio.NewReader(f))
}

// VectorWireSize returns the encoded byte size of a float64 vector —
// the per-message payload accounting of §5.3.
func VectorWireSize(n int) int { return 4 + 8*n }

// VectorWireSize32 returns the encoded byte size of a float32 vector:
// 4 bytes per weight, half the float64 payload — the f32-mode uplink
// and downlink accounting.
func VectorWireSize32(n int) int { return 4 + 4*n }

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func sortedVecKeys(m map[string][]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

func sortedVec32Keys(m map[string][]float32) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sortStrings(keys)
	return keys
}

// sortStrings is insertion sort — key sets are tiny and this avoids an
// import cycle risk with sort in some build configurations. (The sort
// package is fine; this simply keeps the hot path allocation-free.)
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
