package serialize

// Stable content hashing and versioned cache records — the primitives
// behind the experiment artifact cache. A cache key must be identical
// across machines, platforms and process runs for the same logical
// content, and a cache record read back from disk must be refusable
// when it was written by an incompatible schema; both live here next to
// the wire format they depend on.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash"
	"io"
	"math"
	"strconv"
)

// CacheSchema versions the on-disk cache record layout AND the cell
// semantics baked into cached payloads. Bump it whenever a change makes
// previously cached results non-reproducible by the current code (new
// record fields, dataset synthesis changes, training-loop changes that
// alter cell output); every stale record then reads as a miss instead
// of silently serving wrong numbers.
//
// v2: batched Conv2D lowering — the kernel gradient is now accumulated
// by one whole-batch colsᵀ·dRes product instead of per-sample partial
// sums, which regroups the floating-point additions and shifts cell
// outputs by rounding-level amounts.
//
// v3: float32 precision mode — Scale gains a Precision axis (hashed
// into the cell key) and checkpoints gain the optional Vectors32
// section; pre-precision records must re-run so every cached cell
// carries an explicit precision lineage.
const CacheSchema = 3

// cacheSchemaKey is the metadata key carrying a record's schema version.
const cacheSchemaKey = "cache-schema"

// ErrStaleSchema reports a cache record written under a different
// CacheSchema (or with no readable version at all).
var ErrStaleSchema = errors.New("serialize: cache record schema is stale")

// Hasher computes a stable content hash over a sequence of typed
// fields. Every write is framed with a one-byte type tag, and
// variable-length values carry a length prefix, so distinct field
// sequences cannot collide by concatenation ("ab","c" vs "a","bc") and
// the digest is identical across platforms (explicit little-endian,
// no map iteration anywhere).
type Hasher struct {
	h hash.Hash
}

// NewHasher returns an empty SHA-256-backed hasher.
func NewHasher() *Hasher { return &Hasher{h: sha256.New()} }

func (hs *Hasher) tag(t byte) {
	hs.h.Write([]byte{t})
}

func (hs *Hasher) word(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	hs.h.Write(b[:])
}

// String writes a length-prefixed string field.
func (hs *Hasher) String(s string) {
	hs.tag('s')
	hs.word(uint64(len(s)))
	io.WriteString(hs.h, s)
}

// Int writes an integer field.
func (hs *Hasher) Int(v int) {
	hs.tag('i')
	hs.word(uint64(int64(v)))
}

// Uint64 writes an unsigned integer field.
func (hs *Hasher) Uint64(v uint64) {
	hs.tag('u')
	hs.word(v)
}

// Float64 writes a float field by its IEEE-754 bits, so -0.0, NaN
// payloads and denormals all hash distinctly and exactly.
func (hs *Hasher) Float64(v float64) {
	hs.tag('f')
	hs.word(math.Float64bits(v))
}

// Bool writes a boolean field.
func (hs *Hasher) Bool(v bool) {
	hs.tag('b')
	if v {
		hs.word(1)
	} else {
		hs.word(0)
	}
}

// Ints writes a length-prefixed integer slice field.
func (hs *Hasher) Ints(v []int) {
	hs.tag('I')
	hs.word(uint64(len(v)))
	for _, x := range v {
		hs.word(uint64(int64(x)))
	}
}

// Floats writes a length-prefixed float slice field (bit-exact, like
// Float64).
func (hs *Hasher) Floats(v []float64) {
	hs.tag('F')
	hs.word(uint64(len(v)))
	for _, x := range v {
		hs.word(math.Float64bits(x))
	}
}

// Sum returns the hex digest of everything written so far. The hasher
// remains usable; further writes extend the same stream.
func (hs *Hasher) Sum() string {
	return hex.EncodeToString(hs.h.Sum(nil))
}

// NewCacheRecord returns a checkpoint pre-stamped as a cache record of
// the given kind at the current schema version.
func NewCacheRecord(kind string) *Checkpoint {
	c := NewCheckpoint()
	c.Meta["kind"] = kind
	c.Meta[cacheSchemaKey] = strconv.Itoa(CacheSchema)
	return c
}

// ValidateCacheRecord checks that a checkpoint is a cache record of the
// given kind written under the current CacheSchema. A schema mismatch
// (including a missing or unreadable version) returns an error wrapping
// ErrStaleSchema; callers treat any validation failure as a cache miss.
func ValidateCacheRecord(c *Checkpoint, kind string) error {
	if got := c.Meta["kind"]; got != kind {
		return fmt.Errorf("serialize: cache record kind %q, want %q", got, kind)
	}
	raw, ok := c.Meta[cacheSchemaKey]
	if !ok {
		return fmt.Errorf("%w: record carries no schema version", ErrStaleSchema)
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return fmt.Errorf("%w: unreadable schema version %q", ErrStaleSchema, raw)
	}
	if v != CacheSchema {
		return fmt.Errorf("%w: record schema v%d, current v%d", ErrStaleSchema, v, CacheSchema)
	}
	return nil
}
