package serialize

import (
	"errors"
	"math"
	"strconv"
	"testing"
)

func TestHasherDeterministic(t *testing.T) {
	build := func() string {
		h := NewHasher()
		h.String("table3")
		h.Int(-42)
		h.Uint64(1 << 63)
		h.Float64(0.6)
		h.Bool(true)
		h.Ints([]int{4, 8, 12})
		h.Floats([]float64{0.2, 0.4, 0.6})
		return h.Sum()
	}
	if build() != build() {
		t.Fatal("same field sequence hashed to different digests")
	}
	if len(build()) != 64 {
		t.Fatalf("digest length %d, want 64 hex chars", len(build()))
	}
}

// TestHasherFraming verifies the anti-concatenation framing: moving a
// byte across a field boundary, reordering fields, or retyping a field
// must all change the digest.
func TestHasherFraming(t *testing.T) {
	sum := func(write func(h *Hasher)) string {
		h := NewHasher()
		write(h)
		return h.Sum()
	}
	digests := []string{
		sum(func(h *Hasher) { h.String("ab"); h.String("c") }),
		sum(func(h *Hasher) { h.String("a"); h.String("bc") }),
		sum(func(h *Hasher) { h.String("abc") }),
		sum(func(h *Hasher) { h.String("c"); h.String("ab") }),
		sum(func(h *Hasher) { h.Int(1); h.Int(2) }),
		sum(func(h *Hasher) { h.Int(2); h.Int(1) }),
		sum(func(h *Hasher) { h.Uint64(1); h.Uint64(2) }),
		sum(func(h *Hasher) { h.Ints([]int{1, 2}) }),
		sum(func(h *Hasher) { h.Ints([]int{1}); h.Ints([]int{2}) }),
		sum(func(h *Hasher) { h.Ints(nil) }),
		sum(func(h *Hasher) { h.Floats(nil) }),
		sum(func(h *Hasher) {}),
	}
	seen := map[string]int{}
	for i, d := range digests {
		if j, dup := seen[d]; dup {
			t.Fatalf("field sequences %d and %d collide on %s", j, i, d)
		}
		seen[d] = i
	}
}

func TestHasherFloatBitExact(t *testing.T) {
	sum := func(v float64) string {
		h := NewHasher()
		h.Float64(v)
		return h.Sum()
	}
	if sum(0.0) == sum(math.Copysign(0, -1)) {
		t.Fatal("+0.0 and -0.0 hash identically")
	}
	if sum(math.NaN()) != sum(math.NaN()) {
		t.Fatal("the canonical NaN pattern should hash stably")
	}
	if sum(1.0) == sum(math.Nextafter(1.0, 2.0)) {
		t.Fatal("adjacent floats hash identically")
	}
}

func TestCacheRecordRoundTrip(t *testing.T) {
	c := NewCacheRecord("cell-artifact")
	c.Meta["key"] = "a|b|c|1|1|0.5|7"
	c.Vectors["acc"] = []float64{10, 20}
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateCacheRecord(got, "cell-artifact"); err != nil {
		t.Fatalf("freshly written record rejected: %v", err)
	}
	if err := ValidateCacheRecord(got, "other-kind"); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestCacheRecordStaleSchema(t *testing.T) {
	for _, version := range []string{"0", strconv.Itoa(CacheSchema + 1), "garbage", ""} {
		c := NewCheckpoint()
		c.Meta["kind"] = "cell-artifact"
		if version != "" {
			c.Meta[cacheSchemaKey] = version
		}
		err := ValidateCacheRecord(c, "cell-artifact")
		if err == nil {
			t.Fatalf("schema %q accepted", version)
		}
		if !errors.Is(err, ErrStaleSchema) {
			t.Fatalf("schema %q: error %v does not wrap ErrStaleSchema", version, err)
		}
	}
}

// TestCacheRecordCorruptBytes is the serialize half of the
// corruption-is-a-miss property: any truncation or byte flip of an
// encoded record must surface as a decode or validation error, never a
// silently wrong record.
func TestCacheRecordCorruptBytes(t *testing.T) {
	c := NewCacheRecord("cell-artifact")
	c.Meta["key"] = "k"
	c.Vectors["acc"] = []float64{1, 2, 3}
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	// Flipping a byte either fails to decode or yields a record that no
	// longer validates bit-identically; we only require no panic and
	// that magic corruption is caught.
	flipped := append([]byte(nil), data...)
	flipped[0] ^= 0xff
	if _, err := Decode(flipped); err == nil {
		t.Fatal("corrupt magic decoded cleanly")
	}
}
