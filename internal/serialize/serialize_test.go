package serialize

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"feddrl/internal/rng"
)

func TestVectorRoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw) % 200
		v := make([]float64, n)
		for i := range v {
			v[i] = r.Normal(0, 100)
		}
		var buf bytes.Buffer
		if err := WriteVector(&buf, v); err != nil {
			return false
		}
		if buf.Len() != VectorWireSize(n) {
			return false
		}
		got, err := ReadVector(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range v {
			if got[i] != v[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVectorSpecialValues(t *testing.T) {
	v := []float64{0, math.Inf(1), math.Inf(-1), math.NaN(), -0.0, math.MaxFloat64, math.SmallestNonzeroFloat64}
	var buf bytes.Buffer
	if err := WriteVector(&buf, v); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if math.Float64bits(got[i]) != math.Float64bits(v[i]) {
			t.Fatalf("bit-exactness lost at %d: %x vs %x", i, math.Float64bits(got[i]), math.Float64bits(v[i]))
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	for _, s := range []string{"", "hello", "πδσ — unicode", string(make([]byte, 1000))} {
		buf.Reset()
		if err := WriteString(&buf, s); err != nil {
			t.Fatal(err)
		}
		got, err := ReadString(&buf)
		if err != nil || got != s {
			t.Fatalf("string round trip failed: %q -> %q (%v)", s, got, err)
		}
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	c := NewCheckpoint()
	c.Meta["method"] = "FedDRL"
	c.Meta["round"] = "42"
	c.Vectors["global"] = []float64{1, 2, 3}
	c.Vectors["policy"] = []float64{-0.5, 0.25}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta["method"] != "FedDRL" || got.Meta["round"] != "42" {
		t.Fatalf("meta lost: %+v", got.Meta)
	}
	if len(got.Vectors) != 2 || got.Vectors["global"][2] != 3 || got.Vectors["policy"][0] != -0.5 {
		t.Fatalf("vectors lost: %+v", got.Vectors)
	}
}

func TestEncodeDecodeBytes(t *testing.T) {
	c := NewCheckpoint()
	c.Meta["kind"] = "test"
	c.Vectors["v"] = []float64{3.5, -0.25, 0}
	data, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta["kind"] != "test" || len(got.Vectors["v"]) != 3 || got.Vectors["v"][0] != 3.5 {
		t.Fatalf("byte round trip lost data: %+v", got)
	}
	if _, err := Decode(data[:3]); err == nil {
		t.Fatal("truncated bytes decoded")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ckpt.bin")
	c := NewCheckpoint()
	c.Meta["k"] = "v"
	c.Vectors["w"] = []float64{3.14}
	if err := c.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Vectors["w"][0] != 3.14 || got.Meta["k"] != "v" {
		t.Fatal("file round trip lost data")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.bin")); err == nil {
		t.Fatal("missing file did not error")
	}
}

func TestBadMagic(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	_, err := Read(&buf)
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("want ErrBadMagic, got %v", err)
	}
}

func TestTruncatedStream(t *testing.T) {
	c := NewCheckpoint()
	c.Vectors["w"] = make([]float64, 100)
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{2, 6, 10, len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d did not error", cut)
		}
	}
}

func TestHostileLengthPrefix(t *testing.T) {
	// A vector claiming 2^31 elements must be rejected, not allocated.
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0x7f})
	if _, err := ReadVector(&buf); err == nil {
		t.Fatal("hostile length accepted")
	}
}

func TestDeterministicEncoding(t *testing.T) {
	// Same checkpoint → identical bytes (map iteration order must not
	// leak into the encoding).
	build := func() *Checkpoint {
		c := NewCheckpoint()
		c.Meta["b"] = "2"
		c.Meta["a"] = "1"
		c.Meta["c"] = "3"
		c.Vectors["z"] = []float64{1}
		c.Vectors["y"] = []float64{2}
		return c
	}
	var b1, b2 bytes.Buffer
	if err := build().Write(&b1); err != nil {
		t.Fatal(err)
	}
	if err := build().Write(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestVectorWireSize(t *testing.T) {
	if VectorWireSize(0) != 4 || VectorWireSize(10) != 84 {
		t.Fatalf("wire sizes wrong: %d %d", VectorWireSize(0), VectorWireSize(10))
	}
}

func TestSaveFileToBadPath(t *testing.T) {
	c := NewCheckpoint()
	if err := c.SaveFile(string(os.PathSeparator) + "nonexistent-dir-xyz/ckpt.bin"); err == nil {
		t.Fatal("bad path did not error")
	}
}
