package serialize

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"feddrl/internal/rng"
)

// The f32 wire-format suite: WriteVector32/ReadVector32 round-trip bit
// for bit at 4 bytes per element, checkpoints carry an optional f32
// section, and legacy streams (no section) still read cleanly.

func TestVector32RoundTrip(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw) % 200
		v := make([]float32, n)
		for i := range v {
			v[i] = float32(r.Normal(0, 100))
		}
		var buf bytes.Buffer
		if err := WriteVector32(&buf, v); err != nil {
			return false
		}
		if buf.Len() != VectorWireSize32(n) {
			return false
		}
		got, err := ReadVector32(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range v {
			if math.Float32bits(got[i]) != math.Float32bits(v[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVector32SpecialValues(t *testing.T) {
	v := []float32{
		0, float32(math.Copysign(0, -1)),
		float32(math.Inf(1)), float32(math.Inf(-1)),
		math.Float32frombits(0x7fc00000), // quiet NaN
		math.Float32frombits(0xffc00001), // NaN with sign and payload bits
		math.MaxFloat32, math.SmallestNonzeroFloat32,
	}
	var buf bytes.Buffer
	if err := WriteVector32(&buf, v); err != nil {
		t.Fatal(err)
	}
	got, err := ReadVector32(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range v {
		if math.Float32bits(got[i]) != math.Float32bits(v[i]) {
			t.Fatalf("bit-exactness lost at %d: %x vs %x", i, math.Float32bits(got[i]), math.Float32bits(v[i]))
		}
	}
}

func TestVectorWireSize32(t *testing.T) {
	for _, n := range []int{0, 1, 7, 1000} {
		var buf bytes.Buffer
		if err := WriteVector32(&buf, make([]float32, n)); err != nil {
			t.Fatal(err)
		}
		if buf.Len() != VectorWireSize32(n) {
			t.Fatalf("n=%d: encoded %d bytes, VectorWireSize32 says %d", n, buf.Len(), VectorWireSize32(n))
		}
		if VectorWireSize32(n) != 4+4*n {
			t.Fatalf("VectorWireSize32(%d) = %d, want %d", n, VectorWireSize32(n), 4+4*n)
		}
	}
	// The f32 payload is half the f64 payload plus nothing: same header.
	if VectorWireSize(1000)-VectorWireSize32(1000) != 4*1000 {
		t.Fatal("f32 encoding does not save exactly 4 bytes per element")
	}
}

func TestCheckpointVectors32RoundTrip(t *testing.T) {
	c := NewCheckpoint()
	c.Meta["method"] = "FedAvg"
	c.Vectors["global"] = []float64{1, 2, 3}
	c.Vectors32["global32"] = []float32{0.5, -0.25}
	c.Vectors32["empty"] = []float32{}
	var buf bytes.Buffer
	if err := c.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Meta["method"] != "FedAvg" || got.Vectors["global"][2] != 3 {
		t.Fatalf("f64 content lost: %+v", got)
	}
	if len(got.Vectors32) != 2 || got.Vectors32["global32"][1] != -0.25 || len(got.Vectors32["empty"]) != 0 {
		t.Fatalf("f32 vectors lost: %+v", got.Vectors32)
	}
}

// TestCheckpointLegacyLayout: a checkpoint with no f32 vectors encodes
// byte-identically to the pre-Vectors32 layout (the f32 section is
// appended only when non-empty), and such a stream — i.e. any legacy
// checkpoint — reads back with an empty Vectors32 map rather than an
// unexpected-EOF error.
func TestCheckpointLegacyLayout(t *testing.T) {
	legacy := NewCheckpoint()
	legacy.Meta["k"] = "v"
	legacy.Vectors["w"] = []float64{3.14}

	extended := NewCheckpoint()
	extended.Meta["k"] = "v"
	extended.Vectors["w"] = []float64{3.14}
	extended.Vectors32["w32"] = []float32{1.5}

	var legacyBuf, extBuf bytes.Buffer
	if err := legacy.Write(&legacyBuf); err != nil {
		t.Fatal(err)
	}
	if err := extended.Write(&extBuf); err != nil {
		t.Fatal(err)
	}
	// The f32 section strictly appends: the legacy bytes are a prefix.
	if !bytes.HasPrefix(extBuf.Bytes(), legacyBuf.Bytes()) {
		t.Fatal("legacy encoding is not a prefix of the extended one")
	}
	if extBuf.Len() <= legacyBuf.Len() {
		t.Fatal("f32 section added no bytes")
	}

	got, err := Read(&legacyBuf)
	if err != nil {
		t.Fatalf("legacy stream failed to read: %v", err)
	}
	if got.Vectors["w"][0] != 3.14 || len(got.Vectors32) != 0 {
		t.Fatalf("legacy stream decoded wrong: %+v", got)
	}

	// A *corrupt* trailing section must still error: a declared f32
	// count with a truncated body is not EOF tolerance territory.
	raw := extBuf.Bytes()
	if _, err := Decode(raw[:len(raw)-2]); err == nil {
		t.Fatal("truncated f32 section decoded cleanly")
	}
}
