// Package partition implements the non-IID data partitioners the paper
// studies (§4.1.1, §5.1, Table 2):
//
//   - PA  (Pareto): label-size + quantity imbalance; the samples of each
//     label are split among its owner clients following a power law.
//   - CE  (Clustered-Equal): the paper's novel *cluster skew*. Clients
//     are arranged into groups; one main group holds δ·N clients. Labels
//     are partitioned into per-group clusters; each client draws its
//     (two) labels from its group's cluster. Sample counts are equal
//     across clients.
//   - CN  (Clustered-Non-Equal): CE plus quantity skew.
//   - Equal / Non-equal shards: the FedAvg-style label-size imbalance of
//     §5.1 (2N sorted shards with 2 per client; 10N shards with 6–14 per
//     client).
//
// Every partitioner returns an Assignment whose client index lists are
// pairwise disjoint (verified by Stats and by property tests). PA and the
// shard partitioners cover the full dataset; CE/CN may leave a remainder
// unassigned to honour their equal-quota constraint.
package partition

import (
	"fmt"

	"feddrl/internal/dataset"
	"feddrl/internal/rng"
)

// Assignment maps every client to the dataset indices it owns.
type Assignment struct {
	Method        string
	ClientIndices [][]int
	// Clusters is the group id of each client for the clustered methods,
	// or -1 for methods without group structure.
	Clusters  []int
	NumGroups int
}

// NumClients returns the number of clients in the assignment.
func (a *Assignment) NumClients() int { return len(a.ClientIndices) }

// Counts returns per-client sample counts.
func (a *Assignment) Counts() []int {
	out := make([]int, len(a.ClientIndices))
	for i, idx := range a.ClientIndices {
		out[i] = len(idx)
	}
	return out
}

func noClusters(n int) []int {
	c := make([]int, n)
	for i := range c {
		c[i] = -1
	}
	return c
}

// assignLabelsRoundRobin gives each of n clients `per` distinct labels,
// cycling through a shuffled label order so that every label is owned by
// at least one client whenever n*per >= classes.
func assignLabelsRoundRobin(classes, n, per int, r *rng.RNG) [][]int {
	if per > classes {
		panic(fmt.Sprintf("partition: %d labels per client exceeds %d classes", per, classes))
	}
	order := r.Perm(classes)
	out := make([][]int, n)
	pos := 0
	for k := 0; k < n; k++ {
		seen := map[int]bool{}
		for len(out[k]) < per {
			l := order[pos%classes]
			pos++
			if !seen[l] {
				seen[l] = true
				out[k] = append(out[k], l)
			}
		}
	}
	return out
}

// Pareto implements the PA partitioner: each client owns labelsPerClient
// labels (2 for the 10-class datasets, 20 for cifar100-sim in the paper)
// and the samples of each label are divided among its owners with
// power-law weights of exponent alpha (label-size + quantity imbalance,
// Table 2 row PA).
func Pareto(d *dataset.Dataset, nClients, labelsPerClient int, alpha float64, r *rng.RNG) *Assignment {
	if nClients <= 0 {
		panic("partition: Pareto with no clients")
	}
	d.Validate()
	clientLabels := assignLabelsRoundRobin(d.NumClasses, nClients, labelsPerClient, r)

	// owners[l] = clients owning label l.
	owners := make([][]int, d.NumClasses)
	for k, labels := range clientLabels {
		for _, l := range labels {
			owners[l] = append(owners[l], k)
		}
	}

	a := &Assignment{
		Method:        "PA",
		ClientIndices: make([][]int, nClients),
		Clusters:      noClusters(nClients),
	}
	byClass := d.ByClass()
	for l, pool := range byClass {
		if len(owners[l]) == 0 || len(pool) == 0 {
			continue
		}
		r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		w := r.PowerLawWeights(len(owners[l]), alpha)
		// Every owner receives a floor of one sample when the pool allows
		// (otherwise power-law tails starve clients entirely), and the
		// remainder is divided by power-law cut points.
		floor := 0
		if len(pool) >= len(owners[l]) {
			floor = 1
		}
		remaining := len(pool) - floor*len(owners[l])
		start, prevExtra := 0, 0
		acc := 0.0
		for oi, client := range owners[l] {
			acc += w[oi]
			cumExtra := int(acc*float64(remaining) + 0.5)
			if oi == len(owners[l])-1 {
				cumExtra = remaining
			}
			take := floor + (cumExtra - prevExtra)
			prevExtra = cumExtra
			end := start + take
			if end > len(pool) {
				end = len(pool)
			}
			a.ClientIndices[client] = append(a.ClientIndices[client], pool[start:end]...)
			start = end
		}
	}
	return a
}

// clusterConfig holds the shared group scaffolding of CE and CN.
type clusterConfig struct {
	groupOf     []int   // group id per client
	labelBlocks [][]int // labels per group
}

// buildClusters arranges clients into numGroups groups with a main group
// of max(1, round(delta*n)) clients (higher δ = stronger bias toward the
// main group, §4.3.2) and partitions the label space into contiguous
// per-group blocks.
func buildClusters(classes, n int, delta float64, labelsPerClient, numGroups int, r *rng.RNG) clusterConfig {
	if numGroups < 2 {
		panic("partition: clustered methods need at least 2 groups")
	}
	if delta <= 0 || delta >= 1 {
		panic(fmt.Sprintf("partition: delta %v out of (0,1)", delta))
	}
	if classes < numGroups*labelsPerClient {
		panic(fmt.Sprintf("partition: %d classes cannot host %d groups of %d labels", classes, numGroups, labelsPerClient))
	}
	mainSize := int(float64(n)*delta + 0.5)
	if mainSize < 1 {
		mainSize = 1
	}
	if mainSize > n-(numGroups-1) {
		mainSize = n - (numGroups - 1) // leave at least one client per other group
	}
	groupOf := make([]int, n)
	for i := 0; i < mainSize; i++ {
		groupOf[i] = 0
	}
	g := 1
	for i := mainSize; i < n; i++ {
		groupOf[i] = g
		g++
		if g == numGroups {
			g = 1
		}
	}
	// Shuffle client→group so the main group is not always clients 0..m.
	r.Shuffle(n, func(i, j int) { groupOf[i], groupOf[j] = groupOf[j], groupOf[i] })

	// Contiguous label blocks over a shuffled label order.
	order := r.Perm(classes)
	blocks := make([][]int, numGroups)
	base := classes / numGroups
	extra := classes % numGroups
	pos := 0
	for gi := 0; gi < numGroups; gi++ {
		size := base
		if gi < extra {
			size++
		}
		blocks[gi] = append([]int(nil), order[pos:pos+size]...)
		pos += size
	}
	return clusterConfig{groupOf: groupOf, labelBlocks: blocks}
}

// clusteredAssign performs the shared CE/CN allocation. weights gives the
// per-client demand weight (all 1 for CE; power-law for CN).
func clusteredAssign(d *dataset.Dataset, cc clusterConfig, labelsPerClient int, weights []float64, method string, r *rng.RNG) *Assignment {
	n := len(cc.groupOf)
	// Each client draws labelsPerClient distinct labels from its group's
	// block.
	clientLabels := make([][]int, n)
	for k := 0; k < n; k++ {
		block := cc.labelBlocks[cc.groupOf[k]]
		pick := r.Choose(len(block), labelsPerClient)
		for _, p := range pick {
			clientLabels[k] = append(clientLabels[k], block[p])
		}
	}
	// demand[l] = total weight requesting label l.
	demand := make([]float64, d.NumClasses)
	for k, labels := range clientLabels {
		for _, l := range labels {
			demand[l] += weights[k]
		}
	}
	// Equal-quota constraint: every unit of weight receives q samples of
	// each of its labels, with q limited by the scarcest requested label.
	byClass := d.ByClass()
	q := -1.0
	for l, dm := range demand {
		if dm == 0 {
			continue
		}
		avail := float64(len(byClass[l])) / dm
		if q < 0 || avail < q {
			q = avail
		}
	}
	if q < 0 {
		panic("partition: clustered assignment with no demand")
	}

	a := &Assignment{
		Method:        method,
		ClientIndices: make([][]int, n),
		Clusters:      append([]int(nil), cc.groupOf...),
		NumGroups:     len(cc.labelBlocks),
	}
	cursor := make([]int, d.NumClasses)
	for l := range byClass {
		pool := byClass[l]
		r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
	}
	for k, labels := range clientLabels {
		for _, l := range labels {
			take := int(q * weights[k])
			if take < 1 {
				take = 1
			}
			pool := byClass[l]
			if cursor[l]+take > len(pool) {
				take = len(pool) - cursor[l]
			}
			if take <= 0 {
				continue
			}
			a.ClientIndices[k] = append(a.ClientIndices[k], pool[cursor[l]:cursor[l]+take]...)
			cursor[l] += take
		}
	}
	return a
}

// ClusteredEqual implements CE: cluster skew with label-size imbalance
// but equal per-client quantities (Table 2 row CE).
func ClusteredEqual(d *dataset.Dataset, nClients int, delta float64, labelsPerClient, numGroups int, r *rng.RNG) *Assignment {
	d.Validate()
	if nClients < numGroups {
		panic("partition: fewer clients than groups")
	}
	cc := buildClusters(d.NumClasses, nClients, delta, labelsPerClient, numGroups, r)
	w := make([]float64, nClients)
	for i := range w {
		w[i] = 1
	}
	return clusteredAssign(d, cc, labelsPerClient, w, "CE", r)
}

// ClusteredNonEqual implements CN: CE plus quantity skew — per-client
// demand weights follow a power law with exponent skew (Table 2 row CN).
func ClusteredNonEqual(d *dataset.Dataset, nClients int, delta float64, labelsPerClient, numGroups int, skew float64, r *rng.RNG) *Assignment {
	d.Validate()
	if nClients < numGroups {
		panic("partition: fewer clients than groups")
	}
	cc := buildClusters(d.NumClasses, nClients, delta, labelsPerClient, numGroups, r)
	w := r.PowerLawWeights(nClients, skew)
	// Rescale to mean 1 so quotas stay comparable to CE.
	for i := range w {
		w[i] *= float64(nClients)
	}
	return clusteredAssign(d, cc, labelsPerClient, w, "CN", r)
}

// shardSplit sorts the dataset by label and cuts it into numShards
// near-equal contiguous shards (the FedAvg construction of §5.1).
func shardSplit(d *dataset.Dataset, numShards int) [][]int {
	byClass := d.ByClass()
	sorted := make([]int, 0, d.N)
	for _, pool := range byClass {
		sorted = append(sorted, pool...)
	}
	shards := make([][]int, numShards)
	base := len(sorted) / numShards
	extra := len(sorted) % numShards
	pos := 0
	for s := 0; s < numShards; s++ {
		size := base
		if s < extra {
			size++
		}
		shards[s] = sorted[pos : pos+size]
		pos += size
	}
	return shards
}

// EqualShards implements the "Equal" label-size-imbalance partition of
// §5.1: the label-sorted dataset is cut into shardsPerClient·N shards and
// every client receives shardsPerClient of them (2 in the paper), so all
// clients hold the same number of samples.
func EqualShards(d *dataset.Dataset, nClients, shardsPerClient int, r *rng.RNG) *Assignment {
	d.Validate()
	if nClients <= 0 || shardsPerClient <= 0 {
		panic("partition: EqualShards with non-positive sizes")
	}
	shards := shardSplit(d, nClients*shardsPerClient)
	perm := r.Perm(len(shards))
	a := &Assignment{
		Method:        "Equal",
		ClientIndices: make([][]int, nClients),
		Clusters:      noClusters(nClients),
	}
	for i, s := range perm {
		k := i / shardsPerClient
		a.ClientIndices[k] = append(a.ClientIndices[k], shards[s]...)
	}
	return a
}

// NonEqualShards implements the "Non-equal" partition of §5.1: the
// dataset is cut into shardFactor·N shards (10 in the paper) and each
// client receives a uniformly random number of shards in
// [minShards, maxShards] (6–14 in the paper), subject to availability;
// all shards are handed out.
func NonEqualShards(d *dataset.Dataset, nClients, shardFactor, minShards, maxShards int, r *rng.RNG) *Assignment {
	d.Validate()
	if nClients <= 0 || shardFactor <= 0 || minShards <= 0 || maxShards < minShards {
		panic("partition: NonEqualShards with inconsistent sizes")
	}
	total := nClients * shardFactor
	shards := shardSplit(d, total)
	perm := r.Perm(total)
	a := &Assignment{
		Method:        "Non-equal",
		ClientIndices: make([][]int, nClients),
		Clusters:      noClusters(nClients),
	}
	pos := 0
	for k := 0; k < nClients; k++ {
		want := minShards + r.Intn(maxShards-minShards+1)
		remainingClients := nClients - k - 1
		remainingShards := total - pos
		// Keep enough shards for the rest to receive at least minShards,
		// and never take fewer than needed to exhaust the supply.
		maxTake := remainingShards - remainingClients*minShards
		if want > maxTake {
			want = maxTake
		}
		minTake := remainingShards - remainingClients*maxShards
		if want < minTake {
			want = minTake
		}
		if want < 0 {
			want = 0
		}
		for i := 0; i < want; i++ {
			a.ClientIndices[k] = append(a.ClientIndices[k], shards[perm[pos]]...)
			pos++
		}
	}
	// Hand any remainder to the last client (can happen only when the
	// bounds were mutually unsatisfiable).
	for pos < total {
		a.ClientIndices[nClients-1] = append(a.ClientIndices[nClients-1], shards[perm[pos]]...)
		pos++
	}
	return a
}
