package partition

import (
	"fmt"
	"strings"

	"feddrl/internal/dataset"
	"feddrl/internal/mathx"
)

// Stats summarizes an assignment, backing Table 2 of the paper (which
// non-IID properties each partitioner exhibits) and the Figure 4
// illustration.
type Stats struct {
	Method       string
	NumClients   int
	Coverage     float64 // fraction of dataset samples assigned
	Disjoint     bool    // true when no sample is assigned twice
	Counts       []int   // samples per client
	LabelsHeld   []int   // distinct labels per client
	LabelMatrix  [][]int // [client][class] sample counts
	QuantityCV   float64 // coefficient of variation of per-client counts
	MeanLabels   float64
	ClusterScore float64 // label-overlap within vs across groups (clustered methods; 0 otherwise)
}

// ComputeStats analyses an assignment against its dataset.
func ComputeStats(d *dataset.Dataset, a *Assignment) Stats {
	s := Stats{
		Method:     a.Method,
		NumClients: a.NumClients(),
		Counts:     a.Counts(),
		Disjoint:   true,
	}
	seen := make([]bool, d.N)
	assigned := 0
	s.LabelMatrix = make([][]int, a.NumClients())
	s.LabelsHeld = make([]int, a.NumClients())
	for k, idxs := range a.ClientIndices {
		s.LabelMatrix[k] = make([]int, d.NumClasses)
		for _, i := range idxs {
			if seen[i] {
				s.Disjoint = false
			}
			seen[i] = true
			assigned++
			s.LabelMatrix[k][d.Y[i]]++
		}
		for _, c := range s.LabelMatrix[k] {
			if c > 0 {
				s.LabelsHeld[k]++
			}
		}
	}
	s.Coverage = float64(assigned) / float64(d.N)
	counts := make([]float64, len(s.Counts))
	labels := make([]float64, len(s.LabelsHeld))
	for i := range s.Counts {
		counts[i] = float64(s.Counts[i])
		labels[i] = float64(s.LabelsHeld[i])
	}
	if m := mathx.Mean(counts); m > 0 {
		s.QuantityCV = mathx.Std(counts) / m
	}
	s.MeanLabels = mathx.Mean(labels)
	s.ClusterScore = clusterScore(s.LabelMatrix, a)
	return s
}

// clusterScore measures how much more label-overlap clients share within
// their group than across groups (Jaccard over held label sets). It is 0
// when the assignment has no group structure, positive under cluster skew.
func clusterScore(mat [][]int, a *Assignment) float64 {
	if a.NumGroups < 2 {
		return 0
	}
	n := len(mat)
	jac := func(i, j int) float64 {
		inter, union := 0, 0
		for c := range mat[i] {
			hi, hj := mat[i][c] > 0, mat[j][c] > 0
			if hi && hj {
				inter++
			}
			if hi || hj {
				union++
			}
		}
		if union == 0 {
			return 0
		}
		return float64(inter) / float64(union)
	}
	within, wn := 0.0, 0
	across, an := 0.0, 0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := jac(i, j)
			if a.Clusters[i] == a.Clusters[j] {
				within += v
				wn++
			} else {
				across += v
				an++
			}
		}
	}
	if wn == 0 || an == 0 {
		return 0
	}
	return within/float64(wn) - across/float64(an)
}

// Characteristics reports the Table-2 style non-IID flags derived from
// measured statistics rather than asserted by construction.
type Characteristics struct {
	ClusterSkew        bool
	LabelSizeImbalance bool
	QuantityImbalance  bool
}

// Characteristics derives the Table 2 row of the assignment. Thresholds:
// quantity imbalance when per-client counts vary by more than 10% CV;
// label-size imbalance when clients hold under 90% of all classes on
// average; cluster skew when within-group label overlap exceeds
// across-group overlap by a margin.
func (s Stats) Characteristics(numClasses int) Characteristics {
	return Characteristics{
		ClusterSkew:        s.ClusterScore > 0.15,
		LabelSizeImbalance: s.MeanLabels < 0.9*float64(numClasses),
		QuantityImbalance:  s.QuantityCV > 0.10,
	}
}

// ASCII renders a Figure-4 style illustration: one row per label, one
// column per client, glyph area ∝ sample count.
func ASCII(d *dataset.Dataset, a *Assignment) string {
	s := ComputeStats(d, a)
	maxCount := 1
	for _, row := range s.LabelMatrix {
		for _, c := range row {
			if c > maxCount {
				maxCount = c
			}
		}
	}
	glyphs := []byte(" .:oO@")
	var b strings.Builder
	fmt.Fprintf(&b, "%s partition, %d clients x %d labels (glyph area ~ #samples, max %d)\n",
		a.Method, a.NumClients(), d.NumClasses, maxCount)
	b.WriteString("      ")
	for k := 0; k < a.NumClients(); k++ {
		fmt.Fprintf(&b, "%2d ", k%100)
	}
	b.WriteByte('\n')
	for c := 0; c < d.NumClasses; c++ {
		fmt.Fprintf(&b, "L%-4d ", c)
		for k := 0; k < a.NumClients(); k++ {
			n := s.LabelMatrix[k][c]
			g := glyphs[0]
			if n > 0 {
				level := 1 + (len(glyphs)-2)*n/maxCount
				if level >= len(glyphs) {
					level = len(glyphs) - 1
				}
				g = glyphs[level]
			}
			b.WriteByte(' ')
			b.WriteByte(g)
			b.WriteByte(' ')
		}
		b.WriteByte('\n')
	}
	if a.NumGroups > 1 {
		fmt.Fprintf(&b, "groups:")
		for k := 0; k < a.NumClients(); k++ {
			fmt.Fprintf(&b, " g%d", a.Clusters[k])
		}
		b.WriteByte('\n')
	}
	return b.String()
}
