package partition

import (
	"testing"
	"testing/quick"

	"feddrl/internal/rng"
)

func TestDirichletCoversDataset(t *testing.T) {
	d := tenClassData(t, 51)
	a := Dirichlet(d, 10, 0.5, rng.New(52))
	assertDisjoint(t, d, a)
	s := ComputeStats(d, a)
	if s.Coverage != 1 {
		t.Fatalf("Dirichlet coverage %v", s.Coverage)
	}
}

func TestDirichletAlphaControlsSkew(t *testing.T) {
	d := tenClassData(t, 53)
	// Small alpha → strong label skew (fewer labels per client); large
	// alpha → near-IID (most labels everywhere).
	skewed := ComputeStats(d, Dirichlet(d, 10, 0.1, rng.New(54)))
	iid := ComputeStats(d, Dirichlet(d, 10, 100, rng.New(55)))
	if skewed.MeanLabels >= iid.MeanLabels {
		t.Fatalf("alpha ordering broken: skewed mean labels %v >= iid %v",
			skewed.MeanLabels, iid.MeanLabels)
	}
	if iid.MeanLabels < 9 {
		t.Fatalf("alpha=100 should be near-IID, mean labels %v", iid.MeanLabels)
	}
}

func TestDirichletDisjointProperty(t *testing.T) {
	d := tenClassData(t, 56)
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%15 + 2
		a := Dirichlet(d, n, 0.5, rng.New(seed))
		seen := map[int]bool{}
		total := 0
		for _, idxs := range a.ClientIndices {
			for _, i := range idxs {
				if i < 0 || i >= d.N || seen[i] {
					return false
				}
				seen[i] = true
				total++
			}
		}
		return total == d.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDirichletPanics(t *testing.T) {
	d := tenClassData(t, 57)
	for i, f := range []func(){
		func() { Dirichlet(d, 0, 0.5, rng.New(1)) },
		func() { Dirichlet(d, 5, 0, rng.New(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}
