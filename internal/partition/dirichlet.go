package partition

import (
	"fmt"

	"feddrl/internal/dataset"
	"feddrl/internal/rng"
)

// Dirichlet implements the label-distribution-imbalance partitioner of
// the paper's related work (§2.2.1, citing [8, 13, 22, 24]): for every
// label, the per-client shares are drawn from Dir(alpha·1). Smaller
// alpha yields stronger label skew (alpha → 0 approaches one-client-per-
// label; alpha → ∞ approaches IID). It is not one of the paper's three
// evaluation partitions but is the de-facto standard in the literature
// the paper compares against, so the library provides it for downstream
// experiments.
func Dirichlet(d *dataset.Dataset, nClients int, alpha float64, r *rng.RNG) *Assignment {
	d.Validate()
	if nClients <= 0 {
		panic("partition: Dirichlet with no clients")
	}
	if alpha <= 0 {
		panic(fmt.Sprintf("partition: Dirichlet with non-positive alpha %v", alpha))
	}
	conc := make([]float64, nClients)
	for i := range conc {
		conc[i] = alpha
	}
	a := &Assignment{
		Method:        "Dirichlet",
		ClientIndices: make([][]int, nClients),
		Clusters:      noClusters(nClients),
	}
	for _, pool := range d.ByClass() {
		if len(pool) == 0 {
			continue
		}
		r.Shuffle(len(pool), func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		shares := r.Dirichlet(conc)
		start, prevCum := 0, 0
		acc := 0.0
		for k := 0; k < nClients; k++ {
			acc += shares[k]
			cum := int(acc*float64(len(pool)) + 0.5)
			if k == nClients-1 {
				cum = len(pool)
			}
			take := cum - prevCum
			prevCum = cum
			end := start + take
			if end > len(pool) {
				end = len(pool)
			}
			a.ClientIndices[k] = append(a.ClientIndices[k], pool[start:end]...)
			start = end
		}
	}
	return a
}
