package partition

import (
	"strings"
	"testing"
	"testing/quick"

	"feddrl/internal/dataset"
	"feddrl/internal/rng"
)

func tenClassData(t testing.TB, seed uint64) *dataset.Dataset {
	t.Helper()
	tr, _ := dataset.Synthesize(dataset.MNISTSim().Scaled(0.5), seed)
	return tr
}

func hundredClassData(t testing.TB, seed uint64) *dataset.Dataset {
	t.Helper()
	tr, _ := dataset.Synthesize(dataset.CIFAR100Sim().Scaled(0.5), seed)
	return tr
}

// assertDisjoint fails if any sample is assigned to two clients.
func assertDisjoint(t *testing.T, d *dataset.Dataset, a *Assignment) {
	t.Helper()
	s := ComputeStats(d, a)
	if !s.Disjoint {
		t.Fatalf("%s assignment is not disjoint", a.Method)
	}
}

func TestParetoFullCoverage(t *testing.T) {
	d := tenClassData(t, 1)
	a := Pareto(d, 10, 2, 1.5, rng.New(2))
	assertDisjoint(t, d, a)
	s := ComputeStats(d, a)
	if s.Coverage != 1 {
		t.Fatalf("PA coverage = %v, want 1", s.Coverage)
	}
}

func TestParetoLabelCount(t *testing.T) {
	d := tenClassData(t, 3)
	a := Pareto(d, 10, 2, 1.5, rng.New(4))
	s := ComputeStats(d, a)
	for k, held := range s.LabelsHeld {
		if held > 2 || held < 1 {
			t.Fatalf("PA client %d holds %d labels, want 1-2", k, held)
		}
	}
}

func TestParetoQuantitySkew(t *testing.T) {
	d := tenClassData(t, 5)
	a := Pareto(d, 10, 2, 2.0, rng.New(6))
	s := ComputeStats(d, a)
	if s.QuantityCV < 0.10 {
		t.Fatalf("PA with alpha=2 should show quantity imbalance, CV = %v", s.QuantityCV)
	}
}

func TestParetoCharacteristicsMatchTable2(t *testing.T) {
	d := tenClassData(t, 7)
	a := Pareto(d, 10, 2, 2.0, rng.New(8))
	ch := ComputeStats(d, a).Characteristics(d.NumClasses)
	if ch.ClusterSkew {
		t.Fatal("PA should not show cluster skew")
	}
	if !ch.LabelSizeImbalance || !ch.QuantityImbalance {
		t.Fatalf("PA should show label-size and quantity imbalance: %+v", ch)
	}
}

func TestClusteredEqualProperties(t *testing.T) {
	d := tenClassData(t, 9)
	a := ClusteredEqual(d, 10, 0.6, 2, 3, rng.New(10))
	assertDisjoint(t, d, a)
	s := ComputeStats(d, a)
	// Equal quantities: CV near zero.
	if s.QuantityCV > 0.05 {
		t.Fatalf("CE quantity CV = %v, want ~0", s.QuantityCV)
	}
	// Every client holds exactly 2 labels.
	for k, held := range s.LabelsHeld {
		if held != 2 {
			t.Fatalf("CE client %d holds %d labels", k, held)
		}
	}
	// Main group has δ·N clients.
	mainCount := 0
	for _, g := range a.Clusters {
		if g == 0 {
			mainCount++
		}
	}
	if mainCount != 6 {
		t.Fatalf("CE main group size = %d, want 6", mainCount)
	}
}

func TestClusteredEqualCharacteristics(t *testing.T) {
	d := tenClassData(t, 11)
	a := ClusteredEqual(d, 10, 0.6, 2, 3, rng.New(12))
	ch := ComputeStats(d, a).Characteristics(d.NumClasses)
	if !ch.ClusterSkew || !ch.LabelSizeImbalance {
		t.Fatalf("CE should show cluster skew + label-size imbalance: %+v", ch)
	}
	if ch.QuantityImbalance {
		t.Fatalf("CE should NOT show quantity imbalance: %+v", ch)
	}
}

func TestClusteredNonEqualCharacteristics(t *testing.T) {
	d := tenClassData(t, 13)
	a := ClusteredNonEqual(d, 10, 0.6, 2, 3, 1.2, rng.New(14))
	assertDisjoint(t, d, a)
	ch := ComputeStats(d, a).Characteristics(d.NumClasses)
	if !ch.ClusterSkew || !ch.LabelSizeImbalance || !ch.QuantityImbalance {
		t.Fatalf("CN should show all three imbalances: %+v", ch)
	}
}

func TestClusterLabelsComeFromOwnBlock(t *testing.T) {
	d := tenClassData(t, 15)
	a := ClusteredEqual(d, 12, 0.5, 2, 3, rng.New(16))
	s := ComputeStats(d, a)
	// Clients in the same group must draw labels from the same block:
	// the union of labels held by a group must be disjoint from other
	// groups' unions.
	groupLabels := make([]map[int]bool, 3)
	for g := range groupLabels {
		groupLabels[g] = map[int]bool{}
	}
	for k := range a.ClientIndices {
		for c, n := range s.LabelMatrix[k] {
			if n > 0 {
				groupLabels[a.Clusters[k]][c] = true
			}
		}
	}
	for g1 := 0; g1 < 3; g1++ {
		for g2 := g1 + 1; g2 < 3; g2++ {
			for c := range groupLabels[g1] {
				if groupLabels[g2][c] {
					t.Fatalf("label %d appears in groups %d and %d", c, g1, g2)
				}
			}
		}
	}
}

func TestDeltaControlsMainGroupSize(t *testing.T) {
	d := tenClassData(t, 17)
	for _, tc := range []struct {
		delta float64
		want  int
	}{{0.2, 4}, {0.4, 8}, {0.6, 12}} {
		a := ClusteredEqual(d, 20, tc.delta, 2, 3, rng.New(18))
		got := 0
		for _, g := range a.Clusters {
			if g == 0 {
				got++
			}
		}
		if got != tc.want {
			t.Fatalf("delta %v: main group %d, want %d", tc.delta, got, tc.want)
		}
	}
}

func TestEqualShards(t *testing.T) {
	d := tenClassData(t, 19)
	a := EqualShards(d, 10, 2, rng.New(20))
	assertDisjoint(t, d, a)
	s := ComputeStats(d, a)
	if s.Coverage != 1 {
		t.Fatalf("Equal coverage = %v", s.Coverage)
	}
	// Near-equal quantities (shards may differ by 1 sample).
	min, max := s.Counts[0], s.Counts[0]
	for _, c := range s.Counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max-min > 2 {
		t.Fatalf("Equal shards count spread %d-%d", min, max)
	}
	// Label-size imbalance: clients should hold only a few labels.
	if s.MeanLabels > 5 {
		t.Fatalf("Equal shards mean labels %v, expected few", s.MeanLabels)
	}
}

func TestNonEqualShards(t *testing.T) {
	d := hundredClassData(t, 21)
	a := NonEqualShards(d, 10, 10, 6, 14, rng.New(22))
	assertDisjoint(t, d, a)
	s := ComputeStats(d, a)
	if s.Coverage != 1 {
		t.Fatalf("Non-equal coverage = %v", s.Coverage)
	}
	if !s.Characteristics(d.NumClasses).QuantityImbalance {
		t.Fatalf("Non-equal shards should show quantity imbalance, CV = %v", s.QuantityCV)
	}
}

func TestNonEqualShardBoundsRespected(t *testing.T) {
	d := tenClassData(t, 23)
	a := NonEqualShards(d, 10, 10, 6, 14, rng.New(24))
	total := 0
	for k, idxs := range a.ClientIndices {
		if len(idxs) == 0 {
			t.Fatalf("client %d received nothing", k)
		}
		total += len(idxs)
	}
	if total != d.N {
		t.Fatalf("assigned %d of %d samples", total, d.N)
	}
}

func TestPartitionDisjointnessProperty(t *testing.T) {
	// Property: for arbitrary seeds and client counts, every partitioner
	// yields pairwise-disjoint client index sets with valid indices.
	d := tenClassData(t, 25)
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%17 + 3 // 3..19 clients
		r := rng.New(seed)
		as := []*Assignment{
			Pareto(d, n, 2, 1.5, r),
			ClusteredEqual(d, n, 0.5, 2, 3, r),
			ClusteredNonEqual(d, n, 0.5, 2, 3, 1.0, r),
			EqualShards(d, n, 2, r),
			NonEqualShards(d, n, 10, 6, 14, r),
		}
		for _, a := range as {
			if a.NumClients() != n {
				return false
			}
			seen := map[int]bool{}
			for _, idxs := range a.ClientIndices {
				for _, i := range idxs {
					if i < 0 || i >= d.N || seen[i] {
						return false
					}
					seen[i] = true
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCIFAR100StylePartition(t *testing.T) {
	d := hundredClassData(t, 27)
	// 20 labels per client as in the paper's CIFAR-100 PA setting.
	a := Pareto(d, 10, 20, 1.5, rng.New(28))
	assertDisjoint(t, d, a)
	s := ComputeStats(d, a)
	for k, held := range s.LabelsHeld {
		if held > 20 {
			t.Fatalf("client %d holds %d labels, want <= 20", k, held)
		}
	}
	if s.Coverage != 1 {
		t.Fatalf("coverage %v", s.Coverage)
	}
}

func TestHundredClients(t *testing.T) {
	d := tenClassData(t, 29)
	for _, build := range []func() *Assignment{
		func() *Assignment { return Pareto(d, 100, 2, 1.5, rng.New(30)) },
		func() *Assignment { return ClusteredEqual(d, 100, 0.6, 2, 3, rng.New(31)) },
		func() *Assignment { return ClusteredNonEqual(d, 100, 0.6, 2, 3, 1.0, rng.New(32)) },
	} {
		a := build()
		assertDisjoint(t, d, a)
		empty := 0
		for _, idxs := range a.ClientIndices {
			if len(idxs) == 0 {
				empty++
			}
		}
		// With 600 samples over 100 clients some starvation is possible
		// for CN but must stay rare.
		if empty > 5 {
			t.Fatalf("%s: %d of 100 clients empty", a.Method, empty)
		}
	}
}

func TestPanics(t *testing.T) {
	d := tenClassData(t, 33)
	cases := []func(){
		func() { Pareto(d, 0, 2, 1, rng.New(1)) },
		func() { Pareto(d, 5, 11, 1, rng.New(1)) },
		func() { ClusteredEqual(d, 10, 0, 2, 3, rng.New(1)) },
		func() { ClusteredEqual(d, 10, 1.5, 2, 3, rng.New(1)) },
		func() { ClusteredEqual(d, 2, 0.5, 2, 3, rng.New(1)) },
		func() { ClusteredEqual(d, 10, 0.5, 4, 3, rng.New(1)) }, // 3*4 > 10 classes
		func() { EqualShards(d, 0, 2, rng.New(1)) },
		func() { NonEqualShards(d, 10, 10, 14, 6, rng.New(1)) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestASCIIRender(t *testing.T) {
	d := tenClassData(t, 35)
	a := ClusteredEqual(d, 10, 0.6, 2, 3, rng.New(36))
	out := ASCII(d, a)
	if !strings.Contains(out, "CE partition") {
		t.Fatalf("ASCII header missing:\n%s", out)
	}
	if !strings.Contains(out, "L0") || !strings.Contains(out, "L9") {
		t.Fatal("ASCII label rows missing")
	}
	if !strings.Contains(out, "groups:") {
		t.Fatal("ASCII group row missing for clustered method")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 1+1+10+1 { // header + column header + 10 labels + groups
		t.Fatalf("ASCII has %d lines", len(lines))
	}
}

func TestStatsClusterScoreOrdering(t *testing.T) {
	// Cluster score must be clearly higher for CE than for PA.
	d := tenClassData(t, 37)
	ce := ComputeStats(d, ClusteredEqual(d, 12, 0.5, 2, 3, rng.New(38)))
	pa := ComputeStats(d, Pareto(d, 12, 2, 1.5, rng.New(39)))
	if ce.ClusterScore <= pa.ClusterScore {
		t.Fatalf("cluster score: CE %v <= PA %v", ce.ClusterScore, pa.ClusterScore)
	}
}
