package fl

import (
	"fmt"
	"math"
	"sort"

	"feddrl/internal/engine"
	"feddrl/internal/serialize"
	"feddrl/internal/tensor"
)

// Sparse update compression (§3.5: "our technique is still applicable to
// other communication techniques such as sparse data compression
// [4, 18]"). Clients upload only the top-k weight *deltas* against the
// broadcast global model; the server reconstructs w_k = w_global + Δ_k
// before aggregation. FedDRL's impact factors are orthogonal to the
// compression, which is exactly the compatibility the paper claims — and
// TestFedDRLWithCompression exercises the combination.

// SparseDelta is a compressed client update: the coordinates and values
// of the largest-magnitude weight changes.
type SparseDelta struct {
	Dim     int
	Indices []int
	Values  []float64
}

// CompressTopK keeps the k largest-magnitude entries of (weights −
// base). k is clamped to the vector length.
func CompressTopK(weights, base []float64, k int) SparseDelta {
	if len(weights) != len(base) {
		panic(fmt.Sprintf("fl: CompressTopK length mismatch %d vs %d", len(weights), len(base)))
	}
	if k <= 0 {
		panic("fl: CompressTopK with non-positive k")
	}
	n := len(weights)
	if k > n {
		k = n
	}
	type iv struct {
		i int
		v float64
	}
	all := make([]iv, n)
	for i := range weights {
		all[i] = iv{i, weights[i] - base[i]}
	}
	sort.Slice(all, func(a, b int) bool {
		da, db := all[a].v, all[b].v
		if da < 0 {
			da = -da
		}
		if db < 0 {
			db = -db
		}
		return da > db
	})
	d := SparseDelta{Dim: n, Indices: make([]int, k), Values: make([]float64, k)}
	top := all[:k]
	sort.Slice(top, func(a, b int) bool { return top[a].i < top[b].i })
	for j, e := range top {
		d.Indices[j] = e.i
		d.Values[j] = e.v
	}
	return d
}

// Decompress reconstructs the full weight vector w = base + Δ.
func (d SparseDelta) Decompress(base []float64) []float64 {
	if len(base) != d.Dim {
		panic(fmt.Sprintf("fl: Decompress base length %d, delta dim %d", len(base), d.Dim))
	}
	out := append([]float64(nil), base...)
	for j, i := range d.Indices {
		if i < 0 || i >= d.Dim {
			panic(fmt.Sprintf("fl: Decompress index %d out of %d", i, d.Dim))
		}
		out[i] += d.Values[j]
	}
	return out
}

// WireSize returns the encoded byte size of the sparse delta (4-byte
// indices + 8-byte values + header), for comparing against the dense
// payload of serialize.VectorWireSize.
func (d SparseDelta) WireSize() int {
	return 8 + 4*len(d.Indices) + 8*len(d.Values)
}

// CompressionRatio returns dense/sparse payload size.
func (d SparseDelta) CompressionRatio() float64 {
	return float64(serialize.VectorWireSize(d.Dim)) / float64(d.WireSize())
}

// CompressionError returns the L2 norm of the dropped delta mass — the
// reconstruction error the top-k truncation introduces.
func CompressionError(weights, base []float64, d SparseDelta) float64 {
	rec := d.Decompress(base)
	sum := 0.0
	for i := range weights {
		diff := weights[i] - rec[i]
		sum += diff * diff
	}
	return math.Sqrt(sum)
}

// CompressUpdates converts a round's dense updates into sparse deltas
// against the global model, keeping a fraction of coordinates.
func CompressUpdates(updates []Update, global []float64, keepFrac float64) []SparseDelta {
	return CompressUpdatesOn(updates, global, keepFrac, nil)
}

// CompressUpdatesOn is CompressUpdates executed on an engine pool: the
// per-client top-k selections are independent, so they fan out across
// the pool's lanes (stealable like any engine job when the pool is
// busy), one update per index slot. A nil pool runs inline. The result
// is bit-identical to the sequential path at any pool width.
func CompressUpdatesOn(updates []Update, global []float64, keepFrac float64, pool *engine.Pool) []SparseDelta {
	if keepFrac <= 0 || keepFrac > 1 {
		panic(fmt.Sprintf("fl: keepFrac %v out of (0,1]", keepFrac))
	}
	k := int(keepFrac * float64(len(global)))
	if k < 1 {
		k = 1
	}
	out := make([]SparseDelta, len(updates))
	pool.For(len(updates), func(i int) {
		out[i] = CompressTopK(updates[i].Weights, global, k)
	})
	return out
}

// DecompressUpdates reconstructs dense updates from sparse deltas,
// preserving the metadata of the originals.
func DecompressUpdates(updates []Update, deltas []SparseDelta, global []float64) []Update {
	if len(updates) != len(deltas) {
		panic("fl: DecompressUpdates length mismatch")
	}
	out := make([]Update, len(updates))
	for i, u := range updates {
		out[i] = u
		out[i].Weights = deltas[i].Decompress(global)
	}
	return out
}

// SparseDelta32 is the f32-mode compressed client update: top-k weight
// deltas at half width (4-byte values), composing the two wire savings
// — sparsification and narrow encoding — exactly as §3.5 claims the
// method's impact factors compose with any communication technique.
type SparseDelta32 struct {
	Dim     int
	Indices []int
	Values  []float32
}

// CompressTopK32 keeps the k largest-magnitude entries of (weights −
// base), all in float32 arithmetic. k is clamped to the vector length.
func CompressTopK32(weights, base []float32, k int) SparseDelta32 {
	if len(weights) != len(base) {
		panic(fmt.Sprintf("fl: CompressTopK32 length mismatch %d vs %d", len(weights), len(base)))
	}
	if k <= 0 {
		panic("fl: CompressTopK32 with non-positive k")
	}
	n := len(weights)
	if k > n {
		k = n
	}
	type iv struct {
		i int
		v float32
	}
	all := make([]iv, n)
	for i := range weights {
		all[i] = iv{i, weights[i] - base[i]}
	}
	sort.Slice(all, func(a, b int) bool {
		da, db := all[a].v, all[b].v
		if da < 0 {
			da = -da
		}
		if db < 0 {
			db = -db
		}
		return da > db
	})
	d := SparseDelta32{Dim: n, Indices: make([]int, k), Values: make([]float32, k)}
	top := all[:k]
	sort.Slice(top, func(a, b int) bool { return top[a].i < top[b].i })
	for j, e := range top {
		d.Indices[j] = e.i
		d.Values[j] = e.v
	}
	return d
}

// Decompress reconstructs the full float32 weight vector w = base + Δ.
func (d SparseDelta32) Decompress(base []float32) []float32 {
	if len(base) != d.Dim {
		panic(fmt.Sprintf("fl: Decompress32 base length %d, delta dim %d", len(base), d.Dim))
	}
	out := append([]float32(nil), base...)
	for j, i := range d.Indices {
		if i < 0 || i >= d.Dim {
			panic(fmt.Sprintf("fl: Decompress32 index %d out of %d", i, d.Dim))
		}
		out[i] += d.Values[j]
	}
	return out
}

// WireSize returns the encoded byte size of the f32 sparse delta
// (4-byte indices + 4-byte values + header).
func (d SparseDelta32) WireSize() int {
	return 8 + 4*len(d.Indices) + 4*len(d.Values)
}

// CompressionRatio returns dense-f32/sparse-f32 payload size.
func (d SparseDelta32) CompressionRatio() float64 {
	return float64(serialize.VectorWireSize32(d.Dim)) / float64(d.WireSize())
}

// CompressUpdates32On converts an f32-mode round's updates (Weights32)
// into sparse f32 deltas against the global model, keeping a fraction
// of coordinates, fanned out on an engine pool exactly like
// CompressUpdatesOn (bit-identical at any pool width). The global base
// is quantized once — exact, since the run loop keeps it on the
// float32 lattice.
func CompressUpdates32On(updates []Update, global []float64, keepFrac float64, pool *engine.Pool) []SparseDelta32 {
	if keepFrac <= 0 || keepFrac > 1 {
		panic(fmt.Sprintf("fl: keepFrac %v out of (0,1]", keepFrac))
	}
	k := int(keepFrac * float64(len(global)))
	if k < 1 {
		k = 1
	}
	base := tensor.Quantize(nil, global)
	out := make([]SparseDelta32, len(updates))
	pool.For(len(updates), func(i int) {
		out[i] = CompressTopK32(updates[i].Weights32, base, k)
	})
	return out
}

// DecompressUpdates32 reconstructs dense f32 updates from sparse
// deltas, preserving the metadata of the originals.
func DecompressUpdates32(updates []Update, deltas []SparseDelta32, global []float64) []Update {
	if len(updates) != len(deltas) {
		panic("fl: DecompressUpdates32 length mismatch")
	}
	base := tensor.Quantize(nil, global)
	out := make([]Update, len(updates))
	for i, u := range updates {
		out[i] = u
		out[i].Weights32 = deltas[i].Decompress(base)
	}
	return out
}
