package fl

import (
	"feddrl/internal/dataset"
	"feddrl/internal/engine"
	"feddrl/internal/nn"
	"feddrl/internal/tensor"
)

// Evaluator performs chunk-parallel full-dataset evaluation on a worker
// pool, holding one model replica (and loss scratch) per pool lane so
// concurrent chunks never share forward-pass state. The engine's
// work-stealing scheduler keeps this layer parallel even when an outer
// experiment grid saturates the pool: lanes that drain their own cells
// steal pending evaluation chunks, and whichever lane steals a chunk,
// the replica it uses is indexed by the call-local lane id, never by
// the thief's identity. Results are bit-identical to EvalLossAcc on a
// single model with the same weights: each evalChunk-sized chunk's loss
// and accuracy are computed by exactly the same operations, and the
// cross-chunk reduction runs sequentially in chunk order.
type Evaluator struct {
	pool    *engine.Pool
	factory nn.Factory
	seed    uint64
	// models/ces/scratches grow lazily to min(lanes, chunks): a small
	// test set never pays for replicas its chunk count cannot occupy.
	// Each lane replica owns its scratch arena so concurrent chunks
	// reuse buffers without sharing them. Evaluator is not safe for
	// concurrent Eval calls.
	models    []*nn.Network
	ces       []*nn.CrossEntropy
	scratches []*nn.Scratch
}

// NewEvaluator builds an evaluator over pool. A nil pool is valid and
// yields a single-replica sequential evaluator. factory must build the
// architecture the evaluated weight vectors come from; the replicas'
// initial weights are irrelevant (Eval overwrites them). Replicas are
// constructed lazily, one per lane actually used.
func NewEvaluator(factory nn.Factory, seed uint64, pool *engine.Pool) *Evaluator {
	return &Evaluator{pool: pool, factory: factory, seed: seed}
}

// Eval loads the flat weight vector into the lane replicas and returns
// the mean loss and top-1 accuracy on d.
func (e *Evaluator) Eval(global []float64, d *dataset.Dataset) (loss, acc float64) {
	if d == nil || d.N == 0 {
		return 0, 0
	}
	// Lanes handed chunks by ForWorker are always < min(Workers, chunks),
	// so only that many replicas can ever be touched.
	chunks := (d.N + evalChunk - 1) / evalChunk
	need := e.pool.Workers()
	if need > chunks {
		need = chunks
	}
	for len(e.models) < need {
		e.models = append(e.models, e.factory(e.seed))
		e.ces = append(e.ces, nn.NewCrossEntropy())
		e.scratches = append(e.scratches, nn.NewScratch())
	}
	for i := 0; i < need; i++ {
		e.models[i].SetParamVector(global)
	}
	return evalChunked(e.models, e.ces, e.scratches, d, e.pool)
}

// evalChunked is the shared evaluation kernel: chunk i is scored by lane
// w's replica, per-chunk sums land in per-chunk slots, and the final
// reduction walks the slots in order — the same additions in the same
// order as the sequential loop.
func evalChunked(models []*nn.Network, ces []*nn.CrossEntropy, scratches []*nn.Scratch, d *dataset.Dataset, pool *engine.Pool) (loss, acc float64) {
	chunks := (d.N + evalChunk - 1) / evalChunk
	chunkLoss := make([]float64, chunks)
	chunkCorrect := make([]float64, chunks)
	pool.ForWorker(chunks, func(w, i int) {
		start := i * evalChunk
		end := start + evalChunk
		if end > d.N {
			end = d.N
		}
		n := end - start
		x := tensor.FromSlice(d.X[start*d.Dim:end*d.Dim], n, d.Dim)
		l, a := ces[w].Eval(models[w].ForwardScratch(scratches[w], x, false), d.Y[start:end])
		chunkLoss[i] = l * float64(n)
		chunkCorrect[i] = a * float64(n)
	})
	totalLoss, correct := 0.0, 0.0
	for i := range chunkLoss {
		totalLoss += chunkLoss[i]
		correct += chunkCorrect[i]
	}
	return totalLoss / float64(d.N), correct / float64(d.N)
}
