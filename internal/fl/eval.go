package fl

import (
	"feddrl/internal/dataset"
	"feddrl/internal/engine"
	"feddrl/internal/nn"
	"feddrl/internal/tensor"
)

// evalLane is one replica's worth of chunked-evaluation state: a model,
// its loss scratch and activation arena, plus the reusable chunk-batch
// buffers — a rebindable tensor header for contiguous data and gather
// buffers for index views. One lane serves one pool lane at a time, so
// concurrent chunks never share forward-pass state.
type evalLane struct {
	model   *nn.Network
	ce      *nn.CrossEntropy
	scratch *nn.Scratch

	hdr tensor.Tensor
	gx  []float64
	gy  []int
}

// batch returns samples [start, end) of d as a 2-D tensor plus labels,
// reusing the lane's header and gather buffers. Contiguous data is
// wrapped in place (zero copy); a view's samples are gathered into the
// lane's buffer. The forward pass sees the same float64 values either
// way, so the two paths are bit-identical.
func (ln *evalLane) batch(d dataset.Data, start, end int) (*tensor.Tensor, []int) {
	dim := d.FeatureDim()
	n := end - start
	if x, y, ok := d.Raw(); ok {
		return ln.hdr.Bind2D(x[start*dim:end*dim], n, dim), y[start:end]
	}
	if cap(ln.gx) < n*dim {
		ln.gx = make([]float64, n*dim)
	}
	if cap(ln.gy) < n {
		ln.gy = make([]int, n)
	}
	gx, gy := ln.gx[:n*dim], ln.gy[:n]
	for i := 0; i < n; i++ {
		copy(gx[i*dim:(i+1)*dim], d.Sample(start+i))
		gy[i] = d.Label(start + i)
	}
	return ln.hdr.Bind2D(gx, n, dim), gy
}

// evalSums holds evalChunked's per-call state, hoisted into the owner
// (Evaluator, Client) so repeated evaluations allocate nothing: the
// per-chunk partial-sum slots plus the chunk task closure, which is
// built once over the struct and rebound to each call through it.
type evalSums struct {
	loss, correct []float64

	lanes []*evalLane
	d     dataset.Data
	n     int
	task  func(w, i int)
}

func (s *evalSums) grow(chunks int) {
	if cap(s.loss) < chunks {
		s.loss = make([]float64, chunks)
		s.correct = make([]float64, chunks)
	}
}

// chunk scores chunk i on lane w's replica (the body of the ForWorker
// fan-out).
func (s *evalSums) chunk(w, i int) {
	start := i * evalChunk
	end := start + evalChunk
	if end > s.n {
		end = s.n
	}
	cn := end - start
	ln := s.lanes[w]
	x, y := ln.batch(s.d, start, end)
	l, a := ln.ce.Eval(ln.model.ForwardScratch(ln.scratch, x, false), y)
	s.loss[i] = l * float64(cn)
	s.correct[i] = a * float64(cn)
}

// Evaluator performs chunk-parallel full-dataset evaluation on a worker
// pool, holding one evalLane (model replica plus scratch) per pool lane
// so concurrent chunks never share forward-pass state. The engine's
// work-stealing scheduler keeps this layer parallel even when an outer
// experiment grid saturates the pool: lanes that drain their own cells
// steal pending evaluation chunks, and whichever lane steals a chunk,
// the replica it uses is indexed by the call-local lane id, never by
// the thief's identity. A nil pool yields a single-lane sequential
// evaluator. Results are bit-identical to EvalLossAcc on a single model
// with the same weights: each evalChunk-sized chunk's loss and accuracy
// are computed by exactly the same operations, and the cross-chunk
// reduction runs sequentially in chunk order.
type Evaluator struct {
	pool    *engine.Pool
	factory nn.Factory
	seed    uint64
	// lanes grow lazily to min(pool lanes, chunks): a small test set
	// never pays for replicas its chunk count cannot occupy. Evaluator
	// is not safe for concurrent Eval calls.
	lanes []*evalLane
	sums  evalSums
}

// NewEvaluator builds an evaluator over pool. A nil pool is valid and
// yields a single-replica sequential evaluator. factory must build the
// architecture the evaluated weight vectors come from; the replicas'
// initial weights are irrelevant (Eval overwrites them). Replicas are
// constructed lazily, one per lane actually used.
func NewEvaluator(factory nn.Factory, seed uint64, pool *engine.Pool) *Evaluator {
	return &Evaluator{pool: pool, factory: factory, seed: seed}
}

// Eval loads the flat weight vector into the lane replicas and returns
// the mean loss and top-1 accuracy on d.
func (e *Evaluator) Eval(global []float64, d *dataset.Dataset) (loss, acc float64) {
	if d == nil || d.N == 0 {
		return 0, 0
	}
	// Lanes handed chunks by ForWorker are always < min(Workers, chunks),
	// so only that many replicas can ever be touched.
	chunks := (d.N + evalChunk - 1) / evalChunk
	need := e.pool.Workers()
	if need > chunks {
		need = chunks
	}
	for len(e.lanes) < need {
		e.lanes = append(e.lanes, &evalLane{
			model:   e.factory(e.seed),
			ce:      nn.NewCrossEntropy(),
			scratch: nn.NewScratch(),
		})
	}
	for i := 0; i < need; i++ {
		e.lanes[i].model.SetParamVector(global)
	}
	return evalChunked(e.lanes[:need], d, e.pool, &e.sums)
}

// evalChunked is the shared evaluation kernel: chunk i is scored by lane
// w's replica, per-chunk sums land in per-chunk slots, and the final
// reduction walks the slots in order — the same additions in the same
// order as the sequential loop.
func evalChunked(lanes []*evalLane, d dataset.Data, pool *engine.Pool, sums *evalSums) (loss, acc float64) {
	n := d.Len()
	chunks := (n + evalChunk - 1) / evalChunk
	sums.grow(chunks)
	sums.lanes, sums.d, sums.n = lanes, d, n
	if sums.task == nil {
		sums.task = sums.chunk
	}
	// Chunks are short, uniform batches: the fine scheduling class keeps
	// them ahead of stolen coarse work so evaluation latency tracks the
	// chunk cost, not the longest grid cell in flight.
	pool.ForWorkerHinted(chunks, engine.SizeFine, 0, sums.task)
	sums.lanes, sums.d = nil, nil
	totalLoss, correct := 0.0, 0.0
	for i := 0; i < chunks; i++ {
		totalLoss += sums.loss[i]
		correct += sums.correct[i]
	}
	return totalLoss / float64(n), correct / float64(n)
}
