package fl

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"feddrl/internal/core"
	"feddrl/internal/dataset"
	"feddrl/internal/engine"
	"feddrl/internal/nn"
	"feddrl/internal/partition"
	"feddrl/internal/rng"
	"feddrl/internal/tensor"
)

// The determinism suite: the engine's parallel paths (client fan-out,
// chunked evaluation, segment-parallel aggregation) must be bit-identical
// to the sequential reference for every aggregator, at every worker
// count. "Bit-identical" is literal — float64 == on every weight and
// every recorded metric.

// detFederation builds a small non-IID federation shared by the
// determinism cases.
func detFederation(t testing.TB, seed uint64) (clients []*Client, test *dataset.Dataset, cfg RunConfig) {
	t.Helper()
	tr, te := dataset.Synthesize(dataset.MNISTSim().Scaled(0.12), seed)
	f := tinyFactory(tr.Dim, tr.NumClasses)
	assign := partition.ClusteredEqual(tr, 6, 0.6, 2, 3, rng.New(seed+1))
	cfg = RunConfig{
		Rounds:    4,
		K:         4,
		Local:     LocalConfig{Epochs: 1, Batch: 10, LR: 0.05},
		Factory:   f,
		Seed:      seed + 2,
		EvalEvery: 1,
	}
	return BuildClients(tr, assign.ClientIndices, f, seed+3), te, cfg
}

// detAggregators returns fresh aggregator instances (FedDRL is stateful,
// so every run needs its own agent).
func detAggregators(k int, seed uint64) map[string]func() Aggregator {
	return map[string]func() Aggregator{
		"FedAvg":  func() Aggregator { return FedAvg{} },
		"FedProx": func() Aggregator { return FedProx{} },
		"FedDRL": func() Aggregator {
			drl := core.DefaultConfig(k)
			drl.Hidden = 16
			drl.BatchSize = 8
			drl.WarmupExperiences = 2
			drl.UpdatesPerRound = 1
			drl.BufferCap = 64
			drl.Seed = seed + 9
			return NewFedDRL(core.NewAgent(drl))
		},
	}
}

// stripTimings zeroes the wall-clock fields, the only Result content
// legitimately allowed to differ between runs.
func stripTimings(r *Result) *Result {
	for i := range r.Rounds {
		r.Rounds[i].DecisionTime = 0
		r.Rounds[i].AggTime = 0
	}
	return r
}

// TestRunBitIdenticalAcrossWorkers is the archetype test: Run with
// Workers ∈ {1, 2, 3, GOMAXPROCS} produces byte-for-byte the same
// Result (final weights, accuracy series, client-loss statistics) as
// the sequential path, for all three aggregators.
func TestRunBitIdenticalAcrossWorkers(t *testing.T) {
	const seed = 11
	workerCounts := []int{1, 2, 3, runtime.GOMAXPROCS(0)}
	for name, mkAgg := range detAggregators(4, seed) {
		t.Run(name, func(t *testing.T) {
			runAt := func(workers int) *Result {
				clients, test, cfg := detFederation(t, seed)
				if name == "FedProx" {
					cfg.Local.ProxMu = 0.01
				}
				cfg.Workers = workers
				return stripTimings(Run(cfg, clients, test, mkAgg()))
			}
			ref := runAt(1)
			if len(ref.Weights) == 0 {
				t.Fatal("reference run recorded no final weights")
			}
			for _, w := range workerCounts[1:] {
				got := runAt(w)
				if !reflect.DeepEqual(ref, got) {
					t.Fatalf("Workers=%d Result differs from sequential", w)
				}
				for i := range ref.Weights {
					if math.Float64bits(ref.Weights[i]) != math.Float64bits(got.Weights[i]) {
						t.Fatalf("Workers=%d: weight %d differs bitwise: %x vs %x",
							w, i, math.Float64bits(ref.Weights[i]), math.Float64bits(got.Weights[i]))
					}
				}
			}
		})
	}
}

// TestRunDeprecatedParallelFlag keeps the legacy Parallel bool working
// and bit-identical to sequential execution.
func TestRunDeprecatedParallelFlag(t *testing.T) {
	const seed = 13
	run := func(parallel bool) *Result {
		clients, test, cfg := detFederation(t, seed)
		cfg.Parallel = parallel
		return stripTimings(Run(cfg, clients, test, FedAvg{}))
	}
	if !reflect.DeepEqual(run(false), run(true)) {
		t.Fatal("Parallel=true differs from sequential")
	}
}

// TestRunSharedPool runs on a caller-owned engine pool (the experiments
// grid configuration) and checks the result still matches sequential.
func TestRunSharedPool(t *testing.T) {
	const seed = 17
	clients, test, cfg := detFederation(t, seed)
	ref := stripTimings(Run(cfg, clients, test, FedAvg{}))

	pool := engine.New(3)
	defer pool.Close()
	clients2, test2, cfg2 := detFederation(t, seed)
	cfg2.Pool = pool
	got := stripTimings(Run(cfg2, clients2, test2, FedAvg{}))
	if !reflect.DeepEqual(ref, got) {
		t.Fatal("shared-pool Result differs from sequential")
	}
}

// dupSelector violates the Selector contract on purpose: it returns the
// same client twice, which must force Run onto the sequential fallback
// instead of racing two lanes on one client.
type dupSelector struct{}

func (dupSelector) Name() string { return "dup" }
func (dupSelector) Select(round, k int, pop Population, r *rng.RNG) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i % 2
	}
	return out
}

func TestRunDuplicateSelectionFallsBackSequential(t *testing.T) {
	const seed = 19
	run := func(workers int) *Result {
		clients, test, cfg := detFederation(t, seed)
		cfg.Selector = dupSelector{}
		cfg.Workers = workers
		return stripTimings(Run(cfg, clients, test, FedAvg{}))
	}
	if !reflect.DeepEqual(run(1), run(4)) {
		t.Fatal("duplicate-selection run differs across worker counts")
	}
}

// TestEvaluatorMatchesEvalLossAcc checks the chunk-parallel evaluator
// against the sequential kernel, bitwise, across worker counts and
// dataset sizes that exercise partial final chunks.
func TestEvaluatorMatchesEvalLossAcc(t *testing.T) {
	tr, _ := tinyData(t, 23)
	f := tinyFactory(tr.Dim, tr.NumClasses)
	model := f(5)
	global := model.ParamVector()
	for _, n := range []int{1, 3, evalChunk - 1, evalChunk, evalChunk + 1, tr.N} {
		d := tr.Subset(seqIndices(n))
		wantLoss, wantAcc := EvalLossAcc(model, d)
		for _, workers := range []int{1, 2, 4} {
			pool := engine.New(workers)
			ev := NewEvaluator(f, 5, pool)
			gotLoss, gotAcc := ev.Eval(global, d)
			pool.Close()
			if math.Float64bits(wantLoss) != math.Float64bits(gotLoss) ||
				math.Float64bits(wantAcc) != math.Float64bits(gotAcc) {
				t.Fatalf("n=%d workers=%d: evaluator (%v, %v) != sequential (%v, %v)",
					n, workers, gotLoss, gotAcc, wantLoss, wantAcc)
			}
		}
	}
}

// TestEvalLossAccMatchesNaive cross-checks the chunked kernel against a
// per-sample reference implementation (a different summation order, so
// tolerance-based).
func TestEvalLossAccMatchesNaive(t *testing.T) {
	tr, _ := tinyData(t, 29)
	f := tinyFactory(tr.Dim, tr.NumClasses)
	model := f(6)
	gotLoss, gotAcc := EvalLossAcc(model, tr)
	wantLoss, wantAcc := naiveEvalLossAcc(model, tr)
	if math.Abs(gotLoss-wantLoss) > 1e-9 || math.Abs(gotAcc-wantAcc) > 1e-12 {
		t.Fatalf("chunked (%v, %v) vs naive (%v, %v)", gotLoss, gotAcc, wantLoss, wantAcc)
	}
}

// naiveEvalLossAcc is the obvious one-sample-at-a-time reference.
func naiveEvalLossAcc(m *nn.Network, d *dataset.Dataset) (loss, acc float64) {
	ce := nn.NewCrossEntropy()
	totalLoss, correct := 0.0, 0.0
	for i := 0; i < d.N; i++ {
		x := tensorFromSample(d, i)
		l, a := ce.Eval(m.Forward(x, false), d.Y[i:i+1])
		totalLoss += l
		correct += a
	}
	return totalLoss / float64(d.N), correct / float64(d.N)
}

// TestAggregateOnMatchesSequential checks the segment-parallel merge
// bitwise against both Aggregate and a naive double-loop reference, at
// dimensions spanning multiple segments.
func TestAggregateOnMatchesSequential(t *testing.T) {
	r := rng.New(31)
	for _, dim := range []int{1, 100, aggSegment, aggSegment + 1, 3*aggSegment + 17} {
		const k = 5
		ups := make([]Update, k)
		for i := range ups {
			w := make([]float64, dim)
			for j := range w {
				w[j] = r.Norm()
			}
			ups[i] = Update{N: 10 * (i + 1), Weights: w}
		}
		alpha := (FedAvg{}).ImpactFactors(0, ups)
		want := Aggregate(ups, alpha)
		naive := naiveAggregate(ups, alpha)
		for _, workers := range []int{2, 4} {
			pool := engine.New(workers)
			got := AggregateOn(ups, alpha, pool)
			pool.Close()
			for j := range want {
				if math.Float64bits(want[j]) != math.Float64bits(got[j]) {
					t.Fatalf("dim=%d workers=%d: element %d differs from Aggregate", dim, workers, j)
				}
				if math.Float64bits(want[j]) != math.Float64bits(naive[j]) {
					t.Fatalf("dim=%d: element %d differs from naive reference", dim, j)
				}
			}
		}
	}
}

// naiveAggregate folds updates in the same k-order as the production
// kernel, one element at a time.
func naiveAggregate(updates []Update, alpha []float64) []float64 {
	out := make([]float64, len(updates[0].Weights))
	for k, u := range updates {
		for j, w := range u.Weights {
			out[j] += alpha[k] * w
		}
	}
	return out
}

// seqIndices returns [0, 1, ..., n).
func seqIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// tensorFromSample wraps sample i as a 1×Dim batch.
func tensorFromSample(d *dataset.Dataset, i int) *tensor.Tensor {
	return tensor.FromSlice(d.Sample(i), 1, d.Dim)
}
