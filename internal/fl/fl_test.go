package fl

import (
	"math"
	"testing"
	"testing/quick"

	"feddrl/internal/core"
	"feddrl/internal/dataset"
	"feddrl/internal/nn"
	"feddrl/internal/partition"
	"feddrl/internal/rng"
)

// tinyFactory builds a small MLP for the mnist-sim shape.
func tinyFactory(dim, classes int) nn.Factory {
	return func(seed uint64) *nn.Network {
		return nn.NewMLP(rng.New(seed), dim, []int{16}, classes)
	}
}

func tinyData(t testing.TB, seed uint64) (*dataset.Dataset, *dataset.Dataset) {
	t.Helper()
	return dataset.Synthesize(dataset.MNISTSim().Scaled(0.15), seed)
}

func tinyLocal() LocalConfig { return LocalConfig{Epochs: 2, Batch: 10, LR: 0.05} }

func TestClientRunImprovesLocalLoss(t *testing.T) {
	tr, _ := tinyData(t, 1)
	f := tinyFactory(tr.Dim, tr.NumClasses)
	c := NewClient(0, tr, f, 42)
	global := f(99).ParamVector()
	u := c.Run(global, LocalConfig{Epochs: 3, Batch: 10, LR: 0.05})
	if u.N != tr.N {
		t.Fatalf("update N = %d, want %d", u.N, tr.N)
	}
	if u.LossAfter >= u.LossBefore {
		t.Fatalf("local training did not reduce loss: %v -> %v", u.LossBefore, u.LossAfter)
	}
	if len(u.Weights) != len(global) {
		t.Fatal("weight vector length changed")
	}
}

func TestClientDeterminism(t *testing.T) {
	tr, _ := tinyData(t, 2)
	f := tinyFactory(tr.Dim, tr.NumClasses)
	global := f(7).ParamVector()
	run := func() Update {
		return NewClient(0, tr, f, 42).Run(global, tinyLocal())
	}
	u1, u2 := run(), run()
	if u1.LossBefore != u2.LossBefore || u1.LossAfter != u2.LossAfter {
		t.Fatal("client losses not deterministic")
	}
	for i := range u1.Weights {
		if u1.Weights[i] != u2.Weights[i] {
			t.Fatal("client weights not deterministic")
		}
	}
}

func TestClientEmptyShard(t *testing.T) {
	tr, _ := tinyData(t, 3)
	empty := tr.Subset(nil)
	f := tinyFactory(tr.Dim, tr.NumClasses)
	c := NewClient(1, empty, f, 5)
	global := f(7).ParamVector()
	u := c.Run(global, tinyLocal())
	if u.N != 0 {
		t.Fatalf("empty shard N = %d", u.N)
	}
	for i := range global {
		if u.Weights[i] != global[i] {
			t.Fatal("empty-shard client must return the global weights unchanged")
		}
	}
}

func TestClientSmallShardBatchClamp(t *testing.T) {
	tr, _ := tinyData(t, 4)
	small := tr.Subset([]int{0, 1, 2})
	f := tinyFactory(tr.Dim, tr.NumClasses)
	c := NewClient(2, small, f, 6)
	u := c.Run(f(7).ParamVector(), LocalConfig{Epochs: 2, Batch: 10, LR: 0.05})
	if u.N != 3 {
		t.Fatalf("N = %d", u.N)
	}
	// Training still ran (weights differ from global).
	diff := false
	g := f(7).ParamVector()
	for i := range g {
		if u.Weights[i] != g[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("small shard did not train")
	}
}

func TestFedProxShrinksDivergence(t *testing.T) {
	tr, _ := tinyData(t, 5)
	f := tinyFactory(tr.Dim, tr.NumClasses)
	global := f(7).ParamVector()
	plain := NewClient(0, tr, f, 42).Run(global, LocalConfig{Epochs: 3, Batch: 10, LR: 0.05})
	prox := NewClient(0, tr, f, 42).Run(global, LocalConfig{Epochs: 3, Batch: 10, LR: 0.05, ProxMu: 1.0})
	distPlain, distProx := 0.0, 0.0
	for i := range global {
		dp := plain.Weights[i] - global[i]
		dq := prox.Weights[i] - global[i]
		distPlain += dp * dp
		distProx += dq * dq
	}
	if distProx >= distPlain {
		t.Fatalf("prox term did not shrink divergence: %v vs %v", distProx, distPlain)
	}
}

func TestFedAvgWeights(t *testing.T) {
	ups := []Update{{N: 10}, {N: 30}, {N: 60}}
	w := (FedAvg{}).ImpactFactors(0, ups)
	want := []float64{0.1, 0.3, 0.6}
	for i := range want {
		if math.Abs(w[i]-want[i]) > 1e-12 {
			t.Fatalf("FedAvg weights = %v", w)
		}
	}
	// All-zero counts fall back to uniform.
	u := (FedAvg{}).ImpactFactors(0, []Update{{N: 0}, {N: 0}})
	if u[0] != 0.5 || u[1] != 0.5 {
		t.Fatalf("zero-count fallback = %v", u)
	}
	if (FedProx{}).Name() != "FedProx" || (FedAvg{}).Name() != "FedAvg" {
		t.Fatal("names wrong")
	}
}

func TestAggregateConvexCombination(t *testing.T) {
	ups := []Update{
		{Weights: []float64{1, 0, 2}},
		{Weights: []float64{3, 4, 2}},
	}
	out := Aggregate(ups, []float64{0.25, 0.75})
	want := []float64{2.5, 3, 2}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-12 {
			t.Fatalf("aggregate = %v", out)
		}
	}
}

func TestAggregatePanics(t *testing.T) {
	ups := []Update{{Weights: []float64{1}}, {Weights: []float64{2}}}
	cases := []func(){
		func() { Aggregate(nil, nil) },
		func() { Aggregate(ups, []float64{1}) },
		func() { Aggregate(ups, []float64{0.2, 0.2}) },  // sum != 1
		func() { Aggregate(ups, []float64{-0.5, 1.5}) }, // negative
		func() {
			bad := []Update{{Weights: []float64{1}}, {Weights: []float64{1, 2}}}
			Aggregate(bad, []float64{0.5, 0.5})
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestAggregateIdentityProperty(t *testing.T) {
	// Aggregating identical weight vectors returns that vector for any
	// convex combination.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		dim := 1 + r.Intn(16)
		k := 2 + r.Intn(4)
		vec := make([]float64, dim)
		for i := range vec {
			vec[i] = r.Normal(0, 2)
		}
		ups := make([]Update, k)
		for i := range ups {
			ups[i] = Update{Weights: vec}
		}
		alpha := r.Dirichlet(ones(k))
		out := Aggregate(ups, alpha)
		for i := range out {
			if math.Abs(out[i]-vec[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func ones(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

func runConfig(tr *dataset.Dataset, rounds, k int) RunConfig {
	return RunConfig{
		Rounds:  rounds,
		K:       k,
		Local:   tinyLocal(),
		Factory: tinyFactory(tr.Dim, tr.NumClasses),
		Seed:    11,
	}
}

func TestRunFedAvgImprovesAccuracy(t *testing.T) {
	tr, te := tinyData(t, 6)
	a := partition.Pareto(tr, 5, 2, 1.2, rng.New(7))
	cfg := runConfig(tr, 8, 5)
	clients := BuildClients(tr, a.ClientIndices, cfg.Factory, cfg.Seed)
	res := Run(cfg, clients, te, FedAvg{})
	if res.Method != "FedAvg" {
		t.Fatalf("method %q", res.Method)
	}
	if len(res.Rounds) != 8 {
		t.Fatalf("rounds %d", len(res.Rounds))
	}
	first, best := res.Accuracy[0], res.Best()
	if best <= first {
		t.Fatalf("no improvement: first %v best %v", first, best)
	}
	if best < 30 {
		t.Fatalf("final accuracy too low: %v", best)
	}
}

func TestRunParallelMatchesSequential(t *testing.T) {
	tr, te := tinyData(t, 8)
	a := partition.Pareto(tr, 4, 2, 1.2, rng.New(9))
	cfg := runConfig(tr, 3, 4)
	seq := Run(cfg, BuildClients(tr, a.ClientIndices, cfg.Factory, cfg.Seed), te, FedAvg{})
	cfgP := cfg
	cfgP.Parallel = true
	par := Run(cfgP, BuildClients(tr, a.ClientIndices, cfg.Factory, cfg.Seed), te, FedAvg{})
	if len(seq.Accuracy) != len(par.Accuracy) {
		t.Fatal("eval counts differ")
	}
	for i := range seq.Accuracy {
		if seq.Accuracy[i] != par.Accuracy[i] {
			t.Fatalf("parallel diverges at eval %d: %v vs %v", i, par.Accuracy[i], seq.Accuracy[i])
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	tr, te := tinyData(t, 10)
	a := partition.ClusteredEqual(tr, 5, 0.6, 2, 3, rng.New(11))
	cfg := runConfig(tr, 3, 5)
	run := func() *Result {
		drl := core.DefaultConfig(5)
		drl.Hidden = 8
		drl.BatchSize = 4
		drl.WarmupExperiences = 2
		drl.UpdatesPerRound = 1
		drl.BufferCap = 64
		return Run(cfg, BuildClients(tr, a.ClientIndices, cfg.Factory, cfg.Seed), te, NewFedDRL(core.NewAgent(drl)))
	}
	r1, r2 := run(), run()
	for i := range r1.Accuracy {
		if r1.Accuracy[i] != r2.Accuracy[i] {
			t.Fatal("FedDRL run not deterministic")
		}
	}
}

func TestRunKClamped(t *testing.T) {
	tr, te := tinyData(t, 12)
	a := partition.Pareto(tr, 3, 2, 1.2, rng.New(13))
	cfg := runConfig(tr, 2, 10) // K=10 > 3 clients
	res := Run(cfg, BuildClients(tr, a.ClientIndices, cfg.Factory, cfg.Seed), te, FedAvg{})
	if len(res.Rounds) != 2 {
		t.Fatal("run did not complete with clamped K")
	}
}

func TestRunSkipsEmptyClients(t *testing.T) {
	tr, te := tinyData(t, 14)
	f := tinyFactory(tr.Dim, tr.NumClasses)
	clients := []*Client{
		NewClient(0, tr.Subset([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}), f, 1),
		NewClient(1, tr.Subset(nil), f, 2), // empty
		NewClient(2, tr.Subset([]int{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}), f, 3),
	}
	cfg := runConfig(tr, 2, 3)
	res := Run(cfg, clients, te, FedAvg{})
	if len(res.Rounds) != 2 {
		t.Fatal("run failed with an empty client")
	}
}

func TestFedDRLAggregatorLifecycle(t *testing.T) {
	tr, te := tinyData(t, 16)
	a := partition.ClusteredEqual(tr, 4, 0.5, 2, 2, rng.New(17))
	drlCfg := core.DefaultConfig(4)
	drlCfg.Hidden = 8
	drlCfg.BatchSize = 4
	drlCfg.WarmupExperiences = 2
	drlCfg.UpdatesPerRound = 1
	drlCfg.BufferCap = 64
	agent := core.NewAgent(drlCfg)
	agg := NewFedDRL(agent)
	cfg := runConfig(tr, 6, 4)
	res := Run(cfg, BuildClients(tr, a.ClientIndices, cfg.Factory, cfg.Seed), te, agg)
	if res.Method != "FedDRL" {
		t.Fatalf("method %q", res.Method)
	}
	// After R rounds the agent holds R-1 completed experiences.
	if agent.Buffer.Len() != 5 {
		t.Fatalf("buffer has %d experiences, want 5", agent.Buffer.Len())
	}
	// Decision time is recorded.
	if res.MeanDecisionTime() <= 0 {
		t.Fatal("decision time not recorded")
	}
}

func TestFedDRLWrongKPanics(t *testing.T) {
	drlCfg := core.DefaultConfig(3)
	drlCfg.Hidden = 8
	agg := NewFedDRL(core.NewAgent(drlCfg))
	defer func() {
		if recover() == nil {
			t.Fatal("K mismatch did not panic")
		}
	}()
	agg.ImpactFactors(0, []Update{{N: 1}, {N: 1}})
}

func TestSingleSetRuns(t *testing.T) {
	tr, te := tinyData(t, 18)
	cfg := runConfig(tr, 4, 1)
	res := SingleSet(cfg, tr, te)
	if res.Method != "SingleSet" {
		t.Fatalf("method %q", res.Method)
	}
	if res.Best() < 40 {
		t.Fatalf("SingleSet accuracy too low: %v", res.Best())
	}
}

func TestSingleSetBeatsOrMatchesFederated(t *testing.T) {
	// The centralized upper bound should not lose badly to FedAvg on a
	// skewed partition.
	tr, te := tinyData(t, 20)
	a := partition.ClusteredEqual(tr, 5, 0.6, 2, 3, rng.New(21))
	cfg := runConfig(tr, 6, 5)
	single := SingleSet(cfg, tr, te)
	fed := Run(cfg, BuildClients(tr, a.ClientIndices, cfg.Factory, cfg.Seed), te, FedAvg{})
	if single.Best()+5 < fed.Best() {
		t.Fatalf("SingleSet (%v) should be near or above FedAvg (%v)", single.Best(), fed.Best())
	}
}

func TestEvalEveryCadence(t *testing.T) {
	tr, te := tinyData(t, 22)
	a := partition.Pareto(tr, 4, 2, 1.2, rng.New(23))
	cfg := runConfig(tr, 7, 4)
	cfg.EvalEvery = 3
	res := Run(cfg, BuildClients(tr, a.ClientIndices, cfg.Factory, cfg.Seed), te, FedAvg{})
	// Rounds 0, 3, 6 evaluated; 6 is also the final round.
	if len(res.Accuracy) != 3 {
		t.Fatalf("evaluations = %d, want 3 (rounds %v)", len(res.Accuracy), res.AccRounds)
	}
}

func TestRunConfigValidatePanics(t *testing.T) {
	tr, _ := tinyData(t, 24)
	good := runConfig(tr, 2, 2)
	mut := []func(*RunConfig){
		func(c *RunConfig) { c.Rounds = 0 },
		func(c *RunConfig) { c.K = 0 },
		func(c *RunConfig) { c.Factory = nil },
		func(c *RunConfig) { c.Local.Epochs = 0 },
		func(c *RunConfig) { c.Local.LR = 0 },
	}
	for i, m := range mut {
		cfg := good
		m(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("mutation %d did not panic", i)
				}
			}()
			cfg.Validate()
		}()
	}
}
