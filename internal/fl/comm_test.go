package fl

import (
	"testing"

	"feddrl/internal/core"
)

func TestCommPerRoundFedAvg(t *testing.T) {
	c := CommPerRound(FedAvg{}, 10, 1000)
	wantDown := 10 * (4 + 8000)
	if c.DownlinkBytes != wantDown {
		t.Fatalf("downlink %d, want %d", c.DownlinkBytes, wantDown)
	}
	wantUp := 10 * (4 + 8000 + 8)
	if c.UplinkBytes != wantUp {
		t.Fatalf("uplink %d, want %d", c.UplinkBytes, wantUp)
	}
	if c.OverheadBytes != 0 || c.OverheadFraction() != 0 {
		t.Fatal("FedAvg should have no method overhead")
	}
}

func TestCommPerRoundFedDRL(t *testing.T) {
	cfg := core.DefaultConfig(10)
	cfg.Hidden = 8
	agg := NewFedDRL(core.NewAgent(cfg))
	c := CommPerRound(agg, 10, 1000)
	if c.OverheadBytes != 160 { // 2 float64 per client × 10 clients
		t.Fatalf("overhead %d, want 160", c.OverheadBytes)
	}
	// §5.3's claim: the overhead is trivial relative to the weights.
	if f := c.OverheadFraction(); f > 0.01 {
		t.Fatalf("overhead fraction %v should be well under 1%%", f)
	}
	// And it shrinks as the model grows.
	big := CommPerRound(agg, 10, 100000)
	if big.OverheadFraction() >= c.OverheadFraction() {
		t.Fatal("overhead fraction should shrink with model size")
	}
}

func TestOverheadFractionDegenerate(t *testing.T) {
	c := CommRound{}
	if c.OverheadFraction() != 0 {
		t.Fatal("zero round should have zero fraction")
	}
}
