package fl

import (
	"testing"

	"feddrl/internal/core"
)

func TestCommPerRoundFedAvg(t *testing.T) {
	c := CommPerRound(FedAvg{}, 10, 1000)
	wantDown := 10 * (4 + 8000)
	if c.DownlinkBytes != wantDown {
		t.Fatalf("downlink %d, want %d", c.DownlinkBytes, wantDown)
	}
	wantUp := 10 * (4 + 8000 + 8)
	if c.UplinkBytes != wantUp {
		t.Fatalf("uplink %d, want %d", c.UplinkBytes, wantUp)
	}
	if c.OverheadBytes != 0 || c.OverheadFraction() != 0 {
		t.Fatal("FedAvg should have no method overhead")
	}
}

func TestCommPerRoundFedDRL(t *testing.T) {
	cfg := core.DefaultConfig(10)
	cfg.Hidden = 8
	agg := NewFedDRL(core.NewAgent(cfg))
	c := CommPerRound(agg, 10, 1000)
	if c.OverheadBytes != 160 { // 2 float64 per client × 10 clients
		t.Fatalf("overhead %d, want 160", c.OverheadBytes)
	}
	// §5.3's claim: the overhead is trivial relative to the weights.
	if f := c.OverheadFraction(); f > 0.01 {
		t.Fatalf("overhead fraction %v should be well under 1%%", f)
	}
	// And it shrinks as the model grows.
	big := CommPerRound(agg, 10, 100000)
	if big.OverheadFraction() >= c.OverheadFraction() {
		t.Fatal("overhead fraction should shrink with model size")
	}
}

func TestOverheadFractionDegenerate(t *testing.T) {
	// The degenerate cases are defined, not accidental: no arrived
	// updates (k == 0, or an async round where everything dropped)
	// means no baseline and a fraction of 0 — never NaN.
	c := CommRound{}
	if c.OverheadFraction() != 0 {
		t.Fatal("zero round should have zero fraction")
	}
	if f := CommPerRound(FedAvg{}, 0, 1000).OverheadFraction(); f != 0 {
		t.Fatalf("k=0 round fraction = %v, want 0", f)
	}
	if f := CommAsyncRound(FedAvg{}, 10, 0, 1000).OverheadFraction(); f != 0 {
		t.Fatalf("all-dropped async round fraction = %v, want 0", f)
	}
}

func TestCommAsyncRound(t *testing.T) {
	cfg := core.DefaultConfig(10)
	cfg.Hidden = 8
	agg := NewFedDRL(core.NewAgent(cfg))

	// Partial round: 10 broadcasts, 7 arrivals. Downlink charges the
	// dispatches; uplink charges only completed uploads, each carrying
	// the staleness metadata on top of the synchronous payload.
	c := CommAsyncRound(agg, 10, 7, 1000)
	wire := 4 + 8000
	if want := 10 * wire; c.DownlinkBytes != want {
		t.Fatalf("downlink %d, want %d", c.DownlinkBytes, want)
	}
	if want := 7 * (wire + 8 + 16 + AsyncMetaBytes); c.UplinkBytes != want {
		t.Fatalf("uplink %d, want %d", c.UplinkBytes, want)
	}
	if c.OverheadBytes != 7*16 {
		t.Fatalf("method overhead %d, want %d (staleness metadata is substrate, not method)", c.OverheadBytes, 7*16)
	}

	// Degenerate trace (everything arrives): differs from the
	// synchronous round by exactly arrived×AsyncMetaBytes of uplink.
	sync, async := CommPerRound(agg, 10, 1000), CommAsyncRound(agg, 10, 10, 1000)
	if async.DownlinkBytes != sync.DownlinkBytes || async.OverheadBytes != sync.OverheadBytes {
		t.Fatal("degenerate async round disagrees with synchronous accounting")
	}
	if async.UplinkBytes != sync.UplinkBytes+10*AsyncMetaBytes {
		t.Fatalf("degenerate async uplink %d, want sync %d + %d", async.UplinkBytes, sync.UplinkBytes, 10*AsyncMetaBytes)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("arrived > dispatched did not panic")
		}
	}()
	CommAsyncRound(agg, 5, 6, 1000)
}
