package fl

import (
	"fmt"

	"feddrl/internal/engine"
	"feddrl/internal/tensor"
)

// Float32 precision mode: the numeric width of the *federated state* —
// the weight vectors clients upload, the server's Eq. 4 merge, and the
// wire encoding — selectable per run via RunConfig.Precision.
//
// Under F32 the invariants are:
//
//   - The global model lives on the float32 lattice: runLoop/RunAsync
//     carry it as []float64 (so evaluation, metrics and Result stay
//     unchanged) but every element is exactly float32-representable
//     (tensor.QuantizeLattice after init, exact widening after each
//     merge). Quantize∘Widen is the identity there, so no drift ever
//     accumulates from the representation choice.
//   - Clients train locally in float64 (the nn solver is untouched) and
//     quantize the uploaded weights once, at the round boundary, with
//     one round-to-nearest-even conversion per weight
//     (nn.ParamVector32) — 4 bytes per weight on the wire.
//   - Aggregation (AggregateOn32) runs in pure float32 arithmetic:
//     impact factors rounded to float32, k-ascending Axpy32 folds, one
//     rounding per multiply and one per add. Results are bit-identical
//     across kernel backends and worker counts, exactly like the f64
//     path — the same determinism contract at half width.
//
// F64 (the default, including the zero value "") is bit-for-bit the
// pre-precision-mode behavior.

// Precision selects the federated-state width of a run.
type Precision string

const (
	// F64 is full-width federated state — the default and the paper's
	// setting. The zero value "" means F64.
	F64 Precision = "f64"
	// F32 is half-width federated state: f32 uploads, f32 aggregation,
	// 4-byte wire encoding.
	F32 Precision = "f32"
)

// ParsePrecision maps a user-facing flag value to a Precision. The
// empty string and "f64" both parse to F64.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "f64":
		return F64, nil
	case "f32":
		return F32, nil
	}
	return "", fmt.Errorf("fl: unknown precision %q (valid: f32, f64)", s)
}

// Validate panics on an unknown precision value.
func (p Precision) Validate() {
	switch p {
	case "", F64, F32:
	default:
		panic(fmt.Sprintf("fl: unknown precision %q (valid: f32, f64)", string(p)))
	}
}

// BytesPerWeight returns the wire width of one weight under p.
func (p Precision) BytesPerWeight() int {
	if p == F32 {
		return 4
	}
	return 8
}

// Aggregate32 computes the Eq. 4 merge over float32 uploads into a
// fresh float32 vector — the sequential reference for AggregateOn32.
func Aggregate32(updates []Update, alpha []float64) []float32 {
	return AggregateOn32(updates, alpha, nil)
}

// AggregateOn32 is the f32-mode weighted model merge of Eq. 4:
// w ← Σ_k α_k·w_k over the updates' Weights32 vectors, executed
// segment-parallel on a worker pool (nil means sequential). The impact
// factors are validated at full precision (same convexity contract as
// AggregateOn), then rounded once each to float32; the fold itself is
// pure float32 arithmetic — for every output element a single
// k-ascending chain of one-rounding multiplies and adds, whatever the
// segmentation — so results are bit-identical to the sequential path at
// any pool width and on any kernel backend.
func AggregateOn32(updates []Update, alpha []float64, pool *engine.Pool) []float32 {
	if len(updates) == 0 || len(alpha) != len(updates) {
		panic(fmt.Sprintf("fl: Aggregate32 with %d updates and %d weights", len(updates), len(alpha)))
	}
	sum := 0.0
	for _, a := range alpha {
		if a < 0 {
			panic("fl: negative impact factor")
		}
		sum += a
	}
	if sum < 0.999 || sum > 1.001 {
		panic(fmt.Sprintf("fl: impact factors sum to %v, want 1", sum))
	}
	dim := len(updates[0].Weights32)
	vecs := make([][]float32, len(updates))
	for i, u := range updates {
		if u.Weights32 == nil || len(u.Weights32) != dim {
			panic("fl: inconsistent f32 weight vector lengths")
		}
		if !AllFinite32(u.Weights32) {
			panic(fmt.Sprintf("fl: non-finite weights in update %d (client %d); screen uploads with AllFinite32 or the run loop's quarantine gate", i, u.ClientID))
		}
		vecs[i] = u.Weights32
	}
	alpha32 := make([]float32, len(alpha))
	for i, a := range alpha {
		alpha32[i] = float32(a)
	}
	out := make([]float32, dim)
	segs := (dim + aggSegment - 1) / aggSegment
	if pool == nil || segs <= 1 {
		weightedSum32(out, alpha32, vecs)
		return out
	}
	pool.ForWorkerHinted(segs, engine.SizeFine, 0, func(_, s int) {
		lo := s * aggSegment
		hi := lo + aggSegment
		if hi > dim {
			hi = dim
		}
		sub := make([][]float32, len(vecs))
		for k, v := range vecs {
			sub[k] = v[lo:hi]
		}
		weightedSum32(out[lo:hi], alpha32, sub)
	})
	return out
}

// weightedSum32 folds dst = Σ_k alpha[k]·vecs[k] in ascending k with
// the SIMD f32 axpy kernel — the f32 twin of mathx.WeightedSum.
func weightedSum32(dst []float32, alpha []float32, vecs [][]float32) {
	tensor.Fill32(dst, 0)
	for k, v := range vecs {
		tensor.Axpy32(alpha[k], v, dst)
	}
}

// aggregateP dispatches the merge on the run's precision: the f64 path
// is untouched, the f32 path folds at half width and widens the result
// exactly back onto the float64-carried global vector (which thereby
// stays on the float32 lattice).
func aggregateP(prec Precision, updates []Update, alpha []float64, pool *engine.Pool) []float64 {
	if prec == F32 {
		return tensor.Widen(nil, AggregateOn32(updates, alpha, pool))
	}
	return AggregateOn(updates, alpha, pool)
}
