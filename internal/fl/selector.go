package fl

import (
	"fmt"

	"feddrl/internal/rng"
)

// Population is the Selector's read-only view of the client fleet. It
// deliberately exposes per-client scalars rather than a []*Client slice:
// in virtual-client mode (ClientPool) no client objects exist outside
// the K active slots, and a selector over a million identities must not
// force them into existence. Indices are eligible-client indices — the
// same index space for eager and virtual runs, which is part of the
// bit-identity contract between the two.
type Population interface {
	// NumClients returns the number of eligible (non-empty) clients.
	NumClients() int
	// SampleCount returns client i's shard size.
	SampleCount(i int) int
	// LastLoss returns client i's most recent global-model inference
	// loss, 0 when never measured.
	LastLoss(i int) float64
}

// Selector chooses which clients participate each round. The paper's
// §1 cites client selection as the *alternative* family of solutions to
// statistical heterogeneity [3, 21, 30]; the library makes the strategy
// pluggable so FedDRL's aggregation-side adaptation can be combined with
// or compared against selection-side approaches. The default (and the
// paper's setting, §4.1.2) is uniform random selection.
type Selector interface {
	// Name identifies the strategy.
	Name() string
	// Select returns k distinct indices into the eligible population.
	// Returning duplicates violates the contract; Run tolerates it by
	// falling back to its sequential safety-net path.
	Select(round, k int, pop Population, r *rng.RNG) []int
}

// chooseCutoff is the population size above which uniform selection
// switches from permutation sampling to rejection sampling: Choose
// allocates and shuffles an O(n) permutation, which at a million virtual
// clients would dominate every round. Below the cutoff the historical
// Choose stream is preserved, so existing small-population runs (and
// their cached experiment artifacts) are unchanged bit for bit. Eager
// and virtual runs over the same population take the same branch, so
// the two stay bit-identical at every n.
const chooseCutoff = 1 << 12

// chooseDistinct draws k distinct indices uniformly from [0, n).
func chooseDistinct(n, k int, r *rng.RNG) []int {
	if n <= chooseCutoff {
		return r.Choose(n, k)
	}
	out := make([]int, 0, k)
	seen := make(map[int]struct{}, k)
	for len(out) < k {
		v := r.Intn(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}

// UniformSelector draws K clients uniformly without replacement — the
// FedAvg/paper default.
type UniformSelector struct{}

// Name returns "uniform".
func (UniformSelector) Name() string { return "uniform" }

// Select implements Selector.
func (UniformSelector) Select(round, k int, pop Population, r *rng.RNG) []int {
	return chooseDistinct(pop.NumClients(), k, r)
}

// SizeWeightedSelector samples clients with probability proportional to
// their shard size (without replacement), the common importance-sampling
// variant. It walks the full population per round (O(n)), so it is meant
// for eager-scale fleets, not million-client virtual runs.
type SizeWeightedSelector struct{}

// Name returns "size-weighted".
func (SizeWeightedSelector) Name() string { return "size-weighted" }

// Select implements Selector.
func (SizeWeightedSelector) Select(round, k int, pop Population, r *rng.RNG) []int {
	weights := make([]float64, pop.NumClients())
	for i := range weights {
		weights[i] = float64(pop.SampleCount(i))
	}
	return sampleWithoutReplacement(weights, k, r)
}

// PowerOfChoiceSelector implements the power-of-d-choice strategy of Cho
// et al. (cited as [3]): sample a candidate set of d·k clients uniformly,
// then keep the k with the highest current loss (the clients the global
// model serves worst), which speeds convergence under heterogeneity.
type PowerOfChoiceSelector struct {
	// D is the candidate multiplier (d≥1); d=1 degenerates to uniform.
	D int
}

// Name returns "power-of-choice".
func (PowerOfChoiceSelector) Name() string { return "power-of-choice" }

// Select implements Selector.
func (s PowerOfChoiceSelector) Select(round, k int, pop Population, r *rng.RNG) []int {
	d := s.D
	if d < 1 {
		d = 2
	}
	cand := d * k
	if cand > pop.NumClients() {
		cand = pop.NumClients()
	}
	candidates := chooseDistinct(pop.NumClients(), cand, r)
	// Highest-loss k of the candidate set (selection sort: k is small).
	for i := 0; i < k && i < len(candidates); i++ {
		best := i
		for j := i + 1; j < len(candidates); j++ {
			if pop.LastLoss(candidates[j]) > pop.LastLoss(candidates[best]) {
				best = j
			}
		}
		candidates[i], candidates[best] = candidates[best], candidates[i]
	}
	return candidates[:k]
}

// RoundRobinSelector cycles deterministically through the clients, a
// fairness-first baseline.
type RoundRobinSelector struct{}

// Name returns "round-robin".
func (RoundRobinSelector) Name() string { return "round-robin" }

// Select implements Selector.
func (RoundRobinSelector) Select(round, k int, pop Population, r *rng.RNG) []int {
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = (round*k + i) % pop.NumClients()
	}
	return out
}

// sampleWithoutReplacement draws k distinct indices with probability
// proportional to weights.
func sampleWithoutReplacement(weights []float64, k int, r *rng.RNG) []int {
	n := len(weights)
	if k > n {
		panic(fmt.Sprintf("fl: sample %d of %d", k, n))
	}
	w := append([]float64(nil), weights...)
	out := make([]int, 0, k)
	chosen := make([]bool, n)
	for len(out) < k {
		total := 0.0
		for i, v := range w {
			if !chosen[i] {
				total += v
			}
		}
		if total <= 0 {
			// Remaining weights all zero: fall back to uniform over the
			// unchosen clients.
			for i := 0; len(out) < k && i < n; i++ {
				if !chosen[i] {
					chosen[i] = true
					out = append(out, i)
				}
			}
			break
		}
		u := r.Float64() * total
		acc := 0.0
		for i, v := range w {
			if chosen[i] {
				continue
			}
			acc += v
			if u < acc {
				chosen[i] = true
				out = append(out, i)
				break
			}
		}
	}
	return out
}
