package fl

import (
	"fmt"

	"feddrl/internal/rng"
)

// Selector chooses which clients participate each round. The paper's
// §1 cites client selection as the *alternative* family of solutions to
// statistical heterogeneity [3, 21, 30]; the library makes the strategy
// pluggable so FedDRL's aggregation-side adaptation can be combined with
// or compared against selection-side approaches. The default (and the
// paper's setting, §4.1.2) is uniform random selection.
type Selector interface {
	// Name identifies the strategy.
	Name() string
	// Select returns k distinct indices into eligible. losses holds each
	// eligible client's most recent global-model inference loss (0 when
	// never measured), allowing loss-aware strategies.
	Select(round, k int, eligible []*Client, losses []float64, r *rng.RNG) []int
}

// UniformSelector draws K clients uniformly without replacement — the
// FedAvg/paper default.
type UniformSelector struct{}

// Name returns "uniform".
func (UniformSelector) Name() string { return "uniform" }

// Select implements Selector.
func (UniformSelector) Select(round, k int, eligible []*Client, losses []float64, r *rng.RNG) []int {
	return r.Choose(len(eligible), k)
}

// SizeWeightedSelector samples clients with probability proportional to
// their shard size (without replacement), the common importance-sampling
// variant.
type SizeWeightedSelector struct{}

// Name returns "size-weighted".
func (SizeWeightedSelector) Name() string { return "size-weighted" }

// Select implements Selector.
func (SizeWeightedSelector) Select(round, k int, eligible []*Client, losses []float64, r *rng.RNG) []int {
	weights := make([]float64, len(eligible))
	for i, c := range eligible {
		weights[i] = float64(c.Data.N)
	}
	return sampleWithoutReplacement(weights, k, r)
}

// PowerOfChoiceSelector implements the power-of-d-choice strategy of Cho
// et al. (cited as [3]): sample a candidate set of d·k clients uniformly,
// then keep the k with the highest current loss (the clients the global
// model serves worst), which speeds convergence under heterogeneity.
type PowerOfChoiceSelector struct {
	// D is the candidate multiplier (d≥1); d=1 degenerates to uniform.
	D int
}

// Name returns "power-of-choice".
func (PowerOfChoiceSelector) Name() string { return "power-of-choice" }

// Select implements Selector.
func (s PowerOfChoiceSelector) Select(round, k int, eligible []*Client, losses []float64, r *rng.RNG) []int {
	d := s.D
	if d < 1 {
		d = 2
	}
	cand := d * k
	if cand > len(eligible) {
		cand = len(eligible)
	}
	pool := r.Choose(len(eligible), cand)
	// Highest-loss k of the candidate set (selection sort: k is small).
	for i := 0; i < k && i < len(pool); i++ {
		best := i
		for j := i + 1; j < len(pool); j++ {
			if losses[pool[j]] > losses[pool[best]] {
				best = j
			}
		}
		pool[i], pool[best] = pool[best], pool[i]
	}
	return pool[:k]
}

// RoundRobinSelector cycles deterministically through the clients, a
// fairness-first baseline.
type RoundRobinSelector struct{}

// Name returns "round-robin".
func (RoundRobinSelector) Name() string { return "round-robin" }

// Select implements Selector.
func (RoundRobinSelector) Select(round, k int, eligible []*Client, losses []float64, r *rng.RNG) []int {
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = (round*k + i) % len(eligible)
	}
	return out
}

// sampleWithoutReplacement draws k distinct indices with probability
// proportional to weights.
func sampleWithoutReplacement(weights []float64, k int, r *rng.RNG) []int {
	n := len(weights)
	if k > n {
		panic(fmt.Sprintf("fl: sample %d of %d", k, n))
	}
	w := append([]float64(nil), weights...)
	out := make([]int, 0, k)
	chosen := make([]bool, n)
	for len(out) < k {
		total := 0.0
		for i, v := range w {
			if !chosen[i] {
				total += v
			}
		}
		if total <= 0 {
			// Remaining weights all zero: fall back to uniform over the
			// unchosen clients.
			for i := 0; len(out) < k && i < n; i++ {
				if !chosen[i] {
					chosen[i] = true
					out = append(out, i)
				}
			}
			break
		}
		u := r.Float64() * total
		acc := 0.0
		for i, v := range w {
			if chosen[i] {
				continue
			}
			acc += v
			if u < acc {
				chosen[i] = true
				out = append(out, i)
				break
			}
		}
	}
	return out
}
