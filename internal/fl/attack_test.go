package fl

import (
	"math"
	"reflect"
	"testing"

	"feddrl/internal/dataset"
)

// The Byzantine suite: seeded attacks must replay bitwise across worker
// counts and engines, the zero-value attack path must be byte-identical
// to a benign run, and the quarantine gate must keep poisoned uploads
// out of the global model without panicking.

// attackedConfig decorates a run config with a seeded sign-flip cohort.
func attackedConfig(cfg RunConfig) RunConfig {
	cfg.Attack = SignFlip{ByzantineSet: ByzantineSet{Frac: 0.4}}
	cfg.AttackSeed = 99
	return cfg
}

// TestAttackDegenerateByteIdentity: a zero-fraction attack, the explicit
// WeightedMerge and the zero-value quarantine gate must reproduce the
// nil/nil/zero configuration byte for byte on both synchronous engines —
// the compatibility contract that keeps historical outputs (and cached
// experiment cells) valid.
func TestAttackDegenerateByteIdentity(t *testing.T) {
	const seed = 43
	baseline := func() *Result {
		clients, test, cfg := detFederation(t, seed)
		return stripTimings(Run(cfg, clients, test, FedAvg{}))
	}
	degenerate := func() *Result {
		clients, test, cfg := detFederation(t, seed)
		cfg.Attack = SignFlip{ByzantineSet: ByzantineSet{Frac: 0}}
		cfg.Merger = WeightedMerge{}
		cfg.Quarantine = QuarantineConfig{}
		return stripTimings(Run(cfg, clients, test, FedAvg{}))
	}
	want, got := baseline(), degenerate()
	if !reflect.DeepEqual(want, got) {
		t.Fatal("degenerate attack configuration differs from the benign run")
	}
	virtWant := func() *Result {
		cp, test, cfg := detVirtualFederation(t, seed)
		return stripTimings(RunVirtual(cfg, cp, test, FedAvg{}))
	}()
	virtGot := func() *Result {
		cp, test, cfg := detVirtualFederation(t, seed)
		cfg.Attack = SignFlip{ByzantineSet: ByzantineSet{Frac: 0}}
		cfg.Merger = WeightedMerge{}
		return stripTimings(RunVirtual(cfg, cp, test, FedAvg{}))
	}()
	if !reflect.DeepEqual(virtWant, virtGot) {
		t.Fatal("degenerate attack configuration differs from the benign virtual run")
	}
}

// TestAttackSeededBitIdenticalAcrossWorkers: a real seeded attack must
// replay bitwise at every worker count, across the eager and virtual
// engines, and through the degenerate async trace.
func TestAttackSeededBitIdenticalAcrossWorkers(t *testing.T) {
	const seed = 47
	eagerAt := func(workers int) *Result {
		clients, test, cfg := detFederation(t, seed)
		cfg = attackedConfig(cfg)
		cfg.Workers = workers
		return stripTimings(Run(cfg, clients, test, FedAvg{}))
	}
	ref := eagerAt(1)
	for _, workers := range []int{2, 4, 8} {
		got := eagerAt(workers)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("Workers=%d: attacked run differs from Workers=1", workers)
		}
		for i := range ref.Weights {
			if math.Float64bits(ref.Weights[i]) != math.Float64bits(got.Weights[i]) {
				t.Fatalf("Workers=%d: weight %d differs bitwise", workers, i)
			}
		}
	}
	virt := func() *Result {
		cp, test, cfg := detVirtualFederation(t, seed)
		cfg = attackedConfig(cfg)
		cfg.Workers = 4
		return stripTimings(RunVirtual(cfg, cp, test, FedAvg{}))
	}()
	if !reflect.DeepEqual(ref, virt) {
		t.Fatal("attacked virtual run differs from the eager run")
	}
	async := func() *Result {
		cp, test, cfg := detVirtualFederation(t, seed)
		cfg = attackedConfig(cfg)
		cfg.Workers = 4
		return stripAsyncTimings(mustAsync(RunAsync(AsyncConfig{RunConfig: cfg}, cp, test, FedAvg{}))).Result
	}()
	if !reflect.DeepEqual(ref, async) {
		t.Fatal("attacked degenerate async run differs from the eager run")
	}
	// And the attack must actually bite: the benign run's weights differ.
	benign := func() *Result {
		clients, test, cfg := detFederation(t, seed)
		return stripTimings(Run(cfg, clients, test, FedAvg{}))
	}()
	if reflect.DeepEqual(ref.Weights, benign.Weights) {
		t.Fatal("a 40% sign-flip cohort left the final weights untouched")
	}
}

// TestAttackAsyncTraceReproducible: the attack composes with a
// non-trivial arrival trace (stragglers, drops, staleness) and stays
// bit-identical across worker counts.
func TestAttackAsyncTraceReproducible(t *testing.T) {
	const seed = 53
	runAt := func(workers int) *AsyncResult {
		cp, test, cfg := detVirtualFederation(t, seed)
		cfg = attackedConfig(cfg)
		cfg.Workers = workers
		cfg.Rounds = 5
		return stripAsyncTimings(mustAsync(RunAsync(asyncTraceConfig(cfg), cp, test, FedAvg{})))
	}
	ref := runAt(1)
	for _, workers := range []int{4, 8} {
		if got := runAt(workers); !reflect.DeepEqual(ref, got) {
			t.Fatalf("Workers=%d: attacked traced async run differs from Workers=1", workers)
		}
	}
}

// TestAttackF32AcrossWorkers: the f32-mode attack path (widen, corrupt
// in f64, quantize back) must stay bit-identical across worker counts.
func TestAttackF32AcrossWorkers(t *testing.T) {
	const seed = 59
	runAt := func(workers int) *Result {
		clients, test, cfg := detFederation(t, seed)
		cfg = attackedConfig(cfg)
		cfg.Precision = F32
		cfg.Workers = workers
		return stripTimings(Run(cfg, clients, test, FedAvg{}))
	}
	ref := runAt(1)
	for _, workers := range []int{2, 4} {
		if got := runAt(workers); !reflect.DeepEqual(ref, got) {
			t.Fatalf("Workers=%d: f32 attacked run differs from Workers=1", workers)
		}
	}
}

// TestAttackIdentityStable: malicious membership is a per-identity
// trait of the resolved seed — stable across calls, covering roughly
// the configured fraction, with both degenerate fractions exact.
func TestAttackIdentityStable(t *testing.T) {
	mk := func(frac float64) *attackRuntime {
		return newAttackRuntime(SignFlip{ByzantineSet: ByzantineSet{Frac: frac}}, 7, 1)
	}
	a := mk(0.3)
	const ids = 2000
	count := 0
	for id := 0; id < ids; id++ {
		m := a.malicious(id)
		for rep := 0; rep < 3; rep++ {
			if a.malicious(id) != m {
				t.Fatalf("membership of id %d is not stable", id)
			}
		}
		if m {
			count++
		}
	}
	if frac := float64(count) / ids; frac < 0.2 || frac > 0.4 {
		t.Fatalf("malicious fraction %.3f far from configured 0.3", frac)
	}
	for id := 0; id < 64; id++ {
		if mk(0).malicious(id) {
			t.Fatalf("zero fraction marked id %d malicious", id)
		}
		if !mk(1).malicious(id) {
			t.Fatalf("full fraction left id %d honest", id)
		}
	}
	// AttackSeed 0 derives from the run seed: two run seeds, two sets.
	d1 := newAttackRuntime(SignFlip{ByzantineSet: ByzantineSet{Frac: 0.5}}, 0, 1)
	d2 := newAttackRuntime(SignFlip{ByzantineSet: ByzantineSet{Frac: 0.5}}, 0, 2)
	same := true
	for id := 0; id < 256; id++ {
		if d1.malicious(id) != d2.malicious(id) {
			same = false
		}
	}
	if same {
		t.Fatal("derived attack seeds produced identical membership for distinct run seeds")
	}
}

// TestColludingUploadsAgree: two different malicious clients in the
// same round must upload byte-identical vectors (the shared round-keyed
// direction), and a different round must change the direction.
func TestColludingUploadsAgree(t *testing.T) {
	global := []float64{0.5, -0.25, 1.5}
	mkUpdate := func(id int, bias float64) Update {
		return Update{ClientID: id, Weights: []float64{bias, bias + 1, bias - 1}}
	}
	a := Colluding{ByzantineSet: ByzantineSet{Frac: 1}}
	u1, u2 := mkUpdate(3, 0.1), mkUpdate(9, -2.0)
	a.Corrupt(4, 3, 77, global, &u1)
	a.Corrupt(4, 9, 77, global, &u2)
	for i := range u1.Weights {
		if math.Float64bits(u1.Weights[i]) != math.Float64bits(u2.Weights[i]) {
			t.Fatalf("colluders disagree at coordinate %d", i)
		}
	}
	u3 := mkUpdate(3, 0.1)
	a.Corrupt(5, 3, 77, global, &u3)
	if reflect.DeepEqual(u1.Weights, u3.Weights) {
		t.Fatal("collusion direction did not change across rounds")
	}
}

// TestLabelFlipChangesRun: the data-poisoning attack must complete
// (restoring every shard afterwards) and actually move the outcome.
func TestLabelFlipChangesRun(t *testing.T) {
	const seed = 61
	benignClients, test, cfg := detFederation(t, seed)
	benign := stripTimings(Run(cfg, benignClients, test, FedAvg{}))

	clients, test2, cfg2 := detFederation(t, seed)
	shards := make([]dataset.Data, len(clients))
	for i, c := range clients {
		shards[i] = c.Data
	}
	cfg2.Attack = LabelFlip{ByzantineSet: ByzantineSet{Frac: 0.5}}
	cfg2.AttackSeed = 5
	poisoned := stripTimings(Run(cfg2, clients, test2, FedAvg{}))
	if reflect.DeepEqual(benign.Weights, poisoned.Weights) {
		t.Fatal("label flipping half the fleet left the weights untouched")
	}
	for i, c := range clients {
		if c.Data != shards[i] {
			t.Fatalf("client %d's shard was not restored after the run", i)
		}
	}
}

// nanAttack is a test fault model that poisons one coordinate with NaN —
// the canonical diverging-client upload the quarantine gate must catch.
type nanAttack struct{ ByzantineSet }

func (nanAttack) Name() string { return "nan" }
func (nanAttack) Corrupt(round, id int, seed uint64, global []float64, u *Update) {
	corruptWeights(u, func(w []float64) { w[0] = math.NaN() })
}

// TestQuarantineNaNRunCompletes: with poisoned uploads arriving every
// round, the zero-value quarantine gate must keep the run alive, count
// the rejections, and keep the global model finite — on the synchronous
// and the async engine.
func TestQuarantineNaNRunCompletes(t *testing.T) {
	const seed = 67
	clients, test, cfg := detFederation(t, seed)
	cfg.Attack = nanAttack{ByzantineSet{Frac: 0.5}}
	cfg.AttackSeed = 5
	res := Run(cfg, clients, test, FedAvg{})
	total := 0
	for _, m := range res.Rounds {
		total += m.Quarantined
	}
	if total == 0 {
		t.Fatal("NaN uploads were never quarantined")
	}
	if !AllFinite(res.Weights) {
		t.Fatal("NaN leaked into the global model")
	}

	cp, test2, vcfg := detVirtualFederation(t, seed)
	vcfg.Attack = nanAttack{ByzantineSet{Frac: 0.5}}
	vcfg.AttackSeed = 5
	ar := mustAsync(RunAsync(AsyncConfig{RunConfig: vcfg}, cp, test2, FedAvg{}))
	total = 0
	for _, m := range ar.Rounds {
		total += m.Quarantined
	}
	if total == 0 {
		t.Fatal("async engine never quarantined the NaN uploads")
	}
	if !AllFinite(ar.Weights) {
		t.Fatal("NaN leaked into the async global model")
	}
}

// TestQuarantineReject covers the gate's screens directly: non-finite
// coordinates in either width, the optional norm ceiling, and the
// opt-out.
func TestQuarantineReject(t *testing.T) {
	var q QuarantineConfig
	if q.reject(&Update{Weights: []float64{1, -2, 3}}) {
		t.Fatal("finite upload rejected")
	}
	if !q.reject(&Update{Weights: []float64{1, math.NaN()}}) {
		t.Fatal("NaN upload accepted")
	}
	if !q.reject(&Update{Weights: []float64{math.Inf(-1)}}) {
		t.Fatal("-Inf upload accepted")
	}
	if !q.reject(&Update{Weights32: []float32{float32(math.NaN())}}) {
		t.Fatal("f32 NaN upload accepted")
	}
	off := QuarantineConfig{DisableFiniteCheck: true}
	if off.reject(&Update{Weights: []float64{math.NaN()}}) {
		t.Fatal("disabled finite screen still rejected")
	}
	norm := QuarantineConfig{MaxNorm: 5}
	if norm.reject(&Update{Weights: []float64{3, 4}}) {
		t.Fatal("norm-5 upload rejected at ceiling 5")
	}
	if !norm.reject(&Update{Weights: []float64{30, 40}}) {
		t.Fatal("norm-50 upload accepted at ceiling 5")
	}
	if !norm.reject(&Update{Weights32: []float32{30, 40}}) {
		t.Fatal("f32 norm-50 upload accepted at ceiling 5")
	}
}

// TestAggregatePanicsOnNonFinite pins the misuse/fault split: the
// library-level aggregation entrypoints panic on non-finite input (the
// caller was supposed to screen), in both widths.
func TestAggregatePanicsOnNonFinite(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic on non-finite input", name)
			}
		}()
		f()
	}
	expectPanic("Aggregate", func() {
		Aggregate([]Update{{Weights: []float64{math.NaN()}}}, []float64{1})
	})
	expectPanic("AggregateOn32", func() {
		AggregateOn32([]Update{{Weights32: []float32{float32(math.Inf(1))}}}, []float64{1}, nil)
	})
}

// TestAllFinite covers the screening predicates themselves.
func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{0, -1, 1e300}) || !AllFinite(nil) {
		t.Fatal("finite vector reported non-finite")
	}
	if AllFinite([]float64{0, math.NaN()}) || AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("non-finite vector reported finite")
	}
	if !AllFinite32([]float32{0, -1, 1e30}) {
		t.Fatal("finite f32 vector reported non-finite")
	}
	if AllFinite32([]float32{float32(math.NaN())}) || AllFinite32([]float32{float32(math.Inf(-1))}) {
		t.Fatal("non-finite f32 vector reported finite")
	}
}

// TestParseAttack covers the CLI resolution table and its validation.
func TestParseAttack(t *testing.T) {
	for _, name := range []string{"", "none"} {
		if a, err := ParseAttack(name, 0.2); err != nil || a != nil {
			t.Fatalf("ParseAttack(%q) = %v, %v; want nil, nil", name, a, err)
		}
	}
	for name, want := range map[string]string{
		"signflip": "signflip", "gauss": "gauss", "replace": "replace",
		"collude": "collude", "labelflip": "labelflip",
	} {
		a, err := ParseAttack(name, 0.25)
		if err != nil || a.Name() != want || a.Fraction() != 0.25 {
			t.Fatalf("ParseAttack(%q) = %v, %v", name, a, err)
		}
	}
	if _, err := ParseAttack("nope", 0.2); err == nil {
		t.Fatal("unknown attack did not error")
	}
	for _, frac := range []float64{-0.1, 1.5} {
		if _, err := ParseAttack("signflip", frac); err == nil {
			t.Fatalf("fraction %v accepted", frac)
		}
	}
}

// TestAttackSeedDerivation: AttackSeed 0 must still produce a seeded,
// reproducible attack (derived from the run seed), and two runs with
// the same explicit AttackSeed but different run seeds share membership.
func TestAttackSeedDerivation(t *testing.T) {
	a1 := newAttackRuntime(SignFlip{ByzantineSet: ByzantineSet{Frac: 0.5}}, 9, 1)
	a2 := newAttackRuntime(SignFlip{ByzantineSet: ByzantineSet{Frac: 0.5}}, 9, 2)
	for id := 0; id < 256; id++ {
		if a1.malicious(id) != a2.malicious(id) {
			t.Fatal("explicit AttackSeed did not pin membership across run seeds")
		}
	}
	if newAttackRuntime(nil, 9, 1) != nil {
		t.Fatal("nil model did not resolve to the benign runtime")
	}
	// The derived seed must not collide with the trait stream of the
	// run seed itself.
	if got := newAttackRuntime(SignFlip{}, 0, 3).seed; got != 3^attackSalt {
		t.Fatalf("derived seed = %#x, want %#x", got, 3^attackSalt)
	}
}
