package fl

import (
	"math"
	"reflect"
	"testing"

	"feddrl/internal/engine"
	"feddrl/internal/serialize"
	"feddrl/internal/tensor"
)

// The f32 precision-mode suite: RunConfig.Precision = F32 must honor
// the same determinism contract as every other mode — bit-identical
// across worker counts, across eager/virtual/async construction and
// across kernel backends — while halving the update wire size.

// TestF32EagerVirtualBitIdentical extends the virtual-client acceptance
// test to F32: Run and RunVirtual under Precision F32 must agree bit
// for bit — every weight, every metric — for all three aggregators at
// Workers ∈ {1, 2, 4, 8}.
func TestF32EagerVirtualBitIdentical(t *testing.T) {
	const seed = 11
	for name, mkAgg := range detAggregators(4, seed) {
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 2, 4, 8} {
				eagerRun := func() *Result {
					clients, test, cfg := detFederation(t, seed)
					if name == "FedProx" {
						cfg.Local.ProxMu = 0.01
					}
					cfg.Workers = workers
					cfg.Precision = F32
					return stripTimings(Run(cfg, clients, test, mkAgg()))
				}
				virtualRun := func() *Result {
					cp, test, cfg := detVirtualFederation(t, seed)
					if name == "FedProx" {
						cfg.Local.ProxMu = 0.01
					}
					cfg.Workers = workers
					cfg.Precision = F32
					return stripTimings(RunVirtual(cfg, cp, test, mkAgg()))
				}
				want, got := eagerRun(), virtualRun()
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("Workers=%d: f32 virtual Result differs from eager", workers)
				}
				for i := range want.Weights {
					if math.Float64bits(want.Weights[i]) != math.Float64bits(got.Weights[i]) {
						t.Fatalf("Workers=%d: f32 weight %d differs bitwise", workers, i)
					}
				}
			}
		})
	}
}

// TestF32AsyncDegenerateMatchesVirtual: the degenerate async trace must
// reproduce RunVirtual bit for bit under F32, exactly as it does under
// the default precision.
func TestF32AsyncDegenerateMatchesVirtual(t *testing.T) {
	const seed = 17
	for _, workers := range []int{1, 4} {
		syncRun := func() *Result {
			cp, test, cfg := detVirtualFederation(t, seed)
			cfg.Workers = workers
			cfg.Precision = F32
			return stripTimings(RunVirtual(cfg, cp, test, FedAvg{}))
		}
		asyncRun := func() *AsyncResult {
			cp, test, cfg := detVirtualFederation(t, seed)
			cfg.Workers = workers
			cfg.Precision = F32
			return stripAsyncTimings(mustAsync(RunAsync(AsyncConfig{RunConfig: cfg}, cp, test, FedAvg{})))
		}
		want, got := syncRun(), asyncRun()
		if !reflect.DeepEqual(want, got.Result) {
			t.Fatalf("Workers=%d: f32 degenerate async differs from RunVirtual", workers)
		}
	}
}

// TestF32BitIdenticalAcrossBackends forces each kernel tier in the
// host's fallback chain and requires byte-for-byte the same f32-mode
// Result from every one — the half-width twin of the backend-invariance
// guarantee.
func TestF32BitIdenticalAcrossBackends(t *testing.T) {
	const seed = 29
	orig := tensor.KernelBackend()
	defer func() {
		if err := tensor.SetBackend(orig); err != nil {
			t.Fatalf("restoring backend %q: %v", orig, err)
		}
	}()
	runOnce := func() *Result {
		clients, test, cfg := detFederation(t, seed)
		cfg.Workers = 2
		cfg.Precision = F32
		return stripTimings(Run(cfg, clients, test, FedAvg{}))
	}
	var ref *Result
	var refName string
	for _, name := range tensor.Backends() {
		if err := tensor.SetBackend(name); err != nil {
			t.Fatalf("SetBackend(%q): %v", name, err)
		}
		got := runOnce()
		if ref == nil {
			ref, refName = got, name
			continue
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("f32 Result differs between backends %q and %q", refName, name)
		}
	}
}

// TestF32GlobalStaysOnLattice: the F32 run's reported weights must all
// be exactly float32-representable (the lattice invariant that makes
// Quantize∘Widen the identity), and the mode must actually engage —
// an F32 run differs from the F64 run of the same federation.
func TestF32GlobalStaysOnLattice(t *testing.T) {
	const seed = 31
	runAt := func(prec Precision) *Result {
		clients, test, cfg := detFederation(t, seed)
		cfg.Precision = prec
		return stripTimings(Run(cfg, clients, test, FedAvg{}))
	}
	f32 := runAt(F32)
	for i, w := range f32.Weights {
		if float64(float32(w)) != w && !math.IsNaN(w) {
			t.Fatalf("weight %d = %v is off the float32 lattice", i, w)
		}
	}
	f64 := runAt(F64)
	same := true
	for i := range f64.Weights {
		if math.Float64bits(f64.Weights[i]) != math.Float64bits(f32.Weights[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("f32 run is bitwise equal to f64 run; precision knob had no effect")
	}
}

// TestAggregate32PoolInvariance: the segment-parallel f32 merge must be
// bit-identical to the sequential fold at any pool width, including
// dimensions that straddle segment boundaries.
func TestAggregate32PoolInvariance(t *testing.T) {
	for _, dim := range []int{1, aggSegment - 1, aggSegment, aggSegment + 1, 3*aggSegment + 7} {
		updates := make([]Update, 4)
		alpha := []float64{0.1, 0.2, 0.3, 0.4}
		for k := range updates {
			w := make([]float32, dim)
			for i := range w {
				w[i] = float32(math.Sin(float64(i*(k+3)))) * 0.5
			}
			updates[k].Weights32 = w
		}
		want := Aggregate32(updates, alpha)
		for _, workers := range []int{2, 3, 8} {
			pool := engine.New(workers)
			got := AggregateOn32(updates, alpha, pool)
			pool.Close()
			for i := range want {
				if math.Float32bits(want[i]) != math.Float32bits(got[i]) {
					t.Fatalf("dim=%d workers=%d: element %d differs bitwise", dim, workers, i)
				}
			}
		}
	}
}

// TestAggregate32Validation: the f32 merge enforces the same impact-
// factor convexity contract as the f64 one.
func TestAggregate32Validation(t *testing.T) {
	u := []Update{{Weights32: []float32{1, 2}}, {Weights32: []float32{3, 4}}}
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("alpha length mismatch", func() { Aggregate32(u, []float64{1}) })
	mustPanic("negative alpha", func() { Aggregate32(u, []float64{-0.5, 1.5}) })
	mustPanic("non-convex alpha", func() { Aggregate32(u, []float64{0.9, 0.9}) })
	mustPanic("inconsistent dims", func() {
		Aggregate32([]Update{{Weights32: []float32{1}}, {Weights32: []float32{1, 2}}}, []float64{0.5, 0.5})
	})
	mustPanic("missing f32 weights", func() {
		Aggregate32([]Update{{Weights: []float64{1}}}, []float64{1})
	})
}

// TestCommPerRoundPHalvesWeightBytes: an F32 round's weight payload is
// exactly half the F64 round's; only the fixed-width metadata (sample
// counts, FedDRL losses, staleness tags) stays full-size.
func TestCommPerRoundPHalvesWeightBytes(t *testing.T) {
	const k, wlen = 10, 5000
	f64 := CommPerRoundP(FedAvg{}, k, wlen, F64)
	f32 := CommPerRoundP(FedAvg{}, k, wlen, F32)
	wantDown := k * serialize.VectorWireSize32(wlen)
	if f32.DownlinkBytes != wantDown {
		t.Fatalf("f32 downlink = %d, want %d", f32.DownlinkBytes, wantDown)
	}
	// Per-client payload: header+4n vs header+8n, metadata unchanged.
	savedPerClient := (serialize.VectorWireSize(wlen) - serialize.VectorWireSize32(wlen))
	if f64.UplinkBytes-f32.UplinkBytes != k*savedPerClient {
		t.Fatalf("f32 uplink saves %d bytes, want %d", f64.UplinkBytes-f32.UplinkBytes, k*savedPerClient)
	}
	ratio := float64(f32.DownlinkBytes+f32.UplinkBytes) / float64(f64.DownlinkBytes+f64.UplinkBytes)
	if ratio > 0.55 {
		t.Fatalf("f32 round moves %.3f of f64 bytes, want ≤ 0.55", ratio)
	}
	// CommPerRound and the F64 variant must agree exactly (the default
	// path is untouched).
	if CommPerRound(FedAvg{}, k, wlen) != f64 {
		t.Fatal("CommPerRound differs from CommPerRoundP(..., F64)")
	}
	// The async variant narrows identically; staleness metadata stays.
	a64 := CommAsyncRoundP(FedAvg{}, k, k-2, wlen, F64)
	a32 := CommAsyncRoundP(FedAvg{}, k, k-2, wlen, F32)
	if a64.UplinkBytes-a32.UplinkBytes != (k-2)*savedPerClient {
		t.Fatal("async f32 uplink saving is not exactly the weight-payload delta")
	}
}

// TestCompress32RoundTrip: f32 top-k compression reconstructs exactly
// at full k, composes with the pool fan-out deterministically, and its
// wire size beats both the dense f32 payload (ratio > 1) and the f64
// sparse encoding at equal k.
func TestCompress32RoundTrip(t *testing.T) {
	const dim = 257
	global := make([]float64, dim)
	for i := range global {
		global[i] = float64(float32(math.Cos(float64(i)))) // on-lattice, like an F32 run
	}
	updates := make([]Update, 3)
	for k := range updates {
		w := make([]float32, dim)
		for i := range w {
			w[i] = float32(global[i]) + float32(k+1)*1e-3*float32(i%7)
		}
		updates[k].Weights32 = w
	}

	// Full-k is lossless bitwise.
	full := CompressUpdates32On(updates, global, 1.0, nil)
	rec := DecompressUpdates32(updates, full, global)
	for k := range updates {
		for i := range updates[k].Weights32 {
			if math.Float32bits(rec[k].Weights32[i]) != math.Float32bits(updates[k].Weights32[i]) {
				t.Fatalf("update %d elem %d not reconstructed bitwise", k, i)
			}
		}
	}

	// Pool fan-out is bit-identical to inline.
	pool := engine.New(4)
	defer pool.Close()
	sparse := CompressUpdates32On(updates, global, 0.25, nil)
	par := CompressUpdates32On(updates, global, 0.25, pool)
	if !reflect.DeepEqual(sparse, par) {
		t.Fatal("pooled f32 compression differs from inline")
	}

	// Half-width values shrink the sparse payload vs the f64 encoding.
	d32 := sparse[0]
	d64 := SparseDelta{Dim: d32.Dim, Indices: d32.Indices, Values: make([]float64, len(d32.Values))}
	if d32.WireSize() >= d64.WireSize() {
		t.Fatalf("f32 sparse wire %d not smaller than f64 sparse wire %d", d32.WireSize(), d64.WireSize())
	}
	if d32.CompressionRatio() <= 1 {
		t.Fatalf("f32 compression ratio %.3f not > 1", d32.CompressionRatio())
	}
}

// TestPrecisionParseValidate pins the CLI-facing surface: spellings,
// the zero-value default, wire widths and the Validate panic.
func TestPrecisionParseValidate(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Precision
	}{{"", F64}, {"f64", F64}, {"f32", F32}} {
		got, err := ParsePrecision(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParsePrecision(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParsePrecision("f16"); err == nil {
		t.Fatal("ParsePrecision accepted f16")
	}
	if F64.BytesPerWeight() != 8 || F32.BytesPerWeight() != 4 || Precision("").BytesPerWeight() != 8 {
		t.Fatal("BytesPerWeight wrong")
	}
	Precision("").Validate()
	F64.Validate()
	F32.Validate()
	defer func() {
		if recover() == nil {
			t.Fatal("Validate accepted an unknown precision")
		}
	}()
	Precision("f16").Validate()
}
