package fl

import (
	"math"
	"reflect"
	"runtime"
	"testing"

	"feddrl/internal/dataset"
	"feddrl/internal/engine"
	"feddrl/internal/partition"
	"feddrl/internal/rng"
)

// detVirtualFederation is detFederation's virtual twin: the same
// dataset, partition, seeds and config, but clients as a ClientPool of
// lazy identities instead of a materialized fleet.
func detVirtualFederation(t testing.TB, seed uint64) (cp *ClientPool, test *dataset.Dataset, cfg RunConfig) {
	t.Helper()
	tr, te := dataset.Synthesize(dataset.MNISTSim().Scaled(0.12), seed)
	f := tinyFactory(tr.Dim, tr.NumClasses)
	assign := partition.ClusteredEqual(tr, 6, 0.6, 2, 3, rng.New(seed+1))
	cfg = RunConfig{
		Rounds:    4,
		K:         4,
		Local:     LocalConfig{Epochs: 1, Batch: 10, LR: 0.05},
		Factory:   f,
		Seed:      seed + 2,
		EvalEvery: 1,
	}
	return NewClientPool(tr, IndexPartition(assign.ClientIndices), f, seed+3), te, cfg
}

// TestVirtualMatchesEagerBitIdentical is the tentpole's acceptance test:
// RunVirtual over a ClientPool must reproduce Run over the eager fleet
// bit for bit — every weight, every metric — for all three aggregators
// at Workers ∈ {1, 2, 4, 8}. A virtual client's RNG stream derives from
// its identity seed exactly as NewClient's does and resumes across
// selections, so the two construction modes are indistinguishable.
func TestVirtualMatchesEagerBitIdentical(t *testing.T) {
	const seed = 11
	for name, mkAgg := range detAggregators(4, seed) {
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 2, 4, 8} {
				eagerRun := func() *Result {
					clients, test, cfg := detFederation(t, seed)
					if name == "FedProx" {
						cfg.Local.ProxMu = 0.01
					}
					cfg.Workers = workers
					return stripTimings(Run(cfg, clients, test, mkAgg()))
				}
				virtualRun := func() *Result {
					cp, test, cfg := detVirtualFederation(t, seed)
					if name == "FedProx" {
						cfg.Local.ProxMu = 0.01
					}
					cfg.Workers = workers
					return stripTimings(RunVirtual(cfg, cp, test, mkAgg()))
				}
				want, got := eagerRun(), virtualRun()
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("Workers=%d: virtual Result differs from eager", workers)
				}
				for i := range want.Weights {
					if math.Float64bits(want.Weights[i]) != math.Float64bits(got.Weights[i]) {
						t.Fatalf("Workers=%d: weight %d differs bitwise", workers, i)
					}
				}
			}
		})
	}
}

// TestRunVirtualDuplicateSelection: a contract-violating Selector that
// returns duplicates must push RunVirtual onto the sequential safety-net
// path with well-defined semantics — the second occurrence of an
// identity resumes the RNG stream its first occurrence advanced, exactly
// like a reused eager client — identically at every worker count.
func TestRunVirtualDuplicateSelection(t *testing.T) {
	const seed = 19
	eager := func(workers int) *Result {
		clients, test, cfg := detFederation(t, seed)
		cfg.Selector = dupSelector{}
		cfg.Workers = workers
		return stripTimings(Run(cfg, clients, test, FedAvg{}))
	}
	virtual := func(workers int) *Result {
		cp, test, cfg := detVirtualFederation(t, seed)
		cfg.Selector = dupSelector{}
		cfg.Workers = workers
		return stripTimings(RunVirtual(cfg, cp, test, FedAvg{}))
	}
	ref := eager(1)
	for _, workers := range []int{1, 4} {
		if got := virtual(workers); !reflect.DeepEqual(ref, got) {
			t.Fatalf("Workers=%d: duplicate-selection virtual run differs from eager", workers)
		}
	}
}

// TestBuildClientsViewsMatchSubsets: the zero-copy shards BuildClients
// now hands out must train bit-identically to privately copied shards.
func TestBuildClientsViewsMatchSubsets(t *testing.T) {
	tr, te := tinyData(t, 83)
	a := partition.Pareto(tr, 5, 2, 1.2, rng.New(84))
	cfg := runConfig(tr, 4, 3)

	viewClients := BuildClients(tr, a.ClientIndices, cfg.Factory, cfg.Seed)
	copyClients := make([]*Client, len(a.ClientIndices))
	for i, idx := range a.ClientIndices {
		copyClients[i] = NewClient(i, tr.Subset(idx), cfg.Factory, clientSeed(cfg.Seed, i))
	}
	want := stripTimings(Run(cfg, copyClients, te, FedAvg{}))
	got := stripTimings(Run(cfg, viewClients, te, FedAvg{}))
	if !reflect.DeepEqual(want, got) {
		t.Fatal("view-backed clients differ from subset-backed clients")
	}
	// And the views really are views: no shard floats were copied.
	for i, c := range viewClients {
		v, ok := c.Data.(*dataset.View)
		if !ok {
			t.Fatalf("client %d data is %T, not a view", i, c.Data)
		}
		if v.Parent() != tr {
			t.Fatalf("client %d view does not share the training set", i)
		}
	}
}

// TestClientPoolSkipsEmptyShards: empty identities are excluded from the
// eligible population in identity order, mirroring Run's filter, and the
// two paths stay bit-identical.
func TestClientPoolSkipsEmptyShards(t *testing.T) {
	tr, te := tinyData(t, 29)
	f := tinyFactory(tr.Dim, tr.NumClasses)
	indices := [][]int{
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9},
		{},
		{10, 11, 12, 13, 14, 15, 16, 17},
		{},
		{18, 19, 20, 21, 22, 23},
		{24, 25, 26, 27, 28, 29, 30},
	}
	cp := NewClientPool(tr, IndexPartition(indices), f, 31)
	if cp.NumClients() != 4 {
		t.Fatalf("eligible clients = %d, want 4", cp.NumClients())
	}
	if cp.SampleCount(1) != 8 {
		t.Fatalf("eligible client 1 has %d samples, want 8 (identity 2)", cp.SampleCount(1))
	}
	cfg := runConfig(tr, 3, 3)
	want := stripTimings(Run(cfg, BuildClients(tr, indices, f, 31), te, FedAvg{}))
	got := stripTimings(RunVirtual(cfg, cp, te, FedAvg{}))
	if !reflect.DeepEqual(want, got) {
		t.Fatal("empty-shard handling differs between eager and virtual runs")
	}
}

func TestCyclicPartition(t *testing.T) {
	p := CyclicPartition{N: 10, Per: 4, Clients: 1_000_000}
	p.Validate()
	if p.NumClients() != 1_000_000 || p.Count(123456) != 4 {
		t.Fatal("cyclic partition dimensions wrong")
	}
	if got := p.AppendIndices(nil, 2); !reflect.DeepEqual(got, []int{8, 9, 0, 1}) {
		t.Fatalf("client 2 stripe = %v", got)
	}
	// Buffer reuse: appending into a reset slice reuses its storage.
	buf := p.AppendIndices(nil, 0)
	if again := p.AppendIndices(buf[:0], 1); &again[0] != &buf[0] {
		t.Fatal("AppendIndices reallocated a sufficient buffer")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid cyclic partition did not panic")
		}
	}()
	CyclicPartition{N: 0, Per: 1, Clients: 1}.Validate()
}

// TestCyclicPartitionRejectsOversizedShard is the regression test for
// the Per > N hole: a stripe longer than the dataset wraps past a full
// cycle, repeats samples inside one shard, and double-counts them in
// Eq. 4's sample-weighted merge. Validate must reject it — and so must
// NewClientPool, which now validates self-checking partitions up front.
func TestCyclicPartitionRejectsOversizedShard(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: Per > N did not panic", name)
			}
		}()
		f()
	}
	expectPanic("Validate", func() {
		CyclicPartition{N: 10, Per: 11, Clients: 3}.Validate()
	})
	tr, _ := tinyData(t, 47)
	f := tinyFactory(tr.Dim, tr.NumClasses)
	expectPanic("NewClientPool", func() {
		NewClientPool(tr, CyclicPartition{N: tr.N, Per: tr.N + 1, Clients: 3}, f, 1)
	})
	// The boundary case Per == N (every client sees the whole dataset
	// exactly once) stays legal.
	CyclicPartition{N: 10, Per: 10, Clients: 3}.Validate()
}

// TestRunVirtualMillionClients is the constant-memory property at full
// scale: a million virtual identities over a small dataset, K=10. The
// run must finish quickly and its live state must stay O(K) — slots
// bounded by K, identity state bounded by rounds×K.
func TestRunVirtualMillionClients(t *testing.T) {
	tr, _ := tinyData(t, 41)
	f := tinyFactory(tr.Dim, tr.NumClasses)
	const clients, k, rounds = 1_000_000, 10, 3
	cp := NewClientPool(tr, CyclicPartition{N: tr.N, Per: 8, Clients: clients}, f, 42)
	cfg := RunConfig{
		Rounds: rounds, K: k,
		Local:   LocalConfig{Epochs: 1, Batch: 8, LR: 0.05},
		Factory: f, Seed: 43, Workers: 2,
	}
	res := RunVirtual(cfg, cp, nil, FedAvg{})
	if len(res.Rounds) != rounds {
		t.Fatalf("completed %d rounds, want %d", len(res.Rounds), rounds)
	}
	if len(cp.slots) > k {
		t.Fatalf("pool grew %d slots, want ≤ %d", len(cp.slots), k)
	}
	if len(cp.rngStates) > rounds*k || len(cp.losses) > rounds*k {
		t.Fatalf("identity state grew to %d/%d entries, want ≤ %d",
			len(cp.rngStates), len(cp.losses), rounds*k)
	}
}

// TestChooseDistinct: below the cutoff the historical Choose stream is
// preserved exactly; above it, draws are distinct, in range, and
// deterministic per seed.
func TestChooseDistinct(t *testing.T) {
	want := rng.New(5).Choose(100, 7)
	got := chooseDistinct(100, 7, rng.New(5))
	if !reflect.DeepEqual(want, got) {
		t.Fatal("small-n chooseDistinct diverges from the Choose stream")
	}
	big := chooseDistinct(1_000_000, 10, rng.New(6))
	seen := map[int]bool{}
	for _, v := range big {
		if v < 0 || v >= 1_000_000 || seen[v] {
			t.Fatalf("invalid large-n selection %v", big)
		}
		seen[v] = true
	}
	if !reflect.DeepEqual(big, chooseDistinct(1_000_000, 10, rng.New(6))) {
		t.Fatal("large-n chooseDistinct is not deterministic")
	}
}

// TestSingleSetHonorsWorkers: the centralized baseline must accept
// Workers/Pool like Run (the kernels and evaluation fan out on the same
// engine) and stay bit-identical to its sequential execution.
func TestSingleSetHonorsWorkers(t *testing.T) {
	run := func(workers int, pool *engine.Pool) *Result {
		tr, te := tinyData(t, 53)
		cfg := runConfig(tr, 3, 2)
		cfg.Workers = workers
		cfg.Pool = pool
		return stripTimings(SingleSet(cfg, tr, te))
	}
	ref := run(1, nil)
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		if got := run(workers, nil); !reflect.DeepEqual(ref, got) {
			t.Fatalf("SingleSet Workers=%d differs from sequential", workers)
		}
	}
	pool := engine.New(3)
	defer pool.Close()
	if got := run(0, pool); !reflect.DeepEqual(ref, got) {
		t.Fatal("SingleSet on a shared pool differs from sequential")
	}
}

// TestEvaluatorWarmEvalAllocFree gates the eval-arena satellite: after a
// warm-up call, repeated evaluations — contiguous dataset and gathered
// view alike — must not allocate.
func TestEvaluatorWarmEvalAllocFree(t *testing.T) {
	tr, _ := tinyData(t, 59)
	f := tinyFactory(tr.Dim, tr.NumClasses)
	global := f(3).ParamVector()

	ev := NewEvaluator(f, 4, nil)
	ev.Eval(global, tr)
	if allocs := testing.AllocsPerRun(20, func() { ev.Eval(global, tr) }); allocs > 0 {
		t.Fatalf("warm Evaluator.Eval allocates %v per run", allocs)
	}

	// The client inference path (gather over a view) reuses its arena
	// the same way.
	idx := make([]int, tr.N)
	for i := range idx {
		idx[i] = tr.N - 1 - i
	}
	c := NewClient(0, tr.View(idx), f, 61)
	c.model.SetParamVector(global)
	c.evalLoss()
	if allocs := testing.AllocsPerRun(20, func() { c.evalLoss() }); allocs > 0 {
		t.Fatalf("warm client evalLoss allocates %v per run", allocs)
	}
}

// TestEvaluatorPooledEvalAllocBound gates the pooled evaluation path:
// after warm-up, an Eval fanned out over a pool may allocate only the
// constant-size job bookkeeping (one job header, lane list and
// completion channel per fan-out) — never per-chunk or per-sample
// buffers. The bound is deliberately a small constant so a regression
// that reintroduces per-chunk slicing trips it regardless of dataset
// size.
func TestEvaluatorPooledEvalAllocBound(t *testing.T) {
	tr, _ := tinyData(t, 59)
	f := tinyFactory(tr.Dim, tr.NumClasses)
	global := f(3).ParamVector()

	pool := engine.New(2)
	defer pool.Close()
	ev := NewEvaluator(f, 4, pool)
	ev.Eval(global, tr)
	if allocs := testing.AllocsPerRun(20, func() { ev.Eval(global, tr) }); allocs > 8 {
		t.Fatalf("warm pooled Evaluator.Eval allocates %v per run, want <= 8 (job bookkeeping only)", allocs)
	}
}
