package fl

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"feddrl/internal/dataset"
	"feddrl/internal/partition"
	"feddrl/internal/rng"
)

// The async determinism suite: the event-driven engine must honor the
// same contract as the synchronous paths — bit-identical across worker
// counts and across reruns — and its degenerate configuration must
// reproduce RunVirtual exactly.

// stripAsyncTimings zeroes the wall-clock fields of an async record.
func stripAsyncTimings(r *AsyncResult) *AsyncResult {
	stripTimings(r.Result)
	return r
}

// mustAsync unwraps RunAsync's (result, error) pair for configurations
// that cannot starve; TestAsyncStarvationReturnsError exercises the
// error arm explicitly.
func mustAsync(r *AsyncResult, err error) *AsyncResult {
	if err != nil {
		panic(err)
	}
	return r
}

// TestAsyncDegenerateMatchesRunVirtual is the tentpole acceptance test:
// RunAsync under the degenerate trace (zero latency, no dropout,
// staleness weight 1, threshold K) must reproduce RunVirtual bit for bit
// — every weight, every metric — for all three aggregators at
// Workers ∈ {1, 2, 4, 8}.
func TestAsyncDegenerateMatchesRunVirtual(t *testing.T) {
	const seed = 11
	for name, mkAgg := range detAggregators(4, seed) {
		t.Run(name, func(t *testing.T) {
			for _, workers := range []int{1, 2, 4, 8} {
				syncRun := func() *Result {
					cp, test, cfg := detVirtualFederation(t, seed)
					if name == "FedProx" {
						cfg.Local.ProxMu = 0.01
					}
					cfg.Workers = workers
					return stripTimings(RunVirtual(cfg, cp, test, mkAgg()))
				}
				asyncRun := func() *AsyncResult {
					cp, test, cfg := detVirtualFederation(t, seed)
					if name == "FedProx" {
						cfg.Local.ProxMu = 0.01
					}
					cfg.Workers = workers
					// Zero-value async fields: InstantArrivals, decay 1,
					// AggregateEvery K.
					return stripAsyncTimings(mustAsync(RunAsync(AsyncConfig{RunConfig: cfg}, cp, test, mkAgg())))
				}
				want, got := syncRun(), asyncRun()
				if !reflect.DeepEqual(want, got.Result) {
					t.Fatalf("Workers=%d: degenerate async Result differs from RunVirtual", workers)
				}
				for i := range want.Weights {
					if math.Float64bits(want.Weights[i]) != math.Float64bits(got.Weights[i]) {
						t.Fatalf("Workers=%d: weight %d differs bitwise", workers, i)
					}
				}
				for _, m := range got.Async {
					if m.Dropped != 0 || m.MeanStaleness != 0 || m.MaxStaleness != 0 || m.VirtualTime != 0 {
						t.Fatalf("degenerate trace produced async effects: %+v", m)
					}
					if m.Arrived != m.Dispatched {
						t.Fatalf("degenerate trace lost updates: %+v", m)
					}
				}
			}
		})
	}
}

// asyncTraceConfig is the seeded straggler/dropout configuration shared
// by the reproducibility cases: a sub-K aggregation threshold so updates
// genuinely straddle server versions, plus jitter, stragglers and
// transient drops.
func asyncTraceConfig(cfg RunConfig) AsyncConfig {
	return AsyncConfig{
		RunConfig: cfg,
		Arrival: TraceArrivals{
			Seed:            77,
			BaseDelay:       0.5,
			Jitter:          0.3,
			StragglerFrac:   0.5,
			StragglerFactor: 8,
			DropRate:        0.2,
		},
		StalenessDecay: 0.6,
		AggregateEvery: 2,
	}
}

// TestAsyncSeededTraceReproducible: a non-trivial trace — stragglers,
// jitter, transient drops, sub-K threshold, staleness decay — must
// reproduce bit-identically across reruns and across worker counts, and
// must actually exercise the async machinery (observed staleness and
// drops, advancing virtual clock).
func TestAsyncSeededTraceReproducible(t *testing.T) {
	const seed = 23
	runAt := func(workers int) *AsyncResult {
		cp, test, cfg := detVirtualFederation(t, seed)
		cfg.Workers = workers
		cfg.Rounds = 6
		return stripAsyncTimings(mustAsync(RunAsync(asyncTraceConfig(cfg), cp, test, FedAvg{})))
	}
	ref := runAt(1)
	for _, workers := range []int{1, 4, 8} {
		got := runAt(workers)
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("Workers=%d: traced async run differs from Workers=1", workers)
		}
		for i := range ref.Weights {
			if math.Float64bits(ref.Weights[i]) != math.Float64bits(got.Weights[i]) {
				t.Fatalf("Workers=%d: weight %d differs bitwise", workers, i)
			}
		}
	}
	staleness, clock := 0.0, 0.0
	for _, m := range ref.Async {
		staleness += m.MeanStaleness
		clock = m.VirtualTime
	}
	if staleness == 0 {
		t.Fatal("trace produced no stale updates; the async path was not exercised")
	}
	if clock == 0 {
		t.Fatal("virtual clock never advanced")
	}
	if ref.TotalDropped() == 0 {
		t.Fatal("trace produced no drops")
	}
}

// TestAsyncPartialRounds: a heavy transient-drop trace forces rounds
// where fewer than K updates arrive; the server must fold the partial
// buffer (FedAvg renormalizes over the arrivals) and still complete the
// run deterministically.
func TestAsyncPartialRounds(t *testing.T) {
	const seed = 31
	runOnce := func() *AsyncResult {
		cp, test, cfg := detVirtualFederation(t, seed)
		cfg.Rounds = 5
		acfg := AsyncConfig{
			RunConfig: cfg,
			Arrival:   TraceArrivals{Seed: 13, BaseDelay: 1, DropRate: 0.5},
		}
		return stripAsyncTimings(mustAsync(RunAsync(acfg, cp, test, FedAvg{})))
	}
	a, b := runOnce(), runOnce()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("partial-round run not reproducible")
	}
	if len(a.Rounds) != 5 {
		t.Fatalf("completed %d rounds, want 5", len(a.Rounds))
	}
	partial := false
	for _, m := range a.Async {
		if m.Arrived < 4 {
			partial = true
		}
		if m.Arrived == 0 {
			t.Fatalf("aggregated an empty round: %+v", m)
		}
	}
	if !partial {
		t.Fatal("drop trace never produced a partial round")
	}
	if a.TotalDropped() == 0 {
		t.Fatal("drop trace dropped nothing")
	}
}

// TestAsyncStarvationReturnsError: an arrival model that drops
// everything can never finish a round; the engine must return a
// diagnosable *StarvationError — stuck round, dispatch/arrival census,
// distinct unreachable clients — instead of redispatching forever (and
// instead of the panic it used to throw), alongside the partial result.
func TestAsyncStarvationReturnsError(t *testing.T) {
	cp, _, cfg := detVirtualFederation(t, 37)
	cfg.Rounds = 1
	acfg := AsyncConfig{
		RunConfig: cfg,
		Arrival:   TraceArrivals{Seed: 1, DropRate: 1},
	}
	res, err := RunAsync(acfg, cp, nil, FedAvg{})
	if err == nil {
		t.Fatal("all-drop trace did not return an error")
	}
	var se *StarvationError
	if !errors.As(err, &se) {
		t.Fatalf("error is %T (%v), want *StarvationError", err, err)
	}
	if se.Round != 0 {
		t.Fatalf("starved at round %d, want 0", se.Round)
	}
	if se.Model != (TraceArrivals{}).Name() {
		t.Fatalf("error names arrival model %q, want %q", se.Model, (TraceArrivals{}).Name())
	}
	if se.Attempts != maxRedispatchAttempts+1 {
		t.Fatalf("error counts %d attempts, want %d", se.Attempts, maxRedispatchAttempts+1)
	}
	if se.Dispatched == 0 || se.Dropped != se.Dispatched {
		t.Fatalf("all-drop census inconsistent: %d dispatched, %d dropped", se.Dispatched, se.Dropped)
	}
	if se.Arrived != 0 {
		t.Fatalf("all-drop trace reported %d arrivals", se.Arrived)
	}
	if se.OfflineClients == 0 {
		t.Fatal("error reports no unreachable clients")
	}
	if res == nil || len(res.Weights) == 0 {
		t.Fatal("starvation must still surface the partial result")
	}
	for _, frag := range []string{"starved at round 0", `"trace"`, "unreachable"} {
		if !strings.Contains(err.Error(), frag) {
			t.Fatalf("error %q does not mention %q", err, frag)
		}
	}
}

// TestClientPoolStraddlingResume: the snapshot/resume machinery the
// async engine leans on — an identity whose selections straddle server
// versions must resume its RNG stream exactly where its previous
// checkin left it, matching an eager client that trained on the same
// sequence of globals.
func TestClientPoolStraddlingResume(t *testing.T) {
	const seed = 41
	tr, _ := dataset.Synthesize(dataset.MNISTSim().Scaled(0.12), seed)
	f := tinyFactory(tr.Dim, tr.NumClasses)
	assign := partition.ClusteredEqual(tr, 6, 0.6, 2, 3, rng.New(seed+1))
	part := IndexPartition(assign.ClientIndices)
	cp := NewClientPool(tr, part, f, seed+3)
	lc := LocalConfig{Epochs: 1, Batch: 10, LR: 0.05}

	// Two distinct server versions the client's work straddles.
	g1 := f(seed + 2).ParamVector()
	g2 := f(seed + 5).ParamVector()

	const id = 2
	eager := NewClient(id, tr.View(assign.ClientIndices[id]), f, clientSeed(seed+3, id))
	wantA := eager.Run(g1, lc)
	wantB := eager.Run(g2, lc)

	// The pooled identity is checked in between the two selections —
	// and its slot is deliberately clobbered by a different identity in
	// the interim, so the resume must come from the snapshot, not from
	// residual slot state.
	c := cp.checkout(0, id)
	gotA := c.Run(g1, lc)
	cp.checkin(0, c)
	other := cp.checkout(0, id+1)
	other.Run(g2, lc)
	cp.checkin(0, other)
	c = cp.checkout(0, id)
	gotB := c.Run(g2, lc)
	cp.checkin(0, c)

	for _, pair := range []struct {
		name      string
		want, got Update
	}{{"first", wantA, gotA}, {"straddled", wantB, gotB}} {
		if pair.want.LossBefore != pair.got.LossBefore || pair.want.LossAfter != pair.got.LossAfter {
			t.Fatalf("%s selection: losses differ (want %v/%v, got %v/%v)",
				pair.name, pair.want.LossBefore, pair.want.LossAfter, pair.got.LossBefore, pair.got.LossAfter)
		}
		for i := range pair.want.Weights {
			if math.Float64bits(pair.want.Weights[i]) != math.Float64bits(pair.got.Weights[i]) {
				t.Fatalf("%s selection: weight %d differs bitwise", pair.name, i)
			}
		}
	}
}

// TestStaleWeights: the reweighting kernel must leave the degenerate
// cases bit-untouched (same backing array, not just same values) and
// renormalize decayed factors to sum 1.
func TestStaleWeights(t *testing.T) {
	alpha := []float64{0.25, 0.25, 0.5}
	fresh := []inFlight{{round: 3}, {round: 3}, {round: 3}}
	stale := []inFlight{{round: 3}, {round: 2}, {round: 1}}

	if got := staleWeights(alpha, stale, 3, 1); &got[0] != &alpha[0] {
		t.Fatal("decay 1 must pass alpha through untouched")
	}
	if got := staleWeights(alpha, fresh, 3, 0.5); &got[0] != &alpha[0] {
		t.Fatal("an all-fresh buffer must pass alpha through untouched")
	}

	got := staleWeights(alpha, stale, 3, 0.5)
	if &got[0] == &alpha[0] {
		t.Fatal("stale reweighting must not mutate the aggregator's factors")
	}
	sum := 0.0
	for _, w := range got {
		sum += w
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("reweighted factors sum to %v, want 1", sum)
	}
	// Ages 0/1/2 at decay 0.5: raw weights 0.25, 0.125, 0.125 → the
	// age-0 update holds half the mass.
	if math.Abs(got[0]-0.5) > 1e-12 || math.Abs(got[1]-0.25) > 1e-12 || math.Abs(got[2]-0.25) > 1e-12 {
		t.Fatalf("reweighted factors = %v", got)
	}

	// All factors decayed to zero: uniform fallback, not a 0/0 merge.
	tiny := staleWeights([]float64{0.5, 0.5}, []inFlight{{round: 0}, {round: 0}}, 1000, 1e-300)
	if tiny[0] != 0.5 || tiny[1] != 0.5 {
		t.Fatalf("underflow fallback = %v, want uniform", tiny)
	}
}

// TestArrivalHeapOrdering: pops come out in (time, dispatch-sequence)
// order regardless of push order — the property that makes simultaneous
// arrivals deterministic.
func TestArrivalHeapOrdering(t *testing.T) {
	var h arrivalHeap
	r := rng.New(99)
	const n = 200
	for seq := 0; seq < n; seq++ {
		// Coarse times force plenty of ties for the seq tie-break.
		h.push(inFlight{at: float64(r.Intn(8)), seq: seq})
	}
	prev := inFlight{at: -1, seq: -1}
	for i := 0; i < n; i++ {
		e := h.pop()
		if e.at < prev.at || (e.at == prev.at && e.seq <= prev.seq) {
			t.Fatalf("pop %d out of order: (%v,%d) after (%v,%d)", i, e.at, e.seq, prev.at, prev.seq)
		}
		prev = e
	}
	if len(h) != 0 {
		t.Fatalf("heap not drained: %d left", len(h))
	}
}

// TestTraceArrivalsIdentityStable: straggler/offline membership is a
// function of (trace seed, identity) alone — stable across rounds,
// redispatch attempts and draw streams.
func TestTraceArrivalsIdentityStable(t *testing.T) {
	tr := TraceArrivals{Seed: 5, BaseDelay: 1, StragglerFrac: 0.4, StragglerFactor: 10, OfflineFrac: 0.3}
	classify := func(round, id, attempt int) (offline, straggler bool) {
		a := tr.Draw(round, id, rng.New(rng.MixSeed(123, uint64(round), uint64(id), uint64(attempt))))
		return a.Drop, !a.Drop && a.Delay >= 10
	}
	sawOffline, sawStraggler, sawPlain := false, false, false
	for id := 0; id < 64; id++ {
		off0, str0 := classify(0, id, 0)
		for _, pos := range [][2]int{{1, 0}, {0, 3}, {7, 2}} {
			off, str := classify(pos[0], id, pos[1])
			if off != off0 || str != str0 {
				t.Fatalf("id %d changed traits across rounds/attempts", id)
			}
		}
		sawOffline = sawOffline || off0
		sawStraggler = sawStraggler || str0
		sawPlain = sawPlain || (!off0 && !str0)
	}
	if !sawOffline || !sawStraggler || !sawPlain {
		t.Fatal("trace fractions did not produce all three client classes over 64 identities")
	}
}
