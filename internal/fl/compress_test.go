package fl

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"feddrl/internal/core"
	"feddrl/internal/engine"
	"feddrl/internal/partition"
	"feddrl/internal/rng"
)

func TestCompressTopKExact(t *testing.T) {
	base := []float64{0, 0, 0, 0, 0}
	w := []float64{1, -5, 0.1, 3, -0.2}
	d := CompressTopK(w, base, 2)
	// Largest magnitudes: -5 (idx 1) and 3 (idx 3); indices sorted.
	if len(d.Indices) != 2 || d.Indices[0] != 1 || d.Indices[1] != 3 {
		t.Fatalf("indices %v", d.Indices)
	}
	if d.Values[0] != -5 || d.Values[1] != 3 {
		t.Fatalf("values %v", d.Values)
	}
	rec := d.Decompress(base)
	want := []float64{0, -5, 0, 3, 0}
	for i := range want {
		if rec[i] != want[i] {
			t.Fatalf("decompressed %v", rec)
		}
	}
}

func TestCompressFullKIsLossless(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(32)
		base := make([]float64, n)
		w := make([]float64, n)
		for i := range w {
			base[i] = r.Normal(0, 1)
			w[i] = r.Normal(0, 1)
		}
		d := CompressTopK(w, base, n)
		rec := d.Decompress(base)
		for i := range w {
			if math.Abs(rec[i]-w[i]) > 1e-12 {
				return false
			}
		}
		return CompressionError(w, base, d) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCompressionErrorDecreasesWithK(t *testing.T) {
	r := rng.New(3)
	n := 100
	base := make([]float64, n)
	w := make([]float64, n)
	for i := range w {
		w[i] = r.Normal(0, 1)
	}
	prev := math.Inf(1)
	for _, k := range []int{1, 10, 50, 100} {
		d := CompressTopK(w, base, k)
		e := CompressionError(w, base, d)
		if e > prev+1e-12 {
			t.Fatalf("error not monotone at k=%d: %v > %v", k, e, prev)
		}
		prev = e
	}
}

func TestCompressionRatio(t *testing.T) {
	d := CompressTopK(make([]float64, 1000), make([]float64, 1000), 10)
	// Dense: 4+8000; sparse: 8+40+80.
	want := 8004.0 / 128.0
	if math.Abs(d.CompressionRatio()-want) > 1e-9 {
		t.Fatalf("ratio %v, want %v", d.CompressionRatio(), want)
	}
}

func TestCompressPanics(t *testing.T) {
	for i, f := range []func(){
		func() { CompressTopK([]float64{1}, []float64{1, 2}, 1) },
		func() { CompressTopK([]float64{1}, []float64{1}, 0) },
		func() { (SparseDelta{Dim: 3}).Decompress([]float64{1}) },
		func() { CompressUpdates(nil, []float64{1}, 0) },
		func() { DecompressUpdates([]Update{{}}, nil, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

// TestCompressUpdatesParallelDeterminism is the determinism gate for
// the pooled top-k compression: at any engine width the sparse deltas
// must be bit-identical to the sequential path.
func TestCompressUpdatesParallelDeterminism(t *testing.T) {
	r := rng.New(11)
	dim := 257
	global := make([]float64, dim)
	for i := range global {
		global[i] = r.Normal(0, 1)
	}
	updates := make([]Update, 9)
	for u := range updates {
		w := make([]float64, dim)
		for i := range w {
			w[i] = global[i] + r.Normal(0, 0.3)
		}
		updates[u] = Update{ClientID: u, Weights: w, N: 10 + u}
	}
	want := CompressUpdates(updates, global, 0.1)
	for _, workers := range []int{2, 4, 8} {
		pool := engine.New(workers)
		got := CompressUpdatesOn(updates, global, 0.1, pool)
		pool.Close()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: pooled compression differs from sequential", workers)
		}
	}
	if got := CompressUpdatesOn(updates, global, 0.1, nil); !reflect.DeepEqual(got, want) {
		t.Fatal("nil-pool compression differs from sequential")
	}
}

// TestFedDRLWithCompression verifies §3.5's compatibility claim: FedDRL
// aggregation composed with top-k sparse updates still trains.
func TestFedDRLWithCompression(t *testing.T) {
	tr, te := tinyData(t, 40)
	a := partition.ClusteredEqual(tr, 4, 0.5, 2, 2, rng.New(41))
	factory := tinyFactory(tr.Dim, tr.NumClasses)
	drlCfg := core.DefaultConfig(4)
	drlCfg.Hidden = 8
	drlCfg.BatchSize = 4
	drlCfg.WarmupExperiences = 2
	drlCfg.UpdatesPerRound = 1
	drlCfg.BufferCap = 64
	agg := NewFedDRL(core.NewAgent(drlCfg))
	clients := BuildClients(tr, a.ClientIndices, factory, 42)
	lc := LocalConfig{Epochs: 2, Batch: 10, LR: 0.05}

	global := factory(43).ParamVector()
	serverModel := factory(43)
	var firstAcc, lastAcc float64
	for round := 0; round < 8; round++ {
		updates := make([]Update, len(clients))
		for i, c := range clients {
			updates[i] = c.Run(global, lc)
		}
		// Compress at 30% density, then reconstruct server-side.
		deltas := CompressUpdates(updates, global, 0.3)
		restored := DecompressUpdates(updates, deltas, global)
		alpha := agg.ImpactFactors(round, restored)
		global = Aggregate(restored, alpha)
		serverModel.SetParamVector(global)
		_, acc := EvalLossAcc(serverModel, te)
		if round == 0 {
			firstAcc = acc
		}
		lastAcc = acc
	}
	if lastAcc <= firstAcc {
		t.Fatalf("compressed FedDRL did not improve: %v -> %v", firstAcc, lastAcc)
	}
}
