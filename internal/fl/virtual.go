package fl

import (
	"fmt"

	"feddrl/internal/dataset"
	"feddrl/internal/nn"
	"feddrl/internal/rng"
)

// Partition describes how the samples of one shared dataset are assigned
// to client identities without materializing per-client index lists up
// front: the run loop asks for a client's indices only while that client
// is selected. Implementations must be deterministic — the same (i)
// always yields the same indices — and are read concurrently only
// through AppendIndices on distinct i (ClientPool serializes calls).
type Partition interface {
	// NumClients returns the number of client identities.
	NumClients() int
	// Count returns client i's sample count without materializing the
	// indices.
	Count(i int) int
	// AppendIndices appends client i's sample indices (into the shared
	// dataset) to dst and returns the extended slice.
	AppendIndices(dst []int, i int) []int
}

// IndexPartition adapts a materialized per-client index assignment (the
// [][]int produced by the partition package) to the Partition interface.
// Memory is whatever the assignment already costs; the win over
// BuildClients is that no shard data is copied and only K client states
// exist at a time.
type IndexPartition [][]int

// NumClients returns the number of index lists.
func (p IndexPartition) NumClients() int { return len(p) }

// Count returns len of client i's index list.
func (p IndexPartition) Count(i int) int { return len(p[i]) }

// AppendIndices appends client i's index list to dst.
func (p IndexPartition) AppendIndices(dst []int, i int) []int { return append(dst, p[i]...) }

// CyclicPartition assigns every client Per samples striped cyclically
// over a dataset of N samples: client i owns samples (i*Per+j) mod N for
// j in [0, Per). Storage is O(1) regardless of client count, which makes
// it the canonical partition for million-client scaling runs — a million
// identities over a small dataset costs three ints.
type CyclicPartition struct {
	// N is the shared dataset's sample count.
	N int
	// Per is each client's shard size.
	Per int
	// Clients is the number of client identities.
	Clients int
}

// Validate panics on a degenerate cyclic partition.
func (p CyclicPartition) Validate() {
	if p.N <= 0 || p.Per <= 0 || p.Clients <= 0 {
		panic(fmt.Sprintf("fl: invalid cyclic partition %+v", p))
	}
	// Per > N would wrap the stripe past a full cycle: the shard repeats
	// samples it already holds, and Eq. 4's sample-count weighting
	// silently double-counts them.
	if p.Per > p.N {
		panic(fmt.Sprintf(
			"fl: cyclic partition shard size Per=%d exceeds dataset size N=%d: shards would repeat samples and double-count them in sample-weighted aggregation",
			p.Per, p.N))
	}
}

// NumClients returns the number of client identities.
func (p CyclicPartition) NumClients() int { return p.Clients }

// Count returns Per for every client.
func (p CyclicPartition) Count(i int) int { return p.Per }

// AppendIndices appends client i's cyclic stripe.
func (p CyclicPartition) AppendIndices(dst []int, i int) []int {
	for j := 0; j < p.Per; j++ {
		dst = append(dst, (i*p.Per+j)%p.N)
	}
	return dst
}

// poolSlot is one reusable client state: the slot's Client (model,
// scratch arenas, RNG, minibatch buffers) plus the index buffer its
// current identity's view is built from.
type poolSlot struct {
	c   *Client
	idx []int
}

// ClientPool realizes clients lazily: identities are (seed, Partition
// recipe) pairs, and only the clients selected in the current round
// occupy one of the pool's reusable slots — model, nn.Scratch, loss and
// minibatch buffers are rebound to the selected identity, the shard is
// a zero-copy dataset.View, and the identity's RNG position is restored
// from a snapshot taken when it was last checked in. Per-round memory is
// therefore O(K) in slot state plus O(selected-so-far) in RNG snapshots
// and loss entries, never O(clients).
//
// The determinism contract: a virtual client's model weights always come
// from the broadcast global vector, and its RNG stream derives from its
// identity seed exactly as NewClient's does (seed + id*stride, salted),
// resuming across selections — so RunVirtual over a ClientPool is
// bit-identical to Run over BuildClients with the same base seed and
// partition. ClientPool is not safe for concurrent use; the run loop
// serializes all checkout/checkin calls.
type ClientPool struct {
	data    *dataset.Dataset
	part    Partition
	factory nn.Factory
	seed    uint64

	// elig maps eligible index → identity; nil when every identity has
	// samples (the identity mapping, costing nothing at scale).
	elig []int

	slots []*poolSlot

	// rngStates holds the RNG snapshot of every identity selected so
	// far; losses its latest global-model inference loss. Both are
	// sparse: at most rounds×K entries, independent of client count.
	rngStates map[int]rng.State
	losses    map[int]float64
}

// NewClientPool builds a virtual-client pool over a shared dataset and a
// partition. seed plays the same role as BuildClients' seed: client i's
// model seed is seed + i*stride, its RNG stream the salted derivative.
// Slots are created lazily as the round loop occupies them, so a pool
// costs nothing until a run starts.
func NewClientPool(d *dataset.Dataset, part Partition, factory nn.Factory, seed uint64) *ClientPool {
	if d == nil || d.N == 0 {
		panic("fl: NewClientPool with no data")
	}
	if part == nil || part.NumClients() == 0 {
		panic("fl: NewClientPool with empty partition")
	}
	if factory == nil {
		panic("fl: NewClientPool with nil factory")
	}
	// Partitions that know how to check themselves (CyclicPartition's
	// shard-size bounds, for one) are checked at pool construction, not
	// first checkout — a bad recipe should fail before training starts.
	if v, ok := part.(interface{ Validate() }); ok {
		v.Validate()
	}
	p := &ClientPool{
		data:      d,
		part:      part,
		factory:   factory,
		seed:      seed,
		rngStates: make(map[int]rng.State),
		losses:    make(map[int]float64),
	}
	// Only identities with samples are eligible, in identity order —
	// the same filter and ordering Run applies to eager clients, so the
	// two populations index identically.
	n := part.NumClients()
	for i := 0; i < n; i++ {
		if part.Count(i) <= 0 {
			if p.elig == nil {
				p.elig = make([]int, 0, n-1)
				for j := 0; j < i; j++ {
					p.elig = append(p.elig, j)
				}
			}
			continue
		}
		if p.elig != nil {
			p.elig = append(p.elig, i)
		}
	}
	if p.elig != nil && len(p.elig) == 0 {
		panic("fl: all client shards are empty")
	}
	return p
}

// identity maps an eligible index to its client identity.
func (p *ClientPool) identity(i int) int {
	if p.elig != nil {
		return p.elig[i]
	}
	return i
}

// NumClients returns the number of eligible identities.
func (p *ClientPool) NumClients() int {
	if p.elig != nil {
		return len(p.elig)
	}
	return p.part.NumClients()
}

// SampleCount returns eligible client i's shard size.
func (p *ClientPool) SampleCount(i int) int { return p.part.Count(p.identity(i)) }

// LastLoss returns eligible client i's most recent global-model
// inference loss, 0 when never selected.
func (p *ClientPool) LastLoss(i int) float64 { return p.losses[p.identity(i)] }

// noteLoss records the loss under the client's identity.
func (p *ClientPool) noteLoss(i int, v float64) { p.losses[p.identity(i)] = v }

// checkout binds eligible client i to the given slot: the slot's index
// buffer is refilled from the partition, its Data becomes a fresh
// zero-copy view, and its RNG is restored to the identity's snapshot
// (or seeded afresh on first selection). The slot's model weights are
// not touched — Client.Run overwrites them with the broadcast global
// vector, exactly as for an eager client.
func (p *ClientPool) checkout(slot, i int) *Client {
	for len(p.slots) <= slot {
		p.slots = append(p.slots, &poolSlot{c: newClientCore(p.factory, p.seed)})
	}
	id := p.identity(i)
	s := p.slots[slot]
	s.idx = p.part.AppendIndices(s.idx[:0], id)
	c := s.c
	c.ID = id
	c.Data = p.data.View(s.idx)
	if st, ok := p.rngStates[id]; ok {
		c.r.Restore(st)
	} else {
		c.r.Reseed(clientSeed(p.seed, id) ^ clientRNGSalt)
	}
	return c
}

// checkin snapshots the identity's RNG position so its stream resumes
// where it left off at the next selection — the virtual equivalent of an
// eager client keeping its RNG between rounds.
func (p *ClientPool) checkin(slot int, c *Client) {
	p.rngStates[c.ID] = c.r.State()
}

// RunVirtual executes Algorithm 2 over a ClientPool: the same round
// loop as Run, but clients are materialized only while selected, so
// memory stays O(K) in client count. Results are bit-identical to Run
// over the equivalent eager fleet.
func RunVirtual(cfg RunConfig, clients *ClientPool, test *dataset.Dataset, agg Aggregator) *Result {
	cfg.Validate()
	if clients == nil {
		panic("fl: RunVirtual with nil client pool")
	}
	return runLoop(cfg, clients, test, agg)
}
