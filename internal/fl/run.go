package fl

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"feddrl/internal/dataset"
	"feddrl/internal/engine"
	"feddrl/internal/mathx"
	"feddrl/internal/metrics"
	"feddrl/internal/nn"
	"feddrl/internal/rng"
	"feddrl/internal/tensor"
)

// RunConfig configures a federated training run (Algorithm 2).
type RunConfig struct {
	// Rounds is the number of communication rounds T (1000 in §4.1.2;
	// experiments here scale it down).
	Rounds int
	// K is the number of participating clients per round (default 10,
	// §4.1.2). Clamped to the number of non-empty clients.
	K int
	// Local is the client solver configuration.
	Local LocalConfig
	// Factory instantiates the shared model architecture.
	Factory nn.Factory
	// Seed drives the server's randomness (initial weights, client
	// selection).
	Seed uint64
	// Workers bounds the round engine's parallelism: client local
	// training, test-set evaluation and the weight merge all run on one
	// bounded work-stealing pool with this many lanes. When the pool is
	// shared and saturated (an experiment grid occupying every lane),
	// these nested loops enqueue on the pool's deques and are stolen by
	// lanes as they free up, instead of degrading to serial execution.
	// 0 means GOMAXPROCS when Parallel is set and sequential otherwise;
	// 1 forces sequential. Results are bit-identical across every
	// Workers value because each client owns its RNG and the engine
	// reduces in deterministic order.
	Workers int
	// Pool optionally supplies a shared execution pool (the experiments
	// grid runner threads one pool through many concurrent cells, and
	// the work-stealing scheduler keeps this run's nested loops parallel
	// even while sibling cells hold every lane). When set it overrides
	// Workers and the caller owns its lifecycle; when nil, Run creates
	// and closes a pool of Workers lanes itself.
	Pool *engine.Pool
	// Parallel trains the selected clients in goroutines.
	//
	// Deprecated: Parallel is kept working as shorthand for
	// Workers=GOMAXPROCS; prefer setting Workers explicitly.
	Parallel bool
	// EvalEvery sets the test-evaluation cadence in rounds (default 1).
	EvalEvery int
	// Selector chooses the participating clients each round; nil means
	// uniform random selection (the paper's setting, §4.1.2).
	Selector Selector
	// Precision selects the federated-state width (see precision.go):
	// F32 makes clients upload float32 weights (half the wire bytes) and
	// the server merge in pure float32 arithmetic, with the global model
	// held on the float32 lattice. The zero value and F64 are bit-for-bit
	// the full-width behavior. Local training always runs in float64;
	// SingleSet (no federated exchange) ignores the knob.
	Precision Precision
	// Attack optionally injects Byzantine faults (see attack.go): a
	// seeded, identity-stable subset of clients corrupts its uploads
	// (or its local training data, for DataAttack implementations)
	// deterministically per (round, client). nil is the benign path,
	// bit-for-bit identical to runs predating the knob. SingleSet (no
	// clients) ignores it.
	Attack AttackModel
	// AttackSeed keys the attack's membership and corruption streams;
	// 0 derives Seed ^ attackSalt, so by default distinct runs see
	// distinct attack traces while an explicit seed replays one trace
	// across many run seeds.
	AttackSeed uint64
	// Merger selects the server-side merge rule (see merger.go). nil
	// means the default impact-factor convex combination, byte-identical
	// to the historical Aggregate path; Median/TrimmedMean/Krum trade
	// the aggregator's weighting for Byzantine robustness (the
	// aggregator still runs — its decision timings stay comparable —
	// but an order-statistic merger ignores the resulting factors).
	Merger Merger
	// Quarantine configures the server-ingress gate applied to client
	// uploads before they reach the aggregator (see QuarantineConfig).
	// The zero value screens non-finite uploads only.
	Quarantine QuarantineConfig
}

// QuarantineConfig is the server's upload-ingress gate: rather than
// folding a poisoned vector into the global model (one NaN coordinate
// contaminates everything), offending uploads are dropped from the
// round's merge cohort and counted in RoundMetrics.Quarantined. The
// gate never panics mid-run — that split is deliberate: Aggregate and
// friends panic on non-finite input (library misuse: the caller was
// supposed to screen), while the run loops quarantine and continue
// (runtime fault: a fault model or a diverging client produced the
// vector). If every upload of a round is quarantined the global model
// simply carries over unchanged.
type QuarantineConfig struct {
	// DisableFiniteCheck turns off the non-finite (NaN/±Inf) screen.
	// The zero value keeps it on — benign runs are unaffected because
	// the screen only reads.
	DisableFiniteCheck bool
	// MaxNorm additionally quarantines uploads whose L2 norm exceeds
	// it; 0 disables the norm screen.
	MaxNorm float64
}

// reject reports whether the gate drops u.
func (q QuarantineConfig) reject(u *Update) bool {
	if !q.DisableFiniteCheck {
		if u.Weights32 != nil {
			if !AllFinite32(u.Weights32) {
				return true
			}
		} else if !AllFinite(u.Weights) {
			return true
		}
	}
	if q.MaxNorm > 0 && updateNorm(u) > q.MaxNorm {
		return true
	}
	return false
}

// updateNorm is the L2 norm of whichever width the update carries,
// folded sequentially in f64.
func updateNorm(u *Update) float64 {
	var s float64
	if u.Weights32 != nil {
		for _, v := range u.Weights32 {
			s += float64(v) * float64(v)
		}
	} else {
		for _, v := range u.Weights {
			s += v * v
		}
	}
	return math.Sqrt(s)
}

// quarantineInto screens a cohort: survivors are appended to kept
// (cleared on entry) and the quarantined count is returned. When
// nothing is rejected the returned slice is the arrived slice itself,
// so the benign path hands the aggregator the exact historical value.
func quarantineInto(q QuarantineConfig, arrived []Update, kept []Update) ([]Update, int) {
	kept = kept[:0]
	quarantined := 0
	for i := range arrived {
		if q.reject(&arrived[i]) {
			quarantined++
		} else {
			kept = append(kept, arrived[i])
		}
	}
	if quarantined == 0 {
		return arrived, 0
	}
	return kept, quarantined
}

// Validate panics on an inconsistent run configuration.
func (c RunConfig) Validate() {
	if c.Rounds <= 0 || c.K <= 0 || c.Factory == nil {
		panic(fmt.Sprintf("fl: invalid run config %+v", c))
	}
	c.Local.Validate()
	if c.EvalEvery < 0 {
		panic("fl: negative EvalEvery")
	}
	if c.Workers < 0 {
		panic("fl: negative Workers")
	}
	c.Precision.Validate()
}

// effectiveWorkers resolves the engine width from Pool, Workers and the
// deprecated Parallel flag.
func (c RunConfig) effectiveWorkers() int {
	if c.Pool != nil {
		return c.Pool.Workers()
	}
	if c.Workers > 0 {
		return c.Workers
	}
	if c.Parallel {
		return runtime.GOMAXPROCS(0)
	}
	return 1
}

// RoundMetrics captures one communication round's measurements.
type RoundMetrics struct {
	Round int

	// Evaluated reports whether TestAcc/TestLoss were measured this round.
	Evaluated bool
	TestAcc   float64
	TestLoss  float64

	// Client inference-loss statistics over the round's participants,
	// measured on the fresh global model (the Fig. 6 robustness signal).
	ClientLossMean float64
	ClientLossVar  float64
	ClientLossMax  float64
	ClientLossMin  float64

	// Quarantined counts this round's uploads rejected by the ingress
	// gate (non-finite or norm-exploded) and excluded from the merge.
	Quarantined int

	// DecisionTime is the impact-factor computation (the "DRL" bar of
	// Fig. 9); AggTime is the weighted weight merge (the "Aggregation"
	// bar).
	DecisionTime time.Duration
	AggTime      time.Duration
}

// Result is a full training run's record.
type Result struct {
	Method   string
	Rounds   []RoundMetrics
	NumParam int

	// Weights is the final global model's flat parameter vector.
	Weights []float64

	// Accuracy holds the test accuracy at every evaluated round, in
	// percent (0–100), aligned with AccRounds.
	Accuracy  metrics.Series
	AccRounds []int
}

// Best returns the best test accuracy reached (Table 3's reporting rule).
func (r *Result) Best() float64 { return r.Accuracy.Best() }

// Final returns the last evaluated test accuracy.
func (r *Result) Final() float64 { return r.Accuracy.Final() }

// ClientLossMeans returns the per-round mean client inference loss.
func (r *Result) ClientLossMeans() metrics.Series {
	out := make(metrics.Series, len(r.Rounds))
	for i, m := range r.Rounds {
		out[i] = m.ClientLossMean
	}
	return out
}

// ClientLossVars returns the per-round variance of client inference loss.
func (r *Result) ClientLossVars() metrics.Series {
	out := make(metrics.Series, len(r.Rounds))
	for i, m := range r.Rounds {
		out[i] = m.ClientLossVar
	}
	return out
}

// MeanDecisionTime averages the aggregator's per-round decision time.
func (r *Result) MeanDecisionTime() time.Duration {
	if len(r.Rounds) == 0 {
		return 0
	}
	var total time.Duration
	for _, m := range r.Rounds {
		total += m.DecisionTime
	}
	return total / time.Duration(len(r.Rounds))
}

// MeanAggTime averages the per-round weight-merge time.
func (r *Result) MeanAggTime() time.Duration {
	if len(r.Rounds) == 0 {
		return 0
	}
	var total time.Duration
	for _, m := range r.Rounds {
		total += m.AggTime
	}
	return total / time.Duration(len(r.Rounds))
}

// enginePool resolves the run's execution pool: the caller-supplied
// cfg.Pool when set, a freshly created pool of effectiveWorkers lanes
// when parallelism was requested, or nil for sequential runs. When a
// pool is in play the large tensor kernels fan out on the SAME pool as
// client training and evaluation (tensor.SetParallel), so kernel
// parallelism is work-stealing-scheduled with the rest of the round
// loop instead of spawning raw goroutines that oversubscribe the lanes.
// Results are bit-identical with any pool or none, so the
// process-global hook is safe even when concurrent grid cells swap it.
//
// The returned release func must be deferred: for an owned pool it
// uninstalls only our own hook — a concurrent run that installed its
// pool in the meantime keeps it (closed pools are treated as absent by
// the kernels regardless) — and closes the pool. A caller-supplied pool
// is left untouched; its owner manages its lifecycle.
func (c RunConfig) enginePool() (pool *engine.Pool, release func()) {
	if c.Pool == nil && c.effectiveWorkers() > 1 {
		p := engine.New(c.effectiveWorkers())
		tensor.SetParallel(p)
		return p, func() {
			tensor.ClearParallel(p)
			p.Close()
		}
	}
	if c.Pool != nil {
		tensor.SetParallel(c.Pool)
	}
	return c.Pool, func() {}
}

// population is the run loop's view of a client fleet: the Population
// surface the Selector sees, plus slot checkout for the training phase
// and loss write-back. checkout/checkin are never called concurrently —
// the parallel path binds all K slots before fanning out and releases
// them after the barrier — so implementations need no locking.
type population interface {
	Population
	// checkout returns a ready-to-train client for eligible index i,
	// bound to slot. Concurrent checkouts always use distinct slots.
	checkout(slot, i int) *Client
	// checkin releases a checked-out client, persisting whatever
	// identity state (RNG position) must survive to its next selection.
	checkin(slot int, c *Client)
	// noteLoss records client i's latest global-model inference loss.
	noteLoss(i int, v float64)
}

// eagerClients adapts a materialized []*Client fleet to the population
// interface: checkout is identity lookup and checkin is a no-op, since
// each eager client permanently owns its state.
type eagerClients struct {
	clients []*Client
	losses  []float64
}

func (e *eagerClients) NumClients() int            { return len(e.clients) }
func (e *eagerClients) SampleCount(i int) int      { return e.clients[i].Data.Len() }
func (e *eagerClients) LastLoss(i int) float64     { return e.losses[i] }
func (e *eagerClients) checkout(slot, i int) *Client { return e.clients[i] }
func (e *eagerClients) checkin(slot int, c *Client)  {}
func (e *eagerClients) noteLoss(i int, v float64)  { e.losses[i] = v }

// Run executes Algorithm 2: for every round, broadcast the global
// weights to K selected clients, train locally (optionally in parallel),
// compute impact factors via the aggregator, merge (Eq. 4), and record
// metrics. It returns the full per-round record.
//
// Run takes a materialized client fleet; RunVirtual is the
// constant-memory equivalent over a ClientPool, bit-identical for the
// same identities.
func Run(cfg RunConfig, clients []*Client, test *dataset.Dataset, agg Aggregator) *Result {
	cfg.Validate()
	if len(clients) == 0 {
		panic("fl: Run with no clients")
	}
	// Only clients with data can contribute.
	eligible := make([]*Client, 0, len(clients))
	for _, c := range clients {
		if c.Data.Len() > 0 {
			eligible = append(eligible, c)
		}
	}
	if len(eligible) == 0 {
		panic("fl: all client shards are empty")
	}
	pop := &eagerClients{clients: eligible, losses: make([]float64, len(eligible))}
	return runLoop(cfg, pop, test, agg)
}

// runLoop is the round loop shared by Run and RunVirtual. All per-round
// scratch (update slots, metric buffers, the distinct-check set) is
// allocated once up front, so the loop itself adds no heap churn.
func runLoop(cfg RunConfig, pop population, test *dataset.Dataset, agg Aggregator) *Result {
	if agg == nil {
		panic("fl: Run with nil aggregator")
	}
	evalEvery := cfg.EvalEvery
	if evalEvery == 0 {
		evalEvery = 1
	}
	k := cfg.K
	if k > pop.NumClients() {
		k = pop.NumClients()
	}

	serverRNG := rng.New(cfg.Seed)
	serverModel := cfg.Factory(cfg.Seed)
	global := serverModel.ParamVector()
	if cfg.Precision == F32 {
		// f32 mode's standing invariant: the float64-carried global
		// vector is exactly float32-representable, so every broadcast and
		// every client-side quantization of it is lossless.
		tensor.QuantizeLattice(global)
	}

	pool, release := cfg.enginePool()
	defer release()
	var ev *Evaluator
	if test != nil {
		// The evaluator's persistent lanes serve the sequential case too
		// (nil pool → one lane), so no eval path re-allocates its loss
		// scratch per round.
		ev = NewEvaluator(cfg.Factory, cfg.Seed, pool)
	}

	sel := cfg.Selector
	if sel == nil {
		sel = UniformSelector{}
	}

	atk := newAttackRuntime(cfg.Attack, cfg.AttackSeed, cfg.Seed)

	res := &Result{Method: agg.Name(), NumParam: len(global)}
	updates := make([]Update, k)
	slots := make([]*Client, k)
	lb := make([]float64, k)
	seen := make(map[int]struct{}, k)
	kept := make([]Update, 0, k)
	for round := 0; round < cfg.Rounds; round++ {
		selected := sel.Select(round, k, pop, serverRNG)

		trainCohort(pop, selected, global, cfg.Local, cfg.Precision, pool, round, atk, updates, slots, seen)

		for i, ci := range selected {
			pop.noteLoss(ci, updates[i].LossBefore)
		}

		// Ingress gate: poisoned uploads are dropped from the merge
		// cohort (counted below); the loss statistics still cover every
		// arrived update, quarantined or not.
		merge, quarantined := quarantineInto(cfg.Quarantine, updates, kept)

		var decision, aggTime time.Duration
		if len(merge) > 0 {
			t0 := time.Now()
			alpha := agg.ImpactFactors(round, merge)
			decision = time.Since(t0)

			t1 := time.Now()
			global = mergeP(cfg.Precision, cfg.Merger, merge, alpha, pool)
			aggTime = time.Since(t1)
		}
		// Every upload quarantined: the global model carries over.

		for i, u := range updates {
			lb[i] = u.LossBefore
		}
		m := RoundMetrics{
			Round:          round,
			ClientLossMean: mathx.Mean(lb),
			ClientLossVar:  mathx.Variance(lb),
			ClientLossMax:  mathx.Max(lb),
			ClientLossMin:  mathx.Min(lb),
			Quarantined:    quarantined,
			DecisionTime:   decision,
			AggTime:        aggTime,
		}
		if test != nil && (round%evalEvery == 0 || round == cfg.Rounds-1) {
			loss, acc := ev.Eval(global, test)
			m.Evaluated = true
			m.TestLoss = loss
			m.TestAcc = acc * 100
			res.Accuracy = append(res.Accuracy, m.TestAcc)
			res.AccRounds = append(res.AccRounds, round)
		}
		res.Rounds = append(res.Rounds, m)
	}
	res.Weights = global
	return res
}

// trainCohort runs one dispatch cohort's local training: every selected
// eligible index is checked out, trained against the broadcast global
// vector, and checked back in. It is shared by the synchronous round
// loop and the async engine's dispatch phase, so both substrates produce
// bit-identical client updates for the same cohort.
//
// When a pool is available and the selection is distinct, every identity
// is bound to its own slot before the fan-out, the slots run in
// parallel, and all are released after the barrier — checkout/checkin
// stay single-threaded. The sequential path doubles as the safety net
// for a custom Selector that violates the distinct-indices contract,
// where two tasks would otherwise share one client's model and RNG: one
// slot is checked out and returned per iteration, so a duplicated
// identity resumes the RNG stream its earlier occurrence advanced,
// exactly like a reused eager client.
//
// updates, slots and seen are caller-owned scratch of length (capacity
// for seen) at least len(selected); updates[:len(selected)] is filled in
// selection order.
//
// A non-nil attack runtime corrupts the cohort in two places, both
// order-invariant: data poisoning wraps each malicious client's shard
// during the single-threaded checkout (and unwraps it before checkin),
// and weight corruption rewrites each finished update inside the
// fan-out — a pure function of (round, client id), so any lane may run
// it. atk == nil compiles down to the historical benign path.
func trainCohort(pop population, selected []int, global []float64, lc LocalConfig, prec Precision, pool *engine.Pool, round int, atk *attackRuntime, updates []Update, slots []*Client, seen map[int]struct{}) {
	var orig []dataset.Data
	if atk != nil && atk.data != nil {
		orig = make([]dataset.Data, len(selected))
	}
	if pool != nil && len(selected) > 1 && distinctInto(seen, selected) {
		for i, ci := range selected {
			slots[i] = pop.checkout(i, ci)
			if orig != nil {
				orig[i] = poisonData(atk, slots[i])
			}
		}
		pool.For(len(selected), func(i int) {
			updates[i] = slots[i].run(global, lc, prec)
			if atk != nil && atk.malicious(updates[i].ClientID) {
				atk.corrupt(round, global, &updates[i])
			}
		})
		for i := range selected {
			if orig != nil && orig[i] != nil {
				slots[i].Data = orig[i]
			}
			pop.checkin(i, slots[i])
		}
		return
	}
	for i, ci := range selected {
		c := pop.checkout(0, ci)
		if orig != nil {
			orig[i] = poisonData(atk, c)
		}
		updates[i] = c.run(global, lc, prec)
		if atk != nil && atk.malicious(updates[i].ClientID) {
			atk.corrupt(round, global, &updates[i])
		}
		if orig != nil && orig[i] != nil {
			c.Data = orig[i]
		}
		pop.checkin(0, c)
	}
}

// poisonData swaps a malicious client's shard for its poisoned wrapper
// and returns the original for restoration (nil for honest clients).
func poisonData(atk *attackRuntime, c *Client) dataset.Data {
	if !atk.malicious(c.ID) {
		return nil
	}
	orig := c.Data
	c.Data = atk.data.CorruptData(orig)
	return orig
}

// distinctInto reports whether all indices differ (the Selector
// contract; verified before sharing clients across pool lanes). seen is
// caller-owned scratch, cleared on entry.
func distinctInto(seen map[int]struct{}, idx []int) bool {
	clear(seen)
	for _, i := range idx {
		if _, dup := seen[i]; dup {
			return false
		}
		seen[i] = struct{}{}
	}
	return true
}

// SingleSet trains on the concatenation of all client data in one place
// (the reference upper bound of §4.1): per "round" the model runs the
// same local-solver budget over the combined dataset, and the test
// accuracy is recorded on the same cadence as the federated runs. It
// honors Workers/Pool exactly like Run — the tensor kernels and the
// test evaluation fan out on the same engine — so its timings are
// comparable with the federated runs; results are bit-identical at any
// worker count.
func SingleSet(cfg RunConfig, all *dataset.Dataset, test *dataset.Dataset) *Result {
	cfg.Validate()
	if all == nil || all.N == 0 {
		panic("fl: SingleSet with no data")
	}
	evalEvery := cfg.EvalEvery
	if evalEvery == 0 {
		evalEvery = 1
	}
	pool, release := cfg.enginePool()
	defer release()
	client := NewClient(0, all, cfg.Factory, cfg.Seed+0xace)
	serverModel := cfg.Factory(cfg.Seed)
	global := serverModel.ParamVector()
	var ev *Evaluator
	if test != nil {
		ev = NewEvaluator(cfg.Factory, cfg.Seed, pool)
	}
	res := &Result{Method: "SingleSet", NumParam: len(global)}
	for round := 0; round < cfg.Rounds; round++ {
		u := client.Run(global, cfg.Local)
		global = u.Weights
		m := RoundMetrics{
			Round:          round,
			ClientLossMean: u.LossBefore,
			ClientLossMax:  u.LossBefore,
			ClientLossMin:  u.LossBefore,
		}
		if test != nil && (round%evalEvery == 0 || round == cfg.Rounds-1) {
			loss, acc := ev.Eval(global, test)
			m.Evaluated = true
			m.TestLoss = loss
			m.TestAcc = acc * 100
			res.Accuracy = append(res.Accuracy, m.TestAcc)
			res.AccRounds = append(res.AccRounds, round)
		}
		res.Rounds = append(res.Rounds, m)
	}
	res.Weights = global
	return res
}

// BuildClients splits a dataset by an assignment's client index lists
// and wraps each shard in a Client (deterministic per seed and client
// ID). Shards are zero-copy views into d — client memory is O(total
// indices), not O(total samples) — so d must stay immutable while the
// clients train, which the run loop guarantees (training only reads).
func BuildClients(d *dataset.Dataset, indices [][]int, factory nn.Factory, seed uint64) []*Client {
	clients := make([]*Client, len(indices))
	for i, idx := range indices {
		clients[i] = NewClient(i, d.View(idx), factory, clientSeed(seed, i))
	}
	return clients
}
