package fl

import (
	"fmt"
	"math"

	"feddrl/internal/core"
	"feddrl/internal/engine"
	"feddrl/internal/mathx"
)

// Aggregator decides the impact factors used to merge client updates
// into the next global model (§3.1). Implementations receive the round's
// updates and return a convex combination weight per update.
type Aggregator interface {
	// Name identifies the method in results ("FedAvg", "FedProx", "FedDRL").
	Name() string
	// ImpactFactors returns one non-negative weight per update, summing
	// to 1.
	ImpactFactors(round int, updates []Update) []float64
}

// FedAvg is the sample-count-proportional aggregation of Eq. 1
// (McMahan et al. 2017): α_k = n_k / Σn.
type FedAvg struct{}

// Name returns "FedAvg".
func (FedAvg) Name() string { return "FedAvg" }

// ImpactFactors returns n_k/Σn per update.
func (FedAvg) ImpactFactors(round int, updates []Update) []float64 {
	if len(updates) == 0 {
		panic("fl: FedAvg with no updates")
	}
	total := 0
	for _, u := range updates {
		total += u.N
	}
	out := make([]float64, len(updates))
	if total == 0 {
		for i := range out {
			out[i] = 1 / float64(len(updates))
		}
		return out
	}
	for i, u := range updates {
		out[i] = float64(u.N) / float64(total)
	}
	return out
}

// FedProx aggregates exactly like FedAvg — the method's difference is the
// client-side proximal term (Li et al. 2020), enabled via
// RunConfig.Local.ProxMu. A separate type keeps result labels honest.
type FedProx struct{ FedAvg }

// Name returns "FedProx".
func (FedProx) Name() string { return "FedProx" }

// FedDRL is the paper's contribution: impact factors produced by the
// deep-reinforcement-learning agent of internal/core (§3.3–3.4,
// Algorithm 2 lines 13–20). One pending (state, action) is kept per
// round; when the next round's losses arrive they complete the previous
// experience with the Eq. 7 reward, and the agent trains online.
type FedDRL struct {
	Agent *core.Agent
	// Explore enables action noise and stochastic impact factors. On for
	// training runs; experiments switch it off for frozen-policy replays.
	Explore bool
	// FedAvgPrior anchors the impact factors on the sample-count prior:
	// α = softmax(z + log n_k/Σn), so a zero action reproduces FedAvg and
	// the policy learns deviations. Essential at compressed round budgets
	// (the paper's 1000-round runs can learn the n_k dependence from
	// scratch via the state); ablated by bench_test.go. Default on.
	FedAvgPrior bool

	pendingState  []float64
	pendingAction []float64
	havePending   bool
}

// NewFedDRL wraps an agent as an aggregator with exploration and the
// FedAvg prior enabled.
func NewFedDRL(agent *core.Agent) *FedDRL {
	if agent == nil {
		panic("fl: NewFedDRL with nil agent")
	}
	return &FedDRL{Agent: agent, Explore: true, FedAvgPrior: true}
}

// Name returns "FedDRL".
func (*FedDRL) Name() string { return "FedDRL" }

// ImpactFactors implements Algorithm 2 lines 13–20: build the state from
// the updates, complete and store the previous round's experience, train
// the agent when the buffer is warm, then act and return softmaxed
// Gaussian impact factors.
//
// During buffer warmup ("while D is insufficient") the aggregator acts
// with the FedAvg behavior policy instead of the untrained network: the
// sample-count weights are encoded as the equivalent Gaussian action
// (z = log α gives softmax(z) = α), so the critic's first experiences
// describe a sensible aggregation instead of random noise. This is the
// standard DDPG warmup treatment and is recorded in DESIGN.md; it
// matters at compressed round budgets, where the paper's 200–300 rounds
// of early exploration are unavailable.
func (f *FedDRL) ImpactFactors(round int, updates []Update) []float64 {
	k := f.Agent.Config().K
	if len(updates) != k {
		panic(fmt.Sprintf("fl: FedDRL configured for K=%d but received %d updates", k, len(updates)))
	}
	lb := make([]float64, k)
	la := make([]float64, k)
	ns := make([]int, k)
	for i, u := range updates {
		lb[i], la[i], ns[i] = u.LossBefore, u.LossAfter, u.N
	}
	state := f.Agent.BuildState(lb, la, ns)

	if f.havePending {
		// The new global model's client losses l_b score last round's
		// action (Algorithm 2 line 17; reward per Eq. 7).
		r := f.Agent.Reward(lb)
		f.Agent.Observe(f.pendingState, f.pendingAction, r, state)
		f.Agent.Train()
	}

	var action, alpha []float64
	switch {
	case !f.Agent.ReadyToTrain() && f.FedAvgPrior:
		// Warmup under the prior parameterization: the zero action IS
		// FedAvg, so the stored experience is exactly consistent.
		alpha = (FedAvg{}).ImpactFactors(round, updates)
		action = make([]float64, 2*k)
	case !f.Agent.ReadyToTrain():
		alpha = (FedAvg{}).ImpactFactors(round, updates)
		action = behaviorAction(alpha, f.Agent.Config().Beta)
	case f.FedAvgPrior:
		action = f.Agent.Act(state, f.Explore)
		alpha = f.Agent.ImpactFactorsWithPrior(action, (FedAvg{}).ImpactFactors(round, updates), f.Explore)
	default:
		action = f.Agent.Act(state, f.Explore)
		alpha = f.Agent.ImpactFactors(action, f.Explore)
	}
	f.pendingState = state
	f.pendingAction = action
	f.havePending = true
	return alpha
}

// behaviorAction encodes a weight vector as the Gaussian action whose
// deterministic impact factors reproduce it: μ = log(α), σ at the Eq. 6
// bound.
func behaviorAction(alpha []float64, beta float64) []float64 {
	k := len(alpha)
	act := make([]float64, 2*k)
	for i, a := range alpha {
		if a < 1e-12 {
			a = 1e-12
		}
		act[i] = math.Log(a)
		act[k+i] = beta * math.Abs(act[i]) * 0.1
	}
	return act
}

// Aggregate computes the weighted model merge of Eq. 4 into a fresh
// vector: w ← Σ_k α_k·w_k. It panics unless the weights form a
// (near-)convex combination aligned with the updates, and unless every
// upload is finite — see AllFinite for the misuse-vs-fault split.
func Aggregate(updates []Update, alpha []float64) []float64 {
	return AggregateOn(updates, alpha, nil)
}

// AllFinite reports whether every element of v is a finite number (no
// NaN, no ±Inf).
//
// The aggregation entry points panic on non-finite uploads because a
// single poisoned coordinate contaminates the whole merged model, and a
// caller reaching Aggregate with one has skipped the screening it owns
// — library misuse. The run loops never trip that panic: their ingress
// gate (QuarantineConfig) treats a non-finite upload as a runtime fault
// from a diverging or malicious client, drops it from the cohort, and
// counts it in RoundMetrics.Quarantined.
func AllFinite(v []float64) bool {
	for _, x := range v {
		// x-x is 0 for finite x and NaN for NaN/±Inf: one branch per
		// element instead of two math.Is* calls.
		if x-x != x-x {
			return false
		}
	}
	return true
}

// AllFinite32 is the float32 twin of AllFinite.
func AllFinite32(v []float32) bool {
	for _, x := range v {
		if x-x != x-x {
			return false
		}
	}
	return true
}

// aggSegment is the column span each pool task merges in AggregateOn.
// Segmentation cannot change the result: every output element is the
// same k-ordered fold whichever segment it lands in.
const aggSegment = 8192

// AggregateOn is Aggregate executed segment-parallel on a worker pool
// (nil means sequential). Results are bit-identical to Aggregate.
// Under a saturated shared pool the segments enqueue for stealing like
// any nested job, so the merge stays parallel inside a busy grid.
func AggregateOn(updates []Update, alpha []float64, pool *engine.Pool) []float64 {
	if len(updates) == 0 || len(alpha) != len(updates) {
		panic(fmt.Sprintf("fl: Aggregate with %d updates and %d weights", len(updates), len(alpha)))
	}
	sum := 0.0
	for _, a := range alpha {
		if a < 0 {
			panic("fl: negative impact factor")
		}
		sum += a
	}
	if sum < 0.999 || sum > 1.001 {
		panic(fmt.Sprintf("fl: impact factors sum to %v, want 1", sum))
	}
	dim := len(updates[0].Weights)
	vecs := make([][]float64, len(updates))
	for i, u := range updates {
		if len(u.Weights) != dim {
			panic("fl: inconsistent weight vector lengths")
		}
		if !AllFinite(u.Weights) {
			panic(fmt.Sprintf("fl: non-finite weights in update %d (client %d); screen uploads with AllFinite or the run loop's quarantine gate", i, u.ClientID))
		}
		vecs[i] = u.Weights
	}
	out := make([]float64, dim)
	segs := (dim + aggSegment - 1) / aggSegment
	if pool == nil || segs <= 1 {
		// Sequential fast path: one kernel call, no per-segment slice
		// headers. Bit-identical to the segmented fold.
		mathx.WeightedSum(out, alpha, vecs)
		return out
	}
	// Segments are microsecond-scale axpy strips: publish them on the
	// fine scheduling class so idle lanes drain them before any coarse
	// grid cells pending in the same deques.
	pool.ForWorkerHinted(segs, engine.SizeFine, 0, func(_, s int) {
		lo := s * aggSegment
		hi := lo + aggSegment
		if hi > dim {
			hi = dim
		}
		sub := make([][]float64, len(vecs))
		for k, v := range vecs {
			sub[k] = v[lo:hi]
		}
		mathx.WeightedSum(out[lo:hi], alpha, sub)
	})
	return out
}
