package fl

import (
	"fmt"
	"math"
	"sort"

	"feddrl/internal/engine"
	"feddrl/internal/tensor"
)

// Merger is the server-side merge seam: it turns a cohort of client
// updates (plus the aggregator's impact factors) into the next global
// model directly. The Aggregator interface can only express convex
// impact factors, which is enough for FedAvg/FedProx/FedDRL but cannot
// express coordinate-wise median, trimmed mean, or Krum; Merger
// generalizes the final reduction while leaving the decision layer
// (ImpactFactors) untouched, so robust merges compose with every
// aggregator.
//
// Contract, shared by all implementations in this package:
//
//   - Merge returns a freshly allocated vector (callers may retain it
//     as the new global model) and must not mutate updates or alpha.
//   - The result is a pure function of (updates, alpha): bit-identical
//     for any pool width, including a nil pool. Parallel
//     implementations fan out over disjoint units (coordinate segments
//     or pairwise distances) and keep every per-unit fold sequential.
//   - Merge32 is the float32-mode twin over Update.Weights32; Merge
//     and Merge32 are never mixed within one run.
type Merger interface {
	Name() string
	// Merge produces the merged float64 vector. pool may be nil for a
	// sequential merge.
	Merge(updates []Update, alpha []float64, pool *engine.Pool) []float64
	// Merge32 is the float32 twin of Merge, reading Update.Weights32.
	Merge32(updates []Update, alpha []float64, pool *engine.Pool) []float32
}

// mergeP dispatches the merge on the run's precision through an
// optional Merger. A nil merger resolves to WeightedMerge, whose
// output is byte-identical to the historical aggregateP path, so the
// zero value of RunConfig.Merger changes nothing.
func mergeP(prec Precision, m Merger, updates []Update, alpha []float64, pool *engine.Pool) []float64 {
	if m == nil {
		m = WeightedMerge{}
	}
	if prec == F32 {
		return tensor.Widen(nil, m.Merge32(updates, alpha, pool))
	}
	return m.Merge(updates, alpha, pool)
}

// WeightedMerge is the default impact-factor merger: the convex
// combination Σ_k α_k·w_k computed by AggregateOn/AggregateOn32. It is
// byte-identical to calling those functions directly, which keeps every
// historical run (and every cached experiment cell) valid.
type WeightedMerge struct{}

// Name implements Merger.
func (WeightedMerge) Name() string { return "weighted" }

// Merge implements Merger by delegating to AggregateOn.
func (WeightedMerge) Merge(updates []Update, alpha []float64, pool *engine.Pool) []float64 {
	return AggregateOn(updates, alpha, pool)
}

// Merge32 implements Merger by delegating to AggregateOn32.
func (WeightedMerge) Merge32(updates []Update, alpha []float64, pool *engine.Pool) []float32 {
	return AggregateOn32(updates, alpha, pool)
}

// Median merges by coordinate-wise median, ignoring impact factors.
// Robust to up to ⌈k/2⌉-1 arbitrary (Byzantine) updates per
// coordinate. Even cohort sizes take the mean of the two middle
// values.
type Median struct{}

// Name implements Merger.
func (Median) Name() string { return "median" }

// Merge implements Merger.
func (Median) Merge(updates []Update, alpha []float64, pool *engine.Pool) []float64 {
	dim := mergeDims(updates, alpha)
	out := make([]float64, dim)
	coordMerge(updates, out, pool, func(vals []float64) float64 {
		sort.Float64s(vals)
		k := len(vals)
		if k%2 == 1 {
			return vals[k/2]
		}
		return (vals[k/2-1] + vals[k/2]) / 2
	})
	return out
}

// Merge32 implements Merger.
func (Median) Merge32(updates []Update, alpha []float64, pool *engine.Pool) []float32 {
	dim := mergeDims32(updates, alpha)
	out := make([]float32, dim)
	coordMerge32(updates, out, pool, func(vals []float32) float32 {
		sortFloat32(vals)
		k := len(vals)
		if k%2 == 1 {
			return vals[k/2]
		}
		return (vals[k/2-1] + vals[k/2]) / 2
	})
	return out
}

// TrimmedMean merges by coordinate-wise β-trimmed mean: per
// coordinate, the k values are sorted, the ⌊β·k⌋ smallest and largest
// are discarded, and the remainder is averaged (summed in ascending
// order, so the result is independent of update order and pool width).
// Beta is clamped so at least one value survives the trim.
type TrimmedMean struct {
	// Beta is the trim fraction per tail, typically the expected
	// malicious fraction. Values outside [0, 0.5) are clamped.
	Beta float64
}

// Name implements Merger.
func (t TrimmedMean) Name() string { return "trimmed" }

// trimCount resolves the number of values dropped from each tail of a
// sorted k-cohort.
func (t TrimmedMean) trimCount(k int) int {
	b := t.Beta
	if b < 0 || math.IsNaN(b) {
		b = 0
	}
	n := int(b * float64(k))
	if 2*n >= k {
		n = (k - 1) / 2
	}
	return n
}

// Merge implements Merger.
func (t TrimmedMean) Merge(updates []Update, alpha []float64, pool *engine.Pool) []float64 {
	dim := mergeDims(updates, alpha)
	out := make([]float64, dim)
	coordMerge(updates, out, pool, func(vals []float64) float64 {
		sort.Float64s(vals)
		n := t.trimCount(len(vals))
		kept := vals[n : len(vals)-n]
		var sum float64
		for _, v := range kept {
			sum += v
		}
		return sum / float64(len(kept))
	})
	return out
}

// Merge32 implements Merger.
func (t TrimmedMean) Merge32(updates []Update, alpha []float64, pool *engine.Pool) []float32 {
	dim := mergeDims32(updates, alpha)
	out := make([]float32, dim)
	coordMerge32(updates, out, pool, func(vals []float32) float32 {
		sortFloat32(vals)
		n := t.trimCount(len(vals))
		kept := vals[n : len(vals)-n]
		var sum float32
		for _, v := range kept {
			sum += v
		}
		return sum / float32(len(kept))
	})
	return out
}

// Krum merges by selecting the single update whose summed squared
// distance to its n−f−2 nearest neighbours is smallest (Blanchard et
// al., NeurIPS 2017) and returning a copy of it. Selection needs
// n ≥ f+3 for the textbook guarantee; smaller cohorts clamp the
// neighbour count to at least 1. Ties break toward the lowest client
// index, so the choice is deterministic.
type Krum struct {
	// F is the number of Byzantine updates the selection must
	// tolerate.
	F int
}

// Name implements Merger.
func (k Krum) Name() string { return "krum" }

// krumPick returns the index of the selected update given the pairwise
// squared distances d2 (flattened upper triangle, see pairIndex).
func (k Krum) krumPick(n int, d2 []float64) int {
	neighbors := n - k.F - 2
	if neighbors < 1 {
		neighbors = 1
	}
	if neighbors > n-1 {
		neighbors = n - 1
	}
	best, bestScore := 0, math.Inf(1)
	row := make([]float64, 0, n-1)
	for i := 0; i < n; i++ {
		row = row[:0]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			row = append(row, d2[pairIndex(n, i, j)])
		}
		sort.Float64s(row)
		var score float64
		for _, d := range row[:neighbors] {
			score += d
		}
		if score < bestScore {
			best, bestScore = i, score
		}
	}
	return best
}

// pairIndex maps an unordered pair {i,j}, i≠j, into the flattened
// upper-triangle distance buffer.
func pairIndex(n, i, j int) int {
	if i > j {
		i, j = j, i
	}
	// offset of row i in the packed triangle, plus the column offset.
	return i*n - i*(i+1)/2 + (j - i - 1)
}

// Merge implements Merger.
func (k Krum) Merge(updates []Update, alpha []float64, pool *engine.Pool) []float64 {
	n := len(mergeVecs(updates, alpha))
	d2 := krumDistances(updates, pool, func(i, j int) float64 {
		return sqDist(updates[i].Weights, updates[j].Weights)
	})
	pick := k.krumPick(n, d2)
	out := make([]float64, len(updates[pick].Weights))
	copy(out, updates[pick].Weights)
	return out
}

// Merge32 implements Merger.
func (k Krum) Merge32(updates []Update, alpha []float64, pool *engine.Pool) []float32 {
	n := len(mergeVecs32(updates, alpha))
	d2 := krumDistances(updates, pool, func(i, j int) float64 {
		return sqDist32(updates[i].Weights32, updates[j].Weights32)
	})
	pick := k.krumPick(n, d2)
	out := make([]float32, len(updates[pick].Weights32))
	copy(out, updates[pick].Weights32)
	return out
}

// krumDistances fills the flattened upper triangle of pairwise squared
// distances. Each pair is one pool task with a sequential fold, so the
// buffer is bit-identical at any pool width.
func krumDistances(updates []Update, pool *engine.Pool, dist func(i, j int) float64) []float64 {
	n := len(updates)
	d2 := make([]float64, n*(n-1)/2)
	if pool == nil || len(d2) < 2 {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				d2[pairIndex(n, i, j)] = dist(i, j)
			}
		}
		return d2
	}
	pool.ForWorkerHinted(len(d2), engine.SizeCoarse, 0, func(_, p int) {
		i, j := pairFromIndex(n, p)
		d2[p] = dist(i, j)
	})
	return d2
}

// pairFromIndex is the inverse of pairIndex: flat triangle offset back
// to the ordered pair (i, j), i < j.
func pairFromIndex(n, p int) (int, int) {
	i := 0
	for rowLen := n - 1; p >= rowLen; rowLen-- {
		p -= rowLen
		i++
	}
	return i, i + 1 + p
}

// sqDist is the squared L2 distance between two equal-length vectors,
// folded sequentially.
func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// sqDist32 accumulates the squared distance of two f32 vectors in f64,
// matching the package convention that f32 state may use f64 compute
// as long as results are deterministic.
func sqDist32(a, b []float32) float64 {
	var s float64
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s
}

// mergeVecs validates a float64 merge cohort (same checks as
// AggregateOn minus the convexity constraint, which order-statistic
// mergers do not require) and returns the weight vectors.
func mergeVecs(updates []Update, alpha []float64) [][]float64 {
	if len(updates) == 0 {
		panic("fl: merge of zero updates")
	}
	if len(alpha) != len(updates) {
		panic(fmt.Sprintf("fl: %d impact factors for %d updates", len(alpha), len(updates)))
	}
	vecs := make([][]float64, len(updates))
	dim := len(updates[0].Weights)
	for i, u := range updates {
		if len(u.Weights) != dim {
			panic(fmt.Sprintf("fl: update %d has dim %d, want %d", i, len(u.Weights), dim))
		}
		vecs[i] = u.Weights
	}
	return vecs
}

// mergeDims validates the cohort and returns the model dimension.
func mergeDims(updates []Update, alpha []float64) int {
	vecs := mergeVecs(updates, alpha)
	return len(vecs[0])
}

// mergeVecs32 is the float32 twin of mergeVecs.
func mergeVecs32(updates []Update, alpha []float64) [][]float32 {
	if len(updates) == 0 {
		panic("fl: merge of zero updates")
	}
	if len(alpha) != len(updates) {
		panic(fmt.Sprintf("fl: %d impact factors for %d updates", len(alpha), len(updates)))
	}
	vecs := make([][]float32, len(updates))
	dim := len(updates[0].Weights32)
	for i, u := range updates {
		if len(u.Weights32) != dim {
			panic(fmt.Sprintf("fl: update %d has dim %d, want %d", i, len(u.Weights32), dim))
		}
		vecs[i] = u.Weights32
	}
	return vecs
}

// mergeDims32 validates the f32 cohort and returns the model dimension.
func mergeDims32(updates []Update, alpha []float64) int {
	vecs := mergeVecs32(updates, alpha)
	return len(vecs[0])
}

// coordMerge fans a per-coordinate order statistic out over aggSegment
// coordinate spans. Each coordinate gathers its k values into a
// worker-local scratch and reduces them with stat; coordinates are
// independent, so any pool width produces identical bytes.
func coordMerge(updates []Update, out []float64, pool *engine.Pool, stat func(vals []float64) float64) {
	k := len(updates)
	dim := len(out)
	seg := func(lo, hi int, vals []float64) {
		for c := lo; c < hi; c++ {
			for i, u := range updates {
				vals[i] = u.Weights[c]
			}
			out[c] = stat(vals)
		}
	}
	segs := (dim + aggSegment - 1) / aggSegment
	if pool == nil || segs < 2 {
		seg(0, dim, make([]float64, k))
		return
	}
	pool.ForWorkerHinted(segs, engine.SizeFine, 0, func(_, s int) {
		lo := s * aggSegment
		hi := lo + aggSegment
		if hi > dim {
			hi = dim
		}
		seg(lo, hi, make([]float64, k))
	})
}

// coordMerge32 is the float32 twin of coordMerge.
func coordMerge32(updates []Update, out []float32, pool *engine.Pool, stat func(vals []float32) float32) {
	k := len(updates)
	dim := len(out)
	seg := func(lo, hi int, vals []float32) {
		for c := lo; c < hi; c++ {
			for i, u := range updates {
				vals[i] = u.Weights32[c]
			}
			out[c] = stat(vals)
		}
	}
	segs := (dim + aggSegment - 1) / aggSegment
	if pool == nil || segs < 2 {
		seg(0, dim, make([]float32, k))
		return
	}
	pool.ForWorkerHinted(segs, engine.SizeFine, 0, func(_, s int) {
		lo := s * aggSegment
		hi := lo + aggSegment
		if hi > dim {
			hi = dim
		}
		seg(lo, hi, make([]float32, k))
	})
}

// sortFloat32 sorts ascending. NaNs are kept deterministic by ordering
// them before every number (mirroring sort.Float64s' NaN handling).
func sortFloat32(v []float32) {
	sort.Slice(v, func(i, j int) bool {
		a, b := v[i], v[j]
		return a < b || (isNaN32(a) && !isNaN32(b))
	})
}

// isNaN32 avoids a float64 conversion in the sort hot path.
func isNaN32(f float32) bool { return f != f }

// ParseMerger resolves a CLI merger name. The empty string and
// "weighted" both select the default impact-factor merge ("" maps to a
// nil Merger so the zero-value configuration stays byte-identical to
// historical runs). frac is the expected malicious fraction and k the
// merge cohort size; together they size Krum's tolerance f =
// max(1, round(frac·k)).
func ParseMerger(name string, frac float64, k int) (Merger, error) {
	switch name {
	case "":
		return nil, nil
	case "weighted":
		return WeightedMerge{}, nil
	case "median":
		return Median{}, nil
	case "trimmed":
		// β tracks the declared malicious fraction with a sampling
		// margin: membership is a per-identity Bernoulli trait, so a
		// k-cohort's malicious count fluctuates around frac·k and a
		// trim sized exactly at frac loses to the variance. Floor 0.2
		// keeps the benign default; cap 0.45 stays below the
		// half-cohort clamp.
		b := frac + 0.1
		if b < 0.2 {
			b = 0.2
		}
		if b > 0.45 {
			b = 0.45
		}
		return TrimmedMean{Beta: b}, nil
	case "krum":
		f := int(math.Round(frac * float64(k)))
		if f < 1 {
			f = 1
		}
		return Krum{F: f}, nil
	}
	return nil, fmt.Errorf("fl: unknown merger %q (valid: weighted, median, trimmed, krum)", name)
}
