package fl

import "feddrl/internal/serialize"

// Communication accounting (§5.3): FedDRL's only communication overhead
// versus FedAvg is "some extra floating point numbers for the inference
// loss". This file models the synchronous round's payload sizes so the
// claim can be measured rather than asserted.

// MetadataSizer is an optional Aggregator extension reporting the extra
// per-client uplink metadata (bytes) the method requires beyond the
// FedAvg baseline (weights + sample count).
type MetadataSizer interface {
	ExtraUplinkBytes() int
}

// ExtraUplinkBytes reports FedDRL's uplink overhead: the two inference
// losses l_b and l_a (two float64s) per client per round.
func (*FedDRL) ExtraUplinkBytes() int { return 16 }

// CommRound models one synchronous round's traffic.
type CommRound struct {
	// DownlinkBytes is the server→clients broadcast: K copies of the
	// global weight vector.
	DownlinkBytes int
	// UplinkBytes is the clients→server transfer: K weight vectors plus
	// per-client metadata (sample count, and any aggregator extras).
	UplinkBytes int
	// OverheadBytes is the part of UplinkBytes attributable to the
	// aggregation method beyond the FedAvg baseline.
	OverheadBytes int
}

// CommPerRound computes the round traffic for K participants exchanging
// weight vectors of the given length under the given aggregator.
func CommPerRound(agg Aggregator, k, weightLen int) CommRound {
	wire := serialize.VectorWireSize(weightLen)
	const countBytes = 8 // n_k as a fixed-width integer
	extra := 0
	if ms, ok := agg.(MetadataSizer); ok {
		extra = ms.ExtraUplinkBytes()
	}
	return CommRound{
		DownlinkBytes: k * wire,
		UplinkBytes:   k * (wire + countBytes + extra),
		OverheadBytes: k * extra,
	}
}

// OverheadFraction returns the method's uplink overhead relative to the
// FedAvg baseline for the same round (0 for FedAvg itself).
func (c CommRound) OverheadFraction() float64 {
	base := c.UplinkBytes - c.OverheadBytes
	if base == 0 {
		return 0
	}
	return float64(c.OverheadBytes) / float64(base)
}
