package fl

import "feddrl/internal/serialize"

// Communication accounting (§5.3): FedDRL's only communication overhead
// versus FedAvg is "some extra floating point numbers for the inference
// loss". This file models the round payload sizes — synchronous full
// rounds and asynchronous partial rounds — so the claim can be measured
// rather than asserted.

// MetadataSizer is an optional Aggregator extension reporting the extra
// per-client uplink metadata (bytes) the method requires beyond the
// FedAvg baseline (weights + sample count).
type MetadataSizer interface {
	ExtraUplinkBytes() int
}

// ExtraUplinkBytes reports FedDRL's uplink overhead: the two inference
// losses l_b and l_a (two float64s) per client per round.
func (*FedDRL) ExtraUplinkBytes() int { return 16 }

// AsyncMetaBytes is the per-update staleness metadata an asynchronous
// uplink carries beyond the synchronous payload: the server version the
// update was trained against (a fixed-width integer), which the server
// needs to compute the update's age for staleness-weighted merging.
const AsyncMetaBytes = 8

// CommRound models one round's traffic. For a synchronous round the
// dispatched and arrived cohorts coincide; for an asynchronous partial
// round they differ — bytes are charged per dispatched broadcast on the
// downlink and per *arrived* update on the uplink (a dropped client's
// upload never completes, but its broadcast was still sent).
type CommRound struct {
	// DownlinkBytes is the server→clients broadcast: one copy of the
	// global weight vector per dispatched client.
	DownlinkBytes int
	// UplinkBytes is the clients→server transfer: one weight vector plus
	// per-client metadata (sample count, any aggregator extras, and
	// staleness metadata for async rounds) per arrived update.
	UplinkBytes int
	// OverheadBytes is the part of UplinkBytes attributable to the
	// aggregation method beyond the FedAvg baseline (staleness metadata
	// is substrate overhead, not method overhead, and is excluded).
	OverheadBytes int
}

// weightWireSize returns the encoded byte size of one weight vector
// under the run's precision: 8 bytes per weight for F64, 4 for F32
// (the half-width encoding of serialize.WriteVector32).
func weightWireSize(prec Precision, weightLen int) int {
	if prec == F32 {
		return serialize.VectorWireSize32(weightLen)
	}
	return serialize.VectorWireSize(weightLen)
}

// CommPerRound computes one synchronous round's traffic for K
// participants exchanging full-width weight vectors under the given
// aggregator.
func CommPerRound(agg Aggregator, k, weightLen int) CommRound {
	return CommPerRoundP(agg, k, weightLen, F64)
}

// CommPerRoundP is CommPerRound with an explicit precision: F32 rounds
// move half-width weight payloads in both directions (metadata stays
// fixed-width), so their traffic is just under half the F64 round's.
func CommPerRoundP(agg Aggregator, k, weightLen int, prec Precision) CommRound {
	wire := weightWireSize(prec, weightLen)
	const countBytes = 8 // n_k as a fixed-width integer
	extra := 0
	if ms, ok := agg.(MetadataSizer); ok {
		extra = ms.ExtraUplinkBytes()
	}
	return CommRound{
		DownlinkBytes: k * wire,
		UplinkBytes:   k * (wire + countBytes + extra),
		OverheadBytes: k * extra,
	}
}

// CommAsyncRound computes one asynchronous aggregation step's traffic:
// dispatched broadcasts on the downlink, arrived updates (each carrying
// the synchronous payload plus AsyncMetaBytes of staleness metadata) on
// the uplink. arrived never exceeds dispatched in a real trace; the
// degenerate trace (arrived == dispatched) differs from CommPerRound by
// exactly arrived×AsyncMetaBytes of uplink.
func CommAsyncRound(agg Aggregator, dispatched, arrived, weightLen int) CommRound {
	return CommAsyncRoundP(agg, dispatched, arrived, weightLen, F64)
}

// CommAsyncRoundP is CommAsyncRound with an explicit precision; the
// staleness metadata stays fixed-width, only the weight payload narrows
// under F32.
func CommAsyncRoundP(agg Aggregator, dispatched, arrived, weightLen int, prec Precision) CommRound {
	if arrived > dispatched {
		panic("fl: CommAsyncRound with more arrivals than dispatches")
	}
	wire := weightWireSize(prec, weightLen)
	const countBytes = 8
	extra := 0
	if ms, ok := agg.(MetadataSizer); ok {
		extra = ms.ExtraUplinkBytes()
	}
	return CommRound{
		DownlinkBytes: dispatched * wire,
		UplinkBytes:   arrived * (wire + countBytes + extra + AsyncMetaBytes),
		OverheadBytes: arrived * extra,
	}
}

// OverheadFraction returns the method's uplink overhead relative to the
// FedAvg baseline for the same round (0 for FedAvg itself).
//
// The degenerate round is explicit: a round with no arrived updates has
// no baseline to compare against (an async partial round where every
// update was dropped, or k == 0), so the fraction is defined as 0 —
// "no traffic, no overhead" — rather than NaN from a 0/0 division.
func (c CommRound) OverheadFraction() float64 {
	base := c.UplinkBytes - c.OverheadBytes
	if base == 0 {
		return 0
	}
	return float64(c.OverheadBytes) / float64(base)
}
