package fl

import (
	"fmt"

	"feddrl/internal/dataset"
	"feddrl/internal/rng"
	"feddrl/internal/tensor"
)

// Byzantine fault injection. An AttackModel is a seeded, replayable
// input to the round engines, mirroring how the arrival trace models
// stragglers and dropout: a deterministic, identity-stable subset of
// clients is malicious, and their uploads are corrupted by a pure
// function of (attack seed, round, client id). That keying makes
// corrupted runs bit-identical across worker counts and across the
// eager/virtual/async engines — corruption happens inside the training
// fan-out, but each corrupted update depends only on its own
// coordinates, never on scheduling order.
//
// The zero value (RunConfig.Attack == nil) is bit-for-bit the benign
// path: no membership draws, no extra RNG streams, no reads of the
// upload vectors.

// attackSalt decorrelates the default attack seed from the run seed
// (RunConfig.AttackSeed == 0 resolves to Seed ^ attackSalt), mirroring
// asyncArrivalSalt for arrival traces.
const attackSalt uint64 = 0x9d28f7c14b36e2d1

// attackTraitSalt keys the identity-membership stream: whether client
// id is malicious is a per-identity trait, stable across rounds and
// independent of the per-round corruption streams.
const attackTraitSalt uint64 = 0x3c6ef372fe94f82b

// attackCollusionSalt keys the shared per-round direction colluding
// attackers agree on.
const attackCollusionSalt uint64 = 0x1f83d9abfb41bd6b

// AttackModel corrupts the uploads of a deterministic subset of client
// identities. Implementations must keep Corrupt a pure function of
// (round, id, seed, global, honest update) — no internal state — so
// that runs replay bitwise at any worker count.
type AttackModel interface {
	Name() string
	// Fraction is the malicious fraction of client identities; the
	// engines draw membership per identity from the resolved attack
	// seed, so the same fraction marks the same clients for every
	// attack type.
	Fraction() float64
	// Corrupt rewrites malicious client id's round-round upload in
	// place. seed is the run's resolved attack seed; implementations
	// needing randomness derive it as
	// rng.New(rng.MixSeed(seed, uint64(round), uint64(id))) (or a
	// round-only stream for coordinated attacks). global is the
	// broadcast model the client trained from; it must not be
	// modified.
	Corrupt(round, id int, seed uint64, global []float64, u *Update)
}

// DataAttack is implemented by attacks that poison a client's local
// training data instead of (or in addition to) its upload. The engines
// wrap each malicious client's shard once per cohort, before local
// training, and unwrap it afterwards.
type DataAttack interface {
	// CorruptData returns the poisoned view of a malicious client's
	// shard. It must not modify d.
	CorruptData(d dataset.Data) dataset.Data
}

// ByzantineSet carries the malicious-fraction knob shared by every
// attack; embed it to satisfy the Fraction method.
type ByzantineSet struct {
	// Frac is the fraction of client identities that behave
	// maliciously; 0 disables the attack.
	Frac float64
}

// Fraction implements part of AttackModel.
func (b ByzantineSet) Fraction() float64 { return b.Frac }

// corruptWeights applies an in-place f64 rewrite to whichever width
// the update carries. F32 uploads are widened (exact), corrupted in
// f64, and rounded back once, so both precision modes share one attack
// definition and stay deterministic.
func corruptWeights(u *Update, f func(w []float64)) {
	if u.Weights32 != nil {
		w := tensor.Widen(nil, u.Weights32)
		f(w)
		u.Weights32 = tensor.Quantize(u.Weights32[:0], w)
		return
	}
	f(u.Weights)
}

// SignFlip uploads the negated (optionally rescaled) model: w ←
// −Scale·w. The classic untargeted attack — under plain weighted
// averaging a 20% sign-flip cohort cancels most of the benign
// progress.
type SignFlip struct {
	ByzantineSet
	// Scale rescales the flipped model; 0 means 1 (pure negation).
	Scale float64
}

// Name implements AttackModel.
func (SignFlip) Name() string { return "signflip" }

// Corrupt implements AttackModel.
func (a SignFlip) Corrupt(round, id int, seed uint64, global []float64, u *Update) {
	s := a.Scale
	if s == 0 {
		s = 1
	}
	corruptWeights(u, func(w []float64) {
		for i := range w {
			w[i] = -s * w[i]
		}
	})
}

// GaussianNoise adds i.i.d. N(0, Std²) noise to every coordinate of
// the honest upload, drawn from the per-(round, client) stream.
type GaussianNoise struct {
	ByzantineSet
	// Std is the noise scale; 0 means 1.
	Std float64
}

// Name implements AttackModel.
func (GaussianNoise) Name() string { return "gauss" }

// Corrupt implements AttackModel.
func (a GaussianNoise) Corrupt(round, id int, seed uint64, global []float64, u *Update) {
	std := a.Std
	if std == 0 {
		std = 1
	}
	r := rng.New(rng.MixSeed(seed, uint64(round), uint64(id)))
	corruptWeights(u, func(w []float64) {
		for i := range w {
			w[i] += std * r.Norm()
		}
	})
}

// ModelReplacement boosts the attacker's deviation from the broadcast
// model: w ← g + Boost·(w − g). With a large Boost a single selected
// attacker dominates a weighted mean (the "scaled model replacement"
// of Bagdasaryan et al.), while order-statistic mergers discard it.
type ModelReplacement struct {
	ByzantineSet
	// Boost is the deviation multiplier; 0 means 10.
	Boost float64
}

// Name implements AttackModel.
func (ModelReplacement) Name() string { return "replace" }

// Corrupt implements AttackModel.
func (a ModelReplacement) Corrupt(round, id int, seed uint64, global []float64, u *Update) {
	boost := a.Boost
	if boost == 0 {
		boost = 10
	}
	corruptWeights(u, func(w []float64) {
		for i := range w {
			w[i] = global[i] + boost*(w[i]-global[i])
		}
	})
}

// Colluding makes every malicious client upload the same poisoned
// model g + d, where the direction d is drawn once per round from a
// round-keyed stream all colluders share. Collusion defeats Krum's
// outlier scoring faster than independent noise because the malicious
// uploads corroborate each other.
type Colluding struct {
	ByzantineSet
	// Std scales the shared direction; 0 means 1.
	Std float64
}

// Name implements AttackModel.
func (Colluding) Name() string { return "collude" }

// Corrupt implements AttackModel.
func (a Colluding) Corrupt(round, id int, seed uint64, global []float64, u *Update) {
	std := a.Std
	if std == 0 {
		std = 1
	}
	// Round-keyed (not client-keyed): every colluder re-derives the
	// identical direction, so their uploads agree byte for byte.
	r := rng.New(rng.MixSeed(seed, attackCollusionSalt, uint64(round)))
	corruptWeights(u, func(w []float64) {
		for i := range w {
			w[i] = global[i] + std*r.Norm()
		}
	})
}

// LabelFlip poisons the malicious client's shard at the dataset layer
// (label y → Classes−1−y) and lets local training proceed honestly on
// the flipped data; the upload itself is not touched. The resulting
// gradient poison is subtler than weight-space attacks and survives
// norm-based quarantine.
type LabelFlip struct {
	ByzantineSet
}

// Name implements AttackModel.
func (LabelFlip) Name() string { return "labelflip" }

// Corrupt implements AttackModel as a no-op: the poison enters through
// CorruptData before training.
func (LabelFlip) Corrupt(round, id int, seed uint64, global []float64, u *Update) {}

// CorruptData implements DataAttack.
func (LabelFlip) CorruptData(d dataset.Data) dataset.Data {
	return dataset.FlipLabels(d)
}

// attackRuntime is the engines' resolved view of a configured attack:
// the model, its optional data-poisoning face, and the resolved seed.
// A nil *attackRuntime is the benign path.
type attackRuntime struct {
	model AttackModel
	data  DataAttack
	seed  uint64
}

// newAttackRuntime resolves RunConfig's attack fields. attackSeed 0
// derives the stream from the run seed, so distinct runs get distinct
// attacks by default while explicit seeds allow replaying one attack
// trace against many run seeds.
func newAttackRuntime(model AttackModel, attackSeed, runSeed uint64) *attackRuntime {
	if model == nil {
		return nil
	}
	seed := attackSeed
	if seed == 0 {
		seed = runSeed ^ attackSalt
	}
	da, _ := model.(DataAttack)
	return &attackRuntime{model: model, data: da, seed: seed}
}

// malicious reports whether client identity id is in the attack set: a
// per-identity trait drawn from the resolved seed, stable across
// rounds and engines.
func (a *attackRuntime) malicious(id int) bool {
	if a == nil {
		return false
	}
	frac := a.model.Fraction()
	if frac <= 0 {
		return false
	}
	return rng.New(rng.MixSeed(a.seed, attackTraitSalt, uint64(id))).Float64() < frac
}

// corrupt applies the weight-space attack to one malicious upload.
func (a *attackRuntime) corrupt(round int, global []float64, u *Update) {
	a.model.Corrupt(round, u.ClientID, a.seed, global, u)
}

// ParseAttack resolves a CLI attack name and malicious fraction. The
// empty string and "none" mean no attack (nil model, the byte-identical
// benign path).
func ParseAttack(name string, frac float64) (AttackModel, error) {
	if frac < 0 || frac > 1 {
		return nil, fmt.Errorf("fl: attack fraction %v outside [0, 1]", frac)
	}
	set := ByzantineSet{Frac: frac}
	switch name {
	case "", "none":
		return nil, nil
	case "signflip":
		return SignFlip{ByzantineSet: set}, nil
	case "gauss":
		return GaussianNoise{ByzantineSet: set}, nil
	case "replace":
		return ModelReplacement{ByzantineSet: set}, nil
	case "collude":
		return Colluding{ByzantineSet: set}, nil
	case "labelflip":
		return LabelFlip{ByzantineSet: set}, nil
	}
	return nil, fmt.Errorf("fl: unknown attack %q (valid: none, signflip, gauss, replace, collude, labelflip)", name)
}
