package fl

import (
	"math"
	"testing"

	"feddrl/internal/core"
)

func warmAgentConfig(k int) core.Config {
	cfg := core.DefaultConfig(k)
	cfg.Hidden = 8
	cfg.BatchSize = 4
	cfg.WarmupExperiences = 3
	cfg.UpdatesPerRound = 1
	cfg.BufferCap = 64
	return cfg
}

func fakeUpdates(k, dim int) []Update {
	ups := make([]Update, k)
	for i := range ups {
		w := make([]float64, dim)
		for j := range w {
			w[j] = float64(i)
		}
		ups[i] = Update{ClientID: i, N: (i + 1) * 10, LossBefore: 1 + 0.1*float64(i), LossAfter: 0.5, Weights: w}
	}
	return ups
}

func TestFedDRLWarmupUsesFedAvgWeights(t *testing.T) {
	agg := NewFedDRL(core.NewAgent(warmAgentConfig(4)))
	ups := fakeUpdates(4, 3)
	want := (FedAvg{}).ImpactFactors(0, ups)
	got := agg.ImpactFactors(0, ups)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("warmup weights %v, want FedAvg %v", got, want)
		}
	}
}

func TestFedDRLWarmupWithoutPrior(t *testing.T) {
	agg := NewFedDRL(core.NewAgent(warmAgentConfig(4)))
	agg.FedAvgPrior = false
	ups := fakeUpdates(4, 3)
	want := (FedAvg{}).ImpactFactors(0, ups)
	got := agg.ImpactFactors(0, ups)
	// Warmup still uses the FedAvg behavior policy even without the
	// prior parameterization.
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("warmup weights %v, want FedAvg %v", got, want)
		}
	}
}

func TestFedDRLPostWarmupActsWithPolicy(t *testing.T) {
	cfg := warmAgentConfig(4)
	agent := core.NewAgent(cfg)
	agg := NewFedDRL(agent)
	agg.Explore = false // deterministic for the test
	ups := fakeUpdates(4, 3)
	// Drive past warmup: each round (after the first) stores one
	// experience.
	var alpha []float64
	for round := 0; round < cfg.WarmupExperiences+3; round++ {
		alpha = agg.ImpactFactors(round, ups)
	}
	if !agent.ReadyToTrain() {
		t.Fatal("agent never reached warmup")
	}
	sum := 0.0
	for _, v := range alpha {
		if v < 0 {
			t.Fatalf("negative post-warmup weight: %v", alpha)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("post-warmup weights sum to %v", sum)
	}
}

func TestFedDRLPriorAnchorsNearFedAvg(t *testing.T) {
	// With a freshly initialized (near-zero-output) policy, the
	// prior-anchored weights should stay close to FedAvg — the residual
	// design's whole point.
	cfg := warmAgentConfig(4)
	agent := core.NewAgent(cfg)
	agg := NewFedDRL(agent)
	agg.Explore = false
	ups := fakeUpdates(4, 3)
	for round := 0; round < cfg.WarmupExperiences+2; round++ {
		agg.ImpactFactors(round, ups)
	}
	got := agg.ImpactFactors(99, ups)
	want := (FedAvg{}).ImpactFactors(99, ups)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 0.15 {
			t.Fatalf("prior-anchored weights far from FedAvg: %v vs %v", got, want)
		}
	}
}
