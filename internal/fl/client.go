// Package fl implements the synchronous federated-learning simulator of
// the paper (§2.1, §3.2, Algorithm 2): clients performing local SGD on
// their private shards, a server aggregating flat weight vectors through
// a pluggable Aggregator (FedAvg's Eq. 1, FedProx, or FedDRL's Eq. 4),
// the SingleSet centralized baseline, and per-round metrics (top-1 test
// accuracy, per-client inference-loss statistics, and the server-side
// timing split of Fig. 9).
package fl

import (
	"fmt"

	"feddrl/internal/dataset"
	"feddrl/internal/nn"
	"feddrl/internal/rng"
	"feddrl/internal/tensor"
)

// LocalConfig is the client-side solver configuration. The paper uses
// SGD with E = 5 local epochs, batch size b = 10 and learning rate 0.01
// for every experiment (§4.1.2); FedProx clients add ProxMu = 0.01.
type LocalConfig struct {
	Epochs int
	Batch  int
	LR     float64
	// ProxMu enables the FedProx proximal term μ/2·‖w − w_global‖².
	ProxMu float64
}

// Validate panics on an inconsistent local configuration.
func (lc LocalConfig) Validate() {
	if lc.Epochs <= 0 || lc.Batch <= 0 || lc.LR <= 0 || lc.ProxMu < 0 {
		panic(fmt.Sprintf("fl: invalid local config %+v", lc))
	}
}

// Update is the tuple p_k^t a client uploads after local training
// (Algorithm 2 line 11): the global-model inference loss l_b, the local
// model's post-training loss l_a, the sample count n_k and the trained
// weights w_k^t.
type Update struct {
	ClientID   int
	N          int
	LossBefore float64
	LossAfter  float64
	Weights    []float64
}

// Client owns a private shard and a reusable model instance. Clients are
// deterministic: all randomness flows from the seed given at
// construction, so parallel and sequential execution produce identical
// results.
//
// Each client also owns a scratch arena (nn.Scratch), its loss scratch
// and its minibatch/permutation buffers, so across rounds of a grid
// cell the warm train steps and inference passes reuse the same memory
// instead of re-allocating every activation.
type Client struct {
	ID   int
	Data *dataset.Dataset

	model   *nn.Network
	r       *rng.RNG
	scratch *nn.Scratch
	ce      *nn.CrossEntropy
	perm    []int
	xb      *tensor.Tensor
	yb      []int
}

// NewClient builds a client over its shard. factory instantiates the
// globally agreed model architecture.
func NewClient(id int, data *dataset.Dataset, factory nn.Factory, seed uint64) *Client {
	if data == nil {
		panic("fl: NewClient with nil data")
	}
	return &Client{
		ID:      id,
		Data:    data,
		model:   factory(seed),
		r:       rng.New(seed ^ 0x5bd1e995),
		scratch: nn.NewScratch(),
		ce:      nn.NewCrossEntropy(),
	}
}

// evalChunk bounds the batch size of full-dataset evaluation passes.
const evalChunk = 128

// EvalLoss returns the mean cross-entropy of the model on d (the
// inference pass of Algorithm 2 lines 7 and 10). It returns 0 for an
// empty dataset.
func EvalLoss(m *nn.Network, d *dataset.Dataset) float64 {
	loss, _ := EvalLossAcc(m, d)
	return loss
}

// EvalLossAcc returns mean loss and top-1 accuracy of the model on d.
// It runs sequentially; use Evaluator for the chunk-parallel equivalent
// (the two are bit-identical by construction).
func EvalLossAcc(m *nn.Network, d *dataset.Dataset) (loss, acc float64) {
	if d.N == 0 {
		return 0, 0
	}
	return evalChunked([]*nn.Network{m}, []*nn.CrossEntropy{nn.NewCrossEntropy()}, []*nn.Scratch{nil}, d, nil)
}

// evalLoss is the client's arena-backed inference pass: the same chunk
// walk as EvalLoss, reusing the client's model scratch and loss buffers
// round over round.
func (c *Client) evalLoss() float64 {
	if c.Data.N == 0 {
		return 0
	}
	loss, _ := evalChunked([]*nn.Network{c.model}, []*nn.CrossEntropy{c.ce}, []*nn.Scratch{c.scratch}, c.Data, nil)
	return loss
}

// Run performs one communication round on the client (Algorithm 2 lines
// 6–11): load the global weights, measure the inference loss, train for
// E local epochs of minibatch SGD (optionally with the FedProx term), and
// return the update tuple.
func (c *Client) Run(global []float64, lc LocalConfig) Update {
	lc.Validate()
	c.model.SetParamVector(global)
	u := Update{ClientID: c.ID, N: c.Data.N}
	if c.Data.N == 0 {
		// Degenerate shard: return the global weights unchanged so the
		// aggregation stays well-defined.
		u.Weights = append([]float64(nil), global...)
		return u
	}
	u.LossBefore = c.evalLoss()

	opt := nn.NewSGD(lc.LR)
	if lc.ProxMu > 0 {
		opt.ProxMu = lc.ProxMu
		opt.ProxRef = global
	}
	batch := lc.Batch
	if batch > c.Data.N {
		batch = c.Data.N
	}
	if c.xb == nil || c.xb.Rows() != batch || c.xb.Cols() != c.Data.Dim {
		c.xb = tensor.New(batch, c.Data.Dim)
	}
	if cap(c.yb) < batch {
		c.yb = make([]int, batch)
	}
	if cap(c.perm) < c.Data.N {
		c.perm = make([]int, c.Data.N)
	}
	xb, yb, perm := c.xb, c.yb[:batch], c.perm[:c.Data.N]
	for e := 0; e < lc.Epochs; e++ {
		c.r.PermInto(perm)
		for start := 0; start+batch <= c.Data.N; start += batch {
			for bi := 0; bi < batch; bi++ {
				idx := perm[start+bi]
				copy(xb.Row(bi), c.Data.Sample(idx))
				yb[bi] = c.Data.Y[idx]
			}
			c.ce.Forward(c.model.ForwardScratch(c.scratch, xb, true), yb)
			c.model.ZeroGrads()
			c.model.BackwardScratch(c.scratch, c.ce.Backward())
			opt.Step(c.model)
		}
	}
	u.LossAfter = c.evalLoss()
	u.Weights = c.model.ParamVector()
	return u
}
