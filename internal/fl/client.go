// Package fl implements the synchronous federated-learning simulator of
// the paper (§2.1, §3.2, Algorithm 2): clients performing local SGD on
// their private shards, a server aggregating flat weight vectors through
// a pluggable Aggregator (FedAvg's Eq. 1, FedProx, or FedDRL's Eq. 4),
// the SingleSet centralized baseline, and per-round metrics (top-1 test
// accuracy, per-client inference-loss statistics, and the server-side
// timing split of Fig. 9).
//
// Clients exist in two forms that produce bit-identical results: eager
// clients (NewClient/BuildClients + Run), each permanently bound to its
// shard, and virtual clients (ClientPool + RunVirtual), where a client
// is only a (seed, index-recipe) identity materialized into one of K
// reusable slots while selected — the constant-memory path for
// simulating millions of clients.
//
// RunAsync layers a deterministic asynchronous substrate on the virtual
// path: a seeded virtual clock and arrival event queue replace the
// synchronous barrier, with pluggable straggler/dropout traces
// (ArrivalModel) and staleness-decay-weighted merging. A degenerate
// trace (zero latency, no drops, decay 1) reproduces RunVirtual bit for
// bit.
package fl

import (
	"fmt"

	"feddrl/internal/dataset"
	"feddrl/internal/nn"
	"feddrl/internal/rng"
	"feddrl/internal/tensor"
)

// clientSeedStride spaces per-client model seeds (BuildClients and
// ClientPool derive client i's seed as base + i*stride); clientRNGSalt
// decorrelates a client's data-order RNG from its weight-init stream.
// Both constants are part of the determinism contract: eager and virtual
// clients must derive identical streams from the same identity.
const (
	clientSeedStride = 0x9e3779b9
	clientRNGSalt    = 0x5bd1e995
)

// clientSeed returns client id's model seed under a run's base seed.
func clientSeed(base uint64, id int) uint64 {
	return base + uint64(id)*clientSeedStride
}

// LocalConfig is the client-side solver configuration. The paper uses
// SGD with E = 5 local epochs, batch size b = 10 and learning rate 0.01
// for every experiment (§4.1.2); FedProx clients add ProxMu = 0.01.
type LocalConfig struct {
	Epochs int
	Batch  int
	LR     float64
	// ProxMu enables the FedProx proximal term μ/2·‖w − w_global‖².
	ProxMu float64
}

// Validate panics on an inconsistent local configuration.
func (lc LocalConfig) Validate() {
	if lc.Epochs <= 0 || lc.Batch <= 0 || lc.LR <= 0 || lc.ProxMu < 0 {
		panic(fmt.Sprintf("fl: invalid local config %+v", lc))
	}
}

// Update is the tuple p_k^t a client uploads after local training
// (Algorithm 2 line 11): the global-model inference loss l_b, the local
// model's post-training loss l_a, the sample count n_k and the trained
// weights w_k^t. Exactly one of Weights/Weights32 is set, per the run's
// Precision: f64 rounds carry Weights, f32 rounds carry the half-width
// Weights32 (4 bytes per weight on the wire).
type Update struct {
	ClientID   int
	N          int
	LossBefore float64
	LossAfter  float64
	Weights    []float64
	Weights32  []float32
}

// Client owns a private shard and a reusable model instance. Clients are
// deterministic: all randomness flows from the seed given at
// construction, so parallel and sequential execution produce identical
// results.
//
// Each client also owns a scratch arena (nn.Scratch), its loss scratch
// and its minibatch/permutation buffers, so across rounds of a grid
// cell the warm train steps and inference passes reuse the same memory
// instead of re-allocating every activation.
//
// Data is the shard-access interface, not a concrete dataset: an eager
// client holds a zero-copy dataset.View of the shared training set (or a
// private *dataset.Dataset), and a ClientPool slot is rebound to a new
// identity's view each round.
type Client struct {
	ID   int
	Data dataset.Data

	model   *nn.Network
	r       *rng.RNG
	scratch *nn.Scratch
	ce      *nn.CrossEntropy
	perm    []int
	xb      *tensor.Tensor
	yb      []int
	// eval is the client's one-lane chunked-evaluation arena (aliasing
	// model/ce/scratch) and sums its per-chunk partial-sum scratch, so
	// the per-round inference passes allocate nothing in steady state.
	eval []*evalLane
	sums evalSums
}

// newClientCore builds a client's reusable state — model, RNG, scratch
// arenas — without binding an identity or shard. Shared by NewClient and
// ClientPool slots.
func newClientCore(factory nn.Factory, seed uint64) *Client {
	c := &Client{
		model:   factory(seed),
		r:       rng.New(seed ^ clientRNGSalt),
		scratch: nn.NewScratch(),
		ce:      nn.NewCrossEntropy(),
	}
	c.eval = []*evalLane{{model: c.model, ce: c.ce, scratch: c.scratch}}
	return c
}

// NewClient builds a client over its shard. factory instantiates the
// globally agreed model architecture. data may be a *dataset.Dataset or
// a zero-copy *dataset.View; training only reads it.
func NewClient(id int, data dataset.Data, factory nn.Factory, seed uint64) *Client {
	if data == nil {
		panic("fl: NewClient with nil data")
	}
	c := newClientCore(factory, seed)
	c.ID = id
	c.Data = data
	return c
}

// evalChunk bounds the batch size of full-dataset evaluation passes.
const evalChunk = 128

// EvalLoss returns the mean cross-entropy of the model on d (the
// inference pass of Algorithm 2 lines 7 and 10). It returns 0 for an
// empty dataset.
func EvalLoss(m *nn.Network, d *dataset.Dataset) float64 {
	loss, _ := EvalLossAcc(m, d)
	return loss
}

// EvalLossAcc returns mean loss and top-1 accuracy of the model on d.
// It is the sequential reference kernel and allocates its loss scratch
// per call; hot paths (Run, SingleSet, client inference) go through the
// persistent arenas of Evaluator and Client instead, which are
// bit-identical to this by construction.
func EvalLossAcc(m *nn.Network, d *dataset.Dataset) (loss, acc float64) {
	if d.N == 0 {
		return 0, 0
	}
	var sums evalSums
	return evalChunked([]*evalLane{{model: m, ce: nn.NewCrossEntropy()}}, d, nil, &sums)
}

// evalLoss is the client's arena-backed inference pass: the same chunk
// walk as EvalLoss, reusing the client's model scratch and loss buffers
// round over round.
func (c *Client) evalLoss() float64 {
	if c.Data.Len() == 0 {
		return 0
	}
	loss, _ := evalChunked(c.eval, c.Data, nil, &c.sums)
	return loss
}

// Run performs one communication round on the client (Algorithm 2 lines
// 6–11): load the global weights, measure the inference loss, train for
// E local epochs of minibatch SGD (optionally with the FedProx term), and
// return the update tuple with full-width weights.
func (c *Client) Run(global []float64, lc LocalConfig) Update {
	return c.run(global, lc, F64)
}

// Run32 is Run in f32 precision mode: local training is identical (the
// solver runs in float64), but the uploaded weights are quantized once
// to float32 at the round boundary (Update.Weights32). global must be
// on the float32 lattice — the run loop maintains that invariant — so
// the broadcast itself loses nothing.
func (c *Client) Run32(global []float64, lc LocalConfig) Update {
	return c.run(global, lc, F32)
}

func (c *Client) run(global []float64, lc LocalConfig, prec Precision) Update {
	lc.Validate()
	c.model.SetParamVector(global)
	n := c.Data.Len()
	u := Update{ClientID: c.ID, N: n}
	if n == 0 {
		// Degenerate shard: return the global weights unchanged so the
		// aggregation stays well-defined. In f32 mode the quantization is
		// exact — the broadcast vector is on the float32 lattice.
		if prec == F32 {
			u.Weights32 = tensor.Quantize(nil, global)
		} else {
			u.Weights = append([]float64(nil), global...)
		}
		return u
	}
	u.LossBefore = c.evalLoss()

	opt := nn.NewSGD(lc.LR)
	if lc.ProxMu > 0 {
		opt.ProxMu = lc.ProxMu
		opt.ProxRef = global
	}
	dim := c.Data.FeatureDim()
	batch := lc.Batch
	if batch > n {
		batch = n
	}
	if c.xb == nil || c.xb.Rows() != batch || c.xb.Cols() != dim {
		c.xb = tensor.New(batch, dim)
	}
	if cap(c.yb) < batch {
		c.yb = make([]int, batch)
	}
	if cap(c.perm) < n {
		c.perm = make([]int, n)
	}
	xb, yb, perm := c.xb, c.yb[:batch], c.perm[:n]
	for e := 0; e < lc.Epochs; e++ {
		c.r.PermInto(perm)
		for start := 0; start+batch <= n; start += batch {
			for bi := 0; bi < batch; bi++ {
				idx := perm[start+bi]
				copy(xb.Row(bi), c.Data.Sample(idx))
				yb[bi] = c.Data.Label(idx)
			}
			c.ce.Forward(c.model.ForwardScratch(c.scratch, xb, true), yb)
			c.model.ZeroGrads()
			c.model.BackwardScratch(c.scratch, c.ce.Backward())
			opt.Step(c.model)
		}
	}
	u.LossAfter = c.evalLoss()
	if prec == F32 {
		u.Weights32 = c.model.ParamVector32()
	} else {
		u.Weights = c.model.ParamVector()
	}
	return u
}
