package fl

import (
	"math"
	"testing"

	"feddrl/internal/engine"
	"feddrl/internal/rng"
	"feddrl/internal/tensor"
)

// The merger suite: every Merger must be a pure function of
// (updates, alpha) — bit-identical at any pool width including nil —
// the default WeightedMerge must be byte-identical to the historical
// Aggregate path, and the order-statistic rules must match their naive
// sequential references.

// mergeCohort builds k random updates of the given dimension, plus
// convex sample-count-proportional factors, in both widths.
func mergeCohort(k, dim int, seed uint64) ([]Update, []float64) {
	r := rng.New(seed)
	updates := make([]Update, k)
	alpha := make([]float64, k)
	total := 0.0
	for i := range updates {
		w := make([]float64, dim)
		for c := range w {
			w[c] = r.Norm()
		}
		updates[i] = Update{
			ClientID: i,
			N:        10 + i,
			Weights:  w,
			Weights32: tensor.Quantize(nil, w),
		}
		alpha[i] = float64(updates[i].N)
		total += alpha[i]
	}
	for i := range alpha {
		alpha[i] /= total
	}
	return updates, alpha
}

// TestWeightedMergeMatchesAggregate: the explicit default merger (and a
// nil Merger through mergeP) must reproduce AggregateOn byte for byte —
// the compatibility contract that keeps historical runs and cached
// cells valid.
func TestWeightedMergeMatchesAggregate(t *testing.T) {
	updates, alpha := mergeCohort(5, 4097, 3)
	want := AggregateOn(updates, alpha, nil)
	for _, got := range [][]float64{
		WeightedMerge{}.Merge(updates, alpha, nil),
		mergeP(F64, nil, updates, alpha, nil),
		mergeP(F64, WeightedMerge{}, updates, alpha, nil),
	} {
		if len(got) != len(want) {
			t.Fatalf("dim %d, want %d", len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
				t.Fatalf("coordinate %d differs bitwise from Aggregate", i)
			}
		}
	}
}

// TestMedianMerge pins the coordinate-wise median on hand-checked odd
// and even cohorts.
func TestMedianMerge(t *testing.T) {
	mk := func(vals ...float64) Update {
		return Update{Weights: vals, Weights32: tensor.Quantize(nil, vals)}
	}
	odd := []Update{mk(1, -9), mk(5, 0), mk(100, 3)}
	alpha := []float64{0.2, 0.3, 0.5}
	got := Median{}.Merge(odd, alpha, nil)
	if got[0] != 5 || got[1] != 0 {
		t.Fatalf("odd-cohort median = %v, want [5 0]", got)
	}
	even := append(odd, mk(7, 1))
	got = Median{}.Merge(even, []float64{0.25, 0.25, 0.25, 0.25}, nil)
	if got[0] != 6 || got[1] != 0.5 {
		t.Fatalf("even-cohort median = %v, want [6 0.5]", got)
	}
	got32 := Median{}.Merge32(even, []float64{0.25, 0.25, 0.25, 0.25}, nil)
	if got32[0] != 6 || got32[1] != 0.5 {
		t.Fatalf("f32 even-cohort median = %v, want [6 0.5]", got32)
	}
}

// TestTrimmedMeanMerge pins the β-trim on a known cohort and checks the
// clamp that guarantees at least one surviving value.
func TestTrimmedMeanMerge(t *testing.T) {
	updates := []Update{
		{Weights: []float64{-1000}}, {Weights: []float64{1}},
		{Weights: []float64{2}}, {Weights: []float64{3}},
		{Weights: []float64{1000}},
	}
	alpha := []float64{0.2, 0.2, 0.2, 0.2, 0.2}
	got := TrimmedMean{Beta: 0.2}.Merge(updates, alpha, nil)
	if got[0] != 2 {
		t.Fatalf("trimmed mean = %v, want 2 (outliers dropped)", got[0])
	}
	// β ≥ 0.5 would trim everything; the clamp must keep the middle.
	got = TrimmedMean{Beta: 0.9}.Merge(updates, alpha, nil)
	if got[0] != 2 {
		t.Fatalf("over-trimmed mean = %v, want 2", got[0])
	}
	for k := 1; k <= 7; k++ {
		for _, beta := range []float64{-1, 0, 0.2, 0.49, 0.5, 3, math.NaN()} {
			n := TrimmedMean{Beta: beta}.trimCount(k)
			if n < 0 || 2*n >= k {
				t.Fatalf("trimCount(β=%v, k=%d) = %d leaves no survivors", beta, k, n)
			}
		}
	}
}

// TestKrumMerge: with one far outlier among a tight benign cluster,
// Krum must select a benign update and return a private copy of it.
func TestKrumMerge(t *testing.T) {
	updates := []Update{
		{ClientID: 0, Weights: []float64{1.0, 1.0}},
		{ClientID: 1, Weights: []float64{1.1, 0.9}},
		{ClientID: 2, Weights: []float64{500, -500}}, // Byzantine
		{ClientID: 3, Weights: []float64{0.9, 1.1}},
		{ClientID: 4, Weights: []float64{1.05, 1.0}},
	}
	alpha := []float64{0.2, 0.2, 0.2, 0.2, 0.2}
	got := Krum{F: 1}.Merge(updates, alpha, nil)
	if got[0] > 2 || got[0] < 0 {
		t.Fatalf("Krum selected the outlier: %v", got)
	}
	matched := -1
	for i, u := range updates {
		if u.Weights[0] == got[0] && u.Weights[1] == got[1] {
			matched = i
		}
	}
	if matched < 0 || matched == 2 {
		t.Fatalf("Krum result matches update %d", matched)
	}
	got[0] = math.NaN()
	if math.IsNaN(updates[matched].Weights[0]) {
		t.Fatal("Krum returned the update's own backing array, not a copy")
	}
}

// TestKrumPairIndexRoundTrip: the packed-triangle codec behind the
// parallel distance fill must be a bijection.
func TestKrumPairIndexRoundTrip(t *testing.T) {
	for _, n := range []int{2, 3, 5, 9} {
		seen := map[int]bool{}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				p := pairIndex(n, i, j)
				if p != pairIndex(n, j, i) {
					t.Fatalf("pairIndex(%d,%d,%d) not symmetric", n, i, j)
				}
				if seen[p] {
					t.Fatalf("n=%d: duplicate flat index %d", n, p)
				}
				seen[p] = true
				gi, gj := pairFromIndex(n, p)
				if gi != i || gj != j {
					t.Fatalf("pairFromIndex(%d,%d) = (%d,%d), want (%d,%d)", n, p, gi, gj, i, j)
				}
			}
		}
		if len(seen) != n*(n-1)/2 {
			t.Fatalf("n=%d: %d flat indices, want %d", n, len(seen), n*(n-1)/2)
		}
	}
}

// TestMergerPoolWidthInvariance: every merger, both widths, over a
// dimension spanning multiple aggSegment spans, must produce identical
// bytes with no pool and with pools of 2, 4 and 8 lanes.
func TestMergerPoolWidthInvariance(t *testing.T) {
	updates, alpha := mergeCohort(6, 2*aggSegment+37, 7)
	mergers := []Merger{WeightedMerge{}, Median{}, TrimmedMean{Beta: 0.2}, Krum{F: 1}}
	for _, m := range mergers {
		want := m.Merge(updates, alpha, nil)
		want32 := m.Merge32(updates, alpha, nil)
		for _, workers := range []int{2, 4, 8} {
			pool := engine.New(workers)
			got := m.Merge(updates, alpha, pool)
			got32 := m.Merge32(updates, alpha, pool)
			pool.Close()
			for i := range want {
				if math.Float64bits(want[i]) != math.Float64bits(got[i]) {
					t.Fatalf("%s: workers=%d coordinate %d differs bitwise", m.Name(), workers, i)
				}
			}
			for i := range want32 {
				if math.Float32bits(want32[i]) != math.Float32bits(got32[i]) {
					t.Fatalf("%s: workers=%d f32 coordinate %d differs bitwise", m.Name(), workers, i)
				}
			}
		}
	}
}

// TestMergerValidation: zero cohorts, factor-count mismatches and
// ragged dimensions must panic exactly like the Aggregate path.
func TestMergerValidation(t *testing.T) {
	expectPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("empty cohort", func() { Median{}.Merge(nil, nil, nil) })
	one := []Update{{Weights: []float64{1}}}
	expectPanic("factor mismatch", func() { Median{}.Merge(one, []float64{0.5, 0.5}, nil) })
	ragged := []Update{{Weights: []float64{1, 2}}, {Weights: []float64{1}}}
	expectPanic("ragged dims", func() { TrimmedMean{}.Merge(ragged, []float64{0.5, 0.5}, nil) })
	expectPanic("ragged dims f32", func() {
		Krum{F: 1}.Merge32([]Update{{Weights32: []float32{1, 2}}, {Weights32: []float32{1}}}, []float64{0.5, 0.5}, nil)
	})
}

// TestParseMerger covers the CLI resolution table, including Krum's
// fraction-derived tolerance and the nil zero value.
func TestParseMerger(t *testing.T) {
	if m, err := ParseMerger("", 0, 10); err != nil || m != nil {
		t.Fatalf(`ParseMerger("") = %v, %v; want nil, nil`, m, err)
	}
	if m, err := ParseMerger("weighted", 0, 10); err != nil || m.Name() != "weighted" {
		t.Fatalf("weighted: %v, %v", m, err)
	}
	if m, err := ParseMerger("median", 0, 10); err != nil || m.Name() != "median" {
		t.Fatalf("median: %v, %v", m, err)
	}
	if m, err := ParseMerger("trimmed", 0, 10); err != nil || m.(TrimmedMean).Beta != 0.2 {
		t.Fatalf("trimmed: %v, %v", m, err)
	}
	if m, err := ParseMerger("trimmed", 0.3, 10); err != nil || m.(TrimmedMean).Beta != 0.4 {
		t.Fatalf("trimmed tracks the fraction: %v, %v", m, err)
	}
	if m, err := ParseMerger("trimmed", 0.9, 10); err != nil || m.(TrimmedMean).Beta != 0.45 {
		t.Fatalf("trimmed cap: %v, %v", m, err)
	}
	if m, err := ParseMerger("krum", 0.3, 10); err != nil || m.(Krum).F != 3 {
		t.Fatalf("krum at 30%% of 10: %v, %v", m, err)
	}
	if m, err := ParseMerger("krum", 0, 10); err != nil || m.(Krum).F != 1 {
		t.Fatalf("krum floor: %v, %v", m, err)
	}
	if _, err := ParseMerger("nope", 0, 10); err == nil {
		t.Fatal("unknown merger did not error")
	}
}
