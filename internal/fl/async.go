package fl

import (
	"fmt"
	"math"
	"time"

	"feddrl/internal/dataset"
	"feddrl/internal/mathx"
	"feddrl/internal/rng"
	"feddrl/internal/tensor"
)

// asyncArrivalSalt decorrelates the default arrival-draw stream from the
// server's selection stream when both derive from RunConfig.Seed.
const asyncArrivalSalt uint64 = 0x8f462907d5a1c0f3

// maxRedispatchAttempts bounds consecutive all-dropped dispatch cohorts
// before the engine declares the arrival model degenerate. A trace that
// drops every update forever (DropRate 1, or every identity offline)
// can never finish a round; RunAsync then returns a StarvationError
// carrying the partial result instead of spinning.
const maxRedispatchAttempts = 64

// StarvationError reports an asynchronous run that could not assemble a
// single update for maxRedispatchAttempts consecutive dispatch cohorts:
// the arrival model dropped everything, so the round can never finish.
// RunAsync returns it alongside the partial result for the rounds that
// did complete — a daemon-style caller can log the census and keep
// serving the last good model rather than crashing.
type StarvationError struct {
	// Model is the arrival model's name.
	Model string
	// Round is the server round that starved.
	Round int
	// Attempts is the number of consecutive all-dropped dispatch
	// cohorts.
	Attempts int
	// Dispatched and Dropped count the broadcasts sent and lost while
	// assembling the starved round; Arrived counts the updates that
	// made it back (always short of one full aggregation).
	Dispatched int
	Dropped    int
	Arrived    int
	// OfflineClients is the census of distinct client identities whose
	// dispatches were dropped during the starved round.
	OfflineClients int
}

// Error implements error.
func (e *StarvationError) Error() string {
	return fmt.Sprintf(
		"fl: async run starved at round %d: arrival model %q dropped %d consecutive cohorts (%d dispatched, %d dropped, %d arrived, %d distinct clients unreachable)",
		e.Round, e.Model, e.Attempts, e.Dispatched, e.Dropped, e.Arrived, e.OfflineClients)
}

// Arrival is one dispatch's fate as decided by an ArrivalModel: the
// virtual latency between the server broadcasting to a client and that
// client's update arriving back, or the update's loss.
type Arrival struct {
	// Delay is the virtual time (latency + local compute) between
	// dispatch and the update's arrival at the server. Must be finite
	// and non-negative. Ignored when Drop is set.
	Delay float64
	// Drop marks the update as lost: the client was unavailable,
	// crashed mid-round, or its upload never completed.
	Drop bool
}

// ArrivalModel is the pluggable, seeded latency/availability trace the
// async engine draws from. Implementations must be deterministic pure
// functions of their own configuration and the Draw arguments.
type ArrivalModel interface {
	// Name identifies the trace in artifacts and logs.
	Name() string
	// Draw decides the fate of one dispatch of client id's local work
	// against server version round. r is a fresh generator derived
	// deterministically from (arrival seed, round, id, redispatch
	// attempt), so the draw depends only on that position in the
	// schedule — never on processing order or worker count.
	// Identity-stable traits (a client being a persistent straggler or
	// permanently offline) must come from the model's own seed, not
	// from r, which differs per dispatch.
	Draw(round, id int, r *rng.RNG) Arrival
}

// InstantArrivals is the degenerate trace: every update arrives with
// zero latency and nothing is dropped. Under it (with StalenessDecay 1)
// RunAsync reproduces RunVirtual bit for bit — the async engine's
// equivalent of the engine package's sequential-fallback contract.
type InstantArrivals struct{}

// Name identifies the degenerate trace.
func (InstantArrivals) Name() string { return "instant" }

// Draw returns the zero Arrival: no delay, no drop.
func (InstantArrivals) Draw(int, int, *rng.RNG) Arrival { return Arrival{} }

// TraceArrivals is a seeded synthetic availability/straggler/dropout
// trace. Identity-stable traits — whether a client is a persistent
// straggler or permanently offline — are drawn once per client identity
// from Seed, so they are the same in every round and at every worker
// count; per-dispatch jitter and transient drops come from the engine's
// per-(round, id, attempt) stream.
type TraceArrivals struct {
	// Seed drives the identity-stable trait draws (straggler/offline
	// membership). Two traces with the same Seed and parameters assign
	// identical traits.
	Seed uint64
	// BaseDelay is every update's minimum virtual latency+compute time.
	BaseDelay float64
	// Jitter scales an exponential per-dispatch jitter added on top of
	// BaseDelay; 0 disables jitter.
	Jitter float64
	// StragglerFrac is the fraction of client identities that are
	// persistently slow; their delays are multiplied by
	// StragglerFactor (default 4 when a straggler fraction is set).
	StragglerFrac   float64
	StragglerFactor float64
	// OfflineFrac is the fraction of identities that never respond:
	// every dispatch to one is dropped (the availability trace).
	OfflineFrac float64
	// DropRate is the per-dispatch probability that an online client's
	// update is lost in transit.
	DropRate float64
}

// Name identifies the synthetic trace.
func (TraceArrivals) Name() string { return "trace" }

// Draw implements ArrivalModel: identity traits from the trace's own
// seed, transient fate and jitter from the per-dispatch stream.
func (t TraceArrivals) Draw(round, id int, r *rng.RNG) Arrival {
	// Identity traits come from a per-identity generator so they hold
	// across rounds and redispatches. The two Float64 draws happen in a
	// fixed order regardless of which traits are enabled, keeping trait
	// assignment stable as trace parameters are swept.
	ident := rng.New(rng.MixSeed(t.Seed, uint64(id)))
	offline := ident.Float64() < t.OfflineFrac
	straggler := ident.Float64() < t.StragglerFrac
	if offline {
		return Arrival{Drop: true}
	}
	if t.DropRate > 0 && r.Float64() < t.DropRate {
		return Arrival{Drop: true}
	}
	d := t.BaseDelay
	if t.Jitter > 0 {
		d += t.Jitter * r.Exp()
	}
	if straggler {
		f := t.StragglerFactor
		if f <= 0 {
			f = 4
		}
		d *= f
	}
	return Arrival{Delay: d}
}

// AsyncConfig configures an asynchronous run: the synchronous
// RunConfig plus the arrival trace and the server's staleness policy.
// The zero values of the async fields select the degenerate setting
// under which RunAsync is bit-identical to RunVirtual.
type AsyncConfig struct {
	RunConfig

	// Arrival models per-dispatch latency and loss; nil means
	// InstantArrivals (zero latency, no drops).
	Arrival ArrivalModel
	// ArrivalSeed seeds the per-dispatch draw streams handed to
	// Arrival.Draw; 0 derives a salted stream from RunConfig.Seed.
	ArrivalSeed uint64
	// StalenessDecay in (0, 1] is the per-round decay applied to an
	// update's impact factor: an update trained against a global model
	// s server versions old is reweighted by StalenessDecay^s before
	// the merge renormalizes. 0 means 1 (no decay — every update
	// counts fully regardless of age).
	StalenessDecay float64
	// AggregateEvery is the number of arrived updates the server folds
	// into one aggregation step (the async "round"). 0 means K — with
	// no drops the server then waits for exactly the synchronous
	// cohort. When the event queue runs dry below the threshold the
	// server aggregates the partial buffer rather than stalling.
	AggregateEvery int
}

// Validate panics on an inconsistent async configuration.
func (c AsyncConfig) Validate() {
	c.RunConfig.Validate()
	if c.StalenessDecay < 0 || c.StalenessDecay > 1 {
		panic(fmt.Sprintf("fl: StalenessDecay %v outside (0, 1]", c.StalenessDecay))
	}
	if c.AggregateEvery < 0 {
		panic("fl: negative AggregateEvery")
	}
}

// AsyncRoundMetrics records one aggregation step's async bookkeeping,
// aligned with the embedded Result's Rounds.
type AsyncRoundMetrics struct {
	Round int
	// VirtualTime is the simulated clock at the aggregation: the
	// arrival time of the newest update folded in.
	VirtualTime float64
	// Dispatched counts broadcasts sent while assembling this round
	// (including redispatches after all-dropped cohorts); Arrived the
	// updates folded into the merge; Dropped the updates lost.
	Dispatched int
	Arrived    int
	Dropped    int
	// MeanStaleness and MaxStaleness measure the folded updates' age in
	// server rounds (0 for updates trained against the current model).
	MeanStaleness float64
	MaxStaleness  int
}

// AsyncResult is an asynchronous run's record: the standard Result plus
// per-aggregation async metrics.
type AsyncResult struct {
	*Result
	// Async has one entry per aggregation step, aligned with
	// Result.Rounds.
	Async []AsyncRoundMetrics
}

// MeanStaleness averages the per-round mean update staleness.
func (r *AsyncResult) MeanStaleness() float64 {
	if len(r.Async) == 0 {
		return 0
	}
	total := 0.0
	for _, m := range r.Async {
		total += m.MeanStaleness
	}
	return total / float64(len(r.Async))
}

// TotalDropped sums the dropped updates over the whole run.
func (r *AsyncResult) TotalDropped() int {
	total := 0
	for _, m := range r.Async {
		total += m.Dropped
	}
	return total
}

// inFlight is one dispatched update travelling to the server through
// virtual time.
type inFlight struct {
	at    float64 // virtual arrival time
	seq   int     // global dispatch sequence — the deterministic tie-break
	round int     // server version the client trained against
	elig  int     // eligible-population index, for loss write-back
	u     Update
}

// arrivalHeap is a hand-rolled binary min-heap of in-flight updates
// ordered by (arrival time, dispatch sequence). The sequence tie-break
// makes simultaneous arrivals — the whole degenerate trace — pop in
// dispatch order, which is what aligns the async engine with the
// synchronous loop's update ordering.
type arrivalHeap []inFlight

func (h arrivalHeap) before(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h *arrivalHeap) push(e inFlight) {
	*h = append(*h, e)
	a := *h
	for i := len(a) - 1; i > 0; {
		p := (i - 1) / 2
		if !a.before(i, p) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func (h *arrivalHeap) pop() inFlight {
	a := *h
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = inFlight{} // drop the weights reference so the backing array doesn't pin it
	a = a[:n]
	*h = a
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && a.before(l, s) {
			s = l
		}
		if r < n && a.before(r, s) {
			s = r
		}
		if s == i {
			break
		}
		a[i], a[s] = a[s], a[i]
		i = s
	}
	return top
}

// staleWeights applies staleness-weighted merging: each impact factor is
// scaled by decay^age (age in server rounds) and the vector is
// renormalized to sum 1 for AggregateOn. The degenerate cases — decay 1,
// or a buffer with no stale update — return alpha untouched, so the
// synchronous bit pattern survives exactly (a renormalization of
// all-ones weights would still perturb the last few mantissa bits).
func staleWeights(alpha []float64, buf []inFlight, round int, decay float64) []float64 {
	stale := false
	for _, e := range buf {
		if e.round != round {
			stale = true
			break
		}
	}
	if decay == 1 || !stale {
		return alpha
	}
	out := make([]float64, len(alpha))
	sum := 0.0
	for i, e := range buf {
		out[i] = alpha[i] * math.Pow(decay, float64(round-e.round))
		sum += out[i]
	}
	if sum <= 0 {
		// Every factor decayed to nothing (ancient updates under a tiny
		// decay): fall back to a uniform merge rather than dividing by
		// zero.
		w := 1 / float64(len(out))
		for i := range out {
			out[i] = w
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// RunAsync executes the asynchronous variant of Algorithm 2 over a
// ClientPool: a seeded virtual clock and an event queue order client
// update arrivals, the server aggregates whenever AggregateEvery updates
// have arrived (or the queue runs dry — a partial round), and stale
// updates are merged with staleness-decayed impact factors.
//
// Mechanics per server round r:
//
//  1. Dispatch: the Selector picks K clients against the current global
//     model; their local training runs in parallel on the same
//     work-stealing pool as the synchronous loop (trainCohort). Each
//     finished update is assigned an arrival time now+Delay drawn from
//     the ArrivalModel, or dropped.
//  2. Drain: the event queue pops arrivals in (time, dispatch-sequence)
//     order, advancing the virtual clock, until the aggregation
//     threshold is reached or the queue empties.
//  3. Merge: the aggregator computes impact factors over exactly the
//     arrived updates (which may span server versions), staleness decay
//     reweights them, and AggregateOn folds the new global model.
//
// Clients whose updates are still in flight when the server version
// advances simply arrive stale; because every client's RNG position is
// snapshotted in the ClientPool at checkin, an identity re-selected for
// a later version resumes its stream exactly where it left off — local
// work straddling server versions costs no determinism.
//
// The determinism contract matches the synchronous engines: results are
// bit-identical across Workers and across substrates for the same
// configuration, and the degenerate configuration (InstantArrivals,
// StalenessDecay 1, AggregateEvery K) reproduces RunVirtual exactly,
// including every weight bit and RNG stream.
//
// The returned error is non-nil only when the arrival model starves the
// engine (*StarvationError): every dispatch of maxRedispatchAttempts
// consecutive cohorts was dropped. The partial result for the rounds
// that completed is returned alongside it.
func RunAsync(cfg AsyncConfig, clients *ClientPool, test *dataset.Dataset, agg Aggregator) (*AsyncResult, error) {
	cfg.Validate()
	if clients == nil {
		panic("fl: RunAsync with nil client pool")
	}
	if agg == nil {
		panic("fl: RunAsync with nil aggregator")
	}
	arr := cfg.Arrival
	if arr == nil {
		arr = InstantArrivals{}
	}
	arrivalSeed := cfg.ArrivalSeed
	if arrivalSeed == 0 {
		arrivalSeed = cfg.Seed ^ asyncArrivalSalt
	}
	decay := cfg.StalenessDecay
	if decay == 0 {
		decay = 1
	}
	evalEvery := cfg.EvalEvery
	if evalEvery == 0 {
		evalEvery = 1
	}
	pop := population(clients)
	k := cfg.K
	if k > pop.NumClients() {
		k = pop.NumClients()
	}
	threshold := cfg.AggregateEvery
	if threshold == 0 {
		threshold = k
	}

	serverRNG := rng.New(cfg.Seed)
	serverModel := cfg.Factory(cfg.Seed)
	global := serverModel.ParamVector()
	if cfg.Precision == F32 {
		// Same f32-mode invariant as runLoop: the global vector stays on
		// the float32 lattice across every aggregation step.
		tensor.QuantizeLattice(global)
	}

	pool, release := cfg.enginePool()
	defer release()
	var ev *Evaluator
	if test != nil {
		ev = NewEvaluator(cfg.Factory, cfg.Seed, pool)
	}
	sel := cfg.Selector
	if sel == nil {
		sel = UniformSelector{}
	}

	atk := newAttackRuntime(cfg.Attack, cfg.AttackSeed, cfg.Seed)

	res := &AsyncResult{Result: &Result{Method: agg.Name(), NumParam: len(global)}}
	updates := make([]Update, k)
	slots := make([]*Client, k)
	seen := make(map[int]struct{}, k)
	var q arrivalHeap
	buffer := make([]inFlight, 0, threshold)
	bufUpdates := make([]Update, 0, threshold)
	keptFlight := make([]inFlight, 0, threshold)
	keptUpdates := make([]Update, 0, threshold)
	lb := make([]float64, 0, threshold)

	now := 0.0
	seq := 0
	round := 0
	dispatched, dropped := 0, 0
	// droppedIDs is the per-round census of identities whose dispatches
	// were lost, reported by StarvationError.
	droppedIDs := make(map[int]struct{})

	// dispatch broadcasts the current global model to a fresh cohort and
	// schedules (or drops) each resulting update. Updates carry fresh
	// weight vectors (Client.Run returns a new copy per call), so queued
	// in-flight updates survive their slot being retrained.
	dispatch := func(attempt int) {
		selected := sel.Select(round, k, pop, serverRNG)
		trainCohort(pop, selected, global, cfg.Local, cfg.Precision, pool, round, atk, updates, slots, seen)
		for i := range selected {
			u := updates[i]
			dr := rng.New(rng.MixSeed(arrivalSeed, uint64(round), uint64(u.ClientID), uint64(attempt)))
			a := arr.Draw(round, u.ClientID, dr)
			dispatched++
			if a.Drop {
				dropped++
				droppedIDs[u.ClientID] = struct{}{}
				continue
			}
			if a.Delay < 0 || math.IsNaN(a.Delay) || math.IsInf(a.Delay, 0) {
				panic(fmt.Sprintf("fl: arrival model %q drew invalid delay %v", arr.Name(), a.Delay))
			}
			q.push(inFlight{at: now + a.Delay, seq: seq, round: round, elig: selected[i], u: u})
			seq++
		}
	}

	dispatch(0)
	attempt := 0
	for round < cfg.Rounds {
		// Drain arrivals into the aggregation buffer, advancing the
		// virtual clock to each update's arrival time. Losses are noted
		// at arrival — the server learns a client's loss when its update
		// lands, which in the degenerate trace is the synchronous loop's
		// post-training order exactly.
		for len(buffer) < threshold && len(q) > 0 {
			e := q.pop()
			if e.at > now {
				now = e.at
			}
			pop.noteLoss(e.elig, e.u.LossBefore)
			buffer = append(buffer, e)
		}
		if len(buffer) == 0 {
			// Everything in flight was dropped: redispatch the round's
			// cohort. The attempt counter feeds the arrival draw's seed
			// mix, so a transient-drop trace redraws fresh fates instead
			// of replaying the identical drop forever.
			attempt++
			if attempt > maxRedispatchAttempts {
				res.Weights = global
				return res, &StarvationError{
					Model:          arr.Name(),
					Round:          round,
					Attempts:       attempt,
					Dispatched:     dispatched,
					Dropped:        dropped,
					Arrived:        dispatched - dropped - len(q),
					OfflineClients: len(droppedIDs),
				}
			}
			dispatch(attempt)
			continue
		}

		// Aggregate: either the threshold was met, or the queue ran dry
		// and the server folds a partial round rather than stalling.
		bufUpdates = bufUpdates[:0]
		lb = lb[:0]
		sumAge, maxAge := 0, 0
		for _, e := range buffer {
			bufUpdates = append(bufUpdates, e.u)
			lb = append(lb, e.u.LossBefore)
			age := round - e.round
			sumAge += age
			if age > maxAge {
				maxAge = age
			}
		}

		// Ingress gate, mirroring runLoop: quarantined uploads leave the
		// merge cohort (and its staleness bookkeeping slice, which must
		// stay aligned with the impact factors) but still count in the
		// loss statistics. Quarantining everything carries the global
		// model over to the next round.
		mergeBuf, mergeUpdates := buffer, bufUpdates
		quarantined := 0
		keptFlight, keptUpdates = keptFlight[:0], keptUpdates[:0]
		for i := range bufUpdates {
			if cfg.Quarantine.reject(&bufUpdates[i]) {
				quarantined++
			} else {
				keptFlight = append(keptFlight, buffer[i])
				keptUpdates = append(keptUpdates, bufUpdates[i])
			}
		}
		if quarantined > 0 {
			mergeBuf, mergeUpdates = keptFlight, keptUpdates
		}

		var decision, aggTime time.Duration
		if len(mergeUpdates) > 0 {
			t0 := time.Now()
			alpha := agg.ImpactFactors(round, mergeUpdates)
			decision = time.Since(t0)

			t1 := time.Now()
			alpha = staleWeights(alpha, mergeBuf, round, decay)
			global = mergeP(cfg.Precision, cfg.Merger, mergeUpdates, alpha, pool)
			aggTime = time.Since(t1)
		}

		m := RoundMetrics{
			Round:          round,
			ClientLossMean: mathx.Mean(lb),
			ClientLossVar:  mathx.Variance(lb),
			ClientLossMax:  mathx.Max(lb),
			ClientLossMin:  mathx.Min(lb),
			Quarantined:    quarantined,
			DecisionTime:   decision,
			AggTime:        aggTime,
		}
		if test != nil && (round%evalEvery == 0 || round == cfg.Rounds-1) {
			loss, acc := ev.Eval(global, test)
			m.Evaluated = true
			m.TestLoss = loss
			m.TestAcc = acc * 100
			res.Accuracy = append(res.Accuracy, m.TestAcc)
			res.AccRounds = append(res.AccRounds, round)
		}
		res.Rounds = append(res.Rounds, m)
		res.Async = append(res.Async, AsyncRoundMetrics{
			Round:         round,
			VirtualTime:   now,
			Dispatched:    dispatched,
			Arrived:       len(buffer),
			Dropped:       dropped,
			MeanStaleness: float64(sumAge) / float64(len(buffer)),
			MaxStaleness:  maxAge,
		})

		buffer = buffer[:0]
		dispatched, dropped = 0, 0
		clear(droppedIDs)
		attempt = 0
		round++
		if round < cfg.Rounds {
			dispatch(0)
		}
	}
	res.Weights = global
	return res, nil
}
