package fl

import (
	"testing"

	"feddrl/internal/partition"
	"feddrl/internal/rng"
)

func buildEligible(t *testing.T, sizes []int) []*Client {
	t.Helper()
	tr, _ := tinyData(t, 61)
	f := tinyFactory(tr.Dim, tr.NumClasses)
	clients := make([]*Client, len(sizes))
	pos := 0
	for i, n := range sizes {
		idx := make([]int, 0, n)
		for j := 0; j < n && pos < tr.N; j++ {
			idx = append(idx, pos)
			pos++
		}
		clients[i] = NewClient(i, tr.Subset(idx), f, uint64(70+i))
	}
	return clients
}

// popOf wraps an eager fleet and its loss vector as the Population the
// Selector interface now consumes.
func popOf(clients []*Client, losses []float64) Population {
	return &eagerClients{clients: clients, losses: losses}
}

func assertDistinct(t *testing.T, sel []int, k, n int) {
	t.Helper()
	if len(sel) != k {
		t.Fatalf("selected %d, want %d", len(sel), k)
	}
	seen := map[int]bool{}
	for _, i := range sel {
		if i < 0 || i >= n || seen[i] {
			t.Fatalf("invalid or duplicate selection %v", sel)
		}
		seen[i] = true
	}
}

func TestUniformSelector(t *testing.T) {
	clients := buildEligible(t, []int{5, 5, 5, 5, 5, 5})
	r := rng.New(1)
	sel := (UniformSelector{}).Select(0, 3, popOf(clients, make([]float64, 6)), r)
	assertDistinct(t, sel, 3, 6)
}

func TestSizeWeightedSelectorPrefersBigShards(t *testing.T) {
	clients := buildEligible(t, []int{1, 1, 1, 30})
	r := rng.New(2)
	bigCount := 0
	const trials = 300
	for i := 0; i < trials; i++ {
		sel := (SizeWeightedSelector{}).Select(i, 1, popOf(clients, make([]float64, 4)), r)
		assertDistinct(t, sel, 1, 4)
		if sel[0] == 3 {
			bigCount++
		}
	}
	if frac := float64(bigCount) / trials; frac < 0.75 {
		t.Fatalf("big shard selected only %.0f%% of the time", frac*100)
	}
}

func TestPowerOfChoiceSelectsHighLoss(t *testing.T) {
	clients := buildEligible(t, []int{5, 5, 5, 5, 5, 5})
	losses := []float64{0.1, 0.2, 9.0, 0.3, 8.0, 0.4}
	r := rng.New(3)
	// With d covering the full population, the top-loss clients must win.
	sel := (PowerOfChoiceSelector{D: 3}).Select(0, 2, popOf(clients, losses), r)
	assertDistinct(t, sel, 2, 6)
	for _, i := range sel {
		if losses[i] < 8 {
			t.Fatalf("power-of-choice picked low-loss client %d: %v", i, sel)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	clients := buildEligible(t, []int{5, 5, 5})
	r := rng.New(4)
	s := RoundRobinSelector{}
	r0 := s.Select(0, 2, popOf(clients, make([]float64, 3)), r)
	r1 := s.Select(1, 2, popOf(clients, make([]float64, 3)), r)
	if r0[0] != 0 || r0[1] != 1 || r1[0] != 2 || r1[1] != 0 {
		t.Fatalf("round robin order wrong: %v %v", r0, r1)
	}
}

func TestSelectorNames(t *testing.T) {
	for name, s := range map[string]Selector{
		"uniform":         UniformSelector{},
		"size-weighted":   SizeWeightedSelector{},
		"power-of-choice": PowerOfChoiceSelector{},
		"round-robin":     RoundRobinSelector{},
	} {
		if s.Name() != name {
			t.Fatalf("selector name %q, want %q", s.Name(), name)
		}
	}
}

func TestRunWithCustomSelector(t *testing.T) {
	tr, te := tinyData(t, 62)
	a := partition.Pareto(tr, 6, 2, 1.2, rng.New(63))
	cfg := runConfig(tr, 4, 3)
	cfg.Selector = PowerOfChoiceSelector{D: 2}
	res := Run(cfg, BuildClients(tr, a.ClientIndices, cfg.Factory, cfg.Seed), te, FedAvg{})
	if len(res.Rounds) != 4 {
		t.Fatal("run with selector failed")
	}
}

func TestSampleWithoutReplacementZeroWeights(t *testing.T) {
	r := rng.New(5)
	out := sampleWithoutReplacement([]float64{0, 0, 0}, 2, r)
	assertDistinct(t, out, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("oversample did not panic")
		}
	}()
	sampleWithoutReplacement([]float64{1}, 2, r)
}
