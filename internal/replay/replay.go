// Package replay implements the experience buffer of the FedDRL agent
// (Table 1: capacity 100 000) with the temporal-difference prioritization
// of Algorithm 1 lines 1–2: each experience carries a priority
// |r + γ·Q(s′,a′) − Q(s,a)|, the buffer is kept sorted by descending
// priority, and batches are drawn rank-biased toward the top. It also
// provides Merge, the buffer-gathering step of the two-stage training
// strategy (Fig. 3b): the online workers' buffers are merged into the
// centralized buffer that trains the main agent offline.
package replay

import (
	"fmt"
	"sort"

	"feddrl/internal/mathx"
	"feddrl/internal/rng"
)

// Experience is one transition (s, a, r, s′) plus its TD priority. Done
// marks terminal transitions (episodic environments in the two-stage
// trainer); the federated-learning environment is continuing, so its
// transitions are never terminal.
type Experience struct {
	S, A  []float64
	R     float64
	S2    []float64
	Done  bool
	Prior float64
}

// Buffer is a bounded experience store. It is not safe for concurrent
// use; the two-stage trainer gives each worker its own buffer and merges.
type Buffer struct {
	cap  int
	data []Experience
	r    *rng.RNG
}

// New returns a buffer holding at most capacity experiences.
func New(capacity int, r *rng.RNG) *Buffer {
	if capacity <= 0 {
		panic(fmt.Sprintf("replay: non-positive capacity %d", capacity))
	}
	return &Buffer{cap: capacity, r: r}
}

// Len returns the number of stored experiences.
func (b *Buffer) Len() int { return len(b.data) }

// Cap returns the buffer capacity.
func (b *Buffer) Cap() int { return b.cap }

// Add stores an experience. Non-finite rewards or vectors are rejected
// (returning false) so a diverging client loss cannot poison training.
// When full, the lowest-priority experience is evicted.
func (b *Buffer) Add(e Experience) bool {
	if !mathx.AllFinite(e.S) || !mathx.AllFinite(e.A) || !mathx.AllFinite(e.S2) ||
		!mathx.AllFinite([]float64{e.R, e.Prior}) {
		return false
	}
	if len(b.data) < b.cap {
		b.data = append(b.data, e)
		return true
	}
	// Evict the current minimum-priority element.
	minI := 0
	for i := 1; i < len(b.data); i++ {
		if b.data[i].Prior < b.data[minI].Prior {
			minI = i
		}
	}
	if e.Prior < b.data[minI].Prior {
		return false // incoming experience is the least interesting
	}
	b.data[minI] = e
	return true
}

// Reprioritize recomputes every experience's priority with the supplied
// function (typically the current TD error under the latest value
// network) and re-sorts descending. This is Algorithm 1 lines 1–2.
func (b *Buffer) Reprioritize(prio func(e Experience) float64) {
	for i := range b.data {
		p := prio(b.data[i])
		if p < 0 {
			p = -p
		}
		b.data[i].Prior = p
	}
	b.SortByPriority()
}

// SortByPriority sorts experiences by descending priority (stable so
// ties keep insertion order).
func (b *Buffer) SortByPriority() {
	sort.SliceStable(b.data, func(i, j int) bool { return b.data[i].Prior > b.data[j].Prior })
}

// Sample draws n experiences rank-biased toward high priority: index
// floor(u²·len) for u uniform, so the top of the sorted buffer is drawn
// quadratically more often. Duplicates are allowed (sampling with
// replacement), as in standard prioritized replay. It panics on an empty
// buffer or non-positive n.
func (b *Buffer) Sample(n int) []Experience {
	if len(b.data) == 0 {
		panic("replay: Sample from empty buffer")
	}
	if n <= 0 {
		panic("replay: Sample with non-positive n")
	}
	out := make([]Experience, n)
	for i := 0; i < n; i++ {
		u := b.r.Float64()
		idx := int(u * u * float64(len(b.data)))
		if idx >= len(b.data) {
			idx = len(b.data) - 1
		}
		out[i] = b.data[idx]
	}
	return out
}

// All returns the stored experiences (shared backing array; callers must
// not mutate).
func (b *Buffer) All() []Experience { return b.data }

// Merge appends all experiences from the given buffers (the two-stage
// gathering step), respecting capacity by keeping the highest-priority
// experiences overall.
func (b *Buffer) Merge(buffers ...*Buffer) {
	for _, src := range buffers {
		b.data = append(b.data, src.data...)
	}
	b.SortByPriority()
	if len(b.data) > b.cap {
		b.data = b.data[:b.cap]
	}
}
