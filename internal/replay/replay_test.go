package replay

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"feddrl/internal/rng"
)

func exp(prior float64) Experience {
	return Experience{S: []float64{1}, A: []float64{2}, R: 0.5, S2: []float64{3}, Prior: prior}
}

func TestAddAndLen(t *testing.T) {
	b := New(3, rng.New(1))
	if b.Len() != 0 || b.Cap() != 3 {
		t.Fatal("fresh buffer wrong")
	}
	for i := 0; i < 3; i++ {
		if !b.Add(exp(float64(i))) {
			t.Fatal("Add rejected valid experience")
		}
	}
	if b.Len() != 3 {
		t.Fatalf("len = %d", b.Len())
	}
}

func TestCapacityEvictsLowestPriority(t *testing.T) {
	b := New(3, rng.New(2))
	b.Add(exp(1))
	b.Add(exp(5))
	b.Add(exp(3))
	// Higher-priority incoming evicts the minimum (1).
	if !b.Add(exp(4)) {
		t.Fatal("higher-priority add rejected")
	}
	if b.Len() != 3 {
		t.Fatalf("len = %d after eviction", b.Len())
	}
	priors := []float64{}
	for _, e := range b.All() {
		priors = append(priors, e.Prior)
	}
	sort.Float64s(priors)
	want := []float64{3, 4, 5}
	for i := range want {
		if priors[i] != want[i] {
			t.Fatalf("buffer priorities %v, want %v", priors, want)
		}
	}
	// Lower-priority incoming is dropped.
	if b.Add(exp(0.5)) {
		t.Fatal("lowest-priority add should be rejected when full")
	}
}

func TestRejectNonFinite(t *testing.T) {
	b := New(4, rng.New(3))
	bad := []Experience{
		{S: []float64{math.NaN()}, A: []float64{1}, S2: []float64{1}},
		{S: []float64{1}, A: []float64{math.Inf(1)}, S2: []float64{1}},
		{S: []float64{1}, A: []float64{1}, S2: []float64{math.NaN()}},
		{S: []float64{1}, A: []float64{1}, S2: []float64{1}, R: math.NaN()},
	}
	for i, e := range bad {
		if b.Add(e) {
			t.Fatalf("non-finite experience %d accepted", i)
		}
	}
	if b.Len() != 0 {
		t.Fatal("buffer should remain empty")
	}
}

func TestReprioritizeSorts(t *testing.T) {
	b := New(10, rng.New(4))
	for i := 0; i < 5; i++ {
		b.Add(Experience{S: []float64{float64(i)}, A: []float64{0}, S2: []float64{0}})
	}
	// Priority = |S[0] - 2| → order by distance from 2, negative values
	// must be folded to magnitude.
	b.Reprioritize(func(e Experience) float64 { return e.S[0] - 2 })
	all := b.All()
	for i := 1; i < len(all); i++ {
		if all[i].Prior > all[i-1].Prior {
			t.Fatalf("not sorted descending at %d: %v > %v", i, all[i].Prior, all[i-1].Prior)
		}
	}
	if all[0].Prior != 2 {
		t.Fatalf("top priority %v, want 2", all[0].Prior)
	}
}

func TestSampleBiasTowardHighPriority(t *testing.T) {
	b := New(100, rng.New(5))
	for i := 0; i < 100; i++ {
		b.Add(Experience{S: []float64{float64(i)}, A: []float64{0}, S2: []float64{0}, Prior: float64(i)})
	}
	b.SortByPriority() // descending: S[0]=99 first
	topHits := 0
	const n = 10000
	for _, e := range b.Sample(n) {
		if e.S[0] >= 75 { // top quartile of priority
			topHits++
		}
	}
	frac := float64(topHits) / n
	// With u² sampling the top quartile of ranks gets P(u<0.5)=~0.5.
	if frac < 0.4 {
		t.Fatalf("top-quartile sampling fraction %v, want >= 0.4", frac)
	}
}

func TestSamplePanics(t *testing.T) {
	b := New(2, rng.New(6))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("empty Sample did not panic")
			}
		}()
		b.Sample(1)
	}()
	b.Add(exp(1))
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Sample(0) did not panic")
			}
		}()
		b.Sample(0)
	}()
}

func TestMergeKeepsHighestPriorities(t *testing.T) {
	main := New(4, rng.New(7))
	w1 := New(10, rng.New(8))
	w2 := New(10, rng.New(9))
	for i := 0; i < 4; i++ {
		w1.Add(exp(float64(i)))      // 0..3
		w2.Add(exp(float64(10 + i))) // 10..13
	}
	main.Merge(w1, w2)
	if main.Len() != 4 {
		t.Fatalf("merged len = %d", main.Len())
	}
	for _, e := range main.All() {
		if e.Prior < 10 {
			t.Fatalf("low-priority experience %v survived merge", e.Prior)
		}
	}
}

func TestBufferNeverExceedsCapacityProperty(t *testing.T) {
	f := func(seed uint64, ops []uint8) bool {
		r := rng.New(seed)
		b := New(8, r)
		for _, op := range ops {
			b.Add(exp(float64(op)))
			if b.Len() > b.Cap() {
				return false
			}
		}
		// Sorted invariant after an explicit sort.
		b.SortByPriority()
		all := b.All()
		for i := 1; i < len(all); i++ {
			if all[i].Prior > all[i-1].Prior {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnBadCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0, rng.New(1))
}
