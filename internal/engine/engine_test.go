package engine

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForRunsEveryIndexOnce checks the core contract: each index in
// [0, n) executes exactly once, for pools of various widths including
// nil and single-lane.
func TestForRunsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8} {
		for _, n := range []int{0, 1, 2, 7, 100, 1000} {
			var p *Pool
			if workers > 0 {
				p = New(workers)
			}
			counts := make([]int32, n)
			p.For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d ran %d times", workers, n, i, c)
				}
			}
			p.Close()
		}
	}
}

// TestForWorkerLaneBounds checks that lane ids stay within
// [0, Workers()) and that the caller's lane 0 is always present for
// non-empty work.
func TestForWorkerLaneBounds(t *testing.T) {
	p := New(4)
	defer p.Close()
	var bad int32
	var lane0 int32
	p.ForWorker(200, func(w, i int) {
		if w < 0 || w >= p.Workers() {
			atomic.AddInt32(&bad, 1)
		}
		if w == 0 {
			atomic.AddInt32(&lane0, 1)
		}
	})
	if bad != 0 {
		t.Fatalf("%d tasks saw an out-of-range lane", bad)
	}
	if lane0 == 0 {
		t.Fatal("caller lane 0 executed no tasks")
	}
}

// TestForWorkerLaneExclusive exercises the worker-local-scratch
// guarantee: within one For call, concurrent tasks never share a lane,
// so unsynchronized per-lane accumulators are safe. The race detector
// (go test -race) is the real assertion here.
func TestForWorkerLaneExclusive(t *testing.T) {
	p := New(4)
	defer p.Close()
	scratch := make([]int, p.Workers()) // deliberately not atomic
	const n = 500
	p.ForWorker(n, func(w, i int) { scratch[w]++ })
	total := 0
	for _, c := range scratch {
		total += c
	}
	if total != n {
		t.Fatalf("lane accumulators sum to %d, want %d", total, n)
	}
}

// TestNestedFor exercises the saturation path: every outer task issues
// an inner For on the same pool. The work-stealing scheduler must
// neither deadlock nor lose indices, whichever lanes steal the nested
// entries.
func TestNestedFor(t *testing.T) {
	p := New(2)
	defer p.Close()
	const outer, inner = 8, 64
	counts := make([]int32, outer*inner)
	p.For(outer, func(i int) {
		p.For(inner, func(j int) {
			atomic.AddInt32(&counts[i*inner+j], 1)
		})
	})
	for idx, c := range counts {
		if c != 1 {
			t.Fatalf("nested index %d ran %d times", idx, c)
		}
	}
}

// TestConcurrentForCalls runs several For calls against one pool from
// independent goroutines, mimicking the experiments grid where sibling
// cells share the pool.
func TestConcurrentForCalls(t *testing.T) {
	p := New(3)
	defer p.Close()
	const callers, n = 5, 200
	done := make(chan [n]int32, callers)
	for c := 0; c < callers; c++ {
		go func() {
			var counts [n]int32
			p.For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			done <- counts
		}()
	}
	for c := 0; c < callers; c++ {
		counts := <-done
		for i, v := range counts {
			if v != 1 {
				t.Fatalf("caller %d: index %d ran %d times", c, i, v)
			}
		}
	}
}

// TestOrderedReduction demonstrates the determinism recipe used by the
// fl package: parallel tasks fill per-index slots, and a sequential
// in-order reduction gives a result bit-identical to the pure
// sequential computation.
func TestOrderedReduction(t *testing.T) {
	const n = 1000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1.0 / float64(i+3)
	}
	seq := 0.0
	for _, v := range vals {
		seq += v
	}
	p := New(4)
	defer p.Close()
	slots := make([]float64, n)
	p.For(n, func(i int) { slots[i] = vals[i] })
	par := 0.0
	for _, v := range slots {
		par += v
	}
	if seq != par {
		t.Fatalf("ordered reduction not bit-identical: %v vs %v", seq, par)
	}
}

// TestCloseIdempotent checks Close twice and For-after-Close (which
// must still complete on the caller).
func TestCloseIdempotent(t *testing.T) {
	p := New(4)
	p.Close()
	p.Close()
	var ran int32
	p.For(10, func(i int) { atomic.AddInt32(&ran, 1) })
	if ran != 10 {
		t.Fatalf("For after Close ran %d of 10 tasks", ran)
	}
	var nilPool *Pool
	nilPool.Close()
	if nilPool.Workers() != 1 {
		t.Fatalf("nil pool reports %d workers", nilPool.Workers())
	}
}

// TestDefaultWidth checks the GOMAXPROCS default.
func TestDefaultWidth(t *testing.T) {
	p := New(0)
	defer p.Close()
	if got, want := p.Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("New(0).Workers() = %d, want GOMAXPROCS = %d", got, want)
	}
}
