package engine

import (
	"sync/atomic"
	"testing"
)

// TestStatsDisabledByDefault: an uninstrumented pool reports zeros no
// matter how much work it runs, and a nil pool accepts both calls.
func TestStatsDisabledByDefault(t *testing.T) {
	p := New(4)
	defer p.Close()
	var sum int64
	p.For(64, func(i int) { atomic.AddInt64(&sum, int64(i)) })
	if s := p.Stats(); s != (Stats{}) {
		t.Fatalf("disabled stats = %+v, want zeros", s)
	}
	var nilPool *Pool
	nilPool.EnableStats()
	if s := nilPool.Stats(); s != (Stats{}) {
		t.Fatalf("nil pool stats = %+v, want zeros", s)
	}
}

// TestStatsCountWork: with stats enabled, a saturating workload must
// record enqueues and a busy-lane peak within the worker bound; results
// stay identical to the uninstrumented run.
func TestStatsCountWork(t *testing.T) {
	const workers, tasks = 4, 32
	run := func(instrument bool) ([]float64, Stats) {
		p := New(workers)
		defer p.Close()
		if instrument {
			p.EnableStats()
		}
		out := make([]float64, tasks)
		p.For(tasks, func(i int) {
			s := 0.0
			for t := 0; t < 20000; t++ {
				s += float64(t^i) * 0.5
			}
			out[i] = s
		})
		return out, p.Stats()
	}
	plain, _ := run(false)
	instrumented, st := run(true)
	for i := range plain {
		if plain[i] != instrumented[i] {
			t.Fatalf("instrumentation changed results at %d: %v vs %v", i, plain[i], instrumented[i])
		}
	}
	if st.Enqueues <= 0 {
		t.Fatalf("no enqueues recorded: %+v", st)
	}
	if st.MaxLanesBusy < 1 || st.MaxLanesBusy > workers {
		t.Fatalf("MaxLanesBusy %d out of [1,%d]", st.MaxLanesBusy, workers)
	}
}

// TestStatsSeesSteals: steals of published entries must be counted. The
// nested-grid shape guarantees steals structurally: outer cells
// saturate the pool, each runs inner Fors whose entries can only be
// drained by OTHER lanes — outer callers blocked in their completion
// waits (grabAny) or workers between tasks (grab) — and an inner job's
// indices cannot all complete on the submitting lane alone when a
// sibling holds them, so across enough rounds at least one successful
// steal is recorded on any scheduler interleaving that exercises
// helping at all. Retries bound flake: a single quiet round on a
// one-core host is possible, sixteen are not.
func TestStatsSeesSteals(t *testing.T) {
	for attempt := 0; attempt < 16; attempt++ {
		p := New(4)
		p.EnableStats()
		sink := make([]float64, 8)
		p.For(8, func(cell int) {
			part := make([]float64, 8)
			for r := 0; r < 4; r++ {
				p.For(8, func(j int) {
					s := 0.0
					for k := 0; k < 120000; k++ {
						s += float64(k^j) * 0.5
					}
					part[j] = s
				})
			}
			sink[cell] = part[cell]
		})
		st := p.Stats()
		p.Close()
		if st.Steals > 0 {
			t.Logf("attempt %d: %+v", attempt, st)
			return
		}
	}
	t.Fatal("no steal recorded across 16 saturated nested runs")
}
