package engine

import (
	"math"
	"sync/atomic"
	"testing"
	"time"
)

// nestedCompute is the reference nested workload of the saturation
// tests: an outer grid of cells, each running an inner ForWorker whose
// per-index results land in per-index slots and reduce in order — the
// exact discipline the fl package uses. The returned vector must be
// bit-identical at every pool width, whichever lanes steal in.
func nestedCompute(p *Pool, outer, inner int) []float64 {
	out := make([]float64, outer*inner)
	p.For(outer, func(i int) {
		cell := make([]float64, inner)
		lanes := p.Workers()
		if lanes > inner {
			lanes = inner
		}
		scratch := make([]float64, lanes) // deliberately unsynchronized
		p.ForWorker(inner, func(w, j int) {
			v := math.Sin(float64(i+1)*0.7+float64(j)*0.3) / float64(j+2)
			cell[j] = v
			scratch[w] += v // lane exclusivity: -race is the assertion
		})
		// Ordered reduction over per-index slots: the determinism recipe.
		acc := 0.0
		for _, v := range cell {
			acc += v
		}
		for j, v := range cell {
			out[i*inner+j] = v * (1 + acc)
		}
	})
	return out
}

// TestNestedDeterminismMatrix is the saturation-path determinism gate:
// nested For/ForWorker over worker counts {1, 2, 4, 8} must produce
// results bit-identical to the nil-pool sequential reference, including
// the widths where the outer grid saturates every lane and inner jobs
// only make progress through stealing.
func TestNestedDeterminismMatrix(t *testing.T) {
	const outer, inner = 6, 40
	want := nestedCompute(nil, outer, inner)
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		for rep := 0; rep < 3; rep++ {
			got := nestedCompute(p, outer, inner)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d rep=%d: slot %d = %v, want %v (not bit-identical)",
						workers, rep, i, got[i], want[i])
				}
			}
		}
		p.Close()
	}
}

// TestStealVsInlineEquivalence pins the refactor's behavioral claim: a
// run where idle lanes aggressively steal nested entries (wide pool,
// narrow outer grid) is bit-identical to fully inline execution. Under
// the old engine the nested calls would have been caller-inline here;
// under the new one they are stolen — either way the bytes must match.
func TestStealVsInlineEquivalence(t *testing.T) {
	const outer, inner = 2, 500
	want := nestedCompute(nil, outer, inner)
	p := New(8)
	defer p.Close()
	got := nestedCompute(p, outer, inner)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("slot %d = %v, want %v (steal path diverged from inline)", i, got[i], want[i])
		}
	}
}

// TestStealIntoSaturatedNestedFor proves stealing actually happens: on
// a 2-lane pool, one outer cell finishes fast while the other runs an
// inner For whose two tasks rendezvous on a barrier. Caller-inline
// execution of the inner For (the old engine's saturated behavior)
// would deadlock on the barrier, so completion is possible only if the
// freed lane steals into the nested job.
func TestStealIntoSaturatedNestedFor(t *testing.T) {
	p := New(2)
	defer p.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.For(2, func(i int) {
			if i == 0 {
				return // fast cell: frees a lane
			}
			var arrived int32
			release := make(chan struct{})
			p.For(2, func(j int) {
				if atomic.AddInt32(&arrived, 1) == 2 {
					close(release)
				}
				<-release
			})
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested For never completed: no lane stole into the saturated inner job")
	}
}

// TestStealWakeForLateNestedJob pins the parked-waiter wakeup: the slow
// outer cell announces its nested barrier job only after the other lane
// has long since drained everything and parked in its completion wait.
// That parked lane must wake for the announce and steal in — a wait
// that listens on the completion signal alone would orphan the entry
// and deadlock here.
func TestStealWakeForLateNestedJob(t *testing.T) {
	p := New(2)
	defer p.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.For(2, func(i int) {
			if i == 0 {
				return // fast cell: its lane parks in a wait long before the announce
			}
			time.Sleep(100 * time.Millisecond)
			var arrived int32
			release := make(chan struct{})
			p.For(2, func(j int) {
				if atomic.AddInt32(&arrived, 1) == 2 {
					close(release)
				}
				<-release
			})
		})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("parked lane never woke for the late-announced nested job")
	}
}

// TestForWorkerLaneBoundUnderStealing checks the lane-id contract while
// foreign jobs churn through the same deques: lane ids of a small job
// (n < Workers) must stay below min(Workers, n) = n even when many
// goroutines are candidates to steal it.
func TestForWorkerLaneBoundUnderStealing(t *testing.T) {
	p := New(8)
	defer p.Close()
	const n = 3 // small job: lane ids must stay < 3, not < 8
	var bad int32
	stop := make(chan struct{})
	churn := make(chan struct{})
	go func() {
		defer close(churn)
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.For(16, func(i int) {})
		}
	}()
	for rep := 0; rep < 200; rep++ {
		p.ForWorker(n, func(w, i int) {
			if w < 0 || w >= n {
				atomic.AddInt32(&bad, 1)
			}
		})
	}
	close(stop)
	<-churn
	if bad != 0 {
		t.Fatalf("%d tasks of an n=%d job saw a lane id >= n", bad, n)
	}
}

// TestConcurrentSiblingGridsRace is the -race stress of the grid
// runner's shape: several goroutines each drive a nested grid on one
// shared pool, so outer entries, nested entries and steal scans all
// interleave. Every index of every grid must run exactly once, and the
// race detector build must stay silent.
func TestConcurrentSiblingGridsRace(t *testing.T) {
	p := New(4)
	defer p.Close()
	const siblings, outer, inner, reps = 4, 6, 32, 3
	type report struct {
		sibling int
		counts  []int32
	}
	results := make(chan report, siblings)
	for s := 0; s < siblings; s++ {
		s := s
		go func() {
			counts := make([]int32, outer*inner)
			for r := 0; r < reps; r++ {
				p.For(outer, func(i int) {
					lanes := p.Workers()
					if lanes > inner {
						lanes = inner
					}
					scratch := make([]int, lanes)
					p.ForWorker(inner, func(w, j int) {
						scratch[w]++
						atomic.AddInt32(&counts[i*inner+j], 1)
					})
					total := 0
					for _, c := range scratch {
						total += c
					}
					if total != inner {
						panic("lane scratch lost counts")
					}
				})
			}
			results <- report{sibling: s, counts: counts}
		}()
	}
	for s := 0; s < siblings; s++ {
		rep := <-results
		for idx, c := range rep.counts {
			if c != reps {
				t.Fatalf("sibling %d: index %d ran %d times, want %d", rep.sibling, idx, c, reps)
			}
		}
	}
}

// TestSaturatedAnnounceStillCompletes drives far more concurrent jobs
// than the bounded deques can hold entries for: overflowing announce
// must degrade to less help, never to lost indices or a hang.
func TestSaturatedAnnounceStillCompletes(t *testing.T) {
	p := New(2)
	defer p.Close()
	const outer, mid, inner = 4, 8, 8
	var ran int64
	p.For(outer, func(i int) {
		p.For(mid, func(j int) {
			p.For(inner, func(k int) {
				atomic.AddInt64(&ran, 1)
			})
		})
	})
	if want := int64(outer * mid * inner); ran != want {
		t.Fatalf("deeply nested run executed %d tasks, want %d", ran, want)
	}
}
