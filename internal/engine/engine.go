// Package engine provides the bounded-worker execution engine behind
// every parallel path of the simulator: client local training, chunked
// test-set evaluation and the segment-parallel weight merge (the
// server-side costs of Fig. 9), as well as the experiment grid runner.
//
// The engine's contract is determinism: a parallel-for over n index
// slots runs every index exactly once, and callers write results only
// into their own slot, so the outcome is bit-identical to a sequential
// loop regardless of the number of workers or the interleaving. The
// pool is persistent (goroutines start once and live until Close) and
// bounded (at most Workers lanes execute concurrently), replacing the
// unbounded one-goroutine-per-client fan-out the fl package used
// before.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent bounded worker pool. The zero value is not
// usable; construct with New. A nil *Pool is valid everywhere and means
// "run inline, sequentially", so callers can thread an optional pool
// without branching.
type Pool struct {
	workers int
	// handoff is unbuffered: a task is handed over only when a worker
	// goroutine is idle and already receiving. If every worker is busy
	// (or parked in a nested For's wait), the submitting caller simply
	// runs the work itself — this is what makes nested For calls
	// deadlock-free by construction.
	handoff chan func()
	quit    chan struct{}
	once    sync.Once
}

// New builds a pool with the given number of lanes. workers <= 0 selects
// GOMAXPROCS. A pool of one lane spawns no goroutines and runs
// everything inline.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		handoff: make(chan func()),
		quit:    make(chan struct{}),
	}
	// The submitting caller always participates as lane 0, so only
	// workers-1 helper goroutines are needed.
	for i := 0; i < workers-1; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for {
		select {
		case f := <-p.handoff:
			f()
		case <-p.quit:
			return
		}
	}
}

// Workers returns the pool's lane count; a nil pool has one lane.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close stops the pool's goroutines. Closing is idempotent and a nil
// pool's Close is a no-op. For calls issued after Close still complete
// correctly — they just run entirely on the caller.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.once.Do(func() { close(p.quit) })
}

// For runs task(i) for every i in [0, n), using up to Workers lanes
// concurrently, and returns when all indices have completed. Each index
// runs exactly once; tasks must confine their writes to per-index state
// for the result to be bit-identical to the sequential loop.
func (p *Pool) For(n int, task func(i int)) {
	p.ForWorker(n, func(_, i int) { task(i) })
}

// ForWorker is For with a lane id: task(w, i) runs index i on lane w,
// where 0 <= w < Workers() and two tasks running concurrently within
// this call always observe distinct w. Lane ids index per-call scratch
// (model replicas, accumulators); they are NOT distinct across separate
// concurrent For calls, so scratch must belong to the call, not the
// pool.
func (p *Pool) ForWorker(n int, task func(worker, i int)) {
	if n <= 0 {
		return
	}
	if p == nil || p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			task(0, i)
		}
		return
	}
	var next int64
	run := func(lane int) {
		for {
			i := int(atomic.AddInt64(&next, 1)) - 1
			if i >= n {
				return
			}
			task(lane, i)
		}
	}
	helpers := p.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	var wg sync.WaitGroup
	for h := 1; h <= helpers; h++ {
		lane := h
		wg.Add(1)
		f := func() {
			defer wg.Done()
			run(lane)
		}
		select {
		case p.handoff <- f:
		default:
			// No idle worker right now (the pool is saturated, e.g. by
			// sibling experiment cells): skip the helper and let the
			// caller cover its share. Correctness is unaffected — the
			// atomic cursor hands every index to whoever is running.
			wg.Done()
		}
	}
	run(0)
	wg.Wait()
}
