// Package engine provides the work-stealing execution engine behind
// every parallel path of the simulator: client local training, chunked
// test-set evaluation and the segment-parallel weight merge (the
// server-side costs of Fig. 9), as well as the experiment grid runner.
//
// The engine's contract is determinism: a parallel-for over n index
// slots runs every index exactly once, and callers write results only
// into their own slot, so the outcome is bit-identical to a sequential
// loop regardless of the number of workers or the interleaving. The
// pool is persistent (goroutines start once and live until Close) and
// bounded (at most Workers lanes execute concurrently).
//
// Scheduling is work-stealing over bounded per-lane deques. A For call
// publishes helper entries into the deques instead of requiring an idle
// worker to rendezvous, so a pool saturated by an outer grid no longer
// degrades nested calls to caller-inline execution: the entries wait,
// and any lane that runs out of work — a worker between tasks, or a
// caller blocked in a For's completion wait — steals them and joins the
// job. Three properties keep this deadlock-free and contract-preserving:
//
//   - The submitting caller always drains its own index cursor, so every
//     job completes even if no helper ever picks up an entry (entries
//     are hints, not obligations — a full deque just means less help).
//   - A caller waiting for stragglers helps by stealing pending work
//     rather than parking, so blocked lanes keep executing tasks and the
//     deepest nested loops still see multiple lanes.
//   - Lane ids are allocated per job from a bounded free list, so within
//     one For call concurrent tasks always observe distinct lane ids in
//     [0, min(Workers, n)) no matter which goroutines steal in.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// dequeCap bounds each lane's pending-entry deque. A For call publishes
// at most Workers-1 entries, so the cap only matters under deep nesting
// with many jobs in flight; overflow degrades to less help, never to an
// error.
const dequeCap = 64

// Size classes for ForWorkerHinted. The hint is advisory: it reorders
// which pending entry an idle lane picks up first, never which indices
// run or what they compute.
const (
	// SizeCoarse marks tasks of unbounded duration — grid cells, client
	// training rounds. The default for For/ForWorker.
	SizeCoarse = 0
	// SizeFine marks microsecond-scale tasks — GEMM stripes, evaluation
	// chunks, aggregation segments — that would otherwise be parked
	// behind stolen millisecond-scale coarse work.
	SizeFine = 1
)

// priClasses is the number of scheduling priority classes. Idle lanes
// scan pending entries from the highest class down:
//
//	class 2: fine, nested (depth >= 1) — kernel stripes under an outer
//	         task; a lane is already blocked waiting on them
//	class 1: fine, top-level (depth 0) — eval chunks, merge segments
//	class 0: coarse (everything else) — grid cells, round loops
//
// Draining fine work first keeps the latency of a kernel fan-out bounded
// by the fine tasks themselves rather than by whatever coarse cell a
// thief happened to steal moments earlier.
const priClasses = 3

// priClass maps a (size, depth) hint to a scheduling class.
func priClass(size, depth int) int {
	if size != SizeFine {
		return 0
	}
	if depth >= 1 {
		return 2
	}
	return 1
}

// forJob is one For/ForWorker call in flight: an atomic index cursor
// shared by every participant, a completion count, and the bounded set
// of helper lane ids a thief must acquire before running tasks.
type forJob struct {
	task func(worker, i int)
	n    int
	// class is the scheduling priority class (see priClasses). It picks
	// which deque set the job's helper entries are published into and is
	// irrelevant to correctness: the submitter drains the cursor itself.
	class int

	// next is the shared index cursor. It starts at 1: index 0 is
	// reserved for the submitting caller, which guarantees lane 0 always
	// executes work on non-empty jobs.
	next int64
	// done counts completed indices; the goroutine whose completion
	// brings it to n closes fin.
	done int64
	fin  chan struct{}

	// laneMu guards freeLanes, the helper lane ids (1..lanes-1) thieves
	// draw from. Lane 0 is the submitter's and never enters the list, so
	// at most min(Workers, n) lanes ever run this job concurrently and
	// per-lane scratch sized by that bound stays exclusive.
	laneMu    sync.Mutex
	freeLanes []int
}

// newJob builds a job over n indices with the given lane budget and
// scheduling class.
func newJob(task func(worker, i int), n, lanes, class int) *forJob {
	j := &forJob{
		task:      task,
		n:         n,
		class:     class,
		next:      1,
		fin:       make(chan struct{}),
		freeLanes: make([]int, 0, lanes-1),
	}
	// Descending append so thieves pop low lane ids first.
	for l := lanes - 1; l >= 1; l-- {
		j.freeLanes = append(j.freeLanes, l)
	}
	return j
}

// finished reports whether every index has completed.
func (j *forJob) finished() bool {
	return atomic.LoadInt64(&j.done) >= int64(j.n)
}

// acquireLane takes a helper lane id, or reports that the job's lane
// budget is exhausted (enough thieves are already working).
func (j *forJob) acquireLane() (int, bool) {
	j.laneMu.Lock()
	defer j.laneMu.Unlock()
	if len(j.freeLanes) == 0 {
		return 0, false
	}
	l := j.freeLanes[len(j.freeLanes)-1]
	j.freeLanes = j.freeLanes[:len(j.freeLanes)-1]
	return l, true
}

func (j *forJob) releaseLane(l int) {
	j.laneMu.Lock()
	j.freeLanes = append(j.freeLanes, l)
	j.laneMu.Unlock()
}

// complete records k finished indices and signals completion to the
// waiting submitter when the job is drained.
func (j *forJob) complete(k int) {
	if atomic.AddInt64(&j.done, int64(k)) == int64(j.n) {
		close(j.fin)
	}
}

// run drains the shared cursor on the given lane.
func (j *forJob) run(lane int) {
	for {
		i := int(atomic.AddInt64(&j.next, 1)) - 1
		if i >= j.n {
			return
		}
		j.task(lane, i)
		j.complete(1)
	}
}

// participate joins a job popped from a deque: claim a lane, help drain
// the cursor, give the lane back. Entries for drained or fully-staffed
// jobs are no-ops.
func (j *forJob) participate() {
	if j.finished() || int(atomic.LoadInt64(&j.next)) >= j.n {
		return
	}
	lane, ok := j.acquireLane()
	if !ok {
		return
	}
	j.run(lane)
	j.releaseLane(lane)
}

// laneDeque is one lane's bounded deque of pending job entries. The
// owning worker pops its newest entry (LIFO keeps nested work hot);
// thieves take the oldest (FIFO drains the most-starved job first) —
// the classic work-stealing discipline. A mutex per deque is plenty
// here: entries are pushed per For call, not per index.
type laneDeque struct {
	mu    sync.Mutex
	buf   [dequeCap]*forJob
	head  int
	count int
}

// push appends an entry, evicting entries of already-finished jobs if
// the deque is full. Returns false when there is genuinely no room.
func (d *laneDeque) push(j *forJob) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count == dequeCap {
		d.compactLocked()
	}
	if d.count == dequeCap {
		return false
	}
	d.buf[(d.head+d.count)%dequeCap] = j
	d.count++
	return true
}

// compactLocked drops entries whose jobs have already drained — they
// would be no-ops anyway and only pin memory.
func (d *laneDeque) compactLocked() {
	w := 0
	for r := 0; r < d.count; r++ {
		j := d.buf[(d.head+r)%dequeCap]
		if j.finished() {
			continue
		}
		d.buf[(d.head+w)%dequeCap] = j
		w++
	}
	for r := w; r < d.count; r++ {
		d.buf[(d.head+r)%dequeCap] = nil
	}
	d.count = w
}

// popOwn takes the newest entry (owner side).
func (d *laneDeque) popOwn() *forJob {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count == 0 {
		return nil
	}
	d.count--
	idx := (d.head + d.count) % dequeCap
	j := d.buf[idx]
	d.buf[idx] = nil
	return j
}

// popSteal takes the oldest entry (thief side).
func (d *laneDeque) popSteal() *forJob {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.count == 0 {
		return nil
	}
	j := d.buf[d.head]
	d.buf[d.head] = nil
	d.head = (d.head + 1) % dequeCap
	d.count--
	return j
}

// Pool is a persistent bounded work-stealing pool. The zero value is
// not usable; construct with New. A nil *Pool is valid everywhere and
// means "run inline, sequentially", so callers can thread an optional
// pool without branching.
type Pool struct {
	workers int
	// deques[c] is the per-lane deque set for priority class c. Idle
	// lanes scan classes from priClasses-1 down to 0, so fine entries
	// are always drained before coarse ones regardless of arrival order.
	deques [priClasses][]laneDeque
	// rr spreads entry publication and external steal scans across the
	// deques so no single lane becomes the contention point.
	rr int64
	// notify wakes parked workers when entries are published. It is a
	// hint channel: a dropped send is safe because jobs never depend on
	// their entries being drained.
	notify chan struct{}
	quit   chan struct{}
	once   sync.Once

	// Instrumentation (EnableStats/Stats). statsOn gates every counter
	// update behind one atomic load, so the disabled path costs a
	// predictable never-taken branch and the scheduler's behavior is
	// identical either way.
	statsOn      int32
	steals       int64
	enqueues     int64
	fineSteals   int64
	fineEnqueues int64
	busyCur      int64
	busyMax      int64
}

// Stats is a snapshot of the pool's scheduling counters (zero unless
// EnableStats was called): entries published to the deques, successful
// steals of pending entries, and the peak number of tasks observed
// in flight at once. For flat workloads MaxLanesBusy is bounded by
// Workers; under nesting a lane blocked in an outer task while it
// steals inner work counts at every level, so the peak measures
// scheduling depth × occupancy rather than physical lanes.
type Stats struct {
	Enqueues     int64
	Steals       int64
	MaxLanesBusy int64
	// FineEnqueues and FineSteals are the subsets of Enqueues/Steals for
	// fine-class jobs (published via ForWorkerHinted with SizeFine), the
	// traffic the priority classes exist to expedite.
	FineEnqueues int64
	FineSteals   int64
}

// EnableStats turns on the sampled occupancy/steal counters. Counters
// start from zero at enable time; enabling is idempotent and safe at
// any point, including while jobs run. A nil pool ignores the call.
func (p *Pool) EnableStats() {
	if p == nil {
		return
	}
	atomic.StoreInt32(&p.statsOn, 1)
}

// Stats returns the counters gathered since EnableStats. A nil or
// uninstrumented pool reports zeros.
func (p *Pool) Stats() Stats {
	if p == nil {
		return Stats{}
	}
	return Stats{
		Enqueues:     atomic.LoadInt64(&p.enqueues),
		Steals:       atomic.LoadInt64(&p.steals),
		MaxLanesBusy: atomic.LoadInt64(&p.busyMax),
		FineEnqueues: atomic.LoadInt64(&p.fineEnqueues),
		FineSteals:   atomic.LoadInt64(&p.fineSteals),
	}
}

// statsEnabled reports whether counters are live.
func (p *Pool) statsEnabled() bool { return atomic.LoadInt32(&p.statsOn) != 0 }

// noteSteal counts one successful steal of a pending entry of the given
// priority class.
func (p *Pool) noteSteal(class int) {
	if p.statsEnabled() {
		atomic.AddInt64(&p.steals, 1)
		if class > 0 {
			atomic.AddInt64(&p.fineSteals, 1)
		}
	}
}

// busyPeak raises busyMax to cur if larger.
func (p *Pool) busyPeak(cur int64) {
	for {
		m := atomic.LoadInt64(&p.busyMax)
		if cur <= m || atomic.CompareAndSwapInt64(&p.busyMax, m, cur) {
			return
		}
	}
}

// New builds a pool with the given number of lanes. workers <= 0 selects
// GOMAXPROCS. A pool of one lane spawns no goroutines and runs
// everything inline.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		notify:  make(chan struct{}, workers),
		quit:    make(chan struct{}),
	}
	for c := range p.deques {
		p.deques[c] = make([]laneDeque, workers)
	}
	// The submitting caller always participates in its own jobs, so only
	// workers-1 stealing goroutines are needed. Worker g owns deques[g];
	// deques[0] takes spillover publications and is steal-only.
	for g := 1; g < workers; g++ {
		go p.worker(g)
	}
	return p
}

// worker is one stealing goroutine: drain the own deque, steal from
// siblings, park until new entries are announced.
func (p *Pool) worker(id int) {
	for {
		if j := p.grab(id); j != nil {
			j.participate()
			continue
		}
		select {
		case <-p.notify:
		case <-p.quit:
			return
		}
	}
}

// grab pops the lane's own deques first (finest class first), then
// scans the others as a thief, again finest class first.
func (p *Pool) grab(id int) *forJob {
	for c := priClasses - 1; c >= 0; c-- {
		if j := p.deques[c][id].popOwn(); j != nil {
			return j
		}
	}
	for c := priClasses - 1; c >= 0; c-- {
		for k := 1; k < p.workers; k++ {
			if j := p.deques[c][(id+k)%p.workers].popSteal(); j != nil {
				p.noteSteal(c)
				return j
			}
		}
	}
	return nil
}

// grabAny is the steal scan for goroutines that own no deque (external
// callers helping while they wait). Like grab it prefers fine entries.
func (p *Pool) grabAny() *forJob {
	start := int(atomic.AddInt64(&p.rr, 1))
	for c := priClasses - 1; c >= 0; c-- {
		for k := 0; k < p.workers; k++ {
			if j := p.deques[c][(start+k)%p.workers].popSteal(); j != nil {
				p.noteSteal(c)
				return j
			}
		}
	}
	return nil
}

// announce publishes up to k helper entries for j across the per-lane
// deques — one per deque, round-robin — and wakes as many parked
// workers. Unlike the old unbuffered handoff, a saturated pool enqueues
// instead of dropping: the entries wait until some lane runs dry or
// blocks in a completion wait and steals them.
func (p *Pool) announce(j *forJob, k int) {
	if k <= 0 {
		return
	}
	start := int(atomic.AddInt64(&p.rr, 1))
	pushed := 0
	dq := p.deques[j.class]
	for i := 0; i < len(dq) && pushed < k; i++ {
		if dq[(start+i)%len(dq)].push(j) {
			pushed++
		}
	}
	if pushed > 0 && p.statsEnabled() {
		atomic.AddInt64(&p.enqueues, int64(pushed))
		if j.class > 0 {
			atomic.AddInt64(&p.fineEnqueues, int64(pushed))
		}
	}
	for i := 0; i < pushed; i++ {
		select {
		case p.notify <- struct{}{}:
		default:
		}
	}
}

// helpUntil blocks until j completes — but a blocked lane is a wasted
// lane, so while stragglers hold the job open it steals pending entries
// (typically nested jobs of sibling cells) and runs them. When there is
// nothing to steal it parks on BOTH the completion signal and the
// pool's announce wakeups: a thief running one of j's indices may
// announce a nested job after this lane's last scan, and if that
// thief's task then blocks waiting for a sibling index to run
// concurrently, this parked lane is the only one left to recruit —
// parking on fin alone would orphan the entry and deadlock. Every
// consumed wakeup is followed by a scan before fin is honored, so a
// wakeup can never be swallowed by a lane that leaves without looking.
func (p *Pool) helpUntil(j *forJob) {
	for {
		select {
		case <-j.fin:
			return
		default:
		}
		if o := p.grabAny(); o != nil {
			o.participate()
			continue
		}
		select {
		case <-j.fin:
			return
		case <-p.notify:
			if o := p.grabAny(); o != nil {
				o.participate()
			}
		}
	}
}

// Workers returns the pool's lane count; a nil pool has one lane.
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// Close stops the pool's goroutines. Closing is idempotent and a nil
// pool's Close is a no-op. For calls issued after Close still complete
// correctly — they just run entirely on the caller.
func (p *Pool) Close() {
	if p == nil {
		return
	}
	p.once.Do(func() { close(p.quit) })
}

// Closed reports whether Close has been called (a nil pool counts as
// closed). Consumers holding a long-lived reference — the tensor
// kernels' parallel hook — use it to fall back to sequential execution
// instead of publishing work no worker will drain.
func (p *Pool) Closed() bool {
	if p == nil {
		return true
	}
	select {
	case <-p.quit:
		return true
	default:
		return false
	}
}

// For runs task(i) for every i in [0, n), using up to Workers lanes
// concurrently, and returns when all indices have completed. Each index
// runs exactly once; tasks must confine their writes to per-index state
// for the result to be bit-identical to the sequential loop.
func (p *Pool) For(n int, task func(i int)) {
	p.ForWorker(n, func(_, i int) { task(i) })
}

// ForWorker is For with a lane id: task(w, i) runs index i on lane w,
// where 0 <= w < min(Workers(), n) and two tasks running concurrently
// within this call always observe distinct w. Lane ids index per-call
// scratch (model replicas, accumulators); they are NOT distinct across
// separate concurrent For calls, so scratch must belong to the call,
// not the pool.
//
// The call is safe at any nesting depth and any saturation level: the
// caller itself drains the cursor (lane 0 runs index 0 first, then
// whatever the thieves leave), and while waiting for stolen indices to
// finish it steals other pending work instead of parking.
func (p *Pool) ForWorker(n int, task func(worker, i int)) {
	p.ForWorkerHinted(n, SizeCoarse, 0, task)
}

// ForWorkerHinted is ForWorker with a scheduling hint: size is SizeFine
// for microsecond-scale tasks (SizeCoarse otherwise) and depth is the
// nesting depth of the call (0 for top-level fan-outs, >= 1 when the
// call itself runs inside another pool task). Fine jobs publish their
// helper entries into higher-priority deques that idle lanes drain
// before coarse entries, so a kernel stripe fan-out is never parked
// behind a freshly stolen grid cell.
//
// The hint changes only which pending entry a lane picks up first. The
// index→task mapping, the lane-id bounds and the determinism contract
// are exactly ForWorker's, so results are bit-identical for any hint.
func (p *Pool) ForWorkerHinted(n, size, depth int, task func(worker, i int)) {
	if n <= 0 {
		return
	}
	if p != nil && p.statsEnabled() {
		inner := task
		task = func(w, i int) {
			p.busyPeak(atomic.AddInt64(&p.busyCur, 1))
			inner(w, i)
			atomic.AddInt64(&p.busyCur, -1)
		}
	}
	if p == nil || p.workers == 1 || n == 1 {
		for i := 0; i < n; i++ {
			task(0, i)
		}
		return
	}
	lanes := p.workers
	if lanes > n {
		lanes = n
	}
	j := newJob(task, n, lanes, priClass(size, depth))
	p.announce(j, lanes-1)
	// The cursor starts at 1 and index 0 runs here, so lane 0 (the
	// caller) always executes work while thieves start on index 1.
	task(0, 0)
	j.complete(1)
	j.run(0)
	p.helpUntil(j)
}
