package engine

import (
	"math"
	"sync/atomic"
	"testing"
)

// TestPriClassMapping pins the (size, depth) → class mapping the
// scheduler's scan order depends on.
func TestPriClassMapping(t *testing.T) {
	cases := []struct{ size, depth, want int }{
		{SizeCoarse, 0, 0},
		{SizeCoarse, 5, 0},
		{SizeFine, 0, 1},
		{SizeFine, 1, 2},
		{SizeFine, 3, 2},
	}
	for _, c := range cases {
		if got := priClass(c.size, c.depth); got != c.want {
			t.Fatalf("priClass(%d, %d) = %d, want %d", c.size, c.depth, got, c.want)
		}
	}
}

// TestGrabPrefersFineEntries is the white-box priority-order check: with
// no workers running, publish one coarse, one fine-top-level and one
// fine-nested job, then drain via the thief scan. Entries must come back
// finest class first regardless of publication order.
func TestGrabPrefersFineEntries(t *testing.T) {
	// A bare pool: deques but no worker goroutines, so published entries
	// stay where announce put them until this test pops them.
	p := &Pool{workers: 2, notify: make(chan struct{}, 2), quit: make(chan struct{})}
	for c := range p.deques {
		p.deques[c] = make([]laneDeque, p.workers)
	}
	mk := func(size, depth int) *forJob {
		return newJob(func(w, i int) {}, 4, 2, priClass(size, depth))
	}
	coarse := mk(SizeCoarse, 0)
	fineTop := mk(SizeFine, 0)
	fineNested := mk(SizeFine, 1)
	// Publish coarsest first so FIFO order within a class cannot fake the
	// expected result.
	p.announce(coarse, 1)
	p.announce(fineTop, 1)
	p.announce(fineNested, 1)
	for _, want := range []struct {
		name string
		job  *forJob
	}{
		{"fine-nested", fineNested},
		{"fine-top", fineTop},
		{"coarse", coarse},
	} {
		if got := p.grabAny(); got != want.job {
			t.Fatalf("grabAny returned wrong class, want %s entry", want.name)
		}
	}
	if got := p.grabAny(); got != nil {
		t.Fatal("grabAny returned an entry from drained deques")
	}
	// The worker-side scan must honor the same order.
	p.announce(coarse, 1)
	p.announce(fineNested, 1)
	if got := p.grab(1); got != fineNested {
		t.Fatal("grab did not prefer the fine-nested entry")
	}
	if got := p.grab(1); got != coarse {
		t.Fatal("grab lost the coarse entry")
	}
}

// nestedComputeHinted mirrors nestedCompute with the inner fan-out on
// the hinted fine path, the shape the tensor kernels use (coarse outer
// grid, SizeFine depth-1 stripes).
func nestedComputeHinted(p *Pool, outer, inner int) []float64 {
	out := make([]float64, outer*inner)
	p.For(outer, func(i int) {
		cell := make([]float64, inner)
		lanes := p.Workers()
		if lanes > inner {
			lanes = inner
		}
		scratch := make([]float64, lanes)
		p.ForWorkerHinted(inner, SizeFine, 1, func(w, j int) {
			v := math.Sin(float64(i+1)*0.7+float64(j)*0.3) / float64(j+2)
			cell[j] = v
			scratch[w] += v // lane exclusivity: -race is the assertion
		})
		acc := 0.0
		for _, v := range cell {
			acc += v
		}
		for j, v := range cell {
			out[i*inner+j] = v * (1 + acc)
		}
	})
	return out
}

// TestHintedNestedDeterminismMatrix extends the saturation determinism
// gate to the hinted path: hints reorder scheduling, so the results must
// still be bit-identical to the nil-pool sequential reference at every
// width.
func TestHintedNestedDeterminismMatrix(t *testing.T) {
	const outer, inner = 6, 40
	want := nestedComputeHinted(nil, outer, inner)
	plain := nestedCompute(nil, outer, inner)
	for i := range want {
		if want[i] != plain[i] {
			t.Fatalf("hinted sequential reference diverged from plain at %d", i)
		}
	}
	for _, workers := range []int{1, 2, 4, 8} {
		p := New(workers)
		for rep := 0; rep < 3; rep++ {
			got := nestedComputeHinted(p, outer, inner)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("workers=%d rep=%d: slot %d = %v, want %v (not bit-identical)",
						workers, rep, i, got[i], want[i])
				}
			}
		}
		p.Close()
	}
}

// TestHintedLaneBoundUnderStealing is the lane-id contract on the
// hinted path while coarse churn shares the pool: a small fine job's
// lane ids stay below n even though its entries live in different
// deques than the churn's.
func TestHintedLaneBoundUnderStealing(t *testing.T) {
	p := New(8)
	defer p.Close()
	const n = 3
	var bad int32
	stop := make(chan struct{})
	churn := make(chan struct{})
	go func() {
		defer close(churn)
		for {
			select {
			case <-stop:
				return
			default:
			}
			p.For(16, func(i int) {})
		}
	}()
	for rep := 0; rep < 200; rep++ {
		p.ForWorkerHinted(n, SizeFine, 1, func(w, i int) {
			if w < 0 || w >= n {
				atomic.AddInt32(&bad, 1)
			}
		})
	}
	close(stop)
	<-churn
	if bad != 0 {
		t.Fatalf("%d tasks of an n=%d hinted job saw a lane id >= n", bad, n)
	}
}

// TestStatsFineCounters checks fine-class traffic shows up in the fine
// counters and stays a subset of the totals.
func TestStatsFineCounters(t *testing.T) {
	p := New(4)
	defer p.Close()
	p.EnableStats()
	for rep := 0; rep < 8; rep++ {
		p.ForWorkerHinted(32, SizeFine, 1, func(w, i int) {})
		p.ForWorker(32, func(w, i int) {})
	}
	s := p.Stats()
	if s.FineEnqueues == 0 {
		t.Fatal("fine jobs published no fine-class entries")
	}
	if s.FineEnqueues > s.Enqueues {
		t.Fatalf("FineEnqueues %d exceeds Enqueues %d", s.FineEnqueues, s.Enqueues)
	}
	if s.FineSteals > s.Steals {
		t.Fatalf("FineSteals %d exceeds Steals %d", s.FineSteals, s.Steals)
	}
}
