package core

import (
	"math"
	"testing"
	"testing/quick"

	"feddrl/internal/mathx"
	"feddrl/internal/rng"
)

// smallConfig returns a fast configuration for tests.
func smallConfig(k int) Config {
	cfg := DefaultConfig(k)
	cfg.Hidden = 16
	cfg.BatchSize = 8
	cfg.UpdatesPerRound = 2
	cfg.WarmupExperiences = 4
	cfg.BufferCap = 256
	return cfg
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	cfg := DefaultConfig(10)
	if cfg.Hidden != 256 {
		t.Fatalf("hidden %d, Table 1 says 256", cfg.Hidden)
	}
	if cfg.PolicyLR != 1e-4 || cfg.ValueLR != 1e-3 {
		t.Fatalf("lrs %v/%v, Table 1 says 1e-4/1e-3", cfg.PolicyLR, cfg.ValueLR)
	}
	if cfg.BufferCap != 100000 {
		t.Fatalf("buffer %d, Table 1 says 100000", cfg.BufferCap)
	}
	if cfg.Gamma != 0.99 || cfg.Rho != 0.02 {
		t.Fatalf("gamma/rho %v/%v, Table 1 says 0.99/0.02", cfg.Gamma, cfg.Rho)
	}
	cfg.Validate()
	if cfg.StateDim() != 30 || cfg.ActionDim() != 20 {
		t.Fatalf("dims %d/%d, want 30/20", cfg.StateDim(), cfg.ActionDim())
	}
}

func TestConfigValidatePanics(t *testing.T) {
	mut := []func(*Config){
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.Hidden = 0 },
		func(c *Config) { c.PolicyLR = 0 },
		func(c *Config) { c.Gamma = 1 },
		func(c *Config) { c.Rho = 0 },
		func(c *Config) { c.Beta = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.WarmupExperiences = 0 },
		func(c *Config) { c.ExploreStd = -1 },
		func(c *Config) { c.RewardGapWeight = -1 },
	}
	for i, m := range mut {
		cfg := DefaultConfig(4)
		m(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("mutation %d did not panic", i)
				}
			}()
			cfg.Validate()
		}()
	}
}

func TestBuildState(t *testing.T) {
	cfg := smallConfig(3)
	cfg.NormalizeState = false
	a := NewAgent(cfg)
	s := a.BuildState([]float64{1, 2, 3}, []float64{4, 5, 6}, []int{10, 20, 30})
	want := []float64{1, 2, 3, 4, 5, 6, 10, 20, 30}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("state = %v", s)
		}
	}
}

func TestBuildStateNormalized(t *testing.T) {
	cfg := smallConfig(2)
	cfg.NormalizeState = true
	a := NewAgent(cfg)
	s := a.BuildState([]float64{1, 3}, []float64{2, 2}, []int{25, 75})
	// Counts become fractions.
	if math.Abs(s[2]-2.0/3) > 1e-12 && math.Abs(s[2]-0.25) > 1e-12 {
		// s layout: [lb0 lb1 la0 la1 n0 n1]
	}
	if math.Abs(s[4]-0.25) > 1e-12 || math.Abs(s[5]-0.75) > 1e-12 {
		t.Fatalf("normalized counts = %v", s[4:])
	}
	// Losses scaled by 1/(1+mean(lb)) = 1/3.
	if math.Abs(s[0]-1.0/3) > 1e-12 || math.Abs(s[1]-1) > 1e-12 {
		t.Fatalf("normalized losses = %v", s[:2])
	}
}

func TestBuildStatePanicsOnWrongK(t *testing.T) {
	a := NewAgent(smallConfig(3))
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-K state did not panic")
		}
	}()
	a.BuildState([]float64{1}, []float64{1}, []int{1})
}

func TestActShapeAndConstraint(t *testing.T) {
	cfg := smallConfig(5)
	a := NewAgent(cfg)
	state := make([]float64, cfg.StateDim())
	for i := range state {
		state[i] = float64(i) * 0.1
	}
	act := a.Act(state, false)
	if len(act) != 10 {
		t.Fatalf("action length %d", len(act))
	}
	for j := 0; j < 5; j++ {
		sigma, mu := act[5+j], act[j]
		if sigma < 0 {
			t.Fatalf("negative sigma %v", sigma)
		}
		if sigma > cfg.Beta*math.Abs(mu)+1e-12 {
			t.Fatalf("Eq. 6 violated: sigma %v > beta*|mu| %v", sigma, cfg.Beta*math.Abs(mu))
		}
	}
}

func TestActConstraintProperty(t *testing.T) {
	// Property: for arbitrary states and exploration, σ ≤ β·|μ| always.
	cfg := smallConfig(4)
	a := NewAgent(cfg)
	f := func(raw []float64, explore bool) bool {
		state := make([]float64, cfg.StateDim())
		for i := range state {
			if i < len(raw) {
				state[i] = math.Mod(raw[i], 10)
				if math.IsNaN(state[i]) {
					state[i] = 0
				}
			}
		}
		act := a.Act(state, explore)
		for j := 0; j < cfg.K; j++ {
			if act[cfg.K+j] > cfg.Beta*math.Abs(act[j])+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestImpactFactorsConvexCombination(t *testing.T) {
	cfg := smallConfig(6)
	a := NewAgent(cfg)
	f := func(raw []float64, explore bool) bool {
		act := make([]float64, cfg.ActionDim())
		for i := range act {
			if i < len(raw) {
				act[i] = math.Mod(raw[i], 20)
				if math.IsNaN(act[i]) {
					act[i] = 0
				}
			}
		}
		// Sigmas non-negative.
		for j := cfg.K; j < 2*cfg.K; j++ {
			act[j] = math.Abs(act[j])
		}
		alpha := a.ImpactFactors(act, explore)
		if len(alpha) != cfg.K {
			return false
		}
		sum := 0.0
		for _, v := range alpha {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestImpactFactorsDeterministicWithoutExplore(t *testing.T) {
	a := NewAgent(smallConfig(3))
	act := []float64{1, 2, 3, 0.1, 0.1, 0.1}
	p1 := a.ImpactFactors(act, false)
	p2 := a.ImpactFactors(act, false)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("evaluation-mode impact factors not deterministic")
		}
	}
	// Larger mean → larger factor.
	if !(p1[2] > p1[1] && p1[1] > p1[0]) {
		t.Fatalf("monotonicity violated: %v", p1)
	}
}

func TestRewardEq7(t *testing.T) {
	a := NewAgent(smallConfig(3))
	// losses [1,2,3]: mean 2, gap 2 → r = -4.
	if r := a.Reward([]float64{1, 2, 3}); math.Abs(r+4) > 1e-12 {
		t.Fatalf("reward = %v, want -4", r)
	}
	// Uniform losses: gap 0 → r = -mean.
	if r := a.Reward([]float64{2, 2, 2}); math.Abs(r+2) > 1e-12 {
		t.Fatalf("reward = %v, want -2", r)
	}
	// Lower losses ⇒ higher reward (the agent prefers better global models).
	if a.Reward([]float64{0.5, 0.5, 0.5}) <= a.Reward([]float64{3, 3, 3}) {
		t.Fatal("reward not monotone in loss")
	}
	// Fairness: same mean, smaller gap ⇒ higher reward.
	if a.Reward([]float64{2, 2, 2}) <= a.Reward([]float64{1, 2, 3}) {
		t.Fatal("reward does not prefer balanced losses")
	}
}

func TestRewardGapWeightAblation(t *testing.T) {
	cfg := smallConfig(3)
	cfg.RewardGapWeight = 0
	a := NewAgent(cfg)
	// With gap weight 0, only the mean matters.
	if a.Reward([]float64{1, 2, 3}) != a.Reward([]float64{2, 2, 2}) {
		t.Fatal("gap ablation did not remove fairness term")
	}
}

func TestObserveAndWarmup(t *testing.T) {
	cfg := smallConfig(2)
	a := NewAgent(cfg)
	s := make([]float64, cfg.StateDim())
	act := make([]float64, cfg.ActionDim())
	if a.ReadyToTrain() {
		t.Fatal("fresh agent should not be ready")
	}
	for i := 0; i < cfg.WarmupExperiences; i++ {
		if !a.Observe(s, act, -1, s) {
			t.Fatal("valid observation rejected")
		}
	}
	if !a.ReadyToTrain() {
		t.Fatal("agent should be ready after warmup")
	}
}

func TestObserveRejectsNaN(t *testing.T) {
	cfg := smallConfig(2)
	a := NewAgent(cfg)
	s := make([]float64, cfg.StateDim())
	act := make([]float64, cfg.ActionDim())
	if a.Observe(s, act, math.NaN(), s) {
		t.Fatal("NaN reward accepted")
	}
	bad := append([]float64(nil), s...)
	bad[0] = math.Inf(1)
	if a.Observe(bad, act, 0, s) {
		t.Fatal("Inf state accepted")
	}
	if a.Buffer.Len() != 0 {
		t.Fatal("buffer should be empty after rejections")
	}
}

func TestTrainIsNoopBeforeWarmup(t *testing.T) {
	cfg := smallConfig(2)
	a := NewAgent(cfg)
	before := a.PolicyParams()
	a.Train()
	after := a.PolicyParams()
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("Train before warmup modified the policy")
		}
	}
}

func TestTrainUpdatesNetworks(t *testing.T) {
	cfg := smallConfig(2)
	a := NewAgent(cfg)
	r := rng.New(7)
	s := make([]float64, cfg.StateDim())
	for i := 0; i < 20; i++ {
		for j := range s {
			s[j] = r.Float64()
		}
		act := a.Act(s, true)
		a.Observe(s, act, -r.Float64(), s)
	}
	before := a.PolicyParams()
	a.Train()
	after := a.PolicyParams()
	changed := false
	for i := range before {
		if before[i] != after[i] {
			changed = true
			break
		}
	}
	if !changed {
		t.Fatal("Train did not update the policy")
	}
	if !mathx.AllFinite(after) {
		t.Fatal("training produced non-finite parameters")
	}
}

func TestDeterministicAgent(t *testing.T) {
	run := func() []float64 {
		cfg := smallConfig(3)
		a := NewAgent(cfg)
		s := make([]float64, cfg.StateDim())
		for i := 0; i < 10; i++ {
			for j := range s {
				s[j] = float64(i+j) * 0.01
			}
			act := a.Act(s, true)
			a.Observe(s, act, -1, s)
			a.Train()
		}
		return a.PolicyParams()
	}
	p1, p2 := run(), run()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("agent is not deterministic under a fixed seed")
		}
	}
}

// banditEnv is a 1-step environment whose reward depends on how much
// probability mass the softmaxed action means place on a designated
// "good" arm. The optimal policy pushes the good arm's mean up.
type banditEnv struct {
	k    int
	good int
	a    *Agent
}

func (e *banditEnv) Reset() []float64 { return make([]float64, 3*e.k) }
func (e *banditEnv) Step(action []float64) ([]float64, float64, bool) {
	alpha := e.a.ImpactFactors(action, false)
	return make([]float64, 3*e.k), alpha[e.good] - 1, true
}

func TestAgentLearnsBandit(t *testing.T) {
	cfg := smallConfig(3)
	cfg.UpdatesPerRound = 4
	cfg.ExploreStd = 0.3
	a := NewAgent(cfg)
	env := &banditEnv{k: 3, good: 1, a: a}
	s := env.Reset()
	for i := 0; i < 300; i++ {
		act := a.Act(s, true)
		s2, r, _ := env.Step(act)
		a.ObserveDone(s, act, r, s2) // episodic: no bootstrap
		a.Train()
		s = env.Reset()
	}
	final := a.ImpactFactors(a.Act(env.Reset(), false), false)
	if mathx.ArgMax(final) != 1 {
		t.Fatalf("agent failed to favor the good arm: %v", final)
	}
	if final[1] < 0.4 {
		t.Fatalf("good-arm weight too small: %v", final)
	}
}
