package core

import (
	"math"
	"testing"
	"testing/quick"
)

func TestImpactFactorsWithPriorZeroActionIsPrior(t *testing.T) {
	a := NewAgent(smallConfig(4))
	prior := []float64{0.1, 0.2, 0.3, 0.4}
	act := make([]float64, 8) // zero means, zero sigmas
	got := a.ImpactFactorsWithPrior(act, prior, false)
	for i := range prior {
		if math.Abs(got[i]-prior[i]) > 1e-9 {
			t.Fatalf("zero action should reproduce the prior: %v vs %v", got, prior)
		}
	}
}

func TestImpactFactorsWithPriorShiftsMass(t *testing.T) {
	a := NewAgent(smallConfig(3))
	prior := []float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	act := make([]float64, 6)
	act[1] = 2 // boost client 1
	got := a.ImpactFactorsWithPrior(act, prior, false)
	if got[1] <= got[0] || got[1] <= got[2] {
		t.Fatalf("positive deviation did not raise weight: %v", got)
	}
}

func TestImpactFactorsWithPriorConvexProperty(t *testing.T) {
	cfg := smallConfig(5)
	a := NewAgent(cfg)
	f := func(raw []float64, explore bool) bool {
		act := make([]float64, cfg.ActionDim())
		prior := make([]float64, cfg.K)
		sum := 0.0
		for i := 0; i < cfg.K; i++ {
			if i < len(raw) {
				v := math.Mod(math.Abs(raw[i]), 5)
				if math.IsNaN(v) {
					v = 0
				}
				prior[i] = v
			}
			prior[i] += 0.01
			sum += prior[i]
			if i < len(raw) {
				act[i] = math.Mod(raw[i], 10)
				if math.IsNaN(act[i]) {
					act[i] = 0
				}
			}
			act[cfg.K+i] = 0.05
		}
		for i := range prior {
			prior[i] /= sum
		}
		alpha := a.ImpactFactorsWithPrior(act, prior, explore)
		total := 0.0
		for _, v := range alpha {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
			total += v
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestImpactFactorsWithPriorHandlesZeroPrior(t *testing.T) {
	a := NewAgent(smallConfig(3))
	prior := []float64{0, 0.5, 0.5} // a starved client
	act := make([]float64, 6)
	got := a.ImpactFactorsWithPrior(act, prior, false)
	for _, v := range got {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("zero prior produced non-finite weights: %v", got)
		}
	}
	if got[0] > 1e-6 {
		t.Fatalf("zero-prior client got weight %v", got[0])
	}
}

func TestImpactFactorsWithPriorPanics(t *testing.T) {
	a := NewAgent(smallConfig(3))
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	a.ImpactFactorsWithPrior(make([]float64, 6), []float64{0.5, 0.5}, false)
}

func TestExploreDecayReducesNoise(t *testing.T) {
	cfg := smallConfig(2)
	cfg.ExploreStd = 1.0
	cfg.ExploreDecay = 0.5
	a := NewAgent(cfg)
	state := make([]float64, cfg.StateDim())
	base := a.Act(state, false) // deterministic reference
	// Average |noise| over several actions early vs late.
	dev := func(n int) float64 {
		total := 0.0
		for i := 0; i < n; i++ {
			act := a.Act(state, true)
			for j := range base {
				total += math.Abs(act[j] - base[j])
			}
		}
		return total / float64(n)
	}
	early := dev(5)
	// After 5 actions the scale has decayed by 0.5^5 = 1/32.
	late := dev(5)
	if late >= early {
		t.Fatalf("exploration did not decay: early %v late %v", early, late)
	}
}
