package core

import (
	"testing"

	"feddrl/internal/mathx"
)

// lineEnv rewards pushing the first action mean toward a target value.
type lineEnv struct {
	k      int
	target float64
}

func (e *lineEnv) Reset() []float64 { return make([]float64, 3*e.k) }
func (e *lineEnv) Step(action []float64) ([]float64, float64, bool) {
	d := action[0] - e.target
	return make([]float64, 3*e.k), -d * d, true
}

func TestTrainTwoStageRuns(t *testing.T) {
	cfg := smallConfig(2)
	cfg.UpdatesPerRound = 2
	res := TrainTwoStage(cfg, func(w int, seed uint64) Env {
		return &lineEnv{k: 2, target: 0.5}
	}, 2, 30, 10)
	if res.Agent == nil {
		t.Fatal("no main agent returned")
	}
	if len(res.WorkerExperiences) != 2 {
		t.Fatalf("worker count %d", len(res.WorkerExperiences))
	}
	for w, n := range res.WorkerExperiences {
		if n == 0 {
			t.Fatalf("worker %d collected no experience", w)
		}
	}
	// Centralized buffer received the gathered experience.
	if res.Agent.Buffer.Len() == 0 {
		t.Fatal("main buffer empty after merge")
	}
	if res.OfflineUpdates != 10*cfg.UpdatesPerRound {
		t.Fatalf("offline updates %d", res.OfflineUpdates)
	}
	if !mathx.AllFinite(res.Agent.PolicyParams()) {
		t.Fatal("two-stage training produced non-finite policy")
	}
}

func TestTwoStageWorkersDiverge(t *testing.T) {
	// Workers start identical in architecture but different seeds; their
	// experience contents must differ ("they will evolve into distinct
	// individuals", §3.4.2).
	cfg := smallConfig(2)
	res := TrainTwoStage(cfg, func(w int, seed uint64) Env {
		return &lineEnv{k: 2, target: float64(w)}
	}, 2, 20, 0)
	if res.Agent.Buffer.Len() < 20 {
		t.Fatalf("merged buffer too small: %d", res.Agent.Buffer.Len())
	}
}

func TestTwoStageDeterministic(t *testing.T) {
	cfg := smallConfig(2)
	run := func() []float64 {
		res := TrainTwoStage(cfg, func(w int, seed uint64) Env {
			return &lineEnv{k: 2, target: 0.3}
		}, 2, 15, 5)
		return res.Agent.PolicyParams()
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("two-stage training is not deterministic")
		}
	}
}

func TestTwoStagePanics(t *testing.T) {
	cfg := smallConfig(2)
	defer func() {
		if recover() == nil {
			t.Fatal("zero workers did not panic")
		}
	}()
	TrainTwoStage(cfg, func(w int, seed uint64) Env { return &lineEnv{k: 2} }, 0, 10, 1)
}
