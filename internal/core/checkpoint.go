package core

import (
	"fmt"
	"strconv"

	"feddrl/internal/serialize"
)

// Checkpoint serializes the agent's four networks (main and target,
// policy and value) plus the identifying configuration into a
// serialize.Checkpoint. The experience buffer is not persisted: a
// restored agent resumes with fresh experience, which is the correct
// semantic for deploying a trained policy (the two-stage trainer's main
// agent) onto a new federation.
func (a *Agent) Checkpoint() *serialize.Checkpoint {
	c := serialize.NewCheckpoint()
	c.Meta["kind"] = "feddrl-agent"
	c.Meta["k"] = strconv.Itoa(a.cfg.K)
	c.Meta["hidden"] = strconv.Itoa(a.cfg.Hidden)
	a.policy.SaveInto(c, "policy")
	a.policyT.SaveInto(c, "policyT")
	a.value.SaveInto(c, "value")
	a.valueT.SaveInto(c, "valueT")
	return c
}

// RestoreAgent rebuilds an agent from a checkpoint produced by
// Agent.Checkpoint. The supplied configuration must agree with the
// checkpoint's K and Hidden (the architecture keys); all other
// hyperparameters may differ (e.g. new exploration settings for a new
// deployment).
func RestoreAgent(cfg Config, c *serialize.Checkpoint) (*Agent, error) {
	if c.Meta["kind"] != "feddrl-agent" {
		return nil, fmt.Errorf("core: checkpoint kind %q is not a feddrl-agent", c.Meta["kind"])
	}
	if k, _ := strconv.Atoi(c.Meta["k"]); k != cfg.K {
		return nil, fmt.Errorf("core: checkpoint K=%s does not match config K=%d", c.Meta["k"], cfg.K)
	}
	if h, _ := strconv.Atoi(c.Meta["hidden"]); h != cfg.Hidden {
		return nil, fmt.Errorf("core: checkpoint hidden=%s does not match config hidden=%d", c.Meta["hidden"], cfg.Hidden)
	}
	a := NewAgent(cfg)
	if err := a.policy.LoadFrom(c, "policy"); err != nil {
		return nil, err
	}
	if err := a.policyT.LoadFrom(c, "policyT"); err != nil {
		return nil, err
	}
	if err := a.value.LoadFrom(c, "value"); err != nil {
		return nil, err
	}
	if err := a.valueT.LoadFrom(c, "valueT"); err != nil {
		return nil, err
	}
	return a, nil
}

// SaveFile writes the agent checkpoint to a file.
func (a *Agent) SaveFile(path string) error { return a.Checkpoint().SaveFile(path) }

// LoadAgentFile restores an agent from a checkpoint file.
func LoadAgentFile(cfg Config, path string) (*Agent, error) {
	c, err := serialize.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return RestoreAgent(cfg, c)
}
