// Package core implements the paper's primary contribution: the
// DDPG-style deep-reinforcement-learning agent that adaptively assigns
// per-client impact factors for federated model aggregation (FedDRL,
// §3.3–3.4).
//
// The agent maintains a policy network and a value network, each with a
// ρ-soft-updated target copy (Fig. 3a). The state is the 3K vector of
// per-client global-model losses, local-model losses and sample counts
// (§3.3.2); the action is 2K Gaussian parameters (K means, K standard
// deviations, §3.3.3) constrained by σ ≤ β·μ (Eq. 6); impact factors are
// the softmax of per-client Gaussian draws (Eq. 5); and the reward is the
// negated sum of the average client loss and the max–min loss gap
// (Eq. 7 — see DESIGN.md for the sign convention). Training follows
// Algorithm 1 with TD-prioritized experience replay, and the two-stage
// strategy of §3.4.2 is provided by TrainTwoStage.
package core

import "fmt"

// Config holds the agent hyperparameters. Defaults follow Table 1.
type Config struct {
	// K is the number of participating clients per round; the action has
	// 2K entries and the state 3K.
	K int
	// Hidden is the width of the policy/value hidden layers (Table 1: 256).
	Hidden int
	// PolicyLR and ValueLR are the Adam learning rates (Table 1: 1e-4, 1e-3).
	PolicyLR, ValueLR float64
	// Gamma is the discount factor (Table 1: 0.99).
	Gamma float64
	// Rho is the soft main→target update factor (Table 1: 0.02).
	Rho float64
	// Beta bounds the action standard deviations: σ ≤ Beta·|μ| (Eq. 6).
	Beta float64
	// BufferCap is the experience buffer capacity (Table 1: 100 000).
	BufferCap int
	// BatchSize is the replay batch size per update.
	BatchSize int
	// UpdatesPerRound is F of Algorithm 1: value/policy updates per
	// training call.
	UpdatesPerRound int
	// WarmupExperiences is the minimum buffer fill before training
	// ("if D is sufficient", Algorithm 2 line 19).
	WarmupExperiences int
	// ExploreStd is the scale of the Gaussian exploration noise ε added
	// to the policy output during online action selection (Alg. 2 line 14).
	ExploreStd float64
	// ExploreDecay multiplies the exploration scale after every
	// exploratory action (standard DDPG practice; the paper is silent, so
	// 1 — no decay — stays faithful to the printed algorithm while the
	// default 0.995 stabilizes short runs; see DESIGN.md).
	ExploreDecay float64
	// MaxGradNorm clips DRL gradients for stability (0 disables).
	MaxGradNorm float64
	// NormalizeState scales the state's loss entries by 1/(1+mean loss)
	// and sample counts to fractions. Ablated in bench_test.go.
	NormalizeState bool
	// RewardGapWeight scales the fairness (max−min) term of the reward;
	// 1 reproduces Eq. 7, 0 ablates it.
	RewardGapWeight float64
	// Seed drives all agent randomness.
	Seed uint64
}

// DefaultConfig returns the Table 1 configuration for K participating
// clients.
func DefaultConfig(k int) Config {
	return Config{
		K:                 k,
		Hidden:            256,
		PolicyLR:          1e-4,
		ValueLR:           1e-3,
		Gamma:             0.99,
		Rho:               0.02,
		Beta:              0.2,
		BufferCap:         100000,
		BatchSize:         64,
		UpdatesPerRound:   8,
		WarmupExperiences: 16,
		ExploreStd:        0.1,
		ExploreDecay:      0.995,
		MaxGradNorm:       5,
		NormalizeState:    true,
		RewardGapWeight:   1,
		Seed:              1,
	}
}

// StateDim returns the state vector length (3K, §3.3.2).
func (c Config) StateDim() int { return 3 * c.K }

// ActionDim returns the action vector length (2K, §3.3.3).
func (c Config) ActionDim() int { return 2 * c.K }

// Validate panics on an inconsistent configuration.
func (c Config) Validate() {
	switch {
	case c.K <= 0:
		panic("core: K must be positive")
	case c.Hidden <= 0:
		panic("core: Hidden must be positive")
	case c.PolicyLR <= 0 || c.ValueLR <= 0:
		panic("core: learning rates must be positive")
	case c.Gamma < 0 || c.Gamma >= 1:
		panic(fmt.Sprintf("core: Gamma %v out of [0,1)", c.Gamma))
	case c.Rho <= 0 || c.Rho > 1:
		panic(fmt.Sprintf("core: Rho %v out of (0,1]", c.Rho))
	case c.Beta <= 0 || c.Beta > 1:
		panic(fmt.Sprintf("core: Beta %v out of (0,1]", c.Beta))
	case c.BufferCap <= 0 || c.BatchSize <= 0 || c.UpdatesPerRound <= 0:
		panic("core: buffer/batch/update sizes must be positive")
	case c.WarmupExperiences < 1:
		panic("core: WarmupExperiences must be at least 1")
	case c.ExploreStd < 0:
		panic("core: ExploreStd must be non-negative")
	case c.ExploreDecay <= 0 || c.ExploreDecay > 1:
		panic(fmt.Sprintf("core: ExploreDecay %v out of (0,1]", c.ExploreDecay))
	case c.RewardGapWeight < 0:
		panic("core: RewardGapWeight must be non-negative")
	}
}
