package core

import (
	"sync"
)

// Env abstracts the environment the agent interacts with: for FedDRL it
// is the federated-learning loop itself (state = client losses and sample
// counts, action = impact factors, reward = Eq. 7 on the next round's
// losses). Tests use lightweight synthetic environments.
type Env interface {
	// Reset starts an episode and returns the initial state.
	Reset() []float64
	// Step applies an action and returns the next state, the reward and
	// whether the episode ended.
	Step(action []float64) (next []float64, reward float64, done bool)
}

// TwoStageResult reports the outcome of TrainTwoStage.
type TwoStageResult struct {
	Agent             *Agent
	WorkerExperiences []int
	OfflineUpdates    int
}

// TrainTwoStage implements the two-stage training strategy of §3.4.2
// (Fig. 3b).
//
// Stage 1 (online): `workers` identical agents (differing only in seed)
// interact with independent environments in parallel goroutines for
// `stepsPerWorker` transitions each, training online and filling their
// own buffers. Although initially identical, the workers evolve into
// distinct individuals, so their experiences differ.
//
// Stage 2 (offline): the workers' buffers are merged into the main
// agent's centralized buffer and the main agent is trained offline for
// `offlineRounds` calls of Algorithm 1 without touching an environment.
//
// The main agent's networks are initialized from the first worker (the
// workers have already learned online; starting offline training from
// scratch would discard stage 1's optimization, and the paper trains the
// main agent *using* the gathered experience to boost, not replace, the
// online phase).
func TrainTwoStage(cfg Config, makeEnv func(worker int, seed uint64) Env, workers, stepsPerWorker, offlineRounds int) TwoStageResult {
	cfg.Validate()
	if workers <= 0 || stepsPerWorker <= 0 || offlineRounds < 0 {
		panic("core: TrainTwoStage with non-positive sizes")
	}

	agents := make([]*Agent, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wcfg := cfg
		wcfg.Seed = cfg.Seed + uint64(w)*0x9e37
		agents[w] = NewAgent(wcfg)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runWorker(agents[w], makeEnv(w, agents[w].cfg.Seed), stepsPerWorker)
		}(w)
	}
	wg.Wait()

	mainCfg := cfg
	mainCfg.Seed = cfg.Seed + 0xfeedd
	main := NewAgent(mainCfg)
	main.CopyPolicyFrom(agents[0])
	workerBufs := make([]int, workers)
	for w, ag := range agents {
		workerBufs[w] = ag.Buffer.Len()
	}
	mergeBuffers(main, agents)
	for i := 0; i < offlineRounds; i++ {
		main.Train()
	}
	return TwoStageResult{Agent: main, WorkerExperiences: workerBufs, OfflineUpdates: offlineRounds * cfg.UpdatesPerRound}
}

// runWorker drives one online agent through its environment.
func runWorker(a *Agent, env Env, steps int) {
	s := env.Reset()
	for t := 0; t < steps; t++ {
		act := a.Act(s, true)
		s2, r, done := env.Step(act)
		if done {
			a.ObserveDone(s, act, r, s2)
			s = env.Reset()
		} else {
			a.Observe(s, act, r, s2)
			s = s2
		}
		a.Train()
	}
}

// mergeBuffers gathers the workers' experience into the main agent's
// centralized buffer (Fig. 3b "Gathering").
func mergeBuffers(main *Agent, workers []*Agent) {
	for _, w := range workers {
		main.Buffer.Merge(w.Buffer)
	}
}
