package core

import (
	"path/filepath"
	"testing"
)

func TestAgentCheckpointRoundTrip(t *testing.T) {
	cfg := smallConfig(3)
	a := NewAgent(cfg)
	// Train a little so networks are non-trivial.
	s := make([]float64, cfg.StateDim())
	for i := 0; i < 10; i++ {
		s[0] = float64(i)
		act := a.Act(s, true)
		a.Observe(s, act, -1, s)
		a.Train()
	}
	c := a.Checkpoint()
	restored, err := RestoreAgent(cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	// Restored policy must produce identical deterministic actions.
	state := make([]float64, cfg.StateDim())
	for i := range state {
		state[i] = 0.1 * float64(i)
	}
	a1 := a.Act(state, false)
	a2 := restored.Act(state, false)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("restored action diverges at %d: %v vs %v", i, a1[i], a2[i])
		}
	}
	// Q values too.
	if a.QValue(state, a1) != restored.QValue(state, a1) {
		t.Fatal("restored value network diverges")
	}
	// Buffer is intentionally fresh.
	if restored.Buffer.Len() != 0 {
		t.Fatal("restored agent should have an empty buffer")
	}
}

func TestAgentCheckpointFile(t *testing.T) {
	cfg := smallConfig(2)
	a := NewAgent(cfg)
	path := filepath.Join(t.TempDir(), "agent.ckpt")
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadAgentFile(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	s := make([]float64, cfg.StateDim())
	if got, want := restored.Act(s, false), a.Act(s, false); got[0] != want[0] {
		t.Fatal("file round trip lost policy")
	}
}

func TestRestoreAgentRejectsMismatch(t *testing.T) {
	cfg := smallConfig(3)
	a := NewAgent(cfg)
	c := a.Checkpoint()

	wrongK := smallConfig(4)
	if _, err := RestoreAgent(wrongK, c); err == nil {
		t.Fatal("K mismatch accepted")
	}
	wrongH := smallConfig(3)
	wrongH.Hidden = 99
	if _, err := RestoreAgent(wrongH, c); err == nil {
		t.Fatal("hidden mismatch accepted")
	}
	c.Meta["kind"] = "other"
	if _, err := RestoreAgent(cfg, c); err == nil {
		t.Fatal("wrong kind accepted")
	}
}

func TestRestoreAgentMissingVector(t *testing.T) {
	cfg := smallConfig(2)
	c := NewAgent(cfg).Checkpoint()
	delete(c.Vectors, "value")
	if _, err := RestoreAgent(cfg, c); err == nil {
		t.Fatal("missing vector accepted")
	}
}
