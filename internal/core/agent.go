package core

import (
	"fmt"
	"math"

	"feddrl/internal/mathx"
	"feddrl/internal/nn"
	"feddrl/internal/replay"
	"feddrl/internal/rng"
	"feddrl/internal/tensor"
)

// Agent is the DDPG-style impact-factor agent of §3.4.1 (Fig. 3a): main
// and target policy networks, main and target value networks, and a
// TD-prioritized experience buffer. It is not safe for concurrent use;
// the two-stage trainer runs one Agent per worker.
type Agent struct {
	cfg Config

	policy, policyT *nn.Network
	value, valueT   *nn.Network
	popt, vopt      *nn.Adam

	// Buffer is the agent's experience store; exposed for the two-stage
	// merge (Fig. 3b).
	Buffer *replay.Buffer

	rng *rng.RNG

	// exploreScale decays multiplicatively with every exploratory action.
	exploreScale float64
}

// NewAgent builds an agent from the configuration.
func NewAgent(cfg Config) *Agent {
	cfg.Validate()
	r := rng.New(cfg.Seed)
	a := &Agent{
		cfg:     cfg,
		policy:  nn.NewPolicyMLP(r.Split(), cfg.StateDim(), cfg.K, cfg.Hidden),
		policyT: nn.NewPolicyMLP(r.Split(), cfg.StateDim(), cfg.K, cfg.Hidden),
		value:   nn.NewValueMLP(r.Split(), cfg.StateDim(), cfg.ActionDim(), cfg.Hidden),
		valueT:  nn.NewValueMLP(r.Split(), cfg.StateDim(), cfg.ActionDim(), cfg.Hidden),
		Buffer:  replay.New(cfg.BufferCap, r.Split()),
		rng:     r,

		exploreScale: 1,
	}
	a.popt = nn.NewAdam(cfg.PolicyLR)
	a.vopt = nn.NewAdam(cfg.ValueLR)
	a.popt.MaxGradNorm = cfg.MaxGradNorm
	a.vopt.MaxGradNorm = cfg.MaxGradNorm
	// Targets start as exact copies of the mains (Algorithm 1 input).
	a.policyT.CopyFrom(a.policy)
	a.valueT.CopyFrom(a.value)
	return a
}

// Config returns the agent's configuration.
func (a *Agent) Config() Config { return a.cfg }

// BuildState assembles the 3K state of §3.3.2 from the per-client
// global-model losses (l_b), local-model losses (l_a) and sample counts.
// With NormalizeState, losses are scaled by 1/(1+mean(l_b)) and counts
// become fractions of the round total.
func (a *Agent) BuildState(lossesBefore, lossesAfter []float64, sampleCounts []int) []float64 {
	return BuildState(a.cfg, lossesBefore, lossesAfter, sampleCounts)
}

// BuildState is the package-level form of Agent.BuildState, usable by
// environments that simulate the server without holding an agent.
func BuildState(cfg Config, lossesBefore, lossesAfter []float64, sampleCounts []int) []float64 {
	k := cfg.K
	if len(lossesBefore) != k || len(lossesAfter) != k || len(sampleCounts) != k {
		panic(fmt.Sprintf("core: BuildState expects %d clients, got %d/%d/%d",
			k, len(lossesBefore), len(lossesAfter), len(sampleCounts)))
	}
	s := make([]float64, 3*k)
	copy(s[:k], lossesBefore)
	copy(s[k:2*k], lossesAfter)
	total := 0
	for _, n := range sampleCounts {
		total += n
	}
	for i, n := range sampleCounts {
		if cfg.NormalizeState && total > 0 {
			s[2*k+i] = float64(n) / float64(total)
		} else {
			s[2*k+i] = float64(n)
		}
	}
	if cfg.NormalizeState {
		scale := 1 / (1 + mathx.Mean(lossesBefore))
		for i := 0; i < 2*k; i++ {
			s[i] *= scale
		}
	}
	return s
}

// actionTransform converts raw policy outputs (batch, 2K) into
// constrained actions in place of a fresh tensor, recording the chain
// needed for backprop: μ_k = raw_k; σ_k = min(softplus(raw_{K+k}), β·|μ_k|).
func (a *Agent) actionTransform(raw *tensor.Tensor) (act *tensor.Tensor, clamped []bool) {
	k := a.cfg.K
	batch := raw.Rows()
	act = tensor.New(batch, 2*k)
	clamped = make([]bool, batch*k)
	for i := 0; i < batch; i++ {
		rr, ar := raw.Row(i), act.Row(i)
		for j := 0; j < k; j++ {
			mu := rr[j]
			ar[j] = mu
			sp := mathx.Softplus(rr[k+j])
			bound := a.cfg.Beta * math.Abs(mu)
			if sp > bound {
				ar[k+j] = bound
				clamped[i*k+j] = true
			} else {
				ar[k+j] = sp
			}
		}
	}
	return act, clamped
}

// actionBackward chains dQ/dAction to dQ/dRaw given the transform record.
func (a *Agent) actionBackward(raw, dAct *tensor.Tensor, clamped []bool) *tensor.Tensor {
	k := a.cfg.K
	batch := raw.Rows()
	dRaw := tensor.New(batch, 2*k)
	for i := 0; i < batch; i++ {
		rr, da, dr := raw.Row(i), dAct.Row(i), dRaw.Row(i)
		for j := 0; j < k; j++ {
			dMu, dSigma := da[j], da[k+j]
			dr[j] = dMu
			if clamped[i*k+j] {
				// σ = β·|μ|: gradient flows into μ.
				sign := 1.0
				if rr[j] < 0 {
					sign = -1
				}
				dr[j] += dSigma * a.cfg.Beta * sign
				dr[k+j] = 0
			} else {
				// σ = softplus(raw): d softplus = sigmoid.
				dr[k+j] = dSigma / (1 + math.Exp(-rr[k+j]))
			}
		}
	}
	return dRaw
}

// Act runs the main policy on one state and returns the constrained
// action (K means followed by K standard deviations). With explore,
// Gaussian noise ε ~ N(0, ExploreStd²) is added to the raw policy output
// before the constraint (Algorithm 2 line 14).
func (a *Agent) Act(state []float64, explore bool) []float64 {
	if len(state) != a.cfg.StateDim() {
		panic(fmt.Sprintf("core: Act state length %d, want %d", len(state), a.cfg.StateDim()))
	}
	x := tensor.FromSlice(append([]float64(nil), state...), 1, len(state))
	raw := a.policy.Forward(x, false)
	if explore && a.cfg.ExploreStd > 0 {
		std := a.cfg.ExploreStd * a.exploreScale
		for i := range raw.Data {
			raw.Data[i] += a.rng.Normal(0, std)
		}
		a.exploreScale *= a.cfg.ExploreDecay
	}
	act, _ := a.actionTransform(raw)
	return append([]float64(nil), act.Row(0)...)
}

// ImpactFactors converts an action into the aggregation weights of
// Eq. 5: α = softmax(z), z_k ~ N(μ_k, σ_k) when explore, z_k = μ_k
// otherwise. The result is a convex combination (non-negative, sums to 1).
func (a *Agent) ImpactFactors(action []float64, explore bool) []float64 {
	k := a.cfg.K
	if len(action) != 2*k {
		panic(fmt.Sprintf("core: ImpactFactors action length %d, want %d", len(action), 2*k))
	}
	z := make([]float64, k)
	for i := 0; i < k; i++ {
		if explore {
			z[i] = a.rng.Normal(action[i], action[k+i])
		} else {
			z[i] = action[i]
		}
	}
	return mathx.Softmax(z)
}

// ImpactFactorsWithPrior converts an action into aggregation weights
// anchored on a prior: α = softmax(z + log prior), z_k ~ N(μ_k, σ_k)
// when explore (z_k = μ_k otherwise). A zero action reproduces the prior
// exactly, so the policy learns *deviations* from it — the residual
// parameterization the FL aggregator uses with the FedAvg prior at
// compressed round budgets (DESIGN.md "compressed-horizon adaptations").
func (a *Agent) ImpactFactorsWithPrior(action, prior []float64, explore bool) []float64 {
	k := a.cfg.K
	if len(action) != 2*k || len(prior) != k {
		panic(fmt.Sprintf("core: ImpactFactorsWithPrior lengths %d/%d, want %d/%d",
			len(action), len(prior), 2*k, k))
	}
	z := make([]float64, k)
	for i := 0; i < k; i++ {
		if explore {
			z[i] = a.rng.Normal(action[i], action[k+i])
		} else {
			z[i] = action[i]
		}
		p := prior[i]
		if p < 1e-12 {
			p = 1e-12
		}
		z[i] += math.Log(p)
	}
	return mathx.Softmax(z)
}

// Reward computes Eq. 7 (negated for maximization; see DESIGN.md):
// r = −( mean(l_b) + w·(max(l_b) − min(l_b)) ) over the next round's
// global-model losses.
func (a *Agent) Reward(nextLossesBefore []float64) float64 {
	return RewardOf(a.cfg, nextLossesBefore)
}

// RewardOf is the package-level form of Agent.Reward (Eq. 7, negated).
func RewardOf(cfg Config, nextLossesBefore []float64) float64 {
	if len(nextLossesBefore) == 0 {
		panic("core: Reward with no losses")
	}
	avg := mathx.Mean(nextLossesBefore)
	gap := mathx.Max(nextLossesBefore) - mathx.Min(nextLossesBefore)
	return -(avg + cfg.RewardGapWeight*gap)
}

// Observe stores a non-terminal transition in the buffer with its
// current TD error as priority. It reports whether the experience was
// accepted (non-finite data is rejected). The FL aggregation task is a
// continuing one; episodic environments should use ObserveDone for
// terminal steps.
func (a *Agent) Observe(s, act []float64, r float64, s2 []float64) bool {
	return a.observe(s, act, r, s2, false)
}

// ObserveDone stores a terminal transition: the TD target is r alone,
// without bootstrapping through s′.
func (a *Agent) ObserveDone(s, act []float64, r float64, s2 []float64) bool {
	return a.observe(s, act, r, s2, true)
}

func (a *Agent) observe(s, act []float64, r float64, s2 []float64, done bool) bool {
	target := r
	if !done {
		target += a.cfg.Gamma * a.QValue(s2, act)
	}
	prior := target - a.QValue(s, act)
	return a.Buffer.Add(replay.Experience{
		S:     append([]float64(nil), s...),
		A:     append([]float64(nil), act...),
		R:     r,
		S2:    append([]float64(nil), s2...),
		Done:  done,
		Prior: math.Abs(prior),
	})
}

// ReadyToTrain reports whether the buffer has reached the warmup fill
// ("if D is sufficient", Algorithm 2 line 19).
func (a *Agent) ReadyToTrain() bool { return a.Buffer.Len() >= a.cfg.WarmupExperiences }

// QValue evaluates the main value network on one (state, action) pair.
func (a *Agent) QValue(s, act []float64) float64 {
	in := make([]float64, 0, len(s)+len(act))
	in = append(in, s...)
	in = append(in, act...)
	x := tensor.FromSlice(in, 1, len(in))
	return a.value.Forward(x, false).At(0, 0)
}

// targetQ computes r-independent bootstrap targets y = r + γ·Q′(s′, π′(s′))
// for a batch (Algorithm 1 line 5).
func (a *Agent) targetQ(batch []replay.Experience) []float64 {
	n := len(batch)
	sd := a.cfg.StateDim()
	s2 := tensor.New(n, sd)
	for i, e := range batch {
		copy(s2.Row(i), e.S2)
	}
	raw := a.policyT.Forward(s2, false)
	act, _ := a.actionTransform(raw)
	qin := tensor.New(n, sd+a.cfg.ActionDim())
	for i := 0; i < n; i++ {
		copy(qin.Row(i)[:sd], s2.Row(i))
		copy(qin.Row(i)[sd:], act.Row(i))
	}
	q := a.valueT.Forward(qin, false)
	out := make([]float64, n)
	for i, e := range batch {
		out[i] = e.R
		if !e.Done {
			out[i] += a.cfg.Gamma * q.At(i, 0)
		}
	}
	return out
}

// Train performs Algorithm 1: reprioritize the buffer by TD error, then
// UpdatesPerRound iterations of value descent, policy ascent and soft
// target updates. It is a no-op until ReadyToTrain.
func (a *Agent) Train() {
	if !a.ReadyToTrain() {
		return
	}
	// Lines 1–2: TD-error priorities under the current networks.
	a.Buffer.Reprioritize(func(e replay.Experience) float64 {
		target := e.R
		if !e.Done {
			target += a.cfg.Gamma * a.QValue(e.S2, e.A)
		}
		return target - a.QValue(e.S, e.A)
	})
	sd, ad := a.cfg.StateDim(), a.cfg.ActionDim()
	mse := nn.NewMSE()
	for step := 0; step < a.cfg.UpdatesPerRound; step++ {
		n := a.cfg.BatchSize
		if bl := a.Buffer.Len(); n > bl {
			n = bl
		}
		batch := a.Buffer.Sample(n)
		targets := a.targetQ(batch)

		// Line 6: value descent on (Q(s,a) − y)².
		qin := tensor.New(n, sd+ad)
		for i, e := range batch {
			copy(qin.Row(i)[:sd], e.S)
			copy(qin.Row(i)[sd:], e.A)
		}
		pred := a.value.Forward(qin, true)
		mse.Forward(pred, targets)
		a.value.ZeroGrads()
		a.value.Backward(mse.Backward())
		a.vopt.Step(a.value)
		a.value.ZeroGrads()

		// Line 7: policy ascent on mean Q(s, π(s)).
		s := tensor.New(n, sd)
		for i, e := range batch {
			copy(s.Row(i), e.S)
		}
		raw := a.policy.Forward(s, true)
		act, clamped := a.actionTransform(raw)
		pin := tensor.New(n, sd+ad)
		for i := 0; i < n; i++ {
			copy(pin.Row(i)[:sd], s.Row(i))
			copy(pin.Row(i)[sd:], act.Row(i))
		}
		a.value.Forward(pin, true)
		// dMeanQ/dQ_i = 1/n; ascend → feed −1/n and let Adam minimize.
		up := tensor.New(n, 1)
		for i := range up.Data {
			up.Data[i] = -1.0 / float64(n)
		}
		a.value.ZeroGrads()
		dIn := a.value.Backward(up)
		dAct := tensor.New(n, ad)
		for i := 0; i < n; i++ {
			copy(dAct.Row(i), dIn.Row(i)[sd:])
		}
		dRaw := a.actionBackward(raw, dAct, clamped)
		a.policy.ZeroGrads()
		a.policy.Backward(dRaw)
		a.popt.Step(a.policy)
		a.policy.ZeroGrads()
		a.value.ZeroGrads() // discard critic grads from the policy pass

		// Lines 8–9: ρ-soft target updates.
		a.policyT.SoftUpdateFrom(a.policy, a.cfg.Rho)
		a.valueT.SoftUpdateFrom(a.value, a.cfg.Rho)
	}
}

// PolicyParams exposes the flat policy parameters (used by tests and by
// the two-stage trainer's diagnostics).
func (a *Agent) PolicyParams() []float64 { return a.policy.ParamVector() }

// CopyPolicyFrom copies another agent's policy and value networks into
// this agent (mains and targets). Configurations must agree on K and
// Hidden.
func (a *Agent) CopyPolicyFrom(src *Agent) {
	a.policy.CopyFrom(src.policy)
	a.policyT.CopyFrom(src.policyT)
	a.value.CopyFrom(src.value)
	a.valueT.CopyFrom(src.valueT)
}
