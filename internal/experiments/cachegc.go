package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"feddrl/internal/serialize"
)

// Cache lifecycle: a shared cache directory grows without bound as
// scales, schemas and sweeps churn, so GC gives it a maintenance story:
// prune records that can never produce a hit again (stale schema,
// corruption, unreadable files), sweep abandoned temp files, and — when
// a byte budget is set — evict the oldest surviving records by file
// mtime until the directory fits. Eviction can only cost future hits,
// never correctness: an evicted cell is recomputed exactly like a miss.

// tempMaxAge is how old a .cell-* temp file must be before GC treats it
// as abandoned. Live writers hold their temp file only for the duration
// of one record write, so an hour is conservatively safe.
const tempMaxAge = time.Hour

// GCStats reports one GC pass.
type GCStats struct {
	Kept       int   // records retained (valid ones, plus any whose removal failed)
	KeptBytes  int64 // bytes retained
	Pruned     int   // invalid records removed (stale schema, corrupt, unreadable)
	Evicted    int   // valid records removed for the byte budget (oldest mtime first)
	Temps      int   // abandoned temp files removed
	FreedBytes int64 // total bytes removed
	// Errors counts files GC decided to remove but could not. They
	// still occupy the directory, so they stay in Kept/KeptBytes (and
	// invalid ones remain eviction candidates for a later pass).
	Errors int
}

// Summary renders the stats as the CLI's one-line stderr report.
func (st GCStats) Summary(dir string) string {
	s := fmt.Sprintf("pruned %d stale, evicted %d old, kept %d (%d bytes)",
		st.Pruned, st.Evicted, st.Kept, st.KeptBytes)
	if st.Temps > 0 {
		s += fmt.Sprintf(", swept %d temp files", st.Temps)
	}
	if st.Errors > 0 {
		s += fmt.Sprintf(", %d remove errors", st.Errors)
	}
	return fmt.Sprintf("%s (%s)", s, dir)
}

// gcValidate reports whether a record file would still be served as a
// hit by some future lookup: well-formed, current schema, key decoding
// to a spec that round-trips, and an intact payload checksum. It is the
// spec-less twin of cellFromRecord — GC cannot recompute content
// addresses (they fold in Scale fields it does not know), so it trusts
// the stored key only after the same validation a lookup applies.
func gcValidate(path string) error {
	ck, err := serialize.LoadFile(path)
	if err != nil {
		return err
	}
	if err := serialize.ValidateCacheRecord(ck, cellRecordKind); err != nil {
		return err
	}
	spec, err := ParseCellKey(ck.Meta["key"])
	if err != nil {
		return fmt.Errorf("experiments: cache record key %q: %w", ck.Meta["key"], err)
	}
	_, err = cellFromRecord(ck, spec)
	return err
}

// GC prunes the cache directory: invalid records and abandoned temp
// files are removed outright, and when maxBytes > 0 the oldest valid
// records (by mtime) are evicted until the retained bytes fit the
// budget. maxBytes <= 0 means prune-only. GC is safe to run while other
// processes use the directory — records publish by atomic rename, so a
// concurrent writer can at worst re-add a record GC just evicted.
func (c *Cache) GC(maxBytes int64) (GCStats, error) {
	var st GCStats
	if c == nil {
		return st, fmt.Errorf("experiments: GC on a nil cache")
	}
	if c.readonly {
		return st, fmt.Errorf("experiments: cannot GC a readonly cache (%s)", c.dir)
	}

	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return st, fmt.Errorf("experiments: cache GC: %w", err)
	}
	type record struct {
		path  string
		size  int64
		mtime time.Time
	}
	var kept []record
	now := time.Now()
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		path := filepath.Join(c.dir, name)
		info, err := e.Info()
		if err != nil {
			continue // raced with a concurrent remove
		}
		switch {
		case filepath.Ext(name) == cellFileExt:
			if err := gcValidate(path); err != nil {
				if rmErr := os.Remove(path); rmErr != nil {
					// The file still occupies the directory, so it
					// stays in the kept accounting (and remains an
					// eviction candidate) — see GCStats.Errors.
					st.Errors++
					kept = append(kept, record{path: path, size: info.Size(), mtime: info.ModTime()})
					continue
				}
				st.Pruned++
				st.FreedBytes += info.Size()
				continue
			}
			kept = append(kept, record{path: path, size: info.Size(), mtime: info.ModTime()})
		case strings.HasPrefix(name, ".cell-"):
			// Abandoned temp file from a crashed writer; a live writer
			// holds its temp only for one record write.
			if now.Sub(info.ModTime()) < tempMaxAge {
				continue
			}
			if err := os.Remove(path); err != nil {
				st.Errors++
				continue
			}
			st.Temps++
			st.FreedBytes += info.Size()
		}
	}

	// Deterministic eviction order: oldest mtime first, path as the
	// tiebreak (mtimes can collide on coarse filesystems).
	sort.Slice(kept, func(a, b int) bool {
		if !kept[a].mtime.Equal(kept[b].mtime) {
			return kept[a].mtime.Before(kept[b].mtime)
		}
		return kept[a].path < kept[b].path
	})
	var total int64
	for _, r := range kept {
		total += r.size
	}
	evict := 0
	if maxBytes > 0 {
		for evict < len(kept) && total > maxBytes {
			r := kept[evict]
			if err := os.Remove(r.path); err != nil {
				st.Errors++
				evict++ // skip it; it still occupies bytes
				continue
			}
			st.Evicted++
			st.FreedBytes += r.size
			total -= r.size
			evict++
		}
	}
	st.Kept = len(kept) - st.Evicted
	st.KeptBytes = total
	return st, nil
}
