package experiments

import (
	"testing"
)

// TestCacheDeterminismMatrix is the cache-correctness acceptance gate:
// for EVERY shardable experiment, four execution strategies must render
// byte-identical output —
//
//	uncached            (the reference)
//	cold cached         (computes, writes records)
//	warm cached         (loads every cell: 0 misses)
//	sharded-then-merged (2 shards against the same cache, merged)
//
// One cache directory is shared across all experiments, which also
// exercises cross-experiment reuse: table3, figure5/6 and headline
// share cells, so later cold runs legitimately start with hits.
func TestCacheDeterminismMatrix(t *testing.T) {
	s := gridScale()
	dir := t.TempDir()
	for _, name := range shardableNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			want, err := Run(name, s, 1)
			if err != nil {
				t.Fatal(err)
			}

			cold, err := OpenCache(dir, false)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunCached(name, s, 1, cold)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("cold cached %s differs from uncached:\n--- uncached ---\n%s\n--- cached ---\n%s", name, want, got)
			}

			warm, err := OpenCache(dir, false)
			if err != nil {
				t.Fatal(err)
			}
			got, err = RunCached(name, s, 1, warm)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("warm cached %s differs from uncached", name)
			}
			if st := warm.Stats(); st.Misses != 0 || st.Hits == 0 {
				t.Fatalf("warm %s stats %+v, want pure hits", name, st)
			}

			shardCache, err := OpenCache(dir, false)
			if err != nil {
				t.Fatal(err)
			}
			var sets []*ArtifactSet
			for i := 1; i <= 2; i++ {
				set, err := RunShardCached(name, s, 1, 1, i, 2, shardCache)
				if err != nil {
					t.Fatal(err)
				}
				sets = append(sets, set)
			}
			merged, err := MergeSets(sets)
			if err != nil {
				t.Fatal(err)
			}
			got, err = RenderSet(s, merged)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("sharded-then-merged cached %s differs from uncached", name)
			}
			if st := shardCache.Stats(); st.Misses != 0 {
				t.Fatalf("cached shards of %s recomputed %d cells", name, st.Misses)
			}
		})
	}
}

// TestCacheDeterminismSeeds extends the matrix to seed replication:
// a cached -seeds run must match the uncached one byte for byte, and a
// warm repeat must load every replicate.
func TestCacheDeterminismSeeds(t *testing.T) {
	s := gridScale()
	dir := t.TempDir()
	want, err := RunSeeds("figure8", s, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSeedsCached("figure8", s, 1, 2, cold)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("cold cached seeds run differs from uncached")
	}
	warm, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err = RunSeedsCached("figure8", s, 1, 2, warm)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("warm cached seeds run differs from uncached")
	}
	if st := warm.Stats(); st.Misses != 0 || st.Hits == 0 {
		t.Fatalf("warm seeds stats %+v, want pure hits", st)
	}
}
