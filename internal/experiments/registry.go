package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment at a scale and returns its rendered
// text output. Monolithic experiments (pure partition statistics,
// timing studies, the ablations) are registered as Runners; grid
// experiments decompose further — see Experiment.
type Runner func(s Scale, seed uint64) string

// ArtifactGetter resolves a cell spec to its computed artifact. Inside
// one process it is backed by the artifact store (computing on demand);
// in the merge path it is backed by decoded shard files.
type ArtifactGetter func(spec CellSpec) *CellArtifact

// Experiment is a registry entry. Grid experiments define Jobs (the
// serializable cell decomposition) and Render (a pure artifact→text
// formatter); those are the experiments that support -shard/-merge.
// SeedsRender additionally enables -seeds m (mean±std over seed
// replicates). Monolithic experiments define only Mono.
type Experiment struct {
	// Jobs enumerates the grid's cells in canonical order (the order
	// that defines shard assignment). nil marks a monolithic experiment.
	Jobs func(s Scale, seed uint64) []CellSpec
	// Render formats the grid's artifacts into the experiment's text
	// output. It must consult artifacts only through get, never run
	// training itself.
	Render func(s Scale, seed uint64, get ArtifactGetter) string
	// SeedsRender renders the seeds-replicated grid with mean±std
	// cells; nil means the experiment does not support -seeds.
	SeedsRender func(s Scale, seed uint64, seeds int, get ArtifactGetter) string
	// Mono runs a monolithic experiment end to end.
	Mono Runner
}

// Shardable reports whether the entry decomposes into jobs.
func (e Experiment) Shardable() bool { return e.Jobs != nil }

func mono(r Runner) Experiment { return Experiment{Mono: r} }

// Registry maps experiment ids (the paper's table/figure numbers plus
// the DESIGN.md ablations) to their definitions.
var Registry = map[string]Experiment{
	"table2":  mono(Table2),
	"figure4": mono(Figure4),
	"table3":  {Jobs: table3Jobs, Render: renderTable3, SeedsRender: renderTable3Seeds},
	"figure5": {Jobs: figure5Jobs, Render: renderFigure5},
	"figure6": {Jobs: figure6Jobs, Render: renderFigure6},
	"figure7": {Jobs: figure7Jobs, Render: renderFigure7, SeedsRender: renderFigure7Seeds},
	"figure8": {Jobs: figure8Jobs, Render: renderFigure8, SeedsRender: renderFigure8Seeds},
	"figure9": mono(Figure9),
	"figure10": {
		Jobs: figure10Jobs, Render: renderFigure10,
	},
	"table4":             {Jobs: table4Jobs, Render: renderTable4},
	"ablation-reward":    mono(AblationRewardGap),
	"ablation-statenorm": mono(AblationStateNorm),
	"ablation-twostage":  mono(AblationTwoStage),
	"ablation-prior":     mono(AblationPrior),
	"comm-overhead":      mono(CommOverhead),
	"headline":           {Jobs: headlineJobs, Render: renderHeadline},
	"async-sync":         {Jobs: asyncSyncJobs, Render: renderAsyncSync},
	"byzantine":          {Jobs: byzantineJobs, Render: renderByzantine},
}

// Names returns the registered experiment ids in sorted order.
func Names() []string {
	names := make([]string, 0, len(Registry))
	for n := range Registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Shardable reports whether an experiment id supports -shard/-merge.
func Shardable(name string) bool {
	e, ok := Registry[name]
	return ok && e.Shardable()
}

// Run executes a registered experiment by id: monolithic runners
// directly, grid experiments through the spec→artifact→render pipeline
// on the scale's engine pool.
func Run(name string, s Scale, seed uint64) (string, error) {
	return RunCached(name, s, seed, nil)
}

// RunCached is Run with a content-addressed artifact cache: grid cells
// whose records exist in the cache are loaded instead of recomputed,
// fresh cells are written back, and the rendered output is
// byte-identical to an uncached run. A nil cache disables caching.
// Monolithic experiments do not decompose into cells and run in full
// regardless of the cache.
func RunCached(name string, s Scale, seed uint64, cache *Cache) (string, error) {
	e, ok := Registry[name]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
	}
	if e.Mono != nil {
		return e.Mono(s, seed), nil
	}
	return runGrid(e, s, seed, cache), nil
}

// runNamed is Run for ids known to exist (the exported per-experiment
// wrappers like Figure5).
func runNamed(name string, s Scale, seed uint64) string {
	out, err := Run(name, s, seed)
	if err != nil {
		panic(err)
	}
	return out
}
