package experiments

import (
	"fmt"
	"sort"
)

// Runner executes one experiment at a scale and returns its rendered
// text output.
type Runner func(s Scale, seed uint64) string

// Registry maps experiment ids (the paper's table/figure numbers plus
// the DESIGN.md ablations) to their runners.
var Registry = map[string]Runner{
	"table2":             Table2,
	"figure4":            Figure4,
	"table3":             Table3,
	"figure5":            Figure5,
	"figure6":            Figure6,
	"figure7":            Figure7,
	"figure8":            Figure8,
	"figure9":            Figure9,
	"figure10":           Figure10,
	"table4":             Table4,
	"ablation-reward":    AblationRewardGap,
	"ablation-statenorm": AblationStateNorm,
	"ablation-twostage":  AblationTwoStage,
	"ablation-prior":     AblationPrior,
	"comm-overhead":      CommOverhead,
	"headline":           Headline,
}

// Names returns the registered experiment ids in sorted order.
func Names() []string {
	names := make([]string, 0, len(Registry))
	for n := range Registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Run executes a registered experiment by id.
func Run(name string, s Scale, seed uint64) (string, error) {
	r, ok := Registry[name]
	if !ok {
		return "", fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
	}
	return r(s, seed), nil
}
