package experiments

import (
	"fmt"
	"strings"

	"feddrl/internal/core"
	"feddrl/internal/dataset"
	"feddrl/internal/fl"
	"feddrl/internal/metrics"
	"feddrl/internal/nn"
	"feddrl/internal/rng"
)

// CommOverhead quantifies §5.3's communication claim: "our FedDRL only
// needs some extra floating point numbers for the inference loss in
// comparison with the FedAvg". For each client model the table reports
// the per-round downlink/uplink traffic and the fraction of uplink
// attributable to FedDRL's metadata.
func CommOverhead(s Scale, seed uint64) string {
	var b strings.Builder
	b.WriteString("Communication overhead per round (§5.3): FedDRL vs FedAvg payloads\n\n")
	tab := &metrics.Table{
		Headers: []string{"model", "params", "downlink/round", "uplink/round", "FedDRL extra", "overhead"},
	}
	mnist := dataset.MNISTSim().Scaled(s.DataScale)
	cifar := dataset.CIFAR100Sim().Scaled(s.DataScale)
	type mc struct {
		name string
		dim  int
	}
	cnn := s.factoryFor(mnist)(seed)
	vgg := func() int {
		sh := cifar.Shape
		return nn3VGGParams(sh.C, sh.H, sh.W, cifar.Classes, seed)
	}()
	cases := []mc{
		{"client model (mnist-sim)", cnn.NumParams()},
		{"VGGMini (cifar100-sim)", vgg},
	}
	drlCfg := s.drlConfig(s.K, seed)
	drlCfg.Hidden = 8 // size is irrelevant to the traffic accounting
	agg := fl.NewFedDRL(core.NewAgent(drlCfg))
	for _, c := range cases {
		r := fl.CommPerRound(agg, s.K, c.dim)
		tab.AddRow(c.name,
			fmt.Sprintf("%d", c.dim),
			byteStr(r.DownlinkBytes),
			byteStr(r.UplinkBytes),
			byteStr(r.OverheadBytes),
			fmt.Sprintf("%.4f%%", r.OverheadFraction()*100))
	}
	b.WriteString(tab.RenderString())
	b.WriteString("\n(the overhead is a constant 16 bytes per client per round and vanishes\nrelative to the weight payload as models grow)\n")
	return b.String()
}

func byteStr(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// nn3VGGParams instantiates VGGMini once to count parameters.
func nn3VGGParams(c, h, w, classes int, seed uint64) int {
	return nn.NewVGGMini(rng.New(seed), c, h, w, classes).NumParams()
}
