package experiments

import (
	"fmt"
	"strings"
	"time"

	"feddrl/internal/core"
	"feddrl/internal/dataset"
	"feddrl/internal/fl"
	"feddrl/internal/metrics"
	"feddrl/internal/nn"
	"feddrl/internal/partition"
	"feddrl/internal/rng"
)

// Figure9 reproduces the server computation-time study: the per-round
// cost of the DRL impact-factor decision versus the weighted weight
// aggregation, for a small CNN-sized model and a VGG-sized model. The
// paper's claim — the DRL overhead is trivial and model-size-independent
// while aggregation cost grows with the model — is checked by the
// benchmark harness as well.
func Figure9(s Scale, seed uint64) string {
	var b strings.Builder
	b.WriteString("Figure 9: average server computation time per round\n\n")
	tab := &metrics.Table{
		Headers: []string{"model", "params", "DRL decision", "aggregation"},
	}
	type modelCase struct {
		name    string
		factory nn.Factory
		spec    dataset.Spec
	}
	mnist := dataset.MNISTSim().Scaled(s.DataScale)
	cifar := dataset.CIFAR100Sim().Scaled(s.DataScale)
	cases := []modelCase{
		{
			name: "SimpleCNN",
			factory: func(sd uint64) *nn.Network {
				sh := mnist.Shape
				return nn.NewSimpleCNN(rng.New(sd), sh.C, sh.H, sh.W, mnist.Classes)
			},
			spec: mnist,
		},
		{
			name: "VGGMini",
			factory: func(sd uint64) *nn.Network {
				sh := cifar.Shape
				return nn.NewVGGMini(rng.New(sd), sh.C, sh.H, sh.W, cifar.Classes)
			},
			spec: cifar,
		},
	}
	rounds := s.Rounds / 2
	if rounds < 3 {
		rounds = 3
	}
	for _, mc := range cases {
		train, test := dataset.Synthesize(mc.spec, seed)
		assign := partition.ClusteredEqual(train, s.SmallN, defaultDelta, labelsPerClient(mc.spec), numGroups, rng.New(seed+5))
		cfg := fl.RunConfig{
			Rounds:    rounds,
			K:         s.K,
			Local:     fl.LocalConfig{Epochs: 1, Batch: s.Batch, LR: s.LR},
			Factory:   mc.factory,
			Seed:      seed + 6,
			EvalEvery: rounds, // timing study; skip most evaluations
		}
		k := cfg.K
		if k > s.SmallN {
			k = s.SmallN
		}
		agent := core.NewAgent(s.drlConfig(k, seed+7))
		clients := fl.BuildClients(train, assign.ClientIndices, cfg.Factory, seed+8)
		res := fl.Run(cfg, clients, test, fl.NewFedDRL(agent))
		tab.AddRow(mc.name,
			fmt.Sprintf("%d", res.NumParam),
			fmtDur(res.MeanDecisionTime()),
			fmtDur(res.MeanAggTime()))
	}
	b.WriteString(tab.RenderString())
	b.WriteString("\n(The paper reports ~3 ms DRL overhead regardless of model, and 3 ms vs 45 ms\naggregation for CNN vs VGG-11; the shape to check is decision-time constancy\nand aggregation growth with parameter count.)\n")
	return b.String()
}

func fmtDur(d time.Duration) string {
	switch {
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%.1fus", float64(d.Nanoseconds())/1000)
	}
}
