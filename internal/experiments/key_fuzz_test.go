package experiments

import (
	"math"
	"strings"
	"testing"

	"feddrl/internal/rng"
)

// Fuzz and property coverage for the ParseCellKey ↔ CellSpec.Key codec
// — the identity under every artifact file, shard assignment and cache
// address, so a silent mis-parse would corrupt all three. `go test`
// runs the seed corpus; `make fuzz` runs the fuzzing engine proper.

// FuzzParseCellKey asserts two properties over arbitrary byte strings:
// ParseCellKey never panics, and any key it accepts canonicalizes to a
// fixed point (parse → re-key → re-parse is stable).
func FuzzParseCellKey(f *testing.F) {
	// Real keys from every grid family.
	s := CI()
	for _, spec := range []CellSpec{
		table3Spec(s, "cifar100-sim", "CE", "FedDRL", s.SmallN, 1),
		table3Spec(s, "mnist-sim", "PA", "SingleSet", s.LargeN, 42),
		{Dataset: "fashion-sim", Partition: "Non-equal", Method: "FedProx", N: 100, K: 10, Delta: 0.30000000000000004, Seed: 1<<63 + 5},
		// Long-form (10-field) Byzantine keys.
		byzantineSpec(s, byzantineAttack{"signflip", 0.2}, "median", 1),
		byzantineSpec(s, byzantineAttack{"none", 0}, "krum", 7),
		{Dataset: "mnist-sim", Partition: "CE", Method: "FedAvg", N: 10, K: 10, Delta: 0.6, Seed: 1, AttackFrac: 0.30000000000000004},
	} {
		f.Add(spec.Key())
	}
	// Malformed and adversarial shapes.
	for _, key := range []string{
		"",
		"|",
		"||||||",
		"a|b",
		"a|b|c|x|1|0.5|1",
		"a|b|c|1|1|zz|1",
		"a|b|c|1|1|0.5|-2",
		"a|b|c|1|1|0.5|1|extra",
		"a|b|c|9223372036854775808|1|0.5|1",
		"a|b|c|1|1|NaN|1",
		"a|b|c|1|1|+Inf|1",
		"a|b|c|1|1|1e309|1",
		"a|b|c|01|001|0.50|0018446744073709551615",
		"π|δ|σ|1|1|0.5|1",
		strings.Repeat("x", 1<<10) + "|b|c|1|1|0.5|1",
		// Long-form shapes: 8 and 9 fields stay invalid, a 10-field key
		// needs a parsable fraction, and the all-zero long form is
		// non-canonical (the 7-field key is the fixed point).
		"a|b|c|1|1|0.5|1|signflip",
		"a|b|c|1|1|0.5|1|signflip|0.2",
		"a|b|c|1|1|0.5|1|signflip|0.2|median",
		"a|b|c|1|1|0.5|1|signflip|zz|median",
		"a|b|c|1|1|0.5|1|||",
		"a|b|c|1|1|0.5|1||0.2|",
		"a|b|c|1|1|0.5|1|signflip|NaN|krum",
	} {
		f.Add(key)
	}
	f.Fuzz(func(t *testing.T, key string) {
		spec, err := ParseCellKey(key) // must never panic
		if err != nil {
			return
		}
		canon := spec.Key()
		again, err := ParseCellKey(canon)
		if err != nil {
			t.Fatalf("canonical key %q of accepted key %q does not re-parse: %v", canon, key, err)
		}
		if again.Key() != canon {
			t.Fatalf("canonicalization is not a fixed point: %q -> %q", canon, again.Key())
		}
	})
}

// TestCellKeyPropertyRoundTrip is the deterministic property loop: for
// thousands of generated specs — realistic names, hostile-but-legal
// field values, extreme floats and seeds — Key must invert through
// ParseCellKey exactly.
func TestCellKeyPropertyRoundTrip(t *testing.T) {
	datasets := []string{"cifar100-sim", "fashion-sim", "mnist-sim", "", "a b c", "π-δ", "with\ttab", "with\nnewline"}
	partitions := []string{"PA", "CE", "CN", "Equal", "Non-equal", "x"}
	methods := []string{"SingleSet", "FedAvg", "FedProx", "FedDRL", ""}
	deltas := []float64{0, 0.6, -0.0, 0.30000000000000004, math.SmallestNonzeroFloat64,
		math.MaxFloat64, 1e-300, -1e300, math.Inf(1), math.Inf(-1)}
	seeds := []uint64{0, 1, 1009, 1<<63 + 5, math.MaxUint64}
	attacks := []string{"", "signflip", "gauss", "labelflip", "weird name"}
	fracs := []float64{0, 0.2, 0.30000000000000004, 1, -0.5, 1e-300}
	mergers := []string{"", "median", "trimmed", "krum", "x"}

	r := rng.New(7)
	pick := func(n int) int { return r.Intn(n) }
	for i := 0; i < 5000; i++ {
		spec := CellSpec{
			Dataset:   datasets[pick(len(datasets))],
			Partition: partitions[pick(len(partitions))],
			Method:    methods[pick(len(methods))],
			N:         pick(1 << 20),
			K:         pick(1 << 20),
			Delta:     deltas[pick(len(deltas))],
			Seed:      seeds[pick(len(seeds))],
		}
		// Half the specs get attack fields, exercising both the legacy
		// 7-field and the long-form 10-field codec.
		if i%2 == 1 {
			spec.Attack = attacks[pick(len(attacks))]
			spec.AttackFrac = fracs[pick(len(fracs))]
			spec.Merger = mergers[pick(len(mergers))]
		}
		got, err := ParseCellKey(spec.Key())
		if err != nil {
			t.Fatalf("round trip of %+v failed: %v", spec, err)
		}
		if got != spec {
			t.Fatalf("round trip %+v -> %+v", spec, got)
		}
	}

	// NaN round-trips to NaN (compare by canonical key; NaN != NaN).
	nan := CellSpec{Dataset: "d", Partition: "p", Method: "m", Delta: math.NaN(), Seed: 3}
	got, err := ParseCellKey(nan.Key())
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(got.Delta) || got.Key() != nan.Key() {
		t.Fatalf("NaN delta lost in round trip: %+v", got)
	}

	// The one documented codec limit: the separator cannot appear in
	// string fields — such a key grows extra fields and must be
	// rejected on re-parse, not silently mangled.
	bad := CellSpec{Dataset: "a|b", Partition: "p", Method: "m"}
	if _, err := ParseCellKey(bad.Key()); err == nil {
		t.Fatal("separator inside a field was not rejected")
	}
}

// TestParseCellKeyRejectsMalformed pins the error (not panic) contract
// on a corpus of malformed keys, including every per-field failure.
func TestParseCellKeyRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"a|b|c",
		"a|b|c|1|1|0.5",
		"a|b|c|1|1|0.5|1|8th",
		"a|b|c|notint|1|0.5|1",
		"a|b|c|1|notint|0.5|1",
		"a|b|c|1|1|notfloat|1",
		"a|b|c|1|1|0.5|notuint",
		"a|b|c|1|1|0.5|-1",
		"a|b|c|1|1|0.5|18446744073709551616", // MaxUint64 + 1
		"a|b|c|1.5|1|0.5|1",                  // N must be an int
		"a|b|c|1|1|0.5|1|signflip",           // 8 fields: never valid
		"a|b|c|1|1|0.5|1|signflip|0.2",       // 9 fields: never valid
		"a|b|c|1|1|0.5|1|signflip|bad|krum",  // unparsable attack fraction
		"a|b|c|1|1|0.5|1|||",                 // all-zero long form: non-canonical
	} {
		if _, err := ParseCellKey(bad); err == nil {
			t.Fatalf("ParseCellKey(%q) accepted a malformed key", bad)
		}
	}
}
