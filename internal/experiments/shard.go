package experiments

import (
	"fmt"
	"reflect"
	"strings"
)

// Cross-process sharding and seed replication. A grid experiment's job
// list is deterministic given (scale, seed, seeds), so any process can
// recompute it and take a 1/n slice by index: shard i of n runs the
// jobs whose position j in the canonical list satisfies j % n == i-1.
// Shards write ArtifactSet files; MergeSets + RenderSet recombine them
// into the exact output an unsharded run produces.

// seedStride separates seed replicates (and matches the headline
// runner's historical stride, so its cells stay bit-identical).
const seedStride = 1009

// replicateJobs expands a job list over m seed replicates: replicate r
// shifts every cell seed by r*seedStride. m <= 1 returns jobs as-is.
func replicateJobs(jobs []CellSpec, seeds int) []CellSpec {
	if seeds <= 1 {
		return jobs
	}
	out := make([]CellSpec, 0, len(jobs)*seeds)
	for r := 0; r < seeds; r++ {
		for _, j := range jobs {
			j.Seed += uint64(r) * seedStride
			out = append(out, j)
		}
	}
	return out
}

// replicateSpec returns replicate r of a base cell spec.
func replicateSpec(spec CellSpec, r int) CellSpec {
	spec.Seed += uint64(r) * seedStride
	return spec
}

func shardableNames() []string {
	var out []string
	for _, n := range Names() {
		if Registry[n].Shardable() {
			out = append(out, n)
		}
	}
	return out
}

func seedsNames() []string {
	var out []string
	for _, n := range Names() {
		if Registry[n].SeedsRender != nil {
			out = append(out, n)
		}
	}
	return out
}

// jobsFor resolves a grid experiment and enumerates its (possibly
// seed-replicated) canonical job list — the single validation point for
// sharding and seed-replication support.
func jobsFor(name string, s Scale, seed uint64, seeds int) (Experiment, []CellSpec, error) {
	e, ok := Registry[name]
	if !ok {
		return Experiment{}, nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", name, Names())
	}
	if seeds > 1 && (e.Jobs == nil || e.SeedsRender == nil) {
		return Experiment{}, nil, fmt.Errorf("experiments: %q does not support seed replication (supported: %v)", name, seedsNames())
	}
	if e.Jobs == nil {
		return Experiment{}, nil, fmt.Errorf("experiments: %q is a monolithic experiment and cannot be sharded (shardable: %v)", name, shardableNames())
	}
	return e, replicateJobs(e.Jobs(s, seed), seeds), nil
}

// ShardJobs returns the deterministic slice of jobs owned by shard
// index of count (1-based index). The union over all indices is exactly
// jobs, and slices are pairwise disjoint.
func ShardJobs(jobs []CellSpec, index, count int) ([]CellSpec, error) {
	if count < 1 || index < 1 || index > count {
		return nil, fmt.Errorf("experiments: shard %d/%d out of range (want 1 <= i <= n)", index, count)
	}
	var out []CellSpec
	for j, spec := range jobs {
		if j%count == index-1 {
			out = append(out, spec)
		}
	}
	return out, nil
}

// RunShard computes shard index/count of a grid experiment (optionally
// seed-replicated) and returns its artifact set, ready to SaveFile.
// The slice runs concurrently on the scale's engine pool, exactly like
// the corresponding cells of an unsharded run.
func RunShard(name string, s Scale, seed uint64, seeds, index, count int) (*ArtifactSet, error) {
	return RunShardCached(name, s, seed, seeds, index, count, nil)
}

// RunShardCached is RunShard backed by a content-addressed artifact
// cache: the shard's artifact set is assembled from cache hits where
// possible and only the missing cells are computed (and written back).
// This is also the kill-and-resume path — rerunning an interrupted
// shard against the same cache recomputes only the cells it had not
// finished.
func RunShardCached(name string, s Scale, seed uint64, seeds, index, count int, cache *Cache) (*ArtifactSet, error) {
	_, jobs, err := jobsFor(name, s, seed, seeds)
	if err != nil {
		return nil, err
	}
	slice, err := ShardJobs(jobs, index, count)
	if err != nil {
		return nil, err
	}
	st := newStoreCached(s, cache)
	defer st.close()
	st.prefetch(slice)
	set := NewArtifactSet(name, s, seed, seeds)
	for _, spec := range slice {
		set.Add(st.get(spec))
	}
	return set, nil
}

// MergeSets combines shard artifact sets into one. All sets must come
// from the same invocation (experiment, scale, rounds, seed, seeds);
// a cell appearing in several shards must carry identical payloads.
func MergeSets(sets []*ArtifactSet) (*ArtifactSet, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("experiments: merge of zero artifact sets")
	}
	ref := sets[0]
	merged := &ArtifactSet{
		Experiment: ref.Experiment,
		ScaleName:  ref.ScaleName,
		Rounds:     ref.Rounds,
		Seed:       ref.Seed,
		Seeds:      ref.Seeds,
		Cells:      map[string]*CellArtifact{},
	}
	for i, set := range sets {
		if set.Experiment != ref.Experiment || set.ScaleName != ref.ScaleName ||
			set.Rounds != ref.Rounds || set.Seed != ref.Seed || set.Seeds != ref.Seeds {
			return nil, fmt.Errorf("experiments: shard %d header (%s/%s r%d seed %d seeds %d) does not match shard 0 (%s/%s r%d seed %d seeds %d)",
				i, set.Experiment, set.ScaleName, set.Rounds, set.Seed, set.Seeds,
				ref.Experiment, ref.ScaleName, ref.Rounds, ref.Seed, ref.Seeds)
		}
		for _, key := range set.order {
			a := set.Cells[key]
			if prev, ok := merged.Cells[key]; ok {
				if !reflect.DeepEqual(prev, a) {
					return nil, fmt.Errorf("experiments: shards disagree on cell %s", key)
				}
				continue
			}
			merged.Add(a)
		}
	}
	return merged, nil
}

// RenderSet renders a (merged) artifact set into the experiment's text
// output — byte-identical to what the unsharded run prints, because the
// unsharded path renders from the very same artifacts. The caller
// supplies the Scale (typically ScaleByName(set.ScaleName) with Rounds
// restored from the set); it must match the set's header.
func RenderSet(s Scale, set *ArtifactSet) (string, error) {
	if s.Name != set.ScaleName {
		return "", fmt.Errorf("experiments: scale %q does not match artifact scale %q", s.Name, set.ScaleName)
	}
	if s.Rounds != set.Rounds {
		return "", fmt.Errorf("experiments: scale rounds %d do not match artifact rounds %d", s.Rounds, set.Rounds)
	}
	e, jobs, err := jobsFor(set.Experiment, s, set.Seed, set.Seeds)
	if err != nil {
		return "", err
	}
	if missing := set.MissingCells(jobs); len(missing) > 0 {
		return "", fmt.Errorf("experiments: artifact set is missing %d of %d cells (incomplete shard merge?): %s",
			len(missing), len(jobs), strings.Join(missing, ", "))
	}
	get := func(spec CellSpec) *CellArtifact {
		a, ok := set.Get(spec)
		if !ok {
			panic(fmt.Sprintf("experiments: renderer requested cell %s outside the job list", spec.Key()))
		}
		return a
	}
	if set.Seeds > 1 {
		return e.SeedsRender(s, set.Seed, set.Seeds, get), nil
	}
	return e.Render(s, set.Seed, get), nil
}

// RunSeeds executes a grid experiment with m seed replicates per cell
// and renders mean±std columns. seeds <= 1 falls back to Run. The
// replicated jobs flow through the same pipeline as sharded runs, so
// -shard and -seeds compose.
func RunSeeds(name string, s Scale, seed uint64, seeds int) (string, error) {
	return RunSeedsCached(name, s, seed, seeds, nil)
}

// RunSeedsCached is RunSeeds backed by a content-addressed artifact
// cache. Seed replicates are ordinary cells (each replicate has its own
// absolute seed, hence its own content address), so a multi-seed run
// reuses the single-seed cells a previous run already cached.
func RunSeedsCached(name string, s Scale, seed uint64, seeds int, cache *Cache) (string, error) {
	if seeds <= 1 {
		return RunCached(name, s, seed, cache)
	}
	e, jobs, err := jobsFor(name, s, seed, seeds)
	if err != nil {
		return "", err
	}
	st := newStoreCached(s, cache)
	defer st.close()
	st.prefetch(jobs)
	return e.SeedsRender(s, seed, seeds, st.get), nil
}
