package experiments

import (
	"feddrl/internal/core"
	"feddrl/internal/dataset"
	"feddrl/internal/fl"
	"feddrl/internal/mathx"
	"feddrl/internal/rng"
)

// flEnv adapts a (small) federated-learning setup to the core.Env
// interface so the two-stage trainer's online workers (§3.4.2) can
// interact with real FL dynamics: the state is the 3K client-loss vector,
// the action's softmaxed means become the aggregation weights, and the
// reward is Eq. 7 on the next round's client losses.
type flEnv struct {
	s       Scale
	spec    dataset.Spec
	drlCfg  core.Config
	seed    uint64
	episode int // rounds per episode

	train, test *dataset.Dataset
	clients     []*fl.Client
	global      []float64
	updates     []fl.Update
	round       int
}

// newFLEnv builds an environment over a CE-partitioned dataset with
// SmallN clients and K participants (= all clients for simplicity:
// workers need the state layout to stay aligned across rounds).
func newFLEnv(s Scale, spec dataset.Spec, drlCfg core.Config, seed uint64, roundsPerEpisode int) *flEnv {
	train, test := dataset.Synthesize(spec, seed)
	return &flEnv{
		s: s, spec: spec, drlCfg: drlCfg, seed: seed, episode: roundsPerEpisode,
		train: train, test: test,
	}
}

// Reset rebuilds the federation and runs one bootstrap round with uniform
// weights to obtain the initial state.
func (e *flEnv) Reset() []float64 {
	k := e.drlCfg.K
	assign := buildPartition("CE", e.train, e.spec, k, defaultDelta, rng.New(e.seed+21))
	factory := e.s.factoryFor(e.spec)
	// Full participation, so every client stays live each round — the
	// eager fleet is the right shape here, and its shards are zero-copy
	// views of e.train rather than per-client copies.
	e.clients = fl.BuildClients(e.train, assign.ClientIndices, factory, e.seed+22)
	e.global = factory(e.seed + 23).ParamVector()
	e.round = 0
	e.runClients()
	return e.state()
}

func (e *flEnv) runClients() {
	lc := fl.LocalConfig{Epochs: e.s.Epochs, Batch: e.s.Batch, LR: e.s.LR}
	e.updates = make([]fl.Update, len(e.clients))
	for i, c := range e.clients {
		e.updates[i] = c.Run(e.global, lc)
	}
}

func (e *flEnv) state() []float64 {
	k := e.drlCfg.K
	lb, la := make([]float64, k), make([]float64, k)
	ns := make([]int, k)
	for i, u := range e.updates {
		lb[i], la[i], ns[i] = u.LossBefore, u.LossAfter, u.N
	}
	return core.BuildState(e.drlCfg, lb, la, ns)
}

// Step aggregates with softmax(action means), trains the next round and
// returns the Eq. 7 reward of the resulting global model.
func (e *flEnv) Step(action []float64) ([]float64, float64, bool) {
	k := e.drlCfg.K
	alpha := mathx.Softmax(action[:k])
	e.global = fl.Aggregate(e.updates, alpha)
	e.round++
	e.runClients()
	lb := make([]float64, k)
	for i, u := range e.updates {
		lb[i] = u.LossBefore
	}
	r := core.RewardOf(e.drlCfg, lb)
	return e.state(), r, e.round >= e.episode
}
