package experiments

import (
	"fmt"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"feddrl/internal/mathx"
	"feddrl/internal/metrics"
)

func TestCellKeyRoundTrip(t *testing.T) {
	specs := []CellSpec{
		{Dataset: "cifar100-sim", Partition: "CE", Method: "FedDRL", N: 10, K: 6, Delta: 0.6, Seed: 1},
		{Dataset: "fashion-sim", Partition: "Non-equal", Method: "SingleSet", N: 100, K: 10, Delta: 0.30000000000000004, Seed: 1<<63 + 5},
	}
	for _, spec := range specs {
		got, err := ParseCellKey(spec.Key())
		if err != nil {
			t.Fatalf("ParseCellKey(%q): %v", spec.Key(), err)
		}
		if got != spec {
			t.Fatalf("round trip %+v -> %+v", spec, got)
		}
	}
	for _, bad := range []string{"", "a|b", "a|b|c|x|1|0.5|1", "a|b|c|1|1|zz|1", "a|b|c|1|1|0.5|-2"} {
		if _, err := ParseCellKey(bad); err == nil {
			t.Fatalf("ParseCellKey(%q) did not error", bad)
		}
	}
}

func TestShardJobsPartition(t *testing.T) {
	s := gridScale()
	jobs := table3Jobs(s, 1)
	for _, count := range []int{1, 2, 3, 5, len(jobs) + 3} {
		seen := map[string]int{}
		total := 0
		for index := 1; index <= count; index++ {
			slice, err := ShardJobs(jobs, index, count)
			if err != nil {
				t.Fatal(err)
			}
			total += len(slice)
			for _, spec := range slice {
				seen[spec.Key()]++
			}
		}
		if total != len(jobs) {
			t.Fatalf("count=%d: shards cover %d of %d jobs", count, total, len(jobs))
		}
		for key, n := range seen {
			if n != 1 {
				t.Fatalf("count=%d: job %s assigned to %d shards", count, key, n)
			}
		}
	}
	if _, err := ShardJobs(jobs, 0, 2); err == nil {
		t.Fatal("index 0 accepted")
	}
	if _, err := ShardJobs(jobs, 3, 2); err == nil {
		t.Fatal("index > count accepted")
	}
}

func TestArtifactSetFileRoundTrip(t *testing.T) {
	s := gridScale()
	set, err := RunShard("figure8", s, 3, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 {
		t.Fatal("shard produced no cells")
	}
	path := filepath.Join(t.TempDir(), "s1.art")
	if err := set.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadArtifactSet(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != set.Experiment || got.ScaleName != set.ScaleName ||
		got.Rounds != set.Rounds || got.Seed != set.Seed || got.Seeds != set.Seeds {
		t.Fatalf("header mismatch: %+v vs %+v", got, set)
	}
	if !reflect.DeepEqual(got.Cells, set.Cells) {
		t.Fatal("cells do not round-trip bit-identically")
	}
	if !reflect.DeepEqual(got.order, set.order) {
		t.Fatalf("cell order does not round-trip: %v vs %v", got.order, set.order)
	}
}

// TestShardMergeByteIdentical is the acceptance gate of the sharding
// refactor: running a grid as n shards, round-tripping every shard
// through its artifact file, merging and rendering must reproduce the
// unsharded output byte for byte.
func TestShardMergeByteIdentical(t *testing.T) {
	s := gridScale()
	for _, tc := range []struct {
		exp    string
		shards int
	}{
		{"table3", 2},
		{"table3", 3},
		{"figure7", 2},
		{"figure8", 2},
		{"figure10", 2},
		{"table4", 2},
		{"headline", 2},
		{"figure5", 2},
		{"figure6", 2},
	} {
		want, err := Run(tc.exp, s, 1)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		var sets []*ArtifactSet
		for i := 1; i <= tc.shards; i++ {
			set, err := RunShard(tc.exp, s, 1, 1, i, tc.shards)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(dir, fmt.Sprintf("%s_%d.art", set.Experiment, i))
			if err := set.SaveFile(path); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadArtifactSet(path)
			if err != nil {
				t.Fatal(err)
			}
			sets = append(sets, loaded)
		}
		merged, err := MergeSets(sets)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RenderSet(s, merged)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("%s over %d shards differs from unsharded run:\n--- unsharded ---\n%s\n--- merged ---\n%s",
				tc.exp, tc.shards, want, got)
		}
	}
}

func TestShardSeedsCompose(t *testing.T) {
	s := gridScale()
	want, err := RunSeeds("figure8", s, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sets []*ArtifactSet
	for i := 1; i <= 2; i++ {
		set, err := RunShard("figure8", s, 1, 2, i, 2)
		if err != nil {
			t.Fatal(err)
		}
		sets = append(sets, set)
	}
	merged, err := MergeSets(sets)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RenderSet(s, merged)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sharded seeds-replicated run differs:\n%s\nvs\n%s", got, want)
	}
}

func TestRunSeedsMeanStd(t *testing.T) {
	s := gridScale()
	out, err := RunSeeds("table3", s, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "mean±std of 2 seeds") {
		t.Fatalf("seeds header missing:\n%s", out)
	}
	if !strings.Contains(out, "±") || !strings.Contains(out, "impr.(a)") {
		t.Fatalf("seeds render malformed:\n%s", out)
	}
	// Numeric spot check: one cell's mean±std must equal the stats of
	// the two replicates' best accuracies.
	st := newStore(s)
	defer st.close()
	spec := table3Spec(s, s.datasets()[2].Name, "CE", "FedAvg", s.SmallN, 1)
	vals := []float64{st.get(spec).Best(), st.get(replicateSpec(spec, 1)).Best()}
	want := metrics.MeanStd(mathx.Mean(vals), mathx.Std(vals))
	if !strings.Contains(out, want) {
		t.Fatalf("expected cell %q not found in:\n%s", want, out)
	}
	// Determinism: a second run renders the identical bytes.
	again, err := RunSeeds("table3", s, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if again != out {
		t.Fatal("RunSeeds is not deterministic")
	}
	// seeds=1 falls back to the single-seed render.
	one, err := RunSeeds("table3", s, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Run("table3", s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one != single {
		t.Fatal("RunSeeds(1) differs from Run")
	}
}

func TestShardAndMergeValidation(t *testing.T) {
	s := gridScale()
	if _, err := RunShard("table2", s, 1, 1, 1, 2); err == nil {
		t.Fatal("monolithic experiment accepted for sharding")
	}
	if _, err := RunShard("nope", s, 1, 1, 1, 2); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if _, err := RunShard("table3", s, 1, 1, 5, 2); err == nil {
		t.Fatal("out-of-range shard accepted")
	}
	if _, err := RunSeeds("figure5", s, 1, 3); err == nil {
		t.Fatal("seed replication accepted for experiment without SeedsRender")
	}
	if _, err := RunSeeds("table2", s, 1, 3); err == nil || !strings.Contains(err.Error(), "seed replication") {
		t.Fatalf("monolithic -seeds error should mention seed replication, got %v", err)
	}
	if _, err := MergeSets(nil); err == nil {
		t.Fatal("empty merge accepted")
	}

	a, err := RunShard("figure8", s, 1, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunShard("figure8", s, 2, 1, 2, 2) // different seed
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MergeSets([]*ArtifactSet{a, b}); err == nil {
		t.Fatal("mismatched shard headers accepted")
	}

	// A lone shard merges fine but renders incomplete.
	lone, err := MergeSets([]*ArtifactSet{a})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RenderSet(s, lone); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("incomplete merge rendered without error (err=%v)", err)
	}

	// Scale mismatch is rejected.
	full, err := RunShard("figure8", s, 1, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	other := s
	other.Name = "other"
	if _, err := RenderSet(other, full); err == nil {
		t.Fatal("scale-name mismatch accepted")
	}
	other = s
	other.Rounds++
	if _, err := RenderSet(other, full); err == nil {
		t.Fatal("rounds mismatch accepted")
	}
}
