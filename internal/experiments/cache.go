package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"

	"feddrl/internal/serialize"
)

// Content-addressed artifact cache. Every grid cell is addressed by a
// stable hash of (CellSpec, code-relevant Scale fields,
// serialize.CacheSchema); a cell whose record already exists in the
// cache directory is loaded instead of recomputed, and the rendered
// output is byte-identical either way because renderers consume the
// same bit-exact float64 payloads. The cache is shared safely between
// concurrent processes (shards pointed at one directory): records are
// published by atomic rename, and any unreadable, stale-schema or
// mismatched record degrades to a miss, never to a wrong result.

// cellRecordKind tags cell cache records inside the checkpoint format.
const cellRecordKind = "cell-artifact"

// cellFileExt is the cache record file extension.
const cellFileExt = ".cell"

// CacheStats counts one handle's lookups. Misses includes Rejected:
// a rejected record (corrupt, stale schema, key mismatch) is recomputed
// exactly like an absent one.
type CacheStats struct {
	Hits      int // cells served from the cache
	Misses    int // cells that had to be computed
	Rejected  int // of the misses, records present on disk but invalid
	Writes    int // fresh records written back
	WriteErrs int // failed write-backs (non-fatal; the run still has the artifact)
}

// Cache is an on-disk content-addressed store of cell artifacts.
// A nil *Cache is valid and disables caching; every method is nil-safe.
type Cache struct {
	dir      string
	readonly bool

	mu    sync.Mutex
	stats CacheStats
}

// OpenCache opens (and, unless readonly, creates) a cache directory.
// A readonly cache serves hits but never writes records back — for
// shared or audited cache directories.
func OpenCache(dir string, readonly bool) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("experiments: cache directory must be non-empty")
	}
	if readonly {
		info, err := os.Stat(dir)
		if err != nil {
			return nil, fmt.Errorf("experiments: readonly cache: %w", err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("experiments: readonly cache %s is not a directory", dir)
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: cache dir: %w", err)
	}
	return &Cache{dir: dir, readonly: readonly}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string {
	if c == nil {
		return ""
	}
	return c.dir
}

// Readonly reports whether the cache writes records back.
func (c *Cache) Readonly() bool { return c != nil && c.readonly }

// Stats returns a snapshot of this handle's lookup counters.
func (c *Cache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Summary renders the stats as the CLI's one-line hit/miss report.
func (c *Cache) Summary() string {
	st := c.Stats()
	s := fmt.Sprintf("%d hits, %d misses, %d written", st.Hits, st.Misses, st.Writes)
	if st.Rejected > 0 {
		s += fmt.Sprintf(", %d rejected", st.Rejected)
	}
	if st.WriteErrs > 0 {
		s += fmt.Sprintf(", %d write errors", st.WriteErrs)
	}
	return fmt.Sprintf("%s (%s)", s, c.Dir())
}

// hashedScaleFields lists every Scale field folded into a cell's cache
// key: exactly the fields that can change what a cell computes given
// its CellSpec. hashedScaleFields and excludedScaleFields together must
// cover the Scale struct — enforced by TestCacheKeyCoversScale — so a
// new Scale field cannot silently produce false cache hits.
var hashedScaleFields = []string{
	"DataScale", // sizes the synthesized datasets a cell trains on
	"Rounds",
	"SmallN", // full-participation clamp inside runMethodOn
	"Epochs", "Batch", "LR", "ProxMu",
	"DRLHidden", "DRLBatch", "DRLUpdates", "DRLWarmup",
	"DRLExploreStd", "DRLExploreDecay",
	"UseConvNets",
	"Precision", // federated-state width changes every cell's numbers
	"EvalEvery",
}

// excludedScaleFields lists the Scale fields deliberately left out of
// the cache key, each because it cannot change a cell's artifact:
// Name is a display label; LargeN, K, KSweep and Deltas only steer job
// enumeration (the resulting N/K/Delta live in each CellSpec); Workers
// and Parallel pick the engine width, which is bit-identical at any
// value (the PR-1 determinism guarantee).
var excludedScaleFields = []string{
	"Name", "LargeN", "K", "KSweep", "Deltas", "Workers", "Parallel",
}

// conditionallyHashedScaleFields are hashed only when any of them is
// non-zero (see hashScale): the scale-level Byzantine knobs change what
// a cell computes, but their zero values must contribute nothing so
// every cache address minted before the knobs existed stays valid.
var conditionallyHashedScaleFields = []string{
	"Attack", "AttackFrac", "Merger",
}

// hashScale folds the code-relevant Scale fields into h, in the fixed
// hashedScaleFields order.
func hashScale(h *serialize.Hasher, s Scale) {
	v := reflect.ValueOf(s)
	for _, name := range hashedScaleFields {
		f := v.FieldByName(name)
		switch f.Kind() {
		case reflect.String:
			h.String(f.String())
		case reflect.Int:
			h.Int(int(f.Int()))
		case reflect.Uint64:
			h.Uint64(f.Uint())
		case reflect.Float64:
			h.Float64(f.Float())
		case reflect.Bool:
			h.Bool(f.Bool())
		case reflect.Slice:
			switch e := f.Interface().(type) {
			case []int:
				h.Ints(e)
			case []float64:
				h.Floats(e)
			default:
				panic(fmt.Sprintf("experiments: unhashable scale slice field %s", name))
			}
		default:
			panic(fmt.Sprintf("experiments: unhashable scale field %s (%s)", name, f.Kind()))
		}
	}
	// The attack knobs joined the struct after caches were already
	// populated, so they fold in only when set — an all-zero triple is
	// byte-identical to the pre-byzantine hash input.
	if s.Attack != "" || s.AttackFrac != 0 || s.Merger != "" {
		h.String("byzantine")
		h.String(s.Attack)
		h.Float64(s.AttackFrac)
		h.String(s.Merger)
	}
}

// cellAddress returns the content address of one cell: a stable hash of
// the cache schema version, the cell spec and the code-relevant scale
// configuration.
func cellAddress(s Scale, spec CellSpec) string {
	h := serialize.NewHasher()
	h.Int(serialize.CacheSchema)
	h.String(spec.Key())
	hashScale(h, s)
	return h.Sum()
}

// path maps a content address to its record file.
func (c *Cache) path(address string) string {
	return filepath.Join(c.dir, address+cellFileExt)
}

// load looks a cell up, returning (artifact, true) on a hit. Any
// failure — absent file, corrupt record, stale schema, key mismatch —
// counts as a miss and returns false.
func (c *Cache) load(s Scale, spec CellSpec) (*CellArtifact, bool) {
	if c == nil {
		return nil, false
	}
	path := c.path(cellAddress(s, spec))
	ck, err := serialize.LoadFile(path)
	if err != nil {
		c.miss(!errors.Is(err, os.ErrNotExist))
		return nil, false
	}
	a, err := cellFromRecord(ck, spec)
	if err != nil {
		c.miss(true)
		return nil, false
	}
	c.mu.Lock()
	c.stats.Hits++
	c.mu.Unlock()
	return a, true
}

// miss records a cache miss; rejected marks a record that existed but
// failed validation.
func (c *Cache) miss(rejected bool) {
	c.mu.Lock()
	c.stats.Misses++
	if rejected {
		c.stats.Rejected++
	}
	c.mu.Unlock()
}

// store writes a freshly computed cell back, atomically (temp file +
// rename), so a concurrent reader — another shard sharing the
// directory — never observes a half-written record. Write failures are
// non-fatal: the run already holds the artifact in memory, so the cache
// only loses a future hit.
func (c *Cache) store(s Scale, spec CellSpec, a *CellArtifact) {
	if c == nil || c.readonly {
		return
	}
	err := c.write(c.path(cellAddress(s, spec)), cellRecord(spec, a))
	c.mu.Lock()
	if err != nil {
		c.stats.WriteErrs++
	} else {
		c.stats.Writes++
	}
	c.mu.Unlock()
}

// write publishes a record at path via atomic rename. CreateTemp's
// 0600 mode is widened to 0644 before the rename: cache directories are
// advertised as shareable across users (one populates, another reads
// with -cache-readonly).
func (c *Cache) write(path string, ck *serialize.Checkpoint) error {
	tmp, err := os.CreateTemp(c.dir, ".cell-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := ck.Write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// cellRecord encodes one artifact as a versioned cache record, payload
// checksum included. The vector codec is shared with artifact-set
// files (cellVectorsInto), so the two formats stay in lockstep.
func cellRecord(spec CellSpec, a *CellArtifact) *serialize.Checkpoint {
	ck := serialize.NewCacheRecord(cellRecordKind)
	ck.Meta["key"] = spec.Key()
	cellVectorsInto(ck, "", a)
	ck.Meta["payload"] = cellPayloadSum(ck, "")
	return ck
}

// cellFromRecord validates and decodes a cache record for the expected
// spec. The stored key must match the spec exactly: the content address
// already encodes it, so a mismatch means a hash collision, a renamed
// file or tampering. The payload checksum must match the decoded
// series: the checkpoint framing carries no checksum of its own, so
// this is what catches bit rot inside vector data. Either failure is
// treated as a miss.
func cellFromRecord(ck *serialize.Checkpoint, spec CellSpec) (*CellArtifact, error) {
	if err := serialize.ValidateCacheRecord(ck, cellRecordKind); err != nil {
		return nil, err
	}
	if got, want := ck.Meta["key"], spec.Key(); got != want {
		return nil, fmt.Errorf("experiments: cache record is for cell %q, want %q", got, want)
	}
	if got, want := cellPayloadSum(ck, ""), ck.Meta["payload"]; got != want {
		return nil, fmt.Errorf("experiments: cache record payload checksum mismatch (corrupt record)")
	}
	return cellFromVectors(ck, "", spec)
}
