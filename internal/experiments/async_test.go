package experiments

import (
	"strings"
	"testing"
)

// TestAsyncSyncMicro renders the async-vs-sync grid at micro scale and
// checks the determinism contract as data: every "+async" row (the
// degenerate trace) must carry exactly the same accuracy cells as its
// synchronous base row, while the "+stale" straggler rows must at least
// render. The full bit-identity matrix lives in internal/fl; this
// covers the experiment wiring — variant parsing, agent sizing, and the
// artifact pipeline.
func TestAsyncSyncMicro(t *testing.T) {
	out := AsyncSync(microScale(), 3)
	rows := map[string]string{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 3 && (strings.HasPrefix(fields[0], "Fed")) {
			rows[fields[0]] = fields[1] + " " + fields[2]
		}
	}
	for _, m := range asyncMethods {
		if _, ok := rows[m]; !ok {
			t.Fatalf("method %q missing from output:\n%s", m, out)
		}
	}
	for _, base := range []string{"FedAvg", "FedDRL"} {
		if rows[base] != rows[base+"+async"] {
			t.Fatalf("%s degenerate async row %q differs from sync row %q",
				base, rows[base+"+async"], rows[base])
		}
	}
}

// TestAsyncVariantParsing pins the method-id convention the cache keys
// depend on.
func TestAsyncVariantParsing(t *testing.T) {
	for _, c := range []struct{ in, base, mode string }{
		{"FedAvg", "FedAvg", ""},
		{"FedAvg+async", "FedAvg", "async"},
		{"FedDRL+stale", "FedDRL", "stale"},
	} {
		base, mode := asyncVariant(c.in)
		if base != c.base || mode != c.mode {
			t.Fatalf("asyncVariant(%q) = (%q, %q), want (%q, %q)", c.in, base, mode, c.base, c.mode)
		}
	}
}
