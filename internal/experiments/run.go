package experiments

import (
	"fmt"

	"feddrl/internal/core"
	"feddrl/internal/dataset"
	"feddrl/internal/engine"
	"feddrl/internal/fl"
	"feddrl/internal/partition"
	"feddrl/internal/rng"
)

// Methods compared throughout the evaluation, in the paper's column
// order.
var Methods = []string{"SingleSet", "FedAvg", "FedProx", "FedDRL"}

// PartitionNames in the paper's order for Table 3.
var PartitionNames = []string{"PA", "CE", "CN"}

// defaultDelta is the non-IID level used by Table 3 ("we set δ = 0.6").
const defaultDelta = 0.6

// numGroups is the cluster count of the CE/CN partitions.
const numGroups = 3

// buildPartition constructs the named partition over the training set.
func buildPartition(name string, train *dataset.Dataset, spec dataset.Spec, n int, delta float64, r *rng.RNG) *partition.Assignment {
	lpc := labelsPerClient(spec)
	switch name {
	case "PA":
		return partition.Pareto(train, n, lpc, 1.5, r)
	case "CE":
		return partition.ClusteredEqual(train, n, delta, lpc, numGroups, r)
	case "CN":
		return partition.ClusteredNonEqual(train, n, delta, lpc, numGroups, 1.0, r)
	case "Equal":
		return partition.EqualShards(train, n, 2, r)
	case "Non-equal":
		return partition.NonEqualShards(train, n, 10, 6, 14, r)
	}
	panic(fmt.Sprintf("experiments: unknown partition %q", name))
}

// drlConfig sizes the agent per Table 1, shrunk by the scale.
func (s Scale) drlConfig(k int, seed uint64) core.Config {
	cfg := core.DefaultConfig(k)
	cfg.Hidden = s.DRLHidden
	cfg.BatchSize = s.DRLBatch
	cfg.UpdatesPerRound = s.DRLUpdates
	cfg.WarmupExperiences = s.DRLWarmup
	if s.DRLExploreStd > 0 {
		cfg.ExploreStd = s.DRLExploreStd
	}
	if s.DRLExploreDecay > 0 {
		cfg.ExploreDecay = s.DRLExploreDecay
	}
	cfg.BufferCap = 4096
	cfg.Seed = seed
	return cfg
}

// runMethodOn executes one cell on a shared engine pool and returns its
// result. cell.Delta applies to the clustered partitions only. The
// cell's client training, evaluation and aggregation all borrow the
// pool's lanes, so many cells can run concurrently under one global
// worker bound. A nil pool falls back to the scale's own Workers
// setting.
//
// The cell's Attack/AttackFrac/Merger fields (falling back to the
// scale-level fields when the cell leaves all three zero) configure
// Byzantine fault injection and the robust merge rule; both default to
// the benign, byte-identical historical behavior.
func runMethodOn(s Scale, spec dataset.Spec, cell CellSpec, pool *engine.Pool) *fl.Result {
	partName, method := cell.Partition, cell.Method
	n, k, delta, seed := cell.N, cell.K, cell.Delta, cell.Seed
	attackName, attackFrac, mergerName := cell.Attack, cell.AttackFrac, cell.Merger
	if attackName == "" && attackFrac == 0 && mergerName == "" {
		attackName, attackFrac, mergerName = s.Attack, s.AttackFrac, s.Merger
	}
	train, test := dataset.Synthesize(spec, seed)
	// The paper's default K=10 means full participation at its small
	// federation size (N=10, §4.1.2); mirror that so the FedDRL state's
	// slots stay client-consistent in the SmallN runs.
	if n <= s.SmallN {
		k = n
	}
	if k > n {
		k = n
	}
	if method == "SingleSet" {
		cfg := s.runConfig(spec, k, 0, seed+1)
		// The baseline borrows the same pool as the federated cells, so
		// its kernel/eval parallelism — and therefore its timings — are
		// comparable with theirs.
		cfg.Pool = pool
		return fl.SingleSet(cfg, train, test)
	}
	r := rng.New(seed + 2)
	assign := buildPartition(partName, train, spec, n, delta, r)

	// A "+mode" suffix selects the asynchronous engine (see async.go);
	// the base method picks the aggregator as before. FedDRL's impact
	// computation is fixed-width, so its agent is sized to the cohort
	// the server actually merges: the async threshold for "+stale"
	// cells, K otherwise.
	base, mode := asyncVariant(method)
	aggCohort := k
	if mode == asyncModeStale {
		aggCohort = asyncThreshold(k)
	}

	proxMu := 0.0
	var agg fl.Aggregator
	switch base {
	case "FedAvg":
		agg = fl.FedAvg{}
	case "FedProx":
		agg = fl.FedProx{}
		proxMu = s.ProxMu
	case "FedDRL":
		agg = fl.NewFedDRL(core.NewAgent(s.drlConfig(aggCohort, seed+3)))
	default:
		panic(fmt.Sprintf("experiments: unknown method %q", method))
	}
	cfg := s.runConfig(spec, k, proxMu, seed+1)
	cfg.Pool = pool
	// Byzantine cells: the attack seed stays 0 (derived from the run
	// seed), so a cell's fault trace is as reproducible as everything
	// else keyed off its CellSpec. Krum's tolerance is sized to the
	// declared malicious fraction of the merge cohort.
	atk, err := fl.ParseAttack(attackName, attackFrac)
	if err != nil {
		panic(err)
	}
	cfg.Attack = atk
	mg, err := fl.ParseMerger(mergerName, attackFrac, aggCohort)
	if err != nil {
		panic(err)
	}
	cfg.Merger = mg
	// Virtual clients: only the K selected identities occupy client
	// state at a time, so a cell's memory is O(K) in its client count.
	// Bit-identical to the eager fl.Run path with the same seed.
	cp := fl.NewClientPool(train, fl.IndexPartition(assign.ClientIndices), cfg.Factory, seed+4)
	if mode != "" {
		ar, err := fl.RunAsync(asyncConfigFor(mode, cfg, k, seed), cp, test, agg)
		if err != nil {
			// Grid traces are drop-free by construction (asyncStaleTrace
			// sets no OfflineFrac/DropRate), so starvation here means the
			// configuration is broken, not flaky.
			panic(err)
		}
		return ar.Result
	}
	return fl.RunVirtual(cfg, cp, test, agg)
}

// artifactStore executes cell jobs and caches their artifacts within one
// experiment invocation. It owns the invocation's engine pool: prefetch
// fans independent cells out across the pool's lanes, and every cell's
// inner federated run borrows the same lanes, keeping total parallelism
// bounded. The pool's work-stealing scheduler is what keeps the grid's
// three layers (cells → FL rounds → evaluation/merge) all parallel: a
// lane that drains its cells steals the nested jobs of the cells still
// running, so the tail of a grid is finished by every lane instead of
// one. Every grid entry point must release the pool with
// `defer st.close()` so a panicking cell run cannot leak it.
//
// An optional content-addressed Cache extends the in-memory store
// across invocations: cells found in the cache are loaded instead of
// recomputed, and freshly computed cells are written back (unless the
// cache is readonly). Lookups and write-backs are bit-exact, so cached
// and uncached runs render byte-identical output.
type artifactStore struct {
	s     Scale
	pool  *engine.Pool
	cache *Cache
	cells map[string]*CellArtifact
}

func newStore(s Scale) *artifactStore { return newStoreCached(s, nil) }

func newStoreCached(s Scale, cache *Cache) *artifactStore {
	return &artifactStore{s: s, pool: s.newPool(), cache: cache, cells: map[string]*CellArtifact{}}
}

// close releases the store's pool (idempotent; nil-safe).
func (st *artifactStore) close() { st.pool.Close() }

// compute runs one cell spec to an artifact on the store's pool.
func (st *artifactStore) compute(spec CellSpec) *CellArtifact {
	ds := st.s.datasetByName(spec.Dataset)
	res := runMethodOn(st.s, ds, spec, st.pool)
	return artifactOf(spec, res)
}

// prefetch computes every not-yet-cached job, independent cells in
// parallel on the pool. The on-disk cache is consulted sequentially
// first (I/O, not compute); only genuine misses fan out across the
// pool. Results land in per-job slots and are committed to the map only
// after the barrier, so no lock is needed and the store contents do not
// depend on completion order. Callers must enumerate the same cells
// their rendering loop will get(): a cell missing from the job list
// still computes correctly, just sequentially.
func (st *artifactStore) prefetch(jobs []CellSpec) {
	pending := make([]CellSpec, 0, len(jobs))
	queued := map[string]bool{}
	for _, j := range jobs {
		key := j.Key()
		if _, done := st.cells[key]; done || queued[key] {
			continue
		}
		if a, ok := st.cache.load(st.s, j); ok {
			st.cells[key] = a
			continue
		}
		queued[key] = true
		pending = append(pending, j)
	}
	results := make([]*CellArtifact, len(pending))
	st.pool.For(len(pending), func(i int) {
		a := st.compute(pending[i])
		results[i] = a
		// Publish to the cache immediately, not after the barrier: a
		// killed run must keep every cell it finished, or interrupted
		// shards could never resume. Concurrent stores are safe — each
		// record is its own temp file + rename, and the stats counters
		// are mutex-guarded.
		st.cache.store(st.s, pending[i], a)
	})
	for i, j := range pending {
		st.cells[j.Key()] = results[i]
	}
}

// get returns the cell's artifact, computing it on demand (consulting
// the cache first, and writing a fresh computation back).
func (st *artifactStore) get(spec CellSpec) *CellArtifact {
	key := spec.Key()
	if a, ok := st.cells[key]; ok {
		return a
	}
	if a, ok := st.cache.load(st.s, spec); ok {
		st.cells[key] = a
		return a
	}
	a := st.compute(spec)
	st.cells[key] = a
	st.cache.store(st.s, spec, a)
	return a
}

// runGrid is the single-process execution path of a grid experiment:
// enumerate jobs, compute artifacts concurrently (skipping cells the
// cache already holds), render.
func runGrid(e Experiment, s Scale, seed uint64, cache *Cache) string {
	st := newStoreCached(s, cache)
	defer st.close()
	st.prefetch(e.Jobs(s, seed))
	return e.Render(s, seed, st.get)
}
