package experiments

import (
	"fmt"

	"feddrl/internal/core"
	"feddrl/internal/dataset"
	"feddrl/internal/engine"
	"feddrl/internal/fl"
	"feddrl/internal/partition"
	"feddrl/internal/rng"
)

// Methods compared throughout the evaluation, in the paper's column
// order.
var Methods = []string{"SingleSet", "FedAvg", "FedProx", "FedDRL"}

// PartitionNames in the paper's order for Table 3.
var PartitionNames = []string{"PA", "CE", "CN"}

// defaultDelta is the non-IID level used by Table 3 ("we set δ = 0.6").
const defaultDelta = 0.6

// numGroups is the cluster count of the CE/CN partitions.
const numGroups = 3

// buildPartition constructs the named partition over the training set.
func buildPartition(name string, train *dataset.Dataset, spec dataset.Spec, n int, delta float64, r *rng.RNG) *partition.Assignment {
	lpc := labelsPerClient(spec)
	switch name {
	case "PA":
		return partition.Pareto(train, n, lpc, 1.5, r)
	case "CE":
		return partition.ClusteredEqual(train, n, delta, lpc, numGroups, r)
	case "CN":
		return partition.ClusteredNonEqual(train, n, delta, lpc, numGroups, 1.0, r)
	case "Equal":
		return partition.EqualShards(train, n, 2, r)
	case "Non-equal":
		return partition.NonEqualShards(train, n, 10, 6, 14, r)
	}
	panic(fmt.Sprintf("experiments: unknown partition %q", name))
}

// drlConfig sizes the agent per Table 1, shrunk by the scale.
func (s Scale) drlConfig(k int, seed uint64) core.Config {
	cfg := core.DefaultConfig(k)
	cfg.Hidden = s.DRLHidden
	cfg.BatchSize = s.DRLBatch
	cfg.UpdatesPerRound = s.DRLUpdates
	cfg.WarmupExperiences = s.DRLWarmup
	if s.DRLExploreStd > 0 {
		cfg.ExploreStd = s.DRLExploreStd
	}
	if s.DRLExploreDecay > 0 {
		cfg.ExploreDecay = s.DRLExploreDecay
	}
	cfg.BufferCap = 4096
	cfg.Seed = seed
	return cfg
}

// runMethod executes one (dataset, partition, N, method) cell and returns
// its result. delta applies to the clustered partitions only.
func runMethod(s Scale, spec dataset.Spec, partName, method string, n, k int, delta float64, seed uint64) *fl.Result {
	return runMethodOn(s, spec, partName, method, n, k, delta, seed, nil)
}

// runMethodOn is runMethod executing on a shared engine pool: the cell's
// client training, evaluation and aggregation all borrow the pool's
// lanes, so many cells can run concurrently under one global worker
// bound. A nil pool falls back to the scale's own Workers setting.
func runMethodOn(s Scale, spec dataset.Spec, partName, method string, n, k int, delta float64, seed uint64, pool *engine.Pool) *fl.Result {
	train, test := dataset.Synthesize(spec, seed)
	// The paper's default K=10 means full participation at its small
	// federation size (N=10, §4.1.2); mirror that so the FedDRL state's
	// slots stay client-consistent in the SmallN runs.
	if n <= s.SmallN {
		k = n
	}
	if k > n {
		k = n
	}
	if method == "SingleSet" {
		cfg := s.runConfig(spec, k, 0, seed+1)
		return fl.SingleSet(cfg, train, test)
	}
	r := rng.New(seed + 2)
	assign := buildPartition(partName, train, spec, n, delta, r)

	proxMu := 0.0
	var agg fl.Aggregator
	switch method {
	case "FedAvg":
		agg = fl.FedAvg{}
	case "FedProx":
		agg = fl.FedProx{}
		proxMu = s.ProxMu
	case "FedDRL":
		agg = fl.NewFedDRL(core.NewAgent(s.drlConfig(k, seed+3)))
	default:
		panic(fmt.Sprintf("experiments: unknown method %q", method))
	}
	cfg := s.runConfig(spec, k, proxMu, seed+1)
	cfg.Pool = pool
	clients := fl.BuildClients(train, assign.ClientIndices, cfg.Factory, seed+4)
	return fl.Run(cfg, clients, test, agg)
}

// cellKey identifies one experiment cell for caching across runners.
type cellKey struct {
	ds, part, method string
	n                int
	delta            float64
}

// resultCache avoids recomputing identical (dataset, partition, method)
// runs when several figures share them within one process. It owns the
// experiment invocation's engine pool: prefetch fans independent cells
// out across the pool's lanes, and every cell's inner federated run
// borrows the same lanes, keeping total parallelism bounded.
type resultCache struct {
	s     Scale
	seed  uint64
	pool  *engine.Pool
	cells map[cellKey]*fl.Result
}

func newCache(s Scale, seed uint64) *resultCache {
	return &resultCache{s: s, seed: seed, pool: s.newPool(), cells: map[cellKey]*fl.Result{}}
}

// close releases the cache's pool (idempotent; nil-safe).
func (c *resultCache) close() { c.pool.Close() }

// cellJob fully describes one runnable experiment cell.
type cellJob struct {
	spec   dataset.Spec
	part   string
	method string
	n, k   int
	delta  float64
}

func (j cellJob) key() cellKey {
	return cellKey{ds: j.spec.Name, part: j.part, method: j.method, n: j.n, delta: j.delta}
}

// prefetch computes every not-yet-cached job, independent cells in
// parallel on the pool. Results land in per-job slots and are committed
// to the map only after the barrier, so no lock is needed and the cache
// contents do not depend on completion order. Callers must enumerate
// the same cells their rendering loop will get(): a cell missing from
// the job list still computes correctly, just sequentially.
func (c *resultCache) prefetch(jobs []cellJob) {
	pending := make([]cellJob, 0, len(jobs))
	queued := map[cellKey]bool{}
	for _, j := range jobs {
		key := j.key()
		if _, done := c.cells[key]; done || queued[key] {
			continue
		}
		queued[key] = true
		pending = append(pending, j)
	}
	results := make([]*fl.Result, len(pending))
	c.pool.For(len(pending), func(i int) {
		j := pending[i]
		results[i] = runMethodOn(c.s, j.spec, j.part, j.method, j.n, j.k, j.delta, c.seed, c.pool)
	})
	for i, j := range pending {
		c.cells[j.key()] = results[i]
	}
}

func (c *resultCache) get(spec dataset.Spec, part, method string, n, k int, delta float64) *fl.Result {
	key := cellKey{ds: spec.Name, part: part, method: method, n: n, delta: delta}
	if r, ok := c.cells[key]; ok {
		return r
	}
	r := runMethodOn(c.s, spec, part, method, n, k, delta, c.seed, c.pool)
	c.cells[key] = r
	return r
}
