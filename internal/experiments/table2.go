package experiments

import (
	"fmt"
	"strings"

	"feddrl/internal/dataset"
	"feddrl/internal/metrics"
	"feddrl/internal/partition"
	"feddrl/internal/rng"
)

// Table2 reproduces Table 2: which non-IID properties (cluster skew,
// label-size imbalance, quantity imbalance) each partitioner exhibits —
// derived here from measured partition statistics rather than asserted.
func Table2(s Scale, seed uint64) string {
	spec := dataset.MNISTSim().Scaled(s.DataScale)
	train, _ := dataset.Synthesize(spec, seed)
	t := &metrics.Table{
		Title:   "Table 2: characteristics of non-IID partition methods (measured)",
		Headers: []string{"Partition", "ClusterSkew", "LabelSizeImb", "QuantityImb", "clusterScore", "quantityCV"},
	}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, name := range PartitionNames {
		a := buildPartition(name, train, spec, s.SmallN, defaultDelta, rng.New(seed+7))
		st := partition.ComputeStats(train, a)
		ch := st.Characteristics(train.NumClasses)
		t.AddRow(name, mark(ch.ClusterSkew), mark(ch.LabelSizeImbalance), mark(ch.QuantityImbalance),
			fmt.Sprintf("%.3f", st.ClusterScore), fmt.Sprintf("%.3f", st.QuantityCV))
	}
	return t.RenderString()
}

// Figure4 reproduces Figure 4: an illustration of how PA, CE and CN
// distribute a 10-class dataset over 10 clients (glyph area ∝ samples).
func Figure4(s Scale, seed uint64) string {
	spec := dataset.MNISTSim().Scaled(s.DataScale)
	train, _ := dataset.Synthesize(spec, seed)
	var b strings.Builder
	b.WriteString("Figure 4: data partitioning illustrations (10 clients)\n\n")
	for _, name := range PartitionNames {
		a := buildPartition(name, train, spec, 10, defaultDelta, rng.New(seed+7))
		b.WriteString(partition.ASCII(train, a))
		b.WriteByte('\n')
	}
	return b.String()
}
