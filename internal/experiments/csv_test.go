package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestFigure7And8Series(t *testing.T) {
	s := microScale()
	ss7 := Figure7Series(s, 31)
	if ss7.XName != "K" || len(ss7.X) != len(s.KSweep) {
		t.Fatalf("figure7 x axis wrong: %+v", ss7)
	}
	for _, m := range fedMethods {
		if len(ss7.Data[m]) != len(s.KSweep) {
			t.Fatalf("figure7 series %s wrong length", m)
		}
	}
	ss8 := Figure8Series(s, 33)
	if ss8.XName != "delta" || len(ss8.X) != len(s.Deltas) {
		t.Fatalf("figure8 x axis wrong: %+v", ss8)
	}
}

func TestFigure5Series(t *testing.T) {
	s := microScale()
	sets := Figure5Series(s, 35)
	// 2 datasets (cifar, fashion) × 3 partitions.
	if len(sets) != 6 {
		t.Fatalf("figure5 panels = %d, want 6", len(sets))
	}
	for name, ss := range sets {
		if !strings.HasPrefix(name, "figure5-") {
			t.Fatalf("panel name %q", name)
		}
		if len(ss.Names) != 3 {
			t.Fatalf("panel %s has %d series", name, len(ss.Names))
		}
	}
}

func TestExportCSV(t *testing.T) {
	s := microScale()
	dir := t.TempDir()
	paths, err := ExportCSV("figure7", s, 37, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 {
		t.Fatalf("paths = %v", paths)
	}
	data, err := os.ReadFile(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "K,FedAvg,FedProx,FedDRL\n") {
		t.Fatalf("csv header wrong:\n%s", data)
	}
	if _, err := ExportCSV("table3", s, 37, dir); err == nil {
		t.Fatal("unsupported id did not error")
	}
	if _, err := ExportCSV("figure8", s, 37, filepath.Join(dir, "sub")); err != nil {
		t.Fatalf("nested dir export failed: %v", err)
	}
}
