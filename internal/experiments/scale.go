// Package experiments regenerates every table and figure of the paper's
// evaluation (§4–5): Table 2 (partition characteristics), Table 3 (top-1
// accuracy across datasets × partitions × client counts × methods),
// Table 4 (label-size-imbalance shards), Figure 4 (partition
// illustration), Figure 5 (accuracy timelines), Figure 6 (per-client
// inference-loss robustness), Figure 7 (participation sweep), Figure 8
// (non-IID level sweep), Figure 9 (server computation time) and Figure 10
// (convergence rounds), plus the design ablations called out in
// DESIGN.md. Each experiment is a named entry in Registry, so the CLI
// (cmd/tables), the benchmarks (bench_test.go) and tests all share one
// implementation. Grid experiments decompose into serializable CellSpec
// jobs whose CellArtifact results render in a pure merge/format stage,
// which is what enables cross-process sharding (tables -shard/-merge)
// and seed replication (-seeds).
package experiments

import (
	"fmt"
	"runtime"

	"feddrl/internal/dataset"
	"feddrl/internal/engine"
	"feddrl/internal/fl"
	"feddrl/internal/nn"
	"feddrl/internal/rng"
)

// Scale selects how big an experiment run is. The shapes the paper
// reports (method ordering, crossovers) are preserved across scales; only
// absolute accuracy and wall-clock change.
type Scale struct {
	Name string

	// DataScale multiplies per-class sample counts of the dataset specs.
	DataScale float64
	// Rounds is the number of communication rounds per run.
	Rounds int
	// SmallN and LargeN are the two federation sizes of Table 3 (the
	// paper's 10 and 100 clients).
	SmallN, LargeN int
	// K is the default number of participating clients per round.
	K int

	// Local solver settings (paper: E=5, b=10, lr=0.01).
	Epochs int
	Batch  int
	LR     float64
	ProxMu float64

	// DRL agent sizing.
	DRLHidden  int
	DRLBatch   int
	DRLUpdates int
	DRLWarmup  int
	// DRLExploreStd and DRLExploreDecay tune the action noise: shorter
	// runs use less noise with faster decay (DESIGN.md
	// "compressed-horizon adaptations").
	DRLExploreStd   float64
	DRLExploreDecay float64

	// KSweep holds the participation levels of Fig. 7; Deltas the
	// non-IID levels of Fig. 8.
	KSweep []int
	Deltas []float64

	// UseConvNets switches the client models from MLPs to the paper's
	// convolutional architectures (SimpleCNN / VGGMini).
	UseConvNets bool
	// Precision selects the federated-state width of every cell
	// ("f32", "f64", or "" for the f64 default — see fl.Precision).
	// It changes each cell's numeric results, so it is part of the
	// cache key: f32 and f64 cells never share a record.
	Precision string
	// EvalEvery is the test-evaluation cadence.
	EvalEvery int
	// Attack, AttackFrac and Merger apply a scale-wide Byzantine fault
	// model and robust merge rule to every cell whose CellSpec leaves
	// its own attack fields zero (the -attack/-merger CLI flags set
	// these). The zero values are the benign default and contribute
	// nothing to cache addresses; non-zero values are folded in
	// conditionally (see hashScale).
	Attack     string
	AttackFrac float64
	Merger     string
	// Parallel trains selected clients in goroutines.
	//
	// Deprecated: shorthand for Workers=GOMAXPROCS; prefer Workers.
	Parallel bool
	// Workers is the bounded engine width used both across independent
	// experiment cells (Table 3 / Fig. 7 / Fig. 8 grids) and inside each
	// federated run (client training, evaluation, aggregation); the
	// work-stealing scheduler shares the same lanes across all three
	// layers, so nested loops stay parallel even when the grid saturates
	// the pool. 0 means GOMAXPROCS when Parallel is set, sequential
	// otherwise. Any value produces bit-identical experiment output.
	Workers int
}

// effectiveWorkers resolves the engine width from Workers and the
// deprecated Parallel flag.
func (s Scale) effectiveWorkers() int {
	if s.Workers > 0 {
		return s.Workers
	}
	if s.Parallel {
		return runtime.GOMAXPROCS(0)
	}
	return 1
}

// newPool builds the shared engine pool for one experiment invocation,
// or nil (inline execution) when the scale is sequential.
func (s Scale) newPool() *engine.Pool {
	if s.effectiveWorkers() <= 1 {
		return nil
	}
	return engine.New(s.effectiveWorkers())
}

// CI returns the continuous-integration scale: every experiment finishes
// in seconds on one CPU core.
func CI() Scale {
	return Scale{
		Name:      "ci",
		DataScale: 0.15,
		Rounds:    10,
		SmallN:    10, LargeN: 24,
		K:      6,
		Epochs: 2, Batch: 10, LR: 0.05, ProxMu: 0.01,
		DRLHidden: 32, DRLBatch: 16, DRLUpdates: 2, DRLWarmup: 4,
		DRLExploreStd: 0.08, DRLExploreDecay: 0.99,
		KSweep:      []int{4, 8, 12},
		Deltas:      []float64{0.2, 0.4, 0.6},
		UseConvNets: false,
		EvalEvery:   1,
	}
}

// Medium returns the scale used to produce EXPERIMENTS.md: minutes per
// experiment, large enough for the paper's orderings to emerge clearly.
func Medium() Scale {
	return Scale{
		Name:      "medium",
		DataScale: 0.5,
		Rounds:    40,
		SmallN:    10, LargeN: 40,
		K:      8,
		Epochs: 3, Batch: 10, LR: 0.03, ProxMu: 0.01,
		DRLHidden: 64, DRLBatch: 32, DRLUpdates: 4, DRLWarmup: 8,
		DRLExploreStd: 0.05, DRLExploreDecay: 0.99,
		KSweep:      []int{8, 16, 24},
		Deltas:      []float64{0.2, 0.4, 0.6},
		UseConvNets: false,
		EvalEvery:   2,
	}
}

// Paper returns the closest configuration to §4.1.2 that is feasible on
// this substrate (full synthetic datasets, convolutional client models,
// Table 1 DRL sizing).
func Paper() Scale {
	return Scale{
		Name:      "paper",
		DataScale: 1.0,
		Rounds:    150,
		SmallN:    10, LargeN: 100,
		K:      10,
		Epochs: 5, Batch: 10, LR: 0.01, ProxMu: 0.01,
		DRLHidden: 256, DRLBatch: 64, DRLUpdates: 8, DRLWarmup: 16,
		DRLExploreStd: 0.1, DRLExploreDecay: 0.995,
		KSweep:      []int{10, 20, 50},
		Deltas:      []float64{0.2, 0.4, 0.6},
		UseConvNets: true,
		EvalEvery:   5,
		Parallel:    true,
	}
}

// ScaleByName resolves "ci", "medium" or "paper".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "ci":
		return CI(), nil
	case "medium":
		return Medium(), nil
	case "paper":
		return Paper(), nil
	}
	return Scale{}, fmt.Errorf("experiments: unknown scale %q (want ci, medium or paper)", name)
}

// datasets returns the three evaluation dataset specs at this scale.
func (s Scale) datasets() []dataset.Spec {
	return []dataset.Spec{
		dataset.CIFAR100Sim().Scaled(s.DataScale),
		dataset.FashionSim().Scaled(s.DataScale),
		dataset.MNISTSim().Scaled(s.DataScale),
	}
}

// datasetByName resolves one of the scale's dataset specs by exact name
// (the executable form of CellSpec.Dataset).
func (s Scale) datasetByName(name string) dataset.Spec {
	for _, spec := range s.datasets() {
		if spec.Name == name {
			return spec
		}
	}
	panic(fmt.Sprintf("experiments: unknown dataset %q in cell spec", name))
}

// labelsPerClient mirrors §4.1.1: 2 labels per client, 20 for the
// 100-class dataset.
func labelsPerClient(spec dataset.Spec) int {
	if spec.Classes >= 100 {
		return 20
	}
	return 2
}

// factoryFor returns the client model factory for a dataset at this
// scale: MLPs at CI/medium scale, the paper's CNN/VGG shapes at paper
// scale (§4.1.2: simple CNN for MNIST/Fashion, VGG for CIFAR-100).
func (s Scale) factoryFor(spec dataset.Spec) nn.Factory {
	sh := spec.Shape
	if s.UseConvNets {
		if spec.Classes >= 100 {
			return func(seed uint64) *nn.Network {
				return nn.NewVGGMini(rng.New(seed), sh.C, sh.H, sh.W, spec.Classes)
			}
		}
		return func(seed uint64) *nn.Network {
			return nn.NewSimpleCNN(rng.New(seed), sh.C, sh.H, sh.W, spec.Classes)
		}
	}
	hidden := 48
	return func(seed uint64) *nn.Network {
		return nn.NewMLP(rng.New(seed), sh.Len(), []int{hidden}, spec.Classes)
	}
}

// runConfig assembles the fl.RunConfig for this scale. The parallelism
// settings (Workers, or the Pool the caller attaches) govern every
// method uniformly — including the SingleSet baseline, whose kernel and
// evaluation fan-out runs on the same engine as the federated cells.
func (s Scale) runConfig(spec dataset.Spec, k int, proxMu float64, seed uint64) fl.RunConfig {
	return fl.RunConfig{
		Rounds:    s.Rounds,
		K:         k,
		Local:     fl.LocalConfig{Epochs: s.Epochs, Batch: s.Batch, LR: s.LR, ProxMu: proxMu},
		Factory:   s.factoryFor(spec),
		Seed:      seed,
		Parallel:  s.Parallel,
		Workers:   s.Workers,
		EvalEvery: s.EvalEvery,
		Precision: fl.Precision(s.Precision),
	}
}
