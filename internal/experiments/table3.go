package experiments

import (
	"fmt"
	"strings"

	"feddrl/internal/metrics"
)

// Table3Cell is one (dataset, partition, N) column of Table 3.
type Table3Cell struct {
	Dataset   string
	Partition string
	N         int
	Best      map[string]float64 // method → best top-1 accuracy (%)
}

// ImprA returns FedDRL's relative improvement over the best baseline
// (impr.(a) of Table 3).
func (c Table3Cell) ImprA() float64 {
	best := c.baseline(true)
	return metrics.RelImprovement(c.Best["FedDRL"], best)
}

// ImprB returns FedDRL's relative improvement over the worst baseline
// (impr.(b)).
func (c Table3Cell) ImprB() float64 {
	worst := c.baseline(false)
	return metrics.RelImprovement(c.Best["FedDRL"], worst)
}

func (c Table3Cell) baseline(best bool) float64 {
	fa, fp := c.Best["FedAvg"], c.Best["FedProx"]
	if best == (fa > fp) {
		return fa
	}
	return fp
}

// Table3Result holds every cell, in dataset-major order.
type Table3Result struct {
	Scale string
	Cells []Table3Cell
}

// RunTable3 executes the full Table 3 grid: three datasets × {PA, CE, CN}
// × {SmallN, LargeN} clients × four methods. Independent cells run
// concurrently on the scale's engine pool (Scale.Workers); each cell is
// seeded independently, so the rendered table is identical at any width.
func RunTable3(s Scale, seed uint64) *Table3Result {
	cache := newCache(s, seed)
	defer cache.close()
	var jobs []cellJob
	for _, spec := range s.datasets() {
		for _, n := range []int{s.SmallN, s.LargeN} {
			for _, part := range PartitionNames {
				for _, m := range Methods {
					jobs = append(jobs, cellJob{spec: spec, part: part, method: m, n: n, k: s.K, delta: defaultDelta})
				}
			}
		}
	}
	cache.prefetch(jobs)
	res := &Table3Result{Scale: s.Name}
	for _, spec := range s.datasets() {
		for _, n := range []int{s.SmallN, s.LargeN} {
			for _, part := range PartitionNames {
				cell := Table3Cell{Dataset: spec.Name, Partition: part, N: n, Best: map[string]float64{}}
				for _, m := range Methods {
					r := cache.get(spec, part, m, n, s.K, defaultDelta)
					cell.Best[m] = r.Best()
				}
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res
}

// Render prints the Table 3 layout: one block per (dataset, N), rows =
// methods plus impr.(a)/impr.(b).
func (t *Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: best top-1 test accuracy (%%), scale=%s\n\n", t.Scale)
	// Group cells by (dataset, n).
	type groupKey struct {
		ds string
		n  int
	}
	order := []groupKey{}
	groups := map[groupKey][]Table3Cell{}
	for _, c := range t.Cells {
		k := groupKey{c.Dataset, c.N}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	for _, k := range order {
		cells := groups[k]
		tab := &metrics.Table{
			Title:   fmt.Sprintf("%s, %d clients", k.ds, k.n),
			Headers: append([]string{"method"}, PartitionNames...),
		}
		for _, m := range Methods {
			row := []string{m}
			for _, part := range PartitionNames {
				row = append(row, metrics.F(findCell(cells, part).Best[m]))
			}
			tab.AddRow(row...)
		}
		ra := []string{"impr.(a)"}
		rb := []string{"impr.(b)"}
		for _, part := range PartitionNames {
			c := findCell(cells, part)
			ra = append(ra, metrics.Pct(c.ImprA()))
			rb = append(rb, metrics.Pct(c.ImprB()))
		}
		tab.AddRow(ra...)
		tab.AddRow(rb...)
		b.WriteString(tab.RenderString())
		b.WriteByte('\n')
	}
	return b.String()
}

func findCell(cells []Table3Cell, part string) Table3Cell {
	for _, c := range cells {
		if c.Partition == part {
			return c
		}
	}
	panic(fmt.Sprintf("experiments: missing Table 3 cell for partition %q", part))
}

// Table3 is the Registry entry point.
func Table3(s Scale, seed uint64) string { return RunTable3(s, seed).Render() }
