package experiments

import (
	"fmt"
	"strings"

	"feddrl/internal/mathx"
	"feddrl/internal/metrics"
)

// Table3Cell is one (dataset, partition, N) column of Table 3.
type Table3Cell struct {
	Dataset   string
	Partition string
	N         int
	Best      map[string]float64 // method → best top-1 accuracy (%)
}

// ImprA returns FedDRL's relative improvement over the best baseline
// (impr.(a) of Table 3).
func (c Table3Cell) ImprA() float64 {
	best := c.baseline(true)
	return metrics.RelImprovement(c.Best["FedDRL"], best)
}

// ImprB returns FedDRL's relative improvement over the worst baseline
// (impr.(b)).
func (c Table3Cell) ImprB() float64 {
	worst := c.baseline(false)
	return metrics.RelImprovement(c.Best["FedDRL"], worst)
}

func (c Table3Cell) baseline(best bool) float64 {
	fa, fp := c.Best["FedAvg"], c.Best["FedProx"]
	if best == (fa > fp) {
		return fa
	}
	return fp
}

// Table3Result holds every cell, in dataset-major order.
type Table3Result struct {
	Scale string
	Cells []Table3Cell
}

// table3Spec builds the cell spec of one Table 3 grid cell.
func table3Spec(s Scale, ds, part, method string, n int, seed uint64) CellSpec {
	return CellSpec{Dataset: ds, Partition: part, Method: method, N: n, K: s.K, Delta: defaultDelta, Seed: seed}
}

// table3Jobs enumerates the full Table 3 grid: three datasets ×
// {PA, CE, CN} × {SmallN, LargeN} clients × four methods, in canonical
// (shard-defining) order.
func table3Jobs(s Scale, seed uint64) []CellSpec {
	var jobs []CellSpec
	for _, spec := range s.datasets() {
		for _, n := range []int{s.SmallN, s.LargeN} {
			for _, part := range PartitionNames {
				for _, m := range Methods {
					jobs = append(jobs, table3Spec(s, spec.Name, part, m, n, seed))
				}
			}
		}
	}
	return jobs
}

// BuildTable3 assembles the Table 3 result from cell artifacts — the
// pure merge stage shared by unsharded runs and shard merges.
func BuildTable3(s Scale, seed uint64, get ArtifactGetter) *Table3Result {
	res := &Table3Result{Scale: s.Name}
	for _, spec := range s.datasets() {
		for _, n := range []int{s.SmallN, s.LargeN} {
			for _, part := range PartitionNames {
				cell := Table3Cell{Dataset: spec.Name, Partition: part, N: n, Best: map[string]float64{}}
				for _, m := range Methods {
					cell.Best[m] = get(table3Spec(s, spec.Name, part, m, n, seed)).Best()
				}
				res.Cells = append(res.Cells, cell)
			}
		}
	}
	return res
}

// RunTable3 executes the full Table 3 grid in-process. Independent
// cells run concurrently on the scale's engine pool (Scale.Workers);
// each cell is seeded independently, so the rendered table is identical
// at any width.
func RunTable3(s Scale, seed uint64) *Table3Result {
	st := newStore(s)
	defer st.close()
	st.prefetch(table3Jobs(s, seed))
	return BuildTable3(s, seed, st.get)
}

// Render prints the Table 3 layout: one block per (dataset, N), rows =
// methods plus impr.(a)/impr.(b).
func (t *Table3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: best top-1 test accuracy (%%), scale=%s\n\n", t.Scale)
	// Group cells by (dataset, n).
	type groupKey struct {
		ds string
		n  int
	}
	order := []groupKey{}
	groups := map[groupKey][]Table3Cell{}
	for _, c := range t.Cells {
		k := groupKey{c.Dataset, c.N}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	for _, k := range order {
		cells := groups[k]
		tab := &metrics.Table{
			Title:   fmt.Sprintf("%s, %d clients", k.ds, k.n),
			Headers: append([]string{"method"}, PartitionNames...),
		}
		for _, m := range Methods {
			row := []string{m}
			for _, part := range PartitionNames {
				row = append(row, metrics.F(findCell(cells, part).Best[m]))
			}
			tab.AddRow(row...)
		}
		ra := []string{"impr.(a)"}
		rb := []string{"impr.(b)"}
		for _, part := range PartitionNames {
			c := findCell(cells, part)
			ra = append(ra, metrics.Pct(c.ImprA()))
			rb = append(rb, metrics.Pct(c.ImprB()))
		}
		tab.AddRow(ra...)
		tab.AddRow(rb...)
		b.WriteString(tab.RenderString())
		b.WriteByte('\n')
	}
	return b.String()
}

func findCell(cells []Table3Cell, part string) Table3Cell {
	for _, c := range cells {
		if c.Partition == part {
			return c
		}
	}
	panic(fmt.Sprintf("experiments: missing Table 3 cell for partition %q", part))
}

// renderTable3 is the Registry render stage.
func renderTable3(s Scale, seed uint64, get ArtifactGetter) string {
	return BuildTable3(s, seed, get).Render()
}

// renderTable3Seeds renders the seed-replicated Table 3: every cell is
// mean±std of the replicates' best accuracies, and the impr.(a)/(b)
// rows are computed from the mean values.
func renderTable3Seeds(s Scale, seed uint64, seeds int, get ArtifactGetter) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3: best top-1 test accuracy (%%), mean±std of %d seeds, scale=%s\n\n", seeds, s.Name)
	for _, spec := range s.datasets() {
		for _, n := range []int{s.SmallN, s.LargeN} {
			tab := &metrics.Table{
				Title:   fmt.Sprintf("%s, %d clients", spec.Name, n),
				Headers: append([]string{"method"}, PartitionNames...),
			}
			// Collect each cell's replicate values once; the mean±std
			// rows and the impr rows both derive from bests.
			bests := map[string]map[string][]float64{} // part → method → replicate bests
			meanCells := map[string]Table3Cell{}
			for _, part := range PartitionNames {
				bests[part] = map[string][]float64{}
				cell := Table3Cell{Dataset: spec.Name, Partition: part, N: n, Best: map[string]float64{}}
				for _, m := range Methods {
					vals := replicateBests(get, table3Spec(s, spec.Name, part, m, n, seed), seeds)
					bests[part][m] = vals
					cell.Best[m] = mathx.Mean(vals)
				}
				meanCells[part] = cell
			}
			for _, m := range Methods {
				row := []string{m}
				for _, part := range PartitionNames {
					vals := bests[part][m]
					row = append(row, metrics.MeanStd(mathx.Mean(vals), mathx.Std(vals)))
				}
				tab.AddRow(row...)
			}
			ra := []string{"impr.(a)"}
			rb := []string{"impr.(b)"}
			for _, part := range PartitionNames {
				c := meanCells[part]
				ra = append(ra, metrics.Pct(c.ImprA()))
				rb = append(rb, metrics.Pct(c.ImprB()))
			}
			tab.AddRow(ra...)
			tab.AddRow(rb...)
			b.WriteString(tab.RenderString())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// replicateBests collects the best accuracies of a cell's seed
// replicates.
func replicateBests(get ArtifactGetter, spec CellSpec, seeds int) []float64 {
	vals := make([]float64, seeds)
	for r := 0; r < seeds; r++ {
		vals[r] = get(replicateSpec(spec, r)).Best()
	}
	return vals
}

// Table3 renders the single-seed Table 3 (the Registry entry's
// historical signature, kept for library users and tests).
func Table3(s Scale, seed uint64) string { return RunTable3(s, seed).Render() }
