package experiments

import (
	"fmt"
	"strings"

	"feddrl/internal/core"
	"feddrl/internal/dataset"
	"feddrl/internal/fl"
	"feddrl/internal/metrics"
	"feddrl/internal/rng"
)

// AblationPrior compares the FedAvg-anchored residual parameterization
// (α = softmax(z + log n_k/Σn), the compressed-horizon adaptation in
// DESIGN.md) against the paper's plain softmax actions (Eq. 5), on the
// 100-class dataset where the difference is largest.
func AblationPrior(s Scale, seed uint64) string {
	spec := s.datasets()[0] // cifar100-sim
	n := s.SmallN
	k := n // full participation at the small federation size (§4.1.2)
	train, test := dataset.Synthesize(spec, seed)
	assign := buildPartition("CE", train, spec, n, defaultDelta, rng.New(seed+2))
	cfg := s.runConfig(spec, k, 0, seed+1)

	runWith := func(prior bool) *fl.Result {
		agg := fl.NewFedDRL(core.NewAgent(s.drlConfig(k, seed+3)))
		agg.FedAvgPrior = prior
		clients := fl.BuildClients(train, assign.ClientIndices, cfg.Factory, seed+4)
		return fl.Run(cfg, clients, test, agg)
	}
	withPrior := runWith(true)
	without := runWith(false)
	avg := func() *fl.Result {
		clients := fl.BuildClients(train, assign.ClientIndices, cfg.Factory, seed+4)
		return fl.Run(cfg, clients, test, fl.FedAvg{})
	}()
	tab := &metrics.Table{
		Title:   "Ablation: FedAvg-anchored actions vs plain Eq. 5 softmax, cifar100-sim / CE",
		Headers: []string{"variant", "best acc", "final acc"},
	}
	tab.AddRow("FedAvg baseline", metrics.F(avg.Best()), metrics.F(avg.Final()))
	tab.AddRow("FedDRL, prior-anchored", metrics.F(withPrior.Best()), metrics.F(withPrior.Final()))
	tab.AddRow("FedDRL, plain softmax", metrics.F(without.Best()), metrics.F(without.Final()))
	return tab.RenderString()
}

// runFedDRLVariant runs FedDRL on a CE-partitioned dataset with a
// modified agent configuration, returning the run result.
func runFedDRLVariant(s Scale, spec dataset.Spec, seed uint64, modify func(*core.Config), agent *core.Agent) *fl.Result {
	train, test := dataset.Synthesize(spec, seed)
	n := s.SmallN
	k := n // full participation at the small federation size (§4.1.2)
	assign := buildPartition("CE", train, spec, n, defaultDelta, rng.New(seed+2))
	if agent == nil {
		drlCfg := s.drlConfig(k, seed+3)
		if modify != nil {
			modify(&drlCfg)
		}
		agent = core.NewAgent(drlCfg)
	}
	cfg := s.runConfig(spec, k, 0, seed+1)
	clients := fl.BuildClients(train, assign.ClientIndices, cfg.Factory, seed+4)
	return fl.Run(cfg, clients, test, fl.NewFedDRL(agent))
}

// AblationRewardGap compares the full Eq. 7 reward against a variant
// without the fairness (max−min) term. The fairness term should reduce
// the variance of client inference losses.
func AblationRewardGap(s Scale, seed uint64) string {
	spec := dataset.MNISTSim().Scaled(s.DataScale)
	tail := s.Rounds / 4
	if tail < 1 {
		tail = 1
	}
	full := runFedDRLVariant(s, spec, seed, nil, nil)
	noGap := runFedDRLVariant(s, spec, seed, func(c *core.Config) { c.RewardGapWeight = 0 }, nil)
	tab := &metrics.Table{
		Title:   "Ablation: reward fairness term (Eq. 7 gap component), mnist-sim / CE",
		Headers: []string{"variant", "best acc", "client loss var (tail)"},
	}
	tab.AddRow("full reward (gap w=1)", metrics.F(full.Best()), fmt.Sprintf("%.4f", full.ClientLossVars().Tail(tail)))
	tab.AddRow("mean-only (gap w=0)", metrics.F(noGap.Best()), fmt.Sprintf("%.4f", noGap.ClientLossVars().Tail(tail)))
	return tab.RenderString()
}

// AblationStateNorm compares normalized against raw state encodings
// (DESIGN.md records normalization as a stability choice the paper leaves
// unspecified).
func AblationStateNorm(s Scale, seed uint64) string {
	spec := dataset.MNISTSim().Scaled(s.DataScale)
	norm := runFedDRLVariant(s, spec, seed, nil, nil)
	raw := runFedDRLVariant(s, spec, seed, func(c *core.Config) { c.NormalizeState = false }, nil)
	tab := &metrics.Table{
		Title:   "Ablation: state normalization, mnist-sim / CE",
		Headers: []string{"variant", "best acc", "final acc"},
	}
	tab.AddRow("normalized state", metrics.F(norm.Best()), metrics.F(norm.Final()))
	tab.AddRow("raw state", metrics.F(raw.Best()), metrics.F(raw.Final()))
	return tab.RenderString()
}

// AblationTwoStage compares a FedDRL run whose agent was pre-trained with
// the two-stage strategy (§3.4.2: m online workers on simulated FL
// environments, then offline training on the merged buffer) against a
// cold-started agent. Pre-training should help most in early rounds.
func AblationTwoStage(s Scale, seed uint64) string {
	spec := dataset.MNISTSim().Scaled(s.DataScale)
	k := s.SmallN // full participation at the small federation size
	drlCfg := s.drlConfig(k, seed+3)

	// Stage 1+2: two workers on independently seeded FL environments.
	episode := s.Rounds / 2
	if episode < 3 {
		episode = 3
	}
	res := core.TrainTwoStage(drlCfg, func(w int, wseed uint64) core.Env {
		return newFLEnv(s, spec, drlCfg, wseed+uint64(w)*977, episode)
	}, 2, episode, 4)

	pre := runFedDRLVariant(s, spec, seed, nil, res.Agent)
	cold := runFedDRLVariant(s, spec, seed, nil, nil)

	early := len(pre.Accuracy) / 3
	if early < 1 {
		early = 1
	}
	tab := &metrics.Table{
		Title:   "Ablation: two-stage pre-training vs cold start, mnist-sim / CE",
		Headers: []string{"variant", "best acc", "early-rounds mean acc", "worker experiences"},
	}
	tab.AddRow("two-stage pre-trained",
		metrics.F(pre.Best()),
		metrics.F(pre.Accuracy[:early].Mean()),
		fmt.Sprintf("%v", res.WorkerExperiences))
	tab.AddRow("cold start (basic training)",
		metrics.F(cold.Best()),
		metrics.F(cold.Accuracy[:early].Mean()),
		"-")
	var b strings.Builder
	b.WriteString(tab.RenderString())
	return b.String()
}
