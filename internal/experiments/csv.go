package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"feddrl/internal/metrics"
)

// CSV export: the figure runners print text tables; these helpers emit
// the same series as CSV files for external plotting (one file per
// figure panel). Used by cmd/tables -csvdir. They consume the same
// CellSpec→artifact pipeline as the text renderers.

// Figure5Series returns one SeriesSet per (dataset, partition) panel of
// Figure 5, keyed "figure5-<dataset>-<partition>".
func Figure5Series(s Scale, seed uint64) map[string]*metrics.SeriesSet {
	return figure5Series(s, seed, nil)
}

func figure5Series(s Scale, seed uint64, cache *Cache) map[string]*metrics.SeriesSet {
	st := newStoreCached(s, cache)
	defer st.close()
	st.prefetch(figure5Jobs(s, seed))
	out := map[string]*metrics.SeriesSet{}
	for _, spec := range s.datasets() {
		if spec.Name == "mnist-sim" {
			continue
		}
		for _, part := range PartitionNames {
			ref := st.get(table3Spec(s, spec.Name, part, "FedAvg", s.SmallN, seed))
			x := make([]float64, len(ref.AccRounds))
			for i, r := range ref.AccRounds {
				x[i] = float64(r)
			}
			ss := metrics.NewSeriesSet("round", x)
			for _, m := range fedMethods {
				ss.Add(m, st.get(table3Spec(s, spec.Name, part, m, s.SmallN, seed)).Accuracy)
			}
			out[fmt.Sprintf("figure5-%s-%s", spec.Name, part)] = ss
		}
	}
	return out
}

// Figure7Series returns the participation-sweep series (x = K).
func Figure7Series(s Scale, seed uint64) *metrics.SeriesSet {
	return figure7Series(s, seed, nil)
}

func figure7Series(s Scale, seed uint64, cache *Cache) *metrics.SeriesSet {
	st := newStoreCached(s, cache)
	defer st.close()
	st.prefetch(figure7Jobs(s, seed))
	x := make([]float64, len(s.KSweep))
	cols := map[string]metrics.Series{}
	for i, k := range s.KSweep {
		x[i] = float64(k)
		for _, m := range fedMethods {
			cols[m] = append(cols[m], st.get(figure7Spec(s, k, m, seed)).Best())
		}
	}
	ss := metrics.NewSeriesSet("K", x)
	for _, m := range fedMethods {
		ss.Add(m, cols[m])
	}
	return ss
}

// Figure8Series returns the non-IID-level-sweep series (x = delta).
func Figure8Series(s Scale, seed uint64) *metrics.SeriesSet {
	return figure8Series(s, seed, nil)
}

func figure8Series(s Scale, seed uint64, cache *Cache) *metrics.SeriesSet {
	st := newStoreCached(s, cache)
	defer st.close()
	st.prefetch(figure8Jobs(s, seed))
	x := make([]float64, len(s.Deltas))
	cols := map[string]metrics.Series{}
	for i, delta := range s.Deltas {
		x[i] = delta
		for _, m := range fedMethods {
			cols[m] = append(cols[m], st.get(figure8Spec(s, delta, m, seed)).Best())
		}
	}
	ss := metrics.NewSeriesSet("delta", x)
	for _, m := range fedMethods {
		ss.Add(m, cols[m])
	}
	return ss
}

// ExportCSV writes the figure series of the given experiment id into
// dir, returning the written file paths. Supported ids: figure5,
// figure7, figure8.
func ExportCSV(id string, s Scale, seed uint64, dir string) ([]string, error) {
	return ExportCSVCached(id, s, seed, dir, nil)
}

// ExportCSVCached is ExportCSV backed by a content-addressed artifact
// cache — after a cached text render of the same figure, the CSV export
// reloads every cell instead of retraining it.
func ExportCSVCached(id string, s Scale, seed uint64, dir string, cache *Cache) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: csv dir: %w", err)
	}
	sets := map[string]*metrics.SeriesSet{}
	switch id {
	case "figure5":
		sets = figure5Series(s, seed, cache)
	case "figure7":
		sets["figure7"] = figure7Series(s, seed, cache)
	case "figure8":
		sets["figure8"] = figure8Series(s, seed, cache)
	default:
		return nil, fmt.Errorf("experiments: no CSV export for %q (supported: figure5, figure7, figure8)", id)
	}
	var paths []string
	for name, ss := range sets {
		p := filepath.Join(dir, name+".csv")
		if err := ss.SaveCSV(p); err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}
