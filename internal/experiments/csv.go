package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"feddrl/internal/engine"
	"feddrl/internal/fl"
	"feddrl/internal/metrics"
)

// CSV export: the figure runners print text tables; these helpers emit
// the same series as CSV files for external plotting (one file per
// figure panel). Used by cmd/tables -csvdir.

// Figure5Series returns one SeriesSet per (dataset, partition) panel of
// Figure 5, keyed "figure5-<dataset>-<partition>".
func Figure5Series(s Scale, seed uint64) map[string]*metrics.SeriesSet {
	cache := newCache(s, seed)
	defer cache.close()
	out := map[string]*metrics.SeriesSet{}
	for _, spec := range s.datasets() {
		if spec.Name == "mnist-sim" {
			continue
		}
		for _, part := range PartitionNames {
			ref := cache.get(spec, part, "FedAvg", s.SmallN, s.K, defaultDelta)
			x := make([]float64, len(ref.AccRounds))
			for i, r := range ref.AccRounds {
				x[i] = float64(r)
			}
			ss := metrics.NewSeriesSet("round", x)
			for _, m := range fedMethods {
				r := cache.get(spec, part, m, s.SmallN, s.K, defaultDelta)
				ss.Add(m, r.Accuracy)
			}
			out[fmt.Sprintf("figure5-%s-%s", spec.Name, part)] = ss
		}
	}
	return out
}

// Figure7Series returns the participation-sweep series (x = K).
func Figure7Series(s Scale, seed uint64) *metrics.SeriesSet {
	spec := s.datasets()[0]
	x := make([]float64, len(s.KSweep))
	cols := map[string]metrics.Series{}
	results := sweepGrid(s, len(s.KSweep), func(i, j int, pool *engine.Pool) *fl.Result {
		k := s.KSweep[i]
		return runMethodOn(s, spec, "CE", fedMethods[j], s.LargeN, k, defaultDelta, seed+uint64(k), pool)
	})
	for i, k := range s.KSweep {
		x[i] = float64(k)
		for j, m := range fedMethods {
			cols[m] = append(cols[m], results[i][j].Best())
		}
	}
	ss := metrics.NewSeriesSet("K", x)
	for _, m := range fedMethods {
		ss.Add(m, cols[m])
	}
	return ss
}

// Figure8Series returns the non-IID-level-sweep series (x = delta).
func Figure8Series(s Scale, seed uint64) *metrics.SeriesSet {
	spec := s.datasets()[1]
	x := make([]float64, len(s.Deltas))
	cols := map[string]metrics.Series{}
	results := sweepGrid(s, len(s.Deltas), func(i, j int, pool *engine.Pool) *fl.Result {
		delta := s.Deltas[i]
		return runMethodOn(s, spec, "CE", fedMethods[j], s.LargeN, s.K, delta, seed+uint64(delta*100), pool)
	})
	for i, delta := range s.Deltas {
		x[i] = delta
		for j, m := range fedMethods {
			cols[m] = append(cols[m], results[i][j].Best())
		}
	}
	ss := metrics.NewSeriesSet("delta", x)
	for _, m := range fedMethods {
		ss.Add(m, cols[m])
	}
	return ss
}

// ExportCSV writes the figure series of the given experiment id into
// dir, returning the written file paths. Supported ids: figure5,
// figure7, figure8.
func ExportCSV(id string, s Scale, seed uint64, dir string) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: csv dir: %w", err)
	}
	sets := map[string]*metrics.SeriesSet{}
	switch id {
	case "figure5":
		sets = Figure5Series(s, seed)
	case "figure7":
		sets["figure7"] = Figure7Series(s, seed)
	case "figure8":
		sets["figure8"] = Figure8Series(s, seed)
	default:
		return nil, fmt.Errorf("experiments: no CSV export for %q (supported: figure5, figure7, figure8)", id)
	}
	var paths []string
	for name, ss := range sets {
		p := filepath.Join(dir, name+".csv")
		if err := ss.SaveCSV(p); err != nil {
			return nil, err
		}
		paths = append(paths, p)
	}
	return paths, nil
}
