package experiments

import (
	"fmt"
	"strings"

	"feddrl/internal/mathx"
	"feddrl/internal/metrics"
)

// headlineSeeds is the fixed replicate count of the headline runner
// (the grid already carries its own seed averaging, so it does not also
// support -seeds).
const headlineSeeds = 3

var (
	headlineParts   = []string{"CE", "CN"}
	headlineMethods = []string{"FedAvg", "FedDRL"}
)

// headlineJobs enumerates the headline grid: every dataset ×
// {SmallN, LargeN} × {CE, CN} × {FedAvg, FedDRL} × three seed
// replicates (stride seedStride, the historical 1009).
func headlineJobs(s Scale, seed uint64) []CellSpec {
	var jobs []CellSpec
	for _, spec := range s.datasets() {
		for _, n := range []int{s.SmallN, s.LargeN} {
			for _, part := range headlineParts {
				for _, m := range headlineMethods {
					for r := 0; r < headlineSeeds; r++ {
						jobs = append(jobs, replicateSpec(table3Spec(s, spec.Name, part, m, n, seed), r))
					}
				}
			}
		}
	}
	return jobs
}

// renderHeadline tests the paper's core claim with seed averaging: under
// cluster skew (CE, CN) FedDRL's learned aggregation should match or
// beat FedAvg, with the gap widening at higher client counts (§4.2.1's
// reading of Table 3). Single-seed cells at reduced scale carry ±
// several points of noise; each cell is repeated over headlineSeeds
// runs and reported as mean ± std, which is what EXPERIMENTS.md quotes.
func renderHeadline(s Scale, seed uint64, get ArtifactGetter) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Headline claim (Table 3's CE/CN columns, mean of %d seeds): FedDRL vs FedAvg under cluster skew\n\n", headlineSeeds)
	tab := &metrics.Table{
		Headers: []string{"dataset", "N", "partition", "FedAvg", "FedDRL", "delta"},
	}
	for _, spec := range s.datasets() {
		for _, n := range []int{s.SmallN, s.LargeN} {
			for _, part := range headlineParts {
				avg := replicateBests(get, table3Spec(s, spec.Name, part, "FedAvg", n, seed), headlineSeeds)
				drl := replicateBests(get, table3Spec(s, spec.Name, part, "FedDRL", n, seed), headlineSeeds)
				ma, md := mathx.Mean(avg), mathx.Mean(drl)
				tab.AddRow(spec.Name, fmt.Sprintf("%d", n), part,
					metrics.MeanStd(ma, mathx.Std(avg)),
					metrics.MeanStd(md, mathx.Std(drl)),
					fmt.Sprintf("%+.2f", md-ma))
			}
		}
	}
	b.WriteString(tab.RenderString())
	b.WriteString("\n(positive delta = FedDRL better; the paper's shape is parity-to-positive\non CE/CN, with larger deltas at the larger client count)\n")
	return b.String()
}

// Headline runs the headline grid in-process.
func Headline(s Scale, seed uint64) string { return runNamed("headline", s, seed) }
