package experiments

import (
	"fmt"
	"strings"

	"feddrl/internal/mathx"
	"feddrl/internal/metrics"
)

// Headline tests the paper's core claim with seed averaging: under
// cluster skew (CE, CN) FedDRL's learned aggregation should match or
// beat FedAvg, with the gap widening at higher client counts (§4.2.1's
// reading of Table 3). Single-seed cells at reduced scale carry ±
// several points of noise; this runner repeats each cell over `seeds`
// runs and reports mean ± std, which is what EXPERIMENTS.md quotes.
func Headline(s Scale, seed uint64) string {
	const seeds = 3
	var b strings.Builder
	fmt.Fprintf(&b, "Headline claim (Table 3's CE/CN columns, mean of %d seeds): FedDRL vs FedAvg under cluster skew\n\n", seeds)
	tab := &metrics.Table{
		Headers: []string{"dataset", "N", "partition", "FedAvg", "FedDRL", "delta"},
	}
	for _, spec := range s.datasets() {
		for _, n := range []int{s.SmallN, s.LargeN} {
			for _, part := range []string{"CE", "CN"} {
				var avg, drl []float64
				for r := 0; r < seeds; r++ {
					cellSeed := seed + uint64(r)*1009
					avg = append(avg, runMethod(s, spec, part, "FedAvg", n, s.K, defaultDelta, cellSeed).Best())
					drl = append(drl, runMethod(s, spec, part, "FedDRL", n, s.K, defaultDelta, cellSeed).Best())
				}
				ma, md := mathx.Mean(avg), mathx.Mean(drl)
				tab.AddRow(spec.Name, fmt.Sprintf("%d", n), part,
					fmt.Sprintf("%.2f±%.2f", ma, mathx.Std(avg)),
					fmt.Sprintf("%.2f±%.2f", md, mathx.Std(drl)),
					fmt.Sprintf("%+.2f", md-ma))
			}
		}
	}
	b.WriteString(tab.RenderString())
	b.WriteString("\n(positive delta = FedDRL better; the paper's shape is parity-to-positive\non CE/CN, with larger deltas at the larger client count)\n")
	return b.String()
}
