package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"feddrl/internal/serialize"
)

// uniqueCells counts the distinct cells of a job list.
func uniqueCells(jobs []CellSpec) int {
	keys := map[string]bool{}
	for _, j := range jobs {
		keys[j.Key()] = true
	}
	return len(keys)
}

// cellFiles lists the cache record files in a directory.
func cellFiles(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "*"+cellFileExt))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	return paths
}

func TestCacheColdWarm(t *testing.T) {
	s := gridScale()
	dir := t.TempDir()
	cells := uniqueCells(Registry["figure8"].Jobs(s, 1))

	want, err := Run("figure8", s, 1)
	if err != nil {
		t.Fatal(err)
	}

	cold, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCached("figure8", s, 1, cold)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("cold cached output differs from uncached:\n%s\nvs\n%s", got, want)
	}
	if st := cold.Stats(); st.Hits != 0 || st.Misses != cells || st.Writes != cells || st.WriteErrs != 0 {
		t.Fatalf("cold stats %+v, want 0 hits / %d misses / %d writes", st, cells, cells)
	}
	files := cellFiles(t, dir)
	if len(files) != cells {
		t.Fatalf("cache holds %d records, want %d", len(files), cells)
	}
	// Records must be world-readable: cache dirs are advertised as
	// shareable across users (populate once, -cache-readonly elsewhere).
	info, err := os.Stat(files[0])
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o644 {
		t.Fatalf("record mode %v, want 0644", info.Mode().Perm())
	}

	warm, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err = RunCached("figure8", s, 1, warm)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("warm cached output differs from uncached")
	}
	if st := warm.Stats(); st.Hits != cells || st.Misses != 0 || st.Writes != 0 {
		t.Fatalf("warm stats %+v, want %d hits / 0 misses / 0 writes", st, cells)
	}
	if !strings.Contains(warm.Summary(), "0 misses") {
		t.Fatalf("warm summary %q does not report 0 misses", warm.Summary())
	}
}

// TestCacheDeleteOneRecomputesOne is the acceptance criterion: deleting
// exactly one record causes exactly one cell to recompute.
func TestCacheDeleteOneRecomputesOne(t *testing.T) {
	s := gridScale()
	dir := t.TempDir()
	cold, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunCached("figure8", s, 1, cold)
	if err != nil {
		t.Fatal(err)
	}
	files := cellFiles(t, dir)
	if len(files) < 2 {
		t.Fatalf("need at least 2 records, have %d", len(files))
	}
	if err := os.Remove(files[0]); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCached("figure8", s, 1, c)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("output changed after deleting one cache record")
	}
	if st := c.Stats(); st.Misses != 1 || st.Rejected != 0 || st.Hits != len(files)-1 || st.Writes != 1 {
		t.Fatalf("stats %+v, want exactly 1 miss / %d hits / 1 write", st, len(files)-1)
	}
	if got := len(cellFiles(t, dir)); got != len(files) {
		t.Fatalf("deleted record was not rewritten: %d files, want %d", got, len(files))
	}
}

// TestCacheCorruptionIsMiss is the satellite property: any corrupt,
// truncated, stale-schema or mismatched record reads as a miss — the
// run recomputes the cell, renders identical output and repairs the
// record — never as a failure or a wrong result.
func TestCacheCorruptionIsMiss(t *testing.T) {
	s := gridScale()
	dir := t.TempDir()
	cold, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunCached("figure8", s, 1, cold)
	if err != nil {
		t.Fatal(err)
	}
	cells := cold.Stats().Misses

	staleRecord := func() []byte {
		ck := serialize.NewCheckpoint()
		ck.Meta["kind"] = cellRecordKind
		ck.Meta["cache-schema"] = "0"
		data, err := ck.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	for name, corrupt := range map[string]func(path string){
		"truncate-half": func(path string) {
			data, _ := os.ReadFile(path)
			os.WriteFile(path, data[:len(data)/2], 0o644)
		},
		"truncate-3": func(path string) {
			data, _ := os.ReadFile(path)
			os.WriteFile(path, data[:3], 0o644)
		},
		"empty": func(path string) {
			os.WriteFile(path, nil, 0o644)
		},
		"garbage": func(path string) {
			os.WriteFile(path, []byte("not a checkpoint at all"), 0o644)
		},
		"flip-byte": func(path string) {
			data, _ := os.ReadFile(path)
			data[len(data)/2] ^= 0xff
			os.WriteFile(path, data, 0o644)
		},
		"flip-payload-byte": func(path string) {
			// Deep inside the last vector's float data: the framing
			// still decodes, only the payload checksum catches it.
			data, _ := os.ReadFile(path)
			data[len(data)-5] ^= 0x01
			os.WriteFile(path, data, 0o644)
		},
		"stale-schema": func(path string) {
			os.WriteFile(path, staleRecord(), 0o644)
		},
		"wrong-key": func(path string) {
			// A valid record for a different cell, dropped onto this
			// cell's address (e.g. a renamed file).
			files := cellFiles(t, filepath.Dir(path))
			other, _ := os.ReadFile(files[len(files)-1])
			os.WriteFile(path, other, 0o644)
		},
	} {
		t.Run(name, func(t *testing.T) {
			files := cellFiles(t, dir)
			corrupt(files[0])
			c, err := OpenCache(dir, false)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunCached("figure8", s, 1, c)
			if err != nil {
				t.Fatalf("corruption %s failed the run: %v", name, err)
			}
			if got != want {
				t.Fatalf("corruption %s changed the rendered output", name)
			}
			if st := c.Stats(); st.Misses != 1 || st.Rejected != 1 || st.Hits != cells-1 {
				t.Fatalf("corruption %s: stats %+v, want 1 rejected miss", name, st)
			}
			// The recompute must have repaired the record.
			repaired, err := OpenCache(dir, false)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := RunCached("figure8", s, 1, repaired); err != nil {
				t.Fatal(err)
			}
			if st := repaired.Stats(); st.Misses != 0 {
				t.Fatalf("corruption %s was not repaired: %+v", name, st)
			}
		})
	}
}

func TestCacheReadonly(t *testing.T) {
	s := gridScale()
	dir := t.TempDir()

	// A readonly cache over an empty directory: every cell misses,
	// nothing is written, the run still succeeds.
	ro, err := OpenCache(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunCached("figure8", s, 1, ro)
	if err != nil {
		t.Fatal(err)
	}
	if st := ro.Stats(); st.Writes != 0 || st.Hits != 0 || st.Misses == 0 {
		t.Fatalf("readonly stats %+v, want misses only", st)
	}
	if files := cellFiles(t, dir); len(files) != 0 {
		t.Fatalf("readonly cache wrote %d records", len(files))
	}

	// Populate, then serve readonly hits.
	rw, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCached("figure8", s, 1, rw); err != nil {
		t.Fatal(err)
	}
	ro2, err := OpenCache(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCached("figure8", s, 1, ro2)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("readonly warm output differs")
	}
	if st := ro2.Stats(); st.Misses != 0 || st.Writes != 0 || st.Hits == 0 {
		t.Fatalf("readonly warm stats %+v, want hits only", st)
	}
}

func TestOpenCacheValidation(t *testing.T) {
	if _, err := OpenCache("", false); err == nil {
		t.Fatal("empty cache dir accepted")
	}
	if _, err := OpenCache(filepath.Join(t.TempDir(), "missing"), true); err == nil {
		t.Fatal("readonly cache over a missing directory accepted")
	}
	file := filepath.Join(t.TempDir(), "a-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenCache(file, true); err == nil {
		t.Fatal("readonly cache over a plain file accepted")
	}
	// Nil cache is a valid no-op handle.
	var nilCache *Cache
	if _, ok := nilCache.load(gridScale(), CellSpec{}); ok {
		t.Fatal("nil cache reported a hit")
	}
	nilCache.store(gridScale(), CellSpec{}, &CellArtifact{})
	if st := nilCache.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil cache stats %+v", st)
	}
}

// TestCacheKeySensitivity pins the content address to the fields that
// matter: it must change with the spec and with every hashed scale
// field, and must NOT change with the excluded fields (otherwise a
// -workers override would needlessly empty the cache).
func TestCacheKeySensitivity(t *testing.T) {
	s := gridScale()
	spec := table3Spec(s, s.datasets()[2].Name, "CE", "FedAvg", s.SmallN, 1)
	base := cellAddress(s, spec)

	other := spec
	other.Seed++
	if cellAddress(s, other) == base {
		t.Fatal("address ignores the cell seed")
	}

	attacked := spec
	attacked.Attack, attacked.AttackFrac, attacked.Merger = "signflip", 0.2, "median"
	if cellAddress(s, attacked) == base {
		t.Fatal("address ignores the cell's attack fields")
	}

	mutate := map[string]func(*Scale){
		"Rounds":    func(s *Scale) { s.Rounds++ },
		"DataScale": func(s *Scale) { s.DataScale *= 2 },
		"SmallN":    func(s *Scale) { s.SmallN++ },
		"Epochs":    func(s *Scale) { s.Epochs++ },
		"Batch":     func(s *Scale) { s.Batch++ },
		"LR":        func(s *Scale) { s.LR *= 2 },
		"ProxMu":    func(s *Scale) { s.ProxMu += 0.1 },
		"EvalEvery": func(s *Scale) { s.EvalEvery++ },
		"ConvNets":  func(s *Scale) { s.UseConvNets = !s.UseConvNets },
		"DRLHidden": func(s *Scale) { s.DRLHidden++ },
		// f32 and f64 cells compute different numbers and must never
		// share a cache record.
		"Precision": func(s *Scale) { s.Precision = "f32" },
		// The scale-wide Byzantine knobs are conditionally hashed: any
		// non-zero value must move the address (attacked cells never
		// alias benign records)...
		"Attack":     func(s *Scale) { s.Attack = "signflip"; s.AttackFrac = 0.2 },
		"AttackFrac": func(s *Scale) { s.AttackFrac = 0.2 },
		"Merger":     func(s *Scale) { s.Merger = "median" },
	}
	for name, mut := range mutate {
		changed := s
		mut(&changed)
		if cellAddress(changed, spec) == base {
			t.Fatalf("address ignores scale field %s", name)
		}
	}

	same := map[string]func(*Scale){
		"Name":     func(s *Scale) { s.Name = "renamed" },
		"Workers":  func(s *Scale) { s.Workers = 7 },
		"Parallel": func(s *Scale) { s.Parallel = true },
		"LargeN":   func(s *Scale) { s.LargeN += 10 },
		"K":        func(s *Scale) { s.K++ },
		"KSweep":   func(s *Scale) { s.KSweep = append([]int{}, 99) },
		"Deltas":   func(s *Scale) { s.Deltas = []float64{0.9} },
	}
	for name, mut := range same {
		changed := s
		mut(&changed)
		if cellAddress(changed, spec) != base {
			t.Fatalf("address depends on excluded scale field %s", name)
		}
	}
}

// TestCacheKeyCoversScale guards cache-key completeness by reflection:
// every field of Scale must be classified as hashed or excluded. A new
// field fails this test until it is deliberately placed, so it cannot
// silently cause false cache hits.
func TestCacheKeyCoversScale(t *testing.T) {
	classified := map[string]bool{}
	for _, f := range hashedScaleFields {
		classified[f] = true
	}
	for _, f := range excludedScaleFields {
		if classified[f] {
			t.Fatalf("scale field %s is both hashed and excluded", f)
		}
		classified[f] = true
	}
	for _, f := range conditionallyHashedScaleFields {
		if classified[f] {
			t.Fatalf("scale field %s is both conditionally hashed and hashed/excluded", f)
		}
		classified[f] = true
	}
	typ := reflect.TypeOf(Scale{})
	if typ.NumField() != len(classified) {
		t.Fatalf("Scale has %d fields but %d are classified", typ.NumField(), len(classified))
	}
	for i := 0; i < typ.NumField(); i++ {
		if !classified[typ.Field(i).Name] {
			t.Fatalf("scale field %s is neither hashed nor excluded — classify it in cache.go", typ.Field(i).Name)
		}
	}
	// And hashing must actually consume every hashed field without
	// panicking on its kind.
	h := serialize.NewHasher()
	hashScale(h, CI())
}

// TestCacheShardResume is the kill-and-resume workflow: after one shard
// completes against a cache, a full run (or a rerun of the remaining
// shards) recomputes only the cells the cache does not hold.
func TestCacheShardResume(t *testing.T) {
	s := gridScale()
	dir := t.TempDir()

	want, err := Run("figure8", s, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, jobs, err := jobsFor("figure8", s, 1, 1)
	if err != nil {
		t.Fatal(err)
	}

	c1, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	shard1, err := RunShardCached("figure8", s, 1, 1, 1, 2, c1)
	if err != nil {
		t.Fatal(err)
	}
	// MissingCells names exactly the cells a resumed run still owes.
	missing := shard1.MissingCells(jobs)
	if len(missing) == 0 || len(missing) != uniqueCells(jobs)-shard1.Len() {
		t.Fatalf("MissingCells reports %d of %d cells missing after shard 1 (%d done)",
			len(missing), uniqueCells(jobs), shard1.Len())
	}

	c2, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCached("figure8", s, 1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("resumed run output differs")
	}
	if st := c2.Stats(); st.Misses != len(missing) || st.Hits != shard1.Len() {
		t.Fatalf("resume stats %+v, want %d misses (the missing cells) and %d hits", st, len(missing), shard1.Len())
	}
}

// TestCacheConcurrentFanOutSmoke exercises concurrent cache
// publication: cells computed across pool lanes each publish their
// record as soon as they finish (the kill-and-resume guarantee), so
// stores run concurrently. The race-detector build in the verify gate
// is the real assertion; here we require a correct warm reload.
func TestCacheConcurrentFanOutSmoke(t *testing.T) {
	s := gridScale()
	s.Workers = 4
	dir := t.TempDir()
	cold, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunCached("table3", s, 2, cold)
	if err != nil {
		t.Fatal(err)
	}
	if st := cold.Stats(); st.Writes != st.Misses || st.WriteErrs != 0 {
		t.Fatalf("cold concurrent stats %+v, want every miss written", st)
	}
	warm, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCached("table3", s, 2, warm)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("warm reload differs from concurrent cold run")
	}
	if st := warm.Stats(); st.Misses != 0 {
		t.Fatalf("warm stats %+v after concurrent cold run, want 0 misses", st)
	}
}

// TestRunCachedMonolithic: monolithic experiments don't decompose into
// cells; a cache is accepted and ignored.
func TestRunCachedMonolithic(t *testing.T) {
	c, err := OpenCache(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run("table2", microScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCached("table2", microScale(), 1, c)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("cached monolithic run differs")
	}
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("monolithic run touched the cache: %+v", st)
	}
}
