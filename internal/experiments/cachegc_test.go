package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"feddrl/internal/serialize"
)

// populateCache runs a small grid against a fresh cache directory and
// returns the cache handle plus the record count.
func populateCache(t *testing.T) (*Cache, string, int) {
	t.Helper()
	s := gridScale()
	dir := t.TempDir()
	c, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCached("figure8", s, 1, c); err != nil {
		t.Fatal(err)
	}
	return c, dir, len(cellFiles(t, dir))
}

// TestCacheGCKeepsValidRecords checks the no-op case: a healthy cache
// under budget loses nothing, and a warm rerun still hits every cell.
func TestCacheGCKeepsValidRecords(t *testing.T) {
	c, dir, n := populateCache(t)
	st, err := c.GC(0) // prune-only
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != n || st.Pruned != 0 || st.Evicted != 0 || st.Temps != 0 {
		t.Fatalf("GC of a healthy cache reported %+v, want %d kept and nothing removed", st, n)
	}
	if got := len(cellFiles(t, dir)); got != n {
		t.Fatalf("GC removed files from a healthy cache: %d left of %d", got, n)
	}
	warm, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCached("figure8", gridScale(), 1, warm); err != nil {
		t.Fatal(err)
	}
	if wst := warm.Stats(); wst.Misses != 0 {
		t.Fatalf("warm rerun after GC missed %d cells", wst.Misses)
	}
}

// TestCacheGCPrunesInvalidRecords plants a corrupt record, a
// stale-schema record, a junk file with the record extension and an
// old temp file; GC must remove exactly those and keep the rest.
func TestCacheGCPrunesInvalidRecords(t *testing.T) {
	c, dir, n := populateCache(t)
	files := cellFiles(t, dir)

	// Corrupt one real record in place (truncation).
	if err := os.Truncate(files[0], 10); err != nil {
		t.Fatal(err)
	}
	// A well-formed checkpoint of the wrong kind / no schema.
	junk := filepath.Join(dir, strings.Repeat("a", 16)+cellFileExt)
	ck := serialize.NewCheckpoint()
	ck.Meta["kind"] = "not-a-cell"
	if err := ck.SaveFile(junk); err != nil {
		t.Fatal(err)
	}
	// An abandoned temp file, older than the GC age guard.
	temp := filepath.Join(dir, ".cell-abandoned")
	if err := os.WriteFile(temp, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-2 * tempMaxAge)
	if err := os.Chtimes(temp, old, old); err != nil {
		t.Fatal(err)
	}
	// A fresh temp file must survive (a live writer may own it).
	fresh := filepath.Join(dir, ".cell-inflight")
	if err := os.WriteFile(fresh, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := c.GC(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pruned != 2 || st.Temps != 1 || st.Evicted != 0 {
		t.Fatalf("GC reported %+v, want 2 pruned, 1 temp, 0 evicted", st)
	}
	if st.Kept != n-1 {
		t.Fatalf("GC kept %d records, want %d", st.Kept, n-1)
	}
	for _, gone := range []string{files[0], junk, temp} {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Fatalf("GC left %s behind", gone)
		}
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("GC removed a fresh temp file: %v", err)
	}
}

// TestCacheGCEvictsByMtimeToBudget sets a byte budget below the cache
// size and checks that eviction removes oldest-mtime records first and
// stops as soon as the directory fits.
func TestCacheGCEvictsByMtimeToBudget(t *testing.T) {
	c, dir, n := populateCache(t)
	files := cellFiles(t, dir)
	if n < 3 {
		t.Fatalf("grid produced only %d records; test needs >= 3", n)
	}
	// Age the first two records so eviction order is deterministic.
	for i, p := range files[:2] {
		old := time.Now().Add(-time.Duration(48-i) * time.Hour)
		if err := os.Chtimes(p, old, old); err != nil {
			t.Fatal(err)
		}
	}
	var total int64
	sizes := map[string]int64{}
	for _, p := range files {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		sizes[p] = info.Size()
		total += info.Size()
	}
	// Budget that forces out exactly the two aged records.
	budget := total - sizes[files[0]] - sizes[files[1]]
	st, err := c.GC(budget)
	if err != nil {
		t.Fatal(err)
	}
	if st.Evicted != 2 || st.Kept != n-2 {
		t.Fatalf("GC reported %+v, want 2 evicted / %d kept under budget %d", st, n-2, budget)
	}
	if st.KeptBytes > budget {
		t.Fatalf("GC kept %d bytes, over the %d budget", st.KeptBytes, budget)
	}
	for _, gone := range files[:2] {
		if _, err := os.Stat(gone); !os.IsNotExist(err) {
			t.Fatalf("oldest record %s survived eviction", gone)
		}
	}
	// Evicted cells are ordinary misses: a rerun recomputes only them
	// and the output is unchanged.
	want, err := Run("figure8", gridScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rerun, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCached("figure8", gridScale(), 1, rerun)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("post-GC rerun output differs from uncached run")
	}
	if rst := rerun.Stats(); rst.Misses != 2 || rst.Hits != n-2 {
		t.Fatalf("post-GC rerun stats %+v, want exactly the 2 evicted cells recomputed", rst)
	}
}

// TestCacheGCReadonlyRefused pins the readonly guard.
func TestCacheGCReadonlyRefused(t *testing.T) {
	_, dir, _ := populateCache(t)
	ro, err := OpenCache(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ro.GC(0); err == nil {
		t.Fatal("GC of a readonly cache did not error")
	}
	var nilCache *Cache
	if _, err := nilCache.GC(0); err == nil {
		t.Fatal("GC of a nil cache did not error")
	}
}
