package experiments

import (
	"fmt"
	"strings"

	"feddrl/internal/metrics"
)

// Table4 reproduces the label-size-imbalance study of §5.1: top-1
// accuracy on the 100-class dataset under the FedAvg-style Equal and
// Non-equal shard partitions, for SmallN and LargeN clients.
func Table4(s Scale, seed uint64) string {
	spec := s.datasets()[0] // cifar100-sim
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: top-1 accuracy (%%) with label-size-imbalance shards, %s\n\n", spec.Name)
	for _, n := range []int{s.SmallN, s.LargeN} {
		tab := &metrics.Table{
			Title:   fmt.Sprintf("%d clients", n),
			Headers: []string{"method", "Equal", "Non-equal"},
		}
		vals := map[string]map[string]float64{}
		for _, part := range []string{"Equal", "Non-equal"} {
			vals[part] = map[string]float64{}
			for _, m := range Methods {
				r := runMethod(s, spec, part, m, n, s.K, defaultDelta, seed+uint64(n))
				vals[part][m] = r.Best()
			}
		}
		for _, m := range Methods {
			tab.AddRow(m, metrics.F(vals["Equal"][m]), metrics.F(vals["Non-equal"][m]))
		}
		b.WriteString(tab.RenderString())
		b.WriteByte('\n')
	}
	return b.String()
}
