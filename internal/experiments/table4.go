package experiments

import (
	"fmt"
	"strings"

	"feddrl/internal/metrics"
)

// table4Partitions are the §5.1 label-size-imbalance shard partitions.
var table4Partitions = []string{"Equal", "Non-equal"}

// table4Spec builds one Table 4 cell (seed offset by N, preserving the
// historical seeding).
func table4Spec(s Scale, part, method string, n int, seed uint64) CellSpec {
	ds := s.datasets()[0] // cifar100-sim
	return CellSpec{Dataset: ds.Name, Partition: part, Method: method, N: n, K: s.K, Delta: defaultDelta, Seed: seed + uint64(n)}
}

// table4Jobs enumerates the Table 4 grid: {SmallN, LargeN} ×
// {Equal, Non-equal} × four methods on the 100-class dataset.
func table4Jobs(s Scale, seed uint64) []CellSpec {
	var jobs []CellSpec
	for _, n := range []int{s.SmallN, s.LargeN} {
		for _, part := range table4Partitions {
			for _, m := range Methods {
				jobs = append(jobs, table4Spec(s, part, m, n, seed))
			}
		}
	}
	return jobs
}

// renderTable4 reproduces the label-size-imbalance study of §5.1: top-1
// accuracy on the 100-class dataset under the FedAvg-style Equal and
// Non-equal shard partitions, for SmallN and LargeN clients.
func renderTable4(s Scale, seed uint64, get ArtifactGetter) string {
	spec := s.datasets()[0] // cifar100-sim
	var b strings.Builder
	fmt.Fprintf(&b, "Table 4: top-1 accuracy (%%) with label-size-imbalance shards, %s\n\n", spec.Name)
	for _, n := range []int{s.SmallN, s.LargeN} {
		tab := &metrics.Table{
			Title:   fmt.Sprintf("%d clients", n),
			Headers: []string{"method", "Equal", "Non-equal"},
		}
		vals := map[string]map[string]float64{}
		for _, part := range table4Partitions {
			vals[part] = map[string]float64{}
			for _, m := range Methods {
				vals[part][m] = get(table4Spec(s, part, m, n, seed)).Best()
			}
		}
		for _, m := range Methods {
			tab.AddRow(m, metrics.F(vals["Equal"][m]), metrics.F(vals["Non-equal"][m]))
		}
		b.WriteString(tab.RenderString())
		b.WriteByte('\n')
	}
	return b.String()
}

// Table4 runs the Table 4 grid in-process.
func Table4(s Scale, seed uint64) string { return runNamed("table4", s, seed) }
