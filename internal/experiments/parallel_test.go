package experiments

import (
	"strings"
	"testing"
)

// gridScale is a miniature scale for the fan-out determinism checks:
// every cell finishes in tens of milliseconds but the full method ×
// partition × size grid is still exercised.
func gridScale() Scale {
	s := CI()
	s.DataScale = 0.06
	s.Rounds = 2
	s.SmallN = 4
	s.LargeN = 6
	s.K = 3
	s.Epochs = 1
	s.KSweep = []int{2, 3}
	s.Deltas = []float64{0.3, 0.6}
	s.DRLWarmup = 2
	s.DRLUpdates = 1
	return s
}

// TestGridOutputIdenticalAcrossWorkers is the experiments-level
// determinism gate: the concurrently executed Table 3 / Fig. 7 / Fig. 8
// grids must render byte-identical output at any engine width, because
// every cell derives all randomness from its own seed.
func TestGridOutputIdenticalAcrossWorkers(t *testing.T) {
	for _, id := range []string{"table3", "figure7", "figure8"} {
		id := id
		t.Run(id, func(t *testing.T) {
			seq := gridScale()
			seq.Workers = 1
			want, err := Run(id, seq, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 3} {
				par := gridScale()
				par.Workers = workers
				got, err := Run(id, par, 1)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("workers=%d output differs from sequential:\n--- sequential ---\n%s\n--- workers=%d ---\n%s",
						workers, want, workers, got)
				}
			}
		})
	}
}

// TestConcurrentFanOutSmoke is the short-mode race smoke for the
// experiment grid runner: many independent cells on a small pool, with
// nested engine use inside every cell. The race detector build is the
// real assertion; here we only require completion and sane output.
func TestConcurrentFanOutSmoke(t *testing.T) {
	s := gridScale()
	s.Workers = 4
	out, err := Run("table3", s, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FedDRL") || !strings.Contains(out, "impr.(a)") {
		t.Fatalf("fan-out output missing expected rows:\n%s", out)
	}
}

// TestLegacyParallelScale keeps the deprecated Scale.Parallel flag
// working through the engine path.
func TestLegacyParallelScale(t *testing.T) {
	s := gridScale()
	want, err := Run("figure7", s, 3)
	if err != nil {
		t.Fatal(err)
	}
	s.Parallel = true
	got, err := Run("figure7", s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("Scale.Parallel output differs from sequential")
	}
}
