package experiments

import (
	"strings"
	"testing"
)

// microScale is an even smaller configuration than CI for unit tests.
func microScale() Scale {
	s := CI()
	s.Name = "micro"
	s.DataScale = 0.06
	s.Rounds = 4
	s.SmallN = 6
	s.LargeN = 8
	s.K = 4
	s.Epochs = 1
	s.KSweep = []int{2, 4}
	s.Deltas = []float64{0.3, 0.6}
	return s
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"ci", "medium", "paper"} {
		s, err := ScaleByName(name)
		if err != nil || s.Name != name {
			t.Fatalf("ScaleByName(%q) = %+v, %v", name, s, err)
		}
	}
	if _, err := ScaleByName("bogus"); err == nil {
		t.Fatal("unknown scale did not error")
	}
}

func TestScalesAreConsistent(t *testing.T) {
	for _, s := range []Scale{CI(), Medium(), Paper()} {
		if s.Rounds <= 0 || s.SmallN <= 0 || s.LargeN < s.SmallN || s.K <= 0 {
			t.Fatalf("scale %q inconsistent: %+v", s.Name, s)
		}
		if len(s.KSweep) == 0 || len(s.Deltas) == 0 {
			t.Fatalf("scale %q missing sweeps", s.Name)
		}
		if len(s.datasets()) != 3 {
			t.Fatalf("scale %q dataset count", s.Name)
		}
	}
}

func TestLabelsPerClient(t *testing.T) {
	s := CI()
	ds := s.datasets()
	if labelsPerClient(ds[0]) != 20 { // cifar100-sim
		t.Fatal("100-class dataset should use 20 labels/client")
	}
	if labelsPerClient(ds[2]) != 2 { // mnist-sim
		t.Fatal("10-class dataset should use 2 labels/client")
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table2", "table3", "table4",
		"figure4", "figure5", "figure6", "figure7", "figure8", "figure9", "figure10",
		"ablation-reward", "ablation-statenorm", "ablation-twostage",
		"ablation-prior", "comm-overhead", "headline", "async-sync",
		"byzantine",
	}
	for _, n := range want {
		if _, ok := Registry[n]; !ok {
			t.Fatalf("experiment %q missing from registry", n)
		}
	}
	if len(Names()) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(Names()), len(want))
	}
	if _, err := Run("nope", microScale(), 1); err == nil {
		t.Fatal("unknown experiment did not error")
	}
}

func TestTable2Output(t *testing.T) {
	out := Table2(microScale(), 1)
	for _, want := range []string{"PA", "CE", "CN", "ClusterSkew"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table2 missing %q:\n%s", want, out)
		}
	}
	// CE row must flag cluster skew.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "CE") && !strings.Contains(line, "yes") {
			t.Fatalf("CE row does not flag cluster skew: %s", line)
		}
	}
}

func TestFigure4Output(t *testing.T) {
	out := Figure4(microScale(), 1)
	if strings.Count(out, "partition,") != 3 {
		t.Fatalf("Figure4 should render 3 partitions:\n%s", out)
	}
}

func TestTable3Micro(t *testing.T) {
	s := microScale()
	res := RunTable3(s, 3)
	// 3 datasets × 2 sizes × 3 partitions cells.
	if len(res.Cells) != 18 {
		t.Fatalf("Table3 cells = %d, want 18", len(res.Cells))
	}
	for _, c := range res.Cells {
		for _, m := range Methods {
			acc := c.Best[m]
			if acc < 0 || acc > 100 {
				t.Fatalf("cell %s/%s/%d method %s acc %v out of range", c.Dataset, c.Partition, c.N, m, acc)
			}
		}
	}
	out := res.Render()
	for _, want := range []string{"cifar100-sim", "fashion-sim", "mnist-sim", "impr.(a)", "impr.(b)", "FedDRL"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table3 render missing %q", want)
		}
	}
}

func TestFigure5Micro(t *testing.T) {
	out := Figure5(microScale(), 5)
	if !strings.Contains(out, "fashion-sim / CE") || !strings.Contains(out, "round") {
		t.Fatalf("Figure5 output malformed:\n%s", out)
	}
	if strings.Contains(out, "mnist-sim") {
		t.Fatal("Figure5 should omit mnist-sim like the paper")
	}
}

func TestFigure6Micro(t *testing.T) {
	out := Figure6(microScale(), 7)
	if !strings.Contains(out, "normalized to FedDRL") {
		t.Fatalf("Figure6 header missing:\n%s", out)
	}
	// FedDRL's own normalized row must be 1.00 everywhere.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "FedDRL") {
			for _, cell := range strings.Fields(line)[1:] {
				if cell != "1.00" {
					t.Fatalf("FedDRL normalized cell %q != 1.00", cell)
				}
			}
		}
	}
}

func TestFigure7And8Micro(t *testing.T) {
	s := microScale()
	out7 := Figure7(s, 9)
	if !strings.Contains(out7, "K") || !strings.Contains(out7, "FedDRL") {
		t.Fatalf("Figure7 malformed:\n%s", out7)
	}
	if got := strings.Count(out7, "\n"); got < 4 {
		t.Fatalf("Figure7 too short:\n%s", out7)
	}
	out8 := Figure8(s, 11)
	if !strings.Contains(out8, "delta") || !strings.Contains(out8, "0.6") {
		t.Fatalf("Figure8 malformed:\n%s", out8)
	}
}

func TestFigure9Micro(t *testing.T) {
	out := Figure9(microScale(), 13)
	if !strings.Contains(out, "SimpleCNN") || !strings.Contains(out, "VGGMini") {
		t.Fatalf("Figure9 missing models:\n%s", out)
	}
	if !strings.Contains(out, "DRL decision") || !strings.Contains(out, "aggregation") {
		t.Fatalf("Figure9 missing columns:\n%s", out)
	}
}

func TestFigure10Micro(t *testing.T) {
	out := Figure10(microScale(), 15)
	if !strings.Contains(out, "target") || !strings.Contains(out, "mnist-sim") {
		t.Fatalf("Figure10 malformed:\n%s", out)
	}
}

func TestTable4Micro(t *testing.T) {
	out := Table4(microScale(), 17)
	if !strings.Contains(out, "Equal") || !strings.Contains(out, "Non-equal") {
		t.Fatalf("Table4 malformed:\n%s", out)
	}
	if !strings.Contains(out, "SingleSet") {
		t.Fatal("Table4 missing SingleSet reference")
	}
}

func TestAblationsMicro(t *testing.T) {
	s := microScale()
	for name, fn := range map[string]Runner{
		"reward":    AblationRewardGap,
		"statenorm": AblationStateNorm,
	} {
		out := fn(s, 19)
		if !strings.Contains(out, "Ablation") {
			t.Fatalf("%s ablation malformed:\n%s", name, out)
		}
	}
}

func TestAblationTwoStageMicro(t *testing.T) {
	if testing.Short() {
		t.Skip("two-stage ablation is the slowest experiment")
	}
	out := AblationTwoStage(microScale(), 21)
	if !strings.Contains(out, "two-stage pre-trained") || !strings.Contains(out, "cold start") {
		t.Fatalf("two-stage ablation malformed:\n%s", out)
	}
}

func TestFLEnvContract(t *testing.T) {
	s := microScale()
	spec := s.datasets()[2] // mnist-sim
	drlCfg := s.drlConfig(4, 23)
	env := newFLEnv(s, spec, drlCfg, 23, 2)
	st := env.Reset()
	if len(st) != drlCfg.StateDim() {
		t.Fatalf("env state dim %d, want %d", len(st), drlCfg.StateDim())
	}
	action := make([]float64, drlCfg.ActionDim())
	st2, r, done := env.Step(action)
	if len(st2) != drlCfg.StateDim() {
		t.Fatal("env next-state dim wrong")
	}
	if r >= 0 {
		t.Fatalf("Eq. 7 reward should be negative for positive losses, got %v", r)
	}
	if done {
		t.Fatal("episode ended after one of two rounds")
	}
	_, _, done = env.Step(action)
	if !done {
		t.Fatal("episode did not end after the configured rounds")
	}
}

func TestArtifactStoreHits(t *testing.T) {
	s := microScale()
	st := newStore(s)
	defer st.close()
	ds := s.datasets()[2]
	ce := table3Spec(s, ds.Name, "CE", "FedAvg", s.SmallN, 25)
	r1 := st.get(ce)
	r2 := st.get(ce)
	if r1 != r2 {
		t.Fatal("store did not reuse the run")
	}
	cn := table3Spec(s, ds.Name, "CN", "FedAvg", s.SmallN, 25)
	if st.get(cn) == r1 {
		t.Fatal("store conflated distinct cells")
	}
}

func TestDsByName(t *testing.T) {
	s := microScale()
	if _, err := dsByName(s, "fashion"); err != nil {
		t.Fatal(err)
	}
	if _, err := dsByName(s, "imagenet"); err == nil {
		t.Fatal("unknown dataset did not error")
	}
}
