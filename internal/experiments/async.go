package experiments

import (
	"fmt"
	"strings"

	"feddrl/internal/fl"
	"feddrl/internal/metrics"
)

// The async-vs-sync experiment: the same federated cells run under the
// synchronous barrier, under the degenerate asynchronous trace (which
// must reproduce the synchronous numbers exactly — the determinism
// contract rendered as data), and under a seeded straggler trace with
// staleness-weighted merging. Variants are encoded in the cell's Method
// string ("FedAvg+stale"), so the grid/shard/cache machinery amortizes
// them like any other cell with no artifact-schema change.

// Async method-variant suffixes (after the '+' in a cell Method).
const (
	// asyncModeDegenerate runs RunAsync under InstantArrivals with
	// staleness decay 1 — bit-identical to RunVirtual by contract.
	asyncModeDegenerate = "async"
	// asyncModeStale runs a seeded straggler trace with staleness decay.
	asyncModeStale = "stale"
)

// asyncVariant splits a cell method id like "FedAvg+stale" into the base
// aggregation method and the async mode ("" for synchronous cells).
func asyncVariant(method string) (base, mode string) {
	if i := strings.IndexByte(method, '+'); i >= 0 {
		return method[:i], method[i+1:]
	}
	return method, ""
}

// asyncStaleTrace is the fixed straggler trace of the "+stale" cells:
// half the identities are 8× stragglers with exponential jitter on top
// of a base latency, and no updates are dropped — so every dispatched
// update eventually arrives and FedDRL's fixed-K impact computation
// stays applicable. Derived per cell seed for reproducibility.
func asyncStaleTrace(seed uint64) fl.TraceArrivals {
	return fl.TraceArrivals{
		Seed:            seed + 5,
		BaseDelay:       0.5,
		Jitter:          0.3,
		StragglerFrac:   0.5,
		StragglerFactor: 8,
	}
}

// asyncStaleDecay is the "+stale" cells' per-round staleness decay.
const asyncStaleDecay = 0.5

// asyncThreshold is the "+stale" cells' aggregation cohort size: a
// sub-K threshold makes updates genuinely straddle server versions, but
// at least 2 so tiny CI scales still merge more than one update. With a
// drop-free trace every aggregation folds exactly this many updates —
// which is also why the FedDRL agent of a "+stale" cell must be sized
// to the threshold, not K.
func asyncThreshold(k int) int { return max(2, k/2) }

// asyncConfigFor maps an async mode to its engine configuration.
func asyncConfigFor(mode string, cfg fl.RunConfig, k int, seed uint64) fl.AsyncConfig {
	acfg := fl.AsyncConfig{RunConfig: cfg}
	switch mode {
	case asyncModeDegenerate:
		// Zero values: InstantArrivals, decay 1, threshold K.
	case asyncModeStale:
		acfg.Arrival = asyncStaleTrace(seed)
		acfg.StalenessDecay = asyncStaleDecay
		acfg.AggregateEvery = asyncThreshold(k)
	default:
		panic(fmt.Sprintf("experiments: unknown async mode %q", mode))
	}
	return acfg
}

// asyncMethods are the async-sync grid's method columns: each federated
// baseline, its degenerate async twin, and the stale-trace variant.
var asyncMethods = []string{
	"FedAvg", "FedAvg+async", "FedAvg+stale",
	"FedDRL", "FedDRL+async", "FedDRL+stale",
}

// asyncDataset picks the grid's dataset (one is enough — the experiment
// contrasts substrates, not datasets).
func asyncDataset(s Scale) string { return s.datasets()[0].Name }

// asyncSyncJobs enumerates the async-sync cells: every method variant on
// the CE partition at SmallN clients.
func asyncSyncJobs(s Scale, seed uint64) []CellSpec {
	var jobs []CellSpec
	for _, m := range asyncMethods {
		jobs = append(jobs, table3Spec(s, asyncDataset(s), "CE", m, s.SmallN, seed))
	}
	return jobs
}

// renderAsyncSync formats the async-vs-sync comparison. The "+async"
// rows are the determinism contract made visible: they must match their
// synchronous base rows digit for digit.
func renderAsyncSync(s Scale, seed uint64, get ArtifactGetter) string {
	ds := asyncDataset(s)
	var b strings.Builder
	fmt.Fprintf(&b, "Async vs sync rounds: %s / CE, %d clients\n\n", ds, s.SmallN)
	tab := &metrics.Table{
		Title:   "staleness-weighted asynchronous aggregation",
		Headers: []string{"method", "best acc", "final acc"},
	}
	for _, m := range asyncMethods {
		a := get(table3Spec(s, ds, "CE", m, s.SmallN, seed))
		tab.AddRow(m, metrics.F(a.Best()), metrics.F(a.Final()))
	}
	b.WriteString(tab.RenderString())
	b.WriteString("\n(+async is the degenerate trace — zero latency, no dropout, staleness\n" +
		"weight 1 — and reproduces the synchronous row exactly; +stale adds a\n" +
		fmt.Sprintf("seeded straggler trace with staleness decay %.2g and a sub-K\n", asyncStaleDecay) +
		"aggregation threshold, so stale updates are merged at reduced weight)\n")
	return b.String()
}

// AsyncSync runs the async-vs-sync grid in-process (Registry-compatible
// wrapper).
func AsyncSync(s Scale, seed uint64) string { return runNamed("async-sync", s, seed) }
