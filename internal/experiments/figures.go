package experiments

import (
	"fmt"
	"strings"

	"feddrl/internal/dataset"
	"feddrl/internal/mathx"
	"feddrl/internal/metrics"
)

// fedMethods are the three federated methods (SingleSet excluded).
var fedMethods = []string{"FedAvg", "FedProx", "FedDRL"}

// figure5Jobs enumerates the Fig. 5 timeline cells: each non-MNIST
// dataset × partition × federated method at SmallN clients.
func figure5Jobs(s Scale, seed uint64) []CellSpec {
	var jobs []CellSpec
	for _, spec := range s.datasets() {
		if spec.Name == "mnist-sim" {
			continue
		}
		for _, part := range PartitionNames {
			for _, m := range fedMethods {
				jobs = append(jobs, table3Spec(s, spec.Name, part, m, s.SmallN, seed))
			}
		}
	}
	return jobs
}

// renderFigure5 reproduces the accuracy-vs-round timelines: for each
// dataset × partition (SmallN clients), the test accuracy of each method
// per evaluated round. The fashion-sim series are 10-round smoothed, as
// in the paper's plot.
func renderFigure5(s Scale, seed uint64, get ArtifactGetter) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: top-1 test accuracy (%%) vs communication round, %d clients\n\n", s.SmallN)
	for _, spec := range s.datasets() {
		if spec.Name == "mnist-sim" {
			continue // the paper omits MNIST from Fig. 5 for space
		}
		for _, part := range PartitionNames {
			tab := &metrics.Table{
				Title:   fmt.Sprintf("%s / %s", spec.Name, part),
				Headers: []string{"round", "FedAvg", "FedProx", "FedDRL"},
			}
			series := map[string]metrics.Series{}
			for _, m := range fedMethods {
				acc := get(table3Spec(s, spec.Name, part, m, s.SmallN, seed)).Accuracy
				if strings.HasPrefix(spec.Name, "fashion") {
					acc = acc.Smoothed(10)
				}
				series[m] = acc
			}
			ref := get(table3Spec(s, spec.Name, part, "FedAvg", s.SmallN, seed))
			for i, round := range ref.AccRounds {
				tab.AddRow(fmt.Sprintf("%d", round),
					metrics.F(series["FedAvg"][i]),
					metrics.F(series["FedProx"][i]),
					metrics.F(series["FedDRL"][i]))
			}
			b.WriteString(tab.RenderString())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Figure5 runs the Fig. 5 grid in-process (Registry-compatible wrapper).
func Figure5(s Scale, seed uint64) string { return runNamed("figure5", s, seed) }

// figure6Jobs enumerates the Fig. 6 robustness cells: the 100-class
// dataset × partition × federated method at SmallN clients.
func figure6Jobs(s Scale, seed uint64) []CellSpec {
	spec := s.datasets()[0] // cifar100-sim
	var jobs []CellSpec
	for _, part := range PartitionNames {
		for _, m := range fedMethods {
			jobs = append(jobs, table3Spec(s, spec.Name, part, m, s.SmallN, seed))
		}
	}
	return jobs
}

// renderFigure6 reproduces the robustness study: the mean and variance
// of the per-client inference loss (tail-averaged), normalized to
// FedDRL, on the 100-class dataset with SmallN clients. Values above
// 1.00 mean the baseline is worse than FedDRL.
func renderFigure6(s Scale, seed uint64, get ArtifactGetter) string {
	spec := s.datasets()[0] // cifar100-sim
	tail := s.Rounds / 4
	if tail < 1 {
		tail = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: client inference loss normalized to FedDRL (tail %d rounds), %s, %d clients\n\n",
		tail, spec.Name, s.SmallN)
	tabMean := &metrics.Table{
		Title:   "average inference loss (normalized; >1 = worse than FedDRL)",
		Headers: append([]string{"method"}, PartitionNames...),
	}
	tabVar := &metrics.Table{
		Title:   "variance of inference loss (normalized; >1 = worse than FedDRL)",
		Headers: append([]string{"method"}, PartitionNames...),
	}
	means := map[string]map[string]float64{}
	vars := map[string]map[string]float64{}
	for _, part := range PartitionNames {
		means[part] = map[string]float64{}
		vars[part] = map[string]float64{}
		for _, m := range fedMethods {
			a := get(table3Spec(s, spec.Name, part, m, s.SmallN, seed))
			means[part][m] = a.LossMean.Tail(tail)
			vars[part][m] = a.LossVar.Tail(tail)
		}
	}
	for _, m := range fedMethods {
		rowM := []string{m}
		rowV := []string{m}
		for _, part := range PartitionNames {
			refM, refV := means[part]["FedDRL"], vars[part]["FedDRL"]
			rowM = append(rowM, ratioStr(means[part][m], refM))
			rowV = append(rowV, ratioStr(vars[part][m], refV))
		}
		tabMean.AddRow(rowM...)
		tabVar.AddRow(rowV...)
	}
	b.WriteString(tabMean.RenderString())
	b.WriteByte('\n')
	b.WriteString(tabVar.RenderString())
	return b.String()
}

// Figure6 runs the Fig. 6 grid in-process.
func Figure6(s Scale, seed uint64) string { return runNamed("figure6", s, seed) }

func ratioStr(v, ref float64) string {
	if ref == 0 {
		if v == 0 {
			return "1.00"
		}
		return "inf"
	}
	return metrics.F(v / ref)
}

// figure7Spec builds one cell of the participation sweep (K varies; the
// cell seed is offset by K, preserving the historical seeding).
func figure7Spec(s Scale, k int, method string, seed uint64) CellSpec {
	ds := s.datasets()[0] // cifar100-sim
	return CellSpec{Dataset: ds.Name, Partition: "CE", Method: method, N: s.LargeN, K: k, Delta: defaultDelta, Seed: seed + uint64(k)}
}

// figure7Jobs enumerates the Fig. 7 sweep: KSweep × federated methods.
func figure7Jobs(s Scale, seed uint64) []CellSpec {
	var jobs []CellSpec
	for _, k := range s.KSweep {
		for _, m := range fedMethods {
			jobs = append(jobs, figure7Spec(s, k, m, seed))
		}
	}
	return jobs
}

// renderFigure7 reproduces the participation sweep: accuracy on the
// 100-class dataset (LargeN clients, CE partition) as the number of
// participating clients K varies.
func renderFigure7(s Scale, seed uint64, get ArtifactGetter) string {
	spec := s.datasets()[0] // cifar100-sim
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: accuracy vs participating clients K (%s, CE, N=%d)\n\n", spec.Name, s.LargeN)
	tab := &metrics.Table{
		Headers: append([]string{"K"}, fedMethods...),
	}
	for _, k := range s.KSweep {
		row := []string{fmt.Sprintf("%d", k)}
		for _, m := range fedMethods {
			row = append(row, metrics.F(get(figure7Spec(s, k, m, seed)).Best()))
		}
		tab.AddRow(row...)
	}
	b.WriteString(tab.RenderString())
	return b.String()
}

// renderFigure7Seeds is the seed-replicated Fig. 7: mean±std cells.
func renderFigure7Seeds(s Scale, seed uint64, seeds int, get ArtifactGetter) string {
	spec := s.datasets()[0]
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: accuracy vs participating clients K (%s, CE, N=%d), mean±std of %d seeds\n\n", spec.Name, s.LargeN, seeds)
	tab := &metrics.Table{
		Headers: append([]string{"K"}, fedMethods...),
	}
	for _, k := range s.KSweep {
		row := []string{fmt.Sprintf("%d", k)}
		for _, m := range fedMethods {
			vals := replicateBests(get, figure7Spec(s, k, m, seed), seeds)
			row = append(row, metrics.MeanStd(mathx.Mean(vals), mathx.Std(vals)))
		}
		tab.AddRow(row...)
	}
	b.WriteString(tab.RenderString())
	return b.String()
}

// Figure7 runs the Fig. 7 sweep in-process.
func Figure7(s Scale, seed uint64) string { return runNamed("figure7", s, seed) }

// figure8Spec builds one cell of the non-IID sweep (delta varies; the
// cell seed is offset by delta*100, preserving the historical seeding).
func figure8Spec(s Scale, delta float64, method string, seed uint64) CellSpec {
	ds := s.datasets()[1] // fashion-sim
	return CellSpec{Dataset: ds.Name, Partition: "CE", Method: method, N: s.LargeN, K: s.K, Delta: delta, Seed: seed + uint64(delta*100)}
}

// figure8Jobs enumerates the Fig. 8 sweep: Deltas × federated methods.
func figure8Jobs(s Scale, seed uint64) []CellSpec {
	var jobs []CellSpec
	for _, delta := range s.Deltas {
		for _, m := range fedMethods {
			jobs = append(jobs, figure8Spec(s, delta, m, seed))
		}
	}
	return jobs
}

// renderFigure8 reproduces the non-IID-level sweep: accuracy on
// fashion-sim (LargeN clients, CE partition) as the main-group share δ
// varies.
func renderFigure8(s Scale, seed uint64, get ArtifactGetter) string {
	spec := s.datasets()[1] // fashion-sim
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: accuracy vs non-IID level delta (%s, CE, N=%d)\n\n", spec.Name, s.LargeN)
	tab := &metrics.Table{
		Headers: append([]string{"delta"}, fedMethods...),
	}
	for _, delta := range s.Deltas {
		row := []string{fmt.Sprintf("%.1f", delta)}
		for _, m := range fedMethods {
			row = append(row, metrics.F(get(figure8Spec(s, delta, m, seed)).Best()))
		}
		tab.AddRow(row...)
	}
	b.WriteString(tab.RenderString())
	return b.String()
}

// renderFigure8Seeds is the seed-replicated Fig. 8: mean±std cells.
func renderFigure8Seeds(s Scale, seed uint64, seeds int, get ArtifactGetter) string {
	spec := s.datasets()[1]
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: accuracy vs non-IID level delta (%s, CE, N=%d), mean±std of %d seeds\n\n", spec.Name, s.LargeN, seeds)
	tab := &metrics.Table{
		Headers: append([]string{"delta"}, fedMethods...),
	}
	for _, delta := range s.Deltas {
		row := []string{fmt.Sprintf("%.1f", delta)}
		for _, m := range fedMethods {
			vals := replicateBests(get, figure8Spec(s, delta, m, seed), seeds)
			row = append(row, metrics.MeanStd(mathx.Mean(vals), mathx.Std(vals)))
		}
		tab.AddRow(row...)
	}
	b.WriteString(tab.RenderString())
	return b.String()
}

// Figure8 runs the Fig. 8 sweep in-process.
func Figure8(s Scale, seed uint64) string { return runNamed("figure8", s, seed) }

// figure10Jobs enumerates the Fig. 10 convergence cells: every dataset ×
// partition × federated method at SmallN clients.
func figure10Jobs(s Scale, seed uint64) []CellSpec {
	var jobs []CellSpec
	for _, spec := range s.datasets() {
		for _, part := range PartitionNames {
			for _, m := range fedMethods {
				jobs = append(jobs, table3Spec(s, spec.Name, part, m, s.SmallN, seed))
			}
		}
	}
	return jobs
}

// renderFigure10 reproduces the convergence study: communication rounds
// needed by each method to reach the target accuracy (the minimum best
// accuracy across methods, as in §5.2), per dataset × partition at
// SmallN clients.
func renderFigure10(s Scale, seed uint64, get ArtifactGetter) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: rounds to reach target accuracy (target = min of methods' best), %d clients\n\n", s.SmallN)
	tab := &metrics.Table{
		Headers: []string{"dataset", "partition", "target", "FedAvg", "FedProx", "FedDRL"},
	}
	for _, spec := range s.datasets() {
		for _, part := range PartitionNames {
			arts := map[string]*CellArtifact{}
			target := -1.0
			for _, m := range fedMethods {
				a := get(table3Spec(s, spec.Name, part, m, s.SmallN, seed))
				arts[m] = a
				if target < 0 || a.Best() < target {
					target = a.Best()
				}
			}
			row := []string{spec.Name, part, metrics.F(target)}
			for _, m := range fedMethods {
				// Translate eval index to communication round.
				idx := arts[m].Accuracy.RoundsToTarget(target)
				if idx < 0 {
					row = append(row, "n/a")
				} else {
					row = append(row, fmt.Sprintf("%d", arts[m].AccRounds[idx-1]+1))
				}
			}
			tab.AddRow(row...)
		}
	}
	b.WriteString(tab.RenderString())
	return b.String()
}

// Figure10 runs the Fig. 10 grid in-process.
func Figure10(s Scale, seed uint64) string { return runNamed("figure10", s, seed) }

// dsByName finds a scaled dataset spec by prefix (helper for tools).
func dsByName(s Scale, name string) (dataset.Spec, error) {
	for _, spec := range s.datasets() {
		if strings.HasPrefix(spec.Name, name) {
			return spec, nil
		}
	}
	return dataset.Spec{}, fmt.Errorf("experiments: unknown dataset %q", name)
}
