package experiments

import (
	"fmt"
	"strings"

	"feddrl/internal/dataset"
	"feddrl/internal/engine"
	"feddrl/internal/fl"
	"feddrl/internal/metrics"
)

// fedMethods are the three federated methods (SingleSet excluded).
var fedMethods = []string{"FedAvg", "FedProx", "FedDRL"}

// Figure5 reproduces the accuracy-vs-round timelines: for each dataset ×
// partition (SmallN clients), the test accuracy of each method per
// evaluated round. The fashion-sim series are 10-round smoothed, as in
// the paper's plot.
func Figure5(s Scale, seed uint64) string {
	cache := newCache(s, seed)
	defer cache.close()
	var jobs []cellJob
	for _, spec := range s.datasets() {
		if spec.Name == "mnist-sim" {
			continue
		}
		for _, part := range PartitionNames {
			for _, m := range fedMethods {
				jobs = append(jobs, cellJob{spec: spec, part: part, method: m, n: s.SmallN, k: s.K, delta: defaultDelta})
			}
		}
	}
	cache.prefetch(jobs)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5: top-1 test accuracy (%%) vs communication round, %d clients\n\n", s.SmallN)
	for _, spec := range s.datasets() {
		if spec.Name == "mnist-sim" {
			continue // the paper omits MNIST from Fig. 5 for space
		}
		for _, part := range PartitionNames {
			tab := &metrics.Table{
				Title:   fmt.Sprintf("%s / %s", spec.Name, part),
				Headers: []string{"round", "FedAvg", "FedProx", "FedDRL"},
			}
			results := map[string]*fl.Result{}
			for _, m := range fedMethods {
				results[m] = cache.get(spec, part, m, s.SmallN, s.K, defaultDelta)
			}
			series := map[string]metrics.Series{}
			for m, r := range results {
				acc := r.Accuracy
				if strings.HasPrefix(spec.Name, "fashion") {
					acc = acc.Smoothed(10)
				}
				series[m] = acc
			}
			ref := results["FedAvg"]
			for i, round := range ref.AccRounds {
				tab.AddRow(fmt.Sprintf("%d", round),
					metrics.F(series["FedAvg"][i]),
					metrics.F(series["FedProx"][i]),
					metrics.F(series["FedDRL"][i]))
			}
			b.WriteString(tab.RenderString())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Figure6 reproduces the robustness study: the mean and variance of the
// per-client inference loss (tail-averaged), normalized to FedDRL, on the
// 100-class dataset with SmallN clients. Values above 1.00 mean the
// baseline is worse than FedDRL.
func Figure6(s Scale, seed uint64) string {
	cache := newCache(s, seed)
	defer cache.close()
	spec := s.datasets()[0] // cifar100-sim
	var jobs []cellJob
	for _, part := range PartitionNames {
		for _, m := range fedMethods {
			jobs = append(jobs, cellJob{spec: spec, part: part, method: m, n: s.SmallN, k: s.K, delta: defaultDelta})
		}
	}
	cache.prefetch(jobs)
	tail := s.Rounds / 4
	if tail < 1 {
		tail = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6: client inference loss normalized to FedDRL (tail %d rounds), %s, %d clients\n\n",
		tail, spec.Name, s.SmallN)
	tabMean := &metrics.Table{
		Title:   "average inference loss (normalized; >1 = worse than FedDRL)",
		Headers: append([]string{"method"}, PartitionNames...),
	}
	tabVar := &metrics.Table{
		Title:   "variance of inference loss (normalized; >1 = worse than FedDRL)",
		Headers: append([]string{"method"}, PartitionNames...),
	}
	means := map[string]map[string]float64{}
	vars := map[string]map[string]float64{}
	for _, part := range PartitionNames {
		means[part] = map[string]float64{}
		vars[part] = map[string]float64{}
		for _, m := range fedMethods {
			r := cache.get(spec, part, m, s.SmallN, s.K, defaultDelta)
			means[part][m] = r.ClientLossMeans().Tail(tail)
			vars[part][m] = r.ClientLossVars().Tail(tail)
		}
	}
	for _, m := range fedMethods {
		rowM := []string{m}
		rowV := []string{m}
		for _, part := range PartitionNames {
			refM, refV := means[part]["FedDRL"], vars[part]["FedDRL"]
			rowM = append(rowM, ratioStr(means[part][m], refM))
			rowV = append(rowV, ratioStr(vars[part][m], refV))
		}
		tabMean.AddRow(rowM...)
		tabVar.AddRow(rowV...)
	}
	b.WriteString(tabMean.RenderString())
	b.WriteByte('\n')
	b.WriteString(tabVar.RenderString())
	return b.String()
}

func ratioStr(v, ref float64) string {
	if ref == 0 {
		if v == 0 {
			return "1.00"
		}
		return "inf"
	}
	return metrics.F(v / ref)
}

// Figure7 reproduces the participation sweep: accuracy on the 100-class
// dataset (LargeN clients, CE partition) as the number of participating
// clients K varies.
func Figure7(s Scale, seed uint64) string {
	spec := s.datasets()[0] // cifar100-sim
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7: accuracy vs participating clients K (%s, CE, N=%d)\n\n", spec.Name, s.LargeN)
	tab := &metrics.Table{
		Headers: append([]string{"K"}, fedMethods...),
	}
	// The sweep's (K × method) cells are independent: fan them out on
	// the pool, then render rows in sweep order.
	results := sweepGrid(s, len(s.KSweep), func(i, j int, pool *engine.Pool) *fl.Result {
		k := s.KSweep[i]
		return runMethodOn(s, spec, "CE", fedMethods[j], s.LargeN, k, defaultDelta, seed+uint64(k), pool)
	})
	for i, k := range s.KSweep {
		row := []string{fmt.Sprintf("%d", k)}
		for j := range fedMethods {
			row = append(row, metrics.F(results[i][j].Best()))
		}
		tab.AddRow(row...)
	}
	b.WriteString(tab.RenderString())
	return b.String()
}

// Figure8 reproduces the non-IID-level sweep: accuracy on fashion-sim
// (LargeN clients, CE partition) as the main-group share δ varies.
func Figure8(s Scale, seed uint64) string {
	spec := s.datasets()[1] // fashion-sim
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 8: accuracy vs non-IID level delta (%s, CE, N=%d)\n\n", spec.Name, s.LargeN)
	tab := &metrics.Table{
		Headers: append([]string{"delta"}, fedMethods...),
	}
	results := sweepGrid(s, len(s.Deltas), func(i, j int, pool *engine.Pool) *fl.Result {
		delta := s.Deltas[i]
		return runMethodOn(s, spec, "CE", fedMethods[j], s.LargeN, s.K, delta, seed+uint64(delta*100), pool)
	})
	for i, delta := range s.Deltas {
		row := []string{fmt.Sprintf("%.1f", delta)}
		for j := range fedMethods {
			row = append(row, metrics.F(results[i][j].Best()))
		}
		tab.AddRow(row...)
	}
	b.WriteString(tab.RenderString())
	return b.String()
}

// sweepGrid runs a rows × len(fedMethods) grid of independent cells on
// the scale's pool and returns the results indexed [row][method]. Cell
// (i, j) is computed by run exactly once; ordering never leaks into the
// results because each cell derives all randomness from its own seed.
func sweepGrid(s Scale, rows int, run func(i, j int, pool *engine.Pool) *fl.Result) [][]*fl.Result {
	pool := s.newPool()
	defer pool.Close()
	results := make([][]*fl.Result, rows)
	for i := range results {
		results[i] = make([]*fl.Result, len(fedMethods))
	}
	pool.For(rows*len(fedMethods), func(idx int) {
		i, j := idx/len(fedMethods), idx%len(fedMethods)
		results[i][j] = run(i, j, pool)
	})
	return results
}

// Figure10 reproduces the convergence study: communication rounds needed
// by each method to reach the target accuracy (the minimum best accuracy
// across methods, as in §5.2), per dataset × partition at SmallN clients.
func Figure10(s Scale, seed uint64) string {
	cache := newCache(s, seed)
	defer cache.close()
	var jobs []cellJob
	for _, spec := range s.datasets() {
		for _, part := range PartitionNames {
			for _, m := range fedMethods {
				jobs = append(jobs, cellJob{spec: spec, part: part, method: m, n: s.SmallN, k: s.K, delta: defaultDelta})
			}
		}
	}
	cache.prefetch(jobs)
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: rounds to reach target accuracy (target = min of methods' best), %d clients\n\n", s.SmallN)
	tab := &metrics.Table{
		Headers: []string{"dataset", "partition", "target", "FedAvg", "FedProx", "FedDRL"},
	}
	for _, spec := range s.datasets() {
		for _, part := range PartitionNames {
			results := map[string]*fl.Result{}
			target := -1.0
			for _, m := range fedMethods {
				r := cache.get(spec, part, m, s.SmallN, s.K, defaultDelta)
				results[m] = r
				if target < 0 || r.Best() < target {
					target = r.Best()
				}
			}
			row := []string{spec.Name, part, metrics.F(target)}
			for _, m := range fedMethods {
				// Translate eval index to communication round.
				idx := results[m].Accuracy.RoundsToTarget(target)
				if idx < 0 {
					row = append(row, "n/a")
				} else {
					row = append(row, fmt.Sprintf("%d", results[m].AccRounds[idx-1]+1))
				}
			}
			tab.AddRow(row...)
		}
	}
	b.WriteString(tab.RenderString())
	return b.String()
}

// dsByName finds a scaled dataset spec by prefix (helper for tools).
func dsByName(s Scale, name string) (dataset.Spec, error) {
	for _, spec := range s.datasets() {
		if strings.HasPrefix(spec.Name, name) {
			return spec, nil
		}
	}
	return dataset.Spec{}, fmt.Errorf("experiments: unknown dataset %q", name)
}
