package experiments

import (
	"strings"
	"testing"
)

// TestByzantineGrid renders the attack × merger grid at a miniature
// scale and checks its shape: one row per attack setting, one accuracy
// column per merge rule, and the benign baseline present.
func TestByzantineGrid(t *testing.T) {
	out, err := Run("byzantine", gridScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Byzantine robustness",
		"none", "signflip 20%", "signflip 40%", "gauss 20%", "replace 20%", "labelflip 20%",
		"weighted", "median", "trimmed", "krum",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("byzantine output missing %q:\n%s", want, out)
		}
	}
	if jobs := byzantineJobs(gridScale(), 1); len(jobs) != len(byzantineAttacks)*len(byzantineMergers) {
		t.Fatalf("byzantine grid has %d jobs, want %d", len(jobs), len(byzantineAttacks)*len(byzantineMergers))
	}
	for _, spec := range byzantineJobs(gridScale(), 1) {
		if spec.benign() {
			t.Fatalf("byzantine cell %+v spells no attack or merger", spec)
		}
		if _, err := ParseCellKey(spec.Key()); err != nil {
			t.Fatalf("byzantine cell key %q does not parse: %v", spec.Key(), err)
		}
	}
}

// TestScaleAttackAppliesToCells: the scale-level Byzantine knobs (the
// -attack/-merger CLI path) must reach cells whose specs leave their
// own attack fields zero — table3 output changes — while cell-level
// fields win over the scale's.
func TestScaleAttackAppliesToCells(t *testing.T) {
	s := gridScale()
	benign, err := Run("figure5", s, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.Attack, s.AttackFrac, s.Merger = "signflip", 0.4, ""
	attacked, err := Run("figure5", s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if benign == attacked {
		t.Fatal("a scale-wide 40% sign-flip left figure5 unchanged")
	}
}

// TestBenignOutputsUnchangedByRefactor is the merge-seam compatibility
// gate: routing every benign cell through the Merger seam (and the
// quarantine gate) must leave a grid experiment's output untouched.
// Three faces of the same contract: a cold cached run and a warm rerun
// against the same directory render byte-identical text with zero warm
// misses (the cache addresses written under the zero-value Byzantine
// knobs stay valid), an explicit "weighted" merge rule renders the same
// bytes as the zero value, and the uncached zero-value run reproduces
// itself.
func TestBenignOutputsUnchangedByRefactor(t *testing.T) {
	s := gridScale()
	dir := t.TempDir()
	cache, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunCached("figure6", s, 1, cache)
	if err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Writes == 0 {
		t.Fatalf("cold run wrote no cells: %+v", st)
	}

	warm, err := OpenCache(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCached("figure6", s, 1, warm)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatal("warm cached figure6 differs from the cold run")
	}
	if st := warm.Stats(); st.Misses != 0 || st.Hits == 0 {
		t.Fatalf("warm run missed the cache: %+v", st)
	}

	// The explicit default merge rule renders the same bytes as the
	// zero value (its cells hash to distinct addresses — the Scale knob
	// is conditionally hashed — so no cache is attached here).
	sw := s
	sw.Merger = "weighted"
	explicit, err := Run("figure6", sw, 1)
	if err != nil {
		t.Fatal(err)
	}
	if explicit != want {
		t.Fatal("explicit weighted merger changed figure6's rendered bytes")
	}

	// And an uncached re-run under the zero value still matches (cold
	// path equality, not just cache equality).
	again, err := Run("figure6", s, 1)
	if err != nil {
		t.Fatal(err)
	}
	if again != want {
		t.Fatal("figure6 is not reproducible under the zero-value config")
	}
}
