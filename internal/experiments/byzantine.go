package experiments

import (
	"fmt"
	"strings"

	"feddrl/internal/metrics"
)

// The byzantine experiment: FedAvg cells under seeded Byzantine fault
// injection (attack type × malicious fraction), merged by each robust
// merge rule. The grid renders the robustness story the paper's Fig. 6
// only gestures at — plain weighted averaging collapses under a 20%
// sign-flip cohort while coordinate-wise median, trimmed mean and Krum
// hold — and, like every other grid, decomposes into CellSpec jobs, so
// cells shard and cache like any benign cell (their 10-field keys keep
// them address-disjoint from the legacy 7-field population).

// byzantineAttack is one attack row of the grid.
type byzantineAttack struct {
	Name string
	Frac float64
}

// byzantineAttacks are the grid's rows: the benign baseline, sign-flip
// at two fractions, and one representative of each remaining attack
// family at 20%.
var byzantineAttacks = []byzantineAttack{
	{"none", 0},
	{"signflip", 0.2},
	{"signflip", 0.4},
	{"gauss", 0.2},
	{"replace", 0.2},
	{"labelflip", 0.2},
}

// byzantineMergers are the grid's merge-rule columns.
var byzantineMergers = []string{"weighted", "median", "trimmed", "krum"}

// byzantineDataset picks the grid's dataset: the fastest-converging one
// at every scale (mnist-sim), so the benign baseline is well above the
// random floor within the scale's round budget and an attack has
// headroom to destroy — cifar100-sim never leaves the floor at ci or
// medium rounds, which would flatten every column into noise.
func byzantineDataset(s Scale) string {
	ds := s.datasets()
	return ds[len(ds)-1].Name
}

// byzantineSpec builds one byzantine cell: mnist-sim on the Equal
// shard partition at LargeN clients, FedAvg as the aggregator under
// test. Equal keeps the robust mergers' benign baselines healthy — on
// the extreme 2-label CE partition a coordinate median across
// disjoint-label clients is already poor with no attacker at all.
// LargeN matters: membership is a per-identity Bernoulli trait (the
// N-independent contract that lets attacks scale to virtual pools), so
// at 10 clients the realized malicious count is noisy — a 20% row can
// draw zero attackers on an unlucky seed — while at LargeN the count
// concentrates near the nominal fraction for any seed.
func byzantineSpec(s Scale, att byzantineAttack, merger string, seed uint64) CellSpec {
	spec := table3Spec(s, byzantineDataset(s), "Equal", "FedAvg", s.LargeN, seed)
	// Full participation: with K-of-N sampling the per-cohort malicious
	// count is hypergeometric noise on top of the trait draw, and a trim
	// or tolerance sized for the nominal fraction loses to the variance
	// in one cohort out of five. K = N pins every round's realized
	// fraction to the identity draw, so each merge rule faces exactly
	// the contamination level its row declares.
	spec.K = spec.N
	spec.Attack = att.Name
	spec.AttackFrac = att.Frac
	spec.Merger = merger
	return spec
}

// byzantineJobs enumerates the attack × merger grid.
func byzantineJobs(s Scale, seed uint64) []CellSpec {
	var jobs []CellSpec
	for _, att := range byzantineAttacks {
		for _, m := range byzantineMergers {
			jobs = append(jobs, byzantineSpec(s, att, m, seed))
		}
	}
	return jobs
}

// renderByzantine formats the attack × merger grid as best-accuracy
// cells.
func renderByzantine(s Scale, seed uint64, get ArtifactGetter) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Byzantine robustness: FedAvg on %s / Equal, %d clients\n\n", byzantineDataset(s), s.LargeN)
	headers := append([]string{"attack"}, byzantineMergers...)
	tab := &metrics.Table{
		Title:   "best accuracy under attack × merge rule",
		Headers: headers,
	}
	for _, att := range byzantineAttacks {
		label := att.Name
		if att.Frac > 0 {
			label = fmt.Sprintf("%s %d%%", att.Name, int(att.Frac*100+0.5))
		}
		row := []string{label}
		for _, m := range byzantineMergers {
			a := get(byzantineSpec(s, att, m, seed))
			row = append(row, metrics.F(a.Best()))
		}
		tab.AddRow(row...)
	}
	b.WriteString(tab.RenderString())
	b.WriteString("\n(attacks are seeded and identity-stable: the listed fraction of client\n" +
		"identities corrupts its uploads — or, for labelflip, trains on flipped\n" +
		"labels — every round; \"weighted\" is the default impact-factor merge,\n" +
		"the robust columns merge by coordinate median, trimmed mean (trim\n" +
		"sized from the malicious fraction) and Krum selection over the same\n" +
		"cohorts)\n")
	return b.String()
}

// Byzantine runs the attack × merger grid in-process
// (Registry-compatible wrapper).
func Byzantine(s Scale, seed uint64) string { return runNamed("byzantine", s, seed) }
