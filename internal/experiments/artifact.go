package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"feddrl/internal/fl"
	"feddrl/internal/metrics"
	"feddrl/internal/serialize"
)

// The experiment layer's job model: every grid experiment (Table 3, the
// figure sweeps, Table 4, the headline claim) decomposes into
// serializable CellSpec jobs whose results are machine-readable
// CellArtifacts. Rendering is a pure function of artifacts, so a grid
// can be computed in one process, sharded across machines
// (tables -shard i/n) or replicated over seeds (-seeds m) and always
// re-rendered into the exact same text.

// CellSpec fully identifies one runnable experiment cell. Dataset is
// the spec name within the run's Scale ("cifar100-sim", "fashion-sim",
// "mnist-sim"); Seed is the absolute seed the cell runs with, so a spec
// is executable with no context beyond the Scale.
//
// Attack, AttackFrac and Merger configure Byzantine fault injection and
// the robust merge rule (the byzantine grid); all three zero means the
// benign cell with the default impact-factor merge.
type CellSpec struct {
	Dataset    string
	Partition  string
	Method     string
	N, K       int
	Delta      float64
	Seed       uint64
	Attack     string
	AttackFrac float64
	Merger     string
}

// benign reports whether the spec carries no attack/merger fields, i.e.
// whether its key uses the legacy 7-field form.
func (c CellSpec) benign() bool {
	return c.Attack == "" && c.AttackFrac == 0 && c.Merger == ""
}

// Key returns the canonical string form of the spec — the identity used
// for caching, artifact encoding and shard assignment. ParseCellKey
// inverts it exactly (Delta and AttackFrac round-trip via strconv
// 'g'/-1). Benign specs emit the legacy 7-field key, byte-identical to
// the pre-byzantine format, so every existing cache record and shard
// file keeps its address; specs with any attack/merger field emit a
// 10-field key.
func (c CellSpec) Key() string {
	fields := []string{
		c.Dataset, c.Partition, c.Method,
		strconv.Itoa(c.N), strconv.Itoa(c.K),
		strconv.FormatFloat(c.Delta, 'g', -1, 64),
		strconv.FormatUint(c.Seed, 10),
	}
	if !c.benign() {
		fields = append(fields,
			c.Attack,
			strconv.FormatFloat(c.AttackFrac, 'g', -1, 64),
			c.Merger,
		)
	}
	return strings.Join(fields, "|")
}

// ParseCellKey inverts CellSpec.Key: 7 fields for a benign spec, 10 for
// one with attack/merger fields. A 10-field key whose three extra
// fields are all zero is rejected as non-canonical (its spec would
// re-encode to 7 fields), keeping Key∘ParseCellKey the identity.
func ParseCellKey(key string) (CellSpec, error) {
	parts := strings.Split(key, "|")
	if len(parts) != 7 && len(parts) != 10 {
		return CellSpec{}, fmt.Errorf("experiments: cell key %q has %d fields, want 7 or 10", key, len(parts))
	}
	n, err := strconv.Atoi(parts[3])
	if err != nil {
		return CellSpec{}, fmt.Errorf("experiments: cell key %q: N: %w", key, err)
	}
	k, err := strconv.Atoi(parts[4])
	if err != nil {
		return CellSpec{}, fmt.Errorf("experiments: cell key %q: K: %w", key, err)
	}
	delta, err := strconv.ParseFloat(parts[5], 64)
	if err != nil {
		return CellSpec{}, fmt.Errorf("experiments: cell key %q: delta: %w", key, err)
	}
	seed, err := strconv.ParseUint(parts[6], 10, 64)
	if err != nil {
		return CellSpec{}, fmt.Errorf("experiments: cell key %q: seed: %w", key, err)
	}
	spec := CellSpec{
		Dataset: parts[0], Partition: parts[1], Method: parts[2],
		N: n, K: k, Delta: delta, Seed: seed,
	}
	if len(parts) == 10 {
		frac, err := strconv.ParseFloat(parts[8], 64)
		if err != nil {
			return CellSpec{}, fmt.Errorf("experiments: cell key %q: attack fraction: %w", key, err)
		}
		spec.Attack, spec.AttackFrac, spec.Merger = parts[7], frac, parts[9]
		if spec.benign() {
			return CellSpec{}, fmt.Errorf("experiments: cell key %q spells zero attack/merger fields long-form; the canonical key has 7 fields", key)
		}
	}
	return spec, nil
}

// CellArtifact is the machine-readable result of running one CellSpec:
// exactly the series the renderers consume, nothing else (in particular
// no model weights), so shard files stay small.
type CellArtifact struct {
	Spec CellSpec

	// Accuracy is the test accuracy (%) at every evaluated round,
	// aligned with AccRounds.
	Accuracy  metrics.Series
	AccRounds []int

	// LossMean and LossVar are the per-round client inference-loss
	// statistics (the Fig. 6 robustness signal).
	LossMean metrics.Series
	LossVar  metrics.Series
}

// Best returns the best test accuracy reached (Table 3's reporting rule).
func (a *CellArtifact) Best() float64 { return a.Accuracy.Best() }

// Final returns the last evaluated test accuracy.
func (a *CellArtifact) Final() float64 { return a.Accuracy.Final() }

// artifactOf extracts a cell artifact from a full run result.
func artifactOf(spec CellSpec, r *fl.Result) *CellArtifact {
	return &CellArtifact{
		Spec:      spec,
		Accuracy:  append(metrics.Series(nil), r.Accuracy...),
		AccRounds: append([]int(nil), r.AccRounds...),
		LossMean:  r.ClientLossMeans(),
		LossVar:   r.ClientLossVars(),
	}
}

// cellVectorNames are the per-cell series stored by every cell codec,
// in checksum order.
var cellVectorNames = []string{"acc", "rounds", "lossmean", "lossvar"}

// cellVectorsInto writes a cell's series under prefix into a checkpoint
// — the single payload codec shared by artifact-set files and cache
// records, so the two formats cannot drift apart field by field.
func cellVectorsInto(c *serialize.Checkpoint, prefix string, a *CellArtifact) {
	c.Vectors[prefix+"acc"] = a.Accuracy
	c.Vectors[prefix+"rounds"] = intsToFloats(a.AccRounds)
	c.Vectors[prefix+"lossmean"] = a.LossMean
	c.Vectors[prefix+"lossvar"] = a.LossVar
}

// cellFromVectors decodes a cell's series stored under prefix.
func cellFromVectors(c *serialize.Checkpoint, prefix string, spec CellSpec) (*CellArtifact, error) {
	for _, suffix := range cellVectorNames {
		if _, ok := c.Vectors[prefix+suffix]; !ok {
			return nil, fmt.Errorf("experiments: cell %s missing vector %q", spec.Key(), suffix)
		}
	}
	return &CellArtifact{
		Spec:      spec,
		Accuracy:  c.Vectors[prefix+"acc"],
		AccRounds: floatsToInts(c.Vectors[prefix+"rounds"]),
		LossMean:  c.Vectors[prefix+"lossmean"],
		LossVar:   c.Vectors[prefix+"lossvar"],
	}, nil
}

// cellPayloadSum content-hashes a cell's stored series in
// cellVectorNames order — the integrity checksum carried by cache
// records. It hashes the raw checkpoint vectors, not the decoded
// artifact, so any stored-payload bit rot is detected even where
// decoding would mask it (e.g. the float→int truncation of "rounds").
func cellPayloadSum(c *serialize.Checkpoint, prefix string) string {
	h := serialize.NewHasher()
	for _, suffix := range cellVectorNames {
		h.Floats(c.Vectors[prefix+suffix])
	}
	return h.Sum()
}

// ArtifactSet is a collection of cell artifacts from one experiment
// invocation — the whole grid, or one shard of it. The header fields
// pin everything a renderer needs to reconstruct the run: experiment
// id, scale name (plus the one CLI-overridable scale field, Rounds),
// base seed and seed-replicate count.
type ArtifactSet struct {
	Experiment string
	ScaleName  string
	Rounds     int
	Seed       uint64
	Seeds      int

	Cells map[string]*CellArtifact
	order []string
}

// NewArtifactSet returns an empty set for one experiment invocation.
func NewArtifactSet(experiment string, s Scale, seed uint64, seeds int) *ArtifactSet {
	if seeds < 1 {
		seeds = 1
	}
	return &ArtifactSet{
		Experiment: experiment,
		ScaleName:  s.Name,
		Rounds:     s.Rounds,
		Seed:       seed,
		Seeds:      seeds,
		Cells:      map[string]*CellArtifact{},
	}
}

// Add inserts an artifact; re-adding the same cell replaces it in place.
func (as *ArtifactSet) Add(a *CellArtifact) {
	key := a.Spec.Key()
	if _, ok := as.Cells[key]; !ok {
		as.order = append(as.order, key)
	}
	as.Cells[key] = a
}

// Get looks up the artifact for a spec.
func (as *ArtifactSet) Get(spec CellSpec) (*CellArtifact, bool) {
	a, ok := as.Cells[spec.Key()]
	return a, ok
}

// Len returns the number of cells in the set.
func (as *ArtifactSet) Len() int { return len(as.order) }

// Checkpoint encodes the set into the repository's binary checkpoint
// format. float64 payloads round-trip bit-exactly, which is what makes
// the shard→merge→render path byte-identical to an unsharded run.
func (as *ArtifactSet) Checkpoint() *serialize.Checkpoint {
	c := serialize.NewCheckpoint()
	c.Meta["kind"] = "experiment-artifacts"
	c.Meta["experiment"] = as.Experiment
	c.Meta["scale"] = as.ScaleName
	c.Meta["rounds"] = strconv.Itoa(as.Rounds)
	c.Meta["seed"] = strconv.FormatUint(as.Seed, 10)
	c.Meta["seeds"] = strconv.Itoa(as.Seeds)
	c.Meta["cells"] = strconv.Itoa(len(as.order))
	for i, key := range as.order {
		c.Meta[fmt.Sprintf("cell.%06d", i)] = key
		cellVectorsInto(c, fmt.Sprintf("c%06d.", i), as.Cells[key])
	}
	return c
}

// ArtifactSetFromCheckpoint decodes a set written by Checkpoint.
func ArtifactSetFromCheckpoint(c *serialize.Checkpoint) (*ArtifactSet, error) {
	if c.Meta["kind"] != "experiment-artifacts" {
		return nil, fmt.Errorf("experiments: checkpoint kind %q is not an artifact set", c.Meta["kind"])
	}
	rounds, err := strconv.Atoi(c.Meta["rounds"])
	if err != nil {
		return nil, fmt.Errorf("experiments: artifact rounds: %w", err)
	}
	seed, err := strconv.ParseUint(c.Meta["seed"], 10, 64)
	if err != nil {
		return nil, fmt.Errorf("experiments: artifact seed: %w", err)
	}
	seeds, err := strconv.Atoi(c.Meta["seeds"])
	if err != nil {
		return nil, fmt.Errorf("experiments: artifact seeds: %w", err)
	}
	count, err := strconv.Atoi(c.Meta["cells"])
	if err != nil {
		return nil, fmt.Errorf("experiments: artifact cell count: %w", err)
	}
	as := &ArtifactSet{
		Experiment: c.Meta["experiment"],
		ScaleName:  c.Meta["scale"],
		Rounds:     rounds,
		Seed:       seed,
		Seeds:      seeds,
		Cells:      map[string]*CellArtifact{},
	}
	for i := 0; i < count; i++ {
		key, ok := c.Meta[fmt.Sprintf("cell.%06d", i)]
		if !ok {
			return nil, fmt.Errorf("experiments: artifact cell %d missing from metadata", i)
		}
		spec, err := ParseCellKey(key)
		if err != nil {
			return nil, err
		}
		a, err := cellFromVectors(c, fmt.Sprintf("c%06d.", i), spec)
		if err != nil {
			return nil, err
		}
		as.Add(a)
	}
	return as, nil
}

// SaveFile writes the set to a shard artifact file.
func (as *ArtifactSet) SaveFile(path string) error {
	return as.Checkpoint().SaveFile(path)
}

// LoadArtifactSet reads a shard artifact file written by SaveFile.
func LoadArtifactSet(path string) (*ArtifactSet, error) {
	c, err := serialize.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return ArtifactSetFromCheckpoint(c)
}

// MissingCells returns the keys of specs absent from the set, sorted
// lexically — the merge-coverage check of RenderSet.
func (as *ArtifactSet) MissingCells(jobs []CellSpec) []string {
	var missing []string
	seen := map[string]bool{}
	for _, j := range jobs {
		key := j.Key()
		if _, ok := as.Cells[key]; !ok && !seen[key] {
			seen[key] = true
			missing = append(missing, key)
		}
	}
	sort.Strings(missing)
	return missing
}

func intsToFloats(v []int) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(x)
	}
	return out
}

func floatsToInts(v []float64) []int {
	out := make([]int, len(v))
	for i, x := range v {
		out[i] = int(x)
	}
	return out
}
