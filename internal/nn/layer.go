// Package nn is a from-scratch neural-network library: the substrate the
// FedDRL reproduction trains with, replacing the paper's PyTorch 1.8.1.
// It provides the layers needed for the paper's client models (the simple
// CNN for MNIST/Fashion-MNIST and a scaled VGG for CIFAR-100, §4.1.2) and
// for the DRL agent's policy and value networks (3 fully connected layers
// of 256 units with LeakyReLU, Table 1): dense and convolutional layers,
// pooling, activations, softmax cross-entropy and MSE losses, and SGD
// (with the FedProx proximal term) and Adam optimizers.
//
// Gradients are computed by hand-derived backpropagation; every layer's
// Backward is validated against central finite differences in the tests.
// Layers are stateful across a Forward/Backward pair (they cache
// activations) and are not safe for concurrent use; federated clients
// therefore each own their model instance.
package nn

import (
	"fmt"
	"math"

	"feddrl/internal/rng"
	"feddrl/internal/tensor"
)

// Layer is one differentiable stage of a Network. Forward consumes a
// (batch, features) activation and returns the next activation; Backward
// consumes dLoss/dOutput and returns dLoss/dInput, accumulating parameter
// gradients internally (retrieved via Grads, cleared via Network.ZeroGrads).
type Layer interface {
	// Forward computes the layer output. train reports whether the pass
	// is part of training (affects nothing today but keeps the door open
	// for dropout/batch-norm extensions).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward computes the input gradient from the output gradient and
	// accumulates parameter gradients.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's parameter tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns the gradient tensors, aligned with Params.
	Grads() []*tensor.Tensor
}

// Dense is a fully connected layer: y = x·W + b.
type Dense struct {
	In, Out int
	W, B    *tensor.Tensor
	dW, dB  *tensor.Tensor

	lastX *tensor.Tensor
}

// NewDense returns a Dense layer with He-normal initialized weights
// (suited to the ReLU-family activations used throughout the paper) and
// zero biases.
func NewDense(r *rng.RNG, in, out int) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: Dense with non-positive dims (%d,%d)", in, out))
	}
	d := &Dense{
		In: in, Out: out,
		W:  tensor.New(in, out),
		B:  tensor.New(1, out),
		dW: tensor.New(in, out),
		dB: tensor.New(1, out),
	}
	std := math.Sqrt(2.0 / float64(in))
	for i := range d.W.Data {
		d.W.Data[i] = r.Normal(0, std)
	}
	return d
}

// Forward computes y = x·W + b for a (batch, In) input.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return d.ForwardScratch(nil, 0, x, train)
}

// ForwardScratch is Forward writing into an arena slot.
func (d *Dense) ForwardScratch(sc *Scratch, id int, x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Cols() != d.In {
		panic(fmt.Sprintf("nn: Dense.Forward input width %d, want %d", x.Cols(), d.In))
	}
	d.lastX = x
	out := sc.tensor2D(id, 0, x.Rows(), d.Out)
	tensor.MatMulInto(out, x, d.W)
	for i := 0; i < out.Rows(); i++ {
		tensor.Add(d.B.Data, out.Row(i))
	}
	return out
}

// Backward accumulates dW = xᵀ·g, dB = Σ_batch g and returns dx = g·Wᵀ.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return d.BackwardScratch(nil, 0, grad)
}

// BackwardScratch is Backward with arena-backed temporaries.
func (d *Dense) BackwardScratch(sc *Scratch, id int, grad *tensor.Tensor) *tensor.Tensor {
	if d.lastX == nil {
		panic("nn: Dense.Backward before Forward")
	}
	if grad.Rows() != d.lastX.Rows() || grad.Cols() != d.Out {
		panic(fmt.Sprintf("nn: Dense.Backward grad shape %v", grad.Shape))
	}
	dW := sc.tensor2D(id, 1, d.In, d.Out)
	tensor.MatMulATInto(dW, d.lastX, grad)
	d.dW.AddInPlace(dW)
	for i := 0; i < grad.Rows(); i++ {
		tensor.Add(grad.Row(i), d.dB.Data)
	}
	dx := sc.tensor2D(id, 2, grad.Rows(), d.In)
	tensor.MatMulBTInto(dx, grad, d.W)
	return dx
}

// Params returns [W, B].
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads returns [dW, dB].
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dW, d.dB} }

// ReLU is the rectified linear activation. Like LeakyReLU it caches the
// forward input and re-derives the pass-through mask in Backward from
// the sign of x via the vectorized kernels (tensor.ReLUForward/
// ReLUBackward), instead of materializing a []bool mask.
type ReLU struct{ lastX *tensor.Tensor }

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward applies max(0, x) elementwise.
func (l *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return l.ForwardScratch(nil, 0, x, train)
}

// ForwardScratch is Forward writing into an arena slot.
func (l *ReLU) ForwardScratch(sc *Scratch, id int, x *tensor.Tensor, train bool) *tensor.Tensor {
	l.lastX = x
	out := sc.tensor2D(id, 0, x.Rows(), x.Cols())
	tensor.ReLUForward(x.Data, out.Data)
	return out
}

// Backward zeroes gradients where the input was non-positive.
func (l *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return l.BackwardScratch(nil, 0, grad)
}

// BackwardScratch is Backward writing into an arena slot.
func (l *ReLU) BackwardScratch(sc *Scratch, id int, grad *tensor.Tensor) *tensor.Tensor {
	if l.lastX == nil || len(l.lastX.Data) != len(grad.Data) {
		panic("nn: ReLU.Backward shape mismatch with Forward")
	}
	out := sc.tensor2D(id, 1, grad.Rows(), grad.Cols())
	tensor.ReLUBackward(l.lastX.Data, grad.Data, out.Data)
	return out
}

// Params returns no parameters.
func (l *ReLU) Params() []*tensor.Tensor { return nil }

// Grads returns no gradients.
func (l *ReLU) Grads() []*tensor.Tensor { return nil }

// LeakyReLU is the leaky rectified linear activation used by the paper's
// policy and value networks (Fig. 3c).
type LeakyReLU struct {
	Alpha float64
	lastX *tensor.Tensor
}

// NewLeakyReLU returns a LeakyReLU with the given negative slope. The
// conventional default (and the one used for the DRL networks) is 0.01.
func NewLeakyReLU(alpha float64) *LeakyReLU {
	if alpha < 0 || alpha >= 1 {
		panic(fmt.Sprintf("nn: LeakyReLU alpha %v out of [0,1)", alpha))
	}
	return &LeakyReLU{Alpha: alpha}
}

// Forward applies x>0 ? x : alpha*x elementwise.
func (l *LeakyReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return l.ForwardScratch(nil, 0, x, train)
}

// ForwardScratch is Forward writing into an arena slot.
func (l *LeakyReLU) ForwardScratch(sc *Scratch, id int, x *tensor.Tensor, train bool) *tensor.Tensor {
	l.lastX = x
	out := sc.tensor2D(id, 0, x.Rows(), x.Cols())
	tensor.LeakyReLUForward(l.Alpha, x.Data, out.Data)
	return out
}

// Backward scales gradients by alpha where the input was negative.
func (l *LeakyReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return l.BackwardScratch(nil, 0, grad)
}

// BackwardScratch is Backward writing into an arena slot.
func (l *LeakyReLU) BackwardScratch(sc *Scratch, id int, grad *tensor.Tensor) *tensor.Tensor {
	if l.lastX == nil || len(l.lastX.Data) != len(grad.Data) {
		panic("nn: LeakyReLU.Backward shape mismatch with Forward")
	}
	out := sc.tensor2D(id, 1, grad.Rows(), grad.Cols())
	tensor.LeakyReLUBackward(l.Alpha, l.lastX.Data, grad.Data, out.Data)
	return out
}

// Params returns no parameters.
func (l *LeakyReLU) Params() []*tensor.Tensor { return nil }

// Grads returns no gradients.
func (l *LeakyReLU) Grads() []*tensor.Tensor { return nil }

// Tanh is the hyperbolic tangent activation (used to bound the policy
// network's mean head).
type Tanh struct{ lastY *tensor.Tensor }

// NewTanh returns a Tanh activation layer.
func NewTanh() *Tanh { return &Tanh{} }

// Forward applies tanh elementwise.
func (l *Tanh) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return l.ForwardScratch(nil, 0, x, train)
}

// ForwardScratch is Forward writing into an arena slot.
func (l *Tanh) ForwardScratch(sc *Scratch, id int, x *tensor.Tensor, train bool) *tensor.Tensor {
	out := sc.tensor2D(id, 0, x.Rows(), x.Cols())
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	l.lastY = out
	return out
}

// Backward multiplies by 1 - tanh² of the input.
func (l *Tanh) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return l.BackwardScratch(nil, 0, grad)
}

// BackwardScratch is Backward writing into an arena slot.
func (l *Tanh) BackwardScratch(sc *Scratch, id int, grad *tensor.Tensor) *tensor.Tensor {
	if l.lastY == nil || len(l.lastY.Data) != len(grad.Data) {
		panic("nn: Tanh.Backward shape mismatch with Forward")
	}
	out := sc.tensor2D(id, 1, grad.Rows(), grad.Cols())
	for i, y := range l.lastY.Data {
		out.Data[i] = grad.Data[i] * (1 - y*y)
	}
	return out
}

// Params returns no parameters.
func (l *Tanh) Params() []*tensor.Tensor { return nil }

// Grads returns no gradients.
func (l *Tanh) Grads() []*tensor.Tensor { return nil }
