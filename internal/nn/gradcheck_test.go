package nn

import (
	"math"
	"testing"

	"feddrl/internal/rng"
	"feddrl/internal/tensor"
)

// lossOf runs a fresh forward pass and returns the scalar loss. Used by
// the central-difference checks below.
func ceLossOf(n *Network, x *tensor.Tensor, labels []int) float64 {
	loss := NewCrossEntropy()
	return loss.Forward(n.Forward(x, true), labels)
}

func mseLossOf(n *Network, x *tensor.Tensor, targets []float64) float64 {
	loss := NewMSE()
	return loss.Forward(n.Forward(x, true), targets)
}

// checkGrads compares the network's accumulated analytic gradients to a
// central finite difference of lossFn over every parameter.
func checkGrads(t *testing.T, n *Network, lossFn func() float64, tol float64) {
	t.Helper()
	const eps = 1e-5
	params := n.Params()
	grads := n.Grads()
	for pi, p := range params {
		for j := range p.Data {
			orig := p.Data[j]
			p.Data[j] = orig + eps
			up := lossFn()
			p.Data[j] = orig - eps
			down := lossFn()
			p.Data[j] = orig
			numeric := (up - down) / (2 * eps)
			analytic := grads[pi].Data[j]
			if math.Abs(numeric-analytic) > tol*(1+math.Abs(numeric)) {
				t.Fatalf("param %d elem %d: analytic %.8f vs numeric %.8f", pi, j, analytic, numeric)
			}
		}
	}
}

func randInput(r *rng.RNG, rows, cols int) *tensor.Tensor {
	x := tensor.New(rows, cols)
	for i := range x.Data {
		x.Data[i] = r.Normal(0, 1)
	}
	return x
}

func TestGradCheckDenseCE(t *testing.T) {
	r := rng.New(1)
	n := NewNetwork(NewDense(r, 4, 3))
	x := randInput(r, 5, 4)
	labels := []int{0, 1, 2, 1, 0}
	loss := NewCrossEntropy()
	loss.Forward(n.Forward(x, true), labels)
	n.ZeroGrads()
	n.Backward(loss.Backward())
	checkGrads(t, n, func() float64 { return ceLossOf(n, x, labels) }, 1e-5)
}

func TestGradCheckMLPReLU(t *testing.T) {
	r := rng.New(2)
	n := NewMLP(r, 5, []int{7, 6}, 3)
	x := randInput(r, 4, 5)
	labels := []int{2, 0, 1, 2}
	loss := NewCrossEntropy()
	loss.Forward(n.Forward(x, true), labels)
	n.ZeroGrads()
	n.Backward(loss.Backward())
	// ReLU kinks make the check slightly less sharp.
	checkGrads(t, n, func() float64 { return ceLossOf(n, x, labels) }, 5e-4)
}

func TestGradCheckLeakyReLUTanhMSE(t *testing.T) {
	r := rng.New(3)
	n := NewNetwork(
		NewDense(r, 4, 6), NewLeakyReLU(0.01),
		NewDense(r, 6, 5), NewTanh(),
		NewDense(r, 5, 1),
	)
	x := randInput(r, 3, 4)
	targets := []float64{0.5, -1.2, 2.0}
	loss := NewMSE()
	loss.Forward(n.Forward(x, true), targets)
	n.ZeroGrads()
	n.Backward(loss.Backward())
	checkGrads(t, n, func() float64 { return mseLossOf(n, x, targets) }, 5e-4)
}

func TestGradCheckConv2D(t *testing.T) {
	r := rng.New(4)
	g := tensor.ConvGeom{InC: 2, InH: 5, InW: 5, K: 3, Stride: 1, Pad: 1}
	conv := NewConv2D(r, g, 3)
	n := NewNetwork(conv, NewReLU(), NewDense(r, conv.OutLen(), 2))
	x := randInput(r, 2, g.InC*g.InH*g.InW)
	labels := []int{0, 1}
	loss := NewCrossEntropy()
	loss.Forward(n.Forward(x, true), labels)
	n.ZeroGrads()
	n.Backward(loss.Backward())
	checkGrads(t, n, func() float64 { return ceLossOf(n, x, labels) }, 5e-4)
}

func TestGradCheckConvPoolStack(t *testing.T) {
	r := rng.New(5)
	g := tensor.ConvGeom{InC: 1, InH: 4, InW: 4, K: 3, Stride: 1, Pad: 1}
	conv := NewConv2D(r, g, 2)
	pool := NewMaxPool2D(2, 4, 4, 2, 2)
	n := NewNetwork(conv, NewReLU(), pool, NewDense(r, pool.OutLen(), 2))
	x := randInput(r, 3, 16)
	labels := []int{1, 0, 1}
	loss := NewCrossEntropy()
	loss.Forward(n.Forward(x, true), labels)
	n.ZeroGrads()
	n.Backward(loss.Backward())
	// Max-pool argmax ties/switches under perturbation add noise.
	checkGrads(t, n, func() float64 { return ceLossOf(n, x, labels) }, 2e-3)
}

func TestGradCheckInputGradient(t *testing.T) {
	// The gradient returned by Network.Backward w.r.t. the input must
	// also match finite differences (needed nowhere downstream but a
	// strong correctness signal for chained Backwards).
	r := rng.New(6)
	n := NewNetwork(NewDense(r, 3, 4), NewTanh(), NewDense(r, 4, 2))
	x := randInput(r, 2, 3)
	labels := []int{0, 1}
	loss := NewCrossEntropy()
	loss.Forward(n.Forward(x, true), labels)
	n.ZeroGrads()
	dx := n.Backward(loss.Backward())
	const eps = 1e-5
	for i := range x.Data {
		orig := x.Data[i]
		x.Data[i] = orig + eps
		up := ceLossOf(n, x, labels)
		x.Data[i] = orig - eps
		down := ceLossOf(n, x, labels)
		x.Data[i] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-dx.Data[i]) > 1e-4*(1+math.Abs(numeric)) {
			t.Fatalf("input grad elem %d: analytic %.8f vs numeric %.8f", i, dx.Data[i], numeric)
		}
	}
}

func TestGradAccumulation(t *testing.T) {
	// Two Backward passes without ZeroGrads must sum gradients.
	r := rng.New(7)
	n := NewNetwork(NewDense(r, 3, 2))
	x := randInput(r, 2, 3)
	labels := []int{0, 1}
	loss := NewCrossEntropy()

	loss.Forward(n.Forward(x, true), labels)
	n.ZeroGrads()
	n.Backward(loss.Backward())
	once := n.GradVector()

	loss.Forward(n.Forward(x, true), labels)
	n.Backward(loss.Backward())
	twice := n.GradVector()

	for i := range once {
		if math.Abs(twice[i]-2*once[i]) > 1e-12 {
			t.Fatalf("gradient accumulation broken at %d: %v vs 2*%v", i, twice[i], once[i])
		}
	}
}
