package nn

import (
	"fmt"
	"math"

	"feddrl/internal/tensor"
)

// SGD is stochastic gradient descent with optional momentum, weight decay
// and the FedProx proximal term. The paper uses plain SGD with lr = 0.01
// as the local solver (§4.1.2); FedProx clients additionally set ProxMu
// and ProxRef to pull iterates toward the round's global model (μ‖w−w^t‖²/2,
// Li et al. 2020, μ = 0.01 in §4.1.2).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	// ProxMu and ProxRef implement the FedProx proximal term: the
	// gradient gains ProxMu·(w − ProxRef). ProxRef is a flat parameter
	// vector aligned with Network.ParamVector; nil disables the term.
	ProxMu  float64
	ProxRef []float64

	vel [][]float64
}

// NewSGD returns a plain SGD optimizer with the given learning rate.
func NewSGD(lr float64) *SGD {
	if lr <= 0 {
		panic(fmt.Sprintf("nn: SGD with non-positive learning rate %v", lr))
	}
	return &SGD{LR: lr}
}

// Step applies one update to the network's parameters from its
// accumulated gradients, then leaves the gradients untouched (callers
// usually follow with Network.ZeroGrads).
func (o *SGD) Step(n *Network) {
	params, grads := n.Params(), n.Grads()
	if o.Momentum != 0 && o.vel == nil {
		o.vel = make([][]float64, len(params))
		for i, p := range params {
			o.vel[i] = make([]float64, p.Len())
		}
	}
	if o.ProxRef != nil && len(o.ProxRef) != n.NumParams() {
		panic(fmt.Sprintf("nn: SGD proximal reference length %d, want %d", len(o.ProxRef), n.NumParams()))
	}
	if o.WeightDecay == 0 && o.Momentum == 0 && (o.ProxRef == nil || o.ProxMu == 0) {
		// Plain SGD (the paper's local solver) is one axpy per parameter:
		// p ← p + (−lr)·g. IEEE negation of a product is an exact sign
		// flip and a−b ≡ a+(−b), so this is bit-identical to the scalar
		// p −= lr·g loop while running on the SIMD kernels.
		for i, p := range params {
			tensor.Axpy(-o.LR, grads[i].Data, p.Data)
		}
		return
	}
	off := 0
	for i, p := range params {
		g := grads[i]
		for j := range p.Data {
			gj := g.Data[j]
			if o.WeightDecay != 0 {
				gj += o.WeightDecay * p.Data[j]
			}
			if o.ProxRef != nil && o.ProxMu != 0 {
				gj += o.ProxMu * (p.Data[j] - o.ProxRef[off+j])
			}
			if o.Momentum != 0 {
				o.vel[i][j] = o.Momentum*o.vel[i][j] + gj
				gj = o.vel[i][j]
			}
			p.Data[j] -= o.LR * gj
		}
		off += p.Len()
	}
}

// Adam is the Adam optimizer used for the DRL policy and value networks
// (learning rates 1e-4 and 1e-3, Table 1).
type Adam struct {
	LR      float64
	Beta1   float64
	Beta2   float64
	Epsilon float64

	// MaxGradNorm, if positive, clips the global gradient norm before the
	// update — a stability guard for early DDPG training when TD targets
	// are noisy.
	MaxGradNorm float64

	t    int
	m, v [][]float64
}

// NewAdam returns an Adam optimizer with the conventional
// β1=0.9, β2=0.999, ε=1e-8 defaults.
func NewAdam(lr float64) *Adam {
	if lr <= 0 {
		panic(fmt.Sprintf("nn: Adam with non-positive learning rate %v", lr))
	}
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Epsilon: 1e-8}
}

// Step applies one Adam update to the network's parameters.
func (o *Adam) Step(n *Network) {
	params, grads := n.Params(), n.Grads()
	if o.m == nil {
		o.m = make([][]float64, len(params))
		o.v = make([][]float64, len(params))
		for i, p := range params {
			o.m[i] = make([]float64, p.Len())
			o.v[i] = make([]float64, p.Len())
		}
	}
	scale := 1.0
	if o.MaxGradNorm > 0 {
		sq := 0.0
		for _, g := range grads {
			for _, v := range g.Data {
				sq += v * v
			}
		}
		norm := math.Sqrt(sq)
		if norm > o.MaxGradNorm {
			scale = o.MaxGradNorm / norm
		}
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for i, p := range params {
		g := grads[i]
		mi, vi := o.m[i], o.v[i]
		for j := range p.Data {
			gj := g.Data[j] * scale
			mi[j] = o.Beta1*mi[j] + (1-o.Beta1)*gj
			vi[j] = o.Beta2*vi[j] + (1-o.Beta2)*gj*gj
			mHat := mi[j] / bc1
			vHat := vi[j] / bc2
			p.Data[j] -= o.LR * mHat / (math.Sqrt(vHat) + o.Epsilon)
		}
	}
}
