package nn

import (
	"fmt"
	"math"

	"feddrl/internal/rng"
	"feddrl/internal/tensor"
)

// Dropout randomly zeroes activations during training and rescales the
// survivors by 1/(1−p) (inverted dropout), so evaluation needs no
// rescaling. The paper's client models do not use dropout; the layer
// exists for the library's extension surface (custom client models via
// ModelFactory) and is exercised by the ablation-style tests.
type Dropout struct {
	P float64

	r    *rng.RNG
	mask []bool
}

// NewDropout returns a dropout layer with drop probability p in [0, 1).
func NewDropout(r *rng.RNG, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: Dropout p %v out of [0,1)", p))
	}
	return &Dropout{P: p, r: r}
}

// Forward applies dropout when train is true and is the identity
// otherwise.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	if !train || d.P == 0 {
		d.mask = nil
		return out
	}
	if cap(d.mask) < len(out.Data) {
		d.mask = make([]bool, len(out.Data))
	}
	d.mask = d.mask[:len(out.Data)]
	scale := 1 / (1 - d.P)
	for i := range out.Data {
		if d.r.Float64() < d.P {
			out.Data[i] = 0
			d.mask[i] = false
		} else {
			out.Data[i] *= scale
			d.mask[i] = true
		}
	}
	return out
}

// Backward routes gradients through the surviving units.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	if d.mask == nil {
		return out
	}
	if len(d.mask) != len(grad.Data) {
		panic("nn: Dropout.Backward shape mismatch with Forward")
	}
	scale := 1 / (1 - d.P)
	for i := range out.Data {
		if d.mask[i] {
			out.Data[i] *= scale
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Params returns no parameters.
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads returns no gradients.
func (d *Dropout) Grads() []*tensor.Tensor { return nil }

// BatchNorm1D normalizes each feature over the batch during training and
// tracks running statistics for evaluation. It carries learnable scale
// (gamma) and shift (beta) parameters, which — like all parameters —
// travel in the flat vector exchanged with the FL server. (FedBN, cited
// as related work [14], keeps BN parameters local; this implementation
// aggregates them like any other weight, which is the vanilla-FL
// behaviour the paper compares against.)
type BatchNorm1D struct {
	Dim      int
	Momentum float64
	Eps      float64

	Gamma, Beta   *tensor.Tensor
	dGamma, dBeta *tensor.Tensor

	// Running statistics used at evaluation time. They are state, not
	// parameters: they do not appear in Params (matching the common
	// convention that only gradient-bearing tensors are aggregated).
	RunMean, RunVar []float64

	// Cached forward state.
	xhat    *tensor.Tensor
	std     []float64
	lastFwd bool
}

// NewBatchNorm1D returns a batch-norm layer over dim features.
func NewBatchNorm1D(dim int) *BatchNorm1D {
	if dim <= 0 {
		panic("nn: BatchNorm1D with non-positive dim")
	}
	bn := &BatchNorm1D{
		Dim: dim, Momentum: 0.9, Eps: 1e-5,
		Gamma: tensor.New(1, dim), Beta: tensor.New(1, dim),
		dGamma: tensor.New(1, dim), dBeta: tensor.New(1, dim),
		RunMean: make([]float64, dim), RunVar: make([]float64, dim),
	}
	for i := range bn.Gamma.Data {
		bn.Gamma.Data[i] = 1
		bn.RunVar[i] = 1
	}
	return bn
}

// Forward normalizes per feature: batch statistics in training, running
// statistics in evaluation.
func (bn *BatchNorm1D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Cols() != bn.Dim {
		panic(fmt.Sprintf("nn: BatchNorm1D.Forward width %d, want %d", x.Cols(), bn.Dim))
	}
	batch := x.Rows()
	out := tensor.New(batch, bn.Dim)
	bn.lastFwd = train && batch > 1
	if !bn.lastFwd {
		for i := 0; i < batch; i++ {
			xr, or := x.Row(i), out.Row(i)
			for j := 0; j < bn.Dim; j++ {
				xh := (xr[j] - bn.RunMean[j]) / math.Sqrt(bn.RunVar[j]+bn.Eps)
				or[j] = bn.Gamma.Data[j]*xh + bn.Beta.Data[j]
			}
		}
		return out
	}
	mean := make([]float64, bn.Dim)
	variance := make([]float64, bn.Dim)
	for i := 0; i < batch; i++ {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(batch)
	}
	for i := 0; i < batch; i++ {
		for j, v := range x.Row(i) {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= float64(batch)
	}
	bn.std = make([]float64, bn.Dim)
	bn.xhat = tensor.New(batch, bn.Dim)
	for j := 0; j < bn.Dim; j++ {
		bn.std[j] = math.Sqrt(variance[j] + bn.Eps)
		bn.RunMean[j] = bn.Momentum*bn.RunMean[j] + (1-bn.Momentum)*mean[j]
		bn.RunVar[j] = bn.Momentum*bn.RunVar[j] + (1-bn.Momentum)*variance[j]
	}
	for i := 0; i < batch; i++ {
		xr, or, xh := x.Row(i), out.Row(i), bn.xhat.Row(i)
		for j := 0; j < bn.Dim; j++ {
			xh[j] = (xr[j] - mean[j]) / bn.std[j]
			or[j] = bn.Gamma.Data[j]*xh[j] + bn.Beta.Data[j]
		}
	}
	return out
}

// Backward computes the full batch-norm gradient (including the batch
// statistics' dependence on the input).
func (bn *BatchNorm1D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if !bn.lastFwd {
		// Evaluation-mode backward: treat running stats as constants.
		out := grad.Clone()
		for i := 0; i < out.Rows(); i++ {
			or := out.Row(i)
			for j := 0; j < bn.Dim; j++ {
				or[j] *= bn.Gamma.Data[j] / math.Sqrt(bn.RunVar[j]+bn.Eps)
			}
		}
		return out
	}
	batch := grad.Rows()
	if bn.xhat == nil || bn.xhat.Rows() != batch {
		panic("nn: BatchNorm1D.Backward shape mismatch with Forward")
	}
	n := float64(batch)
	dx := tensor.New(batch, bn.Dim)
	// Per-feature sums.
	sumDy := make([]float64, bn.Dim)
	sumDyXhat := make([]float64, bn.Dim)
	for i := 0; i < batch; i++ {
		gr, xh := grad.Row(i), bn.xhat.Row(i)
		for j := 0; j < bn.Dim; j++ {
			sumDy[j] += gr[j]
			sumDyXhat[j] += gr[j] * xh[j]
		}
	}
	for j := 0; j < bn.Dim; j++ {
		bn.dBeta.Data[j] += sumDy[j]
		bn.dGamma.Data[j] += sumDyXhat[j]
	}
	for i := 0; i < batch; i++ {
		gr, xh, dr := grad.Row(i), bn.xhat.Row(i), dx.Row(i)
		for j := 0; j < bn.Dim; j++ {
			dr[j] = bn.Gamma.Data[j] / (n * bn.std[j]) *
				(n*gr[j] - sumDy[j] - xh[j]*sumDyXhat[j])
		}
	}
	return dx
}

// Params returns [Gamma, Beta].
func (bn *BatchNorm1D) Params() []*tensor.Tensor { return []*tensor.Tensor{bn.Gamma, bn.Beta} }

// Grads returns [dGamma, dBeta].
func (bn *BatchNorm1D) Grads() []*tensor.Tensor { return []*tensor.Tensor{bn.dGamma, bn.dBeta} }
