package nn

import (
	"fmt"

	"feddrl/internal/tensor"
)

// Network is a sequential stack of layers with flat parameter-vector
// access, the representation federated aggregation operates on: the FL
// server exchanges []float64 weight vectors with clients (Eq. 1 / Eq. 4
// of the paper) and the DRL agent's soft target updates blend them.
type Network struct {
	layers []Layer

	// params/grads are cached on first access: layers never change their
	// parameter tensors after construction, and per-step callers
	// (ZeroGrads, optimizer steps) must not allocate.
	params []*tensor.Tensor
	grads  []*tensor.Tensor
}

// NewNetwork builds a sequential network from the given layers.
func NewNetwork(layers ...Layer) *Network {
	if len(layers) == 0 {
		panic("nn: NewNetwork with no layers")
	}
	return &Network{layers: layers}
}

// Layers returns the layer slice (shared, not copied).
func (n *Network) Layers() []Layer { return n.layers }

// Forward runs all layers in order.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return n.ForwardScratch(nil, x, train)
}

// Backward runs all layers in reverse, returning the input gradient.
func (n *Network) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return n.BackwardScratch(nil, grad)
}

// Params returns all parameter tensors in layer order. The slice is
// cached and shared; callers must not modify it.
func (n *Network) Params() []*tensor.Tensor {
	if n.params == nil {
		for _, l := range n.layers {
			n.params = append(n.params, l.Params()...)
		}
	}
	return n.params
}

// Grads returns all gradient tensors, aligned with Params. The slice is
// cached and shared; callers must not modify it.
func (n *Network) Grads() []*tensor.Tensor {
	if n.grads == nil {
		for _, l := range n.layers {
			n.grads = append(n.grads, l.Grads()...)
		}
	}
	return n.grads
}

// ZeroGrads clears all accumulated gradients.
func (n *Network) ZeroGrads() {
	for _, g := range n.Grads() {
		g.Zero()
	}
}

// NumParams returns the total number of scalar parameters.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.Len()
	}
	return total
}

// ParamVector returns a copy of all parameters flattened into one vector,
// in deterministic layer order. This is the representation exchanged
// between FL clients and the server.
func (n *Network) ParamVector() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, p := range n.Params() {
		out = append(out, p.Data...)
	}
	return out
}

// SetParamVector loads a flat parameter vector produced by ParamVector on
// a network of identical architecture.
func (n *Network) SetParamVector(v []float64) {
	want := n.NumParams()
	if len(v) != want {
		panic(fmt.Sprintf("nn: SetParamVector length %d, want %d", len(v), want))
	}
	off := 0
	for _, p := range n.Params() {
		copy(p.Data, v[off:off+p.Len()])
		off += p.Len()
	}
}

// ParamVector32 returns all parameters flattened into one float32
// vector, aligned with ParamVector: each weight is quantized with one
// round-to-nearest-even conversion. This is the representation f32-mode
// FL clients upload — half the bytes of the float64 vector.
func (n *Network) ParamVector32() []float32 {
	out := make([]float32, 0, n.NumParams())
	for _, p := range n.Params() {
		for _, v := range p.Data {
			out = append(out, float32(v))
		}
	}
	return out
}

// SetParamVector32 loads a flat float32 parameter vector produced by
// ParamVector32 on a network of identical architecture, widening each
// weight exactly (every float32 is representable in float64).
func (n *Network) SetParamVector32(v []float32) {
	want := n.NumParams()
	if len(v) != want {
		panic(fmt.Sprintf("nn: SetParamVector32 length %d, want %d", len(v), want))
	}
	off := 0
	for _, p := range n.Params() {
		for i := range p.Data {
			p.Data[i] = float64(v[off+i])
		}
		off += p.Len()
	}
}

// GradVector returns a copy of all gradients flattened, aligned with
// ParamVector.
func (n *Network) GradVector() []float64 {
	out := make([]float64, 0, n.NumParams())
	for _, g := range n.Grads() {
		out = append(out, g.Data...)
	}
	return out
}

// SoftUpdateFrom blends the parameters of src into n:
// θ_n ← (1−rho)·θ_n + rho·θ_src. This is the ρ-soft target-network update
// of Algorithm 1 lines 8–9. Architectures must match.
func (n *Network) SoftUpdateFrom(src *Network, rho float64) {
	np, sp := n.Params(), src.Params()
	if len(np) != len(sp) {
		panic("nn: SoftUpdateFrom architecture mismatch")
	}
	for i, p := range np {
		s := sp[i]
		if p.Len() != s.Len() {
			panic("nn: SoftUpdateFrom parameter shape mismatch")
		}
		for j := range p.Data {
			p.Data[j] = (1-rho)*p.Data[j] + rho*s.Data[j]
		}
	}
}

// CopyFrom copies all parameters of src into n. Architectures must match.
func (n *Network) CopyFrom(src *Network) { n.SoftUpdateFrom(src, 1) }
