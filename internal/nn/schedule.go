package nn

import (
	"fmt"
	"math"
)

// Scheduler adjusts a learning rate over communication rounds. The paper
// holds lr fixed at 0.01; schedulers are part of the library surface so
// downstream experiments can study decayed variants (a common FL
// extension), and the ablation benches use them.
type Scheduler interface {
	// LR returns the learning rate for round t (0-based).
	LR(t int) float64
}

// ConstantLR returns the same rate every round.
type ConstantLR struct{ Rate float64 }

// LR implements Scheduler.
func (c ConstantLR) LR(t int) float64 { return c.Rate }

// StepLR multiplies the base rate by Gamma every StepSize rounds.
type StepLR struct {
	Base     float64
	Gamma    float64
	StepSize int
}

// NewStepLR builds a step scheduler; gamma in (0,1], stepSize positive.
func NewStepLR(base, gamma float64, stepSize int) StepLR {
	if base <= 0 || gamma <= 0 || gamma > 1 || stepSize <= 0 {
		panic(fmt.Sprintf("nn: invalid StepLR(%v,%v,%d)", base, gamma, stepSize))
	}
	return StepLR{Base: base, Gamma: gamma, StepSize: stepSize}
}

// LR implements Scheduler.
func (s StepLR) LR(t int) float64 {
	if t < 0 {
		t = 0
	}
	return s.Base * math.Pow(s.Gamma, float64(t/s.StepSize))
}

// CosineLR anneals from Base to Min over Horizon rounds, then stays at
// Min.
type CosineLR struct {
	Base    float64
	Min     float64
	Horizon int
}

// NewCosineLR builds a cosine scheduler.
func NewCosineLR(base, min float64, horizon int) CosineLR {
	if base <= 0 || min < 0 || min > base || horizon <= 0 {
		panic(fmt.Sprintf("nn: invalid CosineLR(%v,%v,%d)", base, min, horizon))
	}
	return CosineLR{Base: base, Min: min, Horizon: horizon}
}

// LR implements Scheduler.
func (c CosineLR) LR(t int) float64 {
	if t < 0 {
		t = 0
	}
	if t >= c.Horizon {
		return c.Min
	}
	frac := float64(t) / float64(c.Horizon)
	return c.Min + 0.5*(c.Base-c.Min)*(1+math.Cos(math.Pi*frac))
}
