package nn

import (
	"fmt"
	"math"

	"feddrl/internal/mathx"
	"feddrl/internal/tensor"
)

// CrossEntropy is the softmax cross-entropy loss over integer class
// labels, the classification loss of every client model in the paper.
// The softmax is fused into the loss so the network's last layer emits
// raw logits, and the combined backward is the numerically benign
// (softmax − onehot) / batch.
type CrossEntropy struct {
	// probs points into probsBuf while backward state is valid; Eval
	// drops probs but keeps probsBuf's capacity for reuse, so warm
	// train steps allocate nothing.
	probs    *tensor.Tensor
	probsBuf *tensor.Tensor
	gradBuf  *tensor.Tensor
	labels   []int
}

// NewCrossEntropy returns a softmax cross-entropy loss.
func NewCrossEntropy() *CrossEntropy { return &CrossEntropy{} }

// reuse2D reshapes buf to (rows, cols) reusing its capacity, or
// allocates a replacement. Contents are unspecified.
func reuse2D(buf *tensor.Tensor, rows, cols int) *tensor.Tensor {
	n := rows * cols
	if buf == nil || cap(buf.Data) < n {
		return tensor.New(rows, cols)
	}
	buf.Data = buf.Data[:n]
	buf.Shape[0], buf.Shape[1] = rows, cols
	return buf
}

// Forward returns the mean cross-entropy of logits (batch, classes)
// against labels.
func (l *CrossEntropy) Forward(logits *tensor.Tensor, labels []int) float64 {
	batch, classes := logits.Rows(), logits.Cols()
	if len(labels) != batch {
		panic(fmt.Sprintf("nn: CrossEntropy labels length %d, batch %d", len(labels), batch))
	}
	l.probsBuf = reuse2D(l.probsBuf, batch, classes)
	l.probs = l.probsBuf
	l.labels = labels
	total := 0.0
	for i := 0; i < batch; i++ {
		y := labels[i]
		if y < 0 || y >= classes {
			panic(fmt.Sprintf("nn: CrossEntropy label %d out of %d classes", y, classes))
		}
		row := logits.Row(i)
		pr := l.probs.Row(i)
		mathx.SoftmaxTo(pr, row)
		p := pr[y]
		if p < 1e-300 {
			p = 1e-300
		}
		total -= math.Log(p)
	}
	return total / float64(batch)
}

// Backward returns dLoss/dLogits for the last Forward call. The
// returned tensor is an internal buffer overwritten by the next
// Backward; callers must not retain it across steps.
func (l *CrossEntropy) Backward() *tensor.Tensor {
	if l.probs == nil {
		panic("nn: CrossEntropy.Backward before Forward")
	}
	batch := l.probs.Rows()
	l.gradBuf = reuse2D(l.gradBuf, batch, l.probs.Cols())
	grad := l.gradBuf
	copy(grad.Data, l.probs.Data)
	inv := 1.0 / float64(batch)
	for i := 0; i < batch; i++ {
		row := grad.Row(i)
		row[l.labels[i]] -= 1
		for j := range row {
			row[j] *= inv
		}
	}
	return grad
}

// Eval returns the mean loss and top-1 accuracy of logits against labels
// without retaining backward state.
func (l *CrossEntropy) Eval(logits *tensor.Tensor, labels []int) (loss float64, acc float64) {
	batch := logits.Rows()
	if batch == 0 {
		return 0, 0
	}
	loss = l.Forward(logits, labels)
	correct := 0
	for i := 0; i < batch; i++ {
		if mathx.ArgMax(logits.Row(i)) == labels[i] {
			correct++
		}
	}
	l.probs = nil // drop backward state
	return loss, float64(correct) / float64(batch)
}

// MSE is the mean squared error loss used to train the DRL value network
// (Algorithm 1 line 6).
type MSE struct {
	diff    *tensor.Tensor
	gradBuf *tensor.Tensor
}

// NewMSE returns a mean-squared-error loss.
func NewMSE() *MSE { return &MSE{} }

// Forward returns mean((pred − target)²) over all elements of a
// (batch, 1) prediction against targets.
func (l *MSE) Forward(pred *tensor.Tensor, targets []float64) float64 {
	batch := pred.Rows()
	if pred.Cols() != 1 {
		panic(fmt.Sprintf("nn: MSE expects (batch,1) predictions, got %v", pred.Shape))
	}
	if len(targets) != batch {
		panic(fmt.Sprintf("nn: MSE targets length %d, batch %d", len(targets), batch))
	}
	l.diff = reuse2D(l.diff, batch, 1)
	total := 0.0
	for i := 0; i < batch; i++ {
		d := pred.At(i, 0) - targets[i]
		l.diff.Set(i, 0, d)
		total += d * d
	}
	return total / float64(batch)
}

// Backward returns dLoss/dPred = 2(pred − target)/batch. The returned
// tensor is an internal buffer overwritten by the next Backward.
func (l *MSE) Backward() *tensor.Tensor {
	if l.diff == nil {
		panic("nn: MSE.Backward before Forward")
	}
	l.gradBuf = reuse2D(l.gradBuf, l.diff.Rows(), 1)
	grad := l.gradBuf
	copy(grad.Data, l.diff.Data)
	grad.ScaleInPlace(2.0 / float64(grad.Rows()))
	return grad
}
