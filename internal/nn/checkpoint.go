package nn

import (
	"fmt"

	"feddrl/internal/serialize"
)

// SaveInto stores the network's parameters in a checkpoint under the
// given key (e.g. "global", "policy").
func (n *Network) SaveInto(c *serialize.Checkpoint, key string) {
	c.Vectors[key] = n.ParamVector()
	c.Meta[key+".params"] = fmt.Sprintf("%d", n.NumParams())
}

// LoadFrom restores the network's parameters from a checkpoint key. The
// stored vector must match this network's architecture.
func (n *Network) LoadFrom(c *serialize.Checkpoint, key string) error {
	v, ok := c.Vectors[key]
	if !ok {
		return fmt.Errorf("nn: checkpoint has no vector %q", key)
	}
	if len(v) != n.NumParams() {
		return fmt.Errorf("nn: checkpoint vector %q has %d params, network needs %d",
			key, len(v), n.NumParams())
	}
	n.SetParamVector(v)
	return nil
}
