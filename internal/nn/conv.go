package nn

import (
	"fmt"
	"math"

	"feddrl/internal/rng"
	"feddrl/internal/tensor"
)

// Conv2D is a 2-D convolution over CHW-flattened inputs. A batch row of
// the input tensor is one image of length InC*InH*InW; a batch row of the
// output is OutC*OutH*OutW. The whole batch is lowered into ONE
// (batch·OutH·OutW, InC·K·K) column matrix (tensor.Im2ColBatch), so the
// forward pass and both backward passes are each a single large matrix
// product per layer call instead of one small GEMM per image — the shape
// the blocked kernels are fastest at.
type Conv2D struct {
	Geom tensor.ConvGeom
	OutC int

	// W has shape (InC*K*K, OutC); B has shape (1, OutC).
	W, B   *tensor.Tensor
	dW, dB *tensor.Tensor

	// lastCols is the whole-batch im2col buffer cached from Forward for
	// Backward (arena slot 0 when running with a Scratch).
	lastCols *tensor.Tensor
	lastRows int
}

// NewConv2D returns a convolution layer with He-normal initialization.
func NewConv2D(r *rng.RNG, g tensor.ConvGeom, outC int) *Conv2D {
	g.Validate()
	if outC <= 0 {
		panic("nn: Conv2D with non-positive output channels")
	}
	patch := g.InC * g.K * g.K
	c := &Conv2D{
		Geom: g, OutC: outC,
		W:  tensor.New(patch, outC),
		B:  tensor.New(1, outC),
		dW: tensor.New(patch, outC),
		dB: tensor.New(1, outC),
	}
	std := math.Sqrt(2.0 / float64(patch))
	for i := range c.W.Data {
		c.W.Data[i] = r.Normal(0, std)
	}
	return c
}

// OutLen returns the flattened output length per sample.
func (c *Conv2D) OutLen() int { return c.OutC * c.Geom.OutH() * c.Geom.OutW() }

// InLen returns the flattened input length per sample.
func (c *Conv2D) InLen() int { return c.Geom.InC * c.Geom.InH * c.Geom.InW }

// Forward convolves each batch row. Output rows are CHW-flattened.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return c.ForwardScratch(nil, 0, x, train)
}

// ForwardScratch lowers the whole batch with one im2col and one GEMM:
// res (batch·ohw, OutC) = cols (batch·ohw, patch) · W, then scatters
// res into the CHW-flattened output layout with the bias added.
func (c *Conv2D) ForwardScratch(sc *Scratch, id int, x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Cols() != c.InLen() {
		panic(fmt.Sprintf("nn: Conv2D.Forward input width %d, want %d", x.Cols(), c.InLen()))
	}
	batch := x.Rows()
	ohw := c.Geom.OutH() * c.Geom.OutW()
	patch := c.Geom.InC * c.Geom.K * c.Geom.K
	cols := sc.tensor2D(id, 0, batch*ohw, patch)
	out := sc.tensor2D(id, 1, batch, c.OutLen())
	res := sc.tensor2D(id, 2, batch*ohw, c.OutC)
	c.lastCols = cols
	c.lastRows = batch
	tensor.Im2ColBatch(c.Geom, x, cols)
	tensor.MatMulInto(res, cols, c.W)
	for i := 0; i < batch; i++ {
		outRow := out.Row(i)
		for p := 0; p < ohw; p++ {
			rrow := res.Row(i*ohw + p)
			for ch := 0; ch < c.OutC; ch++ {
				outRow[ch*ohw+p] = rrow[ch] + c.B.Data[ch]
			}
		}
	}
	return out
}

// Backward accumulates kernel/bias gradients and returns the input
// gradient, CHW-flattened per batch row.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return c.BackwardScratch(nil, 0, grad)
}

// BackwardScratch runs both backward matrix products over the whole
// batch at once: dW += colsᵀ·dRes and dCols = dRes·Wᵀ, with dRes the
// (batch·ohw, OutC) transposition of the incoming CHW gradient.
func (c *Conv2D) BackwardScratch(sc *Scratch, id int, grad *tensor.Tensor) *tensor.Tensor {
	if c.lastRows == 0 {
		panic("nn: Conv2D.Backward before Forward")
	}
	if grad.Rows() != c.lastRows || grad.Cols() != c.OutLen() {
		panic(fmt.Sprintf("nn: Conv2D.Backward grad shape %v", grad.Shape))
	}
	batch := grad.Rows()
	ohw := c.Geom.OutH() * c.Geom.OutW()
	patch := c.Geom.InC * c.Geom.K * c.Geom.K
	dx := sc.tensor2D(id, 3, batch, c.InLen())
	dRes := sc.tensor2D(id, 4, batch*ohw, c.OutC)
	dWtmp := sc.tensor2D(id, 5, patch, c.OutC)
	dCols := sc.tensor2D(id, 6, batch*ohw, patch)
	for i := 0; i < batch; i++ {
		gRow := grad.Row(i)
		for p := 0; p < ohw; p++ {
			drow := dRes.Row(i*ohw + p)
			for ch := 0; ch < c.OutC; ch++ {
				drow[ch] = gRow[ch*ohw+p]
			}
		}
	}
	// dW += colsᵀ · dRes over the whole batch in one product.
	tensor.MatMulATInto(dWtmp, c.lastCols, dRes)
	c.dW.AddInPlace(dWtmp)
	// dB += Σ_rows dRes (row order matches the old per-sample loop).
	for p := 0; p < batch*ohw; p++ {
		drow := dRes.Row(p)
		for ch, v := range drow {
			c.dB.Data[ch] += v
		}
	}
	// dCols = dRes · Wᵀ, then scatter every sample back to its image.
	tensor.MatMulBTInto(dCols, dRes, c.W)
	dx.Zero()
	tensor.Col2ImBatch(c.Geom, dCols, dx)
	return dx
}

// Params returns [W, B].
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads returns [dW, dB].
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }

// MaxPool2D is a max-pooling layer over CHW-flattened inputs.
type MaxPool2D struct {
	C, H, W      int
	Size, Stride int

	argmax  []int // flat input index chosen per output element, per batch row
	lastDim int
}

// NewMaxPool2D returns a max-pooling layer. Size must divide into the
// spatial dims given the stride (no padding).
func NewMaxPool2D(c, h, w, size, stride int) *MaxPool2D {
	if c <= 0 || h <= 0 || w <= 0 || size <= 0 || stride <= 0 {
		panic("nn: MaxPool2D with non-positive geometry")
	}
	if (h-size)%stride != 0 || (w-size)%stride != 0 || h < size || w < size {
		panic(fmt.Sprintf("nn: MaxPool2D geometry (h=%d,w=%d,size=%d,stride=%d) not tileable", h, w, size, stride))
	}
	return &MaxPool2D{C: c, H: h, W: w, Size: size, Stride: stride}
}

// OutH returns the pooled height.
func (m *MaxPool2D) OutH() int { return (m.H-m.Size)/m.Stride + 1 }

// OutW returns the pooled width.
func (m *MaxPool2D) OutW() int { return (m.W-m.Size)/m.Stride + 1 }

// OutLen returns the flattened output length per sample.
func (m *MaxPool2D) OutLen() int { return m.C * m.OutH() * m.OutW() }

// InLen returns the flattened input length per sample.
func (m *MaxPool2D) InLen() int { return m.C * m.H * m.W }

// Forward computes channelwise max pooling.
func (m *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	return m.ForwardScratch(nil, 0, x, train)
}

// ForwardScratch is Forward writing into an arena slot.
func (m *MaxPool2D) ForwardScratch(sc *Scratch, id int, x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Cols() != m.InLen() {
		panic(fmt.Sprintf("nn: MaxPool2D.Forward input width %d, want %d", x.Cols(), m.InLen()))
	}
	batch := x.Rows()
	oh, ow := m.OutH(), m.OutW()
	out := sc.tensor2D(id, 0, batch, m.OutLen())
	need := batch * m.OutLen()
	if cap(m.argmax) < need {
		m.argmax = make([]int, need)
	}
	m.argmax = m.argmax[:need]
	m.lastDim = batch
	for i := 0; i < batch; i++ {
		in := x.Row(i)
		o := out.Row(i)
		amRow := m.argmax[i*m.OutLen() : (i+1)*m.OutLen()]
		oi := 0
		for ch := 0; ch < m.C; ch++ {
			chOff := ch * m.H * m.W
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					best := math.Inf(-1)
					bestIdx := -1
					for dy := 0; dy < m.Size; dy++ {
						y := oy*m.Stride + dy
						for dx := 0; dx < m.Size; dx++ {
							xp := ox*m.Stride + dx
							idx := chOff + y*m.W + xp
							if in[idx] > best {
								best = in[idx]
								bestIdx = idx
							}
						}
					}
					o[oi] = best
					amRow[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// Backward routes gradients to the argmax positions.
func (m *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return m.BackwardScratch(nil, 0, grad)
}

// BackwardScratch is Backward writing into an arena slot.
func (m *MaxPool2D) BackwardScratch(sc *Scratch, id int, grad *tensor.Tensor) *tensor.Tensor {
	if m.lastDim == 0 {
		panic("nn: MaxPool2D.Backward before Forward")
	}
	if grad.Rows() != m.lastDim || grad.Cols() != m.OutLen() {
		panic(fmt.Sprintf("nn: MaxPool2D.Backward grad shape %v", grad.Shape))
	}
	batch := grad.Rows()
	dx := sc.tensor2D(id, 1, batch, m.InLen())
	dx.Zero()
	for i := 0; i < batch; i++ {
		g := grad.Row(i)
		d := dx.Row(i)
		amRow := m.argmax[i*m.OutLen() : (i+1)*m.OutLen()]
		for oi, idx := range amRow {
			d[idx] += g[oi]
		}
	}
	return dx
}

// Params returns no parameters.
func (m *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Grads returns no gradients.
func (m *MaxPool2D) Grads() []*tensor.Tensor { return nil }
