package nn

import (
	"testing"

	"feddrl/internal/rng"
	"feddrl/internal/tensor"
)

// trainStep runs one full optimization step — forward, loss, backward,
// SGD update — through the arena.
func trainStep(net *Network, sc *Scratch, ce *CrossEntropy, opt *SGD, x *tensor.Tensor, y []int) {
	ce.Forward(net.ForwardScratch(sc, x, true), y)
	net.ZeroGrads()
	net.BackwardScratch(sc, ce.Backward())
	opt.Step(net)
}

// assertZeroAllocTrainStep warms the arena and asserts that subsequent
// steps perform zero heap allocations.
func assertZeroAllocTrainStep(t *testing.T, net *Network, in int) {
	t.Helper()
	sc := NewScratch()
	ce := NewCrossEntropy()
	opt := NewSGD(0.05)
	r := rng.New(42)
	const batch = 8
	x := tensor.New(batch, in)
	for i := range x.Data {
		x.Data[i] = r.Normal(0, 1)
	}
	y := make([]int, batch)
	for i := range y {
		y[i] = r.Intn(2)
	}
	// Warm: let every slot and kernel scratch buffer reach steady state.
	for i := 0; i < 3; i++ {
		trainStep(net, sc, ce, opt, x, y)
	}
	allocs := testing.AllocsPerRun(10, func() {
		trainStep(net, sc, ce, opt, x, y)
	})
	if allocs != 0 {
		t.Fatalf("warm train step allocates %.1f times per run, want 0", allocs)
	}
}

// TestTrainStepAllocsDense is the allocation gate for the dense stack
// (run explicitly by scripts/verify.sh): a warm MLP train step through
// an arena must not touch the heap.
func TestTrainStepAllocsDense(t *testing.T) {
	r := rng.New(1)
	net := NewMLP(r, 24, []int{32, 16}, 4)
	assertZeroAllocTrainStep(t, net, 24)
}

// TestTrainStepAllocsConv is the allocation gate for the convolution
// stack: a warm SimpleCNN train step (conv, pool, ReLU, dense, batched
// im2col, blocked GEMMs) must not touch the heap.
func TestTrainStepAllocsConv(t *testing.T) {
	r := rng.New(2)
	net := NewSimpleCNN(r, 1, 8, 8, 4)
	assertZeroAllocTrainStep(t, net, 64)
}

// TestScratchPathMatchesPlain pins the arena's bit-identity: training
// the same seeded network with and without a Scratch must produce
// byte-identical parameter trajectories.
func TestScratchPathMatchesPlain(t *testing.T) {
	build := func() *Network { return NewSimpleCNN(rng.New(7), 1, 8, 8, 3) }
	plain, scratched := build(), build()
	sc := NewScratch()
	cePlain, ceScratch := NewCrossEntropy(), NewCrossEntropy()
	optPlain, optScratch := NewSGD(0.05), NewSGD(0.05)
	r := rng.New(9)
	const batch, in = 6, 64
	x := tensor.New(batch, in)
	y := make([]int, batch)
	for step := 0; step < 4; step++ {
		for i := range x.Data {
			x.Data[i] = r.Normal(0, 1)
		}
		for i := range y {
			y[i] = r.Intn(3)
		}
		lp := cePlain.Forward(plain.Forward(x, true), y)
		plain.ZeroGrads()
		plain.Backward(cePlain.Backward())
		optPlain.Step(plain)

		ls := ceScratch.Forward(scratched.ForwardScratch(sc, x, true), y)
		scratched.ZeroGrads()
		scratched.BackwardScratch(sc, ceScratch.Backward())
		optScratch.Step(scratched)

		if lp != ls {
			t.Fatalf("step %d: loss diverged: plain %x scratch %x", step, lp, ls)
		}
	}
	pv, sv := plain.ParamVector(), scratched.ParamVector()
	for i := range pv {
		if pv[i] != sv[i] {
			t.Fatalf("param %d diverged: plain %x scratch %x", i, pv[i], sv[i])
		}
	}
}
