package nn

import (
	"fmt"

	"feddrl/internal/rng"
	"feddrl/internal/tensor"
)

// Factory constructs a fresh network from a seed. FL clients and the
// server use factories so every participant can instantiate an
// identically shaped model and exchange flat parameter vectors.
type Factory func(seed uint64) *Network

// NewMLP builds a multi-layer perceptron with ReLU activations between
// dense layers and raw logits at the output.
func NewMLP(r *rng.RNG, in int, hidden []int, out int) *Network {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: MLP with non-positive in/out (%d,%d)", in, out))
	}
	var layers []Layer
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewDense(r, prev, h), NewReLU())
		prev = h
	}
	layers = append(layers, NewDense(r, prev, out))
	return NewNetwork(layers...)
}

// NewSimpleCNN builds the "simple CNN" of §4.1.2 used for MNIST and
// Fashion-MNIST (after Wu & Wang 2021): two 3×3 convolutions with 2×2 max
// pooling, followed by a dense classifier. Spatial dims must be divisible
// by 4.
func NewSimpleCNN(r *rng.RNG, c, h, w, classes int) *Network {
	if h%4 != 0 || w%4 != 0 {
		panic(fmt.Sprintf("nn: SimpleCNN needs spatial dims divisible by 4, got %dx%d", h, w))
	}
	g1 := tensor.ConvGeom{InC: c, InH: h, InW: w, K: 3, Stride: 1, Pad: 1}
	conv1 := NewConv2D(r, g1, 8)
	pool1 := NewMaxPool2D(8, h, w, 2, 2)
	g2 := tensor.ConvGeom{InC: 8, InH: h / 2, InW: w / 2, K: 3, Stride: 1, Pad: 1}
	conv2 := NewConv2D(r, g2, 16)
	pool2 := NewMaxPool2D(16, h/2, w/2, 2, 2)
	flat := 16 * (h / 4) * (w / 4)
	return NewNetwork(
		conv1, NewReLU(), pool1,
		conv2, NewReLU(), pool2,
		NewDense(r, flat, classes),
	)
}

// NewVGGMini builds the scaled stand-in for VGG-11 used for the
// CIFAR-100 analogue (§4.1.2): four convolution blocks with channel
// doubling and 2×2 pooling after each pair, then a two-layer classifier.
// It has roughly an order of magnitude more parameters than SimpleCNN,
// preserving the model-size relationship Figure 9 depends on. Spatial
// dims must be divisible by 4.
func NewVGGMini(r *rng.RNG, c, h, w, classes int) *Network {
	if h%4 != 0 || w%4 != 0 {
		panic(fmt.Sprintf("nn: VGGMini needs spatial dims divisible by 4, got %dx%d", h, w))
	}
	g1 := tensor.ConvGeom{InC: c, InH: h, InW: w, K: 3, Stride: 1, Pad: 1}
	conv1 := NewConv2D(r, g1, 16)
	g2 := tensor.ConvGeom{InC: 16, InH: h, InW: w, K: 3, Stride: 1, Pad: 1}
	conv2 := NewConv2D(r, g2, 16)
	pool1 := NewMaxPool2D(16, h, w, 2, 2)
	g3 := tensor.ConvGeom{InC: 16, InH: h / 2, InW: w / 2, K: 3, Stride: 1, Pad: 1}
	conv3 := NewConv2D(r, g3, 32)
	g4 := tensor.ConvGeom{InC: 32, InH: h / 2, InW: w / 2, K: 3, Stride: 1, Pad: 1}
	conv4 := NewConv2D(r, g4, 32)
	pool2 := NewMaxPool2D(32, h/2, w/2, 2, 2)
	flat := 32 * (h / 4) * (w / 4)
	return NewNetwork(
		conv1, NewReLU(),
		conv2, NewReLU(), pool1,
		conv3, NewReLU(),
		conv4, NewReLU(), pool2,
		NewDense(r, flat, 128), NewReLU(),
		NewDense(r, 128, classes),
	)
}

// ddpgHeadInit is the final-layer initialization scale of Lillicrap et
// al. (DDPG, the paper's reference [15]): the output layers of both the
// actor and the critic are drawn from U(−3e-3, 3e-3) so initial actions
// and Q-values start near zero instead of at He-init magnitude. For the
// FedDRL aggregator this means the initial policy deviates negligibly
// from the FedAvg-anchored prior.
const ddpgHeadInit = 3e-3

func smallHead(r *rng.RNG, in, out int) *Dense {
	d := NewDense(r, in, out)
	for i := range d.W.Data {
		d.W.Data[i] = (2*r.Float64() - 1) * ddpgHeadInit
	}
	return d
}

// NewPolicyMLP builds the DRL policy network of Table 1 / Fig. 3(c):
// three hidden fully connected layers of `hidden` (256) units with
// LeakyReLU activations, emitting a flat vector of 2K raw values (K means
// and K pre-softplus standard deviations). The output head uses the DDPG
// small-uniform initialization.
func NewPolicyMLP(r *rng.RNG, stateDim, k, hidden int) *Network {
	return NewNetwork(
		NewDense(r, stateDim, hidden), NewLeakyReLU(0.01),
		NewDense(r, hidden, hidden), NewLeakyReLU(0.01),
		NewDense(r, hidden, hidden), NewLeakyReLU(0.01),
		smallHead(r, hidden, 2*k),
	)
}

// NewValueMLP builds the DRL value network of Table 1 / Fig. 3(c): two
// hidden layers of `hidden` (256) units with LeakyReLU activations over
// the concatenated (state, action) input, emitting a scalar Q-value. The
// output head uses the DDPG small-uniform initialization.
func NewValueMLP(r *rng.RNG, stateDim, actionDim, hidden int) *Network {
	return NewNetwork(
		NewDense(r, stateDim+actionDim, hidden), NewLeakyReLU(0.01),
		NewDense(r, hidden, hidden), NewLeakyReLU(0.01),
		smallHead(r, hidden, 1),
	)
}
