package nn

import (
	"testing"

	"feddrl/internal/rng"
	"feddrl/internal/serialize"
)

func TestNetworkCheckpointRoundTrip(t *testing.T) {
	n1 := NewMLP(rng.New(1), 4, []int{6}, 3)
	c := serialize.NewCheckpoint()
	n1.SaveInto(c, "global")
	if c.Meta["global.params"] == "" {
		t.Fatal("param-count metadata missing")
	}
	n2 := NewMLP(rng.New(2), 4, []int{6}, 3)
	if err := n2.LoadFrom(c, "global"); err != nil {
		t.Fatal(err)
	}
	v1, v2 := n1.ParamVector(), n2.ParamVector()
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatal("checkpoint round trip lost parameters")
		}
	}
}

func TestNetworkLoadFromErrors(t *testing.T) {
	n := NewMLP(rng.New(1), 4, []int{6}, 3)
	c := serialize.NewCheckpoint()
	if err := n.LoadFrom(c, "missing"); err == nil {
		t.Fatal("missing key accepted")
	}
	c.Vectors["short"] = []float64{1, 2, 3}
	if err := n.LoadFrom(c, "short"); err == nil {
		t.Fatal("wrong-length vector accepted")
	}
}
