package nn

import "feddrl/internal/tensor"

// Scratch is a per-network arena of reusable activation and gradient
// buffers. Each layer draws its outputs from slots keyed by (layer
// index, slot id); once every shape has been seen, a warm train step —
// forward, backward, optimizer update — performs zero heap allocations
// (asserted by TestTrainStepAllocs and gated in scripts/verify.sh).
//
// Ownership rules:
//
//   - One arena per network instance per goroutine. Arenas are not safe
//     for concurrent use, and two networks sharing an arena would
//     overwrite each other's activations (layer indices collide).
//   - A buffer returned by a layer's ForwardScratch/BackwardScratch is
//     valid until that layer's next call with the same slot: the next
//     Forward overwrites the previous activations, so callers that need
//     a result across steps must copy it out.
//   - A nil *Scratch is valid everywhere and falls back to fresh
//     allocation, which is exactly the old per-call behavior.
type Scratch struct {
	slots map[scratchKey]*tensor.Tensor
}

type scratchKey struct{ layer, slot int }

// NewScratch returns an empty arena.
func NewScratch() *Scratch {
	return &Scratch{slots: make(map[scratchKey]*tensor.Tensor)}
}

// tensor2D returns the (rows, cols) buffer of the given slot, reusing
// prior capacity when possible (reuse2D, shared with the loss
// buffers). Contents are unspecified (possibly stale); callers must
// fully overwrite or Zero it.
func (s *Scratch) tensor2D(layer, slot, rows, cols int) *tensor.Tensor {
	if s == nil {
		return tensor.New(rows, cols)
	}
	k := scratchKey{layer: layer, slot: slot}
	t := reuse2D(s.slots[k], rows, cols)
	s.slots[k] = t
	return t
}

// ScratchLayer is implemented by layers with allocation-free paths:
// ForwardScratch/BackwardScratch mirror Forward/Backward but write
// their outputs (and any internal temporaries) into arena slots keyed
// by the caller-assigned layer id. With a nil arena they behave exactly
// like Forward/Backward.
type ScratchLayer interface {
	Layer
	ForwardScratch(sc *Scratch, id int, x *tensor.Tensor, train bool) *tensor.Tensor
	BackwardScratch(sc *Scratch, id int, grad *tensor.Tensor) *tensor.Tensor
}

// ForwardScratch runs all layers in order, drawing activation buffers
// from the arena. Layers without a scratch path (none of the standard
// ones) fall back to their allocating Forward.
func (n *Network) ForwardScratch(sc *Scratch, x *tensor.Tensor, train bool) *tensor.Tensor {
	for i, l := range n.layers {
		if sl, ok := l.(ScratchLayer); ok {
			x = sl.ForwardScratch(sc, i, x, train)
		} else {
			x = l.Forward(x, train)
		}
	}
	return x
}

// BackwardScratch runs all layers in reverse, drawing gradient buffers
// from the arena.
func (n *Network) BackwardScratch(sc *Scratch, grad *tensor.Tensor) *tensor.Tensor {
	for i := len(n.layers) - 1; i >= 0; i-- {
		if sl, ok := n.layers[i].(ScratchLayer); ok {
			grad = sl.BackwardScratch(sc, i, grad)
		} else {
			grad = n.layers[i].Backward(grad)
		}
	}
	return grad
}
