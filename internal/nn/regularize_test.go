package nn

import (
	"math"
	"testing"

	"feddrl/internal/rng"
	"feddrl/internal/tensor"
)

func TestDropoutEvalIsIdentity(t *testing.T) {
	r := rng.New(1)
	d := NewDropout(r, 0.5)
	x := randInput(r, 3, 4)
	y := d.Forward(x, false)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("eval-mode dropout must be identity")
		}
	}
}

func TestDropoutTrainStatistics(t *testing.T) {
	r := rng.New(2)
	d := NewDropout(r, 0.3)
	x := tensor.New(100, 100)
	for i := range x.Data {
		x.Data[i] = 1
	}
	y := d.Forward(x, true)
	zeros, sum := 0, 0.0
	for _, v := range y.Data {
		if v == 0 {
			zeros++
		}
		sum += v
	}
	frac := float64(zeros) / float64(len(y.Data))
	if math.Abs(frac-0.3) > 0.02 {
		t.Fatalf("drop fraction %v, want ~0.3", frac)
	}
	// Inverted dropout preserves the expected activation.
	mean := sum / float64(len(y.Data))
	if math.Abs(mean-1) > 0.05 {
		t.Fatalf("post-dropout mean %v, want ~1", mean)
	}
}

func TestDropoutBackwardMatchesMask(t *testing.T) {
	r := rng.New(3)
	d := NewDropout(r, 0.5)
	x := randInput(r, 2, 8)
	y := d.Forward(x, true)
	g := tensor.New(2, 8)
	for i := range g.Data {
		g.Data[i] = 1
	}
	dx := d.Backward(g)
	for i := range y.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("gradient mask does not match forward mask")
		}
		if y.Data[i] != 0 && math.Abs(dx.Data[i]-2) > 1e-12 {
			t.Fatalf("survivor gradient %v, want 1/(1-p)=2", dx.Data[i])
		}
	}
}

func TestDropoutPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("p=1 did not panic")
		}
	}()
	NewDropout(rng.New(1), 1)
}

func TestBatchNormTrainNormalizes(t *testing.T) {
	bn := NewBatchNorm1D(3)
	r := rng.New(4)
	x := tensor.New(64, 3)
	for i := range x.Data {
		x.Data[i] = r.Normal(5, 3) // shifted, scaled input
	}
	y := bn.Forward(x, true)
	// Per-feature batch mean ~0 and variance ~1 after normalization
	// (gamma=1, beta=0 initially).
	for j := 0; j < 3; j++ {
		sum, sumSq := 0.0, 0.0
		for i := 0; i < 64; i++ {
			v := y.At(i, j)
			sum += v
			sumSq += v * v
		}
		mean := sum / 64
		variance := sumSq/64 - mean*mean
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("feature %d mean %v", j, mean)
		}
		if math.Abs(variance-1) > 0.01 {
			t.Fatalf("feature %d variance %v", j, variance)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm1D(2)
	r := rng.New(5)
	// Train on shifted data to move the running stats.
	for step := 0; step < 50; step++ {
		x := tensor.New(32, 2)
		for i := range x.Data {
			x.Data[i] = r.Normal(10, 2)
		}
		bn.Forward(x, true)
	}
	// Eval on the same distribution should produce ~standardized output.
	x := tensor.New(1, 2)
	x.Data[0], x.Data[1] = 10, 10
	y := bn.Forward(x, false)
	for _, v := range y.Data {
		if math.Abs(v) > 0.5 {
			t.Fatalf("eval output %v should be near 0 for the running mean", v)
		}
	}
}

func TestBatchNormGradCheck(t *testing.T) {
	r := rng.New(6)
	bn := NewBatchNorm1D(4)
	n := NewNetwork(NewDense(r, 3, 4), bn, NewDense(r, 4, 2))
	x := randInput(r, 6, 3)
	labels := []int{0, 1, 0, 1, 1, 0}
	loss := NewCrossEntropy()
	loss.Forward(n.Forward(x, true), labels)
	n.ZeroGrads()
	n.Backward(loss.Backward())
	// Note: the finite-difference loss must also run in train mode so
	// batch statistics stay consistent — but running stats drift with
	// every forward. Freeze momentum at 1 (no update) for the check.
	bn.Momentum = 1
	checkGrads(t, n, func() float64 { return ceLossOf(n, x, labels) }, 2e-3)
}

func TestBatchNormSingleSampleFallsBackToEval(t *testing.T) {
	bn := NewBatchNorm1D(2)
	x := tensor.New(1, 2)
	x.Data[0], x.Data[1] = 3, -3
	// Batch of one cannot compute batch statistics; must use running
	// stats without crashing.
	y := bn.Forward(x, true)
	if math.IsNaN(y.Data[0]) || math.IsNaN(y.Data[1]) {
		t.Fatal("single-sample batch produced NaN")
	}
}

func TestBatchNormParams(t *testing.T) {
	bn := NewBatchNorm1D(5)
	ps := bn.Params()
	if len(ps) != 2 || ps[0].Len() != 5 || ps[1].Len() != 5 {
		t.Fatal("BatchNorm params wrong")
	}
	n := NewNetwork(bn)
	v := n.ParamVector()
	if len(v) != 10 {
		t.Fatalf("param vector %d, want 10", len(v))
	}
	// Gamma initialized to 1, beta to 0.
	if v[0] != 1 || v[5] != 0 {
		t.Fatalf("init wrong: %v", v)
	}
}

func TestSchedulers(t *testing.T) {
	c := ConstantLR{Rate: 0.01}
	if c.LR(0) != 0.01 || c.LR(100) != 0.01 {
		t.Fatal("constant lr wrong")
	}
	s := NewStepLR(0.1, 0.5, 10)
	if s.LR(0) != 0.1 || s.LR(9) != 0.1 {
		t.Fatal("step lr before first step wrong")
	}
	if math.Abs(s.LR(10)-0.05) > 1e-12 || math.Abs(s.LR(25)-0.025) > 1e-12 {
		t.Fatalf("step lr decay wrong: %v %v", s.LR(10), s.LR(25))
	}
	if s.LR(-5) != 0.1 {
		t.Fatal("negative round should clamp")
	}
	cos := NewCosineLR(0.1, 0.01, 100)
	if cos.LR(0) != 0.1 {
		t.Fatalf("cosine start %v", cos.LR(0))
	}
	if cos.LR(100) != 0.01 || cos.LR(1000) != 0.01 {
		t.Fatal("cosine floor wrong")
	}
	mid := cos.LR(50)
	if math.Abs(mid-(0.01+0.045)) > 1e-9 {
		t.Fatalf("cosine midpoint %v", mid)
	}
	// Monotone non-increasing over the horizon.
	prev := cos.LR(0)
	for tt := 1; tt <= 100; tt++ {
		cur := cos.LR(tt)
		if cur > prev+1e-12 {
			t.Fatalf("cosine not monotone at %d", tt)
		}
		prev = cur
	}
}

func TestSchedulerPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewStepLR(0, 0.5, 10) },
		func() { NewStepLR(0.1, 0, 10) },
		func() { NewStepLR(0.1, 0.5, 0) },
		func() { NewCosineLR(0.1, 0.2, 10) },
		func() { NewCosineLR(0.1, 0.01, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			f()
		}()
	}
}

func TestDropoutInNetworkTrains(t *testing.T) {
	r := rng.New(7)
	n := NewNetwork(
		NewDense(r, 2, 16), NewReLU(), NewDropout(r.Split(), 0.2),
		NewDense(r, 16, 2),
	)
	x := tensor.FromSlice([]float64{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	labels := []int{0, 1, 1, 0}
	ce := NewCrossEntropy()
	opt := NewSGD(0.5)
	for i := 0; i < 3000; i++ {
		ce.Forward(n.Forward(x, true), labels)
		n.ZeroGrads()
		n.Backward(ce.Backward())
		opt.Step(n)
	}
	_, acc := ce.Eval(n.Forward(x, false), labels)
	if acc < 1 {
		t.Fatalf("dropout network failed XOR: acc %v", acc)
	}
}
