package nn

import (
	"math"
	"testing"
	"testing/quick"

	"feddrl/internal/rng"
	"feddrl/internal/tensor"
)

func TestDenseForwardKnown(t *testing.T) {
	r := rng.New(1)
	d := NewDense(r, 2, 2)
	copy(d.W.Data, []float64{1, 2, 3, 4}) // W = [[1,2],[3,4]]
	copy(d.B.Data, []float64{10, 20})
	x := tensor.FromSlice([]float64{1, 1}, 1, 2)
	y := d.Forward(x, false)
	if y.At(0, 0) != 14 || y.At(0, 1) != 26 {
		t.Fatalf("dense forward = %v", y.Data)
	}
}

func TestDensePanics(t *testing.T) {
	r := rng.New(1)
	d := NewDense(r, 3, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("wrong input width did not panic")
			}
		}()
		d.Forward(tensor.New(1, 4), false)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Backward before Forward did not panic")
			}
		}()
		NewDense(r, 3, 2).Backward(tensor.New(1, 2))
	}()
}

func TestActivations(t *testing.T) {
	x := tensor.FromSlice([]float64{-2, -0.5, 0, 0.5, 2, 1}, 2, 3)
	relu := NewReLU()
	y := relu.Forward(x, false)
	want := []float64{0, 0, 0, 0.5, 2, 1}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("relu = %v", y.Data)
		}
	}
	lr := NewLeakyReLU(0.1)
	y = lr.Forward(x, false)
	if y.Data[0] != -0.2 || y.Data[4] != 2 {
		t.Fatalf("leaky relu = %v", y.Data)
	}
	th := NewTanh()
	y = th.Forward(x, false)
	if math.Abs(y.Data[2]) > 1e-12 || math.Abs(y.Data[4]-math.Tanh(2)) > 1e-12 {
		t.Fatalf("tanh = %v", y.Data)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad alpha did not panic")
		}
	}()
	NewLeakyReLU(1.5)
}

func TestMaxPoolKnown(t *testing.T) {
	// 1 channel, 4x4 image, pool 2x2 stride 2.
	p := NewMaxPool2D(1, 4, 4, 2, 2)
	img := []float64{
		1, 2, 5, 6,
		3, 4, 7, 8,
		9, 10, 13, 14,
		11, 12, 15, 16,
	}
	x := tensor.FromSlice(img, 1, 16)
	y := p.Forward(x, false)
	want := []float64{4, 8, 12, 16}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("maxpool = %v, want %v", y.Data, want)
		}
	}
	// Gradient routes only to argmax positions.
	g := tensor.FromSlice([]float64{1, 1, 1, 1}, 1, 4)
	dx := p.Backward(g)
	sum := 0.0
	for _, v := range dx.Data {
		sum += v
	}
	if sum != 4 {
		t.Fatalf("pool backward mass = %v, want 4", sum)
	}
	if dx.Data[5] != 1 || dx.Data[0] != 0 { // position of the 4
		t.Fatalf("pool backward routing wrong: %v", dx.Data)
	}
}

func TestMaxPoolGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-tileable pool did not panic")
		}
	}()
	NewMaxPool2D(1, 5, 5, 2, 2)
}

func TestConvOutputShape(t *testing.T) {
	r := rng.New(2)
	g := tensor.ConvGeom{InC: 3, InH: 8, InW: 8, K: 3, Stride: 1, Pad: 1}
	c := NewConv2D(r, g, 5)
	x := tensor.New(2, c.InLen())
	y := c.Forward(x, false)
	if y.Rows() != 2 || y.Cols() != 5*8*8 {
		t.Fatalf("conv output shape %v", y.Shape)
	}
}

func TestConvBiasBroadcast(t *testing.T) {
	r := rng.New(3)
	g := tensor.ConvGeom{InC: 1, InH: 2, InW: 2, K: 1, Stride: 1, Pad: 0}
	c := NewConv2D(r, g, 2)
	for i := range c.W.Data {
		c.W.Data[i] = 0
	}
	c.B.Data[0], c.B.Data[1] = 3, -1
	y := c.Forward(tensor.New(1, 4), false)
	// First channel (4 positions) all 3, second all -1.
	for p := 0; p < 4; p++ {
		if y.Data[p] != 3 || y.Data[4+p] != -1 {
			t.Fatalf("conv bias broadcast wrong: %v", y.Data)
		}
	}
}

func TestParamVectorRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := NewMLP(r, 3, []int{4}, 2)
		v := n.ParamVector()
		// Mutate, then restore.
		n2 := NewMLP(rng.New(seed+1), 3, []int{4}, 2)
		n2.SetParamVector(v)
		v2 := n2.ParamVector()
		if len(v) != len(v2) {
			return false
		}
		for i := range v {
			if v[i] != v2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParamVectorLengthMismatchPanics(t *testing.T) {
	r := rng.New(1)
	n := NewMLP(r, 3, []int{4}, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("bad SetParamVector did not panic")
		}
	}()
	n.SetParamVector(make([]float64, 5))
}

func TestNumParams(t *testing.T) {
	r := rng.New(1)
	n := NewMLP(r, 3, []int{4}, 2)
	want := 3*4 + 4 + 4*2 + 2
	if n.NumParams() != want {
		t.Fatalf("NumParams = %d, want %d", n.NumParams(), want)
	}
	if len(n.ParamVector()) != want {
		t.Fatal("ParamVector length mismatch")
	}
}

func TestSoftUpdateContraction(t *testing.T) {
	// Property: after a soft update with rho, the distance to the source
	// shrinks by exactly (1-rho).
	f := func(seed uint64, rhoRaw uint8) bool {
		rho := float64(rhoRaw%99+1) / 100 // (0,1)
		a := NewMLP(rng.New(seed), 4, []int{5}, 3)
		b := NewMLP(rng.New(seed+999), 4, []int{5}, 3)
		before := 0.0
		av, bv := a.ParamVector(), b.ParamVector()
		for i := range av {
			d := av[i] - bv[i]
			before += d * d
		}
		a.SoftUpdateFrom(b, rho)
		after := 0.0
		av = a.ParamVector()
		for i := range av {
			d := av[i] - bv[i]
			after += d * d
		}
		want := before * (1 - rho) * (1 - rho)
		return math.Abs(after-want) <= 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCopyFrom(t *testing.T) {
	a := NewMLP(rng.New(1), 4, []int{5}, 3)
	b := NewMLP(rng.New(2), 4, []int{5}, 3)
	a.CopyFrom(b)
	av, bv := a.ParamVector(), b.ParamVector()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatal("CopyFrom did not copy exactly")
		}
	}
}

func TestCrossEntropyKnownValues(t *testing.T) {
	ce := NewCrossEntropy()
	// Uniform logits over 4 classes: loss = ln 4.
	logits := tensor.New(2, 4)
	loss := ce.Forward(logits, []int{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Fatalf("CE uniform = %v, want ln4", loss)
	}
	// Confident correct prediction: near-zero loss.
	logits2 := tensor.FromSlice([]float64{100, 0, 0, 0}, 1, 4)
	if l := ce.Forward(logits2, []int{0}); l > 1e-9 {
		t.Fatalf("confident CE = %v", l)
	}
}

func TestCrossEntropyGradSumsToZero(t *testing.T) {
	// Each row of (softmax - onehot) sums to 0.
	r := rng.New(5)
	ce := NewCrossEntropy()
	logits := tensor.New(3, 5)
	for i := range logits.Data {
		logits.Data[i] = r.Normal(0, 2)
	}
	ce.Forward(logits, []int{0, 2, 4})
	g := ce.Backward()
	for i := 0; i < 3; i++ {
		sum := 0.0
		for _, v := range g.Row(i) {
			sum += v
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("CE grad row %d sums to %v", i, sum)
		}
	}
}

func TestCrossEntropyEval(t *testing.T) {
	ce := NewCrossEntropy()
	logits := tensor.FromSlice([]float64{
		2, 1, 0,
		0, 5, 1,
		1, 0, 3,
	}, 3, 3)
	loss, acc := ce.Eval(logits, []int{0, 1, 0})
	if acc < 0.66 || acc > 0.67 {
		t.Fatalf("accuracy = %v, want 2/3", acc)
	}
	if loss <= 0 {
		t.Fatalf("loss = %v", loss)
	}
	if l, a := ce.Eval(tensor.New(1, 3).Clone(), []int{0}); l <= 0 || a != 1 {
		// uniform logits: argmax 0 counts as correct for label 0
		t.Fatalf("eval on uniform logits: loss=%v acc=%v", l, a)
	}
}

func TestCrossEntropyPanics(t *testing.T) {
	ce := NewCrossEntropy()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("label count mismatch did not panic")
			}
		}()
		ce.Forward(tensor.New(2, 3), []int{0})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("out-of-range label did not panic")
			}
		}()
		ce.Forward(tensor.New(1, 3), []int{3})
	}()
}

func TestMSEKnown(t *testing.T) {
	mse := NewMSE()
	pred := tensor.FromSlice([]float64{1, 2}, 2, 1)
	loss := mse.Forward(pred, []float64{0, 0})
	if math.Abs(loss-2.5) > 1e-12 {
		t.Fatalf("MSE = %v, want 2.5", loss)
	}
	g := mse.Backward()
	if math.Abs(g.At(0, 0)-1) > 1e-12 || math.Abs(g.At(1, 0)-2) > 1e-12 {
		t.Fatalf("MSE grad = %v", g.Data)
	}
}

func TestSGDPlainStep(t *testing.T) {
	r := rng.New(1)
	n := NewNetwork(NewDense(r, 1, 1))
	d := n.Layers()[0].(*Dense)
	d.W.Data[0], d.B.Data[0] = 2, 1
	n.ZeroGrads()
	d.dW.Data[0], d.dB.Data[0] = 0.5, 0.25
	NewSGD(0.1).Step(n)
	if math.Abs(d.W.Data[0]-1.95) > 1e-12 || math.Abs(d.B.Data[0]-0.975) > 1e-12 {
		t.Fatalf("SGD step wrong: w=%v b=%v", d.W.Data[0], d.B.Data[0])
	}
}

func TestSGDProximalPullsTowardReference(t *testing.T) {
	r := rng.New(2)
	n := NewNetwork(NewDense(r, 1, 1))
	d := n.Layers()[0].(*Dense)
	d.W.Data[0], d.B.Data[0] = 5, 5
	ref := []float64{0, 0}
	opt := NewSGD(0.1)
	opt.ProxMu = 1.0
	opt.ProxRef = ref
	n.ZeroGrads() // zero task gradient: only the proximal term acts
	opt.Step(n)
	if d.W.Data[0] >= 5 || d.B.Data[0] >= 5 {
		t.Fatalf("proximal term did not pull toward reference: %v %v", d.W.Data[0], d.B.Data[0])
	}
	if math.Abs(d.W.Data[0]-4.5) > 1e-12 {
		t.Fatalf("proximal step = %v, want 4.5", d.W.Data[0])
	}
}

func TestSGDProxRefLengthPanics(t *testing.T) {
	r := rng.New(3)
	n := NewNetwork(NewDense(r, 2, 2))
	opt := NewSGD(0.1)
	opt.ProxMu = 0.1
	opt.ProxRef = []float64{1}
	defer func() {
		if recover() == nil {
			t.Fatal("short ProxRef did not panic")
		}
	}()
	opt.Step(n)
}

func TestSGDMomentumAccumulates(t *testing.T) {
	r := rng.New(4)
	n := NewNetwork(NewDense(r, 1, 1))
	d := n.Layers()[0].(*Dense)
	d.W.Data[0], d.B.Data[0] = 0, 0
	opt := NewSGD(1)
	opt.Momentum = 0.9
	// Constant gradient 1 on W, 0 on B.
	step := func() {
		n.ZeroGrads()
		d.dW.Data[0] = 1
		opt.Step(n)
	}
	step() // v=1, w=-1
	step() // v=1.9, w=-2.9
	if math.Abs(d.W.Data[0]+2.9) > 1e-12 {
		t.Fatalf("momentum w = %v, want -2.9", d.W.Data[0])
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize (w-3)^2 via MSE on a 1-param model: y = w*x with x=1,
	// target 3.
	r := rng.New(5)
	n := NewNetwork(NewDense(r, 1, 1))
	d := n.Layers()[0].(*Dense)
	d.W.Data[0], d.B.Data[0] = 0, 0
	opt := NewAdam(0.1)
	x := tensor.FromSlice([]float64{1}, 1, 1)
	mse := NewMSE()
	for i := 0; i < 500; i++ {
		pred := n.Forward(x, true)
		mse.Forward(pred, []float64{3})
		n.ZeroGrads()
		n.Backward(mse.Backward())
		opt.Step(n)
	}
	if math.Abs(d.W.Data[0]+d.B.Data[0]-3) > 1e-3 {
		t.Fatalf("Adam did not converge: w+b = %v", d.W.Data[0]+d.B.Data[0])
	}
}

func TestAdamGradClipping(t *testing.T) {
	r := rng.New(6)
	n := NewNetwork(NewDense(r, 1, 1))
	d := n.Layers()[0].(*Dense)
	n.ZeroGrads()
	d.dW.Data[0] = 1e9
	opt := NewAdam(0.001)
	opt.MaxGradNorm = 1
	before := d.W.Data[0]
	opt.Step(n)
	// With clipping the first Adam step is bounded by ~lr.
	if math.Abs(d.W.Data[0]-before) > 0.01 {
		t.Fatalf("clipped step too large: %v", d.W.Data[0]-before)
	}
}

func TestMLPLearnsXOR(t *testing.T) {
	r := rng.New(7)
	n := NewMLP(r, 2, []int{8}, 2)
	x := tensor.FromSlice([]float64{0, 0, 0, 1, 1, 0, 1, 1}, 4, 2)
	labels := []int{0, 1, 1, 0}
	ce := NewCrossEntropy()
	opt := NewSGD(0.5)
	for i := 0; i < 2000; i++ {
		loss := ce.Forward(n.Forward(x, true), labels)
		n.ZeroGrads()
		n.Backward(ce.Backward())
		opt.Step(n)
		if loss < 0.01 {
			break
		}
	}
	_, acc := ce.Eval(n.Forward(x, false), labels)
	if acc != 1 {
		t.Fatalf("MLP failed to learn XOR: acc = %v", acc)
	}
}

func TestSimpleCNNShapes(t *testing.T) {
	r := rng.New(8)
	n := NewSimpleCNN(r, 1, 8, 8, 10)
	x := tensor.New(2, 64)
	y := n.Forward(x, false)
	if y.Rows() != 2 || y.Cols() != 10 {
		t.Fatalf("SimpleCNN output %v", y.Shape)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-divisible dims did not panic")
		}
	}()
	NewSimpleCNN(r, 1, 7, 7, 10)
}

func TestVGGMiniShapesAndSize(t *testing.T) {
	r := rng.New(9)
	vgg := NewVGGMini(r, 3, 8, 8, 100)
	cnn := NewSimpleCNN(r, 3, 8, 8, 100)
	x := tensor.New(1, 3*64)
	if y := vgg.Forward(x, false); y.Cols() != 100 {
		t.Fatalf("VGGMini output %v", y.Shape)
	}
	if vgg.NumParams() < 4*cnn.NumParams() {
		t.Fatalf("VGGMini (%d params) should be much larger than SimpleCNN (%d)", vgg.NumParams(), cnn.NumParams())
	}
}

func TestPolicyValueMLPShapes(t *testing.T) {
	r := rng.New(10)
	k := 10
	pol := NewPolicyMLP(r, 3*k, k, 32)
	if y := pol.Forward(tensor.New(1, 3*k), false); y.Cols() != 2*k {
		t.Fatalf("policy output %v", y.Shape)
	}
	val := NewValueMLP(r, 3*k, 2*k, 32)
	if y := val.Forward(tensor.New(4, 5*k), false); y.Cols() != 1 || y.Rows() != 4 {
		t.Fatalf("value output %v", y.Shape)
	}
}

func TestOptimizerPanicsOnBadLR(t *testing.T) {
	for _, f := range []func(){func() { NewSGD(0) }, func() { NewAdam(-1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("bad lr did not panic")
				}
			}()
			f()
		}()
	}
}
