package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestZeroSeedNonDegenerate(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 100 {
		t.Fatalf("zero seed produced repeated outputs: %d distinct of 100", len(seen))
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// Child and parent should not emit the same sequence.
	a, b := parent.Uint64(), child.Uint64()
	if a == b {
		t.Fatal("split stream mirrors parent")
	}
	// Splitting is deterministic given the parent state.
	p2 := New(7)
	c2 := p2.Split()
	c1 := New(7).Split()
	if c1.Uint64() != c2.Uint64() {
		t.Fatal("split is not deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(5)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("Intn bucket %d count %d badly unbalanced", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestNormalShiftScale(t *testing.T) {
	r := New(23)
	const n = 100000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Normal(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Fatalf("mean = %v, want ~3", mean)
	}
	if math.Abs(variance-4) > 0.15 {
		t.Fatalf("variance = %v, want ~4", variance)
	}
}

func TestNormalZeroSigma(t *testing.T) {
	r := New(1)
	if got := r.Normal(5, 0); got != 5 {
		t.Fatalf("Normal(5,0) = %v, want 5", got)
	}
	if got := r.Normal(5, -0.0); got != 5 {
		t.Fatalf("Normal(5,-0) = %v, want 5", got)
	}
}

func TestGammaMoments(t *testing.T) {
	// Gamma(k) has mean k and variance k.
	for _, k := range []float64{0.5, 1, 2.5, 9} {
		r := New(uint64(100 + int(k*10)))
		const n = 100000
		sum, sumSq := 0.0, 0.0
		for i := 0; i < n; i++ {
			x := r.Gamma(k)
			if x < 0 {
				t.Fatalf("Gamma(%v) produced negative %v", k, x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		if math.Abs(mean-k) > 0.05*k+0.02 {
			t.Fatalf("Gamma(%v) mean = %v", k, mean)
		}
		if math.Abs(variance-k) > 0.1*k+0.05 {
			t.Fatalf("Gamma(%v) variance = %v", k, variance)
		}
	}
}

func TestDirichletSimplex(t *testing.T) {
	r := New(31)
	alpha := []float64{0.5, 1, 2, 0.1}
	for i := 0; i < 1000; i++ {
		p := r.Dirichlet(alpha)
		sum := 0.0
		for _, v := range p {
			if v < 0 {
				t.Fatalf("negative Dirichlet component %v", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("Dirichlet sum = %v", sum)
		}
	}
}

func TestDirichletMean(t *testing.T) {
	r := New(37)
	alpha := []float64{1, 2, 3}
	const n = 50000
	mean := make([]float64, 3)
	for i := 0; i < n; i++ {
		p := r.Dirichlet(alpha)
		for j, v := range p {
			mean[j] += v
		}
	}
	want := []float64{1.0 / 6, 2.0 / 6, 3.0 / 6}
	for j := range mean {
		mean[j] /= n
		if math.Abs(mean[j]-want[j]) > 0.01 {
			t.Fatalf("Dirichlet mean[%d] = %v, want %v", j, mean[j], want[j])
		}
	}
}

func TestPowerLawWeights(t *testing.T) {
	r := New(41)
	w := r.PowerLawWeights(10, 1.5)
	sum := 0.0
	maxW, minW := 0.0, math.Inf(1)
	for _, v := range w {
		if v <= 0 {
			t.Fatalf("non-positive weight %v", v)
		}
		sum += v
		maxW = math.Max(maxW, v)
		minW = math.Min(minW, v)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("weights sum = %v", sum)
	}
	if maxW/minW < 5 {
		t.Fatalf("power law with alpha=1.5 over 10 ranks should be skewed; max/min = %v", maxW/minW)
	}
	// alpha = 0 must be uniform.
	u := r.PowerLawWeights(4, 0)
	for _, v := range u {
		if math.Abs(v-0.25) > 1e-12 {
			t.Fatalf("alpha=0 weight = %v, want 0.25", v)
		}
	}
}

func TestCategoricalDistribution(t *testing.T) {
	r := New(43)
	probs := []float64{0.1, 0.2, 0.7}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Categorical(probs)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("categorical freq[%d] = %v, want %v", i, got, p)
		}
	}
}

func TestCategoricalPanics(t *testing.T) {
	cases := [][]float64{{0, 0}, {-1, 2}, {math.NaN()}}
	for _, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Categorical(%v) did not panic", c)
				}
			}()
			New(1).Categorical(c)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		p := New(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoose(t *testing.T) {
	r := New(53)
	c := r.Choose(10, 4)
	if len(c) != 4 {
		t.Fatalf("Choose returned %d elements", len(c))
	}
	seen := map[int]bool{}
	for _, v := range c {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Choose invalid or duplicate element %d", v)
		}
		seen[v] = true
	}
	if got := r.Choose(3, 3); len(got) != 3 {
		t.Fatalf("Choose(3,3) len = %d", len(got))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Choose(2,3) did not panic")
		}
	}()
	r.Choose(2, 3)
}

func TestExpMean(t *testing.T) {
	r := New(59)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Exp()
		if x < 0 {
			t.Fatalf("negative exponential deviate %v", x)
		}
		sum += x
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	// PermInto must consume the random stream exactly like Perm so the
	// two are interchangeable on hot paths without perturbing results.
	for _, n := range []int{0, 1, 2, 7, 64} {
		a, b := New(uint64(n)+11), New(uint64(n)+11)
		want := a.Perm(n)
		got := make([]int, n)
		b.PermInto(got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d: PermInto[%d]=%d, Perm[%d]=%d", n, i, got[i], i, want[i])
			}
		}
		// Downstream draws must agree too.
		if a.Uint64() != b.Uint64() {
			t.Fatalf("n=%d: stream diverged after permutation", n)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Norm()
	}
}
