package rng

import "testing"

// TestMixSeedDeterministic: the same (base, coords) tuple always mixes
// to the same seed — MixSeed is a pure function of its arguments.
func TestMixSeedDeterministic(t *testing.T) {
	a := MixSeed(42, 1, 2, 3)
	b := MixSeed(42, 1, 2, 3)
	if a != b {
		t.Fatalf("MixSeed not deterministic: %x vs %x", a, b)
	}
	if New(a).Uint64() != New(b).Uint64() {
		t.Fatal("generators from equal mixed seeds diverge")
	}
}

// TestMixSeedSeparation: nearby tuples — differing in one coordinate,
// in coordinate order, in tuple length, or in base — must land on
// distinct seeds. This is what makes per-(round, client, attempt)
// draw streams independent of each other.
func TestMixSeedSeparation(t *testing.T) {
	seen := map[uint64][]uint64{}
	add := func(label string, s uint64, key ...uint64) {
		if prev, dup := seen[s]; dup {
			t.Fatalf("%s collides: %v and %v both mix to %x", label, prev, key, s)
		}
		seen[s] = key
	}
	// A dense grid of small coordinates — exactly the async engine's
	// (round, id, attempt) usage pattern.
	for round := uint64(0); round < 8; round++ {
		for id := uint64(0); id < 32; id++ {
			for attempt := uint64(0); attempt < 4; attempt++ {
				add("grid", MixSeed(7, round, id, attempt), round, id, attempt)
			}
		}
	}
	// Order sensitivity and length sensitivity (coords chosen outside
	// the grid above).
	add("order A", MixSeed(7, 100, 200, 300), 9000, 1)
	add("order B", MixSeed(7, 300, 200, 100), 9000, 2)
	add("prefix", MixSeed(7, 100, 200), 9000, 3)
	add("short", MixSeed(7, 100), 9000, 4)
	add("empty", MixSeed(7), 9000, 5)
	// Base sensitivity with identical coords.
	add("base", MixSeed(8, 0, 0, 0), 9000, 6)
}
