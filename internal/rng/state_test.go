package rng

import "testing"

// TestStateRestoreResumesStream: a snapshot taken mid-stream must resume
// the exact sequence, including a cached Marsaglia spare deviate.
func TestStateRestoreResumesStream(t *testing.T) {
	r := New(99)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	r.Norm() // leaves a spare cached with probability 1 (polar method)

	st := r.State()
	want := make([]float64, 50)
	for i := range want {
		want[i] = r.Norm() + r.Float64()
	}
	r.Restore(st)
	for i := range want {
		if got := r.Norm() + r.Float64(); got != want[i] {
			t.Fatalf("draw %d after Restore: %v, want %v", i, got, want[i])
		}
	}

	// Restoring into a different generator must work identically.
	other := New(1)
	other.Restore(st)
	for i := range want {
		if got := other.Norm() + other.Float64(); got != want[i] {
			t.Fatalf("draw %d on foreign generator: %v, want %v", i, got, want[i])
		}
	}
}

// TestReseedMatchesNew: Reseed must reproduce New's state exactly, even
// on a generator with a cached spare.
func TestReseedMatchesNew(t *testing.T) {
	for _, seed := range []uint64{0, 1, 42, ^uint64(0)} {
		dirty := New(7)
		dirty.Norm()
		dirty.Reseed(seed)
		fresh := New(seed)
		for i := 0; i < 20; i++ {
			if dirty.Uint64() != fresh.Uint64() {
				t.Fatalf("seed %d: Reseed stream diverges from New at draw %d", seed, i)
			}
		}
		if dirty.State() != fresh.State() {
			t.Fatalf("seed %d: states differ after identical draws", seed)
		}
	}
}
