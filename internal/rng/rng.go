// Package rng provides a small, deterministic, splittable pseudo-random
// number generator together with the distribution samplers needed by the
// FedDRL reproduction: Gaussian (policy exploration, synthetic data),
// Gamma/Dirichlet and power-law (non-IID partitioners), categorical and
// permutation sampling (client selection, shard shuffling).
//
// The generator is xoshiro256** seeded through splitmix64, the
// combination recommended by Blackman & Vigna. It is not cryptographically
// secure; it is fast, has a 2^256-1 period, and — crucially for
// reproducible experiments — supports Split, which derives an independent
// stream so that concurrent workers (clients, DRL workers) can consume
// randomness without coordinating and without perturbing each other's
// sequences.
package rng

import "math"

// RNG is a deterministic pseudo-random number generator. It is NOT safe
// for concurrent use; use Split to hand independent streams to goroutines.
type RNG struct {
	s [4]uint64
	// cached spare normal deviate for the Box-Muller/Marsaglia polar method
	spare    float64
	hasSpare bool
}

// splitmix64 advances the given state and returns the next output. It is
// used both to seed xoshiro and to derive split streams.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// MixSeed folds coordinates into a base seed through splitmix64,
// producing a well-separated derived seed for every distinct coordinate
// tuple. It is the canonical way to seed a throwaway generator from a
// position in a deterministic schedule — e.g. the async engine's
// per-(round, client, attempt) arrival draws — so the draw depends only
// on the tuple, never on processing order or worker count. Tuples of
// different lengths are distinguished by folding the length first.
func MixSeed(base uint64, coords ...uint64) uint64 {
	h := base ^ (uint64(len(coords)) * 0x9e3779b97f4a7c15)
	out := splitmix64(&h)
	for _, c := range coords {
		// Chain through the fully avalanched output, not the raw
		// counter: xoring small coordinates straight into splitmix64's
		// additive state lets nearby tuples commute into collisions.
		h = out ^ c
		out = splitmix64(&h)
	}
	return out
}

// New returns a generator seeded from seed. Two generators with the same
// seed produce identical sequences.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Reseed(seed)
	return r
}

// Reseed resets the receiver to the exact state New(seed) would produce,
// discarding any cached spare normal deviate. It lets a pooled generator
// be rebound to a new identity without allocating.
func (r *RNG) Reseed(seed uint64) {
	st := seed
	for i := range r.s {
		r.s[i] = splitmix64(&st)
	}
	// xoshiro must not be seeded with the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	r.spare = 0
	r.hasSpare = false
}

// State is a complete snapshot of a generator: the xoshiro word state
// plus the Marsaglia-polar spare cache. Restoring it resumes the stream
// exactly where the snapshot was taken, including a pending Norm spare.
type State struct {
	S        [4]uint64
	Spare    float64
	HasSpare bool
}

// State snapshots the generator.
func (r *RNG) State() State {
	return State{S: r.s, Spare: r.spare, HasSpare: r.hasSpare}
}

// Restore sets the generator to a previously captured snapshot.
func (r *RNG) Restore(st State) {
	r.s = st.S
	r.spare = st.Spare
	r.hasSpare = st.HasSpare
}

// Split derives a new generator whose stream is statistically independent
// of the receiver's future output. The receiver is advanced.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa3ec647659359acd)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform deviate in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless method would be faster; modulo bias is
	// negligible for the n values used here (≤ dataset sizes), but we use
	// rejection sampling anyway to keep the sampler exact.
	max := uint64(n)
	threshold := -max % max // (2^64 - max) % max
	for {
		v := r.Uint64()
		if v >= threshold {
			return int(v % max)
		}
	}
}

// Norm returns a standard normal deviate using the Marsaglia polar method.
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.hasSpare = true
		return u * f
	}
}

// Normal returns a deviate from N(mu, sigma^2). sigma may be zero, in
// which case mu is returned; negative sigma is treated as its magnitude.
func (r *RNG) Normal(mu, sigma float64) float64 {
	if sigma < 0 {
		sigma = -sigma
	}
	if sigma == 0 {
		return mu
	}
	return mu + sigma*r.Norm()
}

// Exp returns an exponential deviate with rate 1.
func (r *RNG) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Gamma returns a deviate from the Gamma distribution with shape k and
// scale 1, using the Marsaglia–Tsang method (with the standard boost for
// k < 1). It panics if k <= 0.
func (r *RNG) Gamma(k float64) float64 {
	if k <= 0 {
		panic("rng: Gamma with non-positive shape")
	}
	if k < 1 {
		// Gamma(k) = Gamma(k+1) * U^{1/k}
		u := r.Float64()
		for u == 0 {
			u = r.Float64()
		}
		return r.Gamma(k+1) * math.Pow(u, 1/k)
	}
	d := k - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		x := r.Norm()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Dirichlet returns a sample from the Dirichlet distribution with the
// given concentration parameters. The result sums to 1. It panics if
// alpha is empty or contains a non-positive entry.
func (r *RNG) Dirichlet(alpha []float64) []float64 {
	if len(alpha) == 0 {
		panic("rng: Dirichlet with empty alpha")
	}
	out := make([]float64, len(alpha))
	sum := 0.0
	for i, a := range alpha {
		g := r.Gamma(a)
		out[i] = g
		sum += g
	}
	if sum == 0 {
		// Degenerate draw (can happen for very small alphas); fall back to
		// the uniform simplex point.
		for i := range out {
			out[i] = 1 / float64(len(out))
		}
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// PowerLawWeights returns n weights w_i ∝ (i+1)^{-alpha}, normalized to
// sum to 1. This is the "samples of a label follow a power law" rule used
// by the PA partitioner (paper §4.1.1, citing Li et al.). alpha controls
// skew; alpha=0 is uniform.
func (r *RNG) PowerLawWeights(n int, alpha float64) []float64 {
	if n <= 0 {
		panic("rng: PowerLawWeights with non-positive n")
	}
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -alpha)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	// Shuffle so that the heavy ranks are not always assigned to the
	// lowest-numbered clients.
	r.Shuffle(n, func(i, j int) { w[i], w[j] = w[j], w[i] })
	return w
}

// Categorical samples an index with probability proportional to probs.
// Entries must be non-negative and not all zero.
func (r *RNG) Categorical(probs []float64) int {
	total := 0.0
	for _, p := range probs {
		if p < 0 || math.IsNaN(p) {
			panic("rng: Categorical with negative or NaN probability")
		}
		total += p
	}
	if total <= 0 {
		panic("rng: Categorical with zero total mass")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, p := range probs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(probs) - 1 // floating-point slack
}

// Shuffle performs a Fisher–Yates shuffle over n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a random permutation of [0, len(p)). It
// consumes exactly the same random stream as Perm, so the two are
// interchangeable without perturbing downstream draws; callers use it
// to avoid the per-call allocation on hot paths.
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
}

// Choose returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *RNG) Choose(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Choose with k out of range")
	}
	return r.Perm(n)[:k]
}
