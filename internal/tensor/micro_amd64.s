// AVX micro-kernel for the blocked GEMM (see blocked.go). The kernel
// computes one full 4x4 output tile over a packed kc-long panel using
// VMULPD + VADDPD per lane — multiply-round-then-add-round, exactly the
// scalar semantics of the pure-Go kernels, so the vector path is
// bit-identical to them (no FMA: a fused multiply-add rounds once and
// would break the bit-identity contract).

#include "textflag.h"

// func cpuHasAVX() bool
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL	$1, AX
	XORL	CX, CX
	CPUID
	// Need OSXSAVE (ECX bit 27) and AVX (ECX bit 28).
	MOVL	CX, BX
	ANDL	$(1<<27 | 1<<28), BX
	CMPL	BX, $(1<<27 | 1<<28)
	JNE	noavx
	// XCR0 bits 1 and 2: OS preserves XMM and YMM state.
	XORL	CX, CX
	XGETBV
	ANDL	$6, AX
	CMPL	AX, $6
	JNE	noavx
	MOVB	$1, ret+0(FP)
	RET
noavx:
	MOVB	$0, ret+0(FP)
	RET

// func micro4x4avx(kc int, ap, bp, c *float64, ldc int, first bool)
//
// Y0..Y3 hold the four output rows (4 doubles each) for the whole
// panel; each k step broadcasts the four packed A values and issues one
// mul+add pair per row against the packed B vector. first selects
// zero-init (panel 0) versus accumulate-on-top of C.
TEXT ·micro4x4avx(SB), NOSPLIT, $0-41
	MOVQ	kc+0(FP), CX
	MOVQ	ap+8(FP), SI
	MOVQ	bp+16(FP), DI
	MOVQ	c+24(FP), DX
	MOVQ	ldc+32(FP), R8
	SHLQ	$3, R8              // ldc in bytes
	LEAQ	(DX)(R8*2), R9      // &c[2*ldc]
	MOVBLZX	first+40(FP), AX
	TESTB	AL, AL
	JZ	load
	VXORPD	Y0, Y0, Y0
	VXORPD	Y1, Y1, Y1
	VXORPD	Y2, Y2, Y2
	VXORPD	Y3, Y3, Y3
	JMP	kloop
load:
	VMOVUPD	(DX), Y0
	VMOVUPD	(DX)(R8*1), Y1
	VMOVUPD	(R9), Y2
	VMOVUPD	(R9)(R8*1), Y3
kloop:
	TESTQ	CX, CX
	JZ	done
	VMOVUPD	(DI), Y4
	VBROADCASTSD	(SI), Y5
	VBROADCASTSD	8(SI), Y6
	VBROADCASTSD	16(SI), Y7
	VBROADCASTSD	24(SI), Y8
	VMULPD	Y4, Y5, Y5
	VADDPD	Y5, Y0, Y0
	VMULPD	Y4, Y6, Y6
	VADDPD	Y6, Y1, Y1
	VMULPD	Y4, Y7, Y7
	VADDPD	Y7, Y2, Y2
	VMULPD	Y4, Y8, Y8
	VADDPD	Y8, Y3, Y3
	ADDQ	$32, SI
	ADDQ	$32, DI
	DECQ	CX
	JMP	kloop
done:
	VMOVUPD	Y0, (DX)
	VMOVUPD	Y1, (DX)(R8*1)
	VMOVUPD	Y2, (R9)
	VMOVUPD	Y3, (R9)(R8*1)
	VZEROUPPER
	RET

// func cpuHasAVX512() bool
TEXT ·cpuHasAVX512(SB), NOSPLIT, $0-1
	MOVL	$1, AX
	XORL	CX, CX
	CPUID
	// Need OSXSAVE (ECX bit 27) before XGETBV is meaningful.
	MOVL	CX, BX
	ANDL	$(1<<27), BX
	JZ	no512
	// XCR0 bits 1,2 (XMM/YMM) and 5,6,7 (opmask, ZMM_Hi256, Hi16_ZMM):
	// the OS preserves full AVX-512 state.
	XORL	CX, CX
	XGETBV
	ANDL	$0xe6, AX
	CMPL	AX, $0xe6
	JNE	no512
	// CPUID leaf 7 subleaf 0, EBX bit 16: AVX512F.
	MOVL	$7, AX
	XORL	CX, CX
	CPUID
	ANDL	$(1<<16), BX
	JZ	no512
	MOVB	$1, ret+0(FP)
	RET
no512:
	MOVB	$0, ret+0(FP)
	RET

// func micro8x8avx512(kc int, ap, bp, c *float64, ldc int, first bool)
//
// Z0..Z7 hold the eight output rows (8 doubles each) for the whole
// panel; each k step broadcasts the eight packed A values and issues one
// VMULPD+VADDPD pair per row against the packed B vector — multiply-
// round-then-add-round, never fused, so the tile is bit-identical to an
// 8×8 walk of the scalar kernel. Zeroing uses VEX VXORPD (clears the
// full ZMM) so only AVX512F encodings are required.
TEXT ·micro8x8avx512(SB), NOSPLIT, $0-41
	MOVQ	kc+0(FP), CX
	MOVQ	ap+8(FP), SI
	MOVQ	bp+16(FP), DI
	MOVQ	c+24(FP), DX
	MOVQ	ldc+32(FP), R8
	SHLQ	$3, R8              // ldc in bytes
	LEAQ	(R8)(R8*2), R10     // 3*ldc bytes
	LEAQ	(DX)(R8*4), R9      // &c[4*ldc]
	MOVBLZX	first+40(FP), AX
	TESTB	AL, AL
	JZ	load8
	VXORPD	Y0, Y0, Y0
	VXORPD	Y1, Y1, Y1
	VXORPD	Y2, Y2, Y2
	VXORPD	Y3, Y3, Y3
	VXORPD	Y4, Y4, Y4
	VXORPD	Y5, Y5, Y5
	VXORPD	Y6, Y6, Y6
	VXORPD	Y7, Y7, Y7
	JMP	kloop8
load8:
	VMOVUPD	(DX), Z0
	VMOVUPD	(DX)(R8*1), Z1
	VMOVUPD	(DX)(R8*2), Z2
	VMOVUPD	(DX)(R10*1), Z3
	VMOVUPD	(R9), Z4
	VMOVUPD	(R9)(R8*1), Z5
	VMOVUPD	(R9)(R8*2), Z6
	VMOVUPD	(R9)(R10*1), Z7
	// k loop unrolled ×2 (same ascending-k operation order, so results
	// are unchanged); odd kc finishes with a single step. The second
	// step uses its own temporaries (Z17..Z25) so the two halves can
	// issue independently.
kloop8:
	CMPQ	CX, $2
	JLT	ktail8
	VMOVUPD	(DI), Z8
	VBROADCASTSD	(SI), Z9
	VBROADCASTSD	8(SI), Z10
	VBROADCASTSD	16(SI), Z11
	VBROADCASTSD	24(SI), Z12
	VBROADCASTSD	32(SI), Z13
	VBROADCASTSD	40(SI), Z14
	VBROADCASTSD	48(SI), Z15
	VBROADCASTSD	56(SI), Z16
	VMULPD	Z8, Z9, Z9
	VADDPD	Z9, Z0, Z0
	VMULPD	Z8, Z10, Z10
	VADDPD	Z10, Z1, Z1
	VMULPD	Z8, Z11, Z11
	VADDPD	Z11, Z2, Z2
	VMULPD	Z8, Z12, Z12
	VADDPD	Z12, Z3, Z3
	VMULPD	Z8, Z13, Z13
	VADDPD	Z13, Z4, Z4
	VMULPD	Z8, Z14, Z14
	VADDPD	Z14, Z5, Z5
	VMULPD	Z8, Z15, Z15
	VADDPD	Z15, Z6, Z6
	VMULPD	Z8, Z16, Z16
	VADDPD	Z16, Z7, Z7
	VMOVUPD	64(DI), Z17
	VBROADCASTSD	64(SI), Z18
	VBROADCASTSD	72(SI), Z19
	VBROADCASTSD	80(SI), Z20
	VBROADCASTSD	88(SI), Z21
	VBROADCASTSD	96(SI), Z22
	VBROADCASTSD	104(SI), Z23
	VBROADCASTSD	112(SI), Z24
	VBROADCASTSD	120(SI), Z25
	VMULPD	Z17, Z18, Z18
	VADDPD	Z18, Z0, Z0
	VMULPD	Z17, Z19, Z19
	VADDPD	Z19, Z1, Z1
	VMULPD	Z17, Z20, Z20
	VADDPD	Z20, Z2, Z2
	VMULPD	Z17, Z21, Z21
	VADDPD	Z21, Z3, Z3
	VMULPD	Z17, Z22, Z22
	VADDPD	Z22, Z4, Z4
	VMULPD	Z17, Z23, Z23
	VADDPD	Z23, Z5, Z5
	VMULPD	Z17, Z24, Z24
	VADDPD	Z24, Z6, Z6
	VMULPD	Z17, Z25, Z25
	VADDPD	Z25, Z7, Z7
	ADDQ	$128, SI
	ADDQ	$128, DI
	SUBQ	$2, CX
	JMP	kloop8
ktail8:
	TESTQ	CX, CX
	JZ	done8
	VMOVUPD	(DI), Z8
	VBROADCASTSD	(SI), Z9
	VBROADCASTSD	8(SI), Z10
	VBROADCASTSD	16(SI), Z11
	VBROADCASTSD	24(SI), Z12
	VBROADCASTSD	32(SI), Z13
	VBROADCASTSD	40(SI), Z14
	VBROADCASTSD	48(SI), Z15
	VBROADCASTSD	56(SI), Z16
	VMULPD	Z8, Z9, Z9
	VADDPD	Z9, Z0, Z0
	VMULPD	Z8, Z10, Z10
	VADDPD	Z10, Z1, Z1
	VMULPD	Z8, Z11, Z11
	VADDPD	Z11, Z2, Z2
	VMULPD	Z8, Z12, Z12
	VADDPD	Z12, Z3, Z3
	VMULPD	Z8, Z13, Z13
	VADDPD	Z13, Z4, Z4
	VMULPD	Z8, Z14, Z14
	VADDPD	Z14, Z5, Z5
	VMULPD	Z8, Z15, Z15
	VADDPD	Z15, Z6, Z6
	VMULPD	Z8, Z16, Z16
	VADDPD	Z16, Z7, Z7
done8:
	VMOVUPD	Z0, (DX)
	VMOVUPD	Z1, (DX)(R8*1)
	VMOVUPD	Z2, (DX)(R8*2)
	VMOVUPD	Z3, (DX)(R10*1)
	VMOVUPD	Z4, (R9)
	VMOVUPD	Z5, (R9)(R8*1)
	VMOVUPD	Z6, (R9)(R8*2)
	VMOVUPD	Z7, (R9)(R10*1)
	VZEROUPPER
	RET

// Elementwise vector bodies. n is a positive multiple of the lane width
// (wrappers in elemwise.go enforce it and run the scalar tail). Every
// kernel is multiply-round-then-add-round per element — bit-identical
// to the scalar loops.

// func axpyAVX(alpha float64, x, y *float64, n int)
TEXT ·axpyAVX(SB), NOSPLIT, $0-32
	VBROADCASTSD	alpha+0(FP), Y0
	MOVQ	x+8(FP), SI
	MOVQ	y+16(FP), DI
	MOVQ	n+24(FP), CX
axloop:
	VMOVUPD	(SI), Y1
	VMOVUPD	(DI), Y2
	VMULPD	Y0, Y1, Y1
	VADDPD	Y1, Y2, Y2
	VMOVUPD	Y2, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$4, CX
	JNZ	axloop
	VZEROUPPER
	RET

// func axpyAVX512(alpha float64, x, y *float64, n int)
TEXT ·axpyAVX512(SB), NOSPLIT, $0-32
	VBROADCASTSD	alpha+0(FP), Z0
	MOVQ	x+8(FP), SI
	MOVQ	y+16(FP), DI
	MOVQ	n+24(FP), CX
ax5loop:
	VMOVUPD	(SI), Z1
	VMOVUPD	(DI), Z2
	VMULPD	Z0, Z1, Z1
	VADDPD	Z1, Z2, Z2
	VMOVUPD	Z2, (DI)
	ADDQ	$64, SI
	ADDQ	$64, DI
	SUBQ	$8, CX
	JNZ	ax5loop
	VZEROUPPER
	RET

// func scaleAVX(alpha float64, x *float64, n int)
TEXT ·scaleAVX(SB), NOSPLIT, $0-24
	VBROADCASTSD	alpha+0(FP), Y0
	MOVQ	x+8(FP), SI
	MOVQ	n+16(FP), CX
scloop:
	VMOVUPD	(SI), Y1
	VMULPD	Y0, Y1, Y1
	VMOVUPD	Y1, (SI)
	ADDQ	$32, SI
	SUBQ	$4, CX
	JNZ	scloop
	VZEROUPPER
	RET

// func scaleAVX512(alpha float64, x *float64, n int)
TEXT ·scaleAVX512(SB), NOSPLIT, $0-24
	VBROADCASTSD	alpha+0(FP), Z0
	MOVQ	x+8(FP), SI
	MOVQ	n+16(FP), CX
sc5loop:
	VMOVUPD	(SI), Z1
	VMULPD	Z0, Z1, Z1
	VMOVUPD	Z1, (SI)
	ADDQ	$64, SI
	SUBQ	$8, CX
	JNZ	sc5loop
	VZEROUPPER
	RET

// func addAVX(x, y *float64, n int)
TEXT ·addAVX(SB), NOSPLIT, $0-24
	MOVQ	x+0(FP), SI
	MOVQ	y+8(FP), DI
	MOVQ	n+16(FP), CX
adloop:
	VMOVUPD	(SI), Y1
	VMOVUPD	(DI), Y2
	VADDPD	Y1, Y2, Y2
	VMOVUPD	Y2, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$4, CX
	JNZ	adloop
	VZEROUPPER
	RET

// func addAVX512(x, y *float64, n int)
TEXT ·addAVX512(SB), NOSPLIT, $0-24
	MOVQ	x+0(FP), SI
	MOVQ	y+8(FP), DI
	MOVQ	n+16(FP), CX
ad5loop:
	VMOVUPD	(SI), Z1
	VMOVUPD	(DI), Z2
	VADDPD	Z1, Z2, Z2
	VMOVUPD	Z2, (DI)
	ADDQ	$64, SI
	ADDQ	$64, DI
	SUBQ	$8, CX
	JNZ	ad5loop
	VZEROUPPER
	RET

// Activation kernels. The compare masks mirror the scalar branch
// semantics exactly, including NaN: ReLU keeps v when !(v <= 0) —
// predicate NLE_US (6), unordered→true — and LeakyReLU scales when
// v < 0 — predicate LT_OS (1), unordered→false — so NaN inputs flow
// through bit-identically to the scalar code.

// func reluFwdAVX(x, out *float64, n int)
TEXT ·reluFwdAVX(SB), NOSPLIT, $0-24
	MOVQ	x+0(FP), SI
	MOVQ	out+8(FP), DI
	MOVQ	n+16(FP), CX
	VXORPD	Y0, Y0, Y0
rfloop:
	VMOVUPD	(SI), Y1
	VCMPPD	$6, Y0, Y1, Y2      // !(v <= 0), NaN→keep
	VANDPD	Y2, Y1, Y1
	VMOVUPD	Y1, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$4, CX
	JNZ	rfloop
	VZEROUPPER
	RET

// func reluBwdAVX(x, grad, out *float64, n int)
TEXT ·reluBwdAVX(SB), NOSPLIT, $0-32
	MOVQ	x+0(FP), SI
	MOVQ	grad+8(FP), DX
	MOVQ	out+16(FP), DI
	MOVQ	n+24(FP), CX
	VXORPD	Y0, Y0, Y0
rbloop:
	VMOVUPD	(SI), Y1
	VMOVUPD	(DX), Y3
	VCMPPD	$6, Y0, Y1, Y2      // !(x <= 0), NaN→pass gradient
	VANDPD	Y2, Y3, Y3
	VMOVUPD	Y3, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DX
	ADDQ	$32, DI
	SUBQ	$4, CX
	JNZ	rbloop
	VZEROUPPER
	RET

// func leakyFwdAVX(alpha float64, x, out *float64, n int)
TEXT ·leakyFwdAVX(SB), NOSPLIT, $0-32
	VBROADCASTSD	alpha+0(FP), Y0
	MOVQ	x+8(FP), SI
	MOVQ	out+16(FP), DI
	MOVQ	n+24(FP), CX
	VXORPD	Y1, Y1, Y1
lfloop:
	VMOVUPD	(SI), Y2
	VMULPD	Y0, Y2, Y3          // alpha·v (one rounding)
	VCMPPD	$1, Y1, Y2, Y4      // v < 0 (LT_OS, NaN→false)
	VCMPPD	$5, Y1, Y2, Y5      // !(v < 0) (NLT_US, NaN→true)
	VANDPD	Y4, Y3, Y3
	VANDPD	Y5, Y2, Y2
	VORPD	Y3, Y2, Y2
	VMOVUPD	Y2, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$4, CX
	JNZ	lfloop
	VZEROUPPER
	RET

// func leakyBwdAVX(alpha float64, x, grad, out *float64, n int)
TEXT ·leakyBwdAVX(SB), NOSPLIT, $0-40
	VBROADCASTSD	alpha+0(FP), Y0
	MOVQ	x+8(FP), SI
	MOVQ	grad+16(FP), DX
	MOVQ	out+24(FP), DI
	MOVQ	n+32(FP), CX
	VXORPD	Y1, Y1, Y1
lbloop:
	VMOVUPD	(SI), Y2            // x
	VMOVUPD	(DX), Y3            // g
	VMULPD	Y0, Y3, Y4          // g·alpha (one rounding)
	VCMPPD	$1, Y1, Y2, Y5      // x < 0
	VCMPPD	$5, Y1, Y2, Y6      // !(x < 0)
	VANDPD	Y5, Y4, Y4
	VANDPD	Y6, Y3, Y3
	VORPD	Y4, Y3, Y3
	VMOVUPD	Y3, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DX
	ADDQ	$32, DI
	SUBQ	$4, CX
	JNZ	lbloop
	VZEROUPPER
	RET

// ---------------------------------------------------------------------
// Float32 kernels. Identical structure to the float64 kernels above at
// half element width: VMULPS + VADDPS (multiply-round-then-add-round,
// never fused), twice the lanes per vector. Strides shrink from 8 to 4
// bytes per element; the YMM kernels step 8 floats (32 bytes) and the
// ZMM kernels 16 floats (64 bytes) per vector op.

// func micro4x8avxF32(kc int, ap, bp, c *float32, ldc int, first bool)
//
// Y0..Y3 hold the four output rows (8 floats each) for the whole panel;
// each k step broadcasts the four packed A values and issues one
// mul+add pair per row against the packed B vector. first selects
// zero-init (panel 0) versus accumulate-on-top of C.
TEXT ·micro4x8avxF32(SB), NOSPLIT, $0-41
	MOVQ	kc+0(FP), CX
	MOVQ	ap+8(FP), SI
	MOVQ	bp+16(FP), DI
	MOVQ	c+24(FP), DX
	MOVQ	ldc+32(FP), R8
	SHLQ	$2, R8              // ldc in bytes (4 per float32)
	LEAQ	(DX)(R8*2), R9      // &c[2*ldc]
	MOVBLZX	first+40(FP), AX
	TESTB	AL, AL
	JZ	load32
	VXORPS	Y0, Y0, Y0
	VXORPS	Y1, Y1, Y1
	VXORPS	Y2, Y2, Y2
	VXORPS	Y3, Y3, Y3
	JMP	kloop32
load32:
	VMOVUPS	(DX), Y0
	VMOVUPS	(DX)(R8*1), Y1
	VMOVUPS	(R9), Y2
	VMOVUPS	(R9)(R8*1), Y3
kloop32:
	TESTQ	CX, CX
	JZ	done32
	VMOVUPS	(DI), Y4
	VBROADCASTSS	(SI), Y5
	VBROADCASTSS	4(SI), Y6
	VBROADCASTSS	8(SI), Y7
	VBROADCASTSS	12(SI), Y8
	VMULPS	Y4, Y5, Y5
	VADDPS	Y5, Y0, Y0
	VMULPS	Y4, Y6, Y6
	VADDPS	Y6, Y1, Y1
	VMULPS	Y4, Y7, Y7
	VADDPS	Y7, Y2, Y2
	VMULPS	Y4, Y8, Y8
	VADDPS	Y8, Y3, Y3
	ADDQ	$16, SI             // 4 packed A floats
	ADDQ	$32, DI             // 8 packed B floats
	DECQ	CX
	JMP	kloop32
done32:
	VMOVUPS	Y0, (DX)
	VMOVUPS	Y1, (DX)(R8*1)
	VMOVUPS	Y2, (R9)
	VMOVUPS	Y3, (R9)(R8*1)
	VZEROUPPER
	RET

// func micro8x16avx512F32(kc int, ap, bp, c *float32, ldc int, first bool)
//
// Z0..Z7 hold the eight output rows (16 floats each) for the whole
// panel; each k step broadcasts the eight packed A values and issues
// one VMULPS+VADDPS pair per row against the packed B vector. Zeroing
// uses VEX VXORPS (clears the full ZMM) so only AVX512F encodings are
// required.
TEXT ·micro8x16avx512F32(SB), NOSPLIT, $0-41
	MOVQ	kc+0(FP), CX
	MOVQ	ap+8(FP), SI
	MOVQ	bp+16(FP), DI
	MOVQ	c+24(FP), DX
	MOVQ	ldc+32(FP), R8
	SHLQ	$2, R8              // ldc in bytes
	LEAQ	(R8)(R8*2), R10     // 3*ldc bytes
	LEAQ	(DX)(R8*4), R9      // &c[4*ldc]
	MOVBLZX	first+40(FP), AX
	TESTB	AL, AL
	JZ	load16
	VXORPS	Y0, Y0, Y0
	VXORPS	Y1, Y1, Y1
	VXORPS	Y2, Y2, Y2
	VXORPS	Y3, Y3, Y3
	VXORPS	Y4, Y4, Y4
	VXORPS	Y5, Y5, Y5
	VXORPS	Y6, Y6, Y6
	VXORPS	Y7, Y7, Y7
	JMP	kloop16
load16:
	VMOVUPS	(DX), Z0
	VMOVUPS	(DX)(R8*1), Z1
	VMOVUPS	(DX)(R8*2), Z2
	VMOVUPS	(DX)(R10*1), Z3
	VMOVUPS	(R9), Z4
	VMOVUPS	(R9)(R8*1), Z5
	VMOVUPS	(R9)(R8*2), Z6
	VMOVUPS	(R9)(R10*1), Z7
kloop16:
	TESTQ	CX, CX
	JZ	done16
	VMOVUPS	(DI), Z8
	VBROADCASTSS	(SI), Z9
	VBROADCASTSS	4(SI), Z10
	VBROADCASTSS	8(SI), Z11
	VBROADCASTSS	12(SI), Z12
	VBROADCASTSS	16(SI), Z13
	VBROADCASTSS	20(SI), Z14
	VBROADCASTSS	24(SI), Z15
	VBROADCASTSS	28(SI), Z16
	VMULPS	Z8, Z9, Z9
	VADDPS	Z9, Z0, Z0
	VMULPS	Z8, Z10, Z10
	VADDPS	Z10, Z1, Z1
	VMULPS	Z8, Z11, Z11
	VADDPS	Z11, Z2, Z2
	VMULPS	Z8, Z12, Z12
	VADDPS	Z12, Z3, Z3
	VMULPS	Z8, Z13, Z13
	VADDPS	Z13, Z4, Z4
	VMULPS	Z8, Z14, Z14
	VADDPS	Z14, Z5, Z5
	VMULPS	Z8, Z15, Z15
	VADDPS	Z15, Z6, Z6
	VMULPS	Z8, Z16, Z16
	VADDPS	Z16, Z7, Z7
	ADDQ	$32, SI             // 8 packed A floats
	ADDQ	$64, DI             // 16 packed B floats
	DECQ	CX
	JMP	kloop16
done16:
	VMOVUPS	Z0, (DX)
	VMOVUPS	Z1, (DX)(R8*1)
	VMOVUPS	Z2, (DX)(R8*2)
	VMOVUPS	Z3, (DX)(R10*1)
	VMOVUPS	Z4, (R9)
	VMOVUPS	Z5, (R9)(R8*1)
	VMOVUPS	Z6, (R9)(R8*2)
	VMOVUPS	Z7, (R9)(R10*1)
	VZEROUPPER
	RET

// Float32 elementwise vector bodies. n is a positive multiple of the
// lane width (8 for YMM, 16 for ZMM); wrappers in elemwise32.go enforce
// it and run the generic tail.

// func axpyAVXF32(alpha float32, x, y *float32, n int)
TEXT ·axpyAVXF32(SB), NOSPLIT, $0-32
	VBROADCASTSS	alpha+0(FP), Y0
	MOVQ	x+8(FP), SI
	MOVQ	y+16(FP), DI
	MOVQ	n+24(FP), CX
axf32loop:
	VMOVUPS	(SI), Y1
	VMOVUPS	(DI), Y2
	VMULPS	Y0, Y1, Y1
	VADDPS	Y1, Y2, Y2
	VMOVUPS	Y2, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$8, CX
	JNZ	axf32loop
	VZEROUPPER
	RET

// func axpyAVX512F32(alpha float32, x, y *float32, n int)
TEXT ·axpyAVX512F32(SB), NOSPLIT, $0-32
	VBROADCASTSS	alpha+0(FP), Z0
	MOVQ	x+8(FP), SI
	MOVQ	y+16(FP), DI
	MOVQ	n+24(FP), CX
axf325loop:
	VMOVUPS	(SI), Z1
	VMOVUPS	(DI), Z2
	VMULPS	Z0, Z1, Z1
	VADDPS	Z1, Z2, Z2
	VMOVUPS	Z2, (DI)
	ADDQ	$64, SI
	ADDQ	$64, DI
	SUBQ	$16, CX
	JNZ	axf325loop
	VZEROUPPER
	RET

// func scaleAVXF32(alpha float32, x *float32, n int)
TEXT ·scaleAVXF32(SB), NOSPLIT, $0-24
	VBROADCASTSS	alpha+0(FP), Y0
	MOVQ	x+8(FP), SI
	MOVQ	n+16(FP), CX
scf32loop:
	VMOVUPS	(SI), Y1
	VMULPS	Y0, Y1, Y1
	VMOVUPS	Y1, (SI)
	ADDQ	$32, SI
	SUBQ	$8, CX
	JNZ	scf32loop
	VZEROUPPER
	RET

// func scaleAVX512F32(alpha float32, x *float32, n int)
TEXT ·scaleAVX512F32(SB), NOSPLIT, $0-24
	VBROADCASTSS	alpha+0(FP), Z0
	MOVQ	x+8(FP), SI
	MOVQ	n+16(FP), CX
scf325loop:
	VMOVUPS	(SI), Z1
	VMULPS	Z0, Z1, Z1
	VMOVUPS	Z1, (SI)
	ADDQ	$64, SI
	SUBQ	$16, CX
	JNZ	scf325loop
	VZEROUPPER
	RET

// func addAVXF32(x, y *float32, n int)
TEXT ·addAVXF32(SB), NOSPLIT, $0-24
	MOVQ	x+0(FP), SI
	MOVQ	y+8(FP), DI
	MOVQ	n+16(FP), CX
adf32loop:
	VMOVUPS	(SI), Y1
	VMOVUPS	(DI), Y2
	VADDPS	Y1, Y2, Y2
	VMOVUPS	Y2, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$8, CX
	JNZ	adf32loop
	VZEROUPPER
	RET

// func addAVX512F32(x, y *float32, n int)
TEXT ·addAVX512F32(SB), NOSPLIT, $0-24
	MOVQ	x+0(FP), SI
	MOVQ	y+8(FP), DI
	MOVQ	n+16(FP), CX
adf325loop:
	VMOVUPS	(SI), Z1
	VMOVUPS	(DI), Z2
	VADDPS	Z1, Z2, Z2
	VMOVUPS	Z2, (DI)
	ADDQ	$64, SI
	ADDQ	$64, DI
	SUBQ	$16, CX
	JNZ	adf325loop
	VZEROUPPER
	RET

// Float32 activation kernels: same NaN-exact predicates as the float64
// versions (NLE_US, unordered→true, so NaN inputs keep their value /
// pass their gradient exactly like the scalar branches).

// func reluFwdAVXF32(x, out *float32, n int)
TEXT ·reluFwdAVXF32(SB), NOSPLIT, $0-24
	MOVQ	x+0(FP), SI
	MOVQ	out+8(FP), DI
	MOVQ	n+16(FP), CX
	VXORPS	Y0, Y0, Y0
rff32loop:
	VMOVUPS	(SI), Y1
	VCMPPS	$6, Y0, Y1, Y2      // !(v <= 0), NaN→keep
	VANDPS	Y2, Y1, Y1
	VMOVUPS	Y1, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$8, CX
	JNZ	rff32loop
	VZEROUPPER
	RET

// func reluBwdAVXF32(x, grad, out *float32, n int)
TEXT ·reluBwdAVXF32(SB), NOSPLIT, $0-32
	MOVQ	x+0(FP), SI
	MOVQ	grad+8(FP), DX
	MOVQ	out+16(FP), DI
	MOVQ	n+24(FP), CX
	VXORPS	Y0, Y0, Y0
rbf32loop:
	VMOVUPS	(SI), Y1
	VMOVUPS	(DX), Y3
	VCMPPS	$6, Y0, Y1, Y2      // !(x <= 0), NaN→pass gradient
	VANDPS	Y2, Y3, Y3
	VMOVUPS	Y3, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DX
	ADDQ	$32, DI
	SUBQ	$8, CX
	JNZ	rbf32loop
	VZEROUPPER
	RET
