// AVX micro-kernel for the blocked GEMM (see blocked.go). The kernel
// computes one full 4x4 output tile over a packed kc-long panel using
// VMULPD + VADDPD per lane — multiply-round-then-add-round, exactly the
// scalar semantics of the pure-Go kernels, so the vector path is
// bit-identical to them (no FMA: a fused multiply-add rounds once and
// would break the bit-identity contract).

#include "textflag.h"

// func cpuHasAVX() bool
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL	$1, AX
	XORL	CX, CX
	CPUID
	// Need OSXSAVE (ECX bit 27) and AVX (ECX bit 28).
	MOVL	CX, BX
	ANDL	$(1<<27 | 1<<28), BX
	CMPL	BX, $(1<<27 | 1<<28)
	JNE	noavx
	// XCR0 bits 1 and 2: OS preserves XMM and YMM state.
	XORL	CX, CX
	XGETBV
	ANDL	$6, AX
	CMPL	AX, $6
	JNE	noavx
	MOVB	$1, ret+0(FP)
	RET
noavx:
	MOVB	$0, ret+0(FP)
	RET

// func micro4x4avx(kc int, ap, bp, c *float64, ldc int, first bool)
//
// Y0..Y3 hold the four output rows (4 doubles each) for the whole
// panel; each k step broadcasts the four packed A values and issues one
// mul+add pair per row against the packed B vector. first selects
// zero-init (panel 0) versus accumulate-on-top of C.
TEXT ·micro4x4avx(SB), NOSPLIT, $0-41
	MOVQ	kc+0(FP), CX
	MOVQ	ap+8(FP), SI
	MOVQ	bp+16(FP), DI
	MOVQ	c+24(FP), DX
	MOVQ	ldc+32(FP), R8
	SHLQ	$3, R8              // ldc in bytes
	LEAQ	(DX)(R8*2), R9      // &c[2*ldc]
	MOVBLZX	first+40(FP), AX
	TESTB	AL, AL
	JZ	load
	VXORPD	Y0, Y0, Y0
	VXORPD	Y1, Y1, Y1
	VXORPD	Y2, Y2, Y2
	VXORPD	Y3, Y3, Y3
	JMP	kloop
load:
	VMOVUPD	(DX), Y0
	VMOVUPD	(DX)(R8*1), Y1
	VMOVUPD	(R9), Y2
	VMOVUPD	(R9)(R8*1), Y3
kloop:
	TESTQ	CX, CX
	JZ	done
	VMOVUPD	(DI), Y4
	VBROADCASTSD	(SI), Y5
	VBROADCASTSD	8(SI), Y6
	VBROADCASTSD	16(SI), Y7
	VBROADCASTSD	24(SI), Y8
	VMULPD	Y4, Y5, Y5
	VADDPD	Y5, Y0, Y0
	VMULPD	Y4, Y6, Y6
	VADDPD	Y6, Y1, Y1
	VMULPD	Y4, Y7, Y7
	VADDPD	Y7, Y2, Y2
	VMULPD	Y4, Y8, Y8
	VADDPD	Y8, Y3, Y3
	ADDQ	$32, SI
	ADDQ	$32, DI
	DECQ	CX
	JMP	kloop
done:
	VMOVUPD	Y0, (DX)
	VMOVUPD	Y1, (DX)(R8*1)
	VMOVUPD	Y2, (R9)
	VMOVUPD	Y3, (R9)(R8*1)
	VZEROUPPER
	RET
