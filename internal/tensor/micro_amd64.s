// AVX micro-kernel for the blocked GEMM (see blocked.go). The kernel
// computes one full 4x4 output tile over a packed kc-long panel using
// VMULPD + VADDPD per lane — multiply-round-then-add-round, exactly the
// scalar semantics of the pure-Go kernels, so the vector path is
// bit-identical to them (no FMA: a fused multiply-add rounds once and
// would break the bit-identity contract).

#include "textflag.h"

// func cpuHasAVX() bool
TEXT ·cpuHasAVX(SB), NOSPLIT, $0-1
	MOVL	$1, AX
	XORL	CX, CX
	CPUID
	// Need OSXSAVE (ECX bit 27) and AVX (ECX bit 28).
	MOVL	CX, BX
	ANDL	$(1<<27 | 1<<28), BX
	CMPL	BX, $(1<<27 | 1<<28)
	JNE	noavx
	// XCR0 bits 1 and 2: OS preserves XMM and YMM state.
	XORL	CX, CX
	XGETBV
	ANDL	$6, AX
	CMPL	AX, $6
	JNE	noavx
	MOVB	$1, ret+0(FP)
	RET
noavx:
	MOVB	$0, ret+0(FP)
	RET

// func micro4x4avx(kc int, ap, bp, c *float64, ldc int, first bool)
//
// Y0..Y3 hold the four output rows (4 doubles each) for the whole
// panel; each k step broadcasts the four packed A values and issues one
// mul+add pair per row against the packed B vector. first selects
// zero-init (panel 0) versus accumulate-on-top of C.
TEXT ·micro4x4avx(SB), NOSPLIT, $0-41
	MOVQ	kc+0(FP), CX
	MOVQ	ap+8(FP), SI
	MOVQ	bp+16(FP), DI
	MOVQ	c+24(FP), DX
	MOVQ	ldc+32(FP), R8
	SHLQ	$3, R8              // ldc in bytes
	LEAQ	(DX)(R8*2), R9      // &c[2*ldc]
	MOVBLZX	first+40(FP), AX
	TESTB	AL, AL
	JZ	load
	VXORPD	Y0, Y0, Y0
	VXORPD	Y1, Y1, Y1
	VXORPD	Y2, Y2, Y2
	VXORPD	Y3, Y3, Y3
	JMP	kloop
load:
	VMOVUPD	(DX), Y0
	VMOVUPD	(DX)(R8*1), Y1
	VMOVUPD	(R9), Y2
	VMOVUPD	(R9)(R8*1), Y3
kloop:
	TESTQ	CX, CX
	JZ	done
	VMOVUPD	(DI), Y4
	VBROADCASTSD	(SI), Y5
	VBROADCASTSD	8(SI), Y6
	VBROADCASTSD	16(SI), Y7
	VBROADCASTSD	24(SI), Y8
	VMULPD	Y4, Y5, Y5
	VADDPD	Y5, Y0, Y0
	VMULPD	Y4, Y6, Y6
	VADDPD	Y6, Y1, Y1
	VMULPD	Y4, Y7, Y7
	VADDPD	Y7, Y2, Y2
	VMULPD	Y4, Y8, Y8
	VADDPD	Y8, Y3, Y3
	ADDQ	$32, SI
	ADDQ	$32, DI
	DECQ	CX
	JMP	kloop
done:
	VMOVUPD	Y0, (DX)
	VMOVUPD	Y1, (DX)(R8*1)
	VMOVUPD	Y2, (R9)
	VMOVUPD	Y3, (R9)(R8*1)
	VZEROUPPER
	RET

// func cpuHasAVX512() bool
TEXT ·cpuHasAVX512(SB), NOSPLIT, $0-1
	MOVL	$1, AX
	XORL	CX, CX
	CPUID
	// Need OSXSAVE (ECX bit 27) before XGETBV is meaningful.
	MOVL	CX, BX
	ANDL	$(1<<27), BX
	JZ	no512
	// XCR0 bits 1,2 (XMM/YMM) and 5,6,7 (opmask, ZMM_Hi256, Hi16_ZMM):
	// the OS preserves full AVX-512 state.
	XORL	CX, CX
	XGETBV
	ANDL	$0xe6, AX
	CMPL	AX, $0xe6
	JNE	no512
	// CPUID leaf 7 subleaf 0, EBX bit 16: AVX512F.
	MOVL	$7, AX
	XORL	CX, CX
	CPUID
	ANDL	$(1<<16), BX
	JZ	no512
	MOVB	$1, ret+0(FP)
	RET
no512:
	MOVB	$0, ret+0(FP)
	RET

// func micro8x8avx512(kc int, ap, bp, c *float64, ldc int, first bool)
//
// Z0..Z7 hold the eight output rows (8 doubles each) for the whole
// panel; each k step broadcasts the eight packed A values and issues one
// VMULPD+VADDPD pair per row against the packed B vector — multiply-
// round-then-add-round, never fused, so the tile is bit-identical to an
// 8×8 walk of the scalar kernel. Zeroing uses VEX VXORPD (clears the
// full ZMM) so only AVX512F encodings are required.
TEXT ·micro8x8avx512(SB), NOSPLIT, $0-41
	MOVQ	kc+0(FP), CX
	MOVQ	ap+8(FP), SI
	MOVQ	bp+16(FP), DI
	MOVQ	c+24(FP), DX
	MOVQ	ldc+32(FP), R8
	SHLQ	$3, R8              // ldc in bytes
	LEAQ	(R8)(R8*2), R10     // 3*ldc bytes
	LEAQ	(DX)(R8*4), R9      // &c[4*ldc]
	MOVBLZX	first+40(FP), AX
	TESTB	AL, AL
	JZ	load8
	VXORPD	Y0, Y0, Y0
	VXORPD	Y1, Y1, Y1
	VXORPD	Y2, Y2, Y2
	VXORPD	Y3, Y3, Y3
	VXORPD	Y4, Y4, Y4
	VXORPD	Y5, Y5, Y5
	VXORPD	Y6, Y6, Y6
	VXORPD	Y7, Y7, Y7
	JMP	kloop8
load8:
	VMOVUPD	(DX), Z0
	VMOVUPD	(DX)(R8*1), Z1
	VMOVUPD	(DX)(R8*2), Z2
	VMOVUPD	(DX)(R10*1), Z3
	VMOVUPD	(R9), Z4
	VMOVUPD	(R9)(R8*1), Z5
	VMOVUPD	(R9)(R8*2), Z6
	VMOVUPD	(R9)(R10*1), Z7
	// k loop unrolled ×2 (same ascending-k operation order, so results
	// are unchanged); odd kc finishes with a single step. The second
	// step uses its own temporaries (Z17..Z25) so the two halves can
	// issue independently.
kloop8:
	CMPQ	CX, $2
	JLT	ktail8
	VMOVUPD	(DI), Z8
	VBROADCASTSD	(SI), Z9
	VBROADCASTSD	8(SI), Z10
	VBROADCASTSD	16(SI), Z11
	VBROADCASTSD	24(SI), Z12
	VBROADCASTSD	32(SI), Z13
	VBROADCASTSD	40(SI), Z14
	VBROADCASTSD	48(SI), Z15
	VBROADCASTSD	56(SI), Z16
	VMULPD	Z8, Z9, Z9
	VADDPD	Z9, Z0, Z0
	VMULPD	Z8, Z10, Z10
	VADDPD	Z10, Z1, Z1
	VMULPD	Z8, Z11, Z11
	VADDPD	Z11, Z2, Z2
	VMULPD	Z8, Z12, Z12
	VADDPD	Z12, Z3, Z3
	VMULPD	Z8, Z13, Z13
	VADDPD	Z13, Z4, Z4
	VMULPD	Z8, Z14, Z14
	VADDPD	Z14, Z5, Z5
	VMULPD	Z8, Z15, Z15
	VADDPD	Z15, Z6, Z6
	VMULPD	Z8, Z16, Z16
	VADDPD	Z16, Z7, Z7
	VMOVUPD	64(DI), Z17
	VBROADCASTSD	64(SI), Z18
	VBROADCASTSD	72(SI), Z19
	VBROADCASTSD	80(SI), Z20
	VBROADCASTSD	88(SI), Z21
	VBROADCASTSD	96(SI), Z22
	VBROADCASTSD	104(SI), Z23
	VBROADCASTSD	112(SI), Z24
	VBROADCASTSD	120(SI), Z25
	VMULPD	Z17, Z18, Z18
	VADDPD	Z18, Z0, Z0
	VMULPD	Z17, Z19, Z19
	VADDPD	Z19, Z1, Z1
	VMULPD	Z17, Z20, Z20
	VADDPD	Z20, Z2, Z2
	VMULPD	Z17, Z21, Z21
	VADDPD	Z21, Z3, Z3
	VMULPD	Z17, Z22, Z22
	VADDPD	Z22, Z4, Z4
	VMULPD	Z17, Z23, Z23
	VADDPD	Z23, Z5, Z5
	VMULPD	Z17, Z24, Z24
	VADDPD	Z24, Z6, Z6
	VMULPD	Z17, Z25, Z25
	VADDPD	Z25, Z7, Z7
	ADDQ	$128, SI
	ADDQ	$128, DI
	SUBQ	$2, CX
	JMP	kloop8
ktail8:
	TESTQ	CX, CX
	JZ	done8
	VMOVUPD	(DI), Z8
	VBROADCASTSD	(SI), Z9
	VBROADCASTSD	8(SI), Z10
	VBROADCASTSD	16(SI), Z11
	VBROADCASTSD	24(SI), Z12
	VBROADCASTSD	32(SI), Z13
	VBROADCASTSD	40(SI), Z14
	VBROADCASTSD	48(SI), Z15
	VBROADCASTSD	56(SI), Z16
	VMULPD	Z8, Z9, Z9
	VADDPD	Z9, Z0, Z0
	VMULPD	Z8, Z10, Z10
	VADDPD	Z10, Z1, Z1
	VMULPD	Z8, Z11, Z11
	VADDPD	Z11, Z2, Z2
	VMULPD	Z8, Z12, Z12
	VADDPD	Z12, Z3, Z3
	VMULPD	Z8, Z13, Z13
	VADDPD	Z13, Z4, Z4
	VMULPD	Z8, Z14, Z14
	VADDPD	Z14, Z5, Z5
	VMULPD	Z8, Z15, Z15
	VADDPD	Z15, Z6, Z6
	VMULPD	Z8, Z16, Z16
	VADDPD	Z16, Z7, Z7
done8:
	VMOVUPD	Z0, (DX)
	VMOVUPD	Z1, (DX)(R8*1)
	VMOVUPD	Z2, (DX)(R8*2)
	VMOVUPD	Z3, (DX)(R10*1)
	VMOVUPD	Z4, (R9)
	VMOVUPD	Z5, (R9)(R8*1)
	VMOVUPD	Z6, (R9)(R8*2)
	VMOVUPD	Z7, (R9)(R10*1)
	VZEROUPPER
	RET

// Elementwise vector bodies. n is a positive multiple of the lane width
// (wrappers in elemwise.go enforce it and run the scalar tail). Every
// kernel is multiply-round-then-add-round per element — bit-identical
// to the scalar loops.

// func axpyAVX(alpha float64, x, y *float64, n int)
TEXT ·axpyAVX(SB), NOSPLIT, $0-32
	VBROADCASTSD	alpha+0(FP), Y0
	MOVQ	x+8(FP), SI
	MOVQ	y+16(FP), DI
	MOVQ	n+24(FP), CX
axloop:
	VMOVUPD	(SI), Y1
	VMOVUPD	(DI), Y2
	VMULPD	Y0, Y1, Y1
	VADDPD	Y1, Y2, Y2
	VMOVUPD	Y2, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$4, CX
	JNZ	axloop
	VZEROUPPER
	RET

// func axpyAVX512(alpha float64, x, y *float64, n int)
TEXT ·axpyAVX512(SB), NOSPLIT, $0-32
	VBROADCASTSD	alpha+0(FP), Z0
	MOVQ	x+8(FP), SI
	MOVQ	y+16(FP), DI
	MOVQ	n+24(FP), CX
ax5loop:
	VMOVUPD	(SI), Z1
	VMOVUPD	(DI), Z2
	VMULPD	Z0, Z1, Z1
	VADDPD	Z1, Z2, Z2
	VMOVUPD	Z2, (DI)
	ADDQ	$64, SI
	ADDQ	$64, DI
	SUBQ	$8, CX
	JNZ	ax5loop
	VZEROUPPER
	RET

// func scaleAVX(alpha float64, x *float64, n int)
TEXT ·scaleAVX(SB), NOSPLIT, $0-24
	VBROADCASTSD	alpha+0(FP), Y0
	MOVQ	x+8(FP), SI
	MOVQ	n+16(FP), CX
scloop:
	VMOVUPD	(SI), Y1
	VMULPD	Y0, Y1, Y1
	VMOVUPD	Y1, (SI)
	ADDQ	$32, SI
	SUBQ	$4, CX
	JNZ	scloop
	VZEROUPPER
	RET

// func scaleAVX512(alpha float64, x *float64, n int)
TEXT ·scaleAVX512(SB), NOSPLIT, $0-24
	VBROADCASTSD	alpha+0(FP), Z0
	MOVQ	x+8(FP), SI
	MOVQ	n+16(FP), CX
sc5loop:
	VMOVUPD	(SI), Z1
	VMULPD	Z0, Z1, Z1
	VMOVUPD	Z1, (SI)
	ADDQ	$64, SI
	SUBQ	$8, CX
	JNZ	sc5loop
	VZEROUPPER
	RET

// func addAVX(x, y *float64, n int)
TEXT ·addAVX(SB), NOSPLIT, $0-24
	MOVQ	x+0(FP), SI
	MOVQ	y+8(FP), DI
	MOVQ	n+16(FP), CX
adloop:
	VMOVUPD	(SI), Y1
	VMOVUPD	(DI), Y2
	VADDPD	Y1, Y2, Y2
	VMOVUPD	Y2, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$4, CX
	JNZ	adloop
	VZEROUPPER
	RET

// func addAVX512(x, y *float64, n int)
TEXT ·addAVX512(SB), NOSPLIT, $0-24
	MOVQ	x+0(FP), SI
	MOVQ	y+8(FP), DI
	MOVQ	n+16(FP), CX
ad5loop:
	VMOVUPD	(SI), Z1
	VMOVUPD	(DI), Z2
	VADDPD	Z1, Z2, Z2
	VMOVUPD	Z2, (DI)
	ADDQ	$64, SI
	ADDQ	$64, DI
	SUBQ	$8, CX
	JNZ	ad5loop
	VZEROUPPER
	RET

// Activation kernels. The compare masks mirror the scalar branch
// semantics exactly, including NaN: ReLU keeps v when !(v <= 0) —
// predicate NLE_US (6), unordered→true — and LeakyReLU scales when
// v < 0 — predicate LT_OS (1), unordered→false — so NaN inputs flow
// through bit-identically to the scalar code.

// func reluFwdAVX(x, out *float64, n int)
TEXT ·reluFwdAVX(SB), NOSPLIT, $0-24
	MOVQ	x+0(FP), SI
	MOVQ	out+8(FP), DI
	MOVQ	n+16(FP), CX
	VXORPD	Y0, Y0, Y0
rfloop:
	VMOVUPD	(SI), Y1
	VCMPPD	$6, Y0, Y1, Y2      // !(v <= 0), NaN→keep
	VANDPD	Y2, Y1, Y1
	VMOVUPD	Y1, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$4, CX
	JNZ	rfloop
	VZEROUPPER
	RET

// func reluBwdAVX(x, grad, out *float64, n int)
TEXT ·reluBwdAVX(SB), NOSPLIT, $0-32
	MOVQ	x+0(FP), SI
	MOVQ	grad+8(FP), DX
	MOVQ	out+16(FP), DI
	MOVQ	n+24(FP), CX
	VXORPD	Y0, Y0, Y0
rbloop:
	VMOVUPD	(SI), Y1
	VMOVUPD	(DX), Y3
	VCMPPD	$6, Y0, Y1, Y2      // !(x <= 0), NaN→pass gradient
	VANDPD	Y2, Y3, Y3
	VMOVUPD	Y3, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DX
	ADDQ	$32, DI
	SUBQ	$4, CX
	JNZ	rbloop
	VZEROUPPER
	RET

// func leakyFwdAVX(alpha float64, x, out *float64, n int)
TEXT ·leakyFwdAVX(SB), NOSPLIT, $0-32
	VBROADCASTSD	alpha+0(FP), Y0
	MOVQ	x+8(FP), SI
	MOVQ	out+16(FP), DI
	MOVQ	n+24(FP), CX
	VXORPD	Y1, Y1, Y1
lfloop:
	VMOVUPD	(SI), Y2
	VMULPD	Y0, Y2, Y3          // alpha·v (one rounding)
	VCMPPD	$1, Y1, Y2, Y4      // v < 0 (LT_OS, NaN→false)
	VCMPPD	$5, Y1, Y2, Y5      // !(v < 0) (NLT_US, NaN→true)
	VANDPD	Y4, Y3, Y3
	VANDPD	Y5, Y2, Y2
	VORPD	Y3, Y2, Y2
	VMOVUPD	Y2, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DI
	SUBQ	$4, CX
	JNZ	lfloop
	VZEROUPPER
	RET

// func leakyBwdAVX(alpha float64, x, grad, out *float64, n int)
TEXT ·leakyBwdAVX(SB), NOSPLIT, $0-40
	VBROADCASTSD	alpha+0(FP), Y0
	MOVQ	x+8(FP), SI
	MOVQ	grad+16(FP), DX
	MOVQ	out+24(FP), DI
	MOVQ	n+32(FP), CX
	VXORPD	Y1, Y1, Y1
lbloop:
	VMOVUPD	(SI), Y2            // x
	VMOVUPD	(DX), Y3            // g
	VMULPD	Y0, Y3, Y4          // g·alpha (one rounding)
	VCMPPD	$1, Y1, Y2, Y5      // x < 0
	VCMPPD	$5, Y1, Y2, Y6      // !(x < 0)
	VANDPD	Y5, Y4, Y4
	VANDPD	Y6, Y3, Y3
	VORPD	Y4, Y3, Y3
	VMOVUPD	Y3, (DI)
	ADDQ	$32, SI
	ADDQ	$32, DX
	ADDQ	$32, DI
	SUBQ	$4, CX
	JNZ	lbloop
	VZEROUPPER
	RET
