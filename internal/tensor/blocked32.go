package tensor

// Blocked GEMM driver for the float32 storage arm. Identical structure
// to the float64 driver (blocked.go) — same kcBlock/mcBlock cache
// blocking, the same fixed stripeRows parallel fan-out on the installed
// Parallel hook, the same packed-panel layout via the shared generic
// packing routines — with the register-tile geometry of the f32 vector
// kernels (kernelMR32/kernelNR32 in backend.go): 8×16 ZMM tiles on
// avx512, 4×8 YMM tiles on avx, 4×4 portable tiles otherwise (the f32
// arm has no NEON kernel; arm64 uses the generic tiles).
//
// Determinism contract: identical to the float64 arm, at float32
// precision — every output element accumulates along a single
// ascending-k chain with one rounding per multiply (VMULPS) and one per
// add (VADDPS), never fused, so f32 results are bit-identical across
// backends, tile geometries and worker counts. The f32 arm never mixes
// widths: no intermediate is computed in float64.

// gemmDims32 returns the logical (M, K, N) of dst = op(a)·op(b).
func gemmDims32(a, b *Tensor32, v gemmVariant) (m, k, n int) {
	switch v {
	case gemmAT:
		return a.Cols(), a.Rows(), b.Cols()
	case gemmBT:
		return a.Rows(), a.Cols(), b.Rows()
	default:
		return a.Rows(), a.Cols(), b.Cols()
	}
}

// gemmNaive32 computes the variant with the generic reference loops —
// the kernel the blocked f32 path must match bit for bit.
func gemmNaive32(dst, a, b *Tensor32, v gemmVariant) {
	gemmNaiveG(dst.Data, a.Data, a.Rows(), a.Cols(), b.Data, b.Rows(), b.Cols(), v)
}

// gemmInto32 is the shared entry point behind MatMul32Into /
// MatMulAT32Into / MatMulBT32Into: dispatch small products to the naive
// loops, large ones to the blocked kernel, and fan row stripes out on
// the pool hook when one is installed. All paths are bit-identical by
// construction. The volume thresholds are shared with the float64 arm:
// they gate on arithmetic count, which is width-independent.
func gemmInto32(dst, a, b *Tensor32, v gemmVariant) {
	m, k, n := gemmDims32(a, b, v)
	if m*k*n < blockedMinVolume {
		gemmNaive32(dst, a, b, v)
		return
	}
	stripes := (m + stripeRows - 1) / stripeRows
	mr, nr := kernelMR32(), kernelNR32()
	pl := currentParallel()
	if pl == nil || pl.Workers() <= 1 || stripes < 2 || m*k*n < parallelMinVolume {
		kc := k
		if kc > kcBlock {
			kc = kcBlock
		}
		ap := getBuf32(apSize(m, kc, mr))
		bp := getBuf32(bpSize(n, kc, nr))
		gemmBlockedRange32(dst, a, b, v, 0, m, ap, bp)
		putBuf32(bp)
		putBuf32(ap)
		return
	}
	lanes := pl.Workers()
	if lanes > stripes {
		lanes = stripes
	}
	kc := k
	if kc > kcBlock {
		kc = kcBlock
	}
	aps := make([][]float32, lanes)
	bps := make([][]float32, lanes)
	for w := range aps {
		aps[w] = getBuf32(apSize(stripeRows, kc, mr))
		bps[w] = getBuf32(bpSize(n, kc, nr))
	}
	forWorkerFine(pl, stripes, func(w, s int) {
		rs := s * stripeRows
		re := rs + stripeRows
		if re > m {
			re = m
		}
		gemmBlockedRange32(dst, a, b, v, rs, re, aps[w], bps[w])
	})
	for w := range aps {
		putBuf32(bps[w])
		putBuf32(aps[w])
	}
}

// gemmBlockedRange32 runs the blocked f32 kernel over output rows
// [rs, re). ap and bp are packing scratch sized by apSize/bpSize for
// the active backend's f32 register tile.
func gemmBlockedRange32(dst, a, b *Tensor32, v gemmVariant, rs, re int, ap, bp []float32) {
	_, k, n := gemmDims32(a, b, v)
	mr, nr := kernelMR32(), kernelNR32()
	dd := dst.Data
	nTiles := (n + nr - 1) / nr
	for p0 := 0; p0 < k; p0 += kcBlock {
		kc := k - p0
		if kc > kcBlock {
			kc = kcBlock
		}
		packBG(bp, b.Data, b.Rows(), b.Cols(), v, p0, kc, n, nr)
		first := p0 == 0
		for i0 := rs; i0 < re; i0 += mcBlock {
			ib := re - i0
			if ib > mcBlock {
				ib = mcBlock
			}
			packAG(ap, a.Data, a.Rows(), a.Cols(), v, i0, ib, p0, kc, mr)
			mTiles := (ib + mr - 1) / mr
			for it := 0; it < mTiles; it++ {
				mv := ib - it*mr
				if mv > mr {
					mv = mr
				}
				apTile := ap[it*kc*mr:]
				row0 := i0 + it*mr
				for jt := 0; jt < nTiles; jt++ {
					nv := n - jt*nr
					if nv > nr {
						nv = nr
					}
					bpTile := bp[jt*kc*nr:]
					c := dd[row0*n+jt*nr:]
					if mv == mr && nv == nr {
						switch {
						case useAVX512:
							micro8x16avx512F32(kc, &apTile[0], &bpTile[0], &c[0], n, first)
						case useAVX:
							micro4x8avxF32(kc, &apTile[0], &bpTile[0], &c[0], n, first)
						default:
							micro4x4G(kc, apTile, bpTile, c, n, first)
						}
					} else {
						microEdgeG(kc, apTile, bpTile, c, n, mv, nv, mr, nr, first)
					}
				}
			}
		}
	}
}
