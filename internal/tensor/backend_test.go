package tensor

import (
	"os"
	"os/exec"
	"strings"
	"testing"
)

// TestBackendsChain pins the shape of the fallback chain: the active
// backend leads, generic terminates, and every listed tier can actually
// be installed.
func TestBackendsChain(t *testing.T) {
	restoreBackend(t)
	chain := Backends()
	if len(chain) == 0 || chain[len(chain)-1] != "generic" {
		t.Fatalf("Backends() = %v, want a chain ending in generic", chain)
	}
	if chain[0] != KernelBackend() {
		t.Fatalf("chain head %q != active backend %q", chain[0], KernelBackend())
	}
	for _, bk := range chain {
		if err := SetBackend(bk); err != nil {
			t.Fatalf("SetBackend(%q) from own chain: %v", bk, err)
		}
		if got := KernelBackend(); got != bk {
			t.Fatalf("KernelBackend() = %q after SetBackend(%q)", got, bk)
		}
		if mr, nr := kernelMR(), kernelNR(); bk == "avx512" && (mr != 8 || nr != 8) || bk != "avx512" && (mr != 4 || nr != 4) {
			t.Fatalf("backend %q has tile %dx%d", bk, mr, nr)
		}
	}
}

// TestSetBackendRejectsUnknown checks unknown names error out clearly
// and leave dispatch untouched.
func TestSetBackendRejectsUnknown(t *testing.T) {
	before := KernelBackend()
	err := SetBackend("sse42")
	if err == nil {
		t.Fatal("SetBackend(\"sse42\") succeeded, want error")
	}
	if !strings.Contains(err.Error(), "unknown backend") || !strings.Contains(err.Error(), "sse42") {
		t.Fatalf("error %q does not name the unknown backend", err)
	}
	if got := KernelBackend(); got != before {
		t.Fatalf("failed SetBackend changed dispatch: %q -> %q", before, got)
	}
}

// TestSetBackendRejectsUnavailable checks a tier the host lacks is
// refused rather than silently downgraded. Some tier is always missing:
// no host has both neon and avx.
func TestSetBackendRejectsUnavailable(t *testing.T) {
	_, _, hasNEON := detectBackends()
	missing := "neon"
	if hasNEON {
		missing = "avx" // arm64 never has AVX
	}
	before := KernelBackend()
	if err := SetBackend(missing); err == nil {
		t.Fatalf("SetBackend(%q) succeeded on a host without it", missing)
	} else if !strings.Contains(err.Error(), "unavailable") {
		t.Fatalf("error %q does not say unavailable", err)
	}
	if got := KernelBackend(); got != before {
		t.Fatalf("failed SetBackend changed dispatch: %q -> %q", before, got)
	}
}

// TestBackendHonorsEnv re-execs the test binary with
// TENSOR_BACKEND=generic and checks init installed it; when already
// running under an override (e.g. the verify.sh forced-generic gate) it
// asserts directly against the environment instead.
func TestBackendHonorsEnv(t *testing.T) {
	if v := os.Getenv("TENSOR_BACKEND"); v != "" {
		if got := KernelBackend(); got != v {
			t.Fatalf("TENSOR_BACKEND=%s but KernelBackend() = %q", v, got)
		}
		return
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestBackendHonorsEnv$", "-test.v")
	cmd.Env = append(os.Environ(), "TENSOR_BACKEND=generic")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("forced-generic subprocess failed: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "PASS") {
		t.Fatalf("forced-generic subprocess did not pass:\n%s", out)
	}
}

// TestBackendEnvRejectsUnknown re-execs the test binary with a bogus
// TENSOR_BACKEND and expects a startup failure naming the value.
func TestBackendEnvRejectsUnknown(t *testing.T) {
	if os.Getenv("TENSOR_BACKEND") != "" {
		t.Skip("already under a TENSOR_BACKEND override")
	}
	cmd := exec.Command(os.Args[0], "-test.run=TestBackendsChain$")
	cmd.Env = append(os.Environ(), "TENSOR_BACKEND=quantum")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("bogus TENSOR_BACKEND did not fail startup:\n%s", out)
	}
	if !strings.Contains(string(out), "unknown backend") || !strings.Contains(string(out), "quantum") {
		t.Fatalf("startup failure does not name the bogus backend:\n%s", out)
	}
}
