package tensor

import "sync"

// The kernel scratch pool recycles the packing buffers of the blocked
// GEMM kernels so steady-state training performs no heap allocations:
// a warm train step requests the same buffer sizes in the same order
// every iteration, so after the first step every getBuf is a hit.
//
// The pool is a bounded LIFO: put pushes, get pops the most recent
// buffer large enough for the request. LIFO keeps the match stable for
// cyclic workloads (the same sequence of get/put sizes reuses the same
// buffers each cycle) and keeps recently touched memory cache-warm.
var kernelBufs struct {
	sync.Mutex
	bufs [][]float64
}

// kernelBufsCap bounds how many idle buffers the pool retains; beyond
// it, returned buffers are dropped for the GC. Deep nesting uses at most
// a few buffers per concurrent GEMM, so the bound is generous.
const kernelBufsCap = 64

// getBuf returns a length-n scratch slice, reusing pooled capacity when
// available. Contents are unspecified; callers must overwrite before
// reading.
func getBuf(n int) []float64 {
	kernelBufs.Lock()
	for i := len(kernelBufs.bufs) - 1; i >= 0; i-- {
		if cap(kernelBufs.bufs[i]) >= n {
			b := kernelBufs.bufs[i]
			last := len(kernelBufs.bufs) - 1
			kernelBufs.bufs[i] = kernelBufs.bufs[last]
			kernelBufs.bufs[last] = nil
			kernelBufs.bufs = kernelBufs.bufs[:last]
			kernelBufs.Unlock()
			return b[:n]
		}
	}
	kernelBufs.Unlock()
	return make([]float64, n)
}

// putBuf returns a buffer to the pool for reuse.
func putBuf(b []float64) {
	if cap(b) == 0 {
		return
	}
	kernelBufs.Lock()
	if len(kernelBufs.bufs) < kernelBufsCap {
		kernelBufs.bufs = append(kernelBufs.bufs, b[:0])
	}
	kernelBufs.Unlock()
}

// kernelBufs32 is the float32 arm's packing-scratch pool — same bounded
// LIFO discipline as kernelBufs, kept separate so the two widths never
// alias each other's backing arrays.
var kernelBufs32 struct {
	sync.Mutex
	bufs [][]float32
}

// getBuf32 returns a length-n float32 scratch slice, reusing pooled
// capacity when available. Contents are unspecified; callers must
// overwrite before reading.
func getBuf32(n int) []float32 {
	kernelBufs32.Lock()
	for i := len(kernelBufs32.bufs) - 1; i >= 0; i-- {
		if cap(kernelBufs32.bufs[i]) >= n {
			b := kernelBufs32.bufs[i]
			last := len(kernelBufs32.bufs) - 1
			kernelBufs32.bufs[i] = kernelBufs32.bufs[last]
			kernelBufs32.bufs[last] = nil
			kernelBufs32.bufs = kernelBufs32.bufs[:last]
			kernelBufs32.Unlock()
			return b[:n]
		}
	}
	kernelBufs32.Unlock()
	return make([]float32, n)
}

// putBuf32 returns a float32 buffer to the pool for reuse.
func putBuf32(b []float32) {
	if cap(b) == 0 {
		return
	}
	kernelBufs32.Lock()
	if len(kernelBufs32.bufs) < kernelBufsCap {
		kernelBufs32.bufs = append(kernelBufs32.bufs, b[:0])
	}
	kernelBufs32.Unlock()
}
