//go:build !amd64

package tensor

// useAVX is always false off amd64; the pure-Go micro-kernel runs.
var useAVX = false

// micro4x4avx is never called when useAVX is false.
func micro4x4avx(kc int, ap, bp, c *float64, ldc int, first bool) {
	panic("tensor: AVX micro-kernel called on non-amd64")
}
