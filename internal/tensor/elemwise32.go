package tensor

// Vectorized float32 elementwise kernels behind the same backend
// dispatch as the float64 layer (elemwise.go). The f32 lanes are twice
// as wide per vector — 16 on avx512 ZMM, 8 on avx YMM — which is the
// whole point of f32 mode on bandwidth-bound slices: the same cache
// traffic moves twice the elements. Scalar tails come from the shared
// generic core (generic.go), so both widths have one source of truth
// for the per-element semantics.
//
// Determinism: per-element independent, one rounding per multiply
// (VMULPS) and one per add (VADDPS), never fused — bit-identical to the
// generic scalar loops on every backend. NaN-exact activation masks use
// the same predicates as the float64 kernels (VCMPPS NLE_US).
//
// Aliasing: out may be exactly x (or g) or fully disjoint; partial
// overlap is not supported.

// Axpy32 computes y[i] += alpha·x[i] over len(x) float32 elements
// (len(y) must be at least len(x)).
func Axpy32(alpha float32, x, y []float32) {
	n := len(x)
	y = y[:n]
	i := 0
	switch {
	case useAVX512:
		if v := n &^ 15; v > 0 {
			axpyAVX512F32(alpha, &x[0], &y[0], v)
			i = v
		}
	case useAVX:
		if v := n &^ 7; v > 0 {
			axpyAVXF32(alpha, &x[0], &y[0], v)
			i = v
		}
	}
	axpyTailG(alpha, x, y, i)
}

// Scale32 computes x[i] *= alpha in place.
func Scale32(alpha float32, x []float32) {
	n := len(x)
	i := 0
	switch {
	case useAVX512:
		if v := n &^ 15; v > 0 {
			scaleAVX512F32(alpha, &x[0], v)
			i = v
		}
	case useAVX:
		if v := n &^ 7; v > 0 {
			scaleAVXF32(alpha, &x[0], v)
			i = v
		}
	}
	scaleTailG(alpha, x, i)
}

// Add32 computes y[i] += x[i] over len(x) elements.
func Add32(x, y []float32) {
	n := len(x)
	y = y[:n]
	i := 0
	switch {
	case useAVX512:
		if v := n &^ 15; v > 0 {
			addAVX512F32(&x[0], &y[0], v)
			i = v
		}
	case useAVX:
		if v := n &^ 7; v > 0 {
			addAVXF32(&x[0], &y[0], v)
			i = v
		}
	}
	addTailG(x, y, i)
}

// Fill32 sets every element of x to v.
func Fill32(x []float32, v float32) {
	for i := range x {
		x[i] = v
	}
}

// ReLUForward32 computes out[i] = x[i] if x[i] > 0 else 0, keeping NaN
// inputs (scalar branch semantics: zero only when v <= 0). Like the
// float64 activations, both amd64 tiers run the 8-wide YMM body —
// activations are bandwidth-bound and the NaN-exact compare masks are
// simplest in one encoding.
func ReLUForward32(x, out []float32) {
	n := len(x)
	out = out[:n]
	i := 0
	if useAVX || useAVX512 {
		if v := n &^ 7; v > 0 {
			reluFwdAVXF32(&x[0], &out[0], v)
			i = v
		}
	}
	reluFwdTailG(x, out, i)
}

// ReLUBackward32 computes out[i] = g[i] if x[i] > 0 else 0, passing the
// gradient through for NaN x (scalar branch semantics).
func ReLUBackward32(x, g, out []float32) {
	n := len(x)
	g, out = g[:n], out[:n]
	i := 0
	if useAVX || useAVX512 {
		if v := n &^ 7; v > 0 {
			reluBwdAVXF32(&x[0], &g[0], &out[0], v)
			i = v
		}
	}
	reluBwdTailG(x, g, out, i)
}

// LeakyReLUForward32 computes out[i] = alpha·x[i] if x[i] < 0 else x[i]
// (NaN inputs pass through unscaled, matching the scalar branch). The
// generic core serves every backend: the f32 leaky path has no hot
// caller, so it rides the shared scalar body.
func LeakyReLUForward32(alpha float32, x, out []float32) {
	out = out[:len(x)]
	leakyFwdTailG(alpha, x, out, 0)
}

// LeakyReLUBackward32 computes out[i] = alpha·g[i] if x[i] < 0 else
// g[i].
func LeakyReLUBackward32(alpha float32, x, g, out []float32) {
	g, out = g[:len(x)], out[:len(x)]
	leakyBwdTailG(alpha, x, g, out, 0)
}
