package tensor

import "sync/atomic"

// Parallel is the kernel-side view of an execution pool. It is satisfied
// by *engine.Pool: ForWorker runs task(w, i) for every i in [0, n) with
// concurrent tasks observing distinct lane ids w < min(Workers, n).
//
// The tensor package deliberately does not import the engine package:
// kernels only need this two-method contract, and keeping the dependency
// inverted lets the tensor tests drive the parallel path with a stub.
type Parallel interface {
	ForWorker(n int, task func(worker, i int))
	Workers() int
}

// parallelBox wraps the hook so an atomic.Value can hold "no pool"
// (a nil interface) without panicking on inconsistent concrete types.
type parallelBox struct{ p Parallel }

var parallelHook atomic.Value // parallelBox

// SetParallel installs p as the backend large kernels fan out on; nil
// reverts to sequential execution. The fl round loop installs its engine
// pool here so kernel-level parallelism is scheduled (and stolen) by the
// same work-stealing deques as client training and evaluation, instead
// of spawning raw goroutines that oversubscribe the host.
//
// The hook is process-global and may be swapped at any time, including
// concurrently with running kernels: every kernel partitions output rows
// into fixed-size stripes whose elements are each computed entirely by
// one task in a fixed order, so results are bit-identical whichever pool
// (or no pool) executes them.
func SetParallel(p Parallel) { parallelHook.Store(parallelBox{p: p}) }

// ClearParallel uninstalls p if (and only if) it is the currently
// installed hook. Callers that installed their own pool use it on the
// way out so they never strip a hook a concurrent caller has since
// installed.
func ClearParallel(p Parallel) {
	if b, ok := parallelHook.Load().(parallelBox); ok && b.p == p {
		parallelHook.CompareAndSwap(b, parallelBox{})
	}
}

// parallelHinted is the optional steal-aware extension of Parallel
// (satisfied by *engine.Pool): ForWorkerHinted carries a size class
// (0 coarse, 1 fine) and nesting depth so microsecond-scale kernel
// fan-outs are scheduled ahead of stolen millisecond-scale outer tasks.
// Declared structurally to keep the tensor→engine dependency inverted.
type parallelHinted interface {
	ForWorkerHinted(n, size, depth int, task func(worker, i int))
}

// forWorkerFine fans a kernel loop out with the fine-grained, nested
// hint (size 1, depth 1: GEMM stripes always run under an outer task —
// a grid cell, round loop or evaluator chunk) when the pool supports
// hints, and falls back to the plain contract otherwise. Hints only
// affect scheduling order, never the index→task mapping, so results
// stay bit-identical.
func forWorkerFine(pl Parallel, n int, task func(worker, i int)) {
	if h, ok := pl.(parallelHinted); ok {
		h.ForWorkerHinted(n, 1, 1, task)
		return
	}
	pl.ForWorker(n, task)
}

// currentParallel returns the installed hook, or nil for sequential.
// A hook whose pool reports itself closed counts as absent: kernels
// fall back to the sequential path instead of publishing entries no
// worker will ever drain.
func currentParallel() Parallel {
	b, ok := parallelHook.Load().(parallelBox)
	if !ok || b.p == nil {
		return nil
	}
	if c, ok := b.p.(interface{ Closed() bool }); ok && c.Closed() {
		return nil
	}
	return b.p
}
