package tensor

import (
	"fmt"
	"testing"

	"feddrl/internal/rng"
)

// fillRandom populates t with Normal(0,1) deviates, including exact
// zeros sprinkled in (the post-ReLU activation pattern the old kernels
// special-cased) so the bit-identity matrix also covers signed-zero
// arithmetic.
func fillRandom(t *Tensor, r *rng.RNG) {
	for i := range t.Data {
		if r.Intn(8) == 0 {
			t.Data[i] = 0
		} else {
			t.Data[i] = r.Normal(0, 1)
		}
	}
}

// gemmOperands builds the variant's physical operand shapes for a
// logical M×K×N product.
func gemmOperands(v gemmVariant, m, k, n int) (a, b, dst *Tensor) {
	switch v {
	case gemmAT:
		return New(k, m), New(k, n), New(m, n)
	case gemmBT:
		return New(m, k), New(n, k), New(m, n)
	default:
		return New(m, k), New(k, n), New(m, n)
	}
}

// restoreBackend snapshots the active kernel backend and re-installs it
// when the test finishes, so tests can walk the fallback chain freely.
func restoreBackend(t *testing.T) {
	t.Helper()
	orig := KernelBackend()
	t.Cleanup(func() {
		if err := SetBackend(orig); err != nil {
			t.Fatalf("restoring backend %q: %v", orig, err)
		}
	})
}

// TestBlockedBitIdentity is the kernel determinism gate (run explicitly
// by scripts/verify.sh, including a TENSOR_BACKEND=generic pass): for
// all three GEMM variants and every backend in the host's fallback
// chain (each wider tier force-disabled in turn down to generic), the
// blocked kernel must reproduce the naive triple loop BIT for bit
// across shapes chosen to straddle every tile and block boundary —
// 1×1, primes, exact 4- and 8-wide tile multiples, one-off-the-tile,
// tall/skinny and wide/flat.
func TestBlockedBitIdentity(t *testing.T) {
	shapes := [][3]int{
		{1, 1, 1},
		{1, 7, 1},
		{3, 5, 2},
		{4, kcBlock, 4},         // exact 4-wide tile, one full k panel
		{8, kcBlock, 8},         // exact 8-wide (avx512) tile
		{5, kcBlock + 1, 5},     // one past the 4-wide tile and panel
		{9, kcBlock + 1, 9},     // one past the 8-wide tile and panel
		{7, kcBlock - 1, 7},     // one short of the 8-wide tile and panel
		{13, 17, 11},
		{mcBlock, 31, 12},
		{mcBlock + 3, kcBlock*2 + 5, 9},
		{257, 19, 23},   // tall/skinny, prime rows
		{5, 23, 129},    // wide/flat
		{2, 300, 2},     // k spans two panels with tiny tiles
		{131, 131, 131}, // primes straddling every block
	}
	variants := []struct {
		name string
		v    gemmVariant
	}{{"NN", gemmNN}, {"AT", gemmAT}, {"BT", gemmBT}}
	restoreBackend(t)
	chain := Backends()
	for _, bk := range chain {
		if err := SetBackend(bk); err != nil {
			t.Fatalf("SetBackend(%q): %v", bk, err)
		}
		for _, vt := range variants {
			for _, sh := range shapes {
				m, k, n := sh[0], sh[1], sh[2]
				t.Run(fmt.Sprintf("%s_%s_%dx%dx%d", bk, vt.name, m, k, n), func(t *testing.T) {
					r := rng.New(uint64(m*1000003 + k*1009 + n))
					a, b, got := gemmOperands(vt.v, m, k, n)
					fillRandom(a, r)
					fillRandom(b, r)
					want := New(m, n)
					gemmNaive(want, a, b, vt.v)

					// Force the blocked kernel regardless of the dispatch
					// threshold.
					kc := k
					if kc > kcBlock {
						kc = kcBlock
					}
					ap := getBuf(apSize(m, kc, kernelMR()))
					bp := getBuf(bpSize(n, kc, kernelNR()))
					gemmBlockedRange(got, a, b, vt.v, 0, m, ap, bp)
					putBuf(bp)
					putBuf(ap)
					for i := range got.Data {
						if got.Data[i] != want.Data[i] {
							t.Fatalf("blocked[%d] = %x, naive = %x", i, got.Data[i], want.Data[i])
						}
					}

					// The public entry (whatever path it dispatches to) must
					// agree too.
					pub := New(m, n)
					switch vt.v {
					case gemmAT:
						MatMulATInto(pub, a, b)
					case gemmBT:
						MatMulBTInto(pub, a, b)
					default:
						MatMulInto(pub, a, b)
					}
					for i := range pub.Data {
						if pub.Data[i] != want.Data[i] {
							t.Fatalf("dispatch[%d] = %x, naive = %x", i, pub.Data[i], want.Data[i])
						}
					}
				})
			}
		}
	}
	// The chain always ends at generic, so every wider tier the host (or
	// the TENSOR_BACKEND override) exposes was also run force-disabled.
	if chain[len(chain)-1] != "generic" {
		t.Fatalf("fallback chain %v does not end at generic", chain)
	}
}

// stubPool is a deterministic Parallel implementation that runs tasks
// inline but reports several lanes, driving the stripe-partitioned path.
type stubPool struct{ workers int }

func (s *stubPool) Workers() int { return s.workers }
func (s *stubPool) ForWorker(n int, task func(worker, i int)) {
	for i := 0; i < n; i++ {
		task(i%s.workers, i)
	}
}

// TestParallelStripesBitIdentical drives the pool-hook path at several
// widths, for every backend in the fallback chain, and checks the
// stripe decomposition changes nothing.
func TestParallelStripesBitIdentical(t *testing.T) {
	defer SetParallel(nil)
	restoreBackend(t)
	r := rng.New(7)
	m, k, n := stripeRows*3+17, 70, 40
	a, b := New(m, k), New(k, n)
	fillRandom(a, r)
	fillRandom(b, r)
	want := New(m, n)
	SetParallel(nil)
	MatMulInto(want, a, b)
	for _, bk := range Backends() {
		if err := SetBackend(bk); err != nil {
			t.Fatalf("SetBackend(%q): %v", bk, err)
		}
		for _, w := range []int{2, 3, 8} {
			SetParallel(&stubPool{workers: w})
			got := New(m, n)
			MatMulInto(got, a, b)
			for i := range got.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s workers=%d: [%d] = %x, want %x", bk, w, i, got.Data[i], want.Data[i])
				}
			}
		}
		SetParallel(nil)
	}
}

// TestIm2ColBatchMatchesPerSample checks the whole-batch lowering is
// exactly the per-sample lowering stacked, and that Col2ImBatch is its
// adjoint applied per row block.
func TestIm2ColBatchMatchesPerSample(t *testing.T) {
	g := ConvGeom{InC: 2, InH: 5, InW: 4, K: 3, Stride: 1, Pad: 1}
	batch := 3
	r := rng.New(11)
	x := New(batch, g.InC*g.InH*g.InW)
	fillRandom(x, r)
	ohw := g.OutH() * g.OutW()
	patch := g.InC * g.K * g.K
	cols := New(batch*ohw, patch)
	Im2ColBatch(g, x, cols)
	single := New(ohw, patch)
	for i := 0; i < batch; i++ {
		Im2Col(g, x.Row(i), single)
		for j, v := range single.Data {
			if cols.Data[i*ohw*patch+j] != v {
				t.Fatalf("sample %d element %d: batch %v, single %v", i, j, cols.Data[i*ohw*patch+j], v)
			}
		}
	}

	grad := New(batch*ohw, patch)
	fillRandom(grad, r)
	imgs := New(batch, g.InC*g.InH*g.InW)
	Col2ImBatch(g, grad, imgs)
	for i := 0; i < batch; i++ {
		ref := make([]float64, g.InC*g.InH*g.InW)
		gi := FromSlice(grad.Data[i*ohw*patch:(i+1)*ohw*patch], ohw, patch)
		Col2Im(g, gi, ref)
		for j, v := range ref {
			if imgs.At(i, j) != v {
				t.Fatalf("sample %d grad element %d: batch %v, single %v", i, j, imgs.At(i, j), v)
			}
		}
	}
}

// TestKernelScratchReuse pins the allocation-free property of the
// kernels themselves: warm MatMul*Into calls must not allocate.
func TestKernelScratchReuse(t *testing.T) {
	r := rng.New(3)
	m, k, n := 160, 96, 32
	a, b := New(m, k), New(k, n)
	at, bt := New(k, m), New(n, k)
	fillRandom(a, r)
	fillRandom(b, r)
	fillRandom(at, r)
	fillRandom(bt, r)
	dst := New(m, n)
	step := func() {
		MatMulInto(dst, a, b)
		MatMulATInto(dst, at, b)
		MatMulBTInto(dst, a, bt)
	}
	step() // populate the scratch pool
	if allocs := testing.AllocsPerRun(10, step); allocs != 0 {
		t.Fatalf("warm blocked kernels allocate %.1f times per run, want 0", allocs)
	}
}

func benchGEMMPair(b *testing.B, m, k, n int) {
	r := rng.New(1)
	a, bb := New(m, k), New(k, n)
	fillRandom(a, r)
	fillRandom(bb, r)
	dst := New(m, n)
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			gemmNaive(dst, a, bb, gemmNN)
		}
	})
	b.Run("blocked", func(b *testing.B) {
		kc := k
		if kc > kcBlock {
			kc = kcBlock
		}
		ap := getBuf(apSize(m, kc, kernelMR()))
		bp := getBuf(bpSize(n, kc, kernelNR()))
		defer putBuf(ap)
		defer putBuf(bp)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			gemmBlockedRange(dst, a, bb, gemmNN, 0, m, ap, bp)
		}
	})
}

func BenchmarkGEMM256(b *testing.B)     { benchGEMMPair(b, 256, 256, 256) }
func BenchmarkGEMM512(b *testing.B)     { benchGEMMPair(b, 512, 512, 512) }
func BenchmarkGEMMConvVGG(b *testing.B) { benchGEMMPair(b, 2560, 288, 32) }
