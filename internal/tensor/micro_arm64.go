//go:build arm64

package tensor

// detectBackends on arm64: ASIMD (NEON) is architecturally baseline, so
// the 2-wide kernel is always safe; the amd64 tiers never apply.
func detectBackends() (avx512, avx, neon bool) {
	return false, false, true
}

// microNeon4x4 is the NEON implementation of the full-tile micro-kernel:
// one 4×4 output tile in eight float64x2 accumulators. The vector
// multiply and add are hand-encoded unfused FMUL/FADD (the Go arm64
// assembler only exposes the fused VFMLA), so each element still rounds
// once per multiply and once per add — bit-identical to micro4x4.
// Implemented in micro_arm64.s.
func microNeon4x4(kc int, ap, bp, c *float64, ldc int, first bool)
