package tensor

// Vectorized elementwise kernels behind the same backend dispatch as the
// blocked GEMM (backend.go). Eq. 4 aggregation and SGD updates are
// Axpy-bound once GEMM is fast, and the activation loops dominate the
// non-GEMM share of a train step — so all of them get SIMD bodies on
// amd64 with scalar tails here.
//
// Determinism: elementwise ops are per-element independent, so splitting
// a slice into a vector body and a scalar tail cannot change any
// element's rounding; each kernel still performs one rounding per
// multiply and one per add, never fused. The scalar tails come from the
// generic element core (generic.go), shared with the float32 layer
// (elemwise32.go); they spell the multiply as E(a*b), the explicit
// conversion that forces the product to round before the add and by the
// Go spec forbids compiler FMA contraction (the arm64 compiler
// otherwise emits FMADD) — a no-op on amd64 and the reason generic
// results are bit-identical across GOARCHes.
//
// Aliasing: out may be exactly x (or g) or fully disjoint; partial
// overlap is not supported.

// Axpy computes y[i] += alpha·x[i] over len(x) elements (len(y) must be
// at least len(x)).
func Axpy(alpha float64, x, y []float64) {
	n := len(x)
	y = y[:n]
	i := 0
	switch {
	case useAVX512:
		if v := n &^ 7; v > 0 {
			axpyAVX512(alpha, &x[0], &y[0], v)
			i = v
		}
	case useAVX:
		if v := n &^ 3; v > 0 {
			axpyAVX(alpha, &x[0], &y[0], v)
			i = v
		}
	}
	axpyTailG(alpha, x, y, i)
}

// Scale computes x[i] *= alpha in place.
func Scale(alpha float64, x []float64) {
	n := len(x)
	i := 0
	switch {
	case useAVX512:
		if v := n &^ 7; v > 0 {
			scaleAVX512(alpha, &x[0], v)
			i = v
		}
	case useAVX:
		if v := n &^ 3; v > 0 {
			scaleAVX(alpha, &x[0], v)
			i = v
		}
	}
	scaleTailG(alpha, x, i)
}

// Add computes y[i] += x[i] over len(x) elements.
func Add(x, y []float64) {
	n := len(x)
	y = y[:n]
	i := 0
	switch {
	case useAVX512:
		if v := n &^ 7; v > 0 {
			addAVX512(&x[0], &y[0], v)
			i = v
		}
	case useAVX:
		if v := n &^ 3; v > 0 {
			addAVX(&x[0], &y[0], v)
			i = v
		}
	}
	addTailG(x, y, i)
}

// ReLUForward computes out[i] = x[i] if x[i] > 0 else 0, keeping NaN
// inputs (scalar branch semantics: zero only when v <= 0).
func ReLUForward(x, out []float64) {
	n := len(x)
	out = out[:n]
	i := 0
	if useAVX || useAVX512 {
		if v := n &^ 3; v > 0 {
			reluFwdAVX(&x[0], &out[0], v)
			i = v
		}
	}
	reluFwdTailG(x, out, i)
}

// ReLUBackward computes out[i] = g[i] if x[i] > 0 else 0, passing the
// gradient through for NaN x (scalar branch semantics).
func ReLUBackward(x, g, out []float64) {
	n := len(x)
	g, out = g[:n], out[:n]
	i := 0
	if useAVX || useAVX512 {
		if v := n &^ 3; v > 0 {
			reluBwdAVX(&x[0], &g[0], &out[0], v)
			i = v
		}
	}
	reluBwdTailG(x, g, out, i)
}

// LeakyReLUForward computes out[i] = alpha·x[i] if x[i] < 0 else x[i]
// (NaN inputs pass through unscaled, matching the scalar branch).
func LeakyReLUForward(alpha float64, x, out []float64) {
	n := len(x)
	out = out[:n]
	i := 0
	if useAVX || useAVX512 {
		if v := n &^ 3; v > 0 {
			leakyFwdAVX(alpha, &x[0], &out[0], v)
			i = v
		}
	}
	leakyFwdTailG(alpha, x, out, i)
}

// LeakyReLUBackward computes out[i] = alpha·g[i] if x[i] < 0 else g[i].
func LeakyReLUBackward(alpha float64, x, g, out []float64) {
	n := len(x)
	g, out = g[:n], out[:n]
	i := 0
	if useAVX || useAVX512 {
		if v := n &^ 3; v > 0 {
			leakyBwdAVX(alpha, &x[0], &g[0], &out[0], v)
			i = v
		}
	}
	leakyBwdTailG(alpha, x, g, out, i)
}
