package tensor

import "testing"

func TestBind2DMatchesFromSlice(t *testing.T) {
	back := make([]float64, 24)
	for i := range back {
		back[i] = float64(i)
	}
	var hdr Tensor
	for _, win := range []struct{ off, rows, cols int }{{0, 2, 3}, {6, 3, 3}, {0, 4, 6}} {
		data := back[win.off : win.off+win.rows*win.cols]
		got := hdr.Bind2D(data, win.rows, win.cols)
		want := FromSlice(data, win.rows, win.cols)
		if got != &hdr {
			t.Fatal("Bind2D must return the receiver")
		}
		if got.Rows() != want.Rows() || got.Cols() != want.Cols() {
			t.Fatalf("shape (%d,%d), want (%d,%d)", got.Rows(), got.Cols(), want.Rows(), want.Cols())
		}
		if &got.Data[0] != &data[0] {
			t.Fatal("Bind2D copied the data")
		}
	}
}

// TestBind2DWarmAllocsZero: after the first bind creates the Shape
// header, rebinding allocates nothing — the property the evaluation
// arenas rely on.
func TestBind2DWarmAllocsZero(t *testing.T) {
	back := make([]float64, 12)
	var hdr Tensor
	hdr.Bind2D(back, 3, 4)
	if allocs := testing.AllocsPerRun(100, func() {
		hdr.Bind2D(back[:6], 2, 3)
		hdr.Bind2D(back, 4, 3)
	}); allocs > 0 {
		t.Fatalf("warm Bind2D allocates %v per run", allocs)
	}
}

func TestBind2DPanics(t *testing.T) {
	var hdr Tensor
	for _, f := range []func(){
		func() { hdr.Bind2D(make([]float64, 5), 2, 3) },
		func() { hdr.Bind2D(nil, 0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid Bind2D did not panic")
				}
			}()
			f()
		}()
	}
}
