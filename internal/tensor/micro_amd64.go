//go:build amd64

package tensor

// cpuHasAVX reports whether the CPU and OS support AVX (CPUID feature
// bit plus XGETBV state check). Implemented in micro_amd64.s.
func cpuHasAVX() bool

// cpuHasAVX512 reports whether the CPU and OS support AVX-512F: OSXSAVE,
// XCR0 opmask/ZMM state enabled by the OS (mask 0xe6), and the AVX512F
// CPUID leaf-7 feature bit. Implemented in micro_amd64.s.
func cpuHasAVX512() bool

// detectBackends probes the host once at init (backend.go): amd64 offers
// avx512 and avx tiers, never neon.
func detectBackends() (avx512, avx, neon bool) {
	avx = cpuHasAVX()
	avx512 = avx && cpuHasAVX512()
	return avx512, avx, false
}

// micro4x4avx is the AVX implementation of the full-tile micro-kernel.
// It is bit-identical to micro4x4: each lane multiplies then adds with
// one rounding per operation, never fusing. Implemented in
// micro_amd64.s.
func micro4x4avx(kc int, ap, bp, c *float64, ldc int, first bool)

// micro8x8avx512 is the AVX-512 full-tile micro-kernel: one 8×8 output
// tile held in eight ZMM accumulators across the packed panel, VMULPD +
// VADDPD per row (never fused), bit-identical to an 8×8 walk of the
// scalar kernel. Implemented in micro_amd64.s.
func micro8x8avx512(kc int, ap, bp, c *float64, ldc int, first bool)

// Elementwise vector bodies (micro_amd64.s). Each processes exactly n
// elements where the Go wrapper in elemwise.go guarantees n is a
// positive multiple of the lane width (4 for AVX, 8 for AVX-512) and
// handles the scalar tail. All are multiply-round/add-round per element,
// bit-identical to the scalar loops.
func axpyAVX(alpha float64, x, y *float64, n int)
func axpyAVX512(alpha float64, x, y *float64, n int)
func scaleAVX(alpha float64, x *float64, n int)
func scaleAVX512(alpha float64, x *float64, n int)
func addAVX(x, y *float64, n int)
func addAVX512(x, y *float64, n int)

// Activation kernels run 4-wide YMM on both amd64 tiers (the avx512 tier
// reuses them: activations are bandwidth-bound, so wider vectors buy
// little, and the NaN-exact compare masks are simplest in one encoding).
func reluFwdAVX(x, out *float64, n int)
func reluBwdAVX(x, grad, out *float64, n int)
func leakyFwdAVX(alpha float64, x, out *float64, n int)
func leakyBwdAVX(alpha float64, x, grad, out *float64, n int)
