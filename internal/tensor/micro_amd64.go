//go:build amd64

package tensor

// cpuHasAVX reports whether the CPU and OS support AVX (CPUID feature
// bit plus XGETBV state check). Implemented in micro_amd64.s.
func cpuHasAVX() bool

// cpuHasAVX512 reports whether the CPU and OS support AVX-512F: OSXSAVE,
// XCR0 opmask/ZMM state enabled by the OS (mask 0xe6), and the AVX512F
// CPUID leaf-7 feature bit. Implemented in micro_amd64.s.
func cpuHasAVX512() bool

// detectBackends probes the host once at init (backend.go): amd64 offers
// avx512 and avx tiers, never neon.
func detectBackends() (avx512, avx, neon bool) {
	avx = cpuHasAVX()
	avx512 = avx && cpuHasAVX512()
	return avx512, avx, false
}

// micro4x4avx is the AVX implementation of the full-tile micro-kernel.
// It is bit-identical to micro4x4: each lane multiplies then adds with
// one rounding per operation, never fusing. Implemented in
// micro_amd64.s.
func micro4x4avx(kc int, ap, bp, c *float64, ldc int, first bool)

// micro8x8avx512 is the AVX-512 full-tile micro-kernel: one 8×8 output
// tile held in eight ZMM accumulators across the packed panel, VMULPD +
// VADDPD per row (never fused), bit-identical to an 8×8 walk of the
// scalar kernel. Implemented in micro_amd64.s.
func micro8x8avx512(kc int, ap, bp, c *float64, ldc int, first bool)

// Elementwise vector bodies (micro_amd64.s). Each processes exactly n
// elements where the Go wrapper in elemwise.go guarantees n is a
// positive multiple of the lane width (4 for AVX, 8 for AVX-512) and
// handles the scalar tail. All are multiply-round/add-round per element,
// bit-identical to the scalar loops.
func axpyAVX(alpha float64, x, y *float64, n int)
func axpyAVX512(alpha float64, x, y *float64, n int)
func scaleAVX(alpha float64, x *float64, n int)
func scaleAVX512(alpha float64, x *float64, n int)
func addAVX(x, y *float64, n int)
func addAVX512(x, y *float64, n int)

// Activation kernels run 4-wide YMM on both amd64 tiers (the avx512 tier
// reuses them: activations are bandwidth-bound, so wider vectors buy
// little, and the NaN-exact compare masks are simplest in one encoding).
func reluFwdAVX(x, out *float64, n int)
func reluBwdAVX(x, grad, out *float64, n int)
func leakyFwdAVX(alpha float64, x, out *float64, n int)
func leakyBwdAVX(alpha float64, x, grad, out *float64, n int)

// Float32 micro-kernels (micro_amd64.s). Same determinism contract at
// half width: VMULPS then VADDPS, one rounding each, never fused, so
// every tier is bit-identical to the generic float32 core.

// micro4x8avxF32 computes one full 4×8 float32 output tile over a
// kc-long packed panel: four rows in four YMM accumulators (8 floats
// each), one broadcast per packed A value against the packed B vector.
func micro4x8avxF32(kc int, ap, bp, c *float32, ldc int, first bool)

// micro8x16avx512F32 computes one full 8×16 float32 output tile: eight
// rows in eight ZMM accumulators (16 floats each).
func micro8x16avx512F32(kc int, ap, bp, c *float32, ldc int, first bool)

// Float32 elementwise vector bodies. n is a positive multiple of the
// lane width (8 for AVX YMM, 16 for AVX-512 ZMM); wrappers in
// elemwise32.go enforce it and run the generic tail.
func axpyAVXF32(alpha float32, x, y *float32, n int)
func axpyAVX512F32(alpha float32, x, y *float32, n int)
func scaleAVXF32(alpha float32, x *float32, n int)
func scaleAVX512F32(alpha float32, x *float32, n int)
func addAVXF32(x, y *float32, n int)
func addAVX512F32(x, y *float32, n int)

// Float32 activation kernels run 8-wide YMM on both amd64 tiers,
// mirroring the float64 policy (bandwidth-bound; one NaN-exact
// encoding).
func reluFwdAVXF32(x, out *float32, n int)
func reluBwdAVXF32(x, grad, out *float32, n int)
