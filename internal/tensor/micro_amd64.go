//go:build amd64

package tensor

// cpuHasAVX reports whether the CPU and OS support AVX (CPUID feature
// bit plus XGETBV state check). Implemented in micro_amd64.s.
func cpuHasAVX() bool

// micro4x4avx is the AVX implementation of the full-tile micro-kernel.
// It is bit-identical to micro4x4: each lane multiplies then adds with
// one rounding per operation, never fusing. Implemented in
// micro_amd64.s.
func micro4x4avx(kc int, ap, bp, c *float64, ldc int, first bool)

// useAVX gates the vector micro-kernel; tests flip it to cover the
// pure-Go fallback on AVX hosts.
var useAVX = cpuHasAVX()
