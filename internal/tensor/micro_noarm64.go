//go:build !arm64

package tensor

// microNeon4x4 is never called when useNEON is false.
func microNeon4x4(kc int, ap, bp, c *float64, ldc int, first bool) {
	panic("tensor: NEON micro-kernel called on non-arm64")
}
