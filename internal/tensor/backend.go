package tensor

import (
	"fmt"
	"os"
)

// Kernel backend dispatch. The numeric kernels — the blocked GEMM
// micro-kernels (blocked.go, blocked32.go) and the vectorized
// elementwise layers (elemwise.go, elemwise32.go) — are
// precision-parametric: every tier serves both element widths, with
// f32 vectors carrying twice the lanes of their f64 twins:
//
//	backend   f64 lanes / GEMM tile      f32 lanes / GEMM tile
//	avx512    8-wide ZMM, 8×8 tiles      16-wide ZMM, 8×16 tiles
//	avx       4-wide YMM, 4×4 tiles      8-wide YMM, 4×8 tiles
//	neon      2-wide, 4×4 tiles          generic core (no f32 kernel)
//	generic   pure Go, 4×4 tiles         pure Go, 4×4 tiles
//
// (amd64 offers avx512/avx, arm64 neon; the generic core covers every
// GOARCH and both widths via the shared generic element kernels of
// generic.go.)
//
// Every tier obeys the same determinism contract: one rounding per
// multiply and one per add, never fused, with each output element
// accumulated along a single ascending-k chain. Vector width only
// changes how many independent element chains advance per instruction,
// never the per-element operation order, so all backends are
// BIT-identical to the generic reference (test-enforced per backend and
// with each backend force-disabled; the scalar kernels force
// per-operation rounding with explicit float64(·) conversions to block
// compiler FMA contraction — see blocked.go).
//
// Dispatch order is widest-first: avx512 → avx → generic on amd64,
// neon → generic on arm64. The TENSOR_BACKEND environment variable
// forces a narrower tier (it can never enable hardware the host lacks),
// so CI and benchmarks can compare backends on one machine; an unknown
// or unsupported value fails loudly at process start rather than
// silently falling back.
var (
	// useAVX512 gates the 8-wide ZMM micro-kernels (amd64 with
	// OS-enabled AVX-512F). Tests flip it to force the fallback chain.
	useAVX512 bool
	// useAVX gates the 4-wide YMM micro-kernels (amd64 with OS-enabled
	// AVX). Tests flip it to cover the pure-Go fallback on AVX hosts.
	useAVX bool
	// useNEON gates the 2-wide float64x2 micro-kernel (arm64; ASIMD is
	// architecturally baseline there).
	useNEON bool
)

func init() {
	useAVX512, useAVX, useNEON = detectBackends()
	if v := os.Getenv("TENSOR_BACKEND"); v != "" {
		if err := SetBackend(v); err != nil {
			panic(fmt.Sprintf("tensor: invalid TENSOR_BACKEND: %v", err))
		}
	}
}

// KernelBackend reports which kernel implementation tier is active:
// "avx512", "avx", "neon" or "generic". All tiers are bit-identical;
// only throughput differs. Benchmarks record it per measurement so perf
// expectations can be keyed to the backend, and the TENSOR_BACKEND
// override surfaces here so a forced run is self-describing.
func KernelBackend() string {
	switch {
	case useAVX512:
		return "avx512"
	case useAVX:
		return "avx"
	case useNEON:
		return "neon"
	default:
		return "generic"
	}
}

// SetBackend forces dispatch to the named tier ("avx512", "avx", "neon"
// or "generic"). Requesting hardware the host does not have, or an
// unknown name, is an error and leaves dispatch unchanged — init turns
// that into a startup panic for TENSOR_BACKEND so a typo in CI
// configuration cannot silently benchmark the wrong kernels. Not safe
// to call concurrently with running kernels; it exists for process
// start, tests and benchmark harnesses.
func SetBackend(name string) error {
	hasAVX512, hasAVX, hasNEON := detectBackends()
	switch name {
	case "generic":
		useAVX512, useAVX, useNEON = false, false, false
	case "avx":
		if !hasAVX {
			return fmt.Errorf("tensor: backend avx unavailable: host has no OS-enabled AVX")
		}
		useAVX512, useAVX, useNEON = false, true, false
	case "avx512":
		if !hasAVX512 {
			return fmt.Errorf("tensor: backend avx512 unavailable: host has no OS-enabled AVX-512F")
		}
		useAVX512, useAVX, useNEON = true, true, false
	case "neon":
		if !hasNEON {
			return fmt.Errorf("tensor: backend neon unavailable: host is not arm64")
		}
		useAVX512, useAVX, useNEON = false, false, true
	default:
		return fmt.Errorf("tensor: unknown backend %q (valid: avx512, avx, neon, generic)", name)
	}
	return nil
}

// Backends lists the kernel tiers reachable from the active dispatch
// state, widest first, always ending in "generic" — the fallback chain
// the dispatcher walks. Under a TENSOR_BACKEND override the chain
// starts at the forced tier, so a forced-generic run reports (and
// tests/benchmarks cover) exactly the generic kernels.
func Backends() []string {
	var out []string
	if useAVX512 {
		out = append(out, "avx512")
	}
	if useAVX {
		out = append(out, "avx")
	}
	if useNEON {
		out = append(out, "neon")
	}
	return append(out, "generic")
}

// kernelMR and kernelNR are the register-tile dimensions of the active
// GEMM backend: the avx512 micro-kernel computes 8×8 output tiles, all
// others 4×4. Tile geometry cannot change results — every output
// element's accumulation chain is the same whatever tile it lands in —
// so backends with different geometry stay bit-identical.
func kernelMR() int {
	if useAVX512 {
		return 8
	}
	return 4
}

func kernelNR() int {
	if useAVX512 {
		return 8
	}
	return 4
}

// kernelMR32 and kernelNR32 are the register-tile dimensions of the
// active GEMM backend's float32 micro-kernel: 8×16 ZMM tiles on avx512,
// 4×8 YMM tiles on avx, 4×4 otherwise (neon has no f32 kernel and runs
// the portable generic tile). As with the f64 geometry, tiling cannot
// change results — every output element's accumulation chain is the
// same whatever tile it lands in.
func kernelMR32() int {
	if useAVX512 {
		return 8
	}
	return 4
}

func kernelNR32() int {
	switch {
	case useAVX512:
		return 16
	case useAVX:
		return 8
	}
	return 4
}
