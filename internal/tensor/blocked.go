package tensor

// Blocked GEMM kernels. All three matrix-product variants (A·B, Aᵀ·B,
// A·Bᵀ) funnel into one cache-blocked, register-tiled kernel:
//
//   - The reduction dimension is split into kcBlock panels. For each
//     panel, B's rows are packed into nr-wide column tiles and A's
//     rows into mr-tall row tiles, so the innermost loops stream
//     contiguous memory regardless of the variant's transpose.
//   - Each mr×nr output tile is computed by a micro-kernel that
//     keeps the whole tile in local accumulators across the panel:
//     mr·nr multiply-adds per mr+nr loads, versus the naive kernel's
//     one load+store of the output element per term.
//
// The register-tile geometry (mr, nr) is the active backend's
// (kernelMR/kernelNR in backend.go): 8×8 for the avx512 kernel, 4×4
// otherwise. Geometry only regroups which elements are computed
// together; it cannot affect any element's value (see below).
//
// Determinism contract: every output element accumulates its reduction
// terms in ascending k order into a single accumulator chain — k panels
// are visited in ascending order and the micro-kernel walks a panel in
// ascending k — which is exactly the naive triple loop's order. The
// store/reload of the output tile between panels is exact, so blocked
// results are bit-identical to the naive kernels on every backend
// (test-enforced across tile-straddling shapes, and gated in
// scripts/verify.sh). The scalar kernels spell multiply-adds as
// acc += float64(a*b): the explicit conversion forces the product to
// round before the add, which forbids compiler FMA contraction (the
// arm64 compiler otherwise fuses into FMADD) — a no-op on amd64,
// keeping generic results bit-identical across GOARCHes.
//
// Parallelism: output rows are cut into fixed stripeRows stripes and
// fanned out on the installed Parallel hook (SetParallel). Stripe
// geometry never depends on the worker count and every element is
// produced by exactly one stripe, so results are bit-identical at any
// pool width, including no pool at all.

const (
	// kcBlock is the reduction-panel length; one packed B tile column
	// (kcBlock·nr floats) stays L1-resident while A tiles stream by.
	kcBlock = 256
	// mcBlock rows of A are packed per inner block (mcBlock·kcBlock
	// floats ≈ 128 KiB, sized for L2). Must be a multiple of every
	// backend's mr (4 and 8).
	mcBlock = 64

	// blockedMinVolume is the m·k·n product below which packing overhead
	// outweighs register tiling and the naive loops win (the DRL policy
	// and value nets live entirely below it).
	blockedMinVolume = 1 << 14
	// parallelMinVolume is the volume below which stripe fan-out is not
	// worth the scheduling round trip.
	parallelMinVolume = 1 << 17
	// stripeRows is the fixed per-task row stripe of the parallel path.
	stripeRows = 128
)

// gemmVariant selects which operand is logically transposed.
type gemmVariant int

const (
	gemmNN gemmVariant = iota // dst = a·b
	gemmAT                    // dst = aᵀ·b
	gemmBT                    // dst = a·bᵀ
)

// gemmDims returns the logical (M, K, N) of dst = op(a)·op(b).
func gemmDims(a, b *Tensor, v gemmVariant) (m, k, n int) {
	switch v {
	case gemmAT:
		return a.Cols(), a.Rows(), b.Cols()
	case gemmBT:
		return a.Rows(), a.Cols(), b.Rows()
	default:
		return a.Rows(), a.Cols(), b.Cols()
	}
}

// gemmInto is the shared entry point behind MatMulInto / MatMulATInto /
// MatMulBTInto: dispatch small products to the naive loops, large ones
// to the blocked kernel, and fan row stripes out on the pool hook when
// one is installed. All paths are bit-identical by construction.
func gemmInto(dst, a, b *Tensor, v gemmVariant) {
	m, k, n := gemmDims(a, b, v)
	if m*k*n < blockedMinVolume {
		gemmNaive(dst, a, b, v)
		return
	}
	stripes := (m + stripeRows - 1) / stripeRows
	mr, nr := kernelMR(), kernelNR()
	pl := currentParallel()
	if pl == nil || pl.Workers() <= 1 || stripes < 2 || m*k*n < parallelMinVolume {
		kc := k
		if kc > kcBlock {
			kc = kcBlock
		}
		ap := getBuf(apSize(m, kc, mr))
		bp := getBuf(bpSize(n, kc, nr))
		gemmBlockedRange(dst, a, b, v, 0, m, ap, bp)
		putBuf(bp)
		putBuf(ap)
		return
	}
	lanes := pl.Workers()
	if lanes > stripes {
		lanes = stripes
	}
	kc := k
	if kc > kcBlock {
		kc = kcBlock
	}
	aps := make([][]float64, lanes)
	bps := make([][]float64, lanes)
	for w := range aps {
		aps[w] = getBuf(apSize(stripeRows, kc, mr))
		bps[w] = getBuf(bpSize(n, kc, nr))
	}
	forWorkerFine(pl, stripes, func(w, s int) {
		rs := s * stripeRows
		re := rs + stripeRows
		if re > m {
			re = m
		}
		gemmBlockedRange(dst, a, b, v, rs, re, aps[w], bps[w])
	})
	for w := range aps {
		putBuf(bps[w])
		putBuf(aps[w])
	}
}

// apSize returns the packed-A buffer length for a row range of rows,
// panel length kc and register-tile height mr.
func apSize(rows, kc, mr int) int {
	if rows > mcBlock {
		rows = mcBlock
	}
	tiles := (rows + mr - 1) / mr
	return tiles * mr * kc
}

// bpSize returns the packed-B buffer length for n columns, panel length
// kc and register-tile width nr.
func bpSize(n, kc, nr int) int {
	tiles := (n + nr - 1) / nr
	return tiles * nr * kc
}

// gemmNaive computes the variant with plain triple loops — the reference
// the blocked kernel must match bit for bit, and the fast path for the
// small matrices of the DRL nets. The loops themselves live in the
// generic element core (gemmNaiveG, generic.go), instantiated here at
// float64.
func gemmNaive(dst, a, b *Tensor, v gemmVariant) {
	gemmNaiveG(dst.Data, a.Data, a.Rows(), a.Cols(), b.Data, b.Rows(), b.Cols(), v)
}

// gemmBlockedRange runs the blocked kernel over output rows [rs, re).
// ap and bp are packing scratch sized by apSize/bpSize for the active
// backend's register tile (kernelMR/kernelNR, read once per call).
func gemmBlockedRange(dst, a, b *Tensor, v gemmVariant, rs, re int, ap, bp []float64) {
	_, k, n := gemmDims(a, b, v)
	mr, nr := kernelMR(), kernelNR()
	dd := dst.Data
	nTiles := (n + nr - 1) / nr
	for p0 := 0; p0 < k; p0 += kcBlock {
		kc := k - p0
		if kc > kcBlock {
			kc = kcBlock
		}
		packBG(bp, b.Data, b.Rows(), b.Cols(), v, p0, kc, n, nr)
		first := p0 == 0
		for i0 := rs; i0 < re; i0 += mcBlock {
			ib := re - i0
			if ib > mcBlock {
				ib = mcBlock
			}
			packAG(ap, a.Data, a.Rows(), a.Cols(), v, i0, ib, p0, kc, mr)
			mTiles := (ib + mr - 1) / mr
			for it := 0; it < mTiles; it++ {
				mv := ib - it*mr
				if mv > mr {
					mv = mr
				}
				apTile := ap[it*kc*mr:]
				row0 := i0 + it*mr
				for jt := 0; jt < nTiles; jt++ {
					nv := n - jt*nr
					if nv > nr {
						nv = nr
					}
					bpTile := bp[jt*kc*nr:]
					c := dd[row0*n+jt*nr:]
					if mv == mr && nv == nr {
						switch {
						case useAVX512:
							micro8x8avx512(kc, &apTile[0], &bpTile[0], &c[0], n, first)
						case useAVX:
							micro4x4avx(kc, &apTile[0], &bpTile[0], &c[0], n, first)
						case useNEON:
							microNeon4x4(kc, &apTile[0], &bpTile[0], &c[0], n, first)
						default:
							micro4x4G(kc, apTile, bpTile, c, n, first)
						}
					} else {
						microEdgeG(kc, apTile, bpTile, c, n, mv, nv, mr, nr, first)
					}
				}
			}
		}
	}
}

// The packing routines (packAG/packBG) and the portable micro-kernels
// (micro4x4G/microEdgeG) live in the generic element core (generic.go),
// shared verbatim with the float32 arm (blocked32.go).
