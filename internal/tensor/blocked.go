package tensor

// Blocked GEMM kernels. All three matrix-product variants (A·B, Aᵀ·B,
// A·Bᵀ) funnel into one cache-blocked, register-tiled kernel:
//
//   - The reduction dimension is split into kcBlock panels. For each
//     panel, B's rows are packed into nr-wide column tiles and A's
//     rows into mr-tall row tiles, so the innermost loops stream
//     contiguous memory regardless of the variant's transpose.
//   - Each mr×nr output tile is computed by a micro-kernel that
//     keeps the whole tile in local accumulators across the panel:
//     mr·nr multiply-adds per mr+nr loads, versus the naive kernel's
//     one load+store of the output element per term.
//
// The register-tile geometry (mr, nr) is the active backend's
// (kernelMR/kernelNR in backend.go): 8×8 for the avx512 kernel, 4×4
// otherwise. Geometry only regroups which elements are computed
// together; it cannot affect any element's value (see below).
//
// Determinism contract: every output element accumulates its reduction
// terms in ascending k order into a single accumulator chain — k panels
// are visited in ascending order and the micro-kernel walks a panel in
// ascending k — which is exactly the naive triple loop's order. The
// store/reload of the output tile between panels is exact, so blocked
// results are bit-identical to the naive kernels on every backend
// (test-enforced across tile-straddling shapes, and gated in
// scripts/verify.sh). The scalar kernels spell multiply-adds as
// acc += float64(a*b): the explicit conversion forces the product to
// round before the add, which forbids compiler FMA contraction (the
// arm64 compiler otherwise fuses into FMADD) — a no-op on amd64,
// keeping generic results bit-identical across GOARCHes.
//
// Parallelism: output rows are cut into fixed stripeRows stripes and
// fanned out on the installed Parallel hook (SetParallel). Stripe
// geometry never depends on the worker count and every element is
// produced by exactly one stripe, so results are bit-identical at any
// pool width, including no pool at all.

const (
	// mrMax × nrMax bounds the register tile across backends (the
	// avx512 micro-kernel's 8×8); microEdge sizes its accumulator
	// array with it.
	mrMax = 8
	nrMax = 8
	// kcBlock is the reduction-panel length; one packed B tile column
	// (kcBlock·nr floats) stays L1-resident while A tiles stream by.
	kcBlock = 256
	// mcBlock rows of A are packed per inner block (mcBlock·kcBlock
	// floats ≈ 128 KiB, sized for L2). Must be a multiple of every
	// backend's mr (4 and 8).
	mcBlock = 64

	// blockedMinVolume is the m·k·n product below which packing overhead
	// outweighs register tiling and the naive loops win (the DRL policy
	// and value nets live entirely below it).
	blockedMinVolume = 1 << 14
	// parallelMinVolume is the volume below which stripe fan-out is not
	// worth the scheduling round trip.
	parallelMinVolume = 1 << 17
	// stripeRows is the fixed per-task row stripe of the parallel path.
	stripeRows = 128
)

// gemmVariant selects which operand is logically transposed.
type gemmVariant int

const (
	gemmNN gemmVariant = iota // dst = a·b
	gemmAT                    // dst = aᵀ·b
	gemmBT                    // dst = a·bᵀ
)

// gemmDims returns the logical (M, K, N) of dst = op(a)·op(b).
func gemmDims(a, b *Tensor, v gemmVariant) (m, k, n int) {
	switch v {
	case gemmAT:
		return a.Cols(), a.Rows(), b.Cols()
	case gemmBT:
		return a.Rows(), a.Cols(), b.Rows()
	default:
		return a.Rows(), a.Cols(), b.Cols()
	}
}

// gemmInto is the shared entry point behind MatMulInto / MatMulATInto /
// MatMulBTInto: dispatch small products to the naive loops, large ones
// to the blocked kernel, and fan row stripes out on the pool hook when
// one is installed. All paths are bit-identical by construction.
func gemmInto(dst, a, b *Tensor, v gemmVariant) {
	m, k, n := gemmDims(a, b, v)
	if m*k*n < blockedMinVolume {
		gemmNaive(dst, a, b, v)
		return
	}
	stripes := (m + stripeRows - 1) / stripeRows
	mr, nr := kernelMR(), kernelNR()
	pl := currentParallel()
	if pl == nil || pl.Workers() <= 1 || stripes < 2 || m*k*n < parallelMinVolume {
		kc := k
		if kc > kcBlock {
			kc = kcBlock
		}
		ap := getBuf(apSize(m, kc, mr))
		bp := getBuf(bpSize(n, kc, nr))
		gemmBlockedRange(dst, a, b, v, 0, m, ap, bp)
		putBuf(bp)
		putBuf(ap)
		return
	}
	lanes := pl.Workers()
	if lanes > stripes {
		lanes = stripes
	}
	kc := k
	if kc > kcBlock {
		kc = kcBlock
	}
	aps := make([][]float64, lanes)
	bps := make([][]float64, lanes)
	for w := range aps {
		aps[w] = getBuf(apSize(stripeRows, kc, mr))
		bps[w] = getBuf(bpSize(n, kc, nr))
	}
	forWorkerFine(pl, stripes, func(w, s int) {
		rs := s * stripeRows
		re := rs + stripeRows
		if re > m {
			re = m
		}
		gemmBlockedRange(dst, a, b, v, rs, re, aps[w], bps[w])
	})
	for w := range aps {
		putBuf(bps[w])
		putBuf(aps[w])
	}
}

// apSize returns the packed-A buffer length for a row range of rows,
// panel length kc and register-tile height mr.
func apSize(rows, kc, mr int) int {
	if rows > mcBlock {
		rows = mcBlock
	}
	tiles := (rows + mr - 1) / mr
	return tiles * mr * kc
}

// bpSize returns the packed-B buffer length for n columns, panel length
// kc and register-tile width nr.
func bpSize(n, kc, nr int) int {
	tiles := (n + nr - 1) / nr
	return tiles * nr * kc
}

// gemmNaive computes the variant with plain triple loops — the reference
// the blocked kernel must match bit for bit, and the fast path for the
// small matrices of the DRL nets. Every output element accumulates its
// terms in ascending reduction order with no zero-skip branches.
func gemmNaive(dst, a, b *Tensor, v gemmVariant) {
	ad, bd, dd := a.Data, b.Data, dst.Data
	switch v {
	case gemmNN:
		m, k, n := a.Rows(), a.Cols(), b.Cols()
		for i := 0; i < m; i++ {
			di := dd[i*n : (i+1)*n]
			for x := range di {
				di[x] = 0
			}
			ai := ad[i*k : (i+1)*k]
			for p, av := range ai {
				bp := bd[p*n : (p+1)*n]
				for j, bv := range bp {
					di[j] += float64(av * bv)
				}
			}
		}
	case gemmAT:
		m, k := a.Rows(), a.Cols()
		n := b.Cols()
		dst.Zero()
		for i := 0; i < m; i++ {
			ai := ad[i*k : (i+1)*k]
			bi := bd[i*n : (i+1)*n]
			for p, av := range ai {
				dp := dd[p*n : (p+1)*n]
				for j, bv := range bi {
					dp[j] += float64(av * bv)
				}
			}
		}
	case gemmBT:
		m, k, n := a.Rows(), a.Cols(), b.Rows()
		for i := 0; i < m; i++ {
			ai := ad[i*k : (i+1)*k]
			di := dd[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := bd[j*k : (j+1)*k]
				sum := 0.0
				for p, av := range ai {
					sum += float64(av * bj[p])
				}
				di[j] = sum
			}
		}
	}
}

// gemmBlockedRange runs the blocked kernel over output rows [rs, re).
// ap and bp are packing scratch sized by apSize/bpSize for the active
// backend's register tile (kernelMR/kernelNR, read once per call).
func gemmBlockedRange(dst, a, b *Tensor, v gemmVariant, rs, re int, ap, bp []float64) {
	_, k, n := gemmDims(a, b, v)
	mr, nr := kernelMR(), kernelNR()
	dd := dst.Data
	nTiles := (n + nr - 1) / nr
	for p0 := 0; p0 < k; p0 += kcBlock {
		kc := k - p0
		if kc > kcBlock {
			kc = kcBlock
		}
		packB(bp, b, a, v, p0, kc, n, nr)
		first := p0 == 0
		for i0 := rs; i0 < re; i0 += mcBlock {
			ib := re - i0
			if ib > mcBlock {
				ib = mcBlock
			}
			packA(ap, a, b, v, i0, ib, p0, kc, mr)
			mTiles := (ib + mr - 1) / mr
			for it := 0; it < mTiles; it++ {
				mv := ib - it*mr
				if mv > mr {
					mv = mr
				}
				apTile := ap[it*kc*mr:]
				row0 := i0 + it*mr
				for jt := 0; jt < nTiles; jt++ {
					nv := n - jt*nr
					if nv > nr {
						nv = nr
					}
					bpTile := bp[jt*kc*nr:]
					c := dd[row0*n+jt*nr:]
					if mv == mr && nv == nr {
						switch {
						case useAVX512:
							micro8x8avx512(kc, &apTile[0], &bpTile[0], &c[0], n, first)
						case useAVX:
							micro4x4avx(kc, &apTile[0], &bpTile[0], &c[0], n, first)
						case useNEON:
							microNeon4x4(kc, &apTile[0], &bpTile[0], &c[0], n, first)
						default:
							micro4x4(kc, apTile, bpTile, c, n, first)
						}
					} else {
						microEdge(kc, apTile, bpTile, c, n, mv, nv, mr, nr, first)
					}
				}
			}
		}
	}
}

// packB packs the reduction panel [p0, p0+kc) of op(b) into nr-wide
// column tiles: bp[tile*kc*nr + p*nr + c] = op(b)[p0+p][tile*nr+c].
// Slots of a partial edge tile are left unwritten; only microEdge reads
// that tile and it stays within the valid columns.
func packB(bp []float64, b, a *Tensor, v gemmVariant, p0, kc, n, nr int) {
	bd := b.Data
	switch v {
	case gemmBT:
		// op(b)[p][j] = b[j][p]; b is n×k, rows contiguous in p.
		kPhys := b.Cols()
		for jt := 0; jt*nr < n; jt++ {
			off := jt * kc * nr
			nv := n - jt*nr
			if nv > nr {
				nv = nr
			}
			for c := 0; c < nv; c++ {
				src := bd[(jt*nr+c)*kPhys+p0:]
				for p := 0; p < kc; p++ {
					bp[off+p*nr+c] = src[p]
				}
			}
		}
	default:
		// op(b)[p][j] = b[p][j] for both NN and AT.
		for jt := 0; jt*nr < n; jt++ {
			off := jt * kc * nr
			j0 := jt * nr
			nv := n - j0
			if nv > nr {
				nv = nr
			}
			for p := 0; p < kc; p++ {
				copy(bp[off+p*nr:off+p*nr+nv], bd[(p0+p)*n+j0:])
			}
		}
	}
}

// packA packs rows [i0, i0+ib) of op(a) over the reduction panel
// [p0, p0+kc) into mr-tall row tiles:
// ap[tile*kc*mr + p*mr + r] = op(a)[tile*mr+r][p0+p].
func packA(ap []float64, a, b *Tensor, v gemmVariant, i0, ib, p0, kc, mr int) {
	ad := a.Data
	switch v {
	case gemmAT:
		// op(a)[i][p] = a[p][i]; a is k×m, rows contiguous in i.
		mPhys := a.Cols()
		for it := 0; it*mr < ib; it++ {
			off := it * kc * mr
			mv := ib - it*mr
			if mv > mr {
				mv = mr
			}
			base := i0 + it*mr
			for p := 0; p < kc; p++ {
				src := ad[(p0+p)*mPhys+base:]
				dstRow := ap[off+p*mr:]
				for r := 0; r < mv; r++ {
					dstRow[r] = src[r]
				}
			}
		}
	default:
		// op(a)[i][p] = a[i][p] for both NN and BT.
		kPhys := a.Cols()
		for it := 0; it*mr < ib; it++ {
			off := it * kc * mr
			mv := ib - it*mr
			if mv > mr {
				mv = mr
			}
			for r := 0; r < mv; r++ {
				src := ad[(i0+it*mr+r)*kPhys+p0:]
				for p := 0; p < kc; p++ {
					ap[off+p*mr+r] = src[p]
				}
			}
		}
	}
}

// micro4x4 computes one full 4×4 output tile over a kc-long packed
// panel. c points at the tile's top-left element of the row-major
// output with leading dimension ldc. first selects overwrite (panel 0)
// versus accumulate-on-top (later panels).
func micro4x4(kc int, ap, bp, c []float64, ldc int, first bool) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64
	r1, r2, r3 := c[ldc:], c[2*ldc:], c[3*ldc:]
	if !first {
		c00, c01, c02, c03 = c[0], c[1], c[2], c[3]
		c10, c11, c12, c13 = r1[0], r1[1], r1[2], r1[3]
		c20, c21, c22, c23 = r2[0], r2[1], r2[2], r2[3]
		c30, c31, c32, c33 = r3[0], r3[1], r3[2], r3[3]
	}
	ap = ap[: kc*4 : kc*4]
	bp = bp[: kc*4 : kc*4]
	for p := 0; p < kc; p++ {
		a0, a1, a2, a3 := ap[p*4], ap[p*4+1], ap[p*4+2], ap[p*4+3]
		b0, b1, b2, b3 := bp[p*4], bp[p*4+1], bp[p*4+2], bp[p*4+3]
		c00 += float64(a0 * b0)
		c01 += float64(a0 * b1)
		c02 += float64(a0 * b2)
		c03 += float64(a0 * b3)
		c10 += float64(a1 * b0)
		c11 += float64(a1 * b1)
		c12 += float64(a1 * b2)
		c13 += float64(a1 * b3)
		c20 += float64(a2 * b0)
		c21 += float64(a2 * b1)
		c22 += float64(a2 * b2)
		c23 += float64(a2 * b3)
		c30 += float64(a3 * b0)
		c31 += float64(a3 * b1)
		c32 += float64(a3 * b2)
		c33 += float64(a3 * b3)
	}
	c[0], c[1], c[2], c[3] = c00, c01, c02, c03
	r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
	r2[0], r2[1], r2[2], r2[3] = c20, c21, c22, c23
	r3[0], r3[1], r3[2], r3[3] = c30, c31, c32, c33
}

// microEdge computes a partial tile of mv×nv valid elements (tile
// strides in the packed panels stay the backend's mr/nr).
func microEdge(kc int, ap, bp, c []float64, ldc, mv, nv, mr, nr int, first bool) {
	var acc [mrMax][nrMax]float64
	if !first {
		for r := 0; r < mv; r++ {
			for j := 0; j < nv; j++ {
				acc[r][j] = c[r*ldc+j]
			}
		}
	}
	for p := 0; p < kc; p++ {
		for r := 0; r < mv; r++ {
			av := ap[p*mr+r]
			for j := 0; j < nv; j++ {
				acc[r][j] += float64(av * bp[p*nr+j])
			}
		}
	}
	for r := 0; r < mv; r++ {
		for j := 0; j < nv; j++ {
			c[r*ldc+j] = acc[r][j]
		}
	}
}
