package tensor

// Generic element core shared by the float64 and float32 storage arms.
// Every scalar kernel — the naive GEMM reference loops, the packing
// routines, the portable register-tile micro-kernels, the elementwise
// bodies and the im2col/col2im lowering — is written once over the Elem
// constraint and instantiated at both widths, so the two precisions
// cannot drift: a fix or a determinism-contract change lands in one
// place.
//
// Determinism: the multiply-adds are spelled acc += E(a*b). The explicit
// conversion — even to the operand's own type — forces the product to
// round to E before the add, which by the Go spec forbids the compiler
// from contracting the pair into a fused multiply-add. This is exactly
// the float64(a*b) idiom the pre-generic kernels used (see blocked.go);
// it survives instantiation because each width compiles to its own
// concrete body containing the same explicit conversion.

// Elem is the element-type constraint of the generic kernel core: the
// two precisions the numeric substrate supports.
type Elem interface {
	~float32 | ~float64
}

const (
	// edgeMR × edgeNR bounds the register tile across every backend and
	// element width (the f32 avx512 kernel's 8×16 is the largest);
	// microEdgeG sizes its accumulator array with it.
	edgeMR = 8
	edgeNR = 16
)

// gemmNaiveG computes dst = op(a)·op(b) with plain triple loops over raw
// row-major storage — the reference every blocked path must match bit
// for bit. a is aR×aC, b is bR×bC physically; the variant defines the
// logical operands. Every output element accumulates its terms in
// ascending reduction order with no zero-skip branches.
func gemmNaiveG[E Elem](dd, ad []E, aR, aC int, bd []E, bR, bC int, v gemmVariant) {
	switch v {
	case gemmNN:
		m, k, n := aR, aC, bC
		for i := 0; i < m; i++ {
			di := dd[i*n : (i+1)*n]
			for x := range di {
				di[x] = 0
			}
			ai := ad[i*k : (i+1)*k]
			for p, av := range ai {
				bp := bd[p*n : (p+1)*n]
				for j, bv := range bp {
					di[j] += E(av * bv)
				}
			}
		}
	case gemmAT:
		m, k := aR, aC
		n := bC
		for x := range dd[:k*n] {
			dd[x] = 0
		}
		for i := 0; i < m; i++ {
			ai := ad[i*k : (i+1)*k]
			bi := bd[i*n : (i+1)*n]
			for p, av := range ai {
				dp := dd[p*n : (p+1)*n]
				for j, bv := range bi {
					dp[j] += E(av * bv)
				}
			}
		}
	case gemmBT:
		m, k, n := aR, aC, bR
		for i := 0; i < m; i++ {
			ai := ad[i*k : (i+1)*k]
			di := dd[i*n : (i+1)*n]
			for j := 0; j < n; j++ {
				bj := bd[j*k : (j+1)*k]
				var sum E
				for p, av := range ai {
					sum += E(av * bj[p])
				}
				di[j] = sum
			}
		}
	}
}

// packBG packs the reduction panel [p0, p0+kc) of op(b) into nr-wide
// column tiles: bp[tile*kc*nr + p*nr + c] = op(b)[p0+p][tile*nr+c].
// b is bR×bC physically. Slots of a partial edge tile are left
// unwritten; only microEdgeG reads that tile and it stays within the
// valid columns.
func packBG[E Elem](bp, bd []E, bR, bC int, v gemmVariant, p0, kc, n, nr int) {
	switch v {
	case gemmBT:
		// op(b)[p][j] = b[j][p]; b is n×k, rows contiguous in p.
		kPhys := bC
		for jt := 0; jt*nr < n; jt++ {
			off := jt * kc * nr
			nv := n - jt*nr
			if nv > nr {
				nv = nr
			}
			for c := 0; c < nv; c++ {
				src := bd[(jt*nr+c)*kPhys+p0:]
				for p := 0; p < kc; p++ {
					bp[off+p*nr+c] = src[p]
				}
			}
		}
	default:
		// op(b)[p][j] = b[p][j] for both NN and AT.
		for jt := 0; jt*nr < n; jt++ {
			off := jt * kc * nr
			j0 := jt * nr
			nv := n - j0
			if nv > nr {
				nv = nr
			}
			for p := 0; p < kc; p++ {
				copy(bp[off+p*nr:off+p*nr+nv], bd[(p0+p)*n+j0:])
			}
		}
	}
}

// packAG packs rows [i0, i0+ib) of op(a) over the reduction panel
// [p0, p0+kc) into mr-tall row tiles:
// ap[tile*kc*mr + p*mr + r] = op(a)[tile*mr+r][p0+p].
// a is aR×aC physically.
func packAG[E Elem](ap, ad []E, aR, aC int, v gemmVariant, i0, ib, p0, kc, mr int) {
	switch v {
	case gemmAT:
		// op(a)[i][p] = a[p][i]; a is k×m, rows contiguous in i.
		mPhys := aC
		for it := 0; it*mr < ib; it++ {
			off := it * kc * mr
			mv := ib - it*mr
			if mv > mr {
				mv = mr
			}
			base := i0 + it*mr
			for p := 0; p < kc; p++ {
				src := ad[(p0+p)*mPhys+base:]
				dstRow := ap[off+p*mr:]
				for r := 0; r < mv; r++ {
					dstRow[r] = src[r]
				}
			}
		}
	default:
		// op(a)[i][p] = a[i][p] for both NN and BT.
		kPhys := aC
		for it := 0; it*mr < ib; it++ {
			off := it * kc * mr
			mv := ib - it*mr
			if mv > mr {
				mv = mr
			}
			for r := 0; r < mv; r++ {
				src := ad[(i0+it*mr+r)*kPhys+p0:]
				for p := 0; p < kc; p++ {
					ap[off+p*mr+r] = src[p]
				}
			}
		}
	}
}

// micro4x4G computes one full 4×4 output tile over a kc-long packed
// panel — the portable register-tile micro-kernel both widths fall back
// to when no vector kernel applies. c points at the tile's top-left
// element of the row-major output with leading dimension ldc. first
// selects overwrite (panel 0) versus accumulate-on-top (later panels).
func micro4x4G[E Elem](kc int, ap, bp, c []E, ldc int, first bool) {
	var c00, c01, c02, c03 E
	var c10, c11, c12, c13 E
	var c20, c21, c22, c23 E
	var c30, c31, c32, c33 E
	r1, r2, r3 := c[ldc:], c[2*ldc:], c[3*ldc:]
	if !first {
		c00, c01, c02, c03 = c[0], c[1], c[2], c[3]
		c10, c11, c12, c13 = r1[0], r1[1], r1[2], r1[3]
		c20, c21, c22, c23 = r2[0], r2[1], r2[2], r2[3]
		c30, c31, c32, c33 = r3[0], r3[1], r3[2], r3[3]
	}
	ap = ap[: kc*4 : kc*4]
	bp = bp[: kc*4 : kc*4]
	for p := 0; p < kc; p++ {
		a0, a1, a2, a3 := ap[p*4], ap[p*4+1], ap[p*4+2], ap[p*4+3]
		b0, b1, b2, b3 := bp[p*4], bp[p*4+1], bp[p*4+2], bp[p*4+3]
		c00 += E(a0 * b0)
		c01 += E(a0 * b1)
		c02 += E(a0 * b2)
		c03 += E(a0 * b3)
		c10 += E(a1 * b0)
		c11 += E(a1 * b1)
		c12 += E(a1 * b2)
		c13 += E(a1 * b3)
		c20 += E(a2 * b0)
		c21 += E(a2 * b1)
		c22 += E(a2 * b2)
		c23 += E(a2 * b3)
		c30 += E(a3 * b0)
		c31 += E(a3 * b1)
		c32 += E(a3 * b2)
		c33 += E(a3 * b3)
	}
	c[0], c[1], c[2], c[3] = c00, c01, c02, c03
	r1[0], r1[1], r1[2], r1[3] = c10, c11, c12, c13
	r2[0], r2[1], r2[2], r2[3] = c20, c21, c22, c23
	r3[0], r3[1], r3[2], r3[3] = c30, c31, c32, c33
}

// microEdgeG computes a partial tile of mv×nv valid elements (tile
// strides in the packed panels stay the backend's mr/nr).
func microEdgeG[E Elem](kc int, ap, bp, c []E, ldc, mv, nv, mr, nr int, first bool) {
	var acc [edgeMR][edgeNR]E
	if !first {
		for r := 0; r < mv; r++ {
			for j := 0; j < nv; j++ {
				acc[r][j] = c[r*ldc+j]
			}
		}
	}
	for p := 0; p < kc; p++ {
		for r := 0; r < mv; r++ {
			av := ap[p*mr+r]
			for j := 0; j < nv; j++ {
				acc[r][j] += E(av * bp[p*nr+j])
			}
		}
	}
	for r := 0; r < mv; r++ {
		for j := 0; j < nv; j++ {
			c[r*ldc+j] = acc[r][j]
		}
	}
}

// Elementwise scalar cores. The SIMD dispatch wrappers (elemwise.go,
// elemwise32.go) run these over the tail [i, len(x)) the vector body
// did not cover — or the whole slice on the generic backend. Per
// element they are multiply-round-then-add-round, never fused (the
// explicit E(·) conversion, see the package comment above).

// axpyTailG computes y[j] += alpha·x[j] for j in [i, len(x)).
func axpyTailG[E Elem](alpha E, x, y []E, i int) {
	for ; i < len(x); i++ {
		y[i] += E(alpha * x[i])
	}
}

// scaleTailG computes x[j] *= alpha for j in [i, len(x)).
func scaleTailG[E Elem](alpha E, x []E, i int) {
	for ; i < len(x); i++ {
		x[i] *= alpha
	}
}

// addTailG computes y[j] += x[j] for j in [i, len(x)).
func addTailG[E Elem](x, y []E, i int) {
	for ; i < len(x); i++ {
		y[i] += x[i]
	}
}

// reluFwdTailG computes out[j] = x[j] if x[j] > 0 else 0 for j in
// [i, len(x)), keeping NaN inputs (zero only when v <= 0).
func reluFwdTailG[E Elem](x, out []E, i int) {
	for ; i < len(x); i++ {
		if v := x[i]; v <= 0 {
			out[i] = 0
		} else {
			out[i] = v
		}
	}
}

// reluBwdTailG computes out[j] = g[j] if x[j] > 0 else 0 for j in
// [i, len(x)), passing the gradient through for NaN x.
func reluBwdTailG[E Elem](x, g, out []E, i int) {
	for ; i < len(x); i++ {
		if x[i] <= 0 {
			out[i] = 0
		} else {
			out[i] = g[i]
		}
	}
}

// leakyFwdTailG computes out[j] = alpha·x[j] if x[j] < 0 else x[j] for
// j in [i, len(x)) (NaN inputs pass through unscaled).
func leakyFwdTailG[E Elem](alpha E, x, out []E, i int) {
	for ; i < len(x); i++ {
		if v := x[i]; v < 0 {
			out[i] = E(alpha * v)
		} else {
			out[i] = v
		}
	}
}

// leakyBwdTailG computes out[j] = alpha·g[j] if x[j] < 0 else g[j] for
// j in [i, len(x)).
func leakyBwdTailG[E Elem](alpha E, x, g, out []E, i int) {
	for ; i < len(x); i++ {
		if x[i] < 0 {
			out[i] = E(g[i] * alpha)
		} else {
			out[i] = g[i]
		}
	}
}

// im2colCoreG fills cd (length OutH·OutW·InC·K·K) from one image.
func im2colCoreG[E Elem](g ConvGeom, img []E, cd []E) {
	oh, ow := g.OutH(), g.OutW()
	idx := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			baseY := oy*g.Stride - g.Pad
			baseX := ox*g.Stride - g.Pad
			for c := 0; c < g.InC; c++ {
				chanOff := c * g.InH * g.InW
				for ky := 0; ky < g.K; ky++ {
					y := baseY + ky
					for kx := 0; kx < g.K; kx++ {
						x := baseX + kx
						if y >= 0 && y < g.InH && x >= 0 && x < g.InW {
							cd[idx] = img[chanOff+y*g.InW+x]
						} else {
							cd[idx] = 0
						}
						idx++
					}
				}
			}
		}
	}
}

// col2imCoreG accumulates cd (one sample's column block) into img.
func col2imCoreG[E Elem](g ConvGeom, cd []E, img []E) {
	oh, ow := g.OutH(), g.OutW()
	idx := 0
	for oy := 0; oy < oh; oy++ {
		for ox := 0; ox < ow; ox++ {
			baseY := oy*g.Stride - g.Pad
			baseX := ox*g.Stride - g.Pad
			for c := 0; c < g.InC; c++ {
				chanOff := c * g.InH * g.InW
				for ky := 0; ky < g.K; ky++ {
					y := baseY + ky
					for kx := 0; kx < g.K; kx++ {
						x := baseX + kx
						if y >= 0 && y < g.InH && x >= 0 && x < g.InW {
							img[chanOff+y*g.InW+x] += cd[idx]
						}
						idx++
					}
				}
			}
		}
	}
}
