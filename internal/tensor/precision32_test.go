package tensor

import (
	"fmt"
	"math"
	"testing"

	"feddrl/internal/rng"
)

// fillRandom32 populates t with float32 Normal(0,1) deviates plus exact
// zeros, mirroring fillRandom for the f64 arm.
func fillRandom32(t *Tensor32, r *rng.RNG) {
	for i := range t.Data {
		if r.Intn(8) == 0 {
			t.Data[i] = 0
		} else {
			t.Data[i] = float32(r.Normal(0, 1))
		}
	}
}

// fillElems32 populates x with adversarial float32 inputs: normal
// deviates plus exact +0/-0, NaN, ±Inf and the smallest denormals, so
// the f32 SIMD bodies are checked bit for bit against the generic core
// on every special-value class.
//
// The injected NaN is the x86 indefinite (0xffc00000, sign bit set) —
// the same bit pattern invalid operations (Inf·0, Inf−Inf) generate in
// hardware. That keeps the NaN lattice single-valued: when an addition
// sees NaN in BOTH operands, IEEE lets the implementation pick either
// payload, and compiled operand order differs between code paths; with
// every NaN sharing one bit pattern the pick cannot matter, so
// bit-identity is well-defined even for non-finite propagation.
func fillElems32(x []float32, r *rng.RNG) {
	specials := []float32{
		0, float32(math.Copysign(0, -1)), math.Float32frombits(0xffc00000),
		float32(math.Inf(1)), float32(math.Inf(-1)),
		math.Float32frombits(1), math.Float32frombits(0x80000001), // ±min denormal
		1, -1,
	}
	for i := range x {
		if r.Intn(4) == 0 {
			x[i] = specials[r.Intn(len(specials))]
		} else {
			x[i] = float32(r.Normal(0, 1))
		}
	}
}

// sameBits32 compares float32 slices bit for bit (NaN == NaN, +0 != -0).
func sameBits32(t *testing.T, tag string, got, want []float32) {
	t.Helper()
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("%s[%d] = %x, want %x", tag, i, math.Float32bits(got[i]), math.Float32bits(want[i]))
		}
	}
}

// gemmOperands32 builds the variant's physical operand shapes for a
// logical M×K×N float32 product.
func gemmOperands32(v gemmVariant, m, k, n int) (a, b, dst *Tensor32) {
	switch v {
	case gemmAT:
		return New32(k, m), New32(k, n), New32(m, n)
	case gemmBT:
		return New32(m, k), New32(n, k), New32(m, n)
	default:
		return New32(m, k), New32(k, n), New32(m, n)
	}
}

// TestBlocked32BitIdentity is the float32 kernel determinism gate (run
// explicitly by scripts/verify.sh, including a TENSOR_BACKEND=generic
// pass): for all three GEMM variants and every backend in the host's
// fallback chain, the blocked f32 kernel must reproduce the generic
// reference triple loop BIT for bit across shapes straddling the wider
// f32 tiles — exact 4×8 (avx) and 8×16 (avx512) multiples, one-off,
// primes, tall/skinny and wide/flat.
func TestBlocked32BitIdentity(t *testing.T) {
	shapes := [][3]int{
		{1, 1, 1},
		{1, 7, 1},
		{3, 5, 2},
		{4, kcBlock, 8},         // exact avx f32 tile, one full k panel
		{8, kcBlock, 16},        // exact avx512 f32 tile
		{5, kcBlock + 1, 9},     // one past the avx tile and panel
		{9, kcBlock + 1, 17},    // one past the avx512 tile and panel
		{7, kcBlock - 1, 15},    // one short of the avx512 tile and panel
		{13, 17, 11},
		{mcBlock, 31, 12},
		{mcBlock + 3, kcBlock*2 + 5, 9},
		{257, 19, 23},   // tall/skinny, prime rows
		{5, 23, 129},    // wide/flat
		{2, 300, 2},     // k spans two panels with tiny tiles
		{131, 131, 131}, // primes straddling every block
	}
	variants := []struct {
		name string
		v    gemmVariant
	}{{"NN", gemmNN}, {"AT", gemmAT}, {"BT", gemmBT}}
	restoreBackend(t)
	chain := Backends()
	for _, bk := range chain {
		if err := SetBackend(bk); err != nil {
			t.Fatalf("SetBackend(%q): %v", bk, err)
		}
		for _, vt := range variants {
			for _, sh := range shapes {
				m, k, n := sh[0], sh[1], sh[2]
				t.Run(fmt.Sprintf("%s_%s_%dx%dx%d", bk, vt.name, m, k, n), func(t *testing.T) {
					r := rng.New(uint64(m*1000003 + k*1009 + n))
					a, b, got := gemmOperands32(vt.v, m, k, n)
					fillRandom32(a, r)
					fillRandom32(b, r)
					want := New32(m, n)
					gemmNaive32(want, a, b, vt.v)

					// Force the blocked kernel regardless of the dispatch
					// threshold.
					kc := k
					if kc > kcBlock {
						kc = kcBlock
					}
					ap := getBuf32(apSize(m, kc, kernelMR32()))
					bp := getBuf32(bpSize(n, kc, kernelNR32()))
					gemmBlockedRange32(got, a, b, vt.v, 0, m, ap, bp)
					putBuf32(bp)
					putBuf32(ap)
					sameBits32(t, "blocked", got.Data, want.Data)

					// The public entry (whatever path it dispatches to) must
					// agree too.
					pub := New32(m, n)
					switch vt.v {
					case gemmAT:
						MatMulAT32Into(pub, a, b)
					case gemmBT:
						MatMulBT32Into(pub, a, b)
					default:
						MatMul32Into(pub, a, b)
					}
					sameBits32(t, "dispatch", pub.Data, want.Data)
				})
			}
		}
	}
	if chain[len(chain)-1] != "generic" {
		t.Fatalf("fallback chain %v does not end at generic", chain)
	}
}

// TestBlocked32SpecialValues drives the blocked f32 GEMM with NaN, ±Inf,
// signed zeros and denormals on every backend: since every output
// element accumulates along one ascending-k chain, even non-finite
// propagation (Inf−Inf, Inf·0) must match the generic reference bit for
// bit.
func TestBlocked32SpecialValues(t *testing.T) {
	restoreBackend(t)
	shapes := [][3]int{{9, 33, 17}, {16, kcBlock + 3, 32}, {5, 70, 11}}
	for _, bk := range Backends() {
		if err := SetBackend(bk); err != nil {
			t.Fatalf("SetBackend(%q): %v", bk, err)
		}
		for _, sh := range shapes {
			m, k, n := sh[0], sh[1], sh[2]
			t.Run(fmt.Sprintf("%s_%dx%dx%d", bk, m, k, n), func(t *testing.T) {
				r := rng.New(uint64(m*2718 + k*31 + n))
				a, b, got := gemmOperands32(gemmNN, m, k, n)
				fillElems32(a.Data, r)
				fillElems32(b.Data, r)
				want := New32(m, n)
				gemmNaive32(want, a, b, gemmNN)
				kc := k
				if kc > kcBlock {
					kc = kcBlock
				}
				ap := getBuf32(apSize(m, kc, kernelMR32()))
				bp := getBuf32(bpSize(n, kc, kernelNR32()))
				gemmBlockedRange32(got, a, b, gemmNN, 0, m, ap, bp)
				putBuf32(bp)
				putBuf32(ap)
				sameBits32(t, "blocked", got.Data, want.Data)
			})
		}
	}
}

// Float32 scalar references with the same explicit-conversion rounding
// guards as the generic core.
func refAxpy32(alpha float32, x, y []float32) {
	for i, v := range x {
		y[i] += float32(alpha * v)
	}
}

func refScale32(alpha float32, x []float32) {
	for i := range x {
		x[i] *= alpha
	}
}

func refAdd32(x, y []float32) {
	for i, v := range x {
		y[i] += v
	}
}

func refReLUFwd32(x, out []float32) {
	for i, v := range x {
		if v <= 0 {
			out[i] = 0
		} else {
			out[i] = v
		}
	}
}

func refReLUBwd32(x, g, out []float32) {
	for i := range x {
		if x[i] <= 0 {
			out[i] = 0
		} else {
			out[i] = g[i]
		}
	}
}

func refLeakyFwd32(alpha float32, x, out []float32) {
	for i, v := range x {
		if v < 0 {
			out[i] = float32(alpha * v)
		} else {
			out[i] = v
		}
	}
}

func refLeakyBwd32(alpha float32, x, g, out []float32) {
	for i := range x {
		if x[i] < 0 {
			out[i] = float32(g[i] * alpha)
		} else {
			out[i] = g[i]
		}
	}
}

// TestElemwise32BitIdentity checks every float32 elementwise kernel
// against its scalar reference, bit for bit, for every backend and
// lengths straddling the 8- and 16-wide vector bodies and their tails,
// over inputs including NaN, ±Inf, ±0 and denormals.
func TestElemwise32BitIdentity(t *testing.T) {
	restoreBackend(t)
	lengths := []int{1, 2, 3, 7, 8, 9, 15, 16, 17, 23, 31, 32, 33, 64, 257, 1003}
	const alpha = float32(0.3) // not exactly representable: scaling really rounds
	for _, bk := range Backends() {
		if err := SetBackend(bk); err != nil {
			t.Fatalf("SetBackend(%q): %v", bk, err)
		}
		for _, n := range lengths {
			t.Run(fmt.Sprintf("%s_n%d", bk, n), func(t *testing.T) {
				r := rng.New(uint64(37*n + 11))
				x := make([]float32, n)
				g := make([]float32, n)
				y0 := make([]float32, n)
				fillElems32(x, r)
				fillElems32(g, r)
				fillElems32(y0, r)

				y := append([]float32(nil), y0...)
				want := append([]float32(nil), y0...)
				Axpy32(alpha, x, y)
				refAxpy32(alpha, x, want)
				sameBits32(t, "Axpy32", y, want)

				s := append([]float32(nil), x...)
				want = append(want[:0], x...)
				Scale32(alpha, s)
				refScale32(alpha, want)
				sameBits32(t, "Scale32", s, want)

				y = append(y[:0], y0...)
				want = append(want[:0], y0...)
				Add32(x, y)
				refAdd32(x, want)
				sameBits32(t, "Add32", y, want)

				out := make([]float32, n)
				want = make([]float32, n)
				ReLUForward32(x, out)
				refReLUFwd32(x, want)
				sameBits32(t, "ReLUForward32", out, want)

				ReLUBackward32(x, g, out)
				refReLUBwd32(x, g, want)
				sameBits32(t, "ReLUBackward32", out, want)

				LeakyReLUForward32(alpha, x, out)
				refLeakyFwd32(alpha, x, want)
				sameBits32(t, "LeakyReLUForward32", out, want)

				LeakyReLUBackward32(alpha, x, g, out)
				refLeakyBwd32(alpha, x, g, want)
				sameBits32(t, "LeakyReLUBackward32", out, want)
			})
		}
	}
}

// TestParallelStripes32BitIdentical drives the f32 pool-hook path at
// several widths, for every backend, and checks the stripe
// decomposition changes nothing.
func TestParallelStripes32BitIdentical(t *testing.T) {
	defer SetParallel(nil)
	restoreBackend(t)
	r := rng.New(7)
	m, k, n := stripeRows*3+17, 70, 40
	a, b := New32(m, k), New32(k, n)
	fillRandom32(a, r)
	fillRandom32(b, r)
	want := New32(m, n)
	SetParallel(nil)
	MatMul32Into(want, a, b)
	for _, bk := range Backends() {
		if err := SetBackend(bk); err != nil {
			t.Fatalf("SetBackend(%q): %v", bk, err)
		}
		for _, w := range []int{2, 3, 8} {
			SetParallel(&stubPool{workers: w})
			got := New32(m, n)
			MatMul32Into(got, a, b)
			for i := range got.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%s workers=%d: [%d] = %x, want %x",
						bk, w, i, math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
				}
			}
		}
		SetParallel(nil)
	}
}

// TestIm2Col32MatchesFloat64 checks the f32 lowering agrees with the
// f64 lowering of the widened image: im2col/col2im only move and
// accumulate values, and the test geometry has at most one contribution
// per (column, image) pair beyond whole-lattice sums that stay exact.
func TestIm2Col32MatchesFloat64(t *testing.T) {
	g := ConvGeom{InC: 2, InH: 5, InW: 4, K: 3, Stride: 1, Pad: 1}
	r := rng.New(13)
	img32 := make([]float32, g.InC*g.InH*g.InW)
	fillElems32(img32, r)
	ohw := g.OutH() * g.OutW()
	patch := g.InC * g.K * g.K
	cols32 := New32(ohw, patch)
	Im2Col32(g, img32, cols32)

	img64 := Widen(nil, img32)
	cols64 := New(ohw, patch)
	Im2Col(g, img64, cols64)
	for i, v := range cols32.Data {
		if math.Float64bits(float64(v)) != math.Float64bits(cols64.Data[i]) {
			t.Fatalf("cols[%d] = %v, f64 lowering = %v", i, v, cols64.Data[i])
		}
	}
}

// TestWidenQuantizeRoundTrip pins the conversion contract: widening is
// exact (Quantize∘Widen is the identity bit for bit, including NaN,
// signed zeros and denormals) and QuantizeLattice makes a float64
// vector exactly f32-representable.
func TestWidenQuantizeRoundTrip(t *testing.T) {
	r := rng.New(23)
	src := make([]float32, 513)
	fillElems32(src, r)
	wide := Widen(nil, src)
	back := Quantize(nil, wide)
	sameBits32(t, "Quantize(Widen(v))", back, src)

	// QuantizeLattice: after rounding onto the lattice, quantize and
	// widen are exact inverses.
	v := make([]float64, 257)
	for i := range v {
		v[i] = r.Normal(0, 1)
	}
	QuantizeLattice(v)
	again := append([]float64(nil), v...)
	QuantizeLattice(again)
	for i := range v {
		if math.Float64bits(again[i]) != math.Float64bits(v[i]) {
			t.Fatalf("QuantizeLattice not idempotent at %d: %x vs %x", i, again[i], v[i])
		}
	}
	w := Widen(nil, Quantize(nil, v))
	for i := range v {
		if math.Float64bits(w[i]) != math.Float64bits(v[i]) {
			t.Fatalf("Widen(Quantize(lattice v))[%d] = %x, want %x", i, w[i], v[i])
		}
	}
}

// TestKernelScratchReuse32 pins the allocation-free property of the f32
// kernels: warm MatMul*32Into and elementwise calls must not allocate.
func TestKernelScratchReuse32(t *testing.T) {
	r := rng.New(3)
	m, k, n := 160, 96, 32
	a, b := New32(m, k), New32(k, n)
	at, bt := New32(k, m), New32(n, k)
	fillRandom32(a, r)
	fillRandom32(b, r)
	fillRandom32(at, r)
	fillRandom32(bt, r)
	dst := New32(m, n)
	x := make([]float32, 1003)
	y := make([]float32, 1003)
	step := func() {
		MatMul32Into(dst, a, b)
		MatMulAT32Into(dst, at, b)
		MatMulBT32Into(dst, a, bt)
		Axpy32(0.5, x, y)
		Add32(x, y)
		Scale32(0.999, y)
		ReLUForward32(x, y)
	}
	step() // populate the scratch pool
	if allocs := testing.AllocsPerRun(10, step); allocs != 0 {
		t.Fatalf("warm f32 kernels allocate %.1f times per run, want 0", allocs)
	}
}
