package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"feddrl/internal/rng"
)

func TestNewAndShape(t *testing.T) {
	a := New(3, 4)
	if a.Len() != 12 || a.Dims() != 2 || a.Rows() != 3 || a.Cols() != 4 {
		t.Fatalf("shape bookkeeping wrong: %+v", a)
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("New must zero-initialize")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("New with zero dimension did not panic")
		}
	}()
	New(3, 0)
}

func TestFromSlice(t *testing.T) {
	d := []float64{1, 2, 3, 4, 5, 6}
	a := FromSlice(d, 2, 3)
	if a.At(1, 2) != 6 || a.At(0, 0) != 1 {
		t.Fatalf("FromSlice indexing wrong")
	}
	a.Set(0, 1, 9)
	if d[1] != 9 {
		t.Fatal("FromSlice must not copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong volume did not panic")
		}
	}()
	FromSlice(d, 2, 2)
}

func TestRowView(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	r := a.Row(1)
	r[0] = 99
	if a.At(1, 0) != 99 {
		t.Fatal("Row must be a view")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := a.Clone()
	b.Set(0, 0, 42)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
	if !a.SameShape(b) {
		t.Fatal("Clone changed shape")
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float64{10, 20, 30, 40}, 2, 2)
	a.AddInPlace(b)
	if a.At(1, 1) != 44 {
		t.Fatalf("AddInPlace = %v", a.Data)
	}
	a.ScaleInPlace(0.5)
	if a.At(0, 0) != 5.5 {
		t.Fatalf("ScaleInPlace = %v", a.Data)
	}
	a.AxpyInPlace(2, b)
	if a.At(0, 1) != 11+40 {
		t.Fatalf("AxpyInPlace = %v", a.Data)
	}
	a.Zero()
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("Zero failed")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch AddInPlace did not panic")
		}
	}()
	a.AddInPlace(New(1, 4))
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, v := range c.Data {
		if v != want[i] {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	r := rng.New(1)
	a := New(5, 5)
	for i := range a.Data {
		a.Data[i] = r.Normal(0, 1)
	}
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	c := MatMul(a, id)
	for i, v := range c.Data {
		if math.Abs(v-a.Data[i]) > 1e-12 {
			t.Fatal("A·I != A")
		}
	}
}

// naiveMatMul is the reference implementation used to validate the
// optimized / parallel kernels.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Rows(), a.Cols(), b.Cols()
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for p := 0; p < k; p++ {
				sum += a.At(i, p) * b.At(p, j)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

func TestMatMulMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m, k, n := 1+r.Intn(12), 1+r.Intn(12), 1+r.Intn(12)
		a, b := New(m, k), New(k, n)
		for i := range a.Data {
			a.Data[i] = r.Normal(0, 2)
		}
		for i := range b.Data {
			b.Data[i] = r.Normal(0, 2)
		}
		got, want := MatMul(a, b), naiveMatMul(a, b)
		for i := range got.Data {
			if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulParallelPath(t *testing.T) {
	// Big enough to exceed parallelVolumeThreshold.
	r := rng.New(9)
	a, b := New(128, 64), New(64, 32)
	for i := range a.Data {
		a.Data[i] = r.Normal(0, 1)
	}
	for i := range b.Data {
		b.Data[i] = r.Normal(0, 1)
	}
	got, want := MatMul(a, b), naiveMatMul(a, b)
	for i := range got.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatal("parallel MatMul diverges from naive")
		}
	}
}

func TestMatMulPanics(t *testing.T) {
	a, b := New(2, 3), New(4, 2)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("inner mismatch did not panic")
			}
		}()
		MatMul(a, b)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("aliased dst did not panic")
			}
		}()
		sq := New(3, 3)
		MatMulInto(sq, sq, New(3, 3))
	}()
}

func TestMatMulATMatches(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m, k, n := 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10)
		a, b := New(m, k), New(m, n)
		for i := range a.Data {
			a.Data[i] = r.Normal(0, 1)
		}
		for i := range b.Data {
			b.Data[i] = r.Normal(0, 1)
		}
		dst := New(k, n)
		MatMulATInto(dst, a, b)
		want := naiveMatMul(a.Transpose(), b)
		for i := range dst.Data {
			if math.Abs(dst.Data[i]-want.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMatMulBTMatches(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		m, k, n := 1+r.Intn(10), 1+r.Intn(10), 1+r.Intn(10)
		a, b := New(m, k), New(n, k)
		for i := range a.Data {
			a.Data[i] = r.Normal(0, 1)
		}
		for i := range b.Data {
			b.Data[i] = r.Normal(0, 1)
		}
		dst := New(m, n)
		MatMulBTInto(dst, a, b)
		want := naiveMatMul(a, b.Transpose())
		for i := range dst.Data {
			if math.Abs(dst.Data[i]-want.Data[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	at := a.Transpose()
	if at.Rows() != 3 || at.Cols() != 2 {
		t.Fatalf("transpose shape %v", at.Shape)
	}
	if at.At(2, 1) != 6 || at.At(0, 1) != 4 {
		t.Fatalf("transpose values wrong: %v", at.Data)
	}
	// (Aᵀ)ᵀ = A
	back := at.Transpose()
	for i := range a.Data {
		if back.Data[i] != a.Data[i] {
			t.Fatal("double transpose not identity")
		}
	}
}

func TestConvGeom(t *testing.T) {
	g := ConvGeom{InC: 3, InH: 8, InW: 8, K: 3, Stride: 1, Pad: 1}
	if g.OutH() != 8 || g.OutW() != 8 {
		t.Fatalf("same-pad geometry wrong: %d x %d", g.OutH(), g.OutW())
	}
	g2 := ConvGeom{InC: 1, InH: 5, InW: 5, K: 3, Stride: 2, Pad: 0}
	if g2.OutH() != 2 || g2.OutW() != 2 {
		t.Fatalf("strided geometry wrong: %d x %d", g2.OutH(), g2.OutW())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid geometry did not panic")
		}
	}()
	ConvGeom{InC: 1, InH: 2, InW: 2, K: 5, Stride: 1, Pad: 0}.Validate()
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: columns are exactly the pixels.
	g := ConvGeom{InC: 1, InH: 3, InW: 3, K: 1, Stride: 1, Pad: 0}
	img := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}
	cols := New(9, 1)
	Im2Col(g, img, cols)
	for i, v := range img {
		if cols.Data[i] != v {
			t.Fatalf("1x1 im2col wrong: %v", cols.Data)
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	g := ConvGeom{InC: 1, InH: 2, InW: 2, K: 3, Stride: 1, Pad: 1}
	img := []float64{1, 2, 3, 4}
	cols := New(g.OutH()*g.OutW(), g.InC*g.K*g.K)
	Im2Col(g, img, cols)
	// First output position (0,0) covers rows -1..1, cols -1..1; the
	// top-left 2x2 of the patch is padding.
	first := cols.Row(0)
	want := []float64{0, 0, 0, 0, 1, 2, 0, 3, 4}
	for i, v := range want {
		if first[i] != v {
			t.Fatalf("padded patch = %v, want %v", first, want)
		}
	}
}

func TestCol2ImIsAdjointOfIm2Col(t *testing.T) {
	// The adjoint test: <im2col(x), y> == <x, col2im(y)> for random x, y.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := ConvGeom{
			InC:    1 + r.Intn(3),
			InH:    3 + r.Intn(5),
			InW:    3 + r.Intn(5),
			K:      1 + r.Intn(3),
			Stride: 1 + r.Intn(2),
			Pad:    r.Intn(2),
		}
		if g.OutH() <= 0 || g.OutW() <= 0 {
			return true
		}
		n := g.InC * g.InH * g.InW
		x := make([]float64, n)
		for i := range x {
			x[i] = r.Normal(0, 1)
		}
		cols := New(g.OutH()*g.OutW(), g.InC*g.K*g.K)
		Im2Col(g, x, cols)
		y := New(g.OutH()*g.OutW(), g.InC*g.K*g.K)
		for i := range y.Data {
			y.Data[i] = r.Normal(0, 1)
		}
		lhs := 0.0
		for i := range cols.Data {
			lhs += cols.Data[i] * y.Data[i]
		}
		xGrad := make([]float64, n)
		Col2Im(g, y, xGrad)
		rhs := 0.0
		for i := range x {
			rhs += x[i] * xGrad[i]
		}
		return math.Abs(lhs-rhs) < 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	r := rng.New(1)
	a, m := New(64, 64), New(64, 64)
	for i := range a.Data {
		a.Data[i] = r.Normal(0, 1)
	}
	for i := range m.Data {
		m.Data[i] = r.Normal(0, 1)
	}
	dst := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(dst, a, m)
	}
}

func BenchmarkIm2Col(b *testing.B) {
	g := ConvGeom{InC: 3, InH: 16, InW: 16, K: 3, Stride: 1, Pad: 1}
	img := make([]float64, g.InC*g.InH*g.InW)
	cols := New(g.OutH()*g.OutW(), g.InC*g.K*g.K)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(g, img, cols)
	}
}
