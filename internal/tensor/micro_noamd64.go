//go:build !amd64

package tensor

// amd64 vector kernels are never called when useAVX512/useAVX are false.

func micro4x4avx(kc int, ap, bp, c *float64, ldc int, first bool) {
	panic("tensor: AVX micro-kernel called on non-amd64")
}

func micro8x8avx512(kc int, ap, bp, c *float64, ldc int, first bool) {
	panic("tensor: AVX-512 micro-kernel called on non-amd64")
}

func axpyAVX(alpha float64, x, y *float64, n int) {
	panic("tensor: AVX kernel called on non-amd64")
}

func axpyAVX512(alpha float64, x, y *float64, n int) {
	panic("tensor: AVX-512 kernel called on non-amd64")
}

func scaleAVX(alpha float64, x *float64, n int) {
	panic("tensor: AVX kernel called on non-amd64")
}

func scaleAVX512(alpha float64, x *float64, n int) {
	panic("tensor: AVX-512 kernel called on non-amd64")
}

func addAVX(x, y *float64, n int) {
	panic("tensor: AVX kernel called on non-amd64")
}

func addAVX512(x, y *float64, n int) {
	panic("tensor: AVX-512 kernel called on non-amd64")
}

func reluFwdAVX(x, out *float64, n int) {
	panic("tensor: AVX kernel called on non-amd64")
}

func reluBwdAVX(x, grad, out *float64, n int) {
	panic("tensor: AVX kernel called on non-amd64")
}

func leakyFwdAVX(alpha float64, x, out *float64, n int) {
	panic("tensor: AVX kernel called on non-amd64")
}

func leakyBwdAVX(alpha float64, x, grad, out *float64, n int) {
	panic("tensor: AVX kernel called on non-amd64")
}

func micro4x8avxF32(kc int, ap, bp, c *float32, ldc int, first bool) {
	panic("tensor: AVX f32 micro-kernel called on non-amd64")
}

func micro8x16avx512F32(kc int, ap, bp, c *float32, ldc int, first bool) {
	panic("tensor: AVX-512 f32 micro-kernel called on non-amd64")
}

func axpyAVXF32(alpha float32, x, y *float32, n int) {
	panic("tensor: AVX f32 kernel called on non-amd64")
}

func axpyAVX512F32(alpha float32, x, y *float32, n int) {
	panic("tensor: AVX-512 f32 kernel called on non-amd64")
}

func scaleAVXF32(alpha float32, x *float32, n int) {
	panic("tensor: AVX f32 kernel called on non-amd64")
}

func scaleAVX512F32(alpha float32, x *float32, n int) {
	panic("tensor: AVX-512 f32 kernel called on non-amd64")
}

func addAVXF32(x, y *float32, n int) {
	panic("tensor: AVX f32 kernel called on non-amd64")
}

func addAVX512F32(x, y *float32, n int) {
	panic("tensor: AVX-512 f32 kernel called on non-amd64")
}

func reluFwdAVXF32(x, out *float32, n int) {
	panic("tensor: AVX f32 kernel called on non-amd64")
}

func reluBwdAVXF32(x, grad, out *float32, n int) {
	panic("tensor: AVX f32 kernel called on non-amd64")
}
