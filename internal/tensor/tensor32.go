package tensor

import (
	"fmt"
	"math"
)

// Tensor32 is the float32 storage arm of the numeric substrate: a
// dense, row-major float32 tensor mirroring Tensor's surface (shape
// queries, element access, zero-alloc Bind2D rebinding) with its own
// blocked GEMM (blocked32.go) and SIMD elementwise layer
// (elemwise32.go). The two arms share one generic scalar core
// (generic.go), so every float32 kernel obeys the same determinism
// contract as its float64 twin: one rounding per multiply, one per add,
// never fused, each output element on a single ascending-k chain —
// bit-identical across backends and worker counts within f32 mode.
type Tensor32 struct {
	Shape []int
	Data  []float32
}

// New32 returns a zero float32 tensor with the given shape. Every
// dimension must be positive.
func New32(shape ...int) *Tensor32 {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor32{Shape: append([]int(nil), shape...), Data: make([]float32, n)}
}

// FromSlice32 wraps data in a float32 tensor of the given shape. The
// slice is used directly (not copied); its length must equal the
// shape's volume.
func FromSlice32(data []float32, shape ...int) *Tensor32 {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (need %d)", len(data), shape, n))
	}
	return &Tensor32{Shape: append([]int(nil), shape...), Data: data}
}

// Bind2D repoints the tensor at data with shape (rows, cols) without
// allocating — the float32 twin of (*Tensor).Bind2D.
func (t *Tensor32) Bind2D(data []float32, rows, cols int) *Tensor32 {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: non-positive dimension in shape [%d %d]", rows, cols))
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match shape [%d %d] (need %d)", len(data), rows, cols, rows*cols))
	}
	if len(t.Shape) != 2 {
		t.Shape = make([]int, 2)
	}
	t.Shape[0], t.Shape[1] = rows, cols
	t.Data = data
	return t
}

// Len returns the total number of elements.
func (t *Tensor32) Len() int { return len(t.Data) }

// Dims returns the number of axes.
func (t *Tensor32) Dims() int { return len(t.Shape) }

// Rows returns the number of rows of a 2-D tensor.
func (t *Tensor32) Rows() int { t.want2D(); return t.Shape[0] }

// Cols returns the number of columns of a 2-D tensor.
func (t *Tensor32) Cols() int { t.want2D(); return t.Shape[1] }

func (t *Tensor32) want2D() {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: expected 2-D tensor, have shape %v", t.Shape))
	}
}

// At returns element (i, j) of a 2-D tensor.
func (t *Tensor32) At(i, j int) float32 {
	t.want2D()
	return t.Data[i*t.Shape[1]+j]
}

// Set assigns element (i, j) of a 2-D tensor.
func (t *Tensor32) Set(i, j int, v float32) {
	t.want2D()
	t.Data[i*t.Shape[1]+j] = v
}

// Row returns a view (not a copy) of row i of a 2-D tensor.
func (t *Tensor32) Row(i int) []float32 {
	t.want2D()
	c := t.Shape[1]
	return t.Data[i*c : (i+1)*c]
}

// Clone returns a deep copy.
func (t *Tensor32) Clone() *Tensor32 {
	c := &Tensor32{Shape: append([]int(nil), t.Shape...), Data: make([]float32, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Zero sets all elements to 0.
func (t *Tensor32) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor32) SameShape(o *Tensor32) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if o.Shape[i] != d {
			return false
		}
	}
	return true
}

// MatMul32 returns a·b for 2-D float32 tensors a (m×k) and b (k×n).
func MatMul32(a, b *Tensor32) *Tensor32 {
	out := New32(a.Rows(), b.Cols())
	MatMul32Into(out, a, b)
	return out
}

// MatMul32Into computes dst ← a·b. dst must be m×n and distinct from a
// and b.
func MatMul32Into(dst, a, b *Tensor32) {
	m, ka := a.Rows(), a.Cols()
	kb, n := b.Rows(), b.Cols()
	if ka != kb {
		panic(fmt.Sprintf("tensor: MatMul32 inner dimension mismatch %d vs %d", ka, kb))
	}
	if dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: MatMul32Into dst shape %v, want (%d,%d)", dst.Shape, m, n))
	}
	if dst == a || dst == b {
		panic("tensor: MatMul32Into dst aliases an input")
	}
	gemmInto32(dst, a, b, gemmNN)
}

// MatMulNaive32Into computes dst ← a·b with the unblocked reference
// triple loop — the kernel the blocked f32 path is bit-identical to.
func MatMulNaive32Into(dst, a, b *Tensor32) {
	m, ka := a.Rows(), a.Cols()
	kb, n := b.Rows(), b.Cols()
	if ka != kb {
		panic(fmt.Sprintf("tensor: MatMul32 inner dimension mismatch %d vs %d", ka, kb))
	}
	if dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: MatMulNaive32Into dst shape %v, want (%d,%d)", dst.Shape, m, n))
	}
	if dst == a || dst == b {
		panic("tensor: MatMulNaive32Into dst aliases an input")
	}
	gemmNaive32(dst, a, b, gemmNN)
}

// MatMulAT32Into computes dst ← aᵀ·b for a (m×k), b (m×n), dst (k×n).
func MatMulAT32Into(dst, a, b *Tensor32) {
	m, k := a.Rows(), a.Cols()
	mb, n := b.Rows(), b.Cols()
	if m != mb {
		panic(fmt.Sprintf("tensor: MatMulAT32 outer dimension mismatch %d vs %d", m, mb))
	}
	if dst.Rows() != k || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: MatMulAT32Into dst shape %v, want (%d,%d)", dst.Shape, k, n))
	}
	if dst == a || dst == b {
		panic("tensor: MatMulAT32Into dst aliases an input")
	}
	gemmInto32(dst, a, b, gemmAT)
}

// MatMulBT32Into computes dst ← a·bᵀ for a (m×k), b (n×k), dst (m×n).
func MatMulBT32Into(dst, a, b *Tensor32) {
	m, k := a.Rows(), a.Cols()
	n, kb := b.Rows(), b.Cols()
	if k != kb {
		panic(fmt.Sprintf("tensor: MatMulBT32 inner dimension mismatch %d vs %d", k, kb))
	}
	if dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: MatMulBT32Into dst shape %v, want (%d,%d)", dst.Shape, m, n))
	}
	if dst == a || dst == b {
		panic("tensor: MatMulBT32Into dst aliases an input")
	}
	gemmInto32(dst, a, b, gemmBT)
}

// Im2Col32 lowers one float32 image (flattened CHW layout) into a
// column matrix — the float32 twin of Im2Col, sharing im2colCoreG.
func Im2Col32(g ConvGeom, img []float32, cols *Tensor32) {
	g.Validate()
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col32 image length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	oh, ow := g.OutH(), g.OutW()
	patch := g.InC * g.K * g.K
	if cols.Rows() != oh*ow || cols.Cols() != patch {
		panic(fmt.Sprintf("tensor: Im2Col32 cols shape %v, want (%d,%d)", cols.Shape, oh*ow, patch))
	}
	im2colCoreG(g, img, cols.Data)
}

// Col2Im32 accumulates the float32 column-matrix gradient back into an
// image gradient (the adjoint of Im2Col32). img is accumulated into,
// not zeroed.
func Col2Im32(g ConvGeom, cols *Tensor32, img []float32) {
	g.Validate()
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2Im32 image length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	oh, ow := g.OutH(), g.OutW()
	patch := g.InC * g.K * g.K
	if cols.Rows() != oh*ow || cols.Cols() != patch {
		panic(fmt.Sprintf("tensor: Col2Im32 cols shape %v, want (%d,%d)", cols.Shape, oh*ow, patch))
	}
	col2imCoreG(g, cols.Data, img)
}

// Widen converts src exactly into float64, reusing dst when it has the
// capacity. Every float32 is exactly representable in float64, so the
// conversion is deterministic and lossless: Quantize(Widen(v)) == v bit
// for bit, including NaN payloads, signed zeros and denormals.
func Widen(dst []float64, src []float32) []float64 {
	if cap(dst) < len(src) {
		dst = make([]float64, len(src))
	}
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = float64(v)
	}
	return dst
}

// Quantize converts src to float32 with one round-to-nearest-even per
// element (the hardware conversion), reusing dst when it has the
// capacity. This is the only lossy step of f32 mode, and it is
// deterministic: the result depends only on src values, never on
// backend or worker count.
func Quantize(dst []float32, src []float64) []float32 {
	if cap(dst) < len(src) {
		dst = make([]float32, len(src))
	}
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = float32(v)
	}
	return dst
}

// QuantizeLattice rounds v in place onto the float32 lattice:
// v[i] = float64(float32(v[i])). After it, Widen(Quantize(v)) == v, so
// a float64-carried vector is exactly representable at half width —
// the invariant the fl package's f32 mode maintains for the global
// model between rounds.
func QuantizeLattice(v []float64) {
	for i, x := range v {
		v[i] = float64(float32(x))
	}
}

// AllFinite32 reports whether every element is finite (no NaN or ±Inf).
func AllFinite32(v []float32) bool {
	for _, x := range v {
		f := float64(x)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return false
		}
	}
	return true
}
