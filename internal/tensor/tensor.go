// Package tensor implements the precision-parametric dense tensors used
// as the data substrate of the neural-network library: float64 (Tensor,
// the default) and float32 (Tensor32) storage arms over one generic
// element core (generic.go). Only the operations needed by the FedDRL
// reproduction are provided: construction and shape queries, element
// access, matrix multiplication, transpose, the im2col/col2im lowering
// used by the convolution layers, and exact f64↔f32 conversion
// (Widen/Quantize) at the precision boundary.
//
// The matrix-product kernels of both widths are cache-blocked and
// register-tiled (blocked.go, blocked32.go) with reusable packing
// scratch, so steady-state training allocates nothing, and they
// optionally fan out over the execution pool installed via SetParallel
// — never over raw goroutines — so kernel parallelism composes with
// the work-stealing scheduler instead of oversubscribing it. Blocked,
// naive, sequential and parallel paths are all bit-identical by
// construction, within each precision (see backend.go for the
// backend×precision kernel table).
//
// Tensors are row-major. A 2-D tensor of shape (r, c) stores element
// (i, j) at Data[i*c+j]. Batched activations are 2-D: (batch, features).
package tensor

import "fmt"

// Tensor is a dense, row-major float64 tensor.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New returns a zero tensor with the given shape. Every dimension must be
// positive.
func New(shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); its length must equal the shape's volume.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, d := range shape {
		if d <= 0 {
			panic(fmt.Sprintf("tensor: non-positive dimension %d in shape %v", d, shape))
		}
		n *= d
	}
	if len(data) != n {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v (need %d)", len(data), shape, n))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Bind2D repoints the tensor at data with shape (rows, cols) without
// allocating: the existing Shape slice is rewritten when it already has
// two entries. data is used directly (not copied) and its length must be
// rows*cols. This is the reuse-a-header counterpart of FromSlice for hot
// paths that window over a larger backing array chunk by chunk.
func (t *Tensor) Bind2D(data []float64, rows, cols int) *Tensor {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("tensor: non-positive dimension in shape [%d %d]", rows, cols))
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d does not match shape [%d %d] (need %d)", len(data), rows, cols, rows*cols))
	}
	if len(t.Shape) != 2 {
		t.Shape = make([]int, 2)
	}
	t.Shape[0], t.Shape[1] = rows, cols
	t.Data = data
	return t
}

// Len returns the total number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Dims returns the number of axes.
func (t *Tensor) Dims() int { return len(t.Shape) }

// Rows and Cols return the 2-D dimensions; they panic for non-2-D tensors.
func (t *Tensor) Rows() int { t.want2D(); return t.Shape[0] }

// Cols returns the number of columns of a 2-D tensor.
func (t *Tensor) Cols() int { t.want2D(); return t.Shape[1] }

func (t *Tensor) want2D() {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: expected 2-D tensor, have shape %v", t.Shape))
	}
}

// At returns element (i, j) of a 2-D tensor.
func (t *Tensor) At(i, j int) float64 {
	t.want2D()
	return t.Data[i*t.Shape[1]+j]
}

// Set assigns element (i, j) of a 2-D tensor.
func (t *Tensor) Set(i, j int, v float64) {
	t.want2D()
	t.Data[i*t.Shape[1]+j] = v
}

// Row returns a view (not a copy) of row i of a 2-D tensor.
func (t *Tensor) Row(i int) []float64 {
	t.want2D()
	c := t.Shape[1]
	return t.Data[i*c : (i+1)*c]
}

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	c := &Tensor{Shape: append([]int(nil), t.Shape...), Data: make([]float64, len(t.Data))}
	copy(c.Data, t.Data)
	return c
}

// Zero sets all elements to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// SameShape reports whether t and o have identical shapes.
func (t *Tensor) SameShape(o *Tensor) bool {
	if len(t.Shape) != len(o.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if o.Shape[i] != d {
			return false
		}
	}
	return true
}

// AddInPlace computes t ← t + o through the vectorized elementwise
// kernels (elemwise.go). Shapes must match.
func (t *Tensor) AddInPlace(o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AddInPlace shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	Add(o.Data, t.Data)
}

// ScaleInPlace computes t ← alpha * t through the vectorized elementwise
// kernels.
func (t *Tensor) ScaleInPlace(alpha float64) {
	Scale(alpha, t.Data)
}

// AxpyInPlace computes t ← t + alpha * o through the vectorized
// elementwise kernels. Shapes must match.
func (t *Tensor) AxpyInPlace(alpha float64, o *Tensor) {
	if !t.SameShape(o) {
		panic(fmt.Sprintf("tensor: AxpyInPlace shape mismatch %v vs %v", t.Shape, o.Shape))
	}
	Axpy(alpha, o.Data, t.Data)
}

// MatMul returns a·b for 2-D tensors a (m×k) and b (k×n).
func MatMul(a, b *Tensor) *Tensor {
	out := New(a.Rows(), b.Cols())
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes dst ← a·b. dst must be m×n and distinct from a and b.
func MatMulInto(dst, a, b *Tensor) {
	m, ka := a.Rows(), a.Cols()
	kb, n := b.Rows(), b.Cols()
	if ka != kb {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %d vs %d", ka, kb))
	}
	if dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: MatMulInto dst shape %v, want (%d,%d)", dst.Shape, m, n))
	}
	if dst == a || dst == b {
		panic("tensor: MatMulInto dst aliases an input")
	}
	gemmInto(dst, a, b, gemmNN)
}

// MatMulNaiveInto computes dst ← a·b with the unblocked reference
// triple loop — the kernel the blocked path is bit-identical to. It
// exists for benchmarks and the verify gate; production callers use
// MatMulInto, which dispatches to the fastest identical path.
func MatMulNaiveInto(dst, a, b *Tensor) {
	m, ka := a.Rows(), a.Cols()
	kb, n := b.Rows(), b.Cols()
	if ka != kb {
		panic(fmt.Sprintf("tensor: MatMul inner dimension mismatch %d vs %d", ka, kb))
	}
	if dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: MatMulNaiveInto dst shape %v, want (%d,%d)", dst.Shape, m, n))
	}
	if dst == a || dst == b {
		panic("tensor: MatMulNaiveInto dst aliases an input")
	}
	gemmNaive(dst, a, b, gemmNN)
}

// MatMulATInto computes dst ← aᵀ·b for a (m×k), b (m×n), dst (k×n).
// Used by Dense backward for weight gradients without materializing aᵀ.
func MatMulATInto(dst, a, b *Tensor) {
	m, k := a.Rows(), a.Cols()
	mb, n := b.Rows(), b.Cols()
	if m != mb {
		panic(fmt.Sprintf("tensor: MatMulAT outer dimension mismatch %d vs %d", m, mb))
	}
	if dst.Rows() != k || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: MatMulATInto dst shape %v, want (%d,%d)", dst.Shape, k, n))
	}
	if dst == a || dst == b {
		panic("tensor: MatMulATInto dst aliases an input")
	}
	gemmInto(dst, a, b, gemmAT)
}

// MatMulBTInto computes dst ← a·bᵀ for a (m×k), b (n×k), dst (m×n).
// Used by Dense backward for input gradients without materializing bᵀ.
func MatMulBTInto(dst, a, b *Tensor) {
	m, k := a.Rows(), a.Cols()
	n, kb := b.Rows(), b.Cols()
	if k != kb {
		panic(fmt.Sprintf("tensor: MatMulBT inner dimension mismatch %d vs %d", k, kb))
	}
	if dst.Rows() != m || dst.Cols() != n {
		panic(fmt.Sprintf("tensor: MatMulBTInto dst shape %v, want (%d,%d)", dst.Shape, m, n))
	}
	if dst == a || dst == b {
		panic("tensor: MatMulBTInto dst aliases an input")
	}
	gemmInto(dst, a, b, gemmBT)
}

// Transpose returns the transpose of a 2-D tensor.
func (t *Tensor) Transpose() *Tensor {
	r, c := t.Rows(), t.Cols()
	out := New(c, r)
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		for j, v := range row {
			out.Data[j*r+i] = v
		}
	}
	return out
}

// ConvGeom describes a 2-D convolution geometry shared by Im2Col/Col2Im
// and the nn.Conv2D layer.
type ConvGeom struct {
	InC, InH, InW int // input channels and spatial size
	K             int // square kernel size
	Stride        int
	Pad           int
}

// OutH returns the output height of the convolution.
func (g ConvGeom) OutH() int { return (g.InH+2*g.Pad-g.K)/g.Stride + 1 }

// OutW returns the output width of the convolution.
func (g ConvGeom) OutW() int { return (g.InW+2*g.Pad-g.K)/g.Stride + 1 }

// Validate panics if the geometry is inconsistent.
func (g ConvGeom) Validate() {
	if g.InC <= 0 || g.InH <= 0 || g.InW <= 0 || g.K <= 0 || g.Stride <= 0 || g.Pad < 0 {
		panic(fmt.Sprintf("tensor: invalid conv geometry %+v", g))
	}
	if g.OutH() <= 0 || g.OutW() <= 0 {
		panic(fmt.Sprintf("tensor: conv geometry %+v yields empty output", g))
	}
}

// Im2Col lowers one image (flattened CHW layout, len = InC*InH*InW) into a
// column matrix of shape (OutH*OutW, InC*K*K) so that convolution becomes
// a matrix product with the (InC*K*K, OutC) kernel matrix. cols must have
// that shape; it is overwritten.
func Im2Col(g ConvGeom, img []float64, cols *Tensor) {
	g.Validate()
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2Col image length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	oh, ow := g.OutH(), g.OutW()
	patch := g.InC * g.K * g.K
	if cols.Rows() != oh*ow || cols.Cols() != patch {
		panic(fmt.Sprintf("tensor: Im2Col cols shape %v, want (%d,%d)", cols.Shape, oh*ow, patch))
	}
	im2colCore(g, img, cols.Data)
}

// Im2ColBatch lowers every row of x (batch, InC*InH*InW) into one column
// matrix of shape (batch·OutH·OutW, InC*K*K) — sample i occupies the row
// block [i·OutH·OutW, (i+1)·OutH·OutW). One whole-batch buffer turns a
// convolution layer call into a single matrix product instead of one
// small GEMM per image.
func Im2ColBatch(g ConvGeom, x, cols *Tensor) {
	g.Validate()
	if x.Cols() != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Im2ColBatch input width %d, want %d", x.Cols(), g.InC*g.InH*g.InW))
	}
	batch := x.Rows()
	ohw := g.OutH() * g.OutW()
	patch := g.InC * g.K * g.K
	if cols.Rows() != batch*ohw || cols.Cols() != patch {
		panic(fmt.Sprintf("tensor: Im2ColBatch cols shape %v, want (%d,%d)", cols.Shape, batch*ohw, patch))
	}
	block := ohw * patch
	for i := 0; i < batch; i++ {
		im2colCore(g, x.Row(i), cols.Data[i*block:(i+1)*block])
	}
}

// im2colCore fills cd (length OutH·OutW·InC·K·K) from one image. The
// loop nest lives in the generic element core (im2colCoreG), shared
// with the float32 arm (Im2Col32).
func im2colCore(g ConvGeom, img []float64, cd []float64) {
	im2colCoreG(g, img, cd)
}

// Col2Im accumulates the column-matrix gradient back into an image
// gradient (the adjoint of Im2Col). img is accumulated into, not zeroed.
func Col2Im(g ConvGeom, cols *Tensor, img []float64) {
	g.Validate()
	if len(img) != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2Im image length %d, want %d", len(img), g.InC*g.InH*g.InW))
	}
	oh, ow := g.OutH(), g.OutW()
	patch := g.InC * g.K * g.K
	if cols.Rows() != oh*ow || cols.Cols() != patch {
		panic(fmt.Sprintf("tensor: Col2Im cols shape %v, want (%d,%d)", cols.Shape, oh*ow, patch))
	}
	col2imCore(g, cols.Data, img)
}

// Col2ImBatch accumulates a whole-batch column-matrix gradient (the
// Im2ColBatch layout) into per-sample image gradients: row i of imgs
// receives the adjoint of sample i's row block. imgs is accumulated
// into, not zeroed.
func Col2ImBatch(g ConvGeom, cols, imgs *Tensor) {
	g.Validate()
	if imgs.Cols() != g.InC*g.InH*g.InW {
		panic(fmt.Sprintf("tensor: Col2ImBatch image width %d, want %d", imgs.Cols(), g.InC*g.InH*g.InW))
	}
	batch := imgs.Rows()
	ohw := g.OutH() * g.OutW()
	patch := g.InC * g.K * g.K
	if cols.Rows() != batch*ohw || cols.Cols() != patch {
		panic(fmt.Sprintf("tensor: Col2ImBatch cols shape %v, want (%d,%d)", cols.Shape, batch*ohw, patch))
	}
	block := ohw * patch
	for i := 0; i < batch; i++ {
		col2imCore(g, cols.Data[i*block:(i+1)*block], imgs.Row(i))
	}
}

// col2imCore accumulates cd (one sample's column block) into img via
// the shared generic core (col2imCoreG).
func col2imCore(g ConvGeom, cd []float64, img []float64) {
	col2imCoreG(g, cd, img)
}
