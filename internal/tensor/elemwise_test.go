package tensor

import (
	"fmt"
	"math"
	"testing"

	"feddrl/internal/rng"
)

// fillElems populates x with adversarial elementwise inputs: normal
// deviates plus exact +0/-0, NaN, ±Inf and denormals, so the SIMD
// bodies are checked bit for bit against the scalar branches on every
// special-value class.
func fillElems(x []float64, r *rng.RNG) {
	specials := []float64{
		0, math.Copysign(0, -1), math.NaN(), math.Inf(1), math.Inf(-1),
		5e-324, -5e-324, 1, -1,
	}
	for i := range x {
		if r.Intn(4) == 0 {
			x[i] = specials[r.Intn(len(specials))]
		} else {
			x[i] = r.Normal(0, 1)
		}
	}
}

// sameBits compares slices bit for bit (NaN == NaN, +0 != -0).
func sameBits(t *testing.T, tag string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d] = %x, want %x", tag, i, got[i], want[i])
		}
	}
}

// Scalar references with the same explicit-conversion rounding guards
// as the generic kernels.
func refAxpy(alpha float64, x, y []float64) {
	for i, v := range x {
		y[i] += float64(alpha * v)
	}
}

func refScale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

func refAdd(x, y []float64) {
	for i, v := range x {
		y[i] += v
	}
}

func refReLUFwd(x, out []float64) {
	for i, v := range x {
		if v <= 0 {
			out[i] = 0
		} else {
			out[i] = v
		}
	}
}

func refReLUBwd(x, g, out []float64) {
	for i := range x {
		if x[i] <= 0 {
			out[i] = 0
		} else {
			out[i] = g[i]
		}
	}
}

func refLeakyFwd(alpha float64, x, out []float64) {
	for i, v := range x {
		if v < 0 {
			out[i] = float64(alpha * v)
		} else {
			out[i] = v
		}
	}
}

func refLeakyBwd(alpha float64, x, g, out []float64) {
	for i := range x {
		if x[i] < 0 {
			out[i] = float64(g[i] * alpha)
		} else {
			out[i] = g[i]
		}
	}
}

// TestElemwiseBitIdentity checks every elementwise kernel against its
// scalar reference, bit for bit, for every backend in the fallback
// chain and lengths straddling the 4- and 8-wide vector bodies and
// their scalar tails.
func TestElemwiseBitIdentity(t *testing.T) {
	restoreBackend(t)
	lengths := []int{1, 2, 3, 4, 5, 7, 8, 9, 11, 15, 16, 17, 31, 64, 257, 1003}
	const alpha = 0.3 // not exactly representable: scaling really rounds
	for _, bk := range Backends() {
		if err := SetBackend(bk); err != nil {
			t.Fatalf("SetBackend(%q): %v", bk, err)
		}
		for _, n := range lengths {
			t.Run(fmt.Sprintf("%s_n%d", bk, n), func(t *testing.T) {
				r := rng.New(uint64(31*n + 7))
				x := make([]float64, n)
				g := make([]float64, n)
				y0 := make([]float64, n)
				fillElems(x, r)
				fillElems(g, r)
				fillElems(y0, r)

				y := append([]float64(nil), y0...)
				want := append([]float64(nil), y0...)
				Axpy(alpha, x, y)
				refAxpy(alpha, x, want)
				sameBits(t, "Axpy", y, want)

				s := append([]float64(nil), x...)
				want = append(want[:0], x...)
				Scale(alpha, s)
				refScale(alpha, want)
				sameBits(t, "Scale", s, want)

				y = append(y[:0], y0...)
				want = append(want[:0], y0...)
				Add(x, y)
				refAdd(x, want)
				sameBits(t, "Add", y, want)

				out := make([]float64, n)
				want = make([]float64, n)
				ReLUForward(x, out)
				refReLUFwd(x, want)
				sameBits(t, "ReLUForward", out, want)

				ReLUBackward(x, g, out)
				refReLUBwd(x, g, want)
				sameBits(t, "ReLUBackward", out, want)

				LeakyReLUForward(alpha, x, out)
				refLeakyFwd(alpha, x, want)
				sameBits(t, "LeakyReLUForward", out, want)

				LeakyReLUBackward(alpha, x, g, out)
				refLeakyBwd(alpha, x, g, want)
				sameBits(t, "LeakyReLUBackward", out, want)
			})
		}
	}
}

// TestElemwiseInPlaceAliasing pins the documented exact-aliasing
// contract: out may be x (activations) or g (backward passes).
func TestElemwiseInPlaceAliasing(t *testing.T) {
	restoreBackend(t)
	const n = 37
	for _, bk := range Backends() {
		if err := SetBackend(bk); err != nil {
			t.Fatalf("SetBackend(%q): %v", bk, err)
		}
		r := rng.New(99)
		x := make([]float64, n)
		g := make([]float64, n)
		fillElems(x, r)
		fillElems(g, r)

		want := make([]float64, n)
		refReLUFwd(x, want)
		inPlace := append([]float64(nil), x...)
		ReLUForward(inPlace, inPlace)
		sameBits(t, bk+"/ReLUForward(x,x)", inPlace, want)

		refLeakyBwd(0.1, x, g, want)
		gAlias := append([]float64(nil), g...)
		LeakyReLUBackward(0.1, x, gAlias, gAlias)
		sameBits(t, bk+"/LeakyReLUBackward(g,g)", gAlias, want)
	}
}

// TestTensorElemwiseMethods checks the Tensor methods route through the
// kernels with the same results and still enforce shape agreement.
func TestTensorElemwiseMethods(t *testing.T) {
	r := rng.New(5)
	a, b := New(7, 9), New(7, 9)
	fillRandom(a, r)
	fillRandom(b, r)

	sum := a.Clone()
	sum.AddInPlace(b)
	want := make([]float64, a.Len())
	copy(want, a.Data)
	refAdd(b.Data, want)
	sameBits(t, "AddInPlace", sum.Data, want)

	ax := a.Clone()
	ax.AxpyInPlace(-0.25, b)
	copy(want, a.Data)
	refAxpy(-0.25, b.Data, want)
	sameBits(t, "AxpyInPlace", ax.Data, want)

	sc := a.Clone()
	sc.ScaleInPlace(1.0 / 3.0)
	copy(want, a.Data)
	refScale(1.0/3.0, want)
	sameBits(t, "ScaleInPlace", sc.Data, want)

	for _, fn := range []func(){
		func() { a.AddInPlace(New(9, 7)) },
		func() { a.AxpyInPlace(1, New(9, 7)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("shape mismatch did not panic")
				}
			}()
			fn()
		}()
	}
}

// TestElemwiseAllocFree pins that the kernels never allocate — they are
// inner-loop calls of aggregation and SGD.
func TestElemwiseAllocFree(t *testing.T) {
	x := make([]float64, 1003)
	y := make([]float64, 1003)
	for i := range x {
		x[i] = float64(i)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		Axpy(0.5, x, y)
		Add(x, y)
		Scale(0.999, y)
		ReLUForward(x, y)
	}); allocs != 0 {
		t.Fatalf("elementwise kernels allocate %.1f times per run, want 0", allocs)
	}
}
