// NEON micro-kernel for the blocked GEMM (see blocked.go). One 4×4
// output tile lives in eight float64x2 accumulators (V0..V7: row r in
// V(2r)/V(2r+1)) across the packed panel. The Go arm64 assembler only
// exposes fused vector multiply-adds (VFMLA), which round once and would
// break the bit-identity contract, so the unfused two-operand FMUL/FADD
// vector forms are hand-encoded as WORDs:
//
//	FMUL Vd.2D, Vn.2D, Vm.2D = 0x6E60DC00 | Vm<<16 | Vn<<5 | Vd
//	FADD Vd.2D, Vn.2D, Vm.2D = 0x4E60D400 | Vm<<16 | Vn<<5 | Vd
//
// (encodings verified against go tool objdump). Each k step loads the
// packed B pair into V16/V17, broadcasts the four packed A values into
// V20..V23, and issues multiply-round (into V24/V25) then add-round per
// row — exactly the scalar kernel's per-element semantics.

#include "textflag.h"

// func microNeon4x4(kc int, ap, bp, c *float64, ldc int, first bool)
TEXT ·microNeon4x4(SB), NOSPLIT, $0-41
	MOVD	kc+0(FP), R0
	MOVD	ap+8(FP), R1
	MOVD	bp+16(FP), R2
	MOVD	c+24(FP), R3
	MOVD	ldc+32(FP), R4
	LSL	$3, R4, R4          // ldc in bytes
	ADD	R4, R3, R5          // &c[ldc]
	ADD	R4, R5, R6          // &c[2*ldc]
	ADD	R4, R6, R7          // &c[3*ldc]
	MOVBU	first+40(FP), R8
	CBZ	R8, load
	VEOR	V0.B16, V0.B16, V0.B16
	VEOR	V1.B16, V1.B16, V1.B16
	VEOR	V2.B16, V2.B16, V2.B16
	VEOR	V3.B16, V3.B16, V3.B16
	VEOR	V4.B16, V4.B16, V4.B16
	VEOR	V5.B16, V5.B16, V5.B16
	VEOR	V6.B16, V6.B16, V6.B16
	VEOR	V7.B16, V7.B16, V7.B16
	B	kloop
load:
	VLD1	(R3), [V0.D2, V1.D2]
	VLD1	(R5), [V2.D2, V3.D2]
	VLD1	(R6), [V4.D2, V5.D2]
	VLD1	(R7), [V6.D2, V7.D2]
kloop:
	CBZ	R0, done
	VLD1.P	32(R2), [V16.D2, V17.D2]  // bp[0:2], bp[2:4]
	VLD1.P	32(R1), [V18.D2, V19.D2]  // ap[0:2], ap[2:4]
	VDUP	V18.D[0], V20.D2          // broadcast a0
	VDUP	V18.D[1], V21.D2          // broadcast a1
	VDUP	V19.D[0], V22.D2          // broadcast a2
	VDUP	V19.D[1], V23.D2          // broadcast a3
	// row 0: V0 += a0·b[0:2], V1 += a0·b[2:4]
	WORD	$0x6E74DE18               // FMUL V24.2D, V16.2D, V20.2D
	WORD	$0x4E78D400               // FADD V0.2D, V0.2D, V24.2D
	WORD	$0x6E74DE39               // FMUL V25.2D, V17.2D, V20.2D
	WORD	$0x4E79D421               // FADD V1.2D, V1.2D, V25.2D
	// row 1
	WORD	$0x6E75DE18               // FMUL V24.2D, V16.2D, V21.2D
	WORD	$0x4E78D442               // FADD V2.2D, V2.2D, V24.2D
	WORD	$0x6E75DE39               // FMUL V25.2D, V17.2D, V21.2D
	WORD	$0x4E79D463               // FADD V3.2D, V3.2D, V25.2D
	// row 2
	WORD	$0x6E76DE18               // FMUL V24.2D, V16.2D, V22.2D
	WORD	$0x4E78D484               // FADD V4.2D, V4.2D, V24.2D
	WORD	$0x6E76DE39               // FMUL V25.2D, V17.2D, V22.2D
	WORD	$0x4E79D4A5               // FADD V5.2D, V5.2D, V25.2D
	// row 3
	WORD	$0x6E77DE18               // FMUL V24.2D, V16.2D, V23.2D
	WORD	$0x4E78D4C6               // FADD V6.2D, V6.2D, V24.2D
	WORD	$0x6E77DE39               // FMUL V25.2D, V17.2D, V23.2D
	WORD	$0x4E79D4E7               // FADD V7.2D, V7.2D, V25.2D
	SUB	$1, R0, R0
	B	kloop
done:
	VST1	[V0.D2, V1.D2], (R3)
	VST1	[V2.D2, V3.D2], (R5)
	VST1	[V4.D2, V5.D2], (R6)
	VST1	[V6.D2, V7.D2], (R7)
	RET
