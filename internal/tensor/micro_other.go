//go:build !amd64 && !arm64

package tensor

// detectBackends on architectures without a vector kernel: generic only.
func detectBackends() (avx512, avx, neon bool) {
	return false, false, false
}
