package mathx

import (
	"math"
	"testing"
	"testing/quick"

	"feddrl/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSoftmaxBasic(t *testing.T) {
	p := Softmax([]float64{1, 1, 1})
	for _, v := range p {
		if !almostEq(v, 1.0/3, 1e-12) {
			t.Fatalf("uniform softmax = %v", p)
		}
	}
	p = Softmax([]float64{0, math.Log(3)})
	if !almostEq(p[0], 0.25, 1e-12) || !almostEq(p[1], 0.75, 1e-12) {
		t.Fatalf("softmax([0,ln3]) = %v", p)
	}
}

func TestSoftmaxStability(t *testing.T) {
	p := Softmax([]float64{1000, 1000, 999})
	sum := 0.0
	for _, v := range p {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("unstable softmax: %v", p)
		}
		sum += v
	}
	if !almostEq(sum, 1, 1e-9) {
		t.Fatalf("softmax sum = %v", sum)
	}
	// Degenerate all -Inf input falls back to uniform.
	q := Softmax([]float64{math.Inf(-1), math.Inf(-1)})
	if !almostEq(q[0], 0.5, 1e-12) || !almostEq(q[1], 0.5, 1e-12) {
		t.Fatalf("degenerate softmax = %v", q)
	}
}

func TestSoftmaxSimplexProperty(t *testing.T) {
	// Property: for arbitrary finite inputs, softmax lies on the simplex
	// and is invariant to additive shifts.
	f := func(raw []float64, shift float64) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		for i, v := range raw {
			x[i] = math.Mod(v, 50) // keep finite and moderate
			if math.IsNaN(x[i]) {
				x[i] = 0
			}
		}
		shift = math.Mod(shift, 50)
		p := Softmax(x)
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		if !almostEq(sum, 1, 1e-9) {
			return false
		}
		shifted := make([]float64, len(x))
		for i := range x {
			shifted[i] = x[i] + shift
		}
		q := Softmax(shifted)
		for i := range p {
			if !almostEq(p[i], q[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSoftmaxToAliasing(t *testing.T) {
	x := []float64{1, 2, 3}
	SoftmaxTo(x, x)
	sum := x[0] + x[1] + x[2]
	if !almostEq(sum, 1, 1e-12) {
		t.Fatalf("aliased SoftmaxTo sum = %v", sum)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	SoftmaxTo(make([]float64, 2), x)
}

func TestLogSumExp(t *testing.T) {
	got := LogSumExp([]float64{0, 0})
	if !almostEq(got, math.Log(2), 1e-12) {
		t.Fatalf("LSE([0,0]) = %v", got)
	}
	if got := LogSumExp([]float64{1000, 1000}); !almostEq(got, 1000+math.Log(2), 1e-9) {
		t.Fatalf("LSE overflow guard failed: %v", got)
	}
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Fatalf("LSE(nil) = %v", got)
	}
}

func TestSumKahan(t *testing.T) {
	// 1 + 1e-16 repeated: naive summation loses the small terms.
	x := make([]float64, 0, 10001)
	x = append(x, 1)
	for i := 0; i < 10000; i++ {
		x = append(x, 1e-16)
	}
	got := Sum(x)
	want := 1 + 1e-12
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("Kahan sum = %.18f, want %.18f", got, want)
	}
}

func TestMeanVarianceStd(t *testing.T) {
	x := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(x); !almostEq(m, 5, 1e-12) {
		t.Fatalf("mean = %v", m)
	}
	if v := Variance(x); !almostEq(v, 4, 1e-12) {
		t.Fatalf("variance = %v", v)
	}
	if s := Std(x); !almostEq(s, 2, 1e-12) {
		t.Fatalf("std = %v", s)
	}
	if Mean(nil) != 0 || Variance([]float64{3}) != 0 {
		t.Fatal("empty/singleton statistics should be 0")
	}
}

func TestMinMaxArgMax(t *testing.T) {
	x := []float64{3, -1, 7, 7, 2}
	if Min(x) != -1 || Max(x) != 7 {
		t.Fatalf("min/max wrong: %v %v", Min(x), Max(x))
	}
	if ArgMax(x) != 2 {
		t.Fatalf("ArgMax = %d, want first maximal index 2", ArgMax(x))
	}
	for _, f := range []func(){func() { Min(nil) }, func() { Max(nil) }, func() { ArgMax(nil) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("empty-slice extremum did not panic")
				}
			}()
			f()
		}()
	}
}

func TestDotAxpyScaleFill(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if d := Dot(a, b); !almostEq(d, 32, 1e-12) {
		t.Fatalf("dot = %v", d)
	}
	y := []float64{1, 1, 1}
	Axpy(2, a, y)
	want := []float64{3, 5, 7}
	for i := range y {
		if y[i] != want[i] {
			t.Fatalf("axpy = %v", y)
		}
	}
	Scale(0.5, y)
	if y[0] != 1.5 || y[2] != 3.5 {
		t.Fatalf("scale = %v", y)
	}
	Fill(y, 9)
	if y[0] != 9 || y[1] != 9 || y[2] != 9 {
		t.Fatalf("fill = %v", y)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch did not panic")
		}
	}()
	Dot(a, y[:2])
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.3, 0, 1) != 0.3 {
		t.Fatal("clamp wrong")
	}
}

func TestL2Norm(t *testing.T) {
	if n := L2Norm([]float64{3, 4}); !almostEq(n, 5, 1e-12) {
		t.Fatalf("norm = %v", n)
	}
	if L2Norm(nil) != 0 || L2Norm([]float64{0, 0}) != 0 {
		t.Fatal("zero norm wrong")
	}
	// Overflow guard: naive sum of squares would be +Inf.
	if n := L2Norm([]float64{1e200, 1e200}); math.IsInf(n, 0) {
		t.Fatalf("norm overflowed: %v", n)
	}
}

func TestSoftplus(t *testing.T) {
	if !almostEq(Softplus(0), math.Log(2), 1e-12) {
		t.Fatalf("softplus(0) = %v", Softplus(0))
	}
	if !almostEq(Softplus(100), 100, 1e-9) {
		t.Fatalf("softplus(100) = %v", Softplus(100))
	}
	if Softplus(-100) <= 0 || Softplus(-100) > 1e-40 {
		t.Fatalf("softplus(-100) = %v", Softplus(-100))
	}
	// Monotone property over random points.
	r := rng.New(1)
	prevX, prevY := -40.0, Softplus(-40)
	for i := 0; i < 100; i++ {
		x := prevX + r.Float64()
		y := Softplus(x)
		if y < prevY {
			t.Fatalf("softplus not monotone at %v", x)
		}
		prevX, prevY = x, y
	}
}

func TestAllFinite(t *testing.T) {
	if !AllFinite([]float64{1, -2, 0}) {
		t.Fatal("finite slice reported non-finite")
	}
	if AllFinite([]float64{1, math.NaN()}) || AllFinite([]float64{math.Inf(1)}) {
		t.Fatal("non-finite slice reported finite")
	}
	if !AllFinite(nil) {
		t.Fatal("empty slice should be finite")
	}
}

func TestWeightedSum(t *testing.T) {
	dst := make([]float64, 3)
	WeightedSum(dst, []float64{0.25, 0.75}, [][]float64{{4, 0, 8}, {0, 4, 8}})
	want := []float64{1, 3, 8}
	for i := range dst {
		if !almostEq(dst[i], want[i], 1e-12) {
			t.Fatalf("WeightedSum = %v, want %v", dst, want)
		}
	}
	// Convex combination of identical vectors is the vector itself.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(8)
		k := 1 + r.Intn(5)
		vec := make([]float64, n)
		for i := range vec {
			vec[i] = r.Normal(0, 3)
		}
		vecs := make([][]float64, k)
		for j := range vecs {
			vecs[j] = vec
		}
		w := r.Dirichlet(onesSlice(k))
		out := make([]float64, n)
		WeightedSum(out, w, vecs)
		for i := range out {
			if !almostEq(out[i], vec[i], 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func onesSlice(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 1
	}
	return s
}

func TestWeightedSumPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched WeightedSum did not panic")
		}
	}()
	WeightedSum(make([]float64, 2), []float64{1}, [][]float64{{1, 2, 3}})
}
