// Package mathx collects the small numeric kernels shared by every other
// package in the FedDRL reproduction: numerically stable softmax and
// log-sum-exp, summary statistics over slices (mean, variance, extrema),
// and the BLAS-1 style vector primitives (dot, axpy, scale) used by the
// neural-network layers and the weighted model aggregation (Eq. 4 of the
// paper).
package mathx

import (
	"math"

	"feddrl/internal/tensor"
)

// Softmax returns the softmax of x in a freshly allocated slice. It is
// numerically stable (shifts by the max) and returns a uniform
// distribution for an empty-range degenerate input of all -Inf.
func Softmax(x []float64) []float64 {
	out := make([]float64, len(x))
	SoftmaxTo(out, x)
	return out
}

// SoftmaxTo writes softmax(x) into dst. dst and x must have equal length;
// they may alias.
func SoftmaxTo(dst, x []float64) {
	if len(dst) != len(x) {
		panic("mathx: SoftmaxTo length mismatch")
	}
	if len(x) == 0 {
		return
	}
	max := x[0]
	for _, v := range x[1:] {
		if v > max {
			max = v
		}
	}
	sum := 0.0
	for i, v := range x {
		e := math.Exp(v - max)
		dst[i] = e
		sum += e
	}
	if sum == 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		u := 1 / float64(len(dst))
		for i := range dst {
			dst[i] = u
		}
		return
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// LogSumExp returns log(Σ exp(x_i)) computed stably.
func LogSumExp(x []float64) float64 {
	if len(x) == 0 {
		return math.Inf(-1)
	}
	max := x[0]
	for _, v := range x[1:] {
		if v > max {
			max = v
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	sum := 0.0
	for _, v := range x {
		sum += math.Exp(v - max)
	}
	return max + math.Log(sum)
}

// Sum returns the sum of x using Kahan compensation, which matters when
// accumulating many small per-sample losses.
func Sum(x []float64) float64 {
	sum, c := 0.0, 0.0
	for _, v := range x {
		y := v - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Variance returns the population variance of x, or 0 for fewer than two
// elements.
func Variance(x []float64) float64 {
	if len(x) < 2 {
		return 0
	}
	m := Mean(x)
	acc := 0.0
	for _, v := range x {
		d := v - m
		acc += d * d
	}
	return acc / float64(len(x))
}

// Std returns the population standard deviation of x.
func Std(x []float64) float64 { return math.Sqrt(Variance(x)) }

// Min returns the minimum of x. It panics on an empty slice.
func Min(x []float64) float64 {
	if len(x) == 0 {
		panic("mathx: Min of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the maximum of x. It panics on an empty slice.
func Max(x []float64) float64 {
	if len(x) == 0 {
		panic("mathx: Max of empty slice")
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// ArgMax returns the index of the first maximal element of x. It panics
// on an empty slice.
func ArgMax(x []float64) int {
	if len(x) == 0 {
		panic("mathx: ArgMax of empty slice")
	}
	best, bestV := 0, x[0]
	for i, v := range x[1:] {
		if v > bestV {
			best, bestV = i+1, v
		}
	}
	return best
}

// Dot returns the inner product of a and b. Lengths must match.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mathx: Dot length mismatch")
	}
	sum := 0.0
	for i, v := range a {
		sum += v * b[i]
	}
	return sum
}

// Axpy computes y ← y + alpha*x in place through the SIMD-dispatched
// tensor kernels (bit-identical to the scalar loop). Lengths must match.
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mathx: Axpy length mismatch")
	}
	tensor.Axpy(alpha, x, y)
}

// Scale multiplies x by alpha in place through the SIMD-dispatched
// tensor kernels.
func Scale(alpha float64, x []float64) {
	tensor.Scale(alpha, x)
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// Clamp limits v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// L2Norm returns the Euclidean norm of x.
func L2Norm(x []float64) float64 {
	// Scaled accumulation to avoid overflow for large magnitudes.
	max := 0.0
	for _, v := range x {
		a := math.Abs(v)
		if a > max {
			max = a
		}
	}
	if max == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range x {
		s := v / max
		sum += s * s
	}
	return max * math.Sqrt(sum)
}

// Softplus returns log(1 + e^x) computed stably.
func Softplus(x float64) float64 {
	if x > 30 {
		return x
	}
	if x < -30 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// AllFinite reports whether every element of x is finite (no NaN/Inf).
func AllFinite(x []float64) bool {
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// WeightedSum computes Σ_k w_k · vecs_k into dst (the aggregation kernel
// of Eq. 4). All vectors must share dst's length; weights and vecs must
// have equal length. dst is overwritten.
func WeightedSum(dst []float64, weights []float64, vecs [][]float64) {
	if len(weights) != len(vecs) {
		panic("mathx: WeightedSum weights/vecs length mismatch")
	}
	Fill(dst, 0)
	for k, v := range vecs {
		if len(v) != len(dst) {
			panic("mathx: WeightedSum vector length mismatch")
		}
		Axpy(weights[k], v, dst)
	}
}
