package dataset

import "fmt"

// Data is the read-only sample-access surface shared by a materialized
// Dataset and a zero-copy View. The federated client layer trains
// against this interface, so a client shard can be either a private
// copy (Subset) or an index recipe over one shared dataset (View) —
// the values observed through the interface are identical either way,
// which is what keeps the eager and lazy client paths bit-identical.
type Data interface {
	// Len returns the number of samples.
	Len() int
	// FeatureDim returns the flattened feature length of one sample.
	FeatureDim() int
	// Classes returns the number of label classes.
	Classes() int
	// Sample returns sample i's features. The returned slice aliases
	// the underlying storage and must not be mutated.
	Sample(i int) []float64
	// Label returns sample i's class.
	Label(i int) int
	// Raw returns the contiguous backing arrays when samples are stored
	// contiguously (sample i at x[i*dim:(i+1)*dim]), enabling zero-copy
	// chunking; non-contiguous implementations return ok=false.
	Raw() (x []float64, y []int, ok bool)
	// Materialize returns a contiguous *Dataset with the same samples —
	// the escape hatch for code that needs contiguity or a mutable
	// private copy.
	Materialize() *Dataset
}

var (
	_ Data = (*Dataset)(nil)
	_ Data = (*View)(nil)
)

// Len returns the number of samples (the N field, as a method so
// Dataset satisfies Data).
func (d *Dataset) Len() int { return d.N }

// FeatureDim returns the flattened sample length (the Dim field).
func (d *Dataset) FeatureDim() int { return d.Dim }

// Classes returns the number of label classes (the NumClasses field).
func (d *Dataset) Classes() int { return d.NumClasses }

// Label returns sample i's class.
func (d *Dataset) Label(i int) int { return d.Y[i] }

// Raw exposes the contiguous backing arrays.
func (d *Dataset) Raw() (x []float64, y []int, ok bool) { return d.X, d.Y, true }

// Materialize returns the dataset itself: it is already contiguous.
// Callers that need a private mutable copy should use Subset.
func (d *Dataset) Materialize() *Dataset { return d }

// View is a zero-copy subset of a parent dataset: an index recipe
// instead of copied storage. Views satisfy the same Sample/ByClass/
// Validate surface as Dataset, sharing the parent's X/Y arrays — a
// view of any size costs len(idx) ints, not len(idx)*Dim floats.
//
// Aliasing rules: a view shares the parent's storage, so mutating
// sample data through a view (or mutating the parent while views are
// live) is forbidden; the training and evaluation paths only read.
// The index slice is retained, not copied — the caller must not modify
// it while the view is in use. Materialize returns a private
// contiguous copy for code that needs either mutation or contiguity.
type View struct {
	parent *Dataset
	idx    []int
}

// View returns a zero-copy view of the samples at the given indices.
// Indices are validated eagerly, like Subset, and retained (not
// copied).
func (d *Dataset) View(idx []int) *View {
	for _, i := range idx {
		if i < 0 || i >= d.N {
			panic(fmt.Sprintf("dataset: View index %d out of %d samples", i, d.N))
		}
	}
	return &View{parent: d, idx: idx}
}

// Len returns the number of samples in the view.
func (v *View) Len() int { return len(v.idx) }

// FeatureDim returns the parent's flattened sample length.
func (v *View) FeatureDim() int { return v.parent.Dim }

// Classes returns the parent's class count.
func (v *View) Classes() int { return v.parent.NumClasses }

// Sample returns view-sample i's features — a slice into the parent's
// storage (do not mutate).
func (v *View) Sample(i int) []float64 { return v.parent.Sample(v.idx[i]) }

// Label returns view-sample i's class.
func (v *View) Label(i int) int { return v.parent.Y[v.idx[i]] }

// Raw reports non-contiguity: a view's samples are scattered through
// the parent's storage.
func (v *View) Raw() (x []float64, y []int, ok bool) { return nil, nil, false }

// Indices returns the view's index recipe into the parent (aliased,
// do not mutate).
func (v *View) Indices() []int { return v.idx }

// Parent returns the dataset the view indexes into.
func (v *View) Parent() *Dataset { return v.parent }

// Materialize copies the viewed samples into a contiguous private
// Dataset (the Subset semantics).
func (v *View) Materialize() *Dataset { return v.parent.Subset(v.idx) }

// ByClass returns, for each class, the view-local indices of its
// samples (the same contract as Dataset.ByClass, in view index space).
func (v *View) ByClass() [][]int {
	out := make([][]int, v.parent.NumClasses)
	for i, pi := range v.idx {
		y := v.parent.Y[pi]
		out[y] = append(out[y], i)
	}
	return out
}

// Validate panics if the view's invariants are broken: every index must
// be in the parent's range and the parent itself must be valid.
func (v *View) Validate() {
	v.parent.Validate()
	for _, i := range v.idx {
		if i < 0 || i >= v.parent.N {
			panic(fmt.Sprintf("dataset %q: view index %d out of %d samples", v.parent.Name, i, v.parent.N))
		}
	}
}
