package dataset

// LabelFlipped is a read-only Data wrapper with deterministically
// flipped labels: class y reads as Classes()−1−y, features are passed
// through untouched. It is the dataset-layer half of the label-flip
// Byzantine attack — a poisoned client trains honestly on a flipped
// view of its own shard, so the poison enters through gradients rather
// than through tampered uploads.
//
// The wrapper composes with any Data source (Dataset, View, or another
// wrapper). Like View, it shares the source's storage and must only be
// read.
type LabelFlipped struct {
	src Data
}

var _ Data = (*LabelFlipped)(nil)

// FlipLabels wraps d with flipped labels. Flipping twice restores the
// original labels (the flip is an involution), but the result is a
// doubly-wrapped source, not d itself.
func FlipLabels(d Data) Data {
	return &LabelFlipped{src: d}
}

// Len returns the number of samples.
func (f *LabelFlipped) Len() int { return f.src.Len() }

// FeatureDim returns the flattened feature length of one sample.
func (f *LabelFlipped) FeatureDim() int { return f.src.FeatureDim() }

// Classes returns the number of label classes.
func (f *LabelFlipped) Classes() int { return f.src.Classes() }

// Sample passes features through unchanged (aliased, do not mutate).
func (f *LabelFlipped) Sample(i int) []float64 { return f.src.Sample(i) }

// Label returns the flipped class Classes()−1−y.
func (f *LabelFlipped) Label(i int) int { return f.src.Classes() - 1 - f.src.Label(i) }

// Raw reports non-contiguity: the source's contiguous label array (if
// any) holds the unflipped classes, so exposing it would bypass the
// flip.
func (f *LabelFlipped) Raw() (x []float64, y []int, ok bool) { return nil, nil, false }

// Source returns the wrapped data.
func (f *LabelFlipped) Source() Data { return f.src }

// Materialize copies the samples into a contiguous private Dataset
// carrying the flipped labels.
func (f *LabelFlipped) Materialize() *Dataset {
	// Materialize may return the source's own storage (Dataset
	// materializes to itself), so copy via Subset before flipping.
	m := f.src.Materialize()
	idx := make([]int, m.N)
	for i := range idx {
		idx[i] = i
	}
	out := m.Subset(idx)
	for i, y := range out.Y {
		out.Y[i] = out.NumClasses - 1 - y
	}
	return out
}
