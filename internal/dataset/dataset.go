// Package dataset provides the federated datasets of the reproduction.
//
// The paper evaluates on MNIST, Fashion-MNIST and CIFAR-100 (§4.1.1).
// Those corpora are unavailable offline, so this package synthesizes
// class-conditional Gaussian image datasets with matching *label
// geometry*: `mnist-sim` and `fashion-sim` have 10 classes (Fashion with
// higher intra-class noise, making it harder, as in the paper), and
// `cifar100-sim` has 100 classes with 3 channels and the highest noise.
// Every non-IID partitioner the paper studies manipulates labels and
// sample counts only, so the synthetic datasets exercise exactly the same
// aggregation behaviour; see DESIGN.md §1 for the substitution argument.
package dataset

import (
	"fmt"
	"math"

	"feddrl/internal/rng"
)

// ImageShape describes the CHW layout of one sample.
type ImageShape struct{ C, H, W int }

// Len returns the flattened sample length.
func (s ImageShape) Len() int { return s.C * s.H * s.W }

// Dataset is an in-memory labelled dataset. Samples are stored flattened
// and contiguous: sample i occupies X[i*Dim : (i+1)*Dim].
type Dataset struct {
	Name       string
	X          []float64
	Y          []int
	N          int
	Dim        int
	NumClasses int
	Shape      ImageShape
}

// Sample returns a view of the i-th sample's features.
func (d *Dataset) Sample(i int) []float64 {
	return d.X[i*d.Dim : (i+1)*d.Dim]
}

// Subset returns a new dataset containing the samples at the given
// indices (copied).
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{
		Name:       d.Name,
		X:          make([]float64, len(idx)*d.Dim),
		Y:          make([]int, len(idx)),
		N:          len(idx),
		Dim:        d.Dim,
		NumClasses: d.NumClasses,
		Shape:      d.Shape,
	}
	for j, i := range idx {
		if i < 0 || i >= d.N {
			panic(fmt.Sprintf("dataset: Subset index %d out of %d samples", i, d.N))
		}
		copy(out.X[j*d.Dim:(j+1)*d.Dim], d.Sample(i))
		out.Y[j] = d.Y[i]
	}
	return out
}

// ByClass returns, for each class, the indices of its samples.
func (d *Dataset) ByClass() [][]int {
	out := make([][]int, d.NumClasses)
	for i, y := range d.Y {
		out[y] = append(out[y], i)
	}
	return out
}

// ClassCounts returns the number of samples per class.
func (d *Dataset) ClassCounts() []int {
	out := make([]int, d.NumClasses)
	for _, y := range d.Y {
		out[y]++
	}
	return out
}

// Validate panics if the dataset's invariants are broken (used by tests
// and by the partitioners' preconditions).
func (d *Dataset) Validate() {
	if d.N*d.Dim != len(d.X) {
		panic(fmt.Sprintf("dataset %q: X length %d != N*Dim %d", d.Name, len(d.X), d.N*d.Dim))
	}
	if len(d.Y) != d.N {
		panic(fmt.Sprintf("dataset %q: Y length %d != N %d", d.Name, len(d.Y), d.N))
	}
	for i, y := range d.Y {
		if y < 0 || y >= d.NumClasses {
			panic(fmt.Sprintf("dataset %q: label %d of sample %d out of range", d.Name, y, i))
		}
	}
	if d.Shape.Len() != 0 && d.Shape.Len() != d.Dim {
		panic(fmt.Sprintf("dataset %q: shape %v inconsistent with dim %d", d.Name, d.Shape, d.Dim))
	}
}

// Spec configures a synthetic dataset. Class c's samples are drawn as
// sigmoid(prototype_c + noise) where prototype_c ~ N(0, ProtoStd²·I) and
// noise ~ N(0, NoiseStd²·I): higher NoiseStd/ProtoStd ratios yield harder
// tasks. ClusterSharpen > 0 additionally mixes each prototype toward one
// of a few "super-prototypes", giving classes a coarse cluster structure
// like coarse labels in CIFAR-100.
type Spec struct {
	Name           string
	Classes        int
	Shape          ImageShape
	TrainPerClass  int
	TestPerClass   int
	ProtoStd       float64
	NoiseStd       float64
	SuperClasses   int     // 0 disables super-prototype mixing
	ClusterSharpen float64 // in [0,1]: fraction of super-prototype in each prototype
}

// Validate panics on inconsistent specs.
func (s Spec) Validate() {
	if s.Classes <= 1 || s.Shape.Len() <= 0 || s.TrainPerClass <= 0 || s.TestPerClass <= 0 {
		panic(fmt.Sprintf("dataset: invalid spec %+v", s))
	}
	if s.ProtoStd <= 0 || s.NoiseStd < 0 {
		panic(fmt.Sprintf("dataset: invalid spec stds %+v", s))
	}
	if s.ClusterSharpen < 0 || s.ClusterSharpen > 1 {
		panic(fmt.Sprintf("dataset: ClusterSharpen %v out of [0,1]", s.ClusterSharpen))
	}
}

// MNISTSim returns the spec for the MNIST analogue: 10 well-separated
// classes on 8×8 single-channel images.
func MNISTSim() Spec {
	return Spec{
		Name: "mnist-sim", Classes: 10,
		Shape:         ImageShape{C: 1, H: 8, W: 8},
		TrainPerClass: 120, TestPerClass: 30,
		ProtoStd: 1.5, NoiseStd: 0.6,
	}
}

// FashionSim returns the spec for the Fashion-MNIST analogue: 10 classes
// with higher intra-class noise (harder than mnist-sim, as in the paper).
func FashionSim() Spec {
	return Spec{
		Name: "fashion-sim", Classes: 10,
		Shape:         ImageShape{C: 1, H: 8, W: 8},
		TrainPerClass: 120, TestPerClass: 30,
		ProtoStd: 1.2, NoiseStd: 1.1,
	}
}

// CIFAR100Sim returns the spec for the CIFAR-100 analogue: 100 classes on
// 3-channel 8×8 images, grouped under 10 super-classes (mirroring
// CIFAR-100's coarse labels), with the highest noise.
func CIFAR100Sim() Spec {
	return Spec{
		Name: "cifar100-sim", Classes: 100,
		Shape:         ImageShape{C: 3, H: 8, W: 8},
		TrainPerClass: 24, TestPerClass: 6,
		ProtoStd: 1.1, NoiseStd: 1.0,
		SuperClasses: 10, ClusterSharpen: 0.4,
	}
}

// Scaled returns a copy of the spec with per-class sample counts scaled
// by f (minimum 4 train / 2 test per class), used to derive CI-scale
// configurations from the paper-scale ones.
func (s Spec) Scaled(f float64) Spec {
	out := s
	out.TrainPerClass = int(math.Max(4, math.Round(float64(s.TrainPerClass)*f)))
	out.TestPerClass = int(math.Max(2, math.Round(float64(s.TestPerClass)*f)))
	return out
}

// Synthesize generates the train and test splits for a spec. Generation
// is fully deterministic given (spec, seed); the same class prototypes
// underlie both splits.
func Synthesize(s Spec, seed uint64) (train, test *Dataset) {
	s.Validate()
	r := rng.New(seed)
	dim := s.Shape.Len()

	// Super-prototypes for coarse cluster structure.
	var super [][]float64
	if s.SuperClasses > 0 && s.ClusterSharpen > 0 {
		super = make([][]float64, s.SuperClasses)
		for i := range super {
			super[i] = make([]float64, dim)
			for j := range super[i] {
				super[i][j] = r.Normal(0, s.ProtoStd)
			}
		}
	}

	protos := make([][]float64, s.Classes)
	for c := range protos {
		protos[c] = make([]float64, dim)
		for j := range protos[c] {
			protos[c][j] = r.Normal(0, s.ProtoStd)
		}
		if super != nil {
			sp := super[c%s.SuperClasses]
			for j := range protos[c] {
				protos[c][j] = (1-s.ClusterSharpen)*protos[c][j] + s.ClusterSharpen*sp[j]
			}
		}
	}

	gen := func(perClass int, name string) *Dataset {
		n := perClass * s.Classes
		d := &Dataset{
			Name: name, X: make([]float64, n*dim), Y: make([]int, n),
			N: n, Dim: dim, NumClasses: s.Classes, Shape: s.Shape,
		}
		i := 0
		for c := 0; c < s.Classes; c++ {
			for k := 0; k < perClass; k++ {
				sample := d.X[i*dim : (i+1)*dim]
				for j := range sample {
					v := protos[c][j] + r.Normal(0, s.NoiseStd)
					sample[j] = 1 / (1 + math.Exp(-v)) // squash into (0,1) like pixel intensities
				}
				d.Y[i] = c
				i++
			}
		}
		// Shuffle so that contiguous index ranges are not class-pure.
		perm := r.Perm(n)
		shuffled := d.Subset(perm)
		shuffled.Name = name
		return shuffled
	}

	train = gen(s.TrainPerClass, s.Name+"/train")
	test = gen(s.TestPerClass, s.Name+"/test")
	return train, test
}
