package dataset

import (
	"math"
	"testing"
	"testing/quick"

	"feddrl/internal/mathx"
	"feddrl/internal/rng"
)

func TestSynthesizeShapesAndDeterminism(t *testing.T) {
	spec := MNISTSim().Scaled(0.2)
	tr1, te1 := Synthesize(spec, 7)
	tr2, te2 := Synthesize(spec, 7)
	tr1.Validate()
	te1.Validate()
	if tr1.N != spec.TrainPerClass*spec.Classes || te1.N != spec.TestPerClass*spec.Classes {
		t.Fatalf("sizes: train %d test %d", tr1.N, te1.N)
	}
	for i := range tr1.X {
		if tr1.X[i] != tr2.X[i] {
			t.Fatal("train generation not deterministic")
		}
	}
	for i := range te1.Y {
		if te1.Y[i] != te2.Y[i] {
			t.Fatal("test generation not deterministic")
		}
	}
	tr3, _ := Synthesize(spec, 8)
	diff := false
	for i := range tr1.X {
		if tr1.X[i] != tr3.X[i] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical data")
	}
}

func TestPixelRange(t *testing.T) {
	tr, te := Synthesize(FashionSim().Scaled(0.1), 1)
	for _, d := range []*Dataset{tr, te} {
		for _, v := range d.X {
			if v <= 0 || v >= 1 || math.IsNaN(v) {
				t.Fatalf("pixel %v outside (0,1)", v)
			}
		}
	}
}

func TestClassBalance(t *testing.T) {
	tr, _ := Synthesize(MNISTSim().Scaled(0.25), 2)
	counts := tr.ClassCounts()
	for c, n := range counts {
		if n != counts[0] {
			t.Fatalf("class %d has %d samples, class 0 has %d", c, n, counts[0])
		}
	}
}

func TestShuffled(t *testing.T) {
	tr, _ := Synthesize(MNISTSim().Scaled(0.25), 3)
	// The first 10 labels should not all be class 0 after shuffling.
	allSame := true
	for _, y := range tr.Y[:10] {
		if y != tr.Y[0] {
			allSame = false
			break
		}
	}
	if allSame {
		t.Fatal("dataset does not appear shuffled")
	}
}

func TestSubset(t *testing.T) {
	tr, _ := Synthesize(MNISTSim().Scaled(0.1), 4)
	idx := []int{5, 0, 7}
	sub := tr.Subset(idx)
	sub.Validate()
	if sub.N != 3 {
		t.Fatalf("subset N = %d", sub.N)
	}
	for j, i := range idx {
		if sub.Y[j] != tr.Y[i] {
			t.Fatal("subset labels wrong")
		}
		s, orig := sub.Sample(j), tr.Sample(i)
		for p := range s {
			if s[p] != orig[p] {
				t.Fatal("subset features wrong")
			}
		}
	}
	// Copies are independent.
	sub.X[0] = -99
	if tr.Sample(5)[0] == -99 {
		t.Fatal("Subset must copy")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range Subset index did not panic")
		}
	}()
	tr.Subset([]int{tr.N})
}

func TestByClassPartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		tr, _ := Synthesize(MNISTSim().Scaled(0.05), seed)
		byc := tr.ByClass()
		total := 0
		for c, idxs := range byc {
			for _, i := range idxs {
				if tr.Y[i] != c {
					return false
				}
			}
			total += len(idxs)
		}
		return total == tr.N
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestClassSeparability(t *testing.T) {
	// Same-class samples must be closer (on average) than cross-class
	// samples — otherwise the classification task is vacuous.
	tr, _ := Synthesize(MNISTSim().Scaled(0.2), 5)
	byc := tr.ByClass()
	r := rng.New(9)
	within, across := 0.0, 0.0
	const trials = 300
	for i := 0; i < trials; i++ {
		c := r.Intn(tr.NumClasses)
		a := byc[c][r.Intn(len(byc[c]))]
		b := byc[c][r.Intn(len(byc[c]))]
		within += dist(tr.Sample(a), tr.Sample(b))
		c2 := (c + 1 + r.Intn(tr.NumClasses-1)) % tr.NumClasses
		d := byc[c2][r.Intn(len(byc[c2]))]
		across += dist(tr.Sample(a), tr.Sample(d))
	}
	if within >= across {
		t.Fatalf("classes not separable: within %.3f >= across %.3f", within/trials, across/trials)
	}
}

func dist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestDifficultyOrdering(t *testing.T) {
	// fashion-sim must have a lower separation ratio (harder) than
	// mnist-sim, mirroring the real datasets' difficulty ordering.
	ratio := func(spec Spec, seed uint64) float64 {
		tr, _ := Synthesize(spec.Scaled(0.2), seed)
		byc := tr.ByClass()
		r := rng.New(33)
		within, across := 0.0, 0.0
		for i := 0; i < 400; i++ {
			c := r.Intn(tr.NumClasses)
			a := byc[c][r.Intn(len(byc[c]))]
			b := byc[c][r.Intn(len(byc[c]))]
			within += dist(tr.Sample(a), tr.Sample(b))
			c2 := (c + 1 + r.Intn(tr.NumClasses-1)) % tr.NumClasses
			d := byc[c2][r.Intn(len(byc[c2]))]
			across += dist(tr.Sample(a), tr.Sample(d))
		}
		return across / within
	}
	if ratio(FashionSim(), 6) >= ratio(MNISTSim(), 6) {
		t.Fatal("fashion-sim should be harder (lower separation) than mnist-sim")
	}
}

func TestCIFAR100SimSuperClusters(t *testing.T) {
	// Classes sharing a super-class must have closer prototypes (sample
	// means) than classes in different super-classes.
	tr, _ := Synthesize(CIFAR100Sim().Scaled(0.3), 7)
	byc := tr.ByClass()
	mean := func(c int) []float64 {
		m := make([]float64, tr.Dim)
		for _, i := range byc[c] {
			mathx.Axpy(1, tr.Sample(i), m)
		}
		mathx.Scale(1/float64(len(byc[c])), m)
		return m
	}
	// Classes c and c+10 share a super-class (c % 10 == (c+10) % 10);
	// classes c and c+11 do not.
	same, diff := 0.0, 0.0
	for c := 0; c < 20; c++ {
		same += dist(mean(c), mean(c+10))
		diff += dist(mean(c), mean(c+11))
	}
	if same >= diff {
		t.Fatalf("super-cluster structure missing: same %.3f >= diff %.3f", same, diff)
	}
}

func TestSpecValidatePanics(t *testing.T) {
	bad := []Spec{
		{Name: "x", Classes: 1, Shape: ImageShape{1, 2, 2}, TrainPerClass: 1, TestPerClass: 1, ProtoStd: 1},
		{Name: "x", Classes: 2, Shape: ImageShape{0, 2, 2}, TrainPerClass: 1, TestPerClass: 1, ProtoStd: 1},
		{Name: "x", Classes: 2, Shape: ImageShape{1, 2, 2}, TrainPerClass: 0, TestPerClass: 1, ProtoStd: 1},
		{Name: "x", Classes: 2, Shape: ImageShape{1, 2, 2}, TrainPerClass: 1, TestPerClass: 1, ProtoStd: 0},
		{Name: "x", Classes: 2, Shape: ImageShape{1, 2, 2}, TrainPerClass: 1, TestPerClass: 1, ProtoStd: 1, ClusterSharpen: 2},
	}
	for i, s := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("bad spec %d did not panic", i)
				}
			}()
			s.Validate()
		}()
	}
}

func TestScaled(t *testing.T) {
	s := MNISTSim()
	half := s.Scaled(0.5)
	if half.TrainPerClass != 60 || half.TestPerClass != 15 {
		t.Fatalf("Scaled(0.5) = %d/%d", half.TrainPerClass, half.TestPerClass)
	}
	tiny := s.Scaled(0.0001)
	if tiny.TrainPerClass < 4 || tiny.TestPerClass < 2 {
		t.Fatal("Scaled floor violated")
	}
}

func TestStandardSpecs(t *testing.T) {
	for _, s := range []Spec{MNISTSim(), FashionSim(), CIFAR100Sim()} {
		s.Validate()
	}
	if CIFAR100Sim().Classes != 100 || MNISTSim().Classes != 10 {
		t.Fatal("class counts wrong")
	}
	if CIFAR100Sim().Shape.C != 3 {
		t.Fatal("cifar100-sim should be 3-channel")
	}
}
