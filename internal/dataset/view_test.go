package dataset

import (
	"math"
	"reflect"
	"testing"
)

func viewFixture(t *testing.T) (*Dataset, []int) {
	t.Helper()
	d, _ := Synthesize(MNISTSim().Scaled(0.05), 7)
	idx := []int{3, 0, 9, 9, 5, d.N - 1}
	return d, idx
}

// TestViewMatchesSubset: every observation through a View must equal the
// materialized Subset of the same indices — the property the federated
// eager/lazy bit-identity contract is built on.
func TestViewMatchesSubset(t *testing.T) {
	d, idx := viewFixture(t)
	v := d.View(idx)
	s := d.Subset(idx)

	if v.Len() != s.N || v.FeatureDim() != s.Dim || v.Classes() != s.NumClasses {
		t.Fatalf("view dims (%d,%d,%d) != subset (%d,%d,%d)",
			v.Len(), v.FeatureDim(), v.Classes(), s.N, s.Dim, s.NumClasses)
	}
	for i := 0; i < v.Len(); i++ {
		if v.Label(i) != s.Y[i] {
			t.Fatalf("label %d differs", i)
		}
		vs, ss := v.Sample(i), s.Sample(i)
		for j := range vs {
			if math.Float64bits(vs[j]) != math.Float64bits(ss[j]) {
				t.Fatalf("sample %d element %d differs bitwise", i, j)
			}
		}
	}
	if !reflect.DeepEqual(v.ByClass(), s.ByClass()) {
		t.Fatal("ByClass differs between view and subset")
	}
	m := v.Materialize()
	if !reflect.DeepEqual(m.X, s.X) || !reflect.DeepEqual(m.Y, s.Y) {
		t.Fatal("Materialize differs from Subset")
	}
	v.Validate()
}

// TestViewZeroCopy verifies the aliasing contract: a view reads the
// parent's storage directly, with no copied shard data.
func TestViewZeroCopy(t *testing.T) {
	d, idx := viewFixture(t)
	v := d.View(idx)
	if x, y, ok := v.Raw(); ok || x != nil || y != nil {
		t.Fatal("view claims contiguous raw storage")
	}
	if x, _, ok := d.Raw(); !ok || &x[0] != &d.X[0] {
		t.Fatal("dataset Raw is not the backing array")
	}
	// Sample must alias the parent row, not a copy.
	if &v.Sample(0)[0] != &d.Sample(idx[0])[0] {
		t.Fatal("view sample is a copy, not an alias")
	}
	if v.Parent() != d {
		t.Fatal("Parent mismatch")
	}
	if &v.Indices()[0] != &idx[0] {
		t.Fatal("Indices is a copy, not the retained recipe")
	}
}

func TestViewBadIndexPanics(t *testing.T) {
	d, _ := viewFixture(t)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range view index did not panic")
		}
	}()
	d.View([]int{0, d.N})
}

func TestViewEmpty(t *testing.T) {
	d, _ := viewFixture(t)
	v := d.View(nil)
	if v.Len() != 0 {
		t.Fatal("empty view has samples")
	}
	if m := v.Materialize(); m.N != 0 {
		t.Fatal("materialized empty view has samples")
	}
}

// TestDatasetImplementsData pins the Data surface of the concrete
// Dataset to its fields.
func TestDatasetImplementsData(t *testing.T) {
	d, _ := viewFixture(t)
	var data Data = d
	if data.Len() != d.N || data.FeatureDim() != d.Dim || data.Classes() != d.NumClasses {
		t.Fatal("Dataset Data methods disagree with fields")
	}
	if data.Label(2) != d.Y[2] {
		t.Fatal("Label mismatch")
	}
	if data.Materialize() != d {
		t.Fatal("Dataset.Materialize must return itself")
	}
}
