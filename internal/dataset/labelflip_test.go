package dataset

import (
	"math"
	"testing"
)

// TestLabelFlipped: the flipped view must invert every label
// (y → Classes−1−y), pass features through by reference, refuse the
// Raw fast path, and materialize into a private flipped copy that
// leaves the source untouched.
func TestLabelFlipped(t *testing.T) {
	tr, _ := Synthesize(MNISTSim().Scaled(0.05), 3)
	f := FlipLabels(tr)

	if f.Len() != tr.Len() || f.FeatureDim() != tr.FeatureDim() || f.Classes() != tr.Classes() {
		t.Fatal("flipped view changed the shape of the source")
	}
	for i := 0; i < f.Len(); i++ {
		if want := tr.Classes() - 1 - tr.Label(i); f.Label(i) != want {
			t.Fatalf("sample %d: flipped label %d, want %d", i, f.Label(i), want)
		}
		if &f.Sample(i)[0] != &tr.Sample(i)[0] {
			t.Fatalf("sample %d: features were copied, want the source's storage", i)
		}
	}
	if _, _, ok := f.Raw(); ok {
		t.Fatal("flipped view exposed the source's unflipped Raw arrays")
	}

	// Double flip is a label involution (through a double wrapper).
	ff := FlipLabels(f)
	for i := 0; i < ff.Len(); i++ {
		if ff.Label(i) != tr.Label(i) {
			t.Fatalf("sample %d: double flip did not restore label", i)
		}
	}

	// Materialize: flipped labels in a private copy.
	m := f.(*LabelFlipped).Materialize()
	if m.N != tr.N {
		t.Fatalf("materialized %d samples, want %d", m.N, tr.N)
	}
	for i := 0; i < m.N; i++ {
		if m.Y[i] != tr.Classes()-1-tr.Label(i) {
			t.Fatalf("sample %d: materialized label %d not flipped", i, m.Y[i])
		}
		for j, v := range m.Sample(i) {
			if math.Float64bits(v) != math.Float64bits(tr.Sample(i)[j]) {
				t.Fatalf("sample %d: materialized features differ", i)
			}
		}
	}
	m.Y[0] = (m.Y[0] + 1) % m.NumClasses
	if tr.Label(0) == tr.Classes()-1-m.Y[0] && m.Y[0] == f.Label(0) {
		t.Fatal("materialized labels share the source's storage")
	}

	// The flip composes with views (the shape a poisoned client shard
	// actually takes).
	v := tr.View([]int{0, 2, 4})
	fv := FlipLabels(v)
	for i := 0; i < fv.Len(); i++ {
		if fv.Label(i) != v.Classes()-1-v.Label(i) {
			t.Fatalf("view sample %d: label not flipped", i)
		}
	}
}
