package metrics

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// CSV export: the figure runners render text tables for the terminal,
// and the same data can be exported as CSV for external plotting (the
// paper's figures are line plots; cmd/tables -csv writes one file per
// experiment).

// SeriesSet is a set of named, aligned series over a shared x axis —
// one Figure-5/7/8-style plot.
type SeriesSet struct {
	XName string
	X     []float64
	Names []string
	Data  map[string]Series
}

// NewSeriesSet builds an empty series set over the given x axis.
func NewSeriesSet(xName string, x []float64) *SeriesSet {
	return &SeriesSet{XName: xName, X: x, Data: map[string]Series{}}
}

// Add attaches a named series; its length must match the x axis.
func (ss *SeriesSet) Add(name string, s Series) {
	if len(s) != len(ss.X) {
		panic(fmt.Sprintf("metrics: series %q length %d, x axis %d", name, len(s), len(ss.X)))
	}
	if _, dup := ss.Data[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate series %q", name))
	}
	ss.Names = append(ss.Names, name)
	ss.Data[name] = s
}

// WriteCSV emits the set as RFC-4180 CSV with a header row.
func (ss *SeriesSet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{ss.XName}, ss.Names...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("metrics: csv header: %w", err)
	}
	for i, x := range ss.X {
		row := make([]string, 0, len(header))
		row = append(row, strconv.FormatFloat(x, 'g', -1, 64))
		for _, name := range ss.Names {
			row = append(row, strconv.FormatFloat(ss.Data[name][i], 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("metrics: csv row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveCSV writes the set to a file path.
func (ss *SeriesSet) SaveCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("metrics: create %s: %w", path, err)
	}
	defer f.Close()
	if err := ss.WriteCSV(f); err != nil {
		return err
	}
	return f.Sync()
}

// ReadCSV parses a file written by WriteCSV back into a SeriesSet
// (round-trip support for downstream tooling and tests).
func ReadCSV(r io.Reader) (*SeriesSet, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("metrics: csv parse: %w", err)
	}
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("metrics: empty csv")
	}
	header := rows[0]
	ss := NewSeriesSet(header[0], nil)
	cols := make([]Series, len(header)-1)
	for _, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, fmt.Errorf("metrics: ragged csv row")
		}
		x, err := strconv.ParseFloat(row[0], 64)
		if err != nil {
			return nil, fmt.Errorf("metrics: bad x value %q: %w", row[0], err)
		}
		ss.X = append(ss.X, x)
		for c := 1; c < len(row); c++ {
			v, err := strconv.ParseFloat(row[c], 64)
			if err != nil {
				return nil, fmt.Errorf("metrics: bad value %q: %w", row[c], err)
			}
			cols[c-1] = append(cols[c-1], v)
		}
	}
	for c, name := range header[1:] {
		ss.Add(name, cols[c])
	}
	return ss, nil
}
