package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestBestAndFinal(t *testing.T) {
	s := Series{0.1, 0.5, 0.3}
	if s.Best() != 0.5 || s.Final() != 0.3 {
		t.Fatalf("best/final = %v/%v", s.Best(), s.Final())
	}
	var empty Series
	if empty.Best() != 0 || empty.Final() != 0 {
		t.Fatal("empty series should report 0")
	}
}

func TestSmoothed(t *testing.T) {
	s := Series{1, 2, 3, 4, 5}
	sm := s.Smoothed(2)
	want := Series{1, 1.5, 2.5, 3.5, 4.5}
	for i := range want {
		if math.Abs(sm[i]-want[i]) > 1e-12 {
			t.Fatalf("smoothed = %v, want %v", sm, want)
		}
	}
	// Window 1 is the identity.
	id := s.Smoothed(1)
	for i := range s {
		if id[i] != s[i] {
			t.Fatal("window-1 smoothing should be identity")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Smoothed(0) did not panic")
		}
	}()
	s.Smoothed(0)
}

func TestSmoothedPreservesMeanProperty(t *testing.T) {
	f := func(vals []float64, wRaw uint8) bool {
		if len(vals) == 0 {
			return true
		}
		s := make(Series, len(vals))
		for i, v := range vals {
			s[i] = math.Mod(v, 100)
			if math.IsNaN(s[i]) {
				s[i] = 0
			}
		}
		w := int(wRaw)%5 + 1
		sm := s.Smoothed(w)
		if len(sm) != len(s) {
			return false
		}
		// Smoothing cannot escape the data's range.
		lo, hi := s[0], s[0]
		for _, v := range s {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for _, v := range sm {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundsToTarget(t *testing.T) {
	s := Series{0.1, 0.4, 0.6, 0.5}
	if got := s.RoundsToTarget(0.5); got != 3 {
		t.Fatalf("rounds to 0.5 = %d, want 3", got)
	}
	if got := s.RoundsToTarget(0.9); got != -1 {
		t.Fatalf("unreachable target = %d, want -1", got)
	}
	if got := s.RoundsToTarget(0.05); got != 1 {
		t.Fatalf("instant target = %d, want 1", got)
	}
}

func TestNormalizedTo(t *testing.T) {
	s := Series{2, 4, 0, 5}
	ref := Series{1, 2, 0, 0}
	n := s.NormalizedTo(ref)
	if n[0] != 2 || n[1] != 2 {
		t.Fatalf("normalized = %v", n)
	}
	if n[2] != 1 {
		t.Fatalf("0/0 should map to 1, got %v", n[2])
	}
	if n[3] != 1e9 {
		t.Fatalf("x/0 should clamp, got %v", n[3])
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	s.NormalizedTo(Series{1})
}

func TestMeanAndTail(t *testing.T) {
	s := Series{1, 2, 3, 4}
	if s.Mean() != 2.5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Tail(2) != 3.5 {
		t.Fatalf("tail(2) = %v", s.Tail(2))
	}
	if s.Tail(10) != 2.5 {
		t.Fatalf("tail beyond length = %v", s.Tail(10))
	}
	if s.Tail(0) != 0 || (Series{}).Tail(3) != 0 {
		t.Fatal("degenerate tails should be 0")
	}
}

func TestRelImprovement(t *testing.T) {
	if got := RelImprovement(72.63, 71.13); math.Abs(got-2.108815) > 1e-3 {
		t.Fatalf("impr = %v", got) // Table 3's impr.(a) example for CIFAR-100 PA
	}
	if RelImprovement(5, 0) != 0 {
		t.Fatal("zero base should yield 0")
	}
	if RelImprovement(90, 100) >= 0 {
		t.Fatal("regression should be negative")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "Demo", Headers: []string{"method", "acc"}}
	tb.AddRow("FedDRL", F(72.63))
	tb.AddRow("FedAvg", F(69.81))
	out := tb.RenderString()
	if !strings.Contains(out, "== Demo ==") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "FedDRL") || !strings.Contains(out, "72.63") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("short row did not panic")
		}
	}()
	tb.AddRow("only-one")
}

func TestFormatters(t *testing.T) {
	if F(1.234) != "1.23" {
		t.Fatalf("F = %q", F(1.234))
	}
	if Pct(4.049) != "4.05%" {
		t.Fatalf("Pct = %q", Pct(4.049))
	}
	if MeanStd(12.345, 0.678) != "12.35±0.68" {
		t.Fatalf("MeanStd = %q", MeanStd(12.345, 0.678))
	}
}
