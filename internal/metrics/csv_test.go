package metrics

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSeriesSetCSVRoundTrip(t *testing.T) {
	ss := NewSeriesSet("round", []float64{0, 1, 2})
	ss.Add("FedAvg", Series{10, 20, 30})
	ss.Add("FedDRL", Series{12, 25, 33})
	var buf bytes.Buffer
	if err := ss.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "round,FedAvg,FedDRL\n") {
		t.Fatalf("csv header wrong:\n%s", out)
	}
	got, err := ReadCSV(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if got.XName != "round" || len(got.X) != 3 {
		t.Fatalf("x axis lost: %+v", got)
	}
	if got.Data["FedDRL"][2] != 33 || got.Data["FedAvg"][0] != 10 {
		t.Fatalf("values lost: %+v", got.Data)
	}
	if len(got.Names) != 2 || got.Names[0] != "FedAvg" {
		t.Fatalf("column order lost: %v", got.Names)
	}
}

func TestSeriesSetFile(t *testing.T) {
	ss := NewSeriesSet("k", []float64{4, 8})
	ss.Add("acc", Series{50, 60})
	path := filepath.Join(t.TempDir(), "fig7.csv")
	if err := ss.SaveCSV(path); err != nil {
		t.Fatal(err)
	}
	// File is readable back through the os path too.
	f, err := osOpen(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := ReadCSV(f)
	if err != nil || got.Data["acc"][1] != 60 {
		t.Fatalf("file round trip failed: %v %+v", err, got)
	}
}

func TestSeriesSetPanics(t *testing.T) {
	ss := NewSeriesSet("x", []float64{1, 2})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("length mismatch did not panic")
			}
		}()
		ss.Add("bad", Series{1})
	}()
	ss.Add("a", Series{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	ss.Add("a", Series{3, 4})
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"x,a\n1\n",        // ragged handled by csv reader as error
		"x,a\nfoo,1\n",    // bad x
		"x,a\n1,notnum\n", // bad value
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d did not error", i)
		}
	}
}

// osOpen indirects os.Open so the test file's imports stay tidy.
func osOpen(path string) (*os.File, error) { return os.Open(path) }
