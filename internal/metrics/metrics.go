// Package metrics provides the series utilities behind the paper's
// evaluation artifacts: best top-1 accuracy (Table 3/4), window-smoothed
// accuracy timelines (Fig. 5), normalization of per-client inference-loss
// curves to a reference method (Fig. 6), rounds-to-target-accuracy
// (Fig. 10), and a plain-text table renderer shared by the experiment
// harness and the CLI tools.
package metrics

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is an ordered sequence of per-round measurements.
type Series []float64

// Best returns the maximum value of the series (the "best top-1 accuracy
// reached during training" of Table 3). It returns 0 for an empty series.
func (s Series) Best() float64 {
	best := math.Inf(-1)
	for _, v := range s {
		if v > best {
			best = v
		}
	}
	if math.IsInf(best, -1) {
		return 0
	}
	return best
}

// Final returns the last value, or 0 if empty.
func (s Series) Final() float64 {
	if len(s) == 0 {
		return 0
	}
	return s[len(s)-1]
}

// Smoothed returns the trailing-window moving average used to plot the
// Fashion-MNIST curves of Fig. 5 ("average-smoothed of every 10
// communication rounds"). window must be positive.
func (s Series) Smoothed(window int) Series {
	if window <= 0 {
		panic("metrics: Smoothed with non-positive window")
	}
	out := make(Series, len(s))
	sum := 0.0
	for i, v := range s {
		sum += v
		if i >= window {
			sum -= s[i-window]
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}

// RoundsToTarget returns the first round index (1-based) at which the
// series reaches target, or -1 if it never does (Fig. 10).
func (s Series) RoundsToTarget(target float64) int {
	for i, v := range s {
		if v >= target {
			return i + 1
		}
	}
	return -1
}

// NormalizedTo divides the series elementwise by ref (Fig. 6 normalizes
// every method's loss curves to FedDRL's). Zero reference entries yield
// NaN-free output by mapping to 1 when both are zero and +Inf-free output
// by clamping to a large sentinel otherwise.
func (s Series) NormalizedTo(ref Series) Series {
	if len(s) != len(ref) {
		panic(fmt.Sprintf("metrics: NormalizedTo length mismatch %d vs %d", len(s), len(ref)))
	}
	out := make(Series, len(s))
	for i, v := range s {
		switch {
		case ref[i] != 0:
			out[i] = v / ref[i]
		case v == 0:
			out[i] = 1
		default:
			out[i] = 1e9
		}
	}
	return out
}

// Mean returns the arithmetic mean of the series, or 0 if empty.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	return sum / float64(len(s))
}

// Tail returns the mean of the last n points (or fewer if the series is
// shorter), the steady-state summary used for Fig. 6's comparisons.
func (s Series) Tail(n int) float64 {
	if n <= 0 || len(s) == 0 {
		return 0
	}
	if n > len(s) {
		n = len(s)
	}
	return s[len(s)-n:].Mean()
}

// RelImprovement returns (a−b)/b in percent — the impr.(a)/impr.(b) rows
// of Table 3. It returns 0 when b is 0.
func RelImprovement(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return (a - b) / b * 100
}

// Table is a simple text table with fixed headers.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; its length must match the headers.
func (t *Table) AddRow(cells ...string) {
	if len(cells) != len(t.Headers) {
		panic(fmt.Sprintf("metrics: row width %d, table has %d columns", len(cells), len(t.Headers)))
	}
	t.Rows = append(t.Rows, cells)
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// RenderString returns the rendered table as a string.
func (t *Table) RenderString() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

// F formats a float with 2 decimals for table cells.
func F(v float64) string { return fmt.Sprintf("%.2f", v) }

// MeanStd formats a seed-replicated cell as "mean±std" with 2 decimals
// (the Table 3 -seeds and headline reporting format).
func MeanStd(mean, std float64) string { return fmt.Sprintf("%.2f±%.2f", mean, std) }

// Pct formats a percentage with 2 decimals and a % sign.
func Pct(v float64) string { return fmt.Sprintf("%.2f%%", v) }
