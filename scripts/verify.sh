#!/bin/sh
# Tier-1 verification gate (same sequence as `make verify`):
# vet + build + full tests, then race coverage on the engine paths,
# then the shard-merge and cache cold/warm round-trip gates on the real
# CLI.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/engine/... ./internal/fl/...
go test -race -run 'TestConcurrentFanOutSmoke|TestCacheConcurrentFanOutSmoke' ./internal/experiments/

# Work-stealing scheduler gate: the engine package under -race with the
# nested determinism matrix (saturated For/ForWorker at worker counts
# 1/2/4/8 bit-identical to sequential) asserted explicitly in short
# mode, plus the steal-proof and sibling-grid stress tests.
go test -race -short -run 'TestNestedDeterminismMatrix|TestStealVsInlineEquivalence|TestStealIntoSaturatedNestedFor|TestStealWakeForLateNestedJob|TestConcurrentSiblingGridsRace' ./internal/engine/

# Key-codec fuzz seeds in short mode (the corpus only; `make fuzz` runs
# the fuzzing engine proper). The corpus covers both the legacy 7-field
# keys and the long-form 10-field Byzantine keys (attack, fraction,
# merge rule), including the malformed 8/9-field and non-canonical
# all-zero long-form shapes.
go test -short -run 'FuzzParseCellKey|TestCellKeyPropertyRoundTrip' ./internal/experiments/

# Virtual-client gates: the lazy ClientPool path must be bit-identical
# to the eager fleet for every aggregator at worker counts 1/2/4/8
# (including the duplicate-selection safety net and empty-shard
# eligibility), and a million-client K=10 run must keep its live state
# O(K). The flat-peak-memory record itself (1e6 vs 100 clients within
# 2x) is asserted by TestEngineBenchJSON in the full `go test ./...`
# above and emitted into BENCH_engine.json by `make bench-smoke`.
go test -race -run 'TestVirtualMatchesEagerBitIdentical|TestRunVirtualDuplicateSelection|TestClientPoolSkipsEmptyShards|TestRunVirtualMillionClients|TestSingleSetHonorsWorkers|TestEvaluatorWarmEvalAllocFree' ./internal/fl/

# Async round-engine determinism gate under -race: a degenerate trace
# (zero latency, no drops, staleness weight 1) must reproduce RunVirtual
# bit for bit for every aggregator at worker counts 1/2/4/8, a seeded
# straggler/dropout trace must replay byte-identically across worker
# counts, partial rounds must stay deterministic, and a client whose
# update straddles server versions must resume its per-identity RNG
# stream exactly.
go test -race -run 'TestAsyncDegenerateMatchesRunVirtual|TestAsyncSeededTraceReproducible|TestAsyncPartialRounds|TestClientPoolStraddlingResume|TestAsyncStarvationReturnsError' ./internal/fl/

# Byzantine attack-determinism gate under -race: a seeded sign-flip
# cohort must replay bitwise across worker counts 1/2/4/8 and across the
# eager/virtual/degenerate-async engines (plus the f32 twin and the
# straggler-trace composition), the zero-value attack/merger/quarantine
# configuration must reproduce the benign run byte for byte, every
# robust merger must be pool-width-invariant, and a NaN-uploading fleet
# must finish with quarantine counts instead of a poisoned global model.
go test -race -run 'TestAttackSeededBitIdenticalAcrossWorkers|TestAttackDegenerateByteIdentity|TestAttackAsyncTraceReproducible|TestAttackF32AcrossWorkers|TestMergerPoolWidthInvariance|TestWeightedMergeMatchesAggregate|TestQuarantineNaNRunCompletes' ./internal/fl/

# Benign byte-identity across the merge-seam refactor: figure6 rendered
# cold, warm (0 cache misses) and with the explicit weighted merge rule
# must be byte-for-byte the zero-value output.
go test -run 'TestBenignOutputsUnchangedByRefactor|TestByzantineGrid' ./internal/experiments/

# Compute-kernel gates: the blocked/register-tiled GEMM kernels (every
# backend in the host's fallback chain — avx512/avx/neon and pure-Go —
# all three transpose variants, and the pool-hook stripe fan-out) must
# be BIT-identical to the naive reference loops, same for the SIMD
# elementwise kernels, and a warm arena-backed train step (dense and
# conv stacks) must perform zero heap allocations.
go test -run 'TestBlockedBitIdentity|TestParallelStripesBitIdentical|TestKernelScratchReuse|TestElemwiseBitIdentity|TestBackendsChain' ./internal/tensor/
go test -run 'TestTrainStepAllocsDense|TestTrainStepAllocsConv|TestScratchPathMatchesPlain' ./internal/nn/

# Forced-generic gate: the same bit-identity suites with every SIMD
# tier disabled via the TENSOR_BACKEND override, proving the pure-Go
# kernels stand alone (and that the override is honored end to end).
TENSOR_BACKEND=generic go test -run 'TestBlockedBitIdentity|TestElemwiseBitIdentity|TestParallelStripesBitIdentical|TestBackendHonorsEnv' ./internal/tensor/

# Float32 kernel gates: the f32 GEMM/elemwise kernels must be
# bit-identical to their naive f32 references on every backend in the
# host's chain (the suite forces each tier itself), including the
# non-finite special-value sweep and the f64↔f32 conversion round trip
# — and the same suite must hold with every SIMD tier disabled.
go test -run 'TestBlocked32BitIdentity|TestBlocked32SpecialValues|TestElemwise32BitIdentity|TestParallelStripes32BitIdentical|TestIm2Col32MatchesFloat64|TestWidenQuantizeRoundTrip|TestKernelScratchReuse32' ./internal/tensor/
TENSOR_BACKEND=generic go test -run 'TestBlocked32BitIdentity|TestBlocked32SpecialValues|TestElemwise32BitIdentity|TestParallelStripes32BitIdentical' ./internal/tensor/

# Float32 precision-mode determinism gate under -race: an F32 run must
# be bit-identical across eager/virtual construction, across worker
# counts 1/2/4/8 and across kernel backends, the degenerate async trace
# must reproduce RunVirtual under F32, the f32 merge must be
# pool-width-invariant, and the global model must stay on the float32
# lattice. The -precision CLI surface rides the cmd test suites in the
# full `go test ./...` above.
go test -race -run 'TestF32EagerVirtualBitIdentical|TestF32AsyncDegenerateMatchesVirtual|TestF32BitIdenticalAcrossBackends|TestF32GlobalStaysOnLattice|TestAggregate32PoolInvariance' ./internal/fl/

# Shard-merge round trip: running Table 3 as two shards and merging the
# artifact files must reproduce the unsharded output byte for byte
# (modulo the one-line timing header, which `tail -n +2` strips).
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/tables" ./cmd/tables
"$tmp/tables" -exp table3 -scale ci -rounds 2 -seed 1 | tail -n +2 > "$tmp/unsharded.txt"
"$tmp/tables" -exp table3 -scale ci -rounds 2 -seed 1 -shard 1/2 -out "$tmp/shards/s1.art"
"$tmp/tables" -exp table3 -scale ci -rounds 2 -seed 1 -shard 2/2 -out "$tmp/shards/s2.art"
"$tmp/tables" -merge "$tmp/shards" | tail -n +2 > "$tmp/merged.txt"
diff "$tmp/unsharded.txt" "$tmp/merged.txt"

# Cache cold/warm byte-identity: a cold run against an empty cache must
# match the uncached run, and a warm rerun must load every cell from
# the cache (its stderr summary reports 0 misses) while rendering the
# identical bytes.
"$tmp/tables" -exp table3 -scale ci -rounds 2 -seed 1 -cache "$tmp/cells" 2> "$tmp/cold.err" | tail -n +2 > "$tmp/cold.txt"
diff "$tmp/unsharded.txt" "$tmp/cold.txt"
"$tmp/tables" -exp table3 -scale ci -rounds 2 -seed 1 -cache "$tmp/cells" 2> "$tmp/warm.err" | tail -n +2 > "$tmp/warm.txt"
diff "$tmp/cold.txt" "$tmp/warm.txt"
grep -q ' 0 misses' "$tmp/warm.err"

# Cache GC: a maintenance pass over a healthy cache prunes nothing, and
# the cache still serves every cell afterwards.
"$tmp/tables" -cache-gc -cache "$tmp/cells" 2> "$tmp/gc.err"
grep -q 'pruned 0 stale' "$tmp/gc.err"
"$tmp/tables" -exp table3 -scale ci -rounds 2 -seed 1 -cache "$tmp/cells" 2> "$tmp/postgc.err" | tail -n +2 > "$tmp/postgc.txt"
diff "$tmp/cold.txt" "$tmp/postgc.txt"
grep -q ' 0 misses' "$tmp/postgc.err"

# Byzantine CLI smoke: the attack × merger grid renders, and the benign
# spellings of the new flags (-attack none -merger weighted) are
# canonicalized — byte-identical output AND the same cache addresses as
# the flagless run (0 misses against the cache written above), so
# pre-existing cached cells stay valid.
"$tmp/tables" -exp byzantine -scale ci -rounds 2 -seed 1 | tail -n +2 > "$tmp/byz.txt"
grep -q 'signflip 40%' "$tmp/byz.txt"
"$tmp/tables" -exp table3 -scale ci -rounds 2 -seed 1 -attack none -merger weighted -cache "$tmp/cells" 2> "$tmp/benign.err" | tail -n +2 > "$tmp/benign.txt"
diff "$tmp/cold.txt" "$tmp/benign.txt"
grep -q ' 0 misses' "$tmp/benign.err"
