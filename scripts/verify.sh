#!/bin/sh
# Tier-1 verification gate (same sequence as `make verify`):
# vet + build + full tests, then race coverage on the engine paths,
# then the shard-merge round-trip gate on the real CLI.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/engine/... ./internal/fl/...
go test -race -run TestConcurrentFanOutSmoke ./internal/experiments/

# Shard-merge round trip: running Table 3 as two shards and merging the
# artifact files must reproduce the unsharded output byte for byte
# (modulo the one-line timing header, which `tail -n +2` strips).
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go build -o "$tmp/tables" ./cmd/tables
"$tmp/tables" -exp table3 -scale ci -rounds 2 -seed 1 | tail -n +2 > "$tmp/unsharded.txt"
"$tmp/tables" -exp table3 -scale ci -rounds 2 -seed 1 -shard 1/2 -out "$tmp/shards/s1.art"
"$tmp/tables" -exp table3 -scale ci -rounds 2 -seed 1 -shard 2/2 -out "$tmp/shards/s2.art"
"$tmp/tables" -merge "$tmp/shards" | tail -n +2 > "$tmp/merged.txt"
diff "$tmp/unsharded.txt" "$tmp/merged.txt"
