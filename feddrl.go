// Package feddrl is the public API of the FedDRL reproduction: a
// federated-learning simulator with deep-reinforcement-learning-based
// adaptive aggregation (Nguyen et al., "FedDRL: Deep Reinforcement
// Learning-based Adaptive Aggregation for Non-IID Data in Federated
// Learning", ICPP 2022).
//
// The package re-exports the user-facing types of the internal
// implementation packages so downstream code only imports "feddrl":
//
//   - datasets: Synthesize + the MNISTSim/FashionSim/CIFAR100Sim specs
//   - non-IID partitioners: Pareto (PA), ClusteredEqual (CE, the paper's
//     cluster skew), ClusteredNonEqual (CN), EqualShards, NonEqualShards
//   - the FL loop: NewClient/BuildClients, Run, SingleSet — and the
//     constant-memory virtual-client path NewClientPool/RunVirtual, where
//     clients are (seed, index-recipe) identities over zero-copy
//     DataView shards, materialized only while selected (bit-identical
//     to the eager path)
//   - asynchronous rounds: RunAsync, a deterministic event-driven round
//     engine over the same ClientPool — seeded virtual clock, pluggable
//     ArrivalModel traces (stragglers, dropout, availability) and
//     staleness-weighted merging; its degenerate trace reproduces
//     RunVirtual bit for bit
//   - the execution engine: NewWorkerPool + RunConfig.Workers, a bounded
//     work-stealing pool whose parallel results are bit-identical to
//     sequential and whose nested loops stay parallel under saturation
//   - aggregators: FedAvg, FedProx, NewFedDRL (the paper's contribution),
//     or any custom Aggregator implementation
//   - Byzantine robustness: seeded AttackModel fault injection
//     (SignFlip, GaussianNoise, ModelReplacement, Colluding, LabelFlip)
//     over an identity-stable malicious subset, robust Mergers (Median,
//     TrimmedMean, Krum) replacing the weighted merge, and a
//     server-side QuarantineConfig gate screening non-finite or
//     norm-exploded uploads — all deterministic across worker counts
//     and engines, with the zero values bit-identical to a benign run
//   - the DRL agent: NewAgent, DefaultAgentConfig, TrainTwoStage
//   - experiment harness: ExperimentNames, RunExperiment and the
//     CIScale/MediumScale/PaperScale presets
//
// See examples/quickstart for a 30-second end-to-end run.
package feddrl

import (
	"feddrl/internal/core"
	"feddrl/internal/dataset"
	"feddrl/internal/engine"
	"feddrl/internal/experiments"
	"feddrl/internal/fl"
	"feddrl/internal/metrics"
	"feddrl/internal/nn"
	"feddrl/internal/partition"
	"feddrl/internal/rng"
	"feddrl/internal/serialize"
	"feddrl/internal/tensor"
)

// Dataset and synthesis types.
type (
	// Dataset is an in-memory labelled dataset (see internal/dataset).
	Dataset = dataset.Dataset
	// DataSpec configures a synthetic dataset.
	DataSpec = dataset.Spec
	// ImageShape is the CHW layout of one sample.
	ImageShape = dataset.ImageShape
	// DataSource is the read-only sample-access interface shared by
	// Dataset and DataView; federated clients train against it.
	DataSource = dataset.Data
	// DataView is a zero-copy indexed view into a Dataset: shard
	// semantics without shard copies. Views share the parent's storage,
	// so mutating samples through (or under) a view is forbidden;
	// Materialize returns a contiguous private copy.
	DataView = dataset.View
)

// Partitioning types.
type (
	// Assignment maps clients to dataset indices.
	Assignment = partition.Assignment
	// PartitionStats summarizes an assignment (Table 2 inputs).
	PartitionStats = partition.Stats
)

// Federated-learning types.
type (
	// Client owns a private shard and a local model.
	Client = fl.Client
	// Update is the per-round tuple a client uploads.
	Update = fl.Update
	// Aggregator decides the impact factors each round. Implement this
	// interface to plug in custom aggregation rules (see
	// examples/customagg).
	Aggregator = fl.Aggregator
	// FedAvg is sample-count-proportional aggregation (Eq. 1).
	FedAvg = fl.FedAvg
	// FedProx labels FedAvg aggregation with client-side proximal term.
	FedProx = fl.FedProx
	// FedDRLAggregator is the paper's DRL-driven aggregator.
	FedDRLAggregator = fl.FedDRL
	// RunConfig configures a federated run.
	RunConfig = fl.RunConfig
	// LocalConfig is the client-side solver configuration.
	LocalConfig = fl.LocalConfig
	// Result is a training run's record.
	Result = fl.Result
	// RoundMetrics is one round's measurements.
	RoundMetrics = fl.RoundMetrics
	// ClientPool owns K reusable client slots and materializes virtual
	// clients — (seed, index-recipe) identities — only while selected,
	// keeping run memory O(K) instead of O(clients).
	ClientPool = fl.ClientPool
	// ClientPartition assigns dataset samples to virtual-client
	// identities without materializing per-client lists.
	ClientPartition = fl.Partition
	// IndexPartition adapts a materialized [][]int assignment to
	// ClientPartition.
	IndexPartition = fl.IndexPartition
	// CyclicPartition stripes samples cyclically over any number of
	// clients in O(1) storage (the million-client scaling partition).
	CyclicPartition = fl.CyclicPartition
	// Population is the Selector's read-only view of the client fleet.
	Population = fl.Population
	// Precision selects the federated-state width of a run (F64 or F32).
	Precision = fl.Precision
)

// Byzantine fault injection and robust aggregation. An AttackModel set
// on RunConfig.Attack corrupts the uploads of a seeded, identity-stable
// malicious fraction of the fleet; a Merger set on RunConfig.Merger
// replaces the default impact-factor weighted merge; QuarantineConfig
// screens arriving uploads at the server ingress. All three compose
// with every engine (Run, RunVirtual, RunAsync) and stay bit-identical
// across worker counts; their zero values reproduce a benign run bit
// for bit.
type (
	// AttackModel is the pluggable Byzantine fault model: a seeded,
	// identity-stable malicious subset whose uploads are corrupted
	// deterministically each round.
	AttackModel = fl.AttackModel
	// DataAttack is the optional data-poisoning face of an attack:
	// malicious clients train on corrupted shards (see LabelFlip).
	DataAttack = fl.DataAttack
	// ByzantineSet is the embeddable malicious-fraction selector shared
	// by the built-in attacks.
	ByzantineSet = fl.ByzantineSet
	// SignFlip negates (and optionally scales) malicious uploads.
	SignFlip = fl.SignFlip
	// GaussianNoise adds seeded Gaussian noise to malicious uploads.
	GaussianNoise = fl.GaussianNoise
	// ModelReplacement boosts malicious uploads away from the global
	// model (the classic model-replacement/backdoor amplifier).
	ModelReplacement = fl.ModelReplacement
	// Colluding makes every malicious client upload one shared
	// round-keyed random vector (a coordinated drift attack).
	Colluding = fl.Colluding
	// LabelFlip is the data-poisoning attack: malicious clients train
	// on label-flipped shards while their uploads stay untouched.
	LabelFlip = fl.LabelFlip
	// Merger is the server-side merge seam: it turns a round's updates
	// and impact factors into the next global model.
	Merger = fl.Merger
	// WeightedMerge is the default impact-factor weighted merge (Eq. 4)
	// as an explicit Merger (bit-identical to a nil Merger).
	WeightedMerge = fl.WeightedMerge
	// Median merges by coordinate-wise median.
	Median = fl.Median
	// TrimmedMean merges by the coordinate-wise β-trimmed mean.
	TrimmedMean = fl.TrimmedMean
	// Krum selects the single update closest to its neighbors
	// (Blanchard et al.'s Krum rule).
	Krum = fl.Krum
	// QuarantineConfig is the server-ingress screen: non-finite (and
	// optionally norm-exploded) uploads are counted and dropped before
	// aggregation instead of corrupting the global model.
	QuarantineConfig = fl.QuarantineConfig
	// StarvationError is RunAsync's diagnosable failure when an arrival
	// model drops every dispatch and a round can never complete.
	StarvationError = fl.StarvationError
)

var (
	// ParseAttack resolves a CLI spelling (signflip, gauss, replace,
	// collude, labelflip, none) and a malicious fraction to an
	// AttackModel.
	ParseAttack = fl.ParseAttack
	// ParseMerger resolves a CLI spelling (weighted, median, trimmed,
	// krum) to a Merger, sizing Krum's f from the malicious fraction.
	ParseMerger = fl.ParseMerger
	// AllFinite reports whether a weight vector is free of NaN/Inf
	// (the upload screen behind the quarantine gate).
	AllFinite = fl.AllFinite
	// AllFinite32 is AllFinite over float32 vectors.
	AllFinite32 = fl.AllFinite32
	// FlipLabels wraps a data source so every label reads flipped
	// (class c becomes classes-1-c) — the LabelFlip poisoning view.
	FlipLabels = dataset.FlipLabels
)

// Federated-state precisions.
const (
	// F64 is the full-width default (bit-for-bit the pre-precision
	// behavior; the zero Precision value means the same).
	F64 = fl.F64
	// F32 runs the federated state — uploads, aggregation, global model
	// lattice — at float32, halving update wire size. Local training
	// stays float64; results are bit-identical across backends and
	// worker counts, like every other mode.
	F32 = fl.F32
)

// ParsePrecision resolves a CLI spelling ("f32", "f64" or "") to a
// Precision, erroring on anything else.
var ParsePrecision = fl.ParsePrecision

// Asynchronous round engine types.
type (
	// AsyncConfig configures RunAsync: RunConfig plus the arrival trace
	// and the server's staleness policy (zero async fields = the
	// degenerate setting, bit-identical to RunVirtual).
	AsyncConfig = fl.AsyncConfig
	// AsyncResult is an async run's record: Result plus per-aggregation
	// async metrics (virtual time, staleness, drops).
	AsyncResult = fl.AsyncResult
	// AsyncRoundMetrics is one async aggregation step's bookkeeping.
	AsyncRoundMetrics = fl.AsyncRoundMetrics
	// Arrival is one dispatch's fate: virtual delay, or loss.
	Arrival = fl.Arrival
	// ArrivalModel is the pluggable seeded latency/availability trace.
	ArrivalModel = fl.ArrivalModel
	// InstantArrivals is the degenerate trace (zero latency, no drops).
	InstantArrivals = fl.InstantArrivals
	// TraceArrivals is a seeded synthetic straggler/dropout/availability
	// trace with identity-stable client traits.
	TraceArrivals = fl.TraceArrivals
)

// DRL agent types.
type (
	// Agent is the DDPG-style impact-factor agent (§3.3–3.4).
	Agent = core.Agent
	// AgentConfig holds the agent hyperparameters (Table 1).
	AgentConfig = core.Config
	// Env is the environment interface for two-stage training.
	Env = core.Env
	// TwoStageResult reports TrainTwoStage's outcome.
	TwoStageResult = core.TwoStageResult
)

// Model and experiment types.
type (
	// ModelFactory builds a fresh network from a seed.
	ModelFactory = nn.Factory
	// Network is a trainable sequential model.
	Network = nn.Network
	// Scale selects experiment sizing (CI / medium / paper).
	Scale = experiments.Scale
	// Series is an ordered sequence of per-round measurements.
	Series = metrics.Series
)

// Dataset constructors.
var (
	// Synthesize generates train/test splits for a spec.
	Synthesize = dataset.Synthesize
	// MNISTSim is the 10-class MNIST analogue spec.
	MNISTSim = dataset.MNISTSim
	// FashionSim is the harder 10-class Fashion-MNIST analogue spec.
	FashionSim = dataset.FashionSim
	// CIFAR100Sim is the 100-class CIFAR-100 analogue spec.
	CIFAR100Sim = dataset.CIFAR100Sim
)

// Partitioners (§4.1.1, §5.1).
var (
	// Pareto is the PA power-law partitioner.
	Pareto = partition.Pareto
	// ClusteredEqual is the CE cluster-skew partitioner.
	ClusteredEqual = partition.ClusteredEqual
	// ClusteredNonEqual is the CN cluster-skew + quantity-skew partitioner.
	ClusteredNonEqual = partition.ClusteredNonEqual
	// EqualShards is the §5.1 Equal label-size-imbalance partitioner.
	EqualShards = partition.EqualShards
	// NonEqualShards is the §5.1 Non-equal partitioner.
	NonEqualShards = partition.NonEqualShards
	// DirichletPartition is the label-distribution-imbalance partitioner
	// standard in the related work (§2.2.1).
	DirichletPartition = partition.Dirichlet
	// ComputePartitionStats analyses an assignment.
	ComputePartitionStats = partition.ComputeStats
	// PartitionASCII renders a Figure-4 style illustration.
	PartitionASCII = partition.ASCII
)

// FL loop.
var (
	// NewClient wraps a shard in a federated client.
	NewClient = fl.NewClient
	// BuildClients shards a dataset by an assignment.
	BuildClients = fl.BuildClients
	// Run executes Algorithm 2 with the given aggregator.
	Run = fl.Run
	// NewClientPool builds the constant-memory virtual-client pool.
	NewClientPool = fl.NewClientPool
	// RunVirtual is Run over a ClientPool: clients materialize only
	// while selected, bit-identical to the eager path.
	RunVirtual = fl.RunVirtual
	// RunAsync is the deterministic asynchronous round engine over a
	// ClientPool: event-queue arrivals on a seeded virtual clock with
	// staleness-weighted merging. It returns a *StarvationError (with
	// the partial result) when the arrival model drops every dispatch
	// and a round can never complete.
	RunAsync = fl.RunAsync
	// SingleSet trains centrally on the combined data (the §4.1 baseline).
	SingleSet = fl.SingleSet
	// Aggregate computes the Eq. 4 weighted model merge.
	Aggregate = fl.Aggregate
	// NewFedDRL wraps an Agent as an Aggregator.
	NewFedDRL = fl.NewFedDRL
	// EvalLossAcc evaluates a model on a dataset.
	EvalLossAcc = fl.EvalLossAcc
)

// Execution engine: the bounded work-stealing pool behind
// RunConfig.Workers. All parallel paths are bit-identical to sequential
// execution, and nested parallelism (grid → FL round → evaluation)
// stays parallel under saturation: blocked or idle lanes steal pending
// nested work instead of parking.
type (
	// WorkerPool is a persistent bounded work-stealing pool; share one
	// across runs via RunConfig.Pool to cap total parallelism.
	WorkerPool = engine.Pool
	// Evaluator is the chunk-parallel test-set evaluator (one model
	// replica per pool lane).
	Evaluator = fl.Evaluator
)

var (
	// NewWorkerPool builds a pool with the given lane count
	// (0 = GOMAXPROCS).
	NewWorkerPool = engine.New
	// NewEvaluator builds a chunk-parallel evaluator over a pool.
	NewEvaluator = fl.NewEvaluator
	// AggregateOn is Aggregate executed segment-parallel on a pool.
	AggregateOn = fl.AggregateOn
)

// Compute kernels and scratch arenas: the blocked, register-tiled GEMM
// kernels under every Forward/Backward, and the per-network buffer
// arenas that make warm train steps allocation-free. fl.Run wires both
// automatically; these re-exports serve custom training loops.
type (
	// ModelScratch is a per-network arena of reusable activation and
	// gradient buffers (see Network.ForwardScratch/BackwardScratch).
	ModelScratch = nn.Scratch
	// PoolStats is a snapshot of a WorkerPool's optional scheduling
	// counters (Pool.EnableStats / Pool.Stats).
	PoolStats = engine.Stats
)

var (
	// NewModelScratch builds an empty per-network scratch arena.
	NewModelScratch = nn.NewScratch
	// SetKernelPool installs the pool that large tensor kernels fan out
	// on (nil reverts to sequential); fl.Run calls it automatically.
	SetKernelPool = tensor.SetParallel
	// KernelBackend reports the active SIMD kernel backend ("avx512",
	// "avx", "neon" or "generic"); the TENSOR_BACKEND environment
	// variable overrides the auto-detected default at startup.
	KernelBackend = tensor.KernelBackend
	// SetKernelBackend forces a backend from KernelBackends (useful for
	// benchmarking tiers against each other); it errors on names the
	// host cannot run. All backends are bit-identical.
	SetKernelBackend = tensor.SetBackend
	// KernelBackends lists the active backend's fallback chain, widest
	// first, always ending in "generic".
	KernelBackends = tensor.Backends
)

// DRL agent.
var (
	// NewAgent builds the DDPG-style agent.
	NewAgent = core.NewAgent
	// DefaultAgentConfig returns the Table 1 hyperparameters for K
	// participating clients.
	DefaultAgentConfig = core.DefaultConfig
	// TrainTwoStage runs the §3.4.2 two-stage training strategy.
	TrainTwoStage = core.TrainTwoStage
)

// Models.
var (
	// NewMLP builds a ReLU multi-layer perceptron.
	NewMLP = nn.NewMLP
	// NewSimpleCNN builds the paper's small CNN (§4.1.2).
	NewSimpleCNN = nn.NewSimpleCNN
	// NewVGGMini builds the scaled VGG stand-in (§4.1.2).
	NewVGGMini = nn.NewVGGMini
	// NewRNG builds the deterministic generator used across the library.
	NewRNG = rng.New
)

// Experiment job model: grid experiments decompose into serializable
// cell jobs whose artifacts render in a pure merge stage, enabling
// cross-process sharding and seed replication.
type (
	// ExperimentCellSpec identifies one runnable grid cell.
	ExperimentCellSpec = experiments.CellSpec
	// ExperimentCellArtifact is a cell's machine-readable result.
	ExperimentCellArtifact = experiments.CellArtifact
	// ExperimentArtifacts is a set of cell artifacts (a whole grid or
	// one shard), serializable to a binary artifact file.
	ExperimentArtifacts = experiments.ArtifactSet
	// ExperimentCache is a content-addressed on-disk store of cell
	// artifacts: cached cells are loaded instead of recomputed, and
	// cached runs render byte-identical output to uncached ones.
	ExperimentCache = experiments.Cache
	// ExperimentCacheStats counts one cache handle's hits, misses and
	// write-backs.
	ExperimentCacheStats = experiments.CacheStats
	// ExperimentCacheGCStats reports one cache GC pass (records pruned,
	// evicted for the byte budget, and kept).
	ExperimentCacheGCStats = experiments.GCStats
)

// Experiments.
var (
	// CIScale finishes every experiment in seconds.
	CIScale = experiments.CI
	// MediumScale is the EXPERIMENTS.md configuration.
	MediumScale = experiments.Medium
	// PaperScale is the closest feasible match to §4.1.2.
	PaperScale = experiments.Paper
	// ScaleByName resolves "ci", "medium" or "paper".
	ScaleByName = experiments.ScaleByName
	// ExperimentNames lists the reproducible tables and figures.
	ExperimentNames = experiments.Names
	// RunExperiment executes a registered table/figure by id.
	RunExperiment = experiments.Run
	// RunExperimentSeeds runs a grid experiment with m seed replicates
	// per cell and renders mean±std columns (m <= 1 behaves like
	// RunExperiment).
	RunExperimentSeeds = experiments.RunSeeds
	// RunExperimentShard computes the deterministic i/n slice of a grid
	// experiment and returns its artifact set.
	RunExperimentShard = experiments.RunShard
	// MergeExperimentArtifacts recombines shard artifact sets.
	MergeExperimentArtifacts = experiments.MergeSets
	// RenderExperimentArtifacts renders a complete artifact set into
	// the exact text an unsharded run produces.
	RenderExperimentArtifacts = experiments.RenderSet
	// LoadExperimentArtifacts reads a shard artifact file.
	LoadExperimentArtifacts = experiments.LoadArtifactSet
	// ExperimentShardable reports whether an id supports -shard/-merge.
	ExperimentShardable = experiments.Shardable
	// ExportExperimentCSV writes a figure's series as CSV files.
	ExportExperimentCSV = experiments.ExportCSV
	// OpenExperimentCache opens (creating unless readonly) a
	// content-addressed artifact cache directory.
	OpenExperimentCache = experiments.OpenCache
	// RunExperimentCached is RunExperiment with an artifact cache: grid
	// cells found in the cache are loaded instead of recomputed.
	RunExperimentCached = experiments.RunCached
	// RunExperimentSeedsCached is RunExperimentSeeds with an artifact
	// cache.
	RunExperimentSeedsCached = experiments.RunSeedsCached
	// RunExperimentShardCached is RunExperimentShard with an artifact
	// cache — rerunning an interrupted shard against the same cache
	// recomputes only the cells it had not finished.
	RunExperimentShardCached = experiments.RunShardCached
	// ExportExperimentCSVCached is ExportExperimentCSV with an artifact
	// cache.
	ExportExperimentCSVCached = experiments.ExportCSVCached
)

// Checkpointing, communication accounting, selection and compression.
type (
	// Checkpoint is the binary snapshot format for models and agents.
	Checkpoint = serialize.Checkpoint
	// CommRound models one synchronous round's traffic (§5.3).
	CommRound = fl.CommRound
	// Selector chooses the participating clients each round.
	Selector = fl.Selector
	// UniformSelector is the paper's uniform random participation.
	UniformSelector = fl.UniformSelector
	// SizeWeightedSelector samples proportionally to shard size.
	SizeWeightedSelector = fl.SizeWeightedSelector
	// PowerOfChoiceSelector keeps the highest-loss candidates (Cho et al.).
	PowerOfChoiceSelector = fl.PowerOfChoiceSelector
	// RoundRobinSelector cycles deterministically.
	RoundRobinSelector = fl.RoundRobinSelector
	// SparseDelta is a top-k-compressed client update (§3.5).
	SparseDelta = fl.SparseDelta
	// SparseDelta32 is the half-width (F32-mode) compressed update.
	SparseDelta32 = fl.SparseDelta32
)

// Sparse update compression (§3.5 compatibility).
var (
	// CompressTopK keeps the k largest-magnitude weight deltas.
	CompressTopK = fl.CompressTopK
	// CompressUpdates compresses a round's updates at a keep fraction.
	CompressUpdates = fl.CompressUpdates
	// CompressUpdatesOn is CompressUpdates fanned out across an engine
	// pool's lanes (bit-identical to the sequential path).
	CompressUpdatesOn = fl.CompressUpdatesOn
	// DecompressUpdates reconstructs dense updates server-side.
	DecompressUpdates = fl.DecompressUpdates
	// CompressTopK32 is CompressTopK over float32 vectors.
	CompressTopK32 = fl.CompressTopK32
	// CompressUpdates32On compresses an F32-mode round's updates on an
	// engine pool.
	CompressUpdates32On = fl.CompressUpdates32On
	// DecompressUpdates32 reconstructs dense f32 updates server-side.
	DecompressUpdates32 = fl.DecompressUpdates32
)

var (
	// NewCheckpoint returns an empty checkpoint.
	NewCheckpoint = serialize.NewCheckpoint
	// LoadCheckpoint reads a checkpoint file.
	LoadCheckpoint = serialize.LoadFile
	// RestoreAgent rebuilds an agent from a checkpoint.
	RestoreAgent = core.RestoreAgent
	// LoadAgentFile restores an agent from a checkpoint file.
	LoadAgentFile = core.LoadAgentFile
	// CommPerRound computes a synchronous round's traffic under an
	// aggregator.
	CommPerRound = fl.CommPerRound
	// CommAsyncRound computes an asynchronous aggregation step's
	// traffic: dispatched broadcasts down, arrived updates (with
	// staleness metadata) up.
	CommAsyncRound = fl.CommAsyncRound
	// CommPerRoundP is CommPerRound with an explicit precision: F32
	// rounds move half-width weight payloads.
	CommPerRoundP = fl.CommPerRoundP
	// CommAsyncRoundP is CommAsyncRound with an explicit precision.
	CommAsyncRoundP = fl.CommAsyncRoundP
)

// AsyncMetaBytes is the per-update staleness metadata an asynchronous
// uplink carries beyond the synchronous payload.
const AsyncMetaBytes = fl.AsyncMetaBytes

// MLPFactory returns a ModelFactory for a dense network over inputs of
// the given dimension — a convenience for quickstarts and examples.
func MLPFactory(dim int, hidden []int, classes int) ModelFactory {
	return func(seed uint64) *Network {
		return nn.NewMLP(rng.New(seed), dim, hidden, classes)
	}
}

// CNNFactory returns a ModelFactory for the paper's simple CNN over
// images of the given shape.
func CNNFactory(shape ImageShape, classes int) ModelFactory {
	return func(seed uint64) *Network {
		return nn.NewSimpleCNN(rng.New(seed), shape.C, shape.H, shape.W, classes)
	}
}
